(* Text_table and Ascii_chart rendering. *)
module T = Vliw_util.Text_table
module C = Vliw_util.Ascii_chart

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_table_basic () =
  let t = T.create ~header:[ "a"; "b" ] in
  T.add_row t [ "x"; "1" ];
  T.add_float_row t "y" [ 2.5 ];
  let out = T.render t in
  Alcotest.(check bool) "has header" true (contains ~needle:"| a" out);
  Alcotest.(check bool) "has row" true (contains ~needle:"x" out);
  Alcotest.(check bool) "has float" true (contains ~needle:"2.50" out)

let test_table_alignment () =
  let t = T.create ~header:[ "name"; "val" ] in
  T.set_aligns t [ T.Left; T.Right ];
  T.add_row t [ "a"; "1" ];
  T.add_row t [ "long-name"; "100" ];
  let out = T.render t in
  (* Right-aligned numbers: "1" padded on the left. *)
  Alcotest.(check bool) "right aligned" true (contains ~needle:"|   1 |" out)

let test_table_arity () =
  let t = T.create ~header:[ "a"; "b" ] in
  Alcotest.check_raises "arity mismatch"
    (Invalid_argument "Text_table.add_row: arity mismatch") (fun () ->
      T.add_row t [ "only-one" ])

let test_table_sep () =
  let t = T.create ~header:[ "a" ] in
  T.add_row t [ "1" ];
  T.add_sep t;
  T.add_row t [ "2" ];
  let lines = String.split_on_char '\n' (T.render t) in
  Alcotest.(check int) "header + sep + 2 rows + sep" 6 (List.length lines)

let test_bar_chart () =
  let out = C.bar_chart [ ("big", 10.0); ("half", 5.0) ] in
  let lines = String.split_on_char '\n' out in
  let count_hashes s =
    String.fold_left (fun acc ch -> if ch = '#' then acc + 1 else acc) 0 s
  in
  match lines with
  | big :: half :: _ ->
    Alcotest.(check int) "big bar full width" 50 (count_hashes big);
    Alcotest.(check int) "half bar half width" 25 (count_hashes half)
  | _ -> Alcotest.fail "expected two lines"

let test_bar_chart_zero () =
  let out = C.bar_chart [ ("zero", 0.0) ] in
  Alcotest.(check bool) "renders without bars" true (contains ~needle:"zero" out)

let test_grouped_chart () =
  let out =
    C.grouped_bar_chart ~group_labels:[ "g1"; "g2" ]
      ~series:[ ("s", [| 1.0; 2.0 |]) ]
      ()
  in
  Alcotest.(check bool) "group 1" true (contains ~needle:"g1:" out);
  Alcotest.(check bool) "group 2" true (contains ~needle:"g2:" out)

let test_scatter () =
  let out =
    C.scatter ~x_label:"x" ~y_label:"y" [ ("p1", 1.0, 10.0); ("p2", 5.0, 20.0) ]
  in
  Alcotest.(check bool) "legend p1" true (contains ~needle:"p1" out);
  Alcotest.(check bool) "marker a" true (contains ~needle:"a = " out);
  Alcotest.(check bool) "axis label" true (contains ~needle:"y (y) vs x (x)" out)

let test_scatter_empty () =
  Alcotest.(check string)
    "empty" "(no points)\n"
    (C.scatter ~x_label:"x" ~y_label:"y" [])

let test_scatter_single_point () =
  (* Degenerate ranges must not divide by zero. *)
  let out = C.scatter ~x_label:"x" ~y_label:"y" [ ("only", 2.0, 2.0) ] in
  Alcotest.(check bool) "renders" true (contains ~needle:"only" out)

let test_bar_chart_empty () =
  Alcotest.(check string) "empty series renders nothing" "" (C.bar_chart [])

let test_table_header_only () =
  let t = T.create ~header:[ "a"; "b" ] in
  let lines = String.split_on_char '\n' (T.render t) in
  (* header + separator + trailing newline *)
  Alcotest.(check int) "header and separator only" 3 (List.length lines);
  Alcotest.(check bool) "header present" true (contains ~needle:"| a" (T.render t))

let test_table_single_row () =
  let t = T.create ~header:[ "only" ] in
  T.add_row t [ "x" ];
  let out = T.render t in
  Alcotest.(check bool) "row rendered" true (contains ~needle:"| x" out)

let test_display_width_unicode () =
  Alcotest.(check int) "ascii = byte length" 5 (T.display_width "ascii");
  Alcotest.(check int) "µs measures 2 cells" 2 (T.display_width "µs");
  Alcotest.(check bool) "µs is 3 bytes" true (String.length "µs" = 3);
  Alcotest.(check int) "2×IPC measures 5" 5 (T.display_width "2\xc3\x97IPC");
  Alcotest.(check int) "empty" 0 (T.display_width "")

(* Multi-byte labels must not skew column padding: rows whose cells have
   equal display widths must render to lines of equal display width. *)
let test_table_unicode_alignment () =
  let t = T.create ~header:[ "unit"; "val" ] in
  T.add_row t [ "µs"; "1" ];
  T.add_row t [ "ms"; "2" ];
  (match
     List.filter (fun l -> l <> "") (String.split_on_char '\n' (T.render t))
   with
  | [ header; sep; row_mu; row_ms ] ->
    Alcotest.(check int) "rows align in display cells"
      (T.display_width row_ms) (T.display_width row_mu);
    Alcotest.(check int) "rows align with the header"
      (T.display_width header) (T.display_width row_mu);
    Alcotest.(check bool) "separator at least as wide" true
      (T.display_width sep >= T.display_width header)
  | _ -> Alcotest.fail "expected four rendered lines");
  (* the same invariant for bar-chart label padding *)
  let out = C.bar_chart [ ("µs", 1.0); ("ms", 2.0) ] in
  match String.split_on_char '\n' out with
  | mu :: ms :: _ ->
    let bar_col s = T.display_width (List.hd (String.split_on_char '|' s)) in
    Alcotest.(check int) "bars start in the same column" (bar_col ms) (bar_col mu)
  | _ -> Alcotest.fail "expected two chart lines"

let test_sparkline () =
  Alcotest.(check string) "empty series" "" (C.sparkline []);
  (* max maps to the full block, 0 to the baseline glyph *)
  let s = C.sparkline [ 0.0; 4.0 ] in
  Alcotest.(check bool) "baseline glyph" true (contains ~needle:"▁" s);
  Alcotest.(check bool) "full glyph" true (contains ~needle:"█" s);
  (* constant non-zero series renders at a single level, one glyph per
     sample (each block glyph is 3 UTF-8 bytes) *)
  let flat = C.sparkline [ 2.0; 2.0; 2.0 ] in
  Alcotest.(check int) "one glyph per sample" 9 (String.length flat);
  (* width keeps only the most recent samples *)
  let recent = C.sparkline ~width:2 [ 9.0; 0.0; 0.0 ] in
  Alcotest.(check int) "width truncates" 6 (String.length recent);
  Alcotest.(check bool) "oldest sample dropped" true
    (not (contains ~needle:"█" recent))

let suite =
  ( "util-render",
    [
      Alcotest.test_case "table basic" `Quick test_table_basic;
      Alcotest.test_case "table alignment" `Quick test_table_alignment;
      Alcotest.test_case "table arity" `Quick test_table_arity;
      Alcotest.test_case "table separator" `Quick test_table_sep;
      Alcotest.test_case "bar chart scaling" `Quick test_bar_chart;
      Alcotest.test_case "bar chart zero" `Quick test_bar_chart_zero;
      Alcotest.test_case "grouped chart" `Quick test_grouped_chart;
      Alcotest.test_case "scatter" `Quick test_scatter;
      Alcotest.test_case "scatter empty" `Quick test_scatter_empty;
      Alcotest.test_case "scatter single point" `Quick test_scatter_single_point;
      Alcotest.test_case "bar chart empty" `Quick test_bar_chart_empty;
      Alcotest.test_case "table header only" `Quick test_table_header_only;
      Alcotest.test_case "table single row" `Quick test_table_single_row;
      Alcotest.test_case "display width unicode" `Quick test_display_width_unicode;
      Alcotest.test_case "unicode label alignment" `Quick
        test_table_unicode_alignment;
      Alcotest.test_case "sparkline" `Quick test_sparkline;
    ] )
