(* Thread_state, Core, Multitask, Metrics. *)
module Sim = Vliw_sim
module C = Vliw_compiler
module M = Vliw_merge
module Isa = Vliw_isa

let machine = Isa.Machine.default

let quick = Vliw_sim.Multitask.quick_schedule

let profile = Test_compiler.test_profile

let program ?(seed = 21L) ?(p = profile ()) () = C.Program.generate ~seed machine p

let scheme name = (M.Catalog.find_exn name).scheme

let run ?(perfect = false) ?(seed = 1L) ?(schedule = quick) name profiles =
  let config = Sim.Config.make (scheme name) in
  Sim.Multitask.run config ~perfect_mem:perfect ~seed ~schedule profiles

(* --- Thread_state --- *)

let test_thread_state_walk () =
  let prog = program () in
  let th = Sim.Thread_state.create ~id:0 ~seed:1L prog in
  Alcotest.(check int) "starts at entry" prog.entry th.block;
  Alcotest.(check int) "pc 0" 0 th.pc;
  let len = Array.length prog.blocks.(0).instrs in
  for _ = 1 to len - 1 do
    Sim.Thread_state.advance_fall_through th
  done;
  Alcotest.(check int) "last pc" (len - 1) th.pc;
  Sim.Thread_state.advance_fall_through th;
  Alcotest.(check int) "fall-through block" prog.blocks.(0).fall_through th.block;
  Alcotest.(check int) "pc reset" 0 th.pc

let test_thread_state_jump () =
  let prog = program () in
  let th = Sim.Thread_state.create ~id:0 ~seed:1L prog in
  let target =
    match
      C.Program.exit_target prog.blocks.(0)
        (Array.length prog.blocks.(0).instrs - 1)
    with
    | Some t -> t
    | None -> Alcotest.fail "last instruction must be an exit"
  in
  Sim.Thread_state.jump_taken th ~target;
  Alcotest.(check int) "taken target" target th.block;
  Alcotest.(check int) "pc reset" 0 th.pc

let test_thread_state_stall () =
  let prog = program () in
  let th = Sim.Thread_state.create ~id:0 ~seed:1L prog in
  th.resume_at <- 10;
  Alcotest.(check bool) "stalled before" true (Sim.Thread_state.stalled th ~now:9);
  Alcotest.(check bool) "ready at" false (Sim.Thread_state.stalled th ~now:10)

let test_thread_regions_disjoint () =
  let prog = program () in
  let a = Sim.Thread_state.create ~id:0 ~seed:1L prog in
  let b = Sim.Thread_state.create ~id:1 ~seed:1L prog in
  Alcotest.(check bool) "disjoint regions" true
    (Vliw_mem.Addr_stream.region_base a.addr_stream
    <> Vliw_mem.Addr_stream.region_base b.addr_stream)

(* --- Core --- *)

let test_core_single_thread_progress () =
  let prog = program () in
  let config = Sim.Config.make (M.Scheme.thread 0) in
  let mem = Vliw_mem.Mem_system.create ~perfect:true machine in
  let core = Sim.Core.create config mem in
  let th = Sim.Thread_state.create ~id:0 ~seed:1L prog in
  Sim.Core.install core [| Some th |];
  for _ = 1 to 1000 do
    Sim.Core.step core
  done;
  Alcotest.(check int) "cycles" 1000 (Sim.Core.cycle core);
  Alcotest.(check bool) "instructions retired" true (th.instrs_retired > 100);
  Alcotest.(check int) "core counters match thread" th.instrs_retired
    (Sim.Core.instrs_issued core);
  Alcotest.(check int) "ops counters match" th.ops_retired (Sim.Core.ops_issued core)

let test_core_empty_contexts () =
  let config = Sim.Config.make (scheme "3SSS") in
  let mem = Vliw_mem.Mem_system.create machine in
  let core = Sim.Core.create config mem in
  Sim.Core.install core (Array.make 4 None);
  for _ = 1 to 100 do
    Sim.Core.step core
  done;
  Alcotest.(check int) "no ops" 0 (Sim.Core.ops_issued core);
  Alcotest.(check int) "all vertical waste" 100 (Sim.Core.vertical_waste_cycles core)

let test_core_install_arity () =
  let config = Sim.Config.make (scheme "3SSS") in
  let core = Sim.Core.create config (Vliw_mem.Mem_system.create machine) in
  Alcotest.check_raises "arity"
    (Invalid_argument "Core.install: context count mismatch") (fun () ->
      Sim.Core.install core [| None |])

let test_issue_hist_consistent () =
  let metrics = run "3SSS" (Vliw_workloads.Mixes.find_exn "MMMM").members in
  let total = Array.fold_left ( + ) 0 metrics.issue_hist in
  Alcotest.(check int) "hist sums to cycles" metrics.cycles total;
  let weighted = ref 0 in
  Array.iteri (fun k c -> weighted := !weighted + (k * c)) metrics.issue_hist;
  Alcotest.(check int) "hist weights sum to instrs" metrics.instrs !weighted

(* --- Multitask --- *)

let test_run_deterministic () =
  let members = (Vliw_workloads.Mixes.find_exn "LLMM").members in
  let a = run ~seed:9L "2SC3" members in
  let b = run ~seed:9L "2SC3" members in
  Alcotest.(check int) "same cycles" a.cycles b.cycles;
  Alcotest.(check int) "same ops" a.ops b.ops;
  let c = run ~seed:10L "2SC3" members in
  Alcotest.(check bool) "different seed differs" true (a.ops <> c.ops)

let test_perfect_at_least_real () =
  let members = (Vliw_workloads.Mixes.find_exn "LLHH").members in
  let real = run ~perfect:false "3SSS" members in
  let perfect = run ~perfect:true "3SSS" members in
  Alcotest.(check bool)
    (Printf.sprintf "perfect %.2f >= real %.2f" (Sim.Metrics.ipc perfect)
       (Sim.Metrics.ipc real))
    true
    (Sim.Metrics.ipc perfect >= Sim.Metrics.ipc real)

let test_more_threads_help () =
  let members = (Vliw_workloads.Mixes.find_exn "LLMM").members in
  let st = Sim.Metrics.ipc (run "ST" members) in
  let smt2 = Sim.Metrics.ipc (run "1S" members) in
  let smt4 = Sim.Metrics.ipc (run "3SSS" members) in
  Alcotest.(check bool) (Printf.sprintf "1S %.2f > ST %.2f" smt2 st) true (smt2 > st);
  Alcotest.(check bool) (Printf.sprintf "3SSS %.2f > 1S %.2f" smt4 smt2) true (smt4 > smt2)

let test_smt_beats_csmt () =
  let members = (Vliw_workloads.Mixes.find_exn "LLHH").members in
  let smt = Sim.Metrics.ipc (run "3SSS" members) in
  let csmt = Sim.Metrics.ipc (run "3CCC" members) in
  Alcotest.(check bool) (Printf.sprintf "3SSS %.2f > 3CCC %.2f" smt csmt) true (smt > csmt)

let test_mixed_scheme_between () =
  let members = (Vliw_workloads.Mixes.find_exn "LLHH").members in
  let schedule =
    { Sim.Multitask.timeslice = 10_000; target_instrs = 60_000; max_cycles = 120_000 }
  in
  let smt = Sim.Metrics.ipc (run ~schedule "3SSS" members) in
  let csmt = Sim.Metrics.ipc (run ~schedule "3CCC" members) in
  let mixed = Sim.Metrics.ipc (run ~schedule "2SC3" members) in
  Alcotest.(check bool)
    (Printf.sprintf "csmt %.2f <= 2SC3 %.2f <= smt %.2f" csmt mixed smt)
    true
    (mixed >= csmt *. 0.98 && mixed <= smt *. 1.02)

let test_multitask_more_threads_than_contexts () =
  (* 4 software threads on the 2-context 1S processor: all make progress
     thanks to timeslice rotation. *)
  let members = (Vliw_workloads.Mixes.find_exn "MMMM").members in
  let schedule =
    { Sim.Multitask.timeslice = 2_000; target_instrs = 1_000_000; max_cycles = 50_000 }
  in
  let metrics = run ~schedule "1S" members in
  Alcotest.(check int) "4 threads tracked" 4 (Array.length metrics.per_thread);
  Array.iter
    (fun (pt : Sim.Metrics.per_thread) ->
      Alcotest.(check bool) (pt.name ^ " progressed") true (pt.instrs > 0))
    metrics.per_thread

let test_rotation_fairness () =
  (* Four identical threads on 3CCC: with rotation no thread starves. *)
  let p = profile ~width:3.0 ~ops:30 () in
  let members = [ p; p; p; p ] in
  let schedule =
    { Sim.Multitask.timeslice = 50_000; target_instrs = 1_000_000; max_cycles = 30_000 }
  in
  let metrics = run ~schedule "3CCC" members in
  let counts =
    Array.map (fun (pt : Sim.Metrics.per_thread) -> float_of_int pt.instrs)
      metrics.per_thread
  in
  let mn, mx = Vliw_util.Stats.min_max counts in
  Alcotest.(check bool)
    (Printf.sprintf "balanced %.0f..%.0f" mn mx)
    true
    (mn > 0.5 *. mx)

let test_target_instrs_stops () =
  let members = [ profile () ] in
  let schedule =
    { Sim.Multitask.timeslice = 5_000; target_instrs = 2_000; max_cycles = 1_000_000 }
  in
  let metrics = run ~schedule "ST" members in
  Alcotest.(check bool) "stopped early" true (metrics.cycles < 100_000);
  Alcotest.(check bool) "reached target" true (metrics.per_thread.(0).instrs >= 2_000)

let test_ablation_flags () =
  let members = (Vliw_workloads.Mixes.find_exn "LLHH").members in
  let run_cfg ~rotate ~stall =
    let config =
      Sim.Config.make ~rotate_priority:rotate ~stall_on_dmiss:stall (scheme "3CCC")
    in
    Sim.Metrics.ipc (Sim.Multitask.run config ~seed:3L ~schedule:quick members)
  in
  let base = run_cfg ~rotate:true ~stall:true in
  let no_stall = run_cfg ~rotate:true ~stall:false in
  Alcotest.(check bool)
    (Printf.sprintf "non-blocking misses help (%.2f >= %.2f)" no_stall base)
    true (no_stall >= base);
  (* Fixed priority must still run (value depends on workload). *)
  let fixed = run_cfg ~rotate:false ~stall:true in
  Alcotest.(check bool) "fixed priority runs" true (fixed > 0.0)

let test_metrics_derived () =
  let metrics = run "2SC3" (Vliw_workloads.Mixes.find_exn "HHHH").members in
  Alcotest.(check bool) "ipc positive" true (Sim.Metrics.ipc metrics > 0.0);
  Alcotest.(check bool) "vwaste in [0,1]" true
    (Sim.Metrics.vertical_waste metrics >= 0.0
    && Sim.Metrics.vertical_waste metrics <= 1.0);
  Alcotest.(check bool) "hwaste in [0,1]" true
    (Sim.Metrics.horizontal_waste metrics >= 0.0
    && Sim.Metrics.horizontal_waste metrics <= 1.0);
  Alcotest.(check bool) "merge degree >= 1" true
    (Sim.Metrics.avg_threads_merged metrics >= 1.0);
  Alcotest.(check bool) "merge degree <= 4" true
    (Sim.Metrics.avg_threads_merged metrics <= 4.0)

let test_horizontal_waste_fractional () =
  (* Regression: busy_slots used to be computed with an integer
     division (slots_offered / cycles), truncating the per-cycle width
     before scaling. With cycles=3, offered=10, ops=4 and one vertical
     cycle, busy_slots is 2 * 10/3 = 6.67 and the waste 1 - 4/6.67 =
     0.4; the truncating code said 1 - 4/6 = 0.33. *)
  let m : Sim.Metrics.t =
    {
      cycles = 3;
      ops = 4;
      instrs = 4;
      issue_hist = [| 1; 2 |];
      vertical_waste_cycles = 1;
      slots_offered = 10;
      icache_accesses = 0;
      icache_misses = 0;
      dcache_accesses = 0;
      dcache_misses = 0;
      per_thread = [||];
    }
  in
  Alcotest.(check (float 1e-9)) "fractional slots per cycle" 0.4
    (Sim.Metrics.horizontal_waste m)

let golden_trace =
  "Trace: S(T0,T1) on 2-cluster x 4-issue (lsu=1 mul=2 br=1; I$=64KB/4w \
   D$=64KB/4w miss=20cyc) (cycles 40-47)\n\
   Per thread: cluster usage of the offered instruction (X = used), or\n\
   '----' if stalled; '*' marks threads the merge network issued.\n\
   'rot' is the priority rotation: scheme port i reads hardware\n\
   thread (i + rot) mod n, so the SMT pair of a mixed scheme serves\n\
   different thread pairs on different cycles.\n\n\
  \   cycle  rot       T0:mcf T1:g721encode  issued packet\n\
  \      40    0          --           --   (nothing issued)\n\
  \      41    1          .X*          --          -       -       -       \
   - |  mov[0]       -       -       -\n\
  \      42    0          XX*          .X*     ld[0]       -       -       \
   - |   ld[0]  add[1]  add[1]       -\n\
  \      43    1          ..*          .X*         -       -       -       \
   - |  mov[1]  mov[1]       -       -\n\
  \      44    0          --           X.*    add[1]  mpy[1]  add[1]  \
   add[1] |       -       -       -       -\n\
  \      45    1          --           X.*    add[1]       -       -       \
   - |       -       -       -       -\n\
  \      46    0          --           --   (nothing issued)\n\
  \      47    1          --           --   (nothing issued)\n"

let test_trace_golden () =
  (* Pins the inspector's exact rendering on a tiny 2-thread, 2-cluster
     run: the header, the '*' issued markers, '--' stall cells and the
     routed packets. Any formatting or simulation change shows up as a
     diff here. *)
  let machine = Vliw_isa.Machine.make ~clusters:2 () in
  let scheme = (Vliw_merge.Catalog.find_exn "1S").scheme in
  let config = Sim.Config.make ~machine scheme in
  let profiles =
    [
      Vliw_workloads.Benchmarks.find_exn "mcf";
      Vliw_workloads.Benchmarks.find_exn "g721encode";
    ]
  in
  let options =
    { Sim.Trace.cycles = 8; warmup = 40; perfect_mem = false; seed = 0x7ACEL }
  in
  Alcotest.(check string) "golden trace" golden_trace
    (Sim.Trace.run config ~options profiles)

let suite =
  ( "sim",
    [
      Alcotest.test_case "thread walks blocks" `Quick test_thread_state_walk;
      Alcotest.test_case "thread jump taken" `Quick test_thread_state_jump;
      Alcotest.test_case "thread stall" `Quick test_thread_state_stall;
      Alcotest.test_case "thread regions disjoint" `Quick test_thread_regions_disjoint;
      Alcotest.test_case "core single-thread progress" `Quick
        test_core_single_thread_progress;
      Alcotest.test_case "core empty contexts" `Quick test_core_empty_contexts;
      Alcotest.test_case "core install arity" `Quick test_core_install_arity;
      Alcotest.test_case "issue histogram consistent" `Quick test_issue_hist_consistent;
      Alcotest.test_case "run deterministic" `Quick test_run_deterministic;
      Alcotest.test_case "perfect >= real" `Quick test_perfect_at_least_real;
      Alcotest.test_case "more threads help" `Quick test_more_threads_help;
      Alcotest.test_case "smt beats csmt" `Quick test_smt_beats_csmt;
      Alcotest.test_case "mixed scheme in between" `Quick test_mixed_scheme_between;
      Alcotest.test_case "multitasking over few contexts" `Quick
        test_multitask_more_threads_than_contexts;
      Alcotest.test_case "rotation fairness" `Quick test_rotation_fairness;
      Alcotest.test_case "target instrs stops run" `Quick test_target_instrs_stops;
      Alcotest.test_case "ablation flags" `Quick test_ablation_flags;
      Alcotest.test_case "metrics derived values" `Quick test_metrics_derived;
      Alcotest.test_case "horizontal waste fractional slots" `Quick
        test_horizontal_waste_fractional;
      Alcotest.test_case "trace golden" `Quick test_trace_golden;
    ] )
