(* Table-driven exit-code contract of the vliwsim binary.

   The convention (documented in bin/vliwsim.ml): 0 success, 1 runtime
   error, 2 usage error — uniformly across subcommands, diagnostics on
   stderr. Each case invokes the real executable (declared as a dune
   test dependency) as a subprocess. *)

let vliwsim = "../bin/vliwsim.exe"

let run_cli args =
  (* stdout/stderr silenced: only the exit code is under test here *)
  match Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" vliwsim args) with
  | n -> n

let cases =
  [
    (* usage errors: exit 2 *)
    ("exp no-such-experiment -q", 2);
    ("exp fig4 --scale bogus -q", 2);
    ("exp fig10 --resume -q", 2);
    (* --resume without --checkpoint *)
    ("exp fig10 --max-retries=-1 -q", 2);
    ("no-such-subcommand", 2);
    ("exp", 2);
    (* missing positional argument *)
    ("run --scheme NOPE --scale quick", 2);
    ("run --mix NOPE --scale quick", 2);
    ("run --benchmarks nope --scale quick", 2);
    ("trace --mix NOPE", 2);
    ("compile --benchmark nope", 2);
    ("compile --mode nope", 2);
    ("profile no-such-experiment -q", 2);
    (* runtime errors: exit 1 (journal path in a missing directory) *)
    ("exp fig10 --scale quick -q --checkpoint /nonexistent-dir/x/ck", 1);
    (* successes: exit 0 *)
    ("schemes", 0);
    ("benchmarks", 0);
    ("exp list", 0);
    ("exp fig5 -q", 0);
    ("--version", 0);
    ("--help", 0);
    ("exp --help", 0);
  ]

let test_exit_codes () =
  List.iter
    (fun (args, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "vliwsim %s -> exit %d" args expected)
        expected (run_cli args))
    cases

let suite =
  ( "cli",
    [ Alcotest.test_case "exit code contract" `Quick test_exit_codes ] )
