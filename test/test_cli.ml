(* Table-driven exit-code contract of the vliwsim binary.

   The convention (documented in bin/vliwsim.ml): 0 success, 1 runtime
   error, 2 usage error — uniformly across subcommands, diagnostics on
   stderr. Each case invokes the real executable (declared as a dune
   test dependency) as a subprocess. *)

let vliwsim = "../bin/vliwsim.exe"

let run_cli args =
  (* stdout/stderr silenced: only the exit code is under test here *)
  match Sys.command (Printf.sprintf "%s %s >/dev/null 2>&1" vliwsim args) with
  | n -> n

let cases =
  [
    (* usage errors: exit 2 *)
    ("exp no-such-experiment -q", 2);
    ("exp fig4 --scale bogus -q", 2);
    ("exp fig10 --resume -q", 2);
    (* --resume without --checkpoint *)
    ("exp fig10 --max-retries=-1 -q", 2);
    ("no-such-subcommand", 2);
    ("exp", 2);
    (* missing positional argument *)
    ("run --scheme NOPE --scale quick", 2);
    ("run --mix NOPE --scale quick", 2);
    ("run --benchmarks nope --scale quick", 2);
    ("trace --mix NOPE", 2);
    ("compile --benchmark nope", 2);
    ("compile --mode nope", 2);
    ("profile no-such-experiment -q", 2);
    ("serve", 2);
    (* no --socket/--tcp listener *)
    ("submit", 2);
    (* no --socket/--tcp endpoint *)
    ("submit --socket /tmp/x.sock --op bogus", 2);
    ("submit --socket /tmp/x.sock --scale bogus", 2);
    ("dist --workers 0", 2);
    (* no transport at all *)
    ("dist --workers=-1", 2);
    ("dist --resume", 2);
    (* --resume without --checkpoint *)
    ("exp fig10 --workers=-1 -q", 2);
    ("exp fig10 --replicates=-1 -q", 2);
    ("worker --connect /tmp/x.sock --connect-tcp 9", 2);
    (* conflicting transports *)
    ("runs merge --runs-dir /tmp/x", 2);
    (* no source ledgers *)
    ("runs merge --runs-dir /tmp/x /nonexistent-vliw-ledger", 2);
    (* source without a ledger file *)
    (* runtime errors: exit 1 (journal path in a missing directory) *)
    ("exp fig10 --scale quick -q --checkpoint /nonexistent-dir/x/ck", 1);
    (* a library-level Invalid_argument surfaces as a diagnostic + exit
       1 (runtime error), never exit 2 (reserved for usage problems) *)
    ("run --scale quick --trace-len 0", 1);
    ("submit --socket /nonexistent-dir/absent.sock", 1);
    (* no daemon listening *)
    (* successes: exit 0 *)
    ("schemes", 0);
    ("benchmarks", 0);
    ("exp list", 0);
    ("runs gc --dry-run --runs-dir /nonexistent-vliw-ledger", 0);
    (* gc of an absent ledger is an empty no-op *)
    ("exp fig5 -q", 0);
    ("--version", 0);
    ("--help", 0);
    ("exp --help", 0);
  ]

let test_exit_codes () =
  List.iter
    (fun (args, expected) ->
      Alcotest.(check int)
        (Printf.sprintf "vliwsim %s -> exit %d" args expected)
        expected (run_cli args))
    cases

(* --- run ledger / report flow ----------------------------------------- *)

let contains ~needle haystack =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let read_file path =
  if Sys.file_exists path then In_channel.with_open_bin path In_channel.input_all
  else ""

(* End-to-end contract of the observability surface: every run records a
   ledger entry, runs list/show/diff/export-metrics/lint and report obey
   the exit-code convention, diagnostics go to stderr and data to
   stdout. *)
let test_runs_and_report_flow () =
  let dir = Filename.temp_file "vliwcli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let runs_dir = Filename.concat dir "runs" in
  let out = Filename.concat dir "out.txt"
  and err = Filename.concat dir "err.txt" in
  let cli args =
    Sys.command (Printf.sprintf "%s %s >%s 2>%s" vliwsim args out err)
  in
  let quick = Printf.sprintf "run --scheme 2SC3 --mix LLHH --scale quick --runs-dir %s" runs_dir in
  (* two identical runs and one with a perturbed seed *)
  Alcotest.(check int) "run records a ledger entry" 0 (cli quick);
  Alcotest.(check bool) "recording note on stderr" true
    (contains ~needle:"recorded run r1" (read_file err));
  Alcotest.(check bool) "simulation data on stdout" true
    (contains ~needle:"IPC" (read_file out));
  Alcotest.(check int) "second identical run" 0 (cli quick);
  Alcotest.(check int) "perturbed-seed run" 0 (cli (quick ^ " --seed 7"));
  (* --no-ledger leaves the store untouched *)
  Alcotest.(check int) "opt-out run" 0 (cli (quick ^ " --no-ledger"));
  (* list: table on stdout *)
  Alcotest.(check int) "runs list" 0
    (cli (Printf.sprintf "runs list --runs-dir %s" runs_dir));
  let listing = read_file out in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " listed") true
        (contains ~needle listing))
    [ "r1"; "r2"; "r3" ];
  Alcotest.(check bool) "opt-out run not recorded" false
    (contains ~needle:"r4" listing);
  (* show *)
  Alcotest.(check int) "runs show" 0
    (cli (Printf.sprintf "runs show --runs-dir %s r1" runs_dir));
  Alcotest.(check bool) "show prints the fingerprint" true
    (contains ~needle:"fingerprint" (read_file out));
  (* diff: identical runs exit 0, drifted runs exit 1 and name the cell *)
  Alcotest.(check int) "diff identical" 0
    (cli (Printf.sprintf "runs diff --runs-dir %s r1 r2" runs_dir));
  Alcotest.(check bool) "diff reports bit-identical" true
    (contains ~needle:"bit-identical" (read_file out));
  Alcotest.(check int) "diff drifted" 1
    (cli (Printf.sprintf "runs diff --runs-dir %s r1 r3" runs_dir));
  Alcotest.(check bool) "diff names the first drifting cell" true
    (contains ~needle:"first drift at (LLHH, 2SC3)" (read_file out));
  (* export-metrics round-trips through the in-repo linter *)
  let prom = Filename.concat dir "metrics.prom" in
  Alcotest.(check int) "export-metrics" 0
    (cli (Printf.sprintf "runs export-metrics --runs-dir %s latest -o %s" runs_dir prom));
  Alcotest.(check int) "lint accepts our exposition" 0
    (cli (Printf.sprintf "runs lint %s" prom));
  let bad = Filename.concat dir "bad.prom" in
  Out_channel.with_open_bin bad (fun oc ->
      output_string oc "bogus{ 1\nno_type_line 2\n");
  Alcotest.(check int) "lint rejects a broken exposition" 1
    (cli (Printf.sprintf "runs lint %s" bad));
  Alcotest.(check bool) "violations on stderr" true
    (contains ~needle:"violation" (read_file err));
  (* report: one self-contained file *)
  let html = Filename.concat dir "report.html" in
  Alcotest.(check int) "report" 0
    (cli (Printf.sprintf "report --runs-dir %s --run r1 -o %s" runs_dir html));
  let doc = read_file html in
  Alcotest.(check bool) "report has inline SVG" true (contains ~needle:"<svg" doc);
  Alcotest.(check bool) "report has no scripts" false
    (contains ~needle:"<script" doc);
  Alcotest.(check bool) "report has no external URLs" false
    (contains ~needle:"http" doc);
  (* usage errors: unknown id, empty ledger *)
  Alcotest.(check int) "unknown run id" 2
    (cli (Printf.sprintf "runs show --runs-dir %s r99" runs_dir));
  Alcotest.(check int) "empty ledger is a usage error" 2
    (cli (Printf.sprintf "runs show --runs-dir %s latest" (Filename.concat dir "void")));
  Alcotest.(check int) "report on empty ledger" 2
    (cli (Printf.sprintf "report --runs-dir %s" (Filename.concat dir "void")));
  Alcotest.(check int) "lint on a missing file" 2
    (cli (Printf.sprintf "runs lint %s" (Filename.concat dir "nope.prom")));
  (* listing an empty ledger is informational, not an error *)
  Alcotest.(check int) "runs list on empty ledger" 0
    (cli (Printf.sprintf "runs list --runs-dir %s" (Filename.concat dir "void")));
  Alcotest.(check string) "empty listing keeps stdout clean" ""
    (read_file out)

(* --log-json flag plumbing: accepted under -q, the stream file is
   created even when the experiment emits no sweep events. The stream's
   content is covered at the library level (test_observability) and the
   full `exp fig10 --log-json` path by the CI smoke job — a quick fig10
   sweep is too slow for the unit suite. *)
let test_log_json_stream () =
  let dir = Filename.temp_file "vliwcli" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  let events = Filename.concat dir "events.ndjson" in
  Alcotest.(check int) "exp with --log-json succeeds" 0
    (Sys.command
       (Printf.sprintf "%s exp fig5 -q --no-ledger --log-json %s >/dev/null 2>&1"
          vliwsim events));
  Alcotest.(check bool) "stream file created" true (Sys.file_exists events)

let suite =
  ( "cli",
    [
      Alcotest.test_case "exit code contract" `Quick test_exit_codes;
      Alcotest.test_case "runs and report flow" `Quick test_runs_and_report_flow;
      Alcotest.test_case "--log-json event stream" `Quick test_log_json_stream;
    ] )
