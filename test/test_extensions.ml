(* Scheme_space, fixed-slot conflict mode, Ablations, Ext8, and the
   scheduler's unschedulable-op guard. *)
module Isa = Vliw_isa
module M = Vliw_merge
module E = Vliw_experiments
module Q = QCheck

let m = Isa.Machine.default

(* --- Scheme_space --- *)

let test_shapes () =
  Alcotest.(check int) "shapes 1" 1 (M.Scheme_space.shapes 1);
  Alcotest.(check int) "shapes 2" 1 (M.Scheme_space.shapes 2);
  Alcotest.(check int) "shapes 3" 3 (M.Scheme_space.shapes 3);
  Alcotest.(check int) "shapes 4" 11 (M.Scheme_space.shapes 4);
  Alcotest.(check int) "shapes 5" 45 (M.Scheme_space.shapes 5)

let test_enumerate_valid () =
  let all = M.Scheme_space.enumerate 4 in
  Alcotest.(check bool) "non-trivial count" true (List.length all > 100);
  List.iter
    (fun s ->
      Alcotest.(check bool)
        (M.Scheme.to_string s ^ " valid")
        true
        (M.Scheme.validate s = Ok ());
      Alcotest.(check int) "4 threads" 4 (M.Scheme.n_threads s))
    all

let test_enumerate_small () =
  (* 2 threads: S(T0,T1), C(T0,T1), Cp(T0,T1). *)
  Alcotest.(check int) "n=2 gives 3" 3 (List.length (M.Scheme_space.enumerate 2));
  Alcotest.(check int) "n=1 gives the bare thread" 1
    (List.length (M.Scheme_space.enumerate 1))

let test_enumerate_contains_catalog () =
  let structures =
    List.map M.Scheme.to_string (M.Scheme_space.enumerate 4)
  in
  List.iter
    (fun (e : M.Catalog.entry) ->
      if M.Scheme.n_threads e.scheme = 4 then
        Alcotest.(check bool)
          (e.name ^ " enumerated")
          true
          (List.mem (M.Scheme.to_string e.scheme) structures))
    M.Catalog.all

let test_enumerate_distinct () =
  let structures = List.map M.Scheme.to_string (M.Scheme_space.enumerate 4) in
  let sorted = List.sort_uniq compare structures in
  Alcotest.(check int) "no duplicates" (List.length structures) (List.length sorted)

let test_max_nodes_filter () =
  let small = M.Scheme_space.enumerate ~max_nodes:1 4 in
  (* Only the single parallel CSMT block spans 4 threads in one node. *)
  Alcotest.(check int) "only C4" 1 (List.length small);
  Alcotest.(check string) "it is C4" "Cp(T0,T1,T2,T3)"
    (M.Scheme.to_string (List.hd small))

(* --- fixed-slot conflict mode --- *)

let ops klasses = List.mapi (fun i k -> Isa.Op.make k i) klasses

let packet thread klass_lists =
  M.Packet.of_instr m ~thread
    (Isa.Instr.of_cluster_ops ~addr:0 (Array.of_list (List.map ops klass_lists)))

let test_fixed_slots_stricter_example () =
  (* Two 1-ALU instructions on cluster 0: flexible routing packs them in
     different slots; fixed-slot pins both to slot 0 and collides. *)
  let a = packet 0 [ [ Isa.Op.Alu ]; []; []; [] ] in
  let b = packet 1 [ [ Isa.Op.Alu ]; []; []; [] ] in
  Alcotest.(check bool) "flexible merges" true (M.Conflict.smt_compatible m a b);
  Alcotest.(check bool) "fixed slots collide" false
    (M.Conflict.smt_compatible_fixed m a b)

let test_fixed_slots_disjoint_ok () =
  (* A memory op (slot 0) and a multiply (slot 1) pin to different
     slots: fixed-slot merging succeeds. *)
  let a = packet 0 [ [ Isa.Op.Load ]; []; []; [] ] in
  let b = packet 1 [ [ Isa.Op.Mul ]; []; []; [] ] in
  Alcotest.(check bool) "fixed slots disjoint" true
    (M.Conflict.smt_compatible_fixed m a b);
  (* Different clusters trivially fine. *)
  let c = packet 1 [ []; [ Isa.Op.Alu ]; []; [] ] in
  Alcotest.(check bool) "different clusters" true
    (M.Conflict.smt_compatible_fixed m a c)

let prop_fixed_implies_flexible =
  Q.Test.make ~name:"fixed-slot compatibility implies flexible" ~count:300
    Q.(pair (Tgen.instr_arb ()) (Tgen.instr_arb ()))
    (fun (i1, i2) ->
      let a = M.Packet.of_instr m ~thread:0 i1 in
      let b = M.Packet.of_instr m ~thread:1 i2 in
      Q.assume (M.Conflict.smt_compatible_fixed m a b);
      M.Conflict.smt_compatible m a b)

let test_engine_fixed_mode () =
  let t0 = Some (packet 0 [ [ Isa.Op.Alu ]; []; []; [] ]) in
  let t1 = Some (packet 1 [ [ Isa.Op.Alu ]; []; []; [] ]) in
  let scheme = (M.Catalog.find_exn "1S").scheme in
  let flexible = M.Engine.select m scheme [| t0; t1 |] in
  let fixed =
    M.Engine.select m ~routing:M.Conflict.Fixed_slots scheme [| t0; t1 |]
  in
  Alcotest.(check (list int)) "flexible issues both" [ 0; 1 ] flexible.issued;
  Alcotest.(check (list int)) "fixed issues one" [ 0 ] fixed.issued

(* --- scheduler guard --- *)

let test_scheduler_rejects_unschedulable () =
  let nodes = [| { Vliw_compiler.Dag.id = 0; klass = Isa.Op.Mul; preds = []; level = 0 } |] in
  let no_mul = Isa.Machine.make ~n_mul:0 () in
  Alcotest.check_raises "no multiplier"
    (Invalid_argument
       "List_scheduler.schedule: machine has no slot for mpy operations")
    (fun () ->
      ignore
        (Vliw_compiler.List_scheduler.schedule no_mul { nodes; live_in = [] }
           ~assignment:[| 0 |]
           ~base_addr:0 ~instr_bytes:64))

(* --- ablations --- *)

let ablation_rows =
  lazy (E.Ablations.run ~scale:E.Common.Quick ~mixes:[ "LLHH" ] ())

let find_variant rows label =
  List.find (fun (r : E.Ablations.row) -> r.variant = label) rows

let ipc_of row scheme = List.assoc scheme (row : E.Ablations.row).ipc_by_scheme

let test_ablation_structure () =
  let rows = Lazy.force ablation_rows in
  Alcotest.(check int) "4 variants" 4 (List.length rows);
  List.iter
    (fun (r : E.Ablations.row) ->
      Alcotest.(check int) (r.variant ^ " has 3 schemes") 3
        (List.length r.ipc_by_scheme))
    rows

let test_ablation_nonblocking_helps () =
  let rows = Lazy.force ablation_rows in
  let base = find_variant rows "baseline" in
  let nb = find_variant rows "nonblocking-dmiss" in
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        (scheme ^ ": non-blocking >= baseline")
        true
        (ipc_of nb scheme >= ipc_of base scheme))
    [ "3CCC"; "2SC3"; "3SSS" ]

let test_ablation_fixed_slots_hurts_smt () =
  let rows = Lazy.force ablation_rows in
  let base = find_variant rows "baseline" in
  let fs = find_variant rows "fixed-slot-smt" in
  (* CSMT has no SMT block: unaffected. SMT loses performance. *)
  Alcotest.(check (float 1e-9)) "3CCC unaffected" (ipc_of base "3CCC")
    (ipc_of fs "3CCC");
  Alcotest.(check bool) "3SSS degrades" true
    (ipc_of fs "3SSS" < ipc_of base "3SSS")

let test_ablation_render () =
  let out = E.Ablations.render (Lazy.force ablation_rows) in
  Alcotest.(check bool) "mentions fixed-slot" true
    (let needle = "fixed-slot-smt" in
     let rec go i =
       i + String.length needle <= String.length out
       && (String.sub out i (String.length needle) = needle || go (i + 1))
     in
     go 0)

(* --- ext8 --- *)

let test_ext8_structure () =
  List.iter
    (fun (e : E.Ext8.entry) ->
      Alcotest.(check int) (e.name ^ " is 8-thread") 8
        (M.Scheme.n_threads e.scheme);
      Alcotest.(check bool) (e.name ^ " valid") true
        (M.Scheme.validate e.scheme = Ok ()))
    E.Ext8.schemes

let test_ext8_quick_run () =
  let rows = E.Ext8.run ~scale:E.Common.Quick () in
  Alcotest.(check int) "6 schemes" 6 (List.length rows);
  let get name = List.find (fun (r : E.Ext8.row) -> r.name = name) rows in
  (* SMT8 is the most expensive and the fastest; C8 selections equal the
     serial CSMT8's, so their IPC matches. *)
  let smt8 = get "SMT8" and c8 = get "C8" and csmt8 = get "CSMT8" in
  Alcotest.(check bool) "SMT8 fastest" true
    (List.for_all (fun (r : E.Ext8.row) -> smt8.avg_ipc >= r.avg_ipc) rows);
  Alcotest.(check bool) "SMT8 costliest" true
    (List.for_all (fun (r : E.Ext8.row) -> smt8.transistors >= r.transistors) rows);
  Alcotest.(check (float 1e-9)) "C8 = CSMT8 performance" c8.avg_ipc csmt8.avg_ipc;
  Alcotest.(check bool) "C8 faster delay than CSMT8" true (c8.delay < csmt8.delay);
  let sc7 = get "2SC7" in
  Alcotest.(check bool) "2SC7 between CSMT8 and SMT8" true
    (sc7.avg_ipc >= csmt8.avg_ipc && sc7.avg_ipc <= smt8.avg_ipc)

let suite =
  ( "extensions",
    [
      Alcotest.test_case "schroeder shapes" `Quick test_shapes;
      Alcotest.test_case "enumerate valid" `Quick test_enumerate_valid;
      Alcotest.test_case "enumerate small" `Quick test_enumerate_small;
      Alcotest.test_case "enumerate covers catalog" `Quick
        test_enumerate_contains_catalog;
      Alcotest.test_case "enumerate distinct" `Quick test_enumerate_distinct;
      Alcotest.test_case "max_nodes filter" `Quick test_max_nodes_filter;
      Alcotest.test_case "fixed slots stricter" `Quick test_fixed_slots_stricter_example;
      Alcotest.test_case "fixed slots disjoint ok" `Quick test_fixed_slots_disjoint_ok;
      Tgen.to_alcotest prop_fixed_implies_flexible;
      Alcotest.test_case "engine fixed mode" `Quick test_engine_fixed_mode;
      Alcotest.test_case "scheduler rejects unschedulable" `Quick
        test_scheduler_rejects_unschedulable;
      Alcotest.test_case "ablation structure" `Quick test_ablation_structure;
      Alcotest.test_case "non-blocking dmiss helps" `Quick
        test_ablation_nonblocking_helps;
      Alcotest.test_case "fixed slots hurt SMT only" `Quick
        test_ablation_fixed_slots_hurts_smt;
      Alcotest.test_case "ablation render" `Quick test_ablation_render;
      Alcotest.test_case "ext8 schemes structure" `Quick test_ext8_structure;
      Alcotest.test_case "ext8 quick run" `Quick test_ext8_quick_run;
    ] )

(* --- scheme name parser --- *)

let test_name_parser_catalog_names () =
  (* Every catalog name parses to the catalog's own structure. *)
  List.iter
    (fun (e : M.Catalog.entry) ->
      match M.Scheme_name.parse e.name with
      | Error msg -> Alcotest.failf "%s: %s" e.name msg
      | Ok s ->
        Alcotest.(check bool) (e.name ^ " structure") true (M.Scheme.equal s e.scheme))
    M.Catalog.all

let test_name_parser_generalises () =
  let check name expected =
    match M.Scheme_name.parse name with
    | Error msg -> Alcotest.failf "%s: %s" name msg
    | Ok s -> Alcotest.(check string) name expected (M.Scheme.to_string s)
  in
  check "7SSSSSSS" "S(S(S(S(S(S(S(T0,T1),T2),T3),T4),T5),T6),T7)";
  check "2SC7" "Cp(S(T0,T1),T2,T3,T4,T5,T6,T7)";
  check "C6" "Cp(T0,T1,T2,T3,T4,T5)";
  check "4SCCC" "C(C(C(S(T0,T1),T2),T3),T4)";
  check "2C3S" "S(Cp(T0,T1,T2),T3)";
  (* Lowercase and whitespace tolerated. *)
  check " 3scc " "C(C(S(T0,T1),T2),T3)"

let test_name_parser_rejects () =
  let rejected name =
    match M.Scheme_name.parse name with
    | Ok s -> Alcotest.failf "%s unexpectedly parsed to %s" name (M.Scheme.to_string s)
    | Error _ -> ()
  in
  rejected "";
  rejected "XYZ";
  rejected "2S";      (* declares 2 levels, lists one *)
  rejected "1SX";     (* trailing garbage *)
  rejected "2SS3";    (* parallel SMT *)
  rejected "C1";      (* arity < 2 *)
  rejected "0S"

let test_name_parser_valid_schemes () =
  List.iter
    (fun name ->
      let s = M.Scheme_name.parse_exn name in
      Alcotest.(check bool) (name ^ " validates") true (M.Scheme.validate s = Ok ()))
    [ "5SSCCC"; "3C4CC"; "2SC3"; "C8"; "6CCCCCC" ]

let parser_tests =
  [
    Alcotest.test_case "parser: catalog names" `Quick test_name_parser_catalog_names;
    Alcotest.test_case "parser: generalised names" `Quick test_name_parser_generalises;
    Alcotest.test_case "parser: rejects" `Quick test_name_parser_rejects;
    Alcotest.test_case "parser: valid schemes" `Quick test_name_parser_valid_schemes;
  ]

let suite = (fst suite, snd suite @ parser_tests)
