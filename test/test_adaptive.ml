(* The swappable merge network and the per-timeslice controller.

   The load-bearing property is the Static oracle: engaging the whole
   controller/switch plumbing with a policy that never switches must be
   bit-identical to the plain engine — at any jobs count, telemetry on
   or off. The rest pins the controller policies themselves (oracle
   sampling/locking, hill-climb probe/retreat, memory-bound skip), the
   switch-penalty conservation law, adaptive sweep checkpoint/resume
   purity, and the ledger's policy-aware fingerprints. *)

module E = Vliw_experiments
module M = Vliw_merge
module Sim = Vliw_sim
module T = Vliw_telemetry
module Q = QCheck

let group = Sim.Controller.group_candidates "2SC3"

let group_names =
  List.map (fun (c : Sim.Controller.candidate) -> c.name) group

let candidate_exn name =
  List.find (fun (c : Sim.Controller.candidate) -> c.name = name) group

(* A synthetic observation: [ipc] is what the controller estimates from
   it (ops/cycles); reject/miss fields steer the hill-climber. *)
let obs ?(rejects_conflict = 0) ?(rejects_capacity = 0) ?(dcache_misses = 0)
    ~slice ipc =
  let cycles = 1000 in
  {
    Sim.Controller.slice;
    cycles;
    ops = int_of_float (ipc *. float_of_int cycles);
    instrs = cycles;
    per_thread_ops = [| 250; 250; 250; 250 |];
    rejects_conflict;
    rejects_capacity;
    icache_misses = 0;
    dcache_misses;
  }

(* --- Controller unit tests ------------------------------------------- *)

let test_group_candidates () =
  Alcotest.(check int) "2SC3 group has 5 members" 5 (List.length group);
  Alcotest.(check bool) "contains 2SC3" true (List.mem "2SC3" group_names);
  let threads =
    List.map
      (fun (c : Sim.Controller.candidate) -> M.Scheme.n_threads c.scheme)
      group
  in
  Alcotest.(check (list int))
    "all candidates share the thread count"
    (List.map (fun _ -> List.hd threads) threads)
    threads;
  let anchor = (candidate_exn "2SC3").scheme in
  List.iter
    (fun (c : Sim.Controller.candidate) ->
      Alcotest.(check bool)
        (c.name ^ " cost-comparable to 2SC3")
        true
        (Vliw_cost.Scheme_cost.comparable anchor c.scheme))
    group;
  Alcotest.check_raises "unknown scheme"
    (Invalid_argument "Catalog.find_exn: unknown scheme \"ZZ\"") (fun () ->
      ignore (Sim.Controller.group_candidates "ZZ"))

let test_create_validation () =
  let raises what f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.fail (what ^ ": expected Invalid_argument")
  in
  raises "empty candidates" (fun () ->
      Sim.Controller.create Sim.Controller.Static ~candidates:[]
        ~initial:"2SC3");
  raises "initial not a candidate" (fun () ->
      Sim.Controller.create Sim.Controller.Static ~candidates:group
        ~initial:"3SSS");
  let alien = List.hd (Sim.Controller.group_candidates "1S") in
  raises "mixed thread counts" (fun () ->
      Sim.Controller.create Sim.Controller.Static
        ~candidates:(alien :: group) ~initial:"2SC3")

let test_policy_strings () =
  Alcotest.(check string)
    "static" "static"
    (Sim.Controller.policy_to_string Sim.Controller.Static);
  Alcotest.(check string)
    "oracle" "oracle(probe=1)"
    (Sim.Controller.policy_to_string Sim.Controller.default_oracle);
  Alcotest.(check string)
    "hill" "hill(period=2,hysteresis=0.02,ewma=0.5)"
    (Sim.Controller.policy_to_string Sim.Controller.default_hill)

let test_static_never_switches () =
  let c =
    Sim.Controller.create Sim.Controller.Static ~candidates:group
      ~initial:"2SC3"
  in
  for slice = 0 to 9 do
    let next = Sim.Controller.decide c (obs ~slice 2.0) in
    Alcotest.(check string) "stays on 2SC3" "2SC3" next.Sim.Controller.name
  done;
  Alcotest.(check int) "no switches" 0 (Sim.Controller.switches c);
  Alcotest.(check (list (pair int string)))
    "decision trail is the initial owner only"
    [ (0, "2SC3") ]
    (Sim.Controller.decisions c)

let test_oracle_samples_then_locks () =
  let c =
    Sim.Controller.create Sim.Controller.default_oracle ~candidates:group
      ~initial:"2SC3"
  in
  (* Reward exactly one candidate during its sampling slice. *)
  let best = "3CCS" in
  let sampled = ref [] in
  for slice = 0 to 4 do
    let owner = (Sim.Controller.current c).Sim.Controller.name in
    sampled := owner :: !sampled;
    ignore (Sim.Controller.decide c (obs ~slice (if owner = best then 3.0 else 1.0)))
  done;
  Alcotest.(check (list string))
    "sampling visits every candidate once" (List.sort compare group_names)
    (List.sort compare !sampled);
  Alcotest.(check string)
    "locks onto the best sample" best
    (Sim.Controller.current c).Sim.Controller.name;
  for slice = 5 to 9 do
    ignore (Sim.Controller.decide c (obs ~slice 0.5))
  done;
  Alcotest.(check string)
    "stays locked regardless of later slices" best
    (Sim.Controller.current c).Sim.Controller.name

let hill =
  Sim.Controller.Hill_climb
    { explore_period = 1; hysteresis = 0.02; ewma = 1.0 }

let test_hill_probe_retreats () =
  let c = Sim.Controller.create hill ~candidates:group ~initial:"2SC3" in
  (* Conflict-dominated slice: probe toward more SMT... *)
  let probe =
    Sim.Controller.decide c (obs ~slice:0 ~rejects_conflict:100 2.0)
  in
  Alcotest.(check bool)
    "probe moved off the anchor" true
    (probe.Sim.Controller.name <> "2SC3");
  (* ...which observes worse IPC, so the next decision retreats. *)
  let back = Sim.Controller.decide c (obs ~slice:1 1.0) in
  Alcotest.(check string) "retreats to the anchor" "2SC3"
    back.Sim.Controller.name;
  Alcotest.(check int) "probe + retreat = 2 switches" 2
    (Sim.Controller.switches c)

let test_hill_probe_adopts () =
  let c = Sim.Controller.create hill ~candidates:group ~initial:"2SC3" in
  let probe =
    Sim.Controller.decide c (obs ~slice:0 ~rejects_conflict:100 2.0)
  in
  (* The probe wins by more than the hysteresis margin: adopt. *)
  let next = Sim.Controller.decide c (obs ~slice:1 3.0) in
  Alcotest.(check string) "adopts the probe" probe.Sim.Controller.name
    next.Sim.Controller.name;
  (* A later probe starts from the new anchor. *)
  let probe2 =
    Sim.Controller.decide c (obs ~slice:2 ~rejects_capacity:100 3.0)
  in
  Alcotest.(check bool)
    "later probe leaves the new anchor" true
    (probe2.Sim.Controller.name <> probe.Sim.Controller.name
    || Sim.Controller.switches c = 2)

let test_hill_memory_bound_skips () =
  let c = Sim.Controller.create hill ~candidates:group ~initial:"2SC3" in
  for slice = 0 to 5 do
    let next =
      Sim.Controller.decide c
        (obs ~slice ~rejects_conflict:100 ~dcache_misses:500 2.0)
    in
    Alcotest.(check string)
      "memory-bound slices never probe" "2SC3" next.Sim.Controller.name
  done;
  Alcotest.(check int) "no switches" 0 (Sim.Controller.switches c)

(* --- Static controller = plain engine (the bit-equality oracle) ------ *)

let mix_members name = (Vliw_workloads.Mixes.find_exn name).members

let run_metrics ?controller ?counters scheme_name mix seed =
  let scheme = (M.Catalog.find_exn scheme_name).scheme in
  let config = Sim.Config.make scheme in
  Sim.Multitask.run config ~seed ~schedule:Sim.Multitask.quick_schedule
    ?counters ?controller (mix_members mix)

let static_controller initial =
  Sim.Controller.create Sim.Controller.Static ~candidates:group ~initial

let prop_static_bit_identical =
  Q.Test.make ~name:"Static controller = no controller (both telemetry modes)"
    ~count:10
    (Q.triple
       (Q.oneofl group_names)
       (Q.oneofl Vliw_workloads.Mixes.names)
       Q.small_nat)
    (fun (scheme, mix, seed) ->
      let seed = Int64.of_int seed in
      let plain = run_metrics scheme mix seed in
      let engaged =
        run_metrics ~controller:(static_controller scheme) scheme mix seed
      in
      let plain_t = run_metrics ~counters:(T.Counters.create ()) scheme mix seed in
      let engaged_t =
        run_metrics
          ~controller:(static_controller scheme)
          ~counters:(T.Counters.create ()) scheme mix seed
      in
      plain = engaged && plain = plain_t && plain = engaged_t)

let test_static_column_sweep_equiv () =
  let scheme_names = [ "2SC3"; "3CSC" ] and mix_names = [ "LLHH" ] in
  let columns =
    List.map
      (fun n -> E.Sweep.static_column (M.Catalog.find_exn n))
      scheme_names
  in
  let ipcs (_, _, cells) =
    Array.to_list
      (Array.map (fun (c : E.Sweep.cell) -> Int64.bits_of_float c.ipc) cells)
  in
  let base =
    ipcs (E.Sweep.run_cells ~scale:E.Common.Quick ~scheme_names ~mix_names ())
  in
  List.iter
    (fun (label, got) ->
      Alcotest.(check (list int64)) label base (ipcs got))
    [
      ( "columns = scheme_names",
        E.Sweep.run_cells ~scale:E.Common.Quick ~columns ~mix_names () );
      ( "columns at jobs=4, telemetry on",
        E.Sweep.run_cells ~scale:E.Common.Quick ~columns ~mix_names ~jobs:4
          ~telemetry:true () );
    ]

(* --- Switch penalty conservation ------------------------------------- *)

let test_switch_penalty_conserved () =
  let counters = T.Counters.create () in
  let controller =
    Sim.Controller.create Sim.Controller.default_oracle ~candidates:group
      ~initial:"2SC3"
  in
  let metrics = run_metrics ~controller ~counters "2SC3" "LLHH" 7L in
  let snap = T.Counters.snapshot counters in
  let count = T.Counters.count snap in
  let switches = count T.Report.n_scheme_switches in
  Alcotest.(check bool) "oracle sampling actually switched" true (switches > 0);
  let stall = count T.Report.n_switch_stall in
  Alcotest.(check bool) "switches charged stall cycles" true (stall > 0);
  let bubbles = count T.Report.n_switch_bubbles in
  Alcotest.(check bool) "bubbles within the charge" true (bubbles <= stall);
  let width = metrics.Sim.Metrics.slots_offered / metrics.Sim.Metrics.cycles in
  Alcotest.(check int)
    "attributed switch waste = width x bubble cycles" (width * bubbles)
    (count T.Report.n_v_switch);
  (* The decision trail was booked for the profile report. *)
  let decision_total =
    List.fold_left
      (fun acc name -> acc + count (T.Report.n_controller_decisions name))
      0 group_names
  in
  Alcotest.(check bool) "decision trail booked" true (decision_total > 0);
  Alcotest.(check int)
    "controller switch counter matches" switches
    (count T.Report.n_controller_switches)

(* --- Adaptive sweep: checkpoint/resume purity ------------------------ *)

let adaptive_columns () =
  E.Sweep.static_column (M.Catalog.find_exn "2SC3")
  :: [
       {
         E.Sweep.col_name = "adaptive";
         col_scheme = (M.Catalog.find_exn "2SC3").scheme;
         col_policy =
           Sim.Controller.policy_to_string Sim.Controller.default_hill;
         col_controller =
           Some
             (fun () ->
               Sim.Controller.create Sim.Controller.default_hill
                 ~candidates:group ~initial:"2SC3");
       };
     ]

let test_adaptive_sweep_resume_identical () =
  let journal = Filename.temp_file "vliwsim_adaptive" ".journal" in
  Sys.remove journal;
  let sweep ~resume =
    E.Sweep.run_cells ~scale:E.Common.Quick ~columns:(adaptive_columns ())
      ~mix_names:[ "LLHH" ] ~checkpoint:journal ~resume ()
  in
  let _, _, first = sweep ~resume:false in
  let _, _, resumed = sweep ~resume:true in
  Alcotest.(check int) "cell count" (Array.length first) (Array.length resumed);
  Array.iteri
    (fun i (a : E.Sweep.cell) ->
      let b = resumed.(i) in
      Alcotest.(check string) "scheme" a.scheme b.E.Sweep.scheme;
      Alcotest.(check int64)
        (Printf.sprintf "cell %d (%s/%s) bit-identical" i a.mix a.scheme)
        (Int64.bits_of_float a.ipc)
        (Int64.bits_of_float b.E.Sweep.ipc))
    first;
  if Sys.file_exists journal then Sys.remove journal

let test_adaptive_experiment_shape () =
  let d = E.Adaptive.run ~scale:E.Common.Quick () in
  Alcotest.(check (list string))
    "static columns are the 2SC3 cost group"
    (List.sort compare group_names)
    (List.sort compare d.E.Adaptive.static_names);
  Alcotest.(check int)
    "grid = statics + oracle + adaptive"
    (List.length group_names + 2)
    (List.length d.E.Adaptive.grid.scheme_names);
  let text = E.Adaptive.render d in
  List.iter
    (fun needle ->
      let n = String.length text and m = String.length needle in
      let rec go i = i + m <= n && (String.sub text i m = needle || go (i + 1)) in
      Alcotest.(check bool) ("render mentions " ^ needle) true (go 0))
    [ "adaptive"; "oracle"; "best static"; "reconfiguration" ]

(* --- Ledger: policy-aware fingerprints ------------------------------- *)

let test_ledger_policy_fingerprint () =
  let fp ?policy () =
    T.Ledger.fingerprint_of ?policy ~scale:"quick" ~seed:1L
      ~scheme_names:[ "a"; "b" ] ~mix_names:[ "m" ] ()
  in
  Alcotest.(check string)
    "explicit static = legacy fingerprint" (fp ())
    (fp ~policy:"static" ());
  Alcotest.(check bool)
    "adaptive policy changes the fingerprint" true
    (fp () <> fp ~policy:"hill(period=2,hysteresis=0.02,ewma=0.5)" ())

let test_ledger_policy_roundtrip () =
  let make ?policy () =
    T.Ledger.make ?policy ~cmd:"exp" ~label:"adaptive" ~scale:"quick" ~seed:1L
      ~jobs:1 ~scheme_names:[ "a" ] ~mix_names:[ "m" ] ~wall_s:0.1 ()
  in
  let roundtrip r =
    match T.Ledger.of_json (T.Ledger.to_json r) with
    | Some r' -> r'
    | None -> Alcotest.fail "record did not round-trip"
  in
  let adaptive = make ~policy:"oracle(probe=1)" () in
  Alcotest.(check string)
    "policy survives the JSON round-trip" "oracle(probe=1)"
    (roundtrip adaptive).T.Ledger.policy;
  let static = make () in
  Alcotest.(check string)
    "static is the default policy" "static" static.T.Ledger.policy;
  Alcotest.(check string)
    "static round-trips (field omitted)" "static"
    (roundtrip static).T.Ledger.policy;
  (* The omitted field is what keeps old ledgers parseable: a static
     record's JSON must not mention the policy at all. *)
  let contains ~needle hay =
    let n = String.length hay and m = String.length needle in
    let rec go i = i + m <= n && (String.sub hay i m = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool)
    "static JSON omits the policy field" false
    (contains ~needle:"policy" (Vliw_util.Json.to_string (T.Ledger.to_json static)));
  Alcotest.(check bool)
    "adaptive JSON carries the policy field" true
    (contains ~needle:"policy" (Vliw_util.Json.to_string (T.Ledger.to_json adaptive)))

let suite =
  ( "adaptive",
    [
      Alcotest.test_case "group candidates" `Quick test_group_candidates;
      Alcotest.test_case "create validation" `Quick test_create_validation;
      Alcotest.test_case "policy descriptors" `Quick test_policy_strings;
      Alcotest.test_case "static never switches" `Quick
        test_static_never_switches;
      Alcotest.test_case "oracle samples then locks" `Quick
        test_oracle_samples_then_locks;
      Alcotest.test_case "hill-climb probe retreats" `Quick
        test_hill_probe_retreats;
      Alcotest.test_case "hill-climb probe adopts" `Quick
        test_hill_probe_adopts;
      Alcotest.test_case "memory-bound slices skip probing" `Quick
        test_hill_memory_bound_skips;
      Tgen.to_alcotest prop_static_bit_identical;
      Alcotest.test_case "static columns = scheme_names sweep" `Quick
        test_static_column_sweep_equiv;
      Alcotest.test_case "switch penalty conservation" `Quick
        test_switch_penalty_conserved;
      Alcotest.test_case "adaptive sweep resume bit-identical" `Quick
        test_adaptive_sweep_resume_identical;
      Alcotest.test_case "adaptive experiment shape" `Quick
        test_adaptive_experiment_shape;
      Alcotest.test_case "ledger policy fingerprint" `Quick
        test_ledger_policy_fingerprint;
      Alcotest.test_case "ledger policy round-trip" `Quick
        test_ledger_policy_roundtrip;
    ] )
