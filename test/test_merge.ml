(* Packet, Conflict, Routing, Scheme, Catalog. *)
module Isa = Vliw_isa
module M = Vliw_merge
module Q = QCheck

let m = Isa.Machine.default

let ops klasses = List.mapi (fun i k -> Isa.Op.make k i) klasses

let instr_of klass_lists =
  Isa.Instr.of_cluster_ops ~addr:0 (Array.of_list (List.map ops klass_lists))

let packet ?(thread = 0) klass_lists =
  M.Packet.of_instr m ~thread (instr_of klass_lists)

(* --- Packet --- *)

let test_packet_of_instr () =
  let p = packet ~thread:2 [ [ Isa.Op.Alu ]; []; [ Isa.Op.Load ]; [] ] in
  Alcotest.(check int) "mask" 0b0101 p.mask;
  Alcotest.(check int) "threads" 0b100 p.threads;
  Alcotest.(check (list int)) "thread list" [ 2 ] (M.Packet.thread_list p);
  Alcotest.(check int) "ops" 2 (M.Packet.op_count p);
  Alcotest.(check (list int)) "cluster threads" [ 2 ] (M.Packet.cluster_threads p 0);
  Alcotest.(check (list int)) "empty cluster" [] (M.Packet.cluster_threads p 1)

let test_packet_union () =
  let a = packet ~thread:0 [ [ Isa.Op.Alu ]; []; []; [] ] in
  let b = packet ~thread:1 [ []; [ Isa.Op.Mul ]; []; [] ] in
  let u = M.Packet.union a b in
  Alcotest.(check int) "mask" 0b0011 u.mask;
  Alcotest.(check (list int)) "threads" [ 0; 1 ] (M.Packet.thread_list u);
  Alcotest.(check int) "ops" 2 (M.Packet.op_count u)

let test_packet_empty () =
  let p = M.Packet.of_instr m ~thread:0 (Isa.Instr.make ~clusters:4 ~addr:0) in
  Alcotest.(check bool) "empty" true (M.Packet.is_empty p);
  Alcotest.(check int) "mask" 0 p.mask

(* --- Conflict --- *)

let test_csmt_conflict () =
  let a = packet ~thread:0 [ [ Isa.Op.Alu ]; []; []; [] ] in
  let b = packet ~thread:1 [ []; [ Isa.Op.Alu ]; []; [] ] in
  let c = packet ~thread:2 [ [ Isa.Op.Alu ]; []; []; [] ] in
  Alcotest.(check bool) "disjoint ok" true (M.Conflict.csmt_compatible a b);
  Alcotest.(check bool) "overlap fails" false (M.Conflict.csmt_compatible a c)

let test_smt_weaker_than_csmt_example () =
  (* Two threads sharing cluster 0 with fitting ops: SMT yes, CSMT no. *)
  let a = packet ~thread:0 [ [ Isa.Op.Alu; Isa.Op.Load ]; []; []; [] ] in
  let b = packet ~thread:1 [ [ Isa.Op.Alu; Isa.Op.Mul ]; []; []; [] ] in
  Alcotest.(check bool) "smt ok" true (M.Conflict.smt_compatible m a b);
  Alcotest.(check bool) "csmt no" false (M.Conflict.csmt_compatible a b)

let test_smt_resource_conflicts () =
  let mem a b = (packet ~thread:0 [ [ a ]; []; []; [] ], packet ~thread:1 [ [ b ]; []; []; [] ]) in
  let a, b = mem Isa.Op.Load Isa.Op.Store in
  Alcotest.(check bool) "two mem ops collide" false (M.Conflict.smt_compatible m a b);
  let a = packet ~thread:0 [ [ Isa.Op.Mul; Isa.Op.Mul ]; []; []; [] ] in
  let b = packet ~thread:1 [ [ Isa.Op.Mul ]; []; []; [] ] in
  Alcotest.(check bool) "three muls collide" false (M.Conflict.smt_compatible m a b);
  let a = packet ~thread:0 [ [ Isa.Op.Alu; Isa.Op.Alu; Isa.Op.Alu ]; []; []; [] ] in
  let b = packet ~thread:1 [ [ Isa.Op.Alu; Isa.Op.Alu ]; []; []; [] ] in
  Alcotest.(check bool) "width overflow" false (M.Conflict.smt_compatible m a b)

let prop_csmt_implies_smt =
  Q.Test.make ~name:"cluster-level compatibility implies op-level" ~count:300
    Q.(pair (Tgen.instr_arb ()) (Tgen.instr_arb ()))
    (fun (i1, i2) ->
      let a = M.Packet.of_instr m ~thread:0 i1 in
      let b = M.Packet.of_instr m ~thread:1 i2 in
      Q.assume (M.Conflict.csmt_compatible a b);
      M.Conflict.smt_compatible m a b)

let prop_conflict_symmetric =
  Q.Test.make ~name:"conflict checks are symmetric" ~count:300
    Q.(pair (Tgen.instr_arb ()) (Tgen.instr_arb ()))
    (fun (i1, i2) ->
      let a = M.Packet.of_instr m ~thread:0 i1 in
      let b = M.Packet.of_instr m ~thread:1 i2 in
      M.Conflict.csmt_compatible a b = M.Conflict.csmt_compatible b a
      && M.Conflict.smt_compatible m a b = M.Conflict.smt_compatible m b a)

(* --- Routing --- *)

let test_route_simple () =
  let p = packet [ [ Isa.Op.Load; Isa.Op.Alu ]; [ Isa.Op.Mul ]; []; [] ] in
  match M.Routing.route m p with
  | None -> Alcotest.fail "routing failed"
  | Some routed ->
    Alcotest.(check int) "occupancy" 3 (M.Routing.occupancy routed);
    (* The load must sit in a memory-capable slot. *)
    let found = ref false in
    Array.iteri
      (fun c slots ->
        Array.iteri
          (fun s slot ->
            match slot with
            | Some (e : M.Packet.entry) when e.op.klass = Isa.Op.Load ->
              found := true;
              Alcotest.(check bool) "load slot legal" true
                (Isa.Machine.slot_allows m ~slot:s Isa.Op.Load);
              Alcotest.(check int) "load on cluster 0" 0 c
            | _ -> ())
          slots)
      routed;
    Alcotest.(check bool) "load found" true !found

let test_route_fails_overflow () =
  let p = packet [ [ Isa.Op.Load; Isa.Op.Store ]; []; []; [] ] in
  Alcotest.(check bool) "two mem ops cannot route" true (M.Routing.route m p = None)

let prop_smt_compatible_routes =
  Q.Test.make ~name:"compatible merges always route" ~count:300
    Q.(pair (Tgen.instr_arb ()) (Tgen.instr_arb ()))
    (fun (i1, i2) ->
      let a = M.Packet.of_instr m ~thread:0 i1 in
      let b = M.Packet.of_instr m ~thread:1 i2 in
      Q.assume (M.Conflict.smt_compatible m a b);
      match M.Routing.route m (M.Packet.union a b) with
      | None -> false
      | Some routed ->
        M.Routing.occupancy routed = M.Packet.op_count a + M.Packet.op_count b)

let prop_routed_slots_legal =
  Q.Test.make ~name:"routed slots respect capabilities" ~count:300
    (Tgen.instr_arb ()) (fun i ->
      let p = M.Packet.of_instr m ~thread:0 i in
      match M.Routing.route m p with
      | None -> false
      | Some routed ->
        let ok = ref true in
        Array.iter
          (fun slots ->
            Array.iteri
              (fun s slot ->
                match slot with
                | Some (e : M.Packet.entry) ->
                  if not (Isa.Machine.slot_allows m ~slot:s e.op.klass) then ok := false
                | None -> ())
              slots)
          routed;
        !ok)

(* --- Scheme --- *)

let test_scheme_builders () =
  let s = M.Scheme.smt_cascade 4 in
  Alcotest.(check int) "threads" 4 (M.Scheme.n_threads s);
  Alcotest.(check int) "levels" 3 (M.Scheme.levels s);
  Alcotest.(check int) "smt blocks" 3 (M.Scheme.block_count M.Scheme_kind.Smt s);
  Alcotest.(check int) "csmt blocks" 0 (M.Scheme.block_count M.Scheme_kind.Csmt s);
  let c = M.Scheme.csmt_par 4 in
  Alcotest.(check int) "parallel levels" 1 (M.Scheme.levels c);
  Alcotest.(check int) "parallel block count" 1
    (M.Scheme.block_count M.Scheme_kind.Csmt c)

let test_scheme_validate () =
  let t = M.Scheme.thread in
  Alcotest.(check bool) "good" true (M.Scheme.validate (M.Scheme.smt (t 0) (t 1)) = Ok ());
  Alcotest.(check bool) "duplicate thread" false
    (M.Scheme.validate (M.Scheme.smt (t 0) (t 0)) = Ok ());
  Alcotest.(check bool) "gap in ids" false
    (M.Scheme.validate (M.Scheme.smt (t 0) (t 2)) = Ok ());
  let bad_parallel =
    M.Scheme.Merge
      { kind = M.Scheme_kind.Smt; impl = M.Scheme.Parallel; inputs = [ t 0; t 1 ] }
  in
  Alcotest.(check bool) "parallel SMT rejected" false
    (M.Scheme.validate bad_parallel = Ok ())

let test_scheme_to_string () =
  let e = M.Catalog.find_exn "2SC3" in
  Alcotest.(check string) "2SC3" "Cp(S(T0,T1),T2,T3)" (M.Scheme.to_string e.scheme);
  let e = M.Catalog.find_exn "3SSS" in
  Alcotest.(check string) "3SSS" "S(S(S(T0,T1),T2),T3)" (M.Scheme.to_string e.scheme)

let test_scheme_equal () =
  let a = (M.Catalog.find_exn "3SCC").scheme in
  let b = (M.Catalog.find_exn "3SCC").scheme in
  let c = (M.Catalog.find_exn "3CSC").scheme in
  Alcotest.(check bool) "equal" true (M.Scheme.equal a b);
  Alcotest.(check bool) "not equal" false (M.Scheme.equal a c)

(* --- Catalog --- *)

let test_catalog_complete () =
  Alcotest.(check int) "17 entries" 17 (List.length M.Catalog.all);
  Alcotest.(check int) "15 four-thread schemes" 15 (List.length M.Catalog.four_thread);
  List.iter
    (fun (e : M.Catalog.entry) ->
      match M.Scheme.validate e.scheme with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" e.name msg)
    M.Catalog.all

let test_catalog_names_match_structure () =
  (* Leading digit = number of levels; letters = kinds per level for the
     cascades. *)
  List.iter
    (fun (name, smt_blocks, csmt_blocks, levels) ->
      let e = M.Catalog.find_exn name in
      Alcotest.(check int) (name ^ " smt blocks") smt_blocks
        (M.Scheme.block_count M.Scheme_kind.Smt e.scheme);
      Alcotest.(check int) (name ^ " csmt blocks") csmt_blocks
        (M.Scheme.block_count M.Scheme_kind.Csmt e.scheme);
      Alcotest.(check int) (name ^ " levels") levels (M.Scheme.levels e.scheme))
    [
      ("3SSS", 3, 0, 3);
      ("3CCC", 0, 3, 3);
      ("3SCC", 1, 2, 3);
      ("2SC3", 1, 1, 2);
      ("2C3S", 1, 1, 2);
      ("C4", 0, 1, 1);
      ("2CC", 0, 3, 2);
      ("2SS", 3, 0, 2);
      ("2CS", 1, 2, 2);
      ("2SC", 2, 1, 2);
      ("1S", 1, 0, 1);
    ]

let test_catalog_find () =
  Alcotest.(check bool) "case-insensitive" true (M.Catalog.find "3sss" <> None);
  Alcotest.(check bool) "unknown" true (M.Catalog.find "9XYZ" = None);
  Alcotest.check_raises "find_exn"
    (Invalid_argument "Catalog.find_exn: unknown scheme \"9XYZ\"") (fun () ->
      ignore (M.Catalog.find_exn "9XYZ"))

let test_perf_groups_cover () =
  let grouped = List.concat_map snd M.Catalog.perf_groups in
  List.iter
    (fun (e : M.Catalog.entry) ->
      Alcotest.(check bool) (e.name ^ " in a group") true (List.mem e.name grouped))
    M.Catalog.all

let suite =
  ( "merge-core",
    [
      Alcotest.test_case "packet of_instr" `Quick test_packet_of_instr;
      Alcotest.test_case "packet union" `Quick test_packet_union;
      Alcotest.test_case "packet empty" `Quick test_packet_empty;
      Alcotest.test_case "csmt conflict" `Quick test_csmt_conflict;
      Alcotest.test_case "smt weaker than csmt" `Quick test_smt_weaker_than_csmt_example;
      Alcotest.test_case "smt resource conflicts" `Quick test_smt_resource_conflicts;
      Tgen.to_alcotest prop_csmt_implies_smt;
      Tgen.to_alcotest prop_conflict_symmetric;
      Alcotest.test_case "route simple" `Quick test_route_simple;
      Alcotest.test_case "route overflow fails" `Quick test_route_fails_overflow;
      Tgen.to_alcotest prop_smt_compatible_routes;
      Tgen.to_alcotest prop_routed_slots_legal;
      Alcotest.test_case "scheme builders" `Quick test_scheme_builders;
      Alcotest.test_case "scheme validate" `Quick test_scheme_validate;
      Alcotest.test_case "scheme to_string" `Quick test_scheme_to_string;
      Alcotest.test_case "scheme equal" `Quick test_scheme_equal;
      Alcotest.test_case "catalog complete" `Quick test_catalog_complete;
      Alcotest.test_case "catalog structure" `Quick test_catalog_names_match_structure;
      Alcotest.test_case "catalog find" `Quick test_catalog_find;
      Alcotest.test_case "perf groups cover catalog" `Quick test_perf_groups_cover;
    ] )

(* --- pretty printers (smoke) --- *)

let test_pp_smoke () =
  let p = packet ~thread:1 [ [ Isa.Op.Load; Isa.Op.Alu ]; []; [ Isa.Op.Mul ]; [] ] in
  let text = Format.asprintf "%a" (M.Packet.pp m) p in
  Alcotest.(check bool) "packet pp mentions thread" true
    (String.length text > 0 && String.contains text '1');
  (match M.Routing.route m p with
  | None -> Alcotest.fail "route"
  | Some routed ->
    let rendered = Format.asprintf "%a" (M.Routing.pp m) routed in
    Alcotest.(check bool) "routing pp shows op+thread" true
      (String.length rendered > 0));
  let mtext = Format.asprintf "%a" Isa.Machine.pp m in
  Alcotest.(check bool) "machine pp" true (String.length mtext > 10)

let pp_suite = [ Alcotest.test_case "pretty printers" `Quick test_pp_smoke ]

let suite = (fst suite, snd suite @ pp_suite)
