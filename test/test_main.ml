let () =
  (* Enforce the run invariants on every simulation the suite performs:
     each metrics record is conservation-checked by the Multitask hook,
     each telemetry snapshot by the attribution check. *)
  Vliw_sim.Invariants.set_enforced true;
  Alcotest.run "vliw-merge-repro"
    [
      Test_rng.suite;
      Test_stats.suite;
      Test_util_render.suite;
      Test_isa.suite;
      Test_cache.suite;
      Test_mem.suite;
      Test_compiler.suite;
      Test_merge.suite;
      Test_engine.suite;
      Test_fastpath.suite;
      Test_cost.suite;
      Test_sim.suite;
      Test_adaptive.suite;
      Test_workloads.suite;
      Test_parallel.suite;
      Test_telemetry.suite;
      Test_experiments.suite;
      Test_extensions.suite;
      Test_features.suite;
      Test_repro.suite;
      Test_faults.suite;
      Test_observability.suite;
      Test_service.suite;
      Test_dist.suite;
      Test_cli.suite;
    ]
