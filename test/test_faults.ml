(* Fault tolerance and self-checking: Csv.atomically, Pool.run_results,
   the Checkpoint journal, Sweep retries / fault injection / resume, and
   the Invariants battery.

   The resume property here simulates the interruption by truncating a
   completed journal to a prefix (any prefix is a state a kill could
   have left behind, since saves are atomic per cell); the CI smoke job
   performs a real mid-sweep kill -9. *)

module E = Vliw_experiments
module Pool = Vliw_util.Pool
module Csv = Vliw_util.Csv
module Counters = Vliw_telemetry.Counters
module Report = Vliw_telemetry.Report
module Q = QCheck

let temp_path () =
  let path = Filename.temp_file "vliwsim-test" ".journal" in
  Sys.remove path;
  path

let read_file path = In_channel.with_open_text path In_channel.input_all

(* --- Csv.atomically and quoting -------------------------------------- *)

let test_atomic_write_success () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Csv.write ~path ~header:[ "a"; "b" ] [ [ "1"; "2" ] ];
      Alcotest.(check string) "content" "a,b\n1,2\n" (read_file path);
      Alcotest.(check bool) "no temp residue" false
        (Sys.file_exists (path ^ ".tmp")))

let test_atomic_write_failure_preserves_old () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Csv.write ~path ~header:[ "old" ] [ [ "data" ] ];
      Alcotest.check_raises "writer exception propagates"
        (Failure "mid-write crash")
        (fun () ->
          Csv.atomically ~path (fun oc ->
              output_string oc "partial garbage";
              failwith "mid-write crash"));
      Alcotest.(check string)
        "destination untouched" "old\ndata\n" (read_file path);
      Alcotest.(check bool) "temp file cleaned up" false
        (Sys.file_exists (path ^ ".tmp")))

(* Full-text CSV parser (handles newlines inside quoted fields, unlike
   the line-based helper in Test_parallel) for the round-trip check. *)
let parse_csv_text text =
  let rows = ref [] and fields = ref [] and buf = Buffer.create 16 in
  let n = String.length text in
  let flush_field () =
    fields := Buffer.contents buf :: !fields;
    Buffer.clear buf
  in
  let flush_row () =
    flush_field ();
    rows := List.rev !fields :: !rows;
    fields := []
  in
  let rec go i quoted =
    if i >= n then ()
    else
      let c = text.[i] in
      if quoted then
        if c = '"' then
          if i + 1 < n && text.[i + 1] = '"' then begin
            Buffer.add_char buf '"';
            go (i + 2) true
          end
          else go (i + 1) false
        else begin
          Buffer.add_char buf c;
          go (i + 1) true
        end
      else if c = '"' then go (i + 1) true
      else if c = ',' then begin
        flush_field ();
        go (i + 1) false
      end
      else if c = '\n' then begin
        flush_row ();
        go (i + 1) false
      end
      else begin
        Buffer.add_char buf c;
        go (i + 1) false
      end
  in
  go 0 false;
  if Buffer.length buf > 0 || !fields <> [] then flush_row ();
  List.rev !rows

let test_csv_quoting_roundtrip () =
  let rows =
    [
      [ "plain"; "with,comma"; "with\"quote" ];
      [ "embedded\nnewline"; "cr\rreturn"; "crlf\r\nboth" ];
      [ ""; "\"\""; ",,," ];
    ]
  in
  let header = [ "h1"; "h,2"; "h\n3" ] in
  let parsed = parse_csv_text (Csv.to_string ~header rows) in
  Alcotest.(check (list (list string)))
    "quoted fields survive the round trip" (header :: rows) parsed

(* --- Pool.run_results fault isolation -------------------------------- *)

let test_pool_run_results_isolates () =
  List.iter
    (fun jobs ->
      let tasks =
        Array.init 16 (fun i ~worker ->
            ignore worker;
            if i mod 5 = 0 then failwith (Printf.sprintf "task %d boom" i)
            else i * 10)
      in
      let results = Pool.run_results ~jobs tasks in
      Array.iteri
        (fun i r ->
          match r with
          | Ok v ->
            Alcotest.(check bool)
              (Printf.sprintf "jobs=%d task %d ok" jobs i)
              true
              (i mod 5 <> 0 && v = i * 10)
          | Error (Failure msg) ->
            Alcotest.(check string)
              (Printf.sprintf "jobs=%d task %d error" jobs i)
              (Printf.sprintf "task %d boom" i)
              msg
          | Error e -> raise e)
        results)
    [ 1; 4 ]

let test_pool_run_results_worker_dependent () =
  (* A task that raises except on worker 0: with jobs=1 everything runs
     on worker 0 and succeeds; the prior results delivered through
     on_result are preserved either way. *)
  let tasks = Array.init 12 (fun i ~worker -> if worker <> 0 then failwith "not worker 0" else i) in
  let serial_seen = ref [] in
  let serial =
    Pool.run_results ~jobs:1
      ~on_result:(fun i r -> serial_seen := (i, r) :: !serial_seen)
      tasks
  in
  Array.iteri
    (fun i r ->
      Alcotest.(check bool)
        (Printf.sprintf "serial task %d ok" i)
        true (r = Ok i))
    serial;
  Alcotest.(check int) "on_result saw every task" 12 (List.length !serial_seen);
  let parallel = Pool.run_results ~jobs:4 tasks in
  Array.iteri
    (fun i r ->
      match r with
      | Ok v -> Alcotest.(check int) "parallel ok value" i v
      | Error (Failure msg) ->
        Alcotest.(check string) "parallel error" "not worker 0" msg
      | Error e -> raise e)
    parallel

(* --- Checkpoint journal ---------------------------------------------- *)

let sample_meta =
  {
    E.Checkpoint.scale = "quick";
    seed = 0xC5EEDL;
    scheme_names = [ "1S"; "3SSS" ];
    mix_names = [ "LLHH"; "MMMM" ];
    telemetry = true;
  }

let sample_records =
  [
    {
      E.Checkpoint.mix = "LLHH";
      scheme = "1S";
      row_seed = -1234567890123456789L;
      ipc = 3.14159265358979;
      attempts = 2;
      counters = Some [ ("slots.filled", 42); ("sweep.retries", 1) ];
    };
    {
      E.Checkpoint.mix = "MMMM";
      scheme = "3SSS";
      row_seed = 7L;
      ipc = Float.nan;
      attempts = 1;
      counters = None;
    };
    {
      E.Checkpoint.mix = "odd name, with comma";
      scheme = "a=b c%d";
      row_seed = 0L;
      ipc = 0.0;
      attempts = 1;
      counters = Some [ ("weird key=x", 1) ];
    };
  ]

let test_checkpoint_roundtrip () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let t =
        List.fold_left E.Checkpoint.add
          (E.Checkpoint.create sample_meta)
          sample_records
      in
      E.Checkpoint.save ~path t;
      match E.Checkpoint.load ~path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok t' ->
        Alcotest.(check bool) "meta equal" true
          (E.Checkpoint.meta_equal t.meta t'.meta);
        Alcotest.(check int) "record count" (List.length t.records)
          (List.length t'.records);
        List.iter2
          (fun (a : E.Checkpoint.record) (b : E.Checkpoint.record) ->
            Alcotest.(check string) "mix" a.mix b.mix;
            Alcotest.(check string) "scheme" a.scheme b.scheme;
            Alcotest.(check int64) "row_seed" a.row_seed b.row_seed;
            Alcotest.(check int64) "ipc bits survive exactly"
              (Int64.bits_of_float a.ipc)
              (Int64.bits_of_float b.ipc);
            Alcotest.(check int) "attempts" a.attempts b.attempts;
            Alcotest.(check bool) "counters" true (a.counters = b.counters))
          t.records t'.records)

let test_checkpoint_rejects_garbage () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (match E.Checkpoint.load ~path:(path ^ ".missing") with
      | Ok _ -> Alcotest.fail "missing file must not load"
      | Error _ -> ());
      Out_channel.with_open_text path (fun oc ->
          output_string oc "not a checkpoint\ncell mix=a scheme=b\n");
      (match E.Checkpoint.load ~path with
      | Ok _ -> Alcotest.fail "bad magic must not load"
      | Error msg ->
        Alcotest.(check bool) "mentions magic" true
          (String.length msg > 0));
      (* valid magic + meta, one good cell, one mangled cell: the
         mangled line is dropped, the good one survives *)
      let t =
        E.Checkpoint.add (E.Checkpoint.create sample_meta)
          (List.hd sample_records)
      in
      let text = E.Checkpoint.to_string t ^ "cell mix=only scheme=broken\n" in
      Out_channel.with_open_text path (fun oc -> output_string oc text);
      match E.Checkpoint.load ~path with
      | Error msg -> Alcotest.failf "load failed: %s" msg
      | Ok t' ->
        Alcotest.(check int) "malformed cell dropped" 1
          (List.length t'.records))

(* --- Sweep fault injection, retries, degradation ---------------------- *)

let with_injection hook f =
  E.Sweep.inject_failure := Some hook;
  Fun.protect ~finally:(fun () -> E.Sweep.inject_failure := None) f

let small_schemes = [ "1S"; "3SSS" ]
let small_mixes = [ "LLHH"; "MMMM" ]

let run_small ?(jobs = 1) ?(telemetry = false) ?max_retries ?cell_timeout_s
    ?checkpoint ?resume ?seed () =
  E.Sweep.run_cells ~scale:E.Common.Quick ?seed ~scheme_names:small_schemes
    ~mix_names:small_mixes ~jobs ~telemetry ?max_retries ?cell_timeout_s
    ?checkpoint ?resume ()

let test_degraded_cell () =
  (* Cell (0, 1) always fails; with one retry it still degrades while
     every other cell is untouched. *)
  with_injection
    (fun ~row ~col -> row = 0 && col = 1)
    (fun () ->
      let scheme_names, mix_names, cells =
        run_small ~telemetry:true ~max_retries:1 ()
      in
      let bad = E.Sweep.degraded cells in
      Alcotest.(check int) "one degraded cell" 1 (List.length bad);
      let c = List.hd bad in
      Alcotest.(check string) "mix" "LLHH" c.mix;
      Alcotest.(check string) "scheme" "3SSS" c.scheme;
      Alcotest.(check int) "attempts = 1 + max_retries" 2 c.attempts;
      Alcotest.(check bool) "ipc is nan" true (Float.is_nan c.ipc);
      Alcotest.(check bool) "error recorded" true
        (match c.error with
        | Some msg ->
          (* substring check: Failure("injected fault in cell (0, 1)") *)
          let sub = "injected fault" in
          let rec contains i =
            i + String.length sub <= String.length msg
            && (String.sub msg i (String.length sub) = sub || contains (i + 1))
          in
          contains 0
        | None -> false);
      (match c.telemetry with
      | None -> Alcotest.fail "degraded cell should carry telemetry"
      | Some snap ->
        Alcotest.(check int) "sweep.degraded" 1
          (Counters.count snap Report.n_sweep_degraded);
        Alcotest.(check int) "sweep.retries" 1
          (Counters.count snap Report.n_sweep_retries));
      (* the grid renders the degraded cell as n/a *)
      let grid = E.Sweep.grid_of_cells ~scheme_names ~mix_names cells in
      let _, rows = E.Common.grid_csv grid in
      Alcotest.(check bool) "csv renders n/a" true
        (List.exists (List.mem "n/a") rows);
      Alcotest.(check string) "ipc_string" "n/a"
        (E.Common.ipc_string Float.nan))

let test_fault_injection_acceptance () =
  (* 10% of cells (here: cell index multiples of 10 over a 4x4 grid --
     use the full catalog rows to get enough cells) fail twice then
     succeed; with max_retries 2 the sweep completes with zero degraded
     cells and the retry counters match the injected schedule exactly. *)
  let scheme_names = [ "1S"; "2SC3"; "3SSS"; "C4" ] in
  let mix_names = [ "LLLL"; "LLHH"; "MMMM"; "HHHH"; "LMMH" ] in
  let n_cols = List.length scheme_names in
  let n_cells = n_cols * List.length mix_names in
  let injected = List.filter (fun i -> i mod 10 = 0) (List.init n_cells Fun.id) in
  List.iter
    (fun jobs ->
      let attempts_seen = Array.init n_cells (fun _ -> Atomic.make 0) in
      with_injection
        (fun ~row ~col ->
          let idx = (row * n_cols) + col in
          idx mod 10 = 0 && Atomic.fetch_and_add attempts_seen.(idx) 1 < 2)
        (fun () ->
          let _, _, cells =
            E.Sweep.run_cells ~scale:E.Common.Quick ~scheme_names ~mix_names
              ~jobs ~telemetry:true ~max_retries:2 ()
          in
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d zero degraded" jobs)
            0
            (List.length (E.Sweep.degraded cells));
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d total retries = 2 per injected cell" jobs)
            (2 * List.length injected)
            (E.Sweep.total_retries cells);
          Array.iteri
            (fun idx c ->
              let expected = if idx mod 10 = 0 then 3 else 1 in
              Alcotest.(check int)
                (Printf.sprintf "jobs=%d cell %d attempts" jobs idx)
                expected c.E.Sweep.attempts)
            cells;
          let merged = E.Sweep.merged_telemetry cells in
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d merged sweep.retries" jobs)
            (2 * List.length injected)
            (Counters.count merged Report.n_sweep_retries);
          Alcotest.(check int)
            (Printf.sprintf "jobs=%d merged sweep.degraded" jobs)
            0
            (Counters.count merged Report.n_sweep_degraded)))
    [ 1; 4 ]

let test_injected_faults_do_not_change_results () =
  (* Retried cells are pure: a sweep with transient injected faults
     produces the bit-identical grid of an undisturbed sweep. *)
  let clean = run_small () in
  let again =
    let counts = Array.init 4 (fun _ -> Atomic.make 0) in
    with_injection
      (fun ~row ~col ->
        let idx = (row * 2) + col in
        Atomic.fetch_and_add counts.(idx) 1 < 1)
      (fun () -> run_small ~max_retries:1 ())
  in
  let grid_of (s, m, c) = E.Sweep.grid_of_cells ~scheme_names:s ~mix_names:m c in
  Alcotest.(check bool) "grids bit-identical" true
    ((grid_of clean).E.Common.ipc = (grid_of again).E.Common.ipc)

let test_cell_timeout () =
  (* A zero timeout fails every attempt post-hoc; cells degrade and the
     timeouts are counted. *)
  let _, _, cells =
    run_small ~telemetry:true ~max_retries:1 ~cell_timeout_s:0.0 ()
  in
  Alcotest.(check int) "all cells degraded" 4
    (List.length (E.Sweep.degraded cells));
  Array.iter
    (fun (c : E.Sweep.cell) ->
      Alcotest.(check bool) "timeout recorded as error" true
        (match c.error with
        | Some msg ->
          let sub = "Cell_timeout" in
          let rec contains i =
            i + String.length sub <= String.length msg
            && (String.sub msg i (String.length sub) = sub || contains (i + 1))
          in
          contains 0
        | None -> false);
      match c.telemetry with
      | None -> Alcotest.fail "telemetry expected"
      | Some snap ->
        Alcotest.(check int) "two timed-out attempts" 2
          (Counters.count snap Report.n_sweep_timeouts))
    cells

(* --- Resume: interrupted-then-resumed = fresh ------------------------- *)

let prop_resume_bit_identical =
  (* Complete a journaled sweep, truncate the journal to its first k
     records (any prefix is a legal crash state: saves are atomic per
     cell), then resume. The resumed grid must be bit-identical to the
     fresh one, at jobs 1 and 4. *)
  Q.Test.make ~count:8 ~name:"sweep: interrupted-then-resumed = fresh run"
    Q.(triple (int_bound 1000) (int_bound 4) (oneofl [ 1; 4 ]))
    (fun (seed_i, keep, jobs) ->
      let seed = Int64.of_int (seed_i + 1) in
      let path = temp_path () in
      Fun.protect
        ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
        (fun () ->
          let fresh = run_small ~jobs ~seed ~telemetry:true () in
          ignore (run_small ~jobs ~seed ~telemetry:true ~checkpoint:path ());
          (match E.Checkpoint.load ~path with
          | Error msg -> Q.Test.fail_reportf "journal load failed: %s" msg
          | Ok t ->
            let prefix =
              List.filteri (fun i _ -> i < keep) t.E.Checkpoint.records
            in
            E.Checkpoint.save ~path
              { t with E.Checkpoint.records = prefix });
          let resumed =
            run_small ~jobs ~seed ~telemetry:true ~checkpoint:path ~resume:true
              ()
          in
          let grid_of (s, m, c) =
            E.Sweep.grid_of_cells ~scheme_names:s ~mix_names:m c
          in
          let _, _, resumed_cells = resumed in
          let restored =
            Array.fold_left
              (fun acc (c : E.Sweep.cell) ->
                acc + if c.attempts = 0 then 1 else 0)
              0 resumed_cells
          in
          restored = min keep 4
          && (grid_of fresh).E.Common.ipc = (grid_of resumed).E.Common.ipc))

let test_resume_ignores_mismatched_journal () =
  let path = temp_path () in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      ignore (run_small ~seed:1L ~checkpoint:path ());
      let warnings = ref [] in
      let _, _, cells =
        E.Sweep.run_cells ~scale:E.Common.Quick ~seed:2L
          ~scheme_names:small_schemes ~mix_names:small_mixes ~checkpoint:path
          ~resume:true
          ~log:(fun m -> warnings := m :: !warnings)
          ()
      in
      Alcotest.(check bool) "warned about mismatch" true (!warnings <> []);
      Array.iter
        (fun (c : E.Sweep.cell) ->
          Alcotest.(check bool) "every cell re-simulated" true (c.attempts >= 1))
        cells)

(* --- Invariants ------------------------------------------------------- *)

let quick_metrics () =
  let config = Vliw_sim.Config.make (Vliw_merge.Catalog.find_exn "3SSS").scheme in
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  Vliw_sim.Multitask.run config ~seed:7L
    ~schedule:Vliw_sim.Multitask.quick_schedule mix.members

let test_invariants_pass_on_real_run () =
  let m = quick_metrics () in
  Alcotest.(check (list string)) "no violations" [] (Vliw_sim.Invariants.violations m)

let test_invariants_catch_corruption () =
  let m = quick_metrics () in
  let caught what m' =
    Alcotest.(check bool) what true (Vliw_sim.Invariants.violations m' <> [])
  in
  caught "ops + 1" { m with ops = m.ops + 1 };
  caught "instrs - 1" { m with instrs = m.instrs - 1 };
  caught "cycles + 1" { m with cycles = m.cycles + 1 };
  caught "vertical > cycles" { m with vertical_waste_cycles = m.cycles + 1 };
  caught "misses > accesses" { m with dcache_misses = m.dcache_accesses + 1 };
  caught "per-thread ops"
    {
      m with
      per_thread =
        Array.map
          (fun (pt : Vliw_sim.Metrics.per_thread) -> { pt with ops = pt.ops + 1 })
          m.per_thread;
    };
  (* and the raising form *)
  Alcotest.(check bool) "check_metrics raises Violation" true
    (match Vliw_sim.Invariants.check_metrics { m with ops = m.ops + 1 } with
    | () -> false
    | exception Vliw_sim.Invariants.Violation _ -> true)

let test_attribution_check () =
  let reg = Counters.create () in
  let h = Report.attach reg in
  Counters.add h.Report.slots_offered 100;
  Counters.add h.Report.slots_filled 60;
  Counters.add h.Report.h_ilp 25;
  Counters.add h.Report.v_mem 15;
  Vliw_sim.Invariants.check_attribution (Counters.snapshot reg);
  (* break the sum *)
  Counters.add h.Report.h_ilp 1;
  Alcotest.(check bool) "broken attribution caught" true
    (match Vliw_sim.Invariants.check_attribution (Counters.snapshot reg) with
    | () -> false
    | exception Vliw_sim.Invariants.Violation _ -> true);
  (* a snapshot without attribution counters is a no-op *)
  Vliw_sim.Invariants.check_attribution Counters.empty

let test_select_probe () =
  List.iter
    (fun name ->
      Vliw_sim.Invariants.check_select ~samples:32
        (Vliw_merge.Catalog.find_exn name).scheme)
    [ "1S"; "2SC3"; "3SSS"; "C4" ]

let test_enforced_flag () =
  let before = Vliw_sim.Invariants.enforced () in
  Fun.protect
    ~finally:(fun () -> Vliw_sim.Invariants.set_enforced before)
    (fun () ->
      Vliw_sim.Invariants.set_enforced false;
      Alcotest.(check bool) "off" false (Vliw_sim.Invariants.enforced ());
      Vliw_sim.Invariants.set_enforced true;
      Alcotest.(check bool) "on" true (Vliw_sim.Invariants.enforced ()))

let suite =
  ( "faults",
    [
      Alcotest.test_case "atomic csv write" `Quick test_atomic_write_success;
      Alcotest.test_case "atomic write failure keeps old file" `Quick
        test_atomic_write_failure_preserves_old;
      Alcotest.test_case "csv quoting round-trip" `Quick
        test_csv_quoting_roundtrip;
      Alcotest.test_case "pool run_results isolates" `Quick
        test_pool_run_results_isolates;
      Alcotest.test_case "pool run_results worker-dependent" `Quick
        test_pool_run_results_worker_dependent;
      Alcotest.test_case "checkpoint round-trip" `Quick
        test_checkpoint_roundtrip;
      Alcotest.test_case "checkpoint rejects garbage" `Quick
        test_checkpoint_rejects_garbage;
      Alcotest.test_case "degraded cell" `Quick test_degraded_cell;
      Alcotest.test_case "fault injection acceptance" `Slow
        test_fault_injection_acceptance;
      Alcotest.test_case "injected faults keep results bit-identical" `Quick
        test_injected_faults_do_not_change_results;
      Alcotest.test_case "cell timeout" `Quick test_cell_timeout;
      Tgen.to_alcotest prop_resume_bit_identical;
      Alcotest.test_case "resume ignores mismatched journal" `Quick
        test_resume_ignores_mismatched_journal;
      Alcotest.test_case "invariants pass on real run" `Quick
        test_invariants_pass_on_real_run;
      Alcotest.test_case "invariants catch corruption" `Quick
        test_invariants_catch_corruption;
      Alcotest.test_case "attribution check" `Quick test_attribution_check;
      Alcotest.test_case "select probe" `Quick test_select_probe;
      Alcotest.test_case "enforced flag" `Quick test_enforced_flag;
    ] )
