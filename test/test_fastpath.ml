(* The merge-engine fast path against its oracle.

   [Engine.select] runs the signature-based integer conflict checks;
   [Engine.select_reference] evaluates the same scheme tree with the
   original list-walking checks (and live routing). The properties here
   pin the two to bit-identical selections over the full 4-thread
   design space, both routing modes and all rotations, and pin the
   decision cache ([Engine.Memo]) to the uncached engine — including
   across flushes. *)

module Isa = Vliw_isa
module M = Vliw_merge
module Q = QCheck

let m = Isa.Machine.default

let packets_of instrs =
  Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs

let routing_modes = [ M.Conflict.Flexible; M.Conflict.Fixed_slots ]

let routing_name = function
  | M.Conflict.Flexible -> "flexible"
  | M.Conflict.Fixed_slots -> "fixed"

let same_selection (a : M.Engine.selection) (b : M.Engine.selection) =
  a.issued = b.issued && a.rejected = b.rejected && a.packet = b.packet

let show_selection (s : M.Engine.selection) =
  Printf.sprintf "issued=[%s] rejected=[%s] packet=%s"
    (String.concat ";" (List.map string_of_int s.issued))
    (String.concat ";"
       (List.map
          (fun (r : M.Engine.reject) -> string_of_int r.thread)
          s.rejected))
    (match s.packet with
    | None -> "none"
    | Some p -> Printf.sprintf "threads=%x mask=%x" p.threads p.mask)

(* --- fast = reference, randomized over schemes/avail/rotation ------- *)

let four_thread_space = M.Scheme_space.enumerate 4

let prop_fast_equals_reference =
  Q.Test.make ~name:"select = select_reference (random schemes)" ~count:800
    (Q.triple
       (Q.make ~print:string_of_int (Q.Gen.int_bound (List.length four_thread_space - 1)))
       (Tgen.avail_arb 4)
       (Q.make ~print:string_of_int (Q.Gen.int_bound 3)))
    (fun (si, instrs, rotation) ->
      let scheme = List.nth four_thread_space si in
      let avail = packets_of instrs in
      List.for_all
        (fun routing ->
          same_selection
            (M.Engine.select m ~routing scheme ~rotation avail)
            (M.Engine.select_reference m ~routing scheme ~rotation avail))
        routing_modes)

(* Same property over random tree shapes beyond the enumerated space
   (parallel CSMT nodes, 6 threads). *)
let prop_fast_equals_reference_random_trees =
  Q.Test.make ~name:"select = select_reference (random trees, 6 threads)"
    ~count:400
    (Q.pair (Tgen.scheme_arb 6) (Tgen.avail_arb 6))
    (fun (scheme, instrs) ->
      let avail = packets_of instrs in
      List.for_all
        (fun routing ->
          same_selection
            (M.Engine.select m ~routing scheme avail)
            (M.Engine.select_reference m ~routing scheme avail))
        routing_modes)

(* The batched bit-parallel kernel against the same oracle, over the
   enumerated design space x routings x rotations. *)
let prop_batched_equals_reference =
  Q.Test.make ~name:"select_batched = select_reference (random schemes)"
    ~count:800
    (Q.triple
       (Q.make ~print:string_of_int (Q.Gen.int_bound (List.length four_thread_space - 1)))
       (Tgen.avail_arb 4)
       (Q.make ~print:string_of_int (Q.Gen.int_bound 3)))
    (fun (si, instrs, rotation) ->
      let scheme = List.nth four_thread_space si in
      let avail = packets_of instrs in
      List.for_all
        (fun routing ->
          same_selection
            (M.Engine.select_batched m ~routing scheme ~rotation avail)
            (M.Engine.select_reference m ~routing scheme ~rotation avail))
        routing_modes)

let prop_batched_equals_reference_random_trees =
  Q.Test.make
    ~name:"select_batched = select_reference (random trees, 6 threads)"
    ~count:400
    (Q.pair (Tgen.scheme_arb 6) (Tgen.avail_arb 6))
    (fun (scheme, instrs) ->
      let avail = packets_of instrs in
      List.for_all
        (fun routing ->
          same_selection
            (M.Engine.select_batched m ~routing scheme avail)
            (M.Engine.select_reference m ~routing scheme avail))
        routing_modes)

(* A persistent Batch is what the simulator actually drives: reusing one
   evaluator across eval calls (varying ports and rotations) must keep
   agreeing with the throwaway-oracle surface. *)
let prop_batch_reuse_matches =
  Q.Test.make ~name:"persistent Batch = select_batched across evals" ~count:200
    (Q.pair
       (Q.make ~print:string_of_int (Q.Gen.int_bound (List.length four_thread_space - 1)))
       (Q.list_of_size (Q.Gen.return 5) (Q.pair (Tgen.avail_arb 4) (Q.make ~print:string_of_int (Q.Gen.int_bound 3)))))
    (fun (si, inputs) ->
      let scheme = List.nth four_thread_space si in
      List.for_all
        (fun routing ->
          let b = M.Engine.Batch.create m ~routing scheme in
          List.for_all
            (fun (instrs, rotation) ->
              let avail = packets_of instrs in
              Array.iteri
                (fun i -> function
                  | None -> M.Engine.Batch.clear_port b i
                  | Some p -> M.Engine.Batch.set_port_packet b i p)
                avail;
              M.Engine.Batch.eval b ~rotation;
              let oracle =
                M.Engine.select m ~routing scheme ~rotation avail
              in
              let issued_mask =
                List.fold_left (fun acc t -> acc lor (1 lsl t)) 0 oracle.issued
              in
              M.Engine.Batch.issued b = issued_mask
              && M.Engine.Batch.rejected_conflict b
                   lor M.Engine.Batch.rejected_capacity b
                 = List.fold_left
                     (fun acc (r : M.Engine.reject) -> acc lor (1 lsl r.thread))
                     0 oracle.rejected)
            inputs)
        routing_modes)

(* Exhaustive over the design space with a fixed adversarial avail: every
   enumerated 4-thread scheme, both routings, all rotations. *)
let test_fast_equals_reference_exhaustive () =
  let ops klasses = List.mapi (fun i k -> Isa.Op.make k i) klasses in
  let instr_of klass_lists =
    Isa.Instr.of_cluster_ops ~addr:0 (Array.of_list (List.map ops klass_lists))
  in
  let avails =
    [
      (* dense: every thread competes for cluster 0 *)
      [|
        Some (instr_of [ [ Isa.Op.Load; Isa.Op.Alu ]; []; []; [] ]);
        Some (instr_of [ [ Isa.Op.Alu ]; [ Isa.Op.Mul ]; []; [] ]);
        Some (instr_of [ [ Isa.Op.Branch ]; []; [ Isa.Op.Alu ]; [] ]);
        Some (instr_of [ [ Isa.Op.Alu; Isa.Op.Alu ]; []; []; [ Isa.Op.Store ] ]);
      |];
      (* sparse with stalls *)
      [|
        None;
        Some (instr_of [ []; [ Isa.Op.Alu ]; []; [] ]);
        None;
        Some (instr_of [ []; [ Isa.Op.Mul; Isa.Op.Alu ]; []; [] ]);
      |];
      (* nop-only packets merge with anything *)
      [|
        Some (Isa.Instr.make ~clusters:4 ~addr:0);
        Some (instr_of [ [ Isa.Op.Alu ]; [ Isa.Op.Alu ]; [ Isa.Op.Alu ]; [ Isa.Op.Alu ] ]);
        Some (Isa.Instr.make ~clusters:4 ~addr:0);
        None;
      |];
    ]
  in
  let checked = ref 0 in
  List.iter
    (fun scheme ->
      List.iter
        (fun instrs ->
          let avail = packets_of instrs in
          List.iter
            (fun routing ->
              for rotation = 0 to 3 do
                let fast = M.Engine.select m ~routing scheme ~rotation avail in
                let batched =
                  M.Engine.select_batched m ~routing scheme ~rotation avail
                in
                let slow =
                  M.Engine.select_reference m ~routing scheme ~rotation avail
                in
                incr checked;
                if not (same_selection fast slow) then
                  Alcotest.failf "%s, %s, rot %d:\nfast %s\nref  %s"
                    (M.Scheme.to_string scheme) (routing_name routing) rotation
                    (show_selection fast) (show_selection slow);
                if not (same_selection batched slow) then
                  Alcotest.failf "%s, %s, rot %d:\nbatched %s\nref     %s"
                    (M.Scheme.to_string scheme) (routing_name routing) rotation
                    (show_selection batched) (show_selection slow)
              done)
            routing_modes)
        avails)
    four_thread_space;
  Alcotest.(check bool) "covered the space" true (!checked > 1000)

(* --- decision cache = uncached engine ------------------------------- *)

let prop_memo_matches_select =
  Q.Test.make ~name:"Memo.select/select_issue = select" ~count:600
    (Q.triple
       (Q.make ~print:string_of_int (Q.Gen.int_bound (List.length four_thread_space - 1)))
       (Q.list_of_size (Q.Gen.return 6) (Tgen.avail_arb 4))
       (Q.make ~print:string_of_int (Q.Gen.int_bound 3)))
    (fun (si, avail_list, rotation) ->
      let scheme = List.nth four_thread_space si in
      List.for_all
        (fun routing ->
          let memo = M.Engine.Memo.create m ~routing scheme in
          List.for_all
            (fun instrs ->
              let avail = packets_of instrs in
              let plain = M.Engine.select m ~routing scheme ~rotation avail in
              (* Two passes per avail: the second one exercises the hit
                 path for cacheable densities. *)
              List.for_all
                (fun (_ : int) ->
                  let full = M.Engine.Memo.select memo ~rotation avail in
                  let issue = M.Engine.Memo.select_issue memo ~rotation avail in
                  same_selection full plain
                  && issue.issued = plain.issued
                  && issue.rejected = plain.rejected
                  &&
                  (* select_issue materializes a packet only for the
                     0/1-live closed forms. *)
                  match issue.packet with
                  | None -> true
                  | Some _ -> List.length plain.issued <= 1)
                [ 1; 2 ])
            avail_list)
        routing_modes)

let test_memo_eviction () =
  let scheme = (M.Catalog.find_exn "3SSS").scheme in
  let routing = M.Conflict.Flexible in
  let memo = M.Engine.Memo.create ~cap:8 m ~routing scheme in
  (* Distinct 2-live keys: vary one thread's instruction shape so the
     signature id changes each round; with cap 8 the table must flush. *)
  let mk n_alu =
    let ops = List.init n_alu (fun i -> Isa.Op.make Isa.Op.Alu i) in
    Isa.Instr.of_cluster_ops ~addr:0 [| ops; []; []; [] |]
  in
  let fixed = mk 1 in
  (* Flood the table with more distinct (shape, rotation) keys than the
     cap holds, checking every cached answer against the plain engine. *)
  for round = 0 to 39 do
    let variable =
      let n = (round mod 10) + 1 in
      let ops =
        List.init (min 4 n) (fun i -> Isa.Op.make Isa.Op.Alu i)
        @ (if n > 4 then [ Isa.Op.make Isa.Op.Load 9 ] else [])
      in
      let cl = Array.make 4 [] in
      cl.(round mod 4) <- ops;
      Isa.Instr.of_cluster_ops ~addr:(round * 64) cl
    in
    let avail = packets_of [| Some fixed; Some variable; None; None |] in
    for rotation = 0 to 3 do
      let cached = M.Engine.Memo.select memo ~rotation avail in
      let plain = M.Engine.select m ~routing scheme ~rotation avail in
      if not (same_selection cached plain) then
        Alcotest.failf "round %d rot %d: cached %s plain %s" round rotation
          (show_selection cached) (show_selection plain)
    done
  done;
  let stats = M.Engine.Memo.stats memo in
  Alcotest.(check bool) "table flushed at least once" true (stats.flushes > 0);
  Alcotest.(check bool) "bounded by cap" true (stats.size <= 8);
  (* Post-flush the table still serves: the same lookup twice in a row
     must hit. *)
  let avail = packets_of [| Some fixed; Some (mk 2); None; None |] in
  let first = M.Engine.Memo.select memo avail in
  let before = (M.Engine.Memo.stats memo).hits in
  let second = M.Engine.Memo.select memo avail in
  let after = (M.Engine.Memo.stats memo).hits in
  Alcotest.(check bool) "identical selections" true
    (same_selection first second);
  Alcotest.(check int) "second lookup hits" (before + 1) after

(* Regression: hit/miss tallies must be cumulative across whole-table
   flushes — a flush drops the cached entries, never the counters
   (`vliwsim profile` under-reported long adaptive runs otherwise). *)
let test_memo_counters_cumulative_across_flush () =
  let scheme = (M.Catalog.find_exn "3SSS").scheme in
  let memo = M.Engine.Memo.create ~cap:4 m ~routing:M.Conflict.Flexible scheme in
  let fixed =
    Isa.Instr.of_cluster_ops ~addr:0 [| [ Isa.Op.make Isa.Op.Alu 0 ]; []; []; [] |]
  in
  (* 16 distinct 2-live signatures: every lookup misses, so the table
     crosses its cap-4 flush boundary several times. *)
  let lookups = ref 0 in
  for round = 0 to 15 do
    let ops = List.init ((round / 4) + 1) (fun i -> Isa.Op.make Isa.Op.Alu i) in
    let cl = Array.make 4 [] in
    cl.(round mod 4) <- ops;
    let variable = Isa.Instr.of_cluster_ops ~addr:(round * 64) cl in
    let avail = packets_of [| Some fixed; Some variable; None; None |] in
    ignore (M.Engine.Memo.select memo avail : M.Engine.selection);
    incr lookups
  done;
  let s = M.Engine.Memo.stats memo in
  Alcotest.(check bool) "crossed the flush boundary" true (s.flushes > 0);
  Alcotest.(check int) "hits+misses survive flushes cumulatively" !lookups
    (s.hits + s.misses);
  Alcotest.(check int) "all distinct keys missed" !lookups s.misses

let test_memo_closed_forms () =
  let scheme = (M.Catalog.find_exn "3CCC").scheme in
  let memo = M.Engine.Memo.create m ~routing:M.Conflict.Flexible scheme in
  let empty = M.Engine.Memo.select memo (Array.make 4 None) in
  Alcotest.(check (list int)) "0 live issues nothing" [] empty.issued;
  Alcotest.(check bool) "0 live, no packet" true (empty.packet = None);
  let i = Isa.Instr.of_cluster_ops ~addr:0 [| [ Isa.Op.make Isa.Op.Alu 0 ]; []; []; [] |] in
  let avail = packets_of [| None; None; Some i; None |] in
  let one = M.Engine.Memo.select memo avail in
  Alcotest.(check (list int)) "1 live issues alone" [ 2 ] one.issued;
  Alcotest.(check bool) "1 live reuses the candidate packet" true
    (one.packet == avail.(2));
  let stats = M.Engine.Memo.stats memo in
  Alcotest.(check int) "closed forms never touch the table" 0
    (stats.hits + stats.misses)

(* --- signatures ----------------------------------------------------- *)

let test_signature_empty () =
  let nop = Isa.Instr.make ~clusters:4 ~addr:0 in
  let sg = Isa.Instr.signature m nop in
  Alcotest.(check int) "empty mask" 0 sg.sg_mask;
  Alcotest.(check int) "no ops" 0 sg.sg_ops;
  Alcotest.(check bool) "id interned" true (sg.sg_id >= 0)

let test_signature_shared_id () =
  let mk () =
    Isa.Instr.of_cluster_ops ~addr:4096
      [| [ Isa.Op.make Isa.Op.Load 0; Isa.Op.make Isa.Op.Alu 1 ]; []; [ Isa.Op.make Isa.Op.Mul 2 ]; [] |]
  in
  let a = Isa.Instr.signature m (mk ()) in
  let b = Isa.Instr.signature m (mk ()) in
  Alcotest.(check int) "structurally equal instrs intern to one id" a.sg_id
    b.sg_id;
  Alcotest.(check int) "mask covers clusters 0 and 2" 0b101 a.sg_mask

let prop_signature_counts_consistent =
  Q.Test.make ~name:"signature counts agree with the op lists" ~count:300
    (Tgen.instr_arb ())
    (fun instr ->
      let sg = Isa.Instr.signature m instr in
      sg.sg_ops = Isa.Instr.op_count instr
      && Isa.Instr.mem_op_count instr = List.length (Isa.Instr.mem_ops instr)
      && sg.sg_mask = Isa.Instr.cluster_mask instr)

(* --- routing stays off the per-cycle path --------------------------- *)

let test_no_routing_per_cycle () =
  let profiles = (Vliw_workloads.Mixes.find_exn "LLHH").members in
  let config = Vliw_sim.Config.make (M.Catalog.find_exn "2SC3").scheme in
  M.Routing.reset_calls ();
  let metrics =
    Vliw_sim.Multitask.run config ~seed:11L
      ~schedule:Vliw_sim.Multitask.quick_schedule profiles
  in
  Alcotest.(check bool) "simulated some cycles" true
    (metrics.Vliw_sim.Metrics.cycles > 0);
  (* Signatures are computed at Program.generate time; the per-cycle
     conflict checks are pure integer arithmetic. A single route call
     here means the fast path regressed to re-routing. *)
  Alcotest.(check int) "route calls during simulation" 0 (M.Routing.calls ());
  (* The counter itself works: the fixed-slot reference checks re-route
     each thread's operations on every comparison. *)
  let i =
    Isa.Instr.of_cluster_ops ~addr:0
      [| [ Isa.Op.make Isa.Op.Alu 0 ]; []; []; [] |]
  in
  let avail = packets_of [| Some i; Some i; None; None |] in
  ignore
    (M.Engine.select_reference m ~routing:M.Conflict.Fixed_slots
       (M.Catalog.find_exn "1S").scheme avail
      : M.Engine.selection);
  Alcotest.(check bool) "reference path routes" true (M.Routing.calls () > 0)

(* --- zero-allocation steady state ----------------------------------- *)

(* The batched fast path (merged policy, telemetry off, no counters)
   must not touch the minor heap once warm: the measured minor-word
   delta over N steps must equal the delta of the measurement harness
   alone (0 steps). Warmup covers cold-start work — signature interning
   is already done at Program.generate time, but cache tags, predictor
   counters and the Batch lanes deserve settling. *)
let test_zero_alloc_steady_state () =
  let entry = M.Catalog.find_exn "2SC3" in
  let config = Vliw_sim.Config.make entry.scheme in
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  let rng = Vliw_util.Rng.create 7L in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate
          ~seed:(Vliw_util.Rng.next_int64 rng)
          config.Vliw_sim.Config.machine p)
      mix.members
  in
  let threads =
    Array.of_list
      (List.mapi
         (fun id program ->
           Vliw_sim.Thread_state.create ~id
             ~seed:(Vliw_util.Rng.next_int64 rng)
             program)
         programs)
  in
  let mem = Vliw_mem.Mem_system.create config.Vliw_sim.Config.machine in
  let core = Vliw_sim.Core.create config mem in
  let n = Vliw_sim.Config.contexts config in
  Vliw_sim.Core.install core
    (Array.init n (fun i ->
         if i < Array.length threads then Some threads.(i) else None));
  for _ = 1 to 10_000 do
    Vliw_sim.Core.step core
  done;
  let delta steps =
    let w0 = Gc.minor_words () in
    for _ = 1 to steps do
      Vliw_sim.Core.step core
    done;
    Gc.minor_words () -. w0
  in
  let harness_only = delta 0 in
  let with_steps = delta 10_000 in
  if with_steps <> harness_only then
    Alcotest.failf
      "steady state allocated %.0f minor words over 10k cycles (harness \
       baseline %.0f)"
      (with_steps -. harness_only) harness_only

let suite =
  ( "fastpath",
    [
      Alcotest.test_case "fast = reference, exhaustive space" `Quick
        test_fast_equals_reference_exhaustive;
      Alcotest.test_case "memo eviction stays correct" `Quick test_memo_eviction;
      Alcotest.test_case "memo counters cumulative across flushes" `Quick
        test_memo_counters_cumulative_across_flush;
      Alcotest.test_case "memo closed forms" `Quick test_memo_closed_forms;
      Alcotest.test_case "signature of empty instr" `Quick test_signature_empty;
      Alcotest.test_case "signature interning" `Quick test_signature_shared_id;
      Alcotest.test_case "no routing per cycle" `Quick test_no_routing_per_cycle;
      Alcotest.test_case "zero-alloc steady state" `Quick
        test_zero_alloc_steady_state;
      Tgen.to_alcotest prop_fast_equals_reference;
      Tgen.to_alcotest prop_fast_equals_reference_random_trees;
      Tgen.to_alcotest prop_batched_equals_reference;
      Tgen.to_alcotest prop_batched_equals_reference_random_trees;
      Tgen.to_alcotest prop_batch_reuse_matches;
      Tgen.to_alcotest prop_memo_matches_select;
      Tgen.to_alcotest prop_signature_counts_consistent;
    ] )
