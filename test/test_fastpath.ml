(* The merge-engine fast path against its oracle.

   [Engine.select] runs the signature-based integer conflict checks;
   [Engine.select_reference] evaluates the same scheme tree with the
   original list-walking checks (and live routing). The properties here
   pin the two to bit-identical selections over the full 4-thread
   design space, both routing modes and all rotations, and pin the
   decision cache ([Engine.Memo]) to the uncached engine — including
   across evictions. *)

module Isa = Vliw_isa
module M = Vliw_merge
module Q = QCheck

let m = Isa.Machine.default

let packets_of instrs =
  Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs

let routing_modes = [ M.Conflict.Flexible; M.Conflict.Fixed_slots ]

let routing_name = function
  | M.Conflict.Flexible -> "flexible"
  | M.Conflict.Fixed_slots -> "fixed"

let same_selection (a : M.Engine.selection) (b : M.Engine.selection) =
  a.issued = b.issued && a.rejected = b.rejected && a.packet = b.packet

let show_selection (s : M.Engine.selection) =
  Printf.sprintf "issued=[%s] rejected=[%s] packet=%s"
    (String.concat ";" (List.map string_of_int s.issued))
    (String.concat ";"
       (List.map
          (fun (r : M.Engine.reject) -> string_of_int r.thread)
          s.rejected))
    (match s.packet with
    | None -> "none"
    | Some p -> Printf.sprintf "threads=%x mask=%x" p.threads p.mask)

(* --- fast = reference, randomized over schemes/avail/rotation ------- *)

let four_thread_space = M.Scheme_space.enumerate 4

let prop_fast_equals_reference =
  Q.Test.make ~name:"select = select_reference (random schemes)" ~count:800
    (Q.triple
       (Q.make ~print:string_of_int (Q.Gen.int_bound (List.length four_thread_space - 1)))
       (Tgen.avail_arb 4)
       (Q.make ~print:string_of_int (Q.Gen.int_bound 3)))
    (fun (si, instrs, rotation) ->
      let scheme = List.nth four_thread_space si in
      let avail = packets_of instrs in
      List.for_all
        (fun routing ->
          same_selection
            (M.Engine.select m ~routing scheme ~rotation avail)
            (M.Engine.select_reference m ~routing scheme ~rotation avail))
        routing_modes)

(* Same property over random tree shapes beyond the enumerated space
   (parallel CSMT nodes, 6 threads). *)
let prop_fast_equals_reference_random_trees =
  Q.Test.make ~name:"select = select_reference (random trees, 6 threads)"
    ~count:400
    (Q.pair (Tgen.scheme_arb 6) (Tgen.avail_arb 6))
    (fun (scheme, instrs) ->
      let avail = packets_of instrs in
      List.for_all
        (fun routing ->
          same_selection
            (M.Engine.select m ~routing scheme avail)
            (M.Engine.select_reference m ~routing scheme avail))
        routing_modes)

(* Exhaustive over the design space with a fixed adversarial avail: every
   enumerated 4-thread scheme, both routings, all rotations. *)
let test_fast_equals_reference_exhaustive () =
  let ops klasses = List.mapi (fun i k -> Isa.Op.make k i) klasses in
  let instr_of klass_lists =
    Isa.Instr.of_cluster_ops ~addr:0 (Array.of_list (List.map ops klass_lists))
  in
  let avails =
    [
      (* dense: every thread competes for cluster 0 *)
      [|
        Some (instr_of [ [ Isa.Op.Load; Isa.Op.Alu ]; []; []; [] ]);
        Some (instr_of [ [ Isa.Op.Alu ]; [ Isa.Op.Mul ]; []; [] ]);
        Some (instr_of [ [ Isa.Op.Branch ]; []; [ Isa.Op.Alu ]; [] ]);
        Some (instr_of [ [ Isa.Op.Alu; Isa.Op.Alu ]; []; []; [ Isa.Op.Store ] ]);
      |];
      (* sparse with stalls *)
      [|
        None;
        Some (instr_of [ []; [ Isa.Op.Alu ]; []; [] ]);
        None;
        Some (instr_of [ []; [ Isa.Op.Mul; Isa.Op.Alu ]; []; [] ]);
      |];
      (* nop-only packets merge with anything *)
      [|
        Some (Isa.Instr.make ~clusters:4 ~addr:0);
        Some (instr_of [ [ Isa.Op.Alu ]; [ Isa.Op.Alu ]; [ Isa.Op.Alu ]; [ Isa.Op.Alu ] ]);
        Some (Isa.Instr.make ~clusters:4 ~addr:0);
        None;
      |];
    ]
  in
  let checked = ref 0 in
  List.iter
    (fun scheme ->
      List.iter
        (fun instrs ->
          let avail = packets_of instrs in
          List.iter
            (fun routing ->
              for rotation = 0 to 3 do
                let fast = M.Engine.select m ~routing scheme ~rotation avail in
                let slow =
                  M.Engine.select_reference m ~routing scheme ~rotation avail
                in
                incr checked;
                if not (same_selection fast slow) then
                  Alcotest.failf "%s, %s, rot %d:\nfast %s\nref  %s"
                    (M.Scheme.to_string scheme) (routing_name routing) rotation
                    (show_selection fast) (show_selection slow)
              done)
            routing_modes)
        avails)
    four_thread_space;
  Alcotest.(check bool) "covered the space" true (!checked > 1000)

(* --- decision cache = uncached engine ------------------------------- *)

let prop_memo_matches_select =
  Q.Test.make ~name:"Memo.select/select_issue = select" ~count:600
    (Q.triple
       (Q.make ~print:string_of_int (Q.Gen.int_bound (List.length four_thread_space - 1)))
       (Q.list_of_size (Q.Gen.return 6) (Tgen.avail_arb 4))
       (Q.make ~print:string_of_int (Q.Gen.int_bound 3)))
    (fun (si, avail_list, rotation) ->
      let scheme = List.nth four_thread_space si in
      List.for_all
        (fun routing ->
          let memo = M.Engine.Memo.create m ~routing scheme in
          List.for_all
            (fun instrs ->
              let avail = packets_of instrs in
              let plain = M.Engine.select m ~routing scheme ~rotation avail in
              (* Two passes per avail: the second one exercises the hit
                 path for cacheable densities. *)
              List.for_all
                (fun (_ : int) ->
                  let full = M.Engine.Memo.select memo ~rotation avail in
                  let issue = M.Engine.Memo.select_issue memo ~rotation avail in
                  same_selection full plain
                  && issue.issued = plain.issued
                  && issue.rejected = plain.rejected
                  &&
                  (* select_issue materializes a packet only for the
                     0/1-live closed forms. *)
                  match issue.packet with
                  | None -> true
                  | Some _ -> List.length plain.issued <= 1)
                [ 1; 2 ])
            avail_list)
        routing_modes)

let test_memo_eviction () =
  let scheme = (M.Catalog.find_exn "3SSS").scheme in
  let routing = M.Conflict.Flexible in
  let memo = M.Engine.Memo.create ~cap:8 m ~routing scheme in
  (* Distinct 2-live keys: vary one thread's instruction shape so the
     signature id changes each round; with cap 8 the table must flush. *)
  let mk n_alu =
    let ops = List.init n_alu (fun i -> Isa.Op.make Isa.Op.Alu i) in
    Isa.Instr.of_cluster_ops ~addr:0 [| ops; []; []; [] |]
  in
  let fixed = mk 1 in
  (* Flood the table with more distinct (shape, rotation) keys than the
     cap holds, checking every cached answer against the plain engine. *)
  for round = 0 to 39 do
    let variable =
      let n = (round mod 10) + 1 in
      let ops =
        List.init (min 4 n) (fun i -> Isa.Op.make Isa.Op.Alu i)
        @ (if n > 4 then [ Isa.Op.make Isa.Op.Load 9 ] else [])
      in
      let cl = Array.make 4 [] in
      cl.(round mod 4) <- ops;
      Isa.Instr.of_cluster_ops ~addr:(round * 64) cl
    in
    let avail = packets_of [| Some fixed; Some variable; None; None |] in
    for rotation = 0 to 3 do
      let cached = M.Engine.Memo.select memo ~rotation avail in
      let plain = M.Engine.select m ~routing scheme ~rotation avail in
      if not (same_selection cached plain) then
        Alcotest.failf "round %d rot %d: cached %s plain %s" round rotation
          (show_selection cached) (show_selection plain)
    done
  done;
  let stats = M.Engine.Memo.stats memo in
  Alcotest.(check bool) "table flushed at least once" true (stats.evictions > 0);
  Alcotest.(check bool) "bounded by cap" true (stats.size <= 8);
  (* Post-flush the table still serves: the same lookup twice in a row
     must hit. *)
  let avail = packets_of [| Some fixed; Some (mk 2); None; None |] in
  let first = M.Engine.Memo.select memo avail in
  let before = (M.Engine.Memo.stats memo).hits in
  let second = M.Engine.Memo.select memo avail in
  let after = (M.Engine.Memo.stats memo).hits in
  Alcotest.(check bool) "identical selections" true
    (same_selection first second);
  Alcotest.(check int) "second lookup hits" (before + 1) after

let test_memo_closed_forms () =
  let scheme = (M.Catalog.find_exn "3CCC").scheme in
  let memo = M.Engine.Memo.create m ~routing:M.Conflict.Flexible scheme in
  let empty = M.Engine.Memo.select memo (Array.make 4 None) in
  Alcotest.(check (list int)) "0 live issues nothing" [] empty.issued;
  Alcotest.(check bool) "0 live, no packet" true (empty.packet = None);
  let i = Isa.Instr.of_cluster_ops ~addr:0 [| [ Isa.Op.make Isa.Op.Alu 0 ]; []; []; [] |] in
  let avail = packets_of [| None; None; Some i; None |] in
  let one = M.Engine.Memo.select memo avail in
  Alcotest.(check (list int)) "1 live issues alone" [ 2 ] one.issued;
  Alcotest.(check bool) "1 live reuses the candidate packet" true
    (one.packet == avail.(2));
  let stats = M.Engine.Memo.stats memo in
  Alcotest.(check int) "closed forms never touch the table" 0
    (stats.hits + stats.misses)

(* --- signatures ----------------------------------------------------- *)

let test_signature_empty () =
  let nop = Isa.Instr.make ~clusters:4 ~addr:0 in
  let sg = Isa.Instr.signature m nop in
  Alcotest.(check int) "empty mask" 0 sg.sg_mask;
  Alcotest.(check int) "no ops" 0 sg.sg_ops;
  Alcotest.(check bool) "id interned" true (sg.sg_id >= 0)

let test_signature_shared_id () =
  let mk () =
    Isa.Instr.of_cluster_ops ~addr:4096
      [| [ Isa.Op.make Isa.Op.Load 0; Isa.Op.make Isa.Op.Alu 1 ]; []; [ Isa.Op.make Isa.Op.Mul 2 ]; [] |]
  in
  let a = Isa.Instr.signature m (mk ()) in
  let b = Isa.Instr.signature m (mk ()) in
  Alcotest.(check int) "structurally equal instrs intern to one id" a.sg_id
    b.sg_id;
  Alcotest.(check int) "mask covers clusters 0 and 2" 0b101 a.sg_mask

let prop_signature_counts_consistent =
  Q.Test.make ~name:"signature counts agree with the op lists" ~count:300
    (Tgen.instr_arb ())
    (fun instr ->
      let sg = Isa.Instr.signature m instr in
      sg.sg_ops = Isa.Instr.op_count instr
      && Isa.Instr.mem_op_count instr = List.length (Isa.Instr.mem_ops instr)
      && sg.sg_mask = Isa.Instr.cluster_mask instr)

(* --- routing stays off the per-cycle path --------------------------- *)

let test_no_routing_per_cycle () =
  let profiles = (Vliw_workloads.Mixes.find_exn "LLHH").members in
  let config = Vliw_sim.Config.make (M.Catalog.find_exn "2SC3").scheme in
  M.Routing.reset_calls ();
  let metrics =
    Vliw_sim.Multitask.run config ~seed:11L
      ~schedule:Vliw_sim.Multitask.quick_schedule profiles
  in
  Alcotest.(check bool) "simulated some cycles" true
    (metrics.Vliw_sim.Metrics.cycles > 0);
  (* Signatures are computed at Program.generate time; the per-cycle
     conflict checks are pure integer arithmetic. A single route call
     here means the fast path regressed to re-routing. *)
  Alcotest.(check int) "route calls during simulation" 0 (M.Routing.calls ());
  (* The counter itself works: the fixed-slot reference checks re-route
     each thread's operations on every comparison. *)
  let i =
    Isa.Instr.of_cluster_ops ~addr:0
      [| [ Isa.Op.make Isa.Op.Alu 0 ]; []; []; [] |]
  in
  let avail = packets_of [| Some i; Some i; None; None |] in
  ignore
    (M.Engine.select_reference m ~routing:M.Conflict.Fixed_slots
       (M.Catalog.find_exn "1S").scheme avail
      : M.Engine.selection);
  Alcotest.(check bool) "reference path routes" true (M.Routing.calls () > 0)

let suite =
  ( "fastpath",
    [
      Alcotest.test_case "fast = reference, exhaustive space" `Quick
        test_fast_equals_reference_exhaustive;
      Alcotest.test_case "memo eviction stays correct" `Quick test_memo_eviction;
      Alcotest.test_case "memo closed forms" `Quick test_memo_closed_forms;
      Alcotest.test_case "signature of empty instr" `Quick test_signature_empty;
      Alcotest.test_case "signature interning" `Quick test_signature_shared_id;
      Alcotest.test_case "no routing per cycle" `Quick test_no_routing_per_cycle;
      Tgen.to_alcotest prop_fast_equals_reference;
      Tgen.to_alcotest prop_fast_equals_reference_random_trees;
      Tgen.to_alcotest prop_memo_matches_select;
      Tgen.to_alcotest prop_signature_counts_consistent;
    ] )
