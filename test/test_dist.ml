(* The distributed sweep: the pure shard planner (union == grid, no
   overlap, for arbitrary shapes — the paper-scale correctness
   obligation), the wire codec's bit-exact float round-trip, the worker
   loop over a real socketpair, and the coordinator end-to-end with
   attached in-process workers — including the acceptance property that
   a distributed sweep at any shard size and worker count, with and
   without an injected worker death, merges a grid bit-identical to a
   single-process run. Plus the ledger merge dedup regression and the
   replicate confidence-interval math. *)

module J = Vliw_util.Json
module Ndjson = Vliw_util.Ndjson
module Plan = Vliw_dist.Plan
module Protocol = Vliw_dist.Protocol
module Worker = Vliw_dist.Worker
module Coordinator = Vliw_dist.Coordinator
module Ledger = Vliw_telemetry.Ledger
module Span = Vliw_telemetry.Span
module E = Vliw_experiments

let all_mixes = Vliw_workloads.Mixes.names
let all_schemes = List.map (fun (e : Vliw_merge.Catalog.entry) -> e.name) Vliw_merge.Catalog.all

(* --- shard planner ----------------------------------------------------- *)

(* Satellite: the planner property. The multiset union of every shard's
   cells must equal seeds x mixes x schemes exactly — nothing dropped,
   nothing duplicated — for any grid shape, worker count and shard
   size. Pure, no processes. *)
let test_plan_partition =
  QCheck.Test.make ~name:"plan: shards partition the grid exactly" ~count:300
    QCheck.(
      quad
        (int_range 1 9 (* mixes *))
        (int_range 1 16 (* schemes *))
        (int_range 1 8 (* workers *))
        (pair (int_range 0 2 (* seeds - 1, 0 allowed via list *)) (option (int_range 1 50))))
    (fun (n_mixes, n_schemes, workers, (n_seeds, shard_size)) ->
      let mix_names = List.filteri (fun i _ -> i < n_mixes) all_mixes in
      let scheme_names = List.filteri (fun i _ -> i < n_schemes) all_schemes in
      let seeds = List.init n_seeds (fun i -> Int64.of_int (i * 7919)) in
      let shards =
        Plan.make ?shard_size ~workers ~seeds ~mix_names ~scheme_names ()
      in
      (* every shard id dense and in order *)
      List.iteri
        (fun i (s : Plan.shard) ->
          if s.shard_id <> i then QCheck.Test.fail_reportf "non-dense id %d at %d" s.shard_id i;
          if s.cells = [] then QCheck.Test.fail_reportf "empty shard %d" i)
        shards;
      (* per seed: concatenating its shards' cells reproduces the
         mix-major grid exactly (order included) *)
      let grid = Plan.cells_of_grid ~mix_names ~scheme_names in
      List.for_all
        (fun seed ->
          let mine =
            List.concat_map
              (fun (s : Plan.shard) -> if s.seed = seed then s.cells else [])
              shards
          in
          mine = grid)
        seeds
      && Plan.total_cells shards = List.length seeds * List.length grid)

let test_plan_edges () =
  Alcotest.(check int) "empty grid plans as []" 0
    (List.length
       (Plan.make ~workers:3 ~seeds:[] ~mix_names:all_mixes
          ~scheme_names:all_schemes ()));
  Alcotest.(check int) "no schemes plans as []" 0
    (List.length
       (Plan.make ~workers:3 ~seeds:[ 1L ] ~mix_names:all_mixes
          ~scheme_names:[] ()));
  Alcotest.check_raises "workers < 1 rejected"
    (Invalid_argument "Plan.make: workers < 1") (fun () ->
      ignore
        (Plan.make ~workers:0 ~seeds:[ 1L ] ~mix_names:[ "LLHH" ]
           ~scheme_names:[ "C4" ] ()));
  Alcotest.check_raises "shard_size < 1 rejected"
    (Invalid_argument "Plan.make: shard_size < 1") (fun () ->
      ignore
        (Plan.make ~shard_size:0 ~workers:1 ~seeds:[ 1L ]
           ~mix_names:[ "LLHH" ] ~scheme_names:[ "C4" ] ()));
  (* default size: clamped to [1 .. cells], ~4 shards per worker *)
  Alcotest.(check int) "default size floors at 1" 1
    (Plan.default_shard_size ~workers:64 ~cells_per_seed:9);
  Alcotest.(check int) "default size caps at the grid" 1
    (Plan.default_shard_size ~workers:1 ~cells_per_seed:1);
  Alcotest.(check int) "144 cells / 2 workers -> 18-cell shards" 18
    (Plan.default_shard_size ~workers:2 ~cells_per_seed:144)

(* --- wire protocol ----------------------------------------------------- *)

let cell_spec_gen =
  QCheck.Gen.(
    map2
      (fun m s -> { Plan.mix = m; scheme = s })
      (oneofl all_mixes) (oneofl all_schemes))

let trace_gen =
  QCheck.Gen.(
    option
      (map2
         (fun t p -> { Protocol.t_trace = t; t_parent = p })
         ui64 (option ui64)))

let span_gen =
  QCheck.Gen.(
    let* trace = ui64 in
    let* id = ui64 in
    let* parent = option ui64 in
    let* kind = oneofl Span.all_kinds in
    let* name = string_size (int_bound 12) in
    let* lane = string_size (int_bound 8) in
    (* arbitrary bit patterns: the wire is a bit image, nan included *)
    let* start_bits = ui64 in
    let* dur_bits = ui64 in
    return
      {
        Span.trace;
        id;
        parent;
        kind;
        name;
        lane;
        start_s = Int64.float_of_bits start_bits;
        dur_s = Int64.float_of_bits dur_bits;
      })

let to_worker_gen =
  QCheck.Gen.(
    frequency
      [
        (1, return Protocol.Quit);
        ( 4,
          map3
            (fun (shard, trace) seed cells ->
              Protocol.Assign
                {
                  a_shard = shard;
                  a_scale = "quick";
                  a_seed = seed;
                  a_cells = cells;
                  a_trace = trace;
                })
            (pair (int_bound 10_000) trace_gen)
            (map Int64.of_int (int_bound 1_000_000))
            (list_size (int_range 1 10) cell_spec_gen) );
      ])

let from_worker_gen =
  QCheck.Gen.(
    frequency
      [
        (1, map (fun pid -> Protocol.Ready { pid }) (int_bound 100_000));
        (1, return Protocol.Query_stats);
        ( 1,
          map2
            (fun d spans ->
              Protocol.Shard_done { d_shard = d; d_spans = spans })
            (int_bound 10_000)
            (list_size (int_bound 4) span_gen) );
        ( 4,
          map3
            (fun shard (mix, scheme) (ipc, err) ->
              Protocol.Cell
                {
                  c_shard = shard;
                  c_result =
                    {
                      r_mix = mix.Plan.mix;
                      r_scheme = scheme;
                      r_ipc = (if err <> None then Float.nan else ipc);
                      (* finite: a nan elapsed has no JSON number image *)
                      r_elapsed_s =
                        (if Float.is_finite ipc then Float.abs ipc *. 0.25
                         else 0.125);
                      r_error = err;
                    };
                })
            (int_bound 10_000)
            (pair cell_spec_gen (oneofl all_schemes))
            (pair (map (fun b -> Int64.float_of_bits (Int64.of_int b)) int)
               (option (string_size (int_range 0 40)))) );
      ])

(* Bit-exactness is the point: compare floats by their bit images, so
   nan round-trips and -0.0 /= 0.0. *)
let to_worker_eq a b =
  match (a, b) with
  | Protocol.Quit, Protocol.Quit -> true
  | Protocol.Assign x, Protocol.Assign y ->
    x.a_shard = y.a_shard && x.a_scale = y.a_scale && x.a_seed = y.a_seed
    && x.a_cells = y.a_cells && x.a_trace = y.a_trace
  | _ -> false

let span_eq (a : Span.t) (b : Span.t) =
  a.trace = b.trace && a.id = b.id && a.parent = b.parent && a.kind = b.kind
  && a.name = b.name && a.lane = b.lane
  && Int64.bits_of_float a.start_s = Int64.bits_of_float b.start_s
  && Int64.bits_of_float a.dur_s = Int64.bits_of_float b.dur_s

let from_worker_eq a b =
  match (a, b) with
  | Protocol.Ready { pid = a }, Protocol.Ready { pid = b } -> a = b
  | Protocol.Query_stats, Protocol.Query_stats -> true
  | Protocol.Shard_done a, Protocol.Shard_done b ->
    a.d_shard = b.d_shard
    && List.length a.d_spans = List.length b.d_spans
    && List.for_all2 span_eq a.d_spans b.d_spans
  | Protocol.Cell x, Protocol.Cell y ->
    x.c_shard = y.c_shard
    && x.c_result.r_mix = y.c_result.r_mix
    && x.c_result.r_scheme = y.c_result.r_scheme
    && Int64.bits_of_float x.c_result.r_ipc
       = Int64.bits_of_float y.c_result.r_ipc
    && Int64.bits_of_float x.c_result.r_elapsed_s
       = Int64.bits_of_float y.c_result.r_elapsed_s
    && x.c_result.r_error = y.c_result.r_error
  | _ -> false

let test_protocol_roundtrip =
  QCheck.Test.make ~name:"protocol: NDJSON round-trip is bit-exact" ~count:500
    (QCheck.make (QCheck.Gen.pair to_worker_gen from_worker_gen))
    (fun (tw, fw) ->
      let tw' =
        match Protocol.to_worker_of_json (Protocol.to_worker_to_json tw) with
        | Ok v -> v
        | Error e -> QCheck.Test.fail_reportf "to_worker decode: %s" e
      in
      let fw' =
        match Protocol.from_worker_of_json (Protocol.from_worker_to_json fw) with
        | Ok v -> v
        | Error e -> QCheck.Test.fail_reportf "from_worker decode: %s" e
      in
      to_worker_eq tw tw' && from_worker_eq fw fw')

let test_protocol_rejects () =
  let reject label json decode =
    match decode json with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "%s: malformed message accepted" label
  in
  reject "unknown op" (J.Obj [ ("op", J.Str "explode") ])
    Protocol.to_worker_of_json;
  reject "assign without cells"
    (J.Obj [ ("op", J.Str "assign"); ("shard", J.Num 1.0) ])
    Protocol.to_worker_of_json;
  reject "bad seed image"
    (J.Obj
       [
         ("op", J.Str "assign"); ("shard", J.Num 1.0);
         ("scale", J.Str "quick"); ("seed", J.Str "zz");
         ("cells", J.List []);
       ])
    Protocol.to_worker_of_json;
  reject "unknown event" (J.Obj [ ("ev", J.Str "warp") ])
    Protocol.from_worker_of_json;
  reject "cell without bits"
    (J.Obj
       [
         ("ev", J.Str "cell"); ("shard", J.Num 0.0); ("mix", J.Str "LLHH");
         ("scheme", J.Str "C4"); ("t", J.Num 0.1);
       ])
    Protocol.from_worker_of_json;
  reject "non-object" (J.Str "hello") Protocol.from_worker_of_json

(* --- worker loop over a real transport --------------------------------- *)

let send_line fd doc =
  let line = Ndjson.line doc in
  let rec push off =
    if off < String.length line then
      push (off + Unix.write_substring fd line off (String.length line - off))
  in
  push 0

let read_messages fd stop =
  let reader = Ndjson.reader () in
  let buf = Bytes.create 4096 in
  let rec loop acc =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> List.rev acc
    | n ->
      let msgs =
        List.map
          (function
            | Ok d -> (
              match Protocol.from_worker_of_json d with
              | Ok m -> m
              | Error e -> Alcotest.failf "bad worker message: %s" e)
            | Error e ->
              Alcotest.failf "bad worker line: %s" (Ndjson.error_message e))
          (Ndjson.feed reader ~len:n (Bytes.unsafe_to_string buf))
      in
      let acc = List.rev_append msgs acc in
      if stop (List.rev acc) then List.rev acc else loop acc
  in
  loop []

let test_worker_serve () =
  let ours, theirs = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let worker =
    Domain.spawn (fun () -> Worker.serve ~input:theirs ~output:theirs ())
  in
  let mixes = [ "LLHH"; "MMHH" ] and schemes = [ "C4"; "2SS" ] in
  let cells =
    List.concat_map
      (fun mix -> List.map (fun scheme -> { Plan.mix; scheme }) schemes)
      mixes
  in
  send_line ours
    (Protocol.to_worker_to_json
       (Protocol.Assign
          { a_shard = 7; a_scale = "quick"; a_seed = 42L; a_cells = cells; a_trace = None }));
  let msgs =
    read_messages ours (fun ms ->
        List.exists (function Protocol.Shard_done _ -> true | _ -> false) ms)
  in
  send_line ours (Protocol.to_worker_to_json Protocol.Quit);
  Domain.join worker;
  Unix.close ours;
  Unix.close theirs;
  (match msgs with
  | Protocol.Ready _ :: _ -> ()
  | _ -> Alcotest.fail "worker did not greet with ready");
  (match List.rev msgs with
  | Protocol.Shard_done { d_shard = 7; _ } :: _ -> ()
  | _ -> Alcotest.fail "worker did not complete shard 7");
  let results =
    List.filter_map
      (function
        | Protocol.Cell { c_shard = 7; c_result } -> Some c_result
        | Protocol.Cell { c_shard; _ } ->
          Alcotest.failf "result for unassigned shard %d" c_shard
        | _ -> None)
      msgs
  in
  Alcotest.(check int) "one result per cell" (List.length cells)
    (List.length results);
  (* every streamed IPC is bit-identical to the in-process sweep *)
  let _, _, local =
    E.Sweep.run_cells ~scale:E.Common.Quick ~seed:42L ~scheme_names:schemes
      ~mix_names:mixes ()
  in
  List.iter
    (fun (r : Protocol.cell_result) ->
      Alcotest.(check (option string))
        (Printf.sprintf "%s/%s simulated clean" r.r_mix r.r_scheme)
        None r.r_error;
      let reference =
        match
          Array.find_opt
            (fun (c : E.Sweep.cell) ->
              c.mix = r.r_mix && c.scheme = r.r_scheme)
            local
        with
        | Some c -> c.ipc
        | None -> Alcotest.failf "no local cell for %s/%s" r.r_mix r.r_scheme
      in
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s bit-identical" r.r_mix r.r_scheme)
        true
        (Int64.bits_of_float r.r_ipc = Int64.bits_of_float reference))
    results

let test_worker_bad_cell () =
  (* unknown mix/scheme names come back as error results, the worker
     survives and still finishes the shard *)
  let ours, theirs = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let worker =
    Domain.spawn (fun () -> Worker.serve ~input:theirs ~output:theirs ())
  in
  send_line ours
    (Protocol.to_worker_to_json
       (Protocol.Assign
          {
            a_shard = 0;
            a_scale = "quick";
            a_seed = 1L;
            a_cells =
              [
                { Plan.mix = "NOPE"; scheme = "C4" };
                { Plan.mix = "LLHH"; scheme = "C4" };
              ];
            a_trace = None;
          }));
  let msgs =
    read_messages ours (fun ms ->
        List.exists (function Protocol.Shard_done _ -> true | _ -> false) ms)
  in
  send_line ours (Protocol.to_worker_to_json Protocol.Quit);
  Domain.join worker;
  Unix.close ours;
  Unix.close theirs;
  let errs, oks =
    List.partition
      (fun (r : Protocol.cell_result) -> r.r_error <> None)
      (List.filter_map
         (function Protocol.Cell { c_result; _ } -> Some c_result | _ -> None)
         msgs)
  in
  Alcotest.(check int) "bad cell errored" 1 (List.length errs);
  Alcotest.(check int) "good cell survived" 1 (List.length oks);
  Alcotest.(check bool) "error ipc is nan" true
    (Float.is_nan (List.hd errs).r_ipc)

(* --- coordinator end-to-end -------------------------------------------- *)

(* An attached in-process worker: one end of a socketpair given to the
   coordinator, the other served by a worker Domain. [die_after] makes
   the worker crash mid-shard, transport closed without a shard-done —
   exactly what a killed process looks like to the coordinator. *)
let attached_worker ?die_after () =
  let ours, theirs = Unix.socketpair Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let domain =
    Domain.spawn (fun () ->
        (try Worker.serve ?die_after_cells:die_after ~input:theirs
               ~output:theirs ()
         with Worker.Killed -> ());
        try Unix.close theirs with Unix.Unix_error _ -> ())
  in
  (ours, domain)

let run_distributed ?(workers = 2) ?die_after ?shard_size ?checkpoint
    ?(resume = false) ?seeds ~mix_names ~scheme_names ~seed () =
  let fleet =
    List.init workers (fun i ->
        attached_worker ?die_after:(if i = 0 then die_after else None) ())
  in
  let join () = List.iter (fun (_, d) -> Domain.join d) fleet in
  match
    Coordinator.run ~scale:E.Common.Quick ~seed ?seeds ~scheme_names ~mix_names
      {
        Coordinator.default_config with
        attached = List.map fst fleet;
        shard_size;
        checkpoint;
        resume;
      }
  with
  | result ->
    (* orderly shutdown already sent quit and closed our ends *)
    join ();
    result
  | exception e ->
    (* unblock workers still parked in read before joining them *)
    List.iter
      (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
      fleet;
    join ();
    raise e

let check_grid_bit_identity ~seed ~mix_names ~scheme_names
    (cells : E.Sweep.cell array) =
  let _, _, local =
    E.Sweep.run_cells ~scale:E.Common.Quick ~seed ~scheme_names ~mix_names ()
  in
  Alcotest.(check int) "cell count" (Array.length local) (Array.length cells);
  Array.iteri
    (fun i (c : E.Sweep.cell) ->
      let l = local.(i) in
      Alcotest.(check string) "mix order" l.mix c.mix;
      Alcotest.(check string) "scheme order" l.scheme c.scheme;
      Alcotest.(check bool)
        (Printf.sprintf "%s/%s bit-identical" c.mix c.scheme)
        true
        (Int64.bits_of_float c.ipc = Int64.bits_of_float l.ipc))
    cells

(* The acceptance property: distributed == local for arbitrary grid
   shapes, worker counts and shard sizes. Few iterations — each spawns
   real worker domains — but every dimension varies. *)
let test_coordinator_bit_identity =
  QCheck.Test.make ~name:"coordinator: distributed == local (any shape)"
    ~count:5
    QCheck.(
      quad (int_range 1 3) (int_range 1 4) (int_range 1 3) (int_range 1 5))
    (fun (n_mixes, n_schemes, workers, shard_size) ->
      (* shrinking can push int_range values below their lower bound;
         clamp so a shrunk counterexample still exercises the property *)
      let n_mixes = max 1 n_mixes and n_schemes = max 1 n_schemes in
      let workers = max 1 workers and shard_size = max 1 shard_size in
      let mix_names = List.filteri (fun i _ -> i < n_mixes) all_mixes in
      let scheme_names =
        List.filteri (fun i _ -> i < n_schemes) all_schemes
      in
      let result =
        run_distributed ~workers ~shard_size ~mix_names ~scheme_names
          ~seed:42L ()
      in
      (match result.Coordinator.d_grids with
      | [ (42L, cells) ] ->
        check_grid_bit_identity ~seed:42L ~mix_names ~scheme_names cells
      | _ -> Alcotest.fail "expected one grid for seed 42");
      result.d_stats.cells_simulated = n_mixes * n_schemes)

let test_coordinator_worker_death () =
  (* worker 0 dies one cell into its two-cell shard — the stranded cell
     re-queues to the survivor and the merged grid is still
     bit-identical. (Dying on a shard boundary would strand nothing.) *)
  let mix_names = [ "LLHH"; "MMHH"; "LLLL" ] and scheme_names = [ "C4"; "1S" ] in
  let result =
    run_distributed ~workers:2 ~die_after:1 ~shard_size:2 ~mix_names
      ~scheme_names ~seed:7L ()
  in
  (match result.Coordinator.d_grids with
  | [ (7L, cells) ] ->
    check_grid_bit_identity ~seed:7L ~mix_names ~scheme_names cells
  | _ -> Alcotest.fail "expected one grid for seed 7");
  Alcotest.(check bool) "a worker death was observed" true
    (result.d_stats.workers_died >= 1);
  Alcotest.(check bool) "stranded cells were re-queued" true
    (result.d_stats.shards_requeued >= 1);
  Alcotest.(check int) "no cell degraded" 0 result.d_stats.cells_degraded

let test_coordinator_replicates () =
  (* multi-seed: one grid per seed, each bit-identical to its local run *)
  let mix_names = [ "LLHH" ] and scheme_names = [ "C4"; "2SS"; "1S" ] in
  let seeds = [ 5L; 6L ] in
  let result =
    run_distributed ~workers:2 ~seeds ~mix_names ~scheme_names ~seed:5L ()
  in
  Alcotest.(check int) "one grid per seed" 2
    (List.length result.Coordinator.d_grids);
  List.iter
    (fun seed ->
      match List.assoc_opt seed result.d_grids with
      | Some cells ->
        check_grid_bit_identity ~seed ~mix_names ~scheme_names cells
      | None -> Alcotest.failf "no grid for seed %Ld" seed)
    seeds

let test_coordinator_checkpoint_resume () =
  let dir = Filename.temp_file "vliw-dist" "" in
  Sys.remove dir;
  Unix.mkdir dir 0o700;
  let ckpt = Filename.concat dir "journal.json" in
  let mix_names = [ "LLHH" ] and scheme_names = [ "C4"; "1S" ] in
  let r1 =
    run_distributed ~workers:1 ~checkpoint:ckpt ~mix_names ~scheme_names
      ~seed:9L ()
  in
  Alcotest.(check int) "first run simulates everything" 2
    r1.Coordinator.d_stats.cells_simulated;
  let r2 =
    run_distributed ~workers:1 ~checkpoint:ckpt ~resume:true ~mix_names
      ~scheme_names ~seed:9L ()
  in
  Alcotest.(check int) "resume simulates nothing" 0
    r2.Coordinator.d_stats.cells_simulated;
  Alcotest.(check int) "resume restores every cell" 2
    r2.d_stats.cells_restored;
  (match (r1.d_grids, r2.d_grids) with
  | [ (_, a) ], [ (_, b) ] ->
    Array.iteri
      (fun i (ca : E.Sweep.cell) ->
        Alcotest.(check bool) "restored cell bit-identical" true
          (Int64.bits_of_float ca.ipc = Int64.bits_of_float b.(i).ipc))
      a
  | _ -> Alcotest.fail "expected one grid each");
  Sys.remove ckpt;
  Unix.rmdir dir

let test_coordinator_no_transport () =
  Alcotest.check_raises "no transport fails fast"
    (Failure "dist: no worker transport configured") (fun () ->
      ignore
        (Coordinator.run ~scale:E.Common.Quick ~mix_names:[ "LLHH" ]
           ~scheme_names:[ "C4" ] Coordinator.default_config))

(* --- ledger merge ------------------------------------------------------ *)

let mk_run ?(label = "fig10") ?(seed = 42L) ?(ipc = 2.5) () =
  Ledger.make
    ~cells:
      [|
        {
          Ledger.mix = "LLHH";
          scheme = "C4";
          ipc;
          elapsed_s = 0.1;
          started_s = 0.0;
          worker = 0;
          attempts = 1;
          degraded = false;
        };
      |]
    ~cmd:"dist" ~label ~scale:"quick" ~seed ~jobs:1 ~scheme_names:[ "C4" ]
    ~mix_names:[ "LLHH" ] ~wall_s:0.1 ()

let temp_runs_dir () =
  let dir = Filename.temp_file "vliw-merge" "" in
  Sys.remove dir;
  dir

(* Satellite: merging per-worker ledgers must de-duplicate identical
   (fingerprint, grid-digest) records — same rule as gc — while records
   with equal fingerprints but different bits (drift evidence) always
   merge, and fresh target ids never collide. *)
let test_ledger_merge_dedup () =
  let target = temp_runs_dir () and src_a = temp_runs_dir () and src_b = temp_runs_dir () in
  ignore (Ledger.append ~dir:target (mk_run ()));
  (* src_a: an identical duplicate plus a different-seed record *)
  ignore (Ledger.append ~dir:src_a (mk_run ()));
  ignore (Ledger.append ~dir:src_a (mk_run ~seed:43L ()));
  (* src_b: same fingerprint as target but different grid bits (drift),
     plus a duplicate of src_a's different-seed record *)
  ignore (Ledger.append ~dir:src_b (mk_run ~ipc:9.9 ()));
  ignore (Ledger.append ~dir:src_b (mk_run ~seed:43L ()));
  let report = Ledger.merge ~dir:target ~from:[ src_a; src_b ] () in
  Alcotest.(check int) "two records merged" 2 (List.length report.Ledger.added);
  Alcotest.(check int) "two duplicates skipped" 2
    (List.length report.Ledger.skipped);
  let all = Ledger.load ~dir:target in
  Alcotest.(check int) "target holds three records" 3 (List.length all);
  let ids = List.map (fun (r : Ledger.run) -> r.id) all in
  Alcotest.(check (list string)) "fresh dense ids" [ "r1"; "r2"; "r3" ] ids;
  (* drift evidence survived: two records share a fingerprint with
     different digests *)
  let fps = List.map (fun (r : Ledger.run) -> r.fingerprint) all in
  Alcotest.(check bool) "drift record kept" true
    (List.length (List.sort_uniq compare fps) < List.length fps);
  (* merging again is a no-op *)
  let again = Ledger.merge ~dir:target ~from:[ src_a; src_b ] () in
  Alcotest.(check int) "re-merge adds nothing" 0 (List.length again.Ledger.added);
  (* dry run reports without writing *)
  let src_c = temp_runs_dir () in
  ignore (Ledger.append ~dir:src_c (mk_run ~seed:99L ()));
  let dry = Ledger.merge ~dry_run:true ~dir:target ~from:[ src_c ] () in
  Alcotest.(check int) "dry run would add one" 1 (List.length dry.Ledger.added);
  Alcotest.(check int) "dry run wrote nothing" 3
    (List.length (Ledger.load ~dir:target))

(* --- replicate statistics ---------------------------------------------- *)

let test_derive_seeds () =
  let a = E.Replicates.derive_seeds 100 and b = E.Replicates.derive_seeds 100 in
  Alcotest.(check bool) "deterministic" true (a = b);
  Alcotest.(check int) "hundred seeds" 100 (List.length a);
  Alcotest.(check int) "all distinct" 100
    (List.length (List.sort_uniq compare a));
  let c = E.Replicates.derive_seeds ~seed:1L 100 in
  Alcotest.(check bool) "master seed matters" true (a <> c);
  (* prefix-stable: seed i does not depend on n *)
  let short = E.Replicates.derive_seeds 3 in
  Alcotest.(check bool) "prefix stable" true
    (short = List.filteri (fun i _ -> i < 3) a)

let test_cell_ci_math () =
  (* two replicates of a tiny grid; hand-check the CI arithmetic *)
  let mk seed v =
    let cells =
      [|
        {
          E.Sweep.mix = "LLHH";
          scheme = "C4";
          ipc = v;
          elapsed_s = 0.0;
          started_s = 0.0;
          worker = 0;
          attempts = 1;
          error = None;
          telemetry = None;
        };
      |]
    in
    (seed, E.Fig10.of_cells ~scheme_names:[ "C4" ] ~mix_names:[ "LLHH" ] cells)
  in
  let t = E.Replicates.cell_stats [ mk 1L 2.0; mk 2L 3.0 ] in
  (match t with
  | [ c ] ->
    Alcotest.(check (float 1e-9)) "mean" 2.5 c.E.Replicates.ci_mean;
    Alcotest.(check int) "n" 2 c.ci_n;
    let sd = c.ci_sd in
    Alcotest.(check (float 1e-9)) "half-width = 1.96 sd / sqrt 2"
      (1.96 *. sd /. sqrt 2.0)
      c.ci_half;
    Alcotest.(check bool) "sd positive" true (sd > 0.0)
  | cs -> Alcotest.failf "expected 1 cell, got %d" (List.length cs));
  (* a single replicate has zero-width intervals *)
  (match E.Replicates.cell_stats [ mk 1L 2.0 ] with
  | [ c ] ->
    Alcotest.(check (float 0.0)) "n=1 half-width is 0" 0.0 c.ci_half;
    Alcotest.(check int) "n=1" 1 c.ci_n
  | _ -> Alcotest.fail "expected 1 cell");
  (* degraded cells drop out of the count *)
  (match E.Replicates.cell_stats [ mk 1L 2.0; mk 2L Float.nan ] with
  | [ c ] -> Alcotest.(check int) "nan replicate skipped" 1 c.ci_n
  | _ -> Alcotest.fail "expected 1 cell");
  (* gauges: mean + ci95 per surviving cell, none for all-nan cells *)
  Alcotest.(check int) "two gauges per cell" 2
    (List.length (E.Replicates.cell_gauges t));
  Alcotest.(check int) "all-degraded cell exports no gauges" 0
    (List.length
       (E.Replicates.cell_gauges (E.Replicates.cell_stats [ mk 1L Float.nan ])))

(* The distributed half of the tracing acceptance contract: a traced
   2-worker run produces bit-identical grids to the untraced run (and to
   the local sweep), and the merged span forest — coordinator spans plus
   the workers' children shipped back over Shard_done — is well-nested. *)
let test_coordinator_traced_bit_identity () =
  let mix_names = [ "LLHH"; "MMMM" ] and scheme_names = [ "C4"; "1S" ] in
  let seed = 11L in
  let plain =
    run_distributed ~workers:2 ~mix_names ~scheme_names ~seed ()
  in
  let tracer = Span.collector ~seed:0xd157L () in
  let fleet = List.init 2 (fun _ -> attached_worker ()) in
  let traced =
    match
      Coordinator.run ~scale:E.Common.Quick ~seed ~scheme_names ~mix_names
        {
          Coordinator.default_config with
          attached = List.map fst fleet;
          tracer = Some tracer;
        }
    with
    | result ->
      List.iter (fun (_, d) -> Domain.join d) fleet;
      result
    | exception e ->
      List.iter
        (fun (fd, _) -> try Unix.close fd with Unix.Unix_error _ -> ())
        fleet;
      List.iter (fun (_, d) -> Domain.join d) fleet;
      raise e
  in
  (match (plain.Coordinator.d_grids, traced.Coordinator.d_grids) with
  | [ (11L, a) ], [ (11L, b) ] ->
    check_grid_bit_identity ~seed ~mix_names ~scheme_names b;
    Alcotest.(check int) "same shape" (Array.length a) (Array.length b);
    Array.iteri
      (fun i (ca : E.Sweep.cell) ->
        Alcotest.(check bool)
          (Printf.sprintf "%s/%s traced == untraced" ca.mix ca.scheme)
          true
          (Int64.bits_of_float ca.ipc = Int64.bits_of_float b.(i).ipc))
      a
  | _ -> Alcotest.fail "expected one grid per run");
  let spans = Span.spans tracer in
  let kinds = List.map (fun s -> s.Span.kind) spans in
  Alcotest.(check bool) "submit root present" true (List.mem Span.Submit kinds);
  Alcotest.(check bool) "dispatch spans present" true
    (List.mem Span.Dispatch kinds);
  Alcotest.(check bool) "worker simulate spans merged back" true
    (List.mem Span.Simulate_cell kinds);
  Alcotest.(check bool) "worker lanes rewritten" true
    (List.exists
       (fun s ->
         s.Span.kind = Span.Simulate_cell
         && (s.Span.lane = "worker 0" || s.Span.lane = "worker 1"))
       spans);
  Alcotest.(check (list string)) "merged fleet forest well-nested" []
    (Span.validate ~slack_s:0.5 spans)

let test_dist_counters_list () =
  let r = run_distributed ~workers:1 ~mix_names:[ "LLHH" ] ~scheme_names:[ "C4" ] ~seed:3L () in
  let counters = Coordinator.counters_list r.Coordinator.d_stats in
  Alcotest.(check bool) "all dist-prefixed" true
    (List.for_all (fun (k, _) -> String.length k > 5 && String.sub k 0 5 = "dist.") counters);
  Alcotest.(check bool) "sorted for OpenMetrics" true
    (List.sort compare counters = counters);
  Alcotest.(check (option int)) "simulated booked" (Some 1)
    (List.assoc_opt "dist.cells.simulated" counters);
  Alcotest.(check (option int)) "attached booked" (Some 1)
    (List.assoc_opt "dist.workers.attached" counters)

let suite =
  ( "dist",
    [
      QCheck_alcotest.to_alcotest test_plan_partition;
      Alcotest.test_case "plan: edge cases" `Quick test_plan_edges;
      QCheck_alcotest.to_alcotest test_protocol_roundtrip;
      Alcotest.test_case "protocol: malformed rejected" `Quick
        test_protocol_rejects;
      Alcotest.test_case "worker: serves a shard bit-exactly" `Quick
        test_worker_serve;
      Alcotest.test_case "worker: bad cells error, loop survives" `Quick
        test_worker_bad_cell;
      QCheck_alcotest.to_alcotest test_coordinator_bit_identity;
      Alcotest.test_case "coordinator: survives a worker death" `Quick
        test_coordinator_worker_death;
      Alcotest.test_case "coordinator: replicate grids" `Quick
        test_coordinator_replicates;
      Alcotest.test_case "coordinator: checkpoint resume" `Quick
        test_coordinator_checkpoint_resume;
      Alcotest.test_case "coordinator: no transport fails fast" `Quick
        test_coordinator_no_transport;
      Alcotest.test_case "ledger: merge dedups like gc" `Quick
        test_ledger_merge_dedup;
      Alcotest.test_case "replicates: derived seed lists" `Quick
        test_derive_seeds;
      Alcotest.test_case "replicates: per-cell confidence intervals" `Quick
        test_cell_ci_math;
      Alcotest.test_case "coordinator: dist.* counter export" `Quick
        test_dist_counters_list;
      Alcotest.test_case "coordinator: traced run bit-identical + nested"
        `Quick test_coordinator_traced_bit_identity;
    ] )
