(* The observability stack: the JSON codec, atomic file writes, the run
   ledger, the OpenMetrics exporter, the HTML report and the sweep's
   structured event stream — plus the acceptance property that running
   the whole stack (ledger + metrics + NDJSON event log) leaves the IPC
   grid bit-identical to an unobserved sweep at jobs=1 and jobs=4. *)

module J = Vliw_util.Json
module A = Vliw_util.Atomic_io
module T = Vliw_telemetry
module L = Vliw_telemetry.Ledger
module E = Vliw_experiments

let contains ~needle haystack =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let tmp_dir () =
  let path = Filename.temp_file "vliwobs" "" in
  Sys.remove path;
  Sys.mkdir path 0o755;
  path

let read_file path = In_channel.with_open_bin path In_channel.input_all

(* --- Json ------------------------------------------------------------- *)

let test_json_roundtrip () =
  let v =
    J.Obj
      [
        ("a", J.Num 3.0);
        ("b", J.List [ J.Null; J.Bool true; J.Str "x\"y\\z\n" ]);
        ("c", J.Obj [ ("f", J.Num 0.1); ("g", J.Num (-1.25e-7)) ]);
        ("empty", J.List []);
      ]
  in
  (match J.parse (J.to_string v) with
  | Ok v' -> Alcotest.(check bool) "parse (to_string v) = v" true (v = v')
  | Error e -> Alcotest.fail ("round trip failed: " ^ e));
  Alcotest.(check string) "integers print bare" "3" (J.number_string 3.0);
  Alcotest.(check string) "nan serializes as null" "null"
    (J.to_string (J.Num Float.nan));
  Alcotest.(check bool) "truncated document is an error" true
    (match J.parse "{\"a\":" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "trailing garbage is an error" true
    (match J.parse "1 x" with Error _ -> true | Ok _ -> false);
  Alcotest.(check (option (float 0.0))) "member/to_float" (Some 3.0)
    (Option.bind (J.member "a" v) J.to_float);
  Alcotest.(check bool) "to_float on a list is None" true
    (Option.bind (J.member "b" v) J.to_float = None);
  Alcotest.(check bool) "absent member is None" true (J.member "zz" v = None)

(* Shortest-round-trip floats: the property the ledger's decimal
   mirrors (and the OpenMetrics values) rely on. *)
let test_json_float_bits =
  QCheck.Test.make ~count:200 ~name:"json: number_string round-trips bits"
    QCheck.(float)
    (fun f ->
      QCheck.assume (Float.is_finite f);
      match J.parse (J.number_string f) with
      | Ok (J.Num f') -> Int64.bits_of_float f = Int64.bits_of_float f'
      | _ -> false)

(* --- Atomic_io -------------------------------------------------------- *)

let test_atomic_io () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "f.txt" in
  A.write_file ~path "one";
  Alcotest.(check string) "write_file" "one" (read_file path);
  A.write_file ~path "two";
  Alcotest.(check string) "overwrite" "two" (read_file path);
  (try
     A.with_file ~path (fun oc ->
         output_string oc "half-written";
         failwith "boom")
   with Failure _ -> ());
  Alcotest.(check string) "raising writer leaves old content" "two"
    (read_file path);
  Alcotest.(check bool) "no stale temp file" false
    (Sys.file_exists (path ^ ".tmp"));
  A.append_line ~path "three";
  A.append_line ~path "four";
  Alcotest.(check string) "append_line terminates lines" "two\nthree\nfour\n"
    (read_file path);
  let fresh = Filename.concat dir "fresh.txt" in
  A.append_line ~path:fresh "first";
  Alcotest.(check string) "append_line creates the file" "first\n"
    (read_file fresh)

(* --- Ledger ----------------------------------------------------------- *)

let mk_cell ?(degraded = false) ~worker mix scheme ipc =
  {
    L.mix;
    scheme;
    ipc;
    elapsed_s = 0.01;
    started_s = 0.002 *. float_of_int worker;
    worker;
    attempts = (if degraded then 2 else 1);
    degraded;
  }

let grid_cells =
  [|
    mk_cell ~worker:0 "LLHH" "1S" 1.0;
    mk_cell ~worker:1 "LLHH" "2SC3" 1.25;
    mk_cell ~worker:0 "MMMM" "1S" 1.5;
    mk_cell ~worker:1 "MMMM" "2SC3" 2.0;
  |]

let mk_run ?(cells = grid_cells) ?(seed = 0xC5EEDL) ~label () =
  L.make ~cells
    ~counters:
      [
        ("core.cycles", 4000);
        ("events.fetch_stall", 12);
        ("waste.horizontal.conflict", 3);
        ("waste.vertical.empty", 7);
      ]
    ~gauges:[ ("ipc.mean", 1.4375) ]
    ~cmd:"exp" ~label ~scale:"quick" ~seed ~jobs:2
    ~scheme_names:[ "1S"; "2SC3" ] ~mix_names:[ "LLHH"; "MMMM" ] ~wall_s:0.5 ()

let test_ledger_make_and_json () =
  let r = mk_run ~label:"fig10" () in
  Alcotest.(check string) "id empty before append" "" r.L.id;
  Alcotest.(check string) "fingerprint matches fingerprint_of"
    (L.fingerprint_of ~scale:"quick" ~seed:0xC5EEDL
       ~scheme_names:[ "1S"; "2SC3" ] ~mix_names:[ "LLHH"; "MMMM" ] ())
    r.L.fingerprint;
  Alcotest.(check int) "no degraded cells" 0 r.L.degraded;
  Alcotest.(check int) "no retries" 0 r.L.retries;
  Alcotest.(check (float 1e-9)) "mean over cells" 1.4375 (L.mean_ipc r);
  (match L.of_json (L.to_json r) with
  | Some r' -> Alcotest.(check bool) "JSON round trip is exact" true (r = r')
  | None -> Alcotest.fail "of_json rejected to_json output");
  (* degraded cells: nan IPC must survive the round trip bit-exactly *)
  let d = mk_run ~label:"deg"
      ~cells:[| mk_cell ~degraded:true ~worker:0 "LLHH" "1S" Float.nan |] ()
  in
  Alcotest.(check int) "degraded derived from cells" 1 d.L.degraded;
  Alcotest.(check int) "retries derived from attempts" 1 d.L.retries;
  Alcotest.(check bool) "mean of all-degraded run is nan" true
    (Float.is_nan (L.mean_ipc d));
  match L.of_json (L.to_json d) with
  | Some d' ->
    Alcotest.(check bool) "nan cell round-trips" true
      (Int64.bits_of_float d'.L.cells.(0).L.ipc
      = Int64.bits_of_float Float.nan)
  | None -> Alcotest.fail "of_json rejected degraded run"

let test_ledger_store () =
  let dir = Filename.concat (tmp_dir ()) "runs" in
  Alcotest.(check (list string)) "missing ledger loads empty" []
    (List.map (fun r -> r.L.id) (L.load ~dir));
  Alcotest.(check bool) "latest of empty ledger" true (L.latest ~dir = None);
  let r1 = L.append ~dir (mk_run ~label:"first" ()) in
  let r2 = L.append ~dir (mk_run ~label:"second" ()) in
  Alcotest.(check string) "first id" "r1" r1.L.id;
  Alcotest.(check string) "second id" "r2" r2.L.id;
  Alcotest.(check (list string)) "load keeps file order" [ "r1"; "r2" ]
    (List.map (fun r -> r.L.id) (L.load ~dir));
  (match L.find ~dir "r1" with
  | Some r -> Alcotest.(check string) "find by id" "first" r.L.label
  | None -> Alcotest.fail "r1 not found");
  (match L.find ~dir "latest" with
  | Some r -> Alcotest.(check string) "latest alias" "r2" r.L.id
  | None -> Alcotest.fail "latest not found");
  Alcotest.(check bool) "unknown id is None" true (L.find ~dir "r99" = None);
  (* malformed lines are skipped, not fatal *)
  A.append_line ~path:(L.ledger_path ~dir) "{not json";
  A.append_line ~path:(L.ledger_path ~dir) "[1,2,3]";
  Alcotest.(check int) "malformed lines skipped on load" 2
    (List.length (L.load ~dir));
  (* ids keep counting past skipped garbage: count-based assignment *)
  let r3 = L.append ~dir (mk_run ~label:"third" ()) in
  Alcotest.(check string) "next id after garbage" "r3" r3.L.id

let test_ledger_diff () =
  let ra = mk_run ~label:"a" () in
  let rb = mk_run ~label:"b" () in
  (match L.diff ra rb with
  | L.Identical -> ()
  | _ -> Alcotest.fail "equal grids must diff Identical");
  Alcotest.(check string) "equal grids share a digest"
    (L.grid_digest ra.L.cells) (L.grid_digest rb.L.cells);
  (* perturb two cells: attribution names the first in mix-major order *)
  let perturbed = Array.map (fun c -> c) grid_cells in
  perturbed.(2) <- { perturbed.(2) with L.ipc = 1.5000001 };
  perturbed.(3) <- { perturbed.(3) with L.ipc = 2.5 };
  let rc = mk_run ~cells:perturbed ~label:"c" () in
  (match L.diff ra rc with
  | L.Drift { mix; scheme; ipc_a; ipc_b; differing } ->
    Alcotest.(check string) "first drifting mix" "MMMM" mix;
    Alcotest.(check string) "first drifting scheme" "1S" scheme;
    Alcotest.(check (float 0.0)) "lhs ipc" 1.5 ipc_a;
    Alcotest.(check (float 0.0)) "rhs ipc" 1.5000001 ipc_b;
    Alcotest.(check int) "differing cell count" 2 differing
  | _ -> Alcotest.fail "perturbed grid must drift");
  Alcotest.(check bool) "perturbed digest differs" true
    (L.grid_digest ra.L.cells <> L.grid_digest perturbed);
  (* a degraded (nan) cell in the same place on both sides is identical:
     the diff compares bit images, not float equality *)
  let nan_cells () =
    [| mk_cell ~degraded:true ~worker:0 "LLHH" "1S" Float.nan |]
  in
  (match
     L.diff
       (mk_run ~cells:(nan_cells ()) ~label:"n1" ())
       (mk_run ~cells:(nan_cells ()) ~label:"n2" ())
   with
  | L.Identical -> ()
  | _ -> Alcotest.fail "matching nan cells must diff Identical");
  match L.diff ra (mk_run ~cells:(nan_cells ()) ~label:"short" ()) with
  | L.Shape_mismatch _ -> ()
  | _ -> Alcotest.fail "different cell counts must be a shape mismatch"

(* --- OpenMetrics ------------------------------------------------------ *)

let test_openmetrics_render_and_lint () =
  Alcotest.(check string) "sanitize maps dots" "vliwsim_waste_vertical_empty"
    (T.Openmetrics.sanitize "waste.vertical.empty");
  Alcotest.(check string) "label escaping" "a\\\"b\\\\c\\nd"
    (T.Openmetrics.escape_label_value "a\"b\\c\nd");
  let reg = T.Counters.create () in
  T.Counters.add (T.Counters.counter reg "slots.filled") 1264;
  T.Counters.add (T.Counters.counter reg "core.cycles") 400;
  let h = T.Counters.histogram reg "cell.elapsed" ~bounds:[| 0.1; 1.0 |] in
  List.iter (T.Counters.observe h) [ 0.05; 0.5; 2.0 ];
  let text =
    T.Openmetrics.render
      ~labels:[ ("scale", "quick"); ("odd", "with \"quotes\"") ]
      ~snapshot:(T.Counters.snapshot reg)
      ~gauges:[ ("run_ipc_mean", 1.44) ]
      ()
  in
  Alcotest.(check (list string)) "render lints clean" []
    (T.Openmetrics.lint text);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle text))
    [
      "# HELP vliwsim_slots_filled_total";
      "# TYPE vliwsim_slots_filled_total counter";
      "vliwsim_slots_filled_total{scale=\"quick\"";
      "# TYPE vliwsim_cell_elapsed histogram";
      "vliwsim_cell_elapsed_bucket{";
      "le=\"+Inf\"";
      "vliwsim_cell_elapsed_sum";
      "vliwsim_cell_elapsed_count";
      "# TYPE vliwsim_run_ipc_mean gauge";
      "\\\"quotes\\\"";
      "# EOF";
    ]

let test_openmetrics_of_run () =
  let dir = Filename.concat (tmp_dir ()) "runs" in
  let r = L.append ~dir (mk_run ~label:"fig10" ()) in
  let text = T.Openmetrics.of_run r in
  Alcotest.(check (list string)) "of_run lints clean" []
    (T.Openmetrics.lint text);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle text))
    [
      "run=\"r1\"";
      "cmd=\"exp\"";
      "vliwsim_core_cycles_total";
      "vliwsim_run_wall_seconds";
      "vliwsim_run_cells";
      "vliwsim_run_ipc_mean";
    ]

let test_openmetrics_lint_catches () =
  let violating =
    [
      ("sample without TYPE", "foo_total 1\n# EOF\n");
      ("counter without _total",
       "# HELP m help\n# TYPE m counter\nm 1\n# EOF\n");
      ("missing terminator", "# HELP m help\n# TYPE m gauge\nm 1\n");
      ("content after EOF", "# EOF\nstray 1\n");
      ("duplicate TYPE",
       "# TYPE m gauge\n# TYPE m gauge\nm 1\n# EOF\n");
      ("TYPE after samples",
       "# TYPE m gauge\nm 1\n# HELP m late\n# EOF\n");
      ("unparseable value", "# TYPE m gauge\nm potato\n# EOF\n");
      ("unterminated label block", "# TYPE m gauge\nm{a=\"b 1\n# EOF\n");
      ("invalid metric name", "# TYPE 9bad gauge\n# EOF\n");
    ]
  in
  List.iter
    (fun (name, text) ->
      Alcotest.(check bool) (name ^ " flagged") true
        (T.Openmetrics.lint text <> []))
    violating

(* --- HTML report ------------------------------------------------------ *)

let test_html_report_self_contained () =
  let dir = Filename.concat (tmp_dir ()) "runs" in
  let _r1 = L.append ~dir (mk_run ~label:"fig10" ()) in
  let r2 = L.append ~dir (mk_run ~label:"fig10" ()) in
  let html = T.Html_report.render ~runs:(L.load ~dir) r2 in
  (* single-file contract: no scripts, no external references *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("absent: " ^ needle) false (contains ~needle html))
    [ "<script"; "http://"; "https://"; "src="; "href=" ];
  (* every section has data in mk_run, so every section renders *)
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("present: " ^ needle) true (contains ~needle html))
    [
      "<svg";
      "</html>";
      "prefers-color-scheme";
      "<title>";
      "IPC by workload mix and merge scheme";
      "Issue-slot waste breakdown";
      "Stall &amp; event attribution";
      "Sweep cell timeline";
      "Cross-run trajectory";
    ];
  (* with two same-fingerprint runs the trajectory is a chart, not the
     single-run hero number *)
  Alcotest.(check bool) "trajectory names both runs" true
    (contains ~needle:"r1" html && contains ~needle:"r2" html);
  (* a run with no counters and a single record: sections degrade by
     omission, the document still closes *)
  let bare =
    L.make ~cmd:"run" ~label:"solo" ~scale:"quick" ~seed:1L ~jobs:1
      ~scheme_names:[ "2SC3" ] ~mix_names:[ "LLHH" ] ~wall_s:0.1 ()
  in
  let html2 = T.Html_report.render ~runs:[ bare ] bare in
  Alcotest.(check bool) "bare run renders" true (contains ~needle:"</html>" html2);
  Alcotest.(check bool) "bare run omits timeline" false
    (contains ~needle:"Sweep cell timeline" html2);
  (* span.* gauges light the Request latency panel *)
  Alcotest.(check bool) "untraced run omits latency panel" false
    (contains ~needle:"Request latency" html);
  let traced =
    L.make ~cells:grid_cells
      ~gauges:
        [
          ("span.submit.count", 2.0); ("span.submit.p50", 0.012);
          ("span.submit.p95", 0.04); ("span.submit.p99", 0.04);
          ("span.simulate_cell.count", 4.0); ("span.simulate_cell.p50", 0.003);
        ]
      ~cmd:"serve" ~label:"traced" ~scale:"quick" ~seed:1L ~jobs:1
      ~scheme_names:[ "1S"; "2SC3" ] ~mix_names:[ "LLHH"; "MMMM" ] ~wall_s:0.1
      ()
  in
  let html3 = T.Html_report.render traced in
  Alcotest.(check bool) "latency panel renders" true
    (contains ~needle:"Request latency" html3);
  Alcotest.(check bool) "quantile bars present" true
    (contains ~needle:"submit p95" html3);
  (* gauge-only (cell-less) records still get a trajectory: the headline
     gauge plays the role mean IPC plays for grids *)
  let bench label =
    L.make ~gauges:[ ("exp_all_calibrated", 12.5); ("words_per_cycle.C4", 3.0) ]
      ~cmd:"bench" ~label ~scale:"quick" ~seed:1L ~jobs:1 ~scheme_names:[ "C4" ]
      ~mix_names:[] ~wall_s:0.1 ()
  in
  let bdir = Filename.concat (tmp_dir ()) "bruns" in
  let _b1 = L.append ~dir:bdir (bench "b1") in
  let b2 = L.append ~dir:bdir (bench "b2") in
  let html4 = T.Html_report.render ~runs:(L.load ~dir:bdir) b2 in
  Alcotest.(check bool) "gauge-only trajectory renders" true
    (contains ~needle:"Cross-run trajectory" html4);
  Alcotest.(check bool) "trajectory charts the headline gauge" true
    (contains ~needle:"exp_all_calibrated across" html4)

(* --- Sweep events ----------------------------------------------------- *)

let collect_events ~jobs ?telemetry () =
  let m = Mutex.create () in
  let events = ref [] in
  let on_event ev =
    Mutex.lock m;
    events := ev :: !events;
    Mutex.unlock m
  in
  let names_and_cells =
    E.Sweep.run_cells ~scale:E.Common.Quick ~scheme_names:[ "1S"; "2SC3" ]
      ~mix_names:[ "LLHH" ] ~jobs ?telemetry ~on_event ()
  in
  (names_and_cells, List.rev !events)

let test_sweep_event_stream () =
  let (_, _, cells), events = collect_events ~jobs:2 () in
  Alcotest.(check int) "two cells simulated" 2 (Array.length cells);
  (match events with
  | E.Sweep.Sweep_started { total; jobs; scale; _ } :: _ ->
    Alcotest.(check int) "started total" 2 total;
    Alcotest.(check int) "started jobs" 2 jobs;
    Alcotest.(check string) "started scale" "quick" scale
  | _ -> Alcotest.fail "first event must be Sweep_started");
  (match List.rev events with
  | E.Sweep.Sweep_finished { total; degraded; wall_s } :: _ ->
    Alcotest.(check int) "finished total" 2 total;
    Alcotest.(check int) "finished degraded" 0 degraded;
    Alcotest.(check bool) "wall clock sane" true (wall_s >= 0.0)
  | _ -> Alcotest.fail "last event must be Sweep_finished");
  let count p = List.length (List.filter p events) in
  Alcotest.(check int) "one Cell_started per cell" 2
    (count (function E.Sweep.Cell_started _ -> true | _ -> false));
  Alcotest.(check int) "one Cell_finished per cell" 2
    (count (function E.Sweep.Cell_finished _ -> true | _ -> false));
  let finished =
    List.filter_map
      (function
        | E.Sweep.Cell_finished { completed; total; eta_s; _ } ->
          Some (completed, total, eta_s)
        | _ -> None)
      events
  in
  Alcotest.(check (list int)) "completed counts monotone" [ 1; 2 ]
    (List.map (fun (c, _, _) -> c) finished);
  List.iter
    (fun (_, total, eta_s) ->
      Alcotest.(check int) "total stable" 2 total;
      Alcotest.(check bool) "eta calibrated and non-negative" true
        ((not (Float.is_nan eta_s)) && eta_s >= 0.0))
    finished;
  (* every event serializes to one parseable JSON object *)
  List.iter
    (fun ev ->
      let line = J.to_string (E.Sweep.json_of_event ev) in
      match J.parse line with
      | Ok doc ->
        Alcotest.(check bool) "event has an ev tag" true
          (Option.bind (J.member "ev" doc) J.to_string_opt <> None);
        Alcotest.(check bool) "event has a timestamp" true
          (Option.bind (J.member "ts" doc) J.to_float <> None)
      | Error e -> Alcotest.fail ("event JSON unparseable: " ^ e))
    events

let test_sweep_retry_events () =
  let attempts = Atomic.make 0 in
  E.Sweep.inject_failure :=
    Some
      (fun ~row:_ ~col:_ ->
        (* first attempt of the single cell fails, the retry succeeds *)
        Atomic.fetch_and_add attempts 1 = 0);
  Fun.protect
    ~finally:(fun () -> E.Sweep.inject_failure := None)
    (fun () ->
      let m = Mutex.create () in
      let events = ref [] in
      let on_event ev =
        Mutex.lock m;
        events := ev :: !events;
        Mutex.unlock m
      in
      let _, _, cells =
        E.Sweep.run_cells ~scale:E.Common.Quick ~scheme_names:[ "1S" ]
          ~mix_names:[ "LLHH" ] ~jobs:1 ~max_retries:1 ~on_event ()
      in
      Alcotest.(check int) "cell took two attempts" 2 cells.(0).E.Sweep.attempts;
      let events = List.rev !events in
      (match
         List.find_opt
           (function E.Sweep.Cell_retried _ -> true | _ -> false)
           events
       with
      | Some (E.Sweep.Cell_retried { mix; scheme; attempt; error }) ->
        Alcotest.(check string) "retried mix" "LLHH" mix;
        Alcotest.(check string) "retried scheme" "1S" scheme;
        Alcotest.(check int) "failed attempt number" 1 attempt;
        Alcotest.(check bool) "error text carried" true (error <> "")
      | _ -> Alcotest.fail "expected a Cell_retried event");
      Alcotest.(check int) "no Cell_degraded after recovery" 0
        (List.length
           (List.filter
              (function E.Sweep.Cell_degraded _ -> true | _ -> false)
              events)))

let test_json_logger_ndjson () =
  let dir = tmp_dir () in
  let path = Filename.concat dir "events.ndjson" in
  let oc = open_out path in
  let logger = E.Sweep.json_logger oc in
  let _, _, cells =
    E.Sweep.run_cells ~scale:E.Common.Quick ~scheme_names:[ "1S"; "2SC3" ]
      ~mix_names:[ "LLHH" ] ~jobs:2 ~on_event:logger ()
  in
  close_out oc;
  Alcotest.(check int) "cells" 2 (Array.length cells);
  let lines =
    List.filter (fun l -> l <> "") (String.split_on_char '\n' (read_file path))
  in
  (* sweep_started + 2 x (cell_started + cell_finished) + sweep_finished *)
  Alcotest.(check int) "one line per event" 6 (List.length lines);
  let tags =
    List.map
      (fun line ->
        match J.parse line with
        | Ok doc ->
          Option.value ~default:"?"
            (Option.bind (J.member "ev" doc) J.to_string_opt)
        | Error e -> Alcotest.fail ("NDJSON line unparseable: " ^ e))
      lines
  in
  Alcotest.(check string) "stream opens with sweep_started" "sweep_started"
    (List.hd tags);
  Alcotest.(check string) "stream closes with sweep_finished" "sweep_finished"
    (List.nth tags 5);
  List.iter
    (fun tag ->
      Alcotest.(check bool) ("known tag " ^ tag) true
        (List.mem tag
           [ "sweep_started"; "cell_started"; "cell_finished"; "sweep_finished" ]))
    tags

(* --- The acceptance property ----------------------------------------- *)

let scheme_subsets = [| [ "1S"; "3CCC" ]; [ "2SC3" ]; [ "3SSS"; "2SC3" ] |]
let mix_subsets = [| [ "LLHH" ]; [ "LLLL"; "HHHH" ]; [ "MMMM" ] |]

let cell_bits cells =
  Array.to_list
    (Array.map (fun (c : E.Sweep.cell) -> Int64.bits_of_float c.ipc) cells)

let ledger_cells cells =
  Array.map
    (fun (c : E.Sweep.cell) ->
      {
        L.mix = c.mix;
        scheme = c.scheme;
        ipc = c.ipc;
        elapsed_s = c.elapsed_s;
        started_s = c.started_s;
        worker = c.worker;
        attempts = c.attempts;
        degraded = c.error <> None;
      })
    cells

(* --- Structured logging ---------------------------------------------- *)

module Log = Vliw_util.Log

let test_log_render () =
  let sink = Buffer.create 256 in
  let t = ref 0.0 in
  let clock () =
    t := !t +. 1.5;
    !t
  in
  let log =
    Log.make ~level:Log.Debug ~format:Log.Human ~clock ~component:"serve"
      (fun line ->
        Buffer.add_string sink line;
        Buffer.add_char sink '\n')
  in
  let fields =
    [ ("job", Log.S "j-1"); ("cells", Log.I 9); ("wall_s", Log.F 0.25);
      ("cached", Log.B true); ("msg text", Log.S "two words") ]
  in
  let human = Log.render log ~ts:12.5 Log.Warn "job done" fields in
  Alcotest.(check bool) "level tag" true (contains ~needle:"warn" human);
  Alcotest.(check bool) "component tag" true (contains ~needle:"serve:" human);
  Alcotest.(check bool) "bare id unquoted" true (contains ~needle:"job=j-1" human);
  Alcotest.(check bool) "int field" true (contains ~needle:"cells=9" human);
  Alcotest.(check bool) "spacey value quoted" true
    (contains ~needle:"=\"two words\"" human);
  (* json mode: every line parses, fields are typed *)
  let jlog = Log.make ~format:Log.Json ~clock ~component:"dist" (fun l ->
      Buffer.add_string sink l) in
  Buffer.clear sink;
  Log.info jlog "worker up" [ ("worker", Log.I 3); ("addr", Log.S "w:1") ];
  (match J.parse (Buffer.contents sink) with
  | Error e -> Alcotest.fail ("json log line not JSON: " ^ e)
  | Ok doc ->
    Alcotest.(check bool) "level field" true
      (J.member "level" doc = Some (J.Str "info"));
    Alcotest.(check bool) "component field" true
      (J.member "component" doc = Some (J.Str "dist"));
    Alcotest.(check bool) "typed int field" true
      (J.member "worker" doc = Some (J.Num 3.0));
    (match J.member "ts" doc with
    | Some (J.Num ts) ->
      (* monotonic: seconds since logger creation, not wall time *)
      Alcotest.(check bool) "ts is an offset" true (ts >= 0.0 && ts < 60.0)
    | _ -> Alcotest.fail "no ts field"))

let test_log_levels () =
  let lines = ref [] in
  let log =
    Log.make ~level:Log.Warn ~component:"c" (fun l -> lines := l :: !lines)
  in
  Log.debug log "dropped" [];
  Log.info log "dropped" [];
  Log.warn log "kept" [];
  Log.error log "kept" [];
  Alcotest.(check int) "below-threshold records dropped" 2
    (List.length !lines);
  Alcotest.(check bool) "enabled matches" true
    (Log.enabled log Log.Error && not (Log.enabled log Log.Info));
  (* parsing the CLI spellings *)
  Alcotest.(check bool) "warning alias" true
    (Log.level_of_string "WARNING" = Ok Log.Warn);
  Alcotest.(check bool) "bad level rejected" true
    (match Log.level_of_string "loud" with Error _ -> true | Ok _ -> false);
  Alcotest.(check bool) "ndjson alias" true
    (Log.format_of_string "ndjson" = Ok Log.Json);
  (* with_component keeps the sink and threshold *)
  let sub = Log.with_component log "c/sub" in
  Log.error sub "tagged" [];
  match !lines with
  | latest :: _ ->
    Alcotest.(check bool) "recomponented" true (contains ~needle:"c/sub" latest)
  | [] -> Alcotest.fail "no line emitted"

(* The full observability stack — NDJSON event log, per-cell telemetry,
   ledger append + reload, OpenMetrics render + lint — around a sweep,
   returning the IPC bit images as simulated and as persisted. *)
let observed_sweep ~seed ~scheme_names ~mix_names ~jobs =
  let dir = tmp_dir () in
  let oc = open_out (Filename.concat dir "events.ndjson") in
  let logger = E.Sweep.json_logger oc in
  let resolved_schemes, resolved_mixes, cells =
    E.Sweep.run_cells ~scale:E.Common.Quick ~seed ~scheme_names ~mix_names
      ~jobs ~telemetry:true ~on_event:logger ()
  in
  close_out oc;
  let snap = E.Sweep.merged_telemetry cells in
  let run =
    L.append ~dir:(Filename.concat dir "runs")
      (L.make
         ~counters:snap.T.Counters.counters
         ~cells:(ledger_cells cells) ~cmd:"exp" ~label:"property"
         ~scale:"quick" ~seed ~jobs ~scheme_names:resolved_schemes
         ~mix_names:resolved_mixes ~wall_s:0.0 ())
  in
  if T.Openmetrics.lint (T.Openmetrics.of_run run) <> [] then
    failwith "observed sweep produced an invalid exposition";
  let reloaded =
    match L.find ~dir:(Filename.concat dir "runs") "latest" with
    | Some r -> r
    | None -> failwith "ledger lost the run"
  in
  let persisted_bits =
    Array.to_list
      (Array.map
         (fun (c : L.cell) -> Int64.bits_of_float c.ipc)
         reloaded.L.cells)
  in
  (cell_bits cells, persisted_bits)

let test_observability_inert =
  QCheck.Test.make ~count:3
    ~name:
      "ledger + metrics + event log leave the grid bit-identical (jobs 1 and 4)"
    QCheck.(triple (int_bound 1000) (int_bound 2) (int_bound 2))
    (fun (seed, si, mi) ->
      let seed = Int64.of_int seed in
      let scheme_names = scheme_subsets.(si)
      and mix_names = mix_subsets.(mi) in
      let _, _, reference_cells =
        E.Sweep.run_cells ~scale:E.Common.Quick ~seed ~scheme_names ~mix_names
          ~jobs:1 ()
      in
      let reference = cell_bits reference_cells in
      List.for_all
        (fun jobs ->
          let simulated, persisted =
            observed_sweep ~seed ~scheme_names ~mix_names ~jobs
          in
          simulated = reference && persisted = reference)
        [ 1; 4 ])

let suite =
  ( "observability",
    [
      Alcotest.test_case "json round trip" `Quick test_json_roundtrip;
      QCheck_alcotest.to_alcotest test_json_float_bits;
      Alcotest.test_case "atomic file writes" `Quick test_atomic_io;
      Alcotest.test_case "ledger make + json" `Quick test_ledger_make_and_json;
      Alcotest.test_case "ledger store" `Quick test_ledger_store;
      Alcotest.test_case "ledger diff attribution" `Quick test_ledger_diff;
      Alcotest.test_case "openmetrics render lints clean" `Quick
        test_openmetrics_render_and_lint;
      Alcotest.test_case "openmetrics of_run" `Quick test_openmetrics_of_run;
      Alcotest.test_case "openmetrics lint catches violations" `Quick
        test_openmetrics_lint_catches;
      Alcotest.test_case "html report self-contained" `Quick
        test_html_report_self_contained;
      Alcotest.test_case "sweep event stream" `Quick test_sweep_event_stream;
      Alcotest.test_case "sweep retry events" `Quick test_sweep_retry_events;
      Alcotest.test_case "json logger writes NDJSON" `Quick
        test_json_logger_ndjson;
      Alcotest.test_case "structured log rendering" `Quick test_log_render;
      Alcotest.test_case "log levels and parsing" `Quick test_log_levels;
      QCheck_alcotest.to_alcotest test_observability_inert;
    ] )
