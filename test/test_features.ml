(* Trace-scheduling mode, IMT/BMT policies, baselines, sensitivity,
   replicates helpers, CSV writer, and the trace inspector. *)
module C = Vliw_compiler
module Isa = Vliw_isa
module Sim = Vliw_sim
module E = Vliw_experiments

let m = Isa.Machine.default

let profile = Test_compiler.test_profile

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

(* --- trace-scheduling mode --- *)

let test_trace_program_valid () =
  List.iter
    (fun len ->
      let prog =
        C.Program.generate ~seed:3L ~mode:(`Trace len) m (profile ~blocks:12 ())
      in
      match C.Program.validate m prog with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "trace %d: %s" len msg)
    [ 1; 2; 4 ]

let test_trace_region_exits () =
  let prog = C.Program.generate ~seed:3L ~mode:(`Trace 4) m (profile ~blocks:12 ()) in
  Alcotest.(check int) "12/4 regions" 3 (Array.length prog.blocks);
  Array.iter
    (fun (b : C.Program.block) ->
      Alcotest.(check int) "4 exits per region" 4 (Array.length b.exits))
    prog.blocks

let test_block_mode_single_exit () =
  let prog = C.Program.generate ~seed:3L m (profile ~blocks:6 ()) in
  Array.iter
    (fun (b : C.Program.block) ->
      Alcotest.(check int) "one exit" 1 (Array.length b.exits);
      Alcotest.(check int) "exit last" (Array.length b.instrs - 1) (fst b.exits.(0)))
    prog.blocks

let test_trace_denser_than_block () =
  (* Trace scheduling extracts more static ILP for serial code. *)
  let p = profile ~width:1.2 ~ops:10 ~blocks:12 () in
  let block = C.Program.generate ~seed:9L ~mode:`Block m p in
  let trace = C.Program.generate ~seed:9L ~mode:(`Trace 4) m p in
  Alcotest.(check bool)
    (Printf.sprintf "trace %.2f > block %.2f" (C.Program.static_ipc trace)
       (C.Program.static_ipc block))
    true
    (C.Program.static_ipc trace > C.Program.static_ipc block)

let test_trace_simulates () =
  let config = Sim.Config.make (Vliw_merge.Catalog.find_exn "2SC3").scheme in
  let metrics =
    Sim.Multitask.run config ~seed:5L ~schedule:Sim.Multitask.quick_schedule
      ~mode:(`Trace 4)
      (Vliw_workloads.Mixes.find_exn "MMMM").members
  in
  Alcotest.(check bool) "progress" true (metrics.ops > 0)

let test_exit_target () =
  let prog = C.Program.generate ~seed:3L ~mode:(`Trace 2) m (profile ~blocks:8 ()) in
  let b = prog.blocks.(0) in
  Array.iter
    (fun (idx, target) ->
      Alcotest.(check (option int)) "lookup" (Some target)
        (C.Program.exit_target b idx))
    b.exits;
  Alcotest.(check (option int)) "non-exit" None (C.Program.exit_target b (-1))

(* --- issue policies --- *)

let run_policy policy =
  let config =
    Sim.Config.make ~policy (Vliw_merge.Catalog.find_exn "3SSS").scheme
  in
  Sim.Multitask.run config ~seed:5L ~schedule:Sim.Multitask.quick_schedule
    (Vliw_workloads.Mixes.find_exn "MMHH").members

let test_imt_one_per_cycle () =
  let metrics = run_policy Sim.Policy.Imt in
  (* IMT issues at most one thread per cycle. *)
  Array.iteri
    (fun k cycles ->
      if k > 1 then Alcotest.(check int) "never more than one" 0 cycles)
    metrics.issue_hist;
  Alcotest.(check bool) "still makes progress" true (metrics.ops > 0)

let test_bmt_one_per_cycle () =
  let metrics = run_policy Sim.Policy.default_bmt in
  Array.iteri
    (fun k cycles ->
      if k > 1 then Alcotest.(check int) "never more than one" 0 cycles)
    metrics.issue_hist

let test_policy_ladder () =
  let ipc p = Sim.Metrics.ipc (run_policy p) in
  let merged = ipc Sim.Policy.Merged in
  let imt = ipc Sim.Policy.Imt in
  Alcotest.(check bool)
    (Printf.sprintf "merged %.2f > imt %.2f" merged imt)
    true (merged > imt)

let test_bmt_switch_penalty_costs () =
  let ipc p = Sim.Metrics.ipc (run_policy p) in
  let free = ipc (Sim.Policy.Bmt { switch_penalty = 0 }) in
  let costly = ipc (Sim.Policy.Bmt { switch_penalty = 8 }) in
  Alcotest.(check bool)
    (Printf.sprintf "penalty hurts (%.2f >= %.2f)" free costly)
    true (free >= costly)

let test_policy_strings () =
  Alcotest.(check string) "imt" "imt" (Sim.Policy.to_string Sim.Policy.Imt);
  Alcotest.(check bool) "parse imt" true (Sim.Policy.of_string "imt" = Ok Sim.Policy.Imt);
  Alcotest.(check bool) "parse junk" true
    (match Sim.Policy.of_string "junk" with Error _ -> true | Ok _ -> false)

(* --- baselines experiment --- *)

let test_baselines_ladder () =
  let rows = E.Baselines.run ~scale:E.Common.Quick ~mixes:[ "LLMM"; "MMHH" ] () in
  Alcotest.(check int) "6 techniques" 6 (List.length rows);
  let get label = List.find (fun (r : E.Baselines.row) -> r.label = label) rows in
  let st = get "single-thread" and imt = get "IMT (4 ctx)" in
  let smt = get "SMT 3SSS" in
  Alcotest.(check bool) "IMT beats ST" true (imt.avg_ipc > st.avg_ipc);
  Alcotest.(check bool) "SMT beats IMT" true (smt.avg_ipc > imt.avg_ipc);
  Alcotest.(check bool) "IMT reduces vertical waste" true
    (imt.avg_vertical_waste < st.avg_vertical_waste)

(* --- sensitivity --- *)

let test_sensitivity_miss_penalty () =
  let sweep = E.Sensitivity.miss_penalty ~scale:E.Common.Quick () in
  Alcotest.(check int) "4 points" 4 (List.length sweep.points);
  (* Higher miss penalty cannot help. *)
  let first = List.hd sweep.points and last = List.nth sweep.points 3 in
  Alcotest.(check bool)
    (Printf.sprintf "10cyc %.2f >= 80cyc %.2f" first.smt last.smt)
    true
    (first.smt >= last.smt)

let test_sensitivity_render () =
  let out = E.Sensitivity.render (E.Sensitivity.branch_penalty ~scale:E.Common.Quick ()) in
  Alcotest.(check bool) "has header" true (contains ~needle:"2SC3 vs CSMT" out)

(* --- CSV --- *)

let test_csv_escaping () =
  Alcotest.(check string) "plain" "abc" (Vliw_util.Csv.escape_field "abc");
  Alcotest.(check string) "comma" "\"a,b\"" (Vliw_util.Csv.escape_field "a,b");
  Alcotest.(check string) "quote" "\"a\"\"b\"" (Vliw_util.Csv.escape_field "a\"b")

let test_csv_to_string () =
  let out =
    Vliw_util.Csv.to_string ~header:[ "x"; "y" ] [ [ "1"; "2" ]; [ "3"; "a,b" ] ]
  in
  Alcotest.(check string) "full" "x,y\n1,2\n3,\"a,b\"\n" out

let test_csv_write_read () =
  let path = Filename.temp_file "vliw" ".csv" in
  Vliw_util.Csv.write ~path ~header:[ "a" ] [ [ "1" ] ];
  let ic = open_in path in
  let line = input_line ic in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "header" "a" line

let test_grid_csv () =
  let grid =
    E.Sweep.run ~scale:E.Common.Quick ~scheme_names:[ "1S" ]
      ~mix_names:[ "LLLL" ] ()
  in
  let header, rows = E.Common.grid_csv grid in
  Alcotest.(check (list string)) "header" [ "mix"; "1S" ] header;
  Alcotest.(check int) "one row" 1 (List.length rows)

(* --- trace inspector --- *)

let test_trace_inspector () =
  let config = Sim.Config.make (Vliw_merge.Catalog.find_exn "2SC3").scheme in
  let options =
    { Sim.Trace.default_options with cycles = 8; warmup = 50 }
  in
  let out =
    Sim.Trace.run config ~options (Vliw_workloads.Mixes.find_exn "MMMM").members
  in
  Alcotest.(check bool) "names shown" true (contains ~needle:"g721encode" out);
  Alcotest.(check bool) "eight rows" true (contains ~needle:"    57" out)

let test_trace_inspector_rejects_overflow () =
  let config = Sim.Config.make (Vliw_merge.Catalog.find_exn "1S").scheme in
  Alcotest.check_raises "too many threads"
    (Invalid_argument "Trace.run: more threads than hardware contexts") (fun () ->
      ignore
        (Sim.Trace.run config (Vliw_workloads.Mixes.find_exn "MMMM").members))

(* --- compiler comparison --- *)

let test_compiler_cmp () =
  let d = E.Compiler_cmp.run ~scale:E.Common.Quick ~trace_len:3 () in
  Alcotest.(check int) "trace len" 3 d.trace_len;
  Alcotest.(check int) "12 benches" 12 (List.length d.benches);
  Alcotest.(check int) "3 ladder rows" 3 (List.length d.ladder);
  (* Trace scheduling helps single-thread IPC on average. *)
  let gains =
    List.map (fun (r : E.Compiler_cmp.bench_row) -> r.trace_ipc -. r.block_ipc) d.benches
  in
  Alcotest.(check bool) "average gain positive" true
    (Vliw_util.Stats.mean (Array.of_list gains) > 0.0);
  Alcotest.(check bool) "render" true
    (contains ~needle:"trace scheduling" (E.Compiler_cmp.render d))

let suite =
  ( "features",
    [
      Alcotest.test_case "trace programs validate" `Quick test_trace_program_valid;
      Alcotest.test_case "trace region exits" `Quick test_trace_region_exits;
      Alcotest.test_case "block mode single exit" `Quick test_block_mode_single_exit;
      Alcotest.test_case "trace denser than block" `Quick test_trace_denser_than_block;
      Alcotest.test_case "trace mode simulates" `Quick test_trace_simulates;
      Alcotest.test_case "exit target lookup" `Quick test_exit_target;
      Alcotest.test_case "IMT one per cycle" `Quick test_imt_one_per_cycle;
      Alcotest.test_case "BMT one per cycle" `Quick test_bmt_one_per_cycle;
      Alcotest.test_case "policy ladder" `Quick test_policy_ladder;
      Alcotest.test_case "BMT switch penalty" `Quick test_bmt_switch_penalty_costs;
      Alcotest.test_case "policy strings" `Quick test_policy_strings;
      Alcotest.test_case "baselines ladder" `Quick test_baselines_ladder;
      Alcotest.test_case "sensitivity miss penalty" `Quick test_sensitivity_miss_penalty;
      Alcotest.test_case "sensitivity render" `Quick test_sensitivity_render;
      Alcotest.test_case "csv escaping" `Quick test_csv_escaping;
      Alcotest.test_case "csv to_string" `Quick test_csv_to_string;
      Alcotest.test_case "csv write" `Quick test_csv_write_read;
      Alcotest.test_case "grid csv" `Quick test_grid_csv;
      Alcotest.test_case "trace inspector" `Quick test_trace_inspector;
      Alcotest.test_case "trace inspector overflow" `Quick
        test_trace_inspector_rejects_overflow;
      Alcotest.test_case "compiler comparison" `Quick test_compiler_cmp;
    ] )

(* --- branch predictor --- *)

let test_predictor_static () =
  let p = Sim.Predictor.create Isa.Machine.No_predictor in
  Alcotest.(check bool) "not-taken correct" true
    (Sim.Predictor.predict_and_update p ~addr:0 ~taken:false);
  Alcotest.(check bool) "taken mispredicted" false
    (Sim.Predictor.predict_and_update p ~addr:0 ~taken:true);
  Alcotest.(check (float 1e-9)) "accuracy" 0.5 (Sim.Predictor.accuracy p)

let test_predictor_bimodal_learns () =
  let p = Sim.Predictor.create (Isa.Machine.Bimodal 256) in
  (* Train a single always-taken branch: after warmup it predicts taken. *)
  for _ = 1 to 4 do
    ignore (Sim.Predictor.predict_and_update p ~addr:640 ~taken:true)
  done;
  Alcotest.(check bool) "learned taken" true
    (Sim.Predictor.predict_and_update p ~addr:640 ~taken:true)

let test_predictor_rejects_bad_size () =
  Alcotest.check_raises "non power of two"
    (Invalid_argument "Predictor.create: entries must be a positive power of two")
    (fun () -> ignore (Sim.Predictor.create (Isa.Machine.Bimodal 100)))

let test_predictor_helps_ipc () =
  (* A branchy, almost-always-taken workload: the static machine pays the
     penalty on nearly every block, the bimodal predictor learns. *)
  let branchy = { (profile ~width:1.5 ~ops:4 ()) with taken_prob = 0.95 } in
  let run pred =
    let machine = { m with Isa.Machine.predictor = pred } in
    let config =
      Sim.Config.make ~machine (Vliw_merge.Catalog.find_exn "ST").scheme
    in
    Sim.Metrics.ipc
      (Sim.Multitask.run config ~seed:5L ~schedule:Sim.Multitask.quick_schedule
         [ branchy ])
  in
  let without = run Isa.Machine.No_predictor in
  let with_pred = run (Isa.Machine.Bimodal 4096) in
  Alcotest.(check bool)
    (Printf.sprintf "predictor helps (%.2f > %.2f)" with_pred without)
    true
    (with_pred > without)

let predictor_tests =
  [
    Alcotest.test_case "predictor static" `Quick test_predictor_static;
    Alcotest.test_case "predictor bimodal learns" `Quick test_predictor_bimodal_learns;
    Alcotest.test_case "predictor rejects bad size" `Quick
      test_predictor_rejects_bad_size;
    Alcotest.test_case "predictor helps IPC" `Quick test_predictor_helps_ipc;
  ]

let suite = (fst suite, snd suite @ predictor_tests)

(* --- textual program format --- *)

let test_asm_roundtrip () =
  let prog = C.Program.generate ~seed:5L m (profile ~blocks:4 ()) in
  let text = C.Asm.to_string prog in
  match C.Asm.parse ~profile:prog.profile text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok back ->
    Alcotest.(check bool) "round-trip equal" true (C.Asm.roundtrip_equal prog back)

let test_asm_roundtrip_trace () =
  let prog = C.Program.generate ~seed:5L ~mode:(`Trace 3) m (profile ~blocks:9 ()) in
  match C.Asm.parse ~profile:prog.profile (C.Asm.to_string prog) with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok back ->
    Alcotest.(check bool) "multi-exit round-trip" true
      (C.Asm.roundtrip_equal prog back)

let test_asm_parse_errors () =
  let check_err label text =
    match C.Asm.parse ~profile:(profile ()) text with
    | Ok _ -> Alcotest.failf "%s: expected an error" label
    | Error _ -> ()
  in
  check_err "empty" "";
  check_err "no region" "  0: add#1 | - | - | -\n";
  check_err "bad op" "region 0 fallthrough 0\n  exit 0 -> 0\n  0: xyz#1 | - | - | -\n";
  check_err "bad id" "region 0 fallthrough 0\n  exit 0 -> 0\n  0: add#x | - | - | -\n";
  check_err "exit without branch"
    "region 0 fallthrough 0\n  exit 0 -> 0\n  0: add#1 | - | - | -\n";
  check_err "overfull cluster"
    "region 0 fallthrough 0\n  exit 0 -> 0\n  0: ld#1 st#2 br#3 | - | - | -\n"

let test_asm_parse_minimal () =
  let text = "region 0 fallthrough 0\n  exit 0 -> 0\n  0: add#1 br#2 | - | - | -\n" in
  match C.Asm.parse ~profile:(profile ()) text with
  | Error msg -> Alcotest.failf "parse failed: %s" msg
  | Ok p ->
    Alcotest.(check int) "one region" 1 (Array.length p.blocks);
    Alcotest.(check int) "two ops" 2 p.total_ops;
    Alcotest.(check bool) "validates" true (C.Program.validate m p = Ok ())

let asm_tests =
  [
    Alcotest.test_case "asm round-trip (block)" `Quick test_asm_roundtrip;
    Alcotest.test_case "asm round-trip (trace)" `Quick test_asm_roundtrip_trace;
    Alcotest.test_case "asm parse errors" `Quick test_asm_parse_errors;
    Alcotest.test_case "asm parse minimal" `Quick test_asm_parse_minimal;
  ]

let suite = (fst suite, snd suite @ asm_tests)

(* --- waste decomposition --- *)

let test_waste_decomposition () =
  let rows = E.Waste.run ~scale:E.Common.Quick () in
  Alcotest.(check int) "5 rows" 5 (List.length rows);
  let get name = List.find (fun (r : E.Waste.row) -> r.scheme = name) rows in
  let st = get "ST" and csmt = get "3CCC" and smt = get "3SSS" in
  (* Multithreaded merging removes most vertical waste... *)
  Alcotest.(check bool) "CSMT cuts vertical waste" true (csmt.vertical < st.vertical);
  (* ...and operation-level merging additionally cuts horizontal waste. *)
  Alcotest.(check bool) "SMT cuts horizontal waste vs CSMT" true
    (smt.horizontal < csmt.horizontal);
  Alcotest.(check bool) "merge degree grows" true
    (smt.merge_degree > csmt.merge_degree && csmt.merge_degree > st.merge_degree);
  Alcotest.(check bool) "render" true
    (contains ~needle:"Vertical waste" (E.Waste.render "LLHH" rows))

let waste_tests =
  [ Alcotest.test_case "waste decomposition" `Quick test_waste_decomposition ]

let suite = (fst suite, snd suite @ waste_tests)

(* --- weighted speedup / fairness --- *)

let test_speedup_metrics () =
  let rows = E.Speedup.run ~scale:E.Common.Quick ~mix:"MMMM" () in
  Alcotest.(check int) "4 rows" 4 (List.length rows);
  let get name = List.find (fun (r : E.Speedup.row) -> r.scheme = name) rows in
  List.iter
    (fun (r : E.Speedup.row) ->
      Alcotest.(check bool) (r.scheme ^ " speedup positive") true
        (r.weighted_speedup > 0.0);
      Alcotest.(check bool) (r.scheme ^ " speedup bounded") true
        (r.weighted_speedup <= 4.5);
      Alcotest.(check bool) (r.scheme ^ " fairness in [0,1]") true
        (r.fairness >= 0.0 && r.fairness <= 1.0))
    rows;
  (* More merging means more total progress. *)
  Alcotest.(check bool) "SMT above CSMT" true
    ((get "3SSS").weighted_speedup > (get "3CCC").weighted_speedup);
  Alcotest.(check bool) "render" true
    (contains ~needle:"Weighted speedup" (E.Speedup.render "MMMM" rows))

(* --- routing-block area --- *)

let test_total_transistors () =
  let base name =
    Vliw_cost.Scheme_cost.transistors (Vliw_merge.Scheme_name.parse_exn name)
  in
  let total name =
    Vliw_cost.Scheme_cost.total_transistors (Vliw_merge.Scheme_name.parse_exn name)
  in
  (* The routing/mux overhead is identical for equal thread counts, so
     the scheme DIFFERENCE is preserved exactly... *)
  Alcotest.(check (float 1e-6)) "difference preserved"
    (base "3SSS" -. base "3CCC")
    (total "3SSS" -. total "3CCC");
  (* ...and the overhead itself grows with threads. *)
  Alcotest.(check bool) "overhead grows with threads" true
    (total "C8" -. base "C8" > total "C4" -. base "C4");
  Alcotest.(check bool) "total exceeds merge control" true
    (total "2SC3" > base "2SC3")

let final_tests =
  [
    Alcotest.test_case "weighted speedup" `Quick test_speedup_metrics;
    Alcotest.test_case "total transistors" `Quick test_total_transistors;
  ]

let suite = (fst suite, snd suite @ final_tests)

(* --- final property tests --- *)

let prop_asm_roundtrip =
  QCheck.Test.make ~name:"asm round-trip over random programs" ~count:25
    QCheck.(pair small_int (int_range 2 8))
    (fun (seed, blocks) ->
      let p = profile ~blocks () in
      let prog = C.Program.generate ~seed:(Int64.of_int seed) m p in
      match C.Asm.parse ~profile:p (C.Asm.to_string prog) with
      | Error _ -> false
      | Ok back -> C.Asm.roundtrip_equal prog back)

let prop_program_ipc_bounded =
  QCheck.Test.make ~name:"static IPC bounded by machine width" ~count:25
    QCheck.(pair small_int (float_range 1.0 16.0))
    (fun (seed, width) ->
      let p = profile ~width ~ops:40 () in
      let prog = C.Program.generate ~seed:(Int64.of_int seed) m p in
      let ipc = C.Program.static_ipc prog in
      ipc > 0.0 && ipc <= float_of_int (Isa.Machine.total_issue m))

let final_props =
  [ Tgen.to_alcotest prop_asm_roundtrip; Tgen.to_alcotest prop_program_ipc_bounded ]

let suite = (fst suite, snd suite @ final_props)
