(* The telemetry subsystem: counters, histograms, the event ring
   buffer, sinks, Chrome-trace export — and the two system-level
   guarantees: telemetry never changes simulation results, and the
   stall-attribution counters decompose wasted slots exactly. *)

module T = Vliw_telemetry
module E = Vliw_experiments

(* --- Counters -------------------------------------------------------- *)

let test_counters_basics () =
  let t = T.Counters.create () in
  let a = T.Counters.counter t "a" in
  let b = T.Counters.counter t "b" in
  T.Counters.add a 5;
  T.Counters.incr a;
  T.Counters.incr b;
  Alcotest.(check int) "a" 6 (T.Counters.value a);
  let a' = T.Counters.counter t "a" in
  T.Counters.incr a';
  Alcotest.(check int) "same name, same counter" 7 (T.Counters.value a);
  let s = T.Counters.snapshot t in
  Alcotest.(check (list (pair string int)))
    "snapshot name-sorted"
    [ ("a", 7); ("b", 1) ]
    s.counters;
  Alcotest.(check int) "count absent = 0" 0 (T.Counters.count s "zzz")

let test_counters_merge () =
  let mk pairs =
    let t = T.Counters.create () in
    List.iter (fun (n, v) -> T.Counters.add (T.Counters.counter t n) v) pairs;
    T.Counters.snapshot t
  in
  let m = T.Counters.merge (mk [ ("x", 1); ("y", 2) ]) (mk [ ("y", 40); ("z", 5) ]) in
  Alcotest.(check (list (pair string int)))
    "pointwise sum"
    [ ("x", 1); ("y", 42); ("z", 5) ]
    m.counters;
  Alcotest.(check (list (pair string int)))
    "empty is neutral" m.counters
    (T.Counters.merge T.Counters.empty m).counters

let test_histogram_quantiles () =
  let t = T.Counters.create () in
  let bounds = Array.init 100 (fun i -> float_of_int (i + 1)) in
  let h = T.Counters.histogram t "h" ~bounds in
  (* 1..100 once each: with unit-wide buckets the bucketed quantile
     must track Stats.percentile closely. *)
  let xs = Array.init 100 (fun i -> float_of_int (i + 1)) in
  Array.iter (T.Counters.observe h) xs;
  let s = T.Counters.snapshot t in
  let hs = List.assoc "h" s.histograms in
  Alcotest.(check int) "total" 100 hs.total;
  List.iter
    (fun p ->
      let expect = Vliw_util.Stats.percentile xs p in
      let got = T.Counters.quantile hs p in
      Alcotest.(check bool)
        (Printf.sprintf "p%.0f within a bucket of Stats.percentile" p)
        true
        (abs_float (got -. expect) <= 1.0))
    [ 50.0; 90.0; 95.0; 99.0 ];
  Alcotest.(check (float 1e-9)) "mean" 50.5 (T.Counters.hist_mean hs);
  Alcotest.(check bool) "flat exposes p50" true
    (List.mem_assoc "h.p50" (T.Counters.flat s))

(* --- Recorder and sinks ---------------------------------------------- *)

let issue ~threads ~ops =
  T.Event.Issue
    { threads; threads_merged = List.length threads; slots_filled = ops }

let test_recorder_wraps () =
  let r = T.Recorder.create ~capacity:4 () in
  for c = 0 to 9 do
    T.Recorder.record r ~cycle:c (issue ~threads:[ c ] ~ops:1)
  done;
  Alcotest.(check int) "length capped" 4 (T.Recorder.length r);
  Alcotest.(check int) "dropped" 6 (T.Recorder.dropped r);
  Alcotest.(check (list int))
    "keeps newest, oldest-first"
    [ 6; 7; 8; 9 ]
    (List.map (fun (e : T.Recorder.entry) -> e.cycle) (T.Recorder.to_list r))

let test_sinks () =
  Alcotest.(check bool) "null disabled" false (T.Sink.enabled T.Sink.null);
  let hits = ref 0 in
  let counting = T.Sink.fn (fun ~cycle:_ _ -> incr hits) in
  Alcotest.(check bool) "fn enabled" true (T.Sink.enabled counting);
  T.Sink.emit T.Sink.null ~cycle:0 (issue ~threads:[ 0 ] ~ops:1);
  T.Sink.emit counting ~cycle:0 (issue ~threads:[ 0 ] ~ops:1);
  Alcotest.(check int) "null swallows, fn counts" 1 !hits;
  let both = T.Sink.both counting (T.Sink.fn (fun ~cycle:_ _ -> incr hits)) in
  T.Sink.emit both ~cycle:1 (issue ~threads:[ 1 ] ~ops:2);
  Alcotest.(check int) "both fans out" 3 !hits;
  Alcotest.(check bool) "both with null collapses" true
    (T.Sink.both counting T.Sink.null == counting)

let test_event_keys () =
  let cases =
    [
      (T.Event.Fetch_stall { thread = 0; penalty = 20 }, "events.fetch_stall");
      ( T.Event.Merge_reject { thread = 1; reason = T.Event.Conflict },
        "events.merge_reject.conflict" );
      ( T.Event.Merge_reject { thread = 1; reason = T.Event.Capacity },
        "events.merge_reject.capacity" );
      ( T.Event.Merge_reject { thread = 1; reason = T.Event.Priority },
        "events.merge_reject.priority" );
      (issue ~threads:[ 0; 2 ] ~ops:5, "events.issue");
      ( T.Event.Cache_miss { thread = 3; level = T.Event.L1i },
        "events.cache_miss.l1i" );
      ( T.Event.Cache_miss { thread = 3; level = T.Event.L1d },
        "events.cache_miss.l1d" );
      ( T.Event.Bmt_switch { from_thread = 0; to_thread = 1 },
        "events.bmt_switch" );
    ]
  in
  List.iter
    (fun (ev, key) ->
      Alcotest.(check string) key key (T.Event.counter_key ev);
      Alcotest.(check bool)
        (key ^ " args render") true
        (List.for_all (fun (k, v) -> k <> "" && v <> "") (T.Event.args ev)))
    cases

(* --- Simulator integration ------------------------------------------- *)

let run_with_counters ?policy scheme_name =
  let scheme = (Vliw_merge.Catalog.find_exn scheme_name).scheme in
  let config = Vliw_sim.Config.make ?policy scheme in
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  let counters = T.Counters.create () in
  let metrics =
    Vliw_sim.Multitask.run config ~schedule:Vliw_sim.Multitask.quick_schedule
      ~counters mix.members
  in
  (metrics, T.Counters.snapshot counters)

let test_attribution_exact_sum () =
  List.iter
    (fun (scheme, policy) ->
      let metrics, snap = run_with_counters ?policy scheme in
      let label =
        scheme ^ match policy with None -> "" | Some _ -> "+policy"
      in
      Alcotest.(check int)
        (label ^ ": attributed waste = wasted slots")
        (T.Report.wasted snap) (T.Report.attributed snap);
      Alcotest.(check int)
        (label ^ ": cycles counter matches metrics")
        metrics.Vliw_sim.Metrics.cycles
        (T.Counters.count snap "core.cycles");
      Alcotest.(check int)
        (label ^ ": offered slots match metrics")
        metrics.Vliw_sim.Metrics.slots_offered
        (T.Counters.count snap "slots.offered");
      Alcotest.(check int)
        (label ^ ": filled slots = ops issued")
        metrics.Vliw_sim.Metrics.ops
        (T.Counters.count snap "slots.filled");
      Alcotest.(check bool)
        (label ^ ": render mentions the total") true
        (let r = T.Report.render snap in
         let needle = "total wasted" in
         let n = String.length r and m = String.length needle in
         let rec go i = i + m <= n && (String.sub r i m = needle || go (i + 1)) in
         go 0))
    [
      ("2SC3", None);
      ("3SSS", None);
      ("C4", None);
      ("1S", None);
      ("2SC3", Some Vliw_sim.Policy.Imt);
      ("2SC3", Some (Vliw_sim.Policy.Bmt { switch_penalty = 4 }));
    ]

let test_events_match_metrics () =
  let scheme = (Vliw_merge.Catalog.find_exn "2SC3").scheme in
  let config = Vliw_sim.Config.make scheme in
  let mix = Vliw_workloads.Mixes.find_exn "MMHH" in
  let ops = ref 0 and issues = ref 0 in
  let sink =
    T.Sink.fn (fun ~cycle:_ ev ->
        match ev with
        | T.Event.Issue { slots_filled; _ } ->
          incr issues;
          ops := !ops + slots_filled
        | _ -> ())
  in
  let metrics =
    Vliw_sim.Multitask.run config ~schedule:Vliw_sim.Multitask.quick_schedule
      ~telemetry:sink mix.members
  in
  Alcotest.(check int) "sum of Issue slots = ops" metrics.Vliw_sim.Metrics.ops !ops;
  Alcotest.(check bool) "issue events occurred" true (!issues > 0)

(* The acceptance property: telemetry is observation-only. The (mix x
   scheme) IPC grid must be bit-identical with per-cell counters
   attached vs without, at jobs=1 and jobs=4. *)
let grid_equal a b =
  a.E.Common.scheme_names = b.E.Common.scheme_names
  && a.E.Common.mix_names = b.E.Common.mix_names
  && a.E.Common.ipc = b.E.Common.ipc

let scheme_subsets = [| [ "1S"; "3CCC" ]; [ "2SC3" ]; [ "3SSS"; "2SC3" ] |]

let mix_subsets = [| [ "LLHH" ]; [ "LLLL"; "HHHH" ]; [ "MMMM" ] |]

let test_telemetry_observation_only =
  QCheck.Test.make ~count:3
    ~name:"sweep: telemetry on/off bit-identical at jobs=1 and jobs=4"
    QCheck.(triple (int_bound 1000) (int_bound 2) (int_bound 2))
    (fun (seed, si, mi) ->
      let run ~jobs ~telemetry =
        let scheme_names, mix_names, cells =
          E.Sweep.run_cells ~scale:E.Common.Quick ~seed:(Int64.of_int seed)
            ~scheme_names:scheme_subsets.(si) ~mix_names:mix_subsets.(mi) ~jobs
            ~telemetry ()
        in
        E.Sweep.grid_of_cells ~scheme_names ~mix_names cells
      in
      let reference = run ~jobs:1 ~telemetry:false in
      grid_equal reference (run ~jobs:1 ~telemetry:true)
      && grid_equal reference (run ~jobs:4 ~telemetry:true)
      && grid_equal reference (run ~jobs:4 ~telemetry:false))

(* --- Chrome trace export --------------------------------------------- *)

(* Minimal structural JSON check: braces/brackets balance outside
   strings, and the document is a single object. Not a full parser, but
   catches unterminated strings, trailing commas in our writer, and
   unbalanced nesting; the CI smoke job runs a real parser on top. *)
let json_balanced s =
  let depth = ref 0 and in_str = ref false and esc = ref false and ok = ref true in
  String.iter
    (fun c ->
      if !in_str then
        if !esc then esc := false
        else if c = '\\' then esc := true
        else if c = '"' then in_str := false
        else ()
      else
        match c with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
          decr depth;
          if !depth < 0 then ok := false
        | _ -> ())
    s;
  !ok && !depth = 0 && not !in_str

let contains ~needle haystack =
  let n = String.length haystack and m = String.length needle in
  let rec go i = i + m <= n && (String.sub haystack i m = needle || go (i + 1)) in
  go 0

let test_chrome_trace_of_recorder () =
  let machine = Vliw_isa.Machine.make ~clusters:2 () in
  let scheme = (Vliw_merge.Catalog.find_exn "1S").scheme in
  let config = Vliw_sim.Config.make ~machine scheme in
  let profiles =
    [
      Vliw_workloads.Benchmarks.find_exn "mcf";
      Vliw_workloads.Benchmarks.find_exn "g721encode";
    ]
  in
  let options =
    { Vliw_sim.Trace.cycles = 200; warmup = 50; perfect_mem = false; seed = 0x7ACEL }
  in
  let lanes, recorder = Vliw_sim.Trace.record config ~options profiles in
  Alcotest.(check (list string)) "lane names" [ "T0:mcf"; "T1:g721encode" ] lanes;
  Alcotest.(check bool) "events recorded" true (T.Recorder.length recorder > 0);
  let json = T.Chrome_trace.of_recorder ~lanes recorder in
  Alcotest.(check bool) "balanced JSON" true (json_balanced json);
  List.iter
    (fun needle ->
      Alcotest.(check bool) (needle ^ " present") true (contains ~needle json))
    [ "traceEvents"; "thread_name"; "T0:mcf"; "T1:g721encode"; "issue" ]

let test_sweep_telemetry_exports () =
  let _, _, cells =
    E.Sweep.run_cells ~scale:E.Common.Quick ~scheme_names:[ "1S"; "2SC3" ]
      ~mix_names:[ "LLHH" ] ~jobs:2 ~telemetry:true ()
  in
  Alcotest.(check int) "two cells" 2 (Array.length cells);
  Array.iter
    (fun (c : E.Sweep.cell) ->
      Alcotest.(check bool) "cell has telemetry" true (c.telemetry <> None);
      Alcotest.(check bool) "worker id in range" true
        (c.worker >= 0 && c.worker < 2);
      Alcotest.(check bool) "start offset sane" true (c.started_s >= 0.0))
    cells;
  let snap = E.Sweep.merged_telemetry cells in
  Alcotest.(check bool) "merged cycles > 0" true
    (T.Counters.count snap "core.cycles" > 0);
  Alcotest.(check int) "merged attribution still exact"
    (T.Report.wasted snap) (T.Report.attributed snap);
  let json = E.Sweep.chrome_trace cells in
  Alcotest.(check bool) "sweep trace balanced" true (json_balanced json);
  Alcotest.(check bool) "worker lane named" true
    (contains ~needle:"worker 0" json);
  Alcotest.(check bool) "cell slice named" true
    (contains ~needle:"LLHH/2SC3" json);
  let header, rows = E.Sweep.telemetry_csv cells in
  Alcotest.(check (list string))
    "csv header" [ "mix"; "scheme"; "counter"; "value" ] header;
  Alcotest.(check bool) "csv rows present" true (List.length rows > 0);
  List.iter
    (fun row -> Alcotest.(check int) "csv row width" 4 (List.length row))
    rows;
  (* Counters.to_csv on the merged snapshot feeds Vliw_util.Csv too. *)
  let h2, r2 = T.Counters.to_csv snap in
  Alcotest.(check (list string)) "counter csv header" [ "counter"; "value" ] h2;
  Alcotest.(check bool) "counter csv writes" true
    (String.length (Vliw_util.Csv.to_string ~header:h2 r2) > 0)

(* --- Spans ----------------------------------------------------------- *)

module Span = T.Span
module J = Vliw_util.Json

(* Ids come from the collector's SplitMix64 stream, timestamps from its
   injectable clock — same seed and clock, same span tree, no [Random]
   or wall-clock dependence. *)
let test_span_deterministic () =
  let mk () =
    let t = ref 0.0 in
    let clock () =
      t := !t +. 0.25;
      !t
    in
    Span.collector ~clock ~seed:42L ()
  in
  let c1 = mk () and c2 = mk () in
  let ids c = List.init 5 (fun _ -> Span.fresh_id c) in
  Alcotest.(check (list int64)) "same seed, same id stream" (ids c1) (ids c2);
  Alcotest.(check bool) "injected clock ticks" true
    (Span.now c1 = 0.25 && Span.now c1 = 0.5)

let test_span_codec () =
  let c = Span.collector ~clock:(fun () -> 0.0) ~seed:7L () in
  let trace = Span.fresh_id c in
  let root =
    Span.record c ~trace ~kind:Span.Submit ~name:"job" ~lane:"server"
      ~start_s:1.0 ~dur_s:0x1.fffp-3 ()
  in
  let child =
    Span.record c ~trace ~parent:root.Span.id ~kind:Span.Simulate_cell
      ~name:"LLHH/C4" ~lane:"pool 0" ~start_s:1.1 ~dur_s:0.05 ()
  in
  List.iter
    (fun s ->
      match Span.of_json (Span.to_json s) with
      | Ok s' -> Alcotest.(check bool) "bit-exact round trip" true (s = s')
      | Error e -> Alcotest.fail ("round trip failed: " ^ e))
    [ root; child ];
  (match Span.list_of_json (Span.list_to_json (Span.spans c)) with
  | Ok ss ->
    Alcotest.(check bool) "list round trip" true (ss = Span.spans c)
  | Error e -> Alcotest.fail ("list round trip failed: " ^ e));
  (* hex ids survive, including the sign bit *)
  (match Span.id_of_hex (Span.id_to_hex (-1L)) with
  | Ok v -> Alcotest.(check int64) "hex id round trip" (-1L) v
  | Error e -> Alcotest.fail e);
  (* strict about field types: a numeric name is rejected, and absent
     [parent] means a root span (old peers stay parseable) *)
  (match Span.of_json (J.Obj [ ("name", J.Num 3.0) ]) with
  | Ok _ -> Alcotest.fail "typed-field violation accepted"
  | Error _ -> ());
  Alcotest.(check bool) "absent parent = root" true (root.Span.parent = None)

let test_span_validate () =
  let mk ?parent ~id ~start_s ~dur_s () =
    {
      Span.trace = 1L;
      id;
      parent;
      kind = Span.Shard;
      name = "s";
      lane = "w";
      start_s;
      dur_s;
    }
  in
  let root = mk ~id:10L ~start_s:0.0 ~dur_s:1.0 () in
  let child = mk ~parent:10L ~id:11L ~start_s:0.2 ~dur_s:0.5 () in
  Alcotest.(check (list string))
    "well-nested forest is clean" []
    (Span.validate [ root; child ]);
  Alcotest.(check bool) "orphan parent flagged" true
    (Span.validate [ mk ~parent:99L ~id:12L ~start_s:0.0 ~dur_s:0.1 () ] <> []);
  Alcotest.(check bool) "escaping child flagged" true
    (Span.validate [ root; mk ~parent:10L ~id:13L ~start_s:0.9 ~dur_s:5.0 () ]
    <> []);
  Alcotest.(check bool) "slack forgives clock skew" true
    (Span.validate ~slack_s:10.0
       [ root; mk ~parent:10L ~id:13L ~start_s:0.9 ~dur_s:5.0 () ]
    = []);
  Alcotest.(check bool) "negative duration flagged" true
    (Span.validate [ mk ~id:14L ~start_s:0.0 ~dur_s:(-1.0) () ] <> [])

let test_span_gauges_and_chrome () =
  let c = Span.collector ~clock:(fun () -> 0.0) ~seed:3L () in
  let trace = Span.fresh_id c in
  let root =
    Span.record c ~trace ~kind:Span.Submit ~name:"job-1" ~lane:"server"
      ~start_s:0.0 ~dur_s:1.0 ()
  in
  for i = 0 to 3 do
    ignore
      (Span.record c ~trace ~parent:root.Span.id ~kind:Span.Simulate_cell
         ~name:(Printf.sprintf "cell-%d" i) ~lane:"pool 0"
         ~start_s:(0.1 *. float_of_int i)
         ~dur_s:(0.01 *. float_of_int (i + 1))
         ())
  done;
  let spans = Span.spans c in
  let g = Span.latency_gauges spans in
  let get k = List.assoc k g in
  Alcotest.(check (float 0.0)) "submit count" 1.0 (get "span.submit.count");
  Alcotest.(check (float 0.0))
    "simulate count" 4.0
    (get "span.simulate_cell.count");
  Alcotest.(check (float 1e-12))
    "p50 is an observed duration" 0.02
    (get "span.simulate_cell.p50");
  Alcotest.(check (float 1e-12))
    "p99 is the max sample" 0.04
    (get "span.simulate_cell.p99");
  (* histograms feed a lint-clean exposition *)
  let reg = T.Counters.create () in
  Span.observe_histograms reg spans;
  let snap = T.Counters.snapshot reg in
  Alcotest.(check bool) "histogram series present" true
    (List.mem_assoc "span.submit.seconds" snap.T.Counters.histograms);
  let text = T.Openmetrics.render ~snapshot:snap ~gauges:g () in
  Alcotest.(check (list string)) "span exposition lints clean" []
    (T.Openmetrics.lint text);
  (* Chrome export: valid JSON, ids in args so the tree is rebuildable *)
  let chrome = Span.to_chrome ~process_name:"test" spans in
  (match J.parse chrome with
  | Error e -> Alcotest.fail ("chrome trace not JSON: " ^ e)
  | Ok doc -> (
    match J.member "traceEvents" doc with
    | Some (J.List evs) ->
      let xs =
        List.filter
          (fun e -> J.member "ph" e = Some (J.Str "X"))
          evs
      in
      Alcotest.(check int) "one slice per span" (List.length spans)
        (List.length xs);
      List.iter
        (fun e ->
          match J.member "args" e with
          | Some (J.Obj args) ->
            Alcotest.(check bool) "span id in args" true
              (List.mem_assoc "span" args)
          | _ -> Alcotest.fail "slice without args")
        xs
    | _ -> Alcotest.fail "no traceEvents list"));
  Alcotest.(check bool) "server lane present" true
    (contains ~needle:"server" chrome)

let suite =
  ( "telemetry",
    [
      Alcotest.test_case "counters basics" `Quick test_counters_basics;
      Alcotest.test_case "counters merge" `Quick test_counters_merge;
      Alcotest.test_case "histogram quantiles" `Quick test_histogram_quantiles;
      Alcotest.test_case "recorder ring buffer" `Quick test_recorder_wraps;
      Alcotest.test_case "sinks" `Quick test_sinks;
      Alcotest.test_case "event keys and args" `Quick test_event_keys;
      Alcotest.test_case "stall attribution sums exactly" `Quick
        test_attribution_exact_sum;
      Alcotest.test_case "issue events match metrics" `Quick
        test_events_match_metrics;
      QCheck_alcotest.to_alcotest test_telemetry_observation_only;
      Alcotest.test_case "chrome trace of a recorder" `Quick
        test_chrome_trace_of_recorder;
      Alcotest.test_case "sweep telemetry exports" `Quick
        test_sweep_telemetry_exports;
      Alcotest.test_case "span collector deterministic" `Quick
        test_span_deterministic;
      Alcotest.test_case "span wire codec" `Quick test_span_codec;
      Alcotest.test_case "span validate" `Quick test_span_validate;
      Alcotest.test_case "span gauges, histograms, chrome" `Quick
        test_span_gauges_and_chrome;
    ] )
