(* Reproduction-shape tests: the paper's quantitative claims at Default
   scale. These are the slowest tests in the suite; they assert the
   *shape* (who wins, roughly by how much), with generous tolerances
   because our substrate is synthetic. *)
module E = Vliw_experiments

let test_table1_calibration () =
  let rows = E.Table1.run ~scale:E.Common.Default () in
  let err = E.Table1.max_rel_error rows in
  Alcotest.(check bool)
    (Printf.sprintf "worst Table 1 error %.1f%% within 15%%" (100.0 *. err))
    true (err < 0.15)

let grid =
  lazy
    (E.Sweep.run ~scale:E.Common.Default
       ~scheme_names:[ "ST"; "1S"; "2CC"; "3CCC"; "2SC3"; "3SSC"; "3SSS" ]
       ())

let avg name = E.Common.grid_average (Lazy.force grid) name

let between what lo hi v =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.1f in [%.0f, %.0f]" what v lo hi)
    true
    (v >= lo && v <= hi)

let test_fig4_shape () =
  (* Paper: 4T SMT +61% over 2T SMT. Accept a broad band. *)
  let gain = Vliw_util.Stats.pct_diff (avg "3SSS") (avg "1S") in
  between "4T over 2T SMT (paper +61%)" 30.0 90.0 gain

let test_fig6_shape () =
  (* Paper: SMT +27% over CSMT on average. *)
  let gain = Vliw_util.Stats.pct_diff (avg "3SSS") (avg "3CCC") in
  between "SMT over CSMT (paper +27%)" 12.0 45.0 gain

let test_2sc3_claims () =
  let sc3 = avg "2SC3" in
  between "2SC3 over 4T CSMT (paper +14%)" 3.0 30.0
    (Vliw_util.Stats.pct_diff sc3 (avg "3CCC"));
  between "2SC3 over 2T SMT (paper +45%)" 15.0 70.0
    (Vliw_util.Stats.pct_diff sc3 (avg "1S"));
  between "2SC3 below 4T SMT (paper -11%)" (-25.0) (-3.0)
    (Vliw_util.Stats.pct_diff sc3 (avg "3SSS"))

let test_scheme_ordering () =
  (* The coarse ladder of Figure 10. *)
  let st = avg "ST" and s1 = avg "1S" in
  let cc2 = avg "2CC" and ccc = avg "3CCC" in
  let sc3 = avg "2SC3" and ssc = avg "3SSC" and sss = avg "3SSS" in
  let check_lt what a b =
    Alcotest.(check bool) (Printf.sprintf "%s (%.2f < %.2f)" what a b) true (a < b)
  in
  check_lt "ST < 1S" st s1;
  check_lt "1S < 3CCC" s1 ccc;
  check_lt "2CC < 3CCC (tree indivisibility)" cc2 ccc;
  check_lt "3CCC < 2SC3" ccc sc3;
  check_lt "2SC3 < 3SSC" sc3 ssc;
  check_lt "3SSC < 3SSS" ssc sss

let test_llhh_largest_gap () =
  (* The SMT-vs-CSMT gap peaks for mixed low/high workloads (paper:
     LLHH at 58%); at minimum it must exceed the HHHH and MMMM gaps. *)
  let g = Lazy.force grid in
  let smt = E.Common.grid_column g "3SSS" in
  let csmt = E.Common.grid_column g "3CCC" in
  let gap name =
    let rec idx i = function
      | [] -> invalid_arg name
      | x :: rest -> if x = name then i else idx (i + 1) rest
    in
    let i = idx 0 g.mix_names in
    Vliw_util.Stats.pct_diff smt.(i) csmt.(i)
  in
  Alcotest.(check bool)
    (Printf.sprintf "LLHH %.0f%% > HHHH %.0f%%" (gap "LLHH") (gap "HHHH"))
    true
    (gap "LLHH" > gap "HHHH");
  Alcotest.(check bool)
    (Printf.sprintf "LLHH %.0f%% > MMMM %.0f%%" (gap "LLHH") (gap "MMMM"))
    true
    (gap "LLHH" > gap "MMMM")

let test_csmt_equivalences_hold_in_sim () =
  (* 3CCC and C4 must produce identical IPC (same selections, same
     programs, same seeds). *)
  let g =
    E.Sweep.run ~scale:E.Common.Quick ~scheme_names:[ "3CCC"; "C4" ]
      ~mix_names:[ "LLLL"; "LLHH"; "HHHH" ] ()
  in
  Array.iter
    (fun row -> Alcotest.(check (float 1e-9)) "identical IPC" row.(0) row.(1))
    g.ipc;
  let g2 =
    E.Sweep.run ~scale:E.Common.Quick ~scheme_names:[ "2SC3"; "3SCC" ]
      ~mix_names:[ "LLHH" ] ()
  in
  Alcotest.(check (float 1e-9)) "2SC3 = 3SCC" g2.ipc.(0).(0) g2.ipc.(0).(1)

let suite =
  ( "reproduction",
    [
      Alcotest.test_case "Table 1 calibration within 15%" `Slow
        test_table1_calibration;
      Alcotest.test_case "Fig 4 shape" `Slow test_fig4_shape;
      Alcotest.test_case "Fig 6 shape" `Slow test_fig6_shape;
      Alcotest.test_case "2SC3 headline claims" `Slow test_2sc3_claims;
      Alcotest.test_case "scheme ordering ladder" `Slow test_scheme_ordering;
      Alcotest.test_case "LLHH gap dominates" `Slow test_llhh_largest_gap;
      Alcotest.test_case "CSMT equivalences in simulation" `Quick
        test_csmt_equivalences_hold_in_sim;
    ] )
