(* The parallel experiment stack: Vliw_util.Pool, the Sweep engine's
   jobs-count determinism (normative: jobs must never change results),
   and the experiment Registry. *)

module E = Vliw_experiments
module Pool = Vliw_util.Pool

(* --- Pool ----------------------------------------------------------- *)

let test_pool_ordering () =
  let tasks = Array.init 37 (fun i () -> i * i) in
  List.iter
    (fun jobs ->
      let out = Pool.run ~jobs tasks in
      Alcotest.(check (array int))
        (Printf.sprintf "jobs=%d preserves order" jobs)
        (Array.init 37 (fun i -> i * i))
        out)
    [ 1; 2; 4; 0 ]

let test_pool_empty_and_single () =
  Alcotest.(check (array int)) "empty" [||] (Pool.run ~jobs:4 [||]);
  Alcotest.(check (array string))
    "single task" [| "x" |]
    (Pool.run ~jobs:8 [| (fun () -> "x") |])

let test_pool_exception () =
  let tasks =
    Array.init 8 (fun i () -> if i = 5 then failwith "task 5 boom" else i)
  in
  List.iter
    (fun jobs ->
      Alcotest.check_raises
        (Printf.sprintf "jobs=%d re-raises" jobs)
        (Failure "task 5 boom")
        (fun () -> ignore (Pool.run ~jobs tasks)))
    [ 1; 3 ]

let test_pool_on_result_serialized () =
  let seen = ref [] in
  let out =
    Pool.run ~jobs:4
      ~on_result:(fun i v -> seen := (i, v) :: !seen)
      (Array.init 20 (fun i () -> i + 100))
  in
  Alcotest.(check int) "all results" 20 (Array.length out);
  let sorted = List.sort compare !seen in
  Alcotest.(check (list (pair int int)))
    "every task reported exactly once"
    (List.init 20 (fun i -> (i, i + 100)))
    sorted

(* --- Sweep determinism ---------------------------------------------- *)

let grid_equal a b =
  a.E.Common.scheme_names = b.E.Common.scheme_names
  && a.E.Common.mix_names = b.E.Common.mix_names
  && a.E.Common.ipc = b.E.Common.ipc (* bit-equality of every float *)

let scheme_subsets =
  [| [ "1S"; "3CCC" ]; [ "2SC3" ]; [ "3SSS"; "2SC3" ]; [ "1S"; "3SSS" ] |]

let mix_subsets =
  [| [ "LLHH" ]; [ "LLLL"; "HHHH" ]; [ "MMMM" ]; [ "LLHH"; "MMMM" ] |]

let test_sweep_jobs_deterministic =
  QCheck.Test.make ~count:4 ~name:"sweep: jobs=1 equals jobs=4 bit-for-bit"
    QCheck.(triple (int_bound 1000) (int_bound 3) (int_bound 3))
    (fun (seed, si, mi) ->
      let run jobs =
        E.Sweep.run ~scale:E.Common.Quick ~seed:(Int64.of_int seed)
          ~scheme_names:scheme_subsets.(si) ~mix_names:mix_subsets.(mi) ~jobs ()
      in
      grid_equal (run 1) (run 4))

(* Lockstep mode (scheme columns of a row sharing one draw-tape set)
   is an execution strategy, not a model change: it must reproduce the
   independent-mode grid bit-for-bit at any jobs count. *)
let test_sweep_lockstep_deterministic =
  QCheck.Test.make ~count:4
    ~name:"sweep: lockstep equals independent at jobs 1 and 4"
    QCheck.(triple (int_bound 1000) (int_bound 3) (int_bound 3))
    (fun (seed, si, mi) ->
      let run ~jobs ~lockstep =
        E.Sweep.run ~scale:E.Common.Quick ~seed:(Int64.of_int seed)
          ~scheme_names:scheme_subsets.(si) ~mix_names:mix_subsets.(mi) ~jobs
          ~lockstep ()
      in
      let independent = run ~jobs:1 ~lockstep:false in
      grid_equal independent (run ~jobs:1 ~lockstep:true)
      && grid_equal independent (run ~jobs:4 ~lockstep:true))

let test_prepared_columns_lockstep () =
  let pr = E.Sweep.prepare_row ~scale:E.Common.Quick ~seed:99L "LLHH" in
  let columns =
    List.map
      (fun name -> E.Sweep.static_column (Vliw_merge.Catalog.find_exn name))
      [ "1S"; "3CCC"; "3SSS"; "2SC3" ]
  in
  let independent = List.map (E.Sweep.simulate_prepared pr) columns in
  let lockstep = E.Sweep.simulate_prepared_columns pr columns in
  List.iter2
    (fun a b ->
      Alcotest.(check bool)
        (Printf.sprintf "bit-identical ipc (%h vs %h)" a b)
        true (Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)))
    independent lockstep

let test_sweep_progress_and_timing () =
  let events = ref [] in
  let grid =
    E.Sweep.run ~scale:E.Common.Quick ~jobs:2
      ~scheme_names:[ "1S"; "3SSS" ] ~mix_names:[ "LLHH" ]
      ~progress:(fun p -> events := p :: !events)
      ()
  in
  Alcotest.(check int) "one row" 1 (Array.length grid.E.Common.ipc);
  Alcotest.(check int) "one progress event per cell" 2 (List.length !events);
  List.iter
    (fun (p : E.Sweep.progress) ->
      Alcotest.(check int) "total is cell count" 2 p.total;
      Alcotest.(check bool) "completed within range" true
        (p.completed >= 1 && p.completed <= 2);
      Alcotest.(check bool) "wall-clock non-negative" true
        (p.last.elapsed_s >= 0.0))
    !events

let test_sweep_row_seed_stable () =
  (* Row seeds depend only on (master seed, mix name). *)
  Alcotest.(check int64)
    "same inputs, same seed"
    (E.Sweep.row_seed ~seed:42L "LLHH")
    (E.Sweep.row_seed ~seed:42L "LLHH");
  Alcotest.(check bool)
    "different mixes, different seeds" true
    (E.Sweep.row_seed ~seed:42L "LLHH" <> E.Sweep.row_seed ~seed:42L "HHHH");
  Alcotest.(check bool)
    "different master seeds differ" true
    (E.Sweep.row_seed ~seed:1L "LLHH" <> E.Sweep.row_seed ~seed:2L "LLHH")

let test_grid_scheme_index () =
  let grid =
    E.Common.make_grid ~scheme_names:[ "1S"; "2SC3"; "3SSS" ]
      ~mix_names:[ "LLHH" ]
      ~ipc:[| [| 1.0; 2.0; 3.0 |] |]
  in
  Alcotest.(check int) "first" 0 (E.Common.scheme_index grid "1S");
  Alcotest.(check int) "last" 2 (E.Common.scheme_index grid "3SSS");
  Alcotest.(check (float 0.0)) "column via index" 2.0
    (E.Common.grid_column grid "2SC3").(0);
  Alcotest.check_raises "unknown scheme"
    (Invalid_argument "grid: unknown scheme ZZ") (fun () ->
      ignore (E.Common.scheme_index grid "ZZ"))

(* --- Registry -------------------------------------------------------- *)

let test_registry_shape () =
  Alcotest.(check int) "19 experiments" 19 (List.length E.Registry.all);
  let ids = E.Registry.ids in
  Alcotest.(check int) "ids unique" (List.length ids)
    (List.length (List.sort_uniq compare ids));
  List.iter
    (fun must ->
      Alcotest.(check bool) (must ^ " registered") true (List.mem must ids))
    [ "table1"; "fig10"; "claims"; "replicates"; "speedup" ];
  Alcotest.(check bool) "replicates excluded from standard" true
    (not
       (List.exists
          (fun e -> E.Registry.id e = "replicates")
          E.Registry.standard));
  Alcotest.(check bool) "find works" true
    (match E.Registry.find "fig10" with Some _ -> true | None -> false);
  Alcotest.(check bool) "find rejects junk" true
    (E.Registry.find "nonesuch" = None)

(* Minimal CSV parser (quoted fields included) used to round-trip every
   exporter's output through Vliw_util.Csv. *)
let parse_csv text =
  let lines = String.split_on_char '\n' text in
  let lines = List.filter (fun l -> l <> "") lines in
  let parse_line line =
    let fields = ref [] and buf = Buffer.create 16 in
    let n = String.length line in
    let rec go i quoted =
      if i >= n then Buffer.contents buf :: !fields
      else
        let c = line.[i] in
        if quoted then
          if c = '"' then
            if i + 1 < n && line.[i + 1] = '"' then begin
              Buffer.add_char buf '"';
              go (i + 2) true
            end
            else go (i + 1) false
          else begin
            Buffer.add_char buf c;
            go (i + 1) true
          end
        else if c = '"' then go (i + 1) true
        else if c = ',' then begin
          fields := Buffer.contents buf :: !fields;
          Buffer.clear buf;
          go (i + 1) false
        end
        else begin
          Buffer.add_char buf c;
          go (i + 1) false
        end
    in
    List.rev (go 0 false)
  in
  List.map parse_line lines

let test_registry_runs_and_csv_roundtrip () =
  (* Every registered experiment renders non-empty output at Quick
     scale, and when it exports CSV the data survives a render/parse
     round-trip. The ctx is shared so the fig10 grid runs once. *)
  let ctx = E.Registry.make_ctx ~scale:E.Common.Quick ~jobs:2 () in
  List.iter
    (fun entry ->
      let id = E.Registry.id entry in
      let text, csv = E.Registry.run_entry ctx entry in
      Alcotest.(check bool) (id ^ " renders non-empty") true
        (String.length (String.trim text) > 0);
      match csv with
      | None -> ()
      | Some (header, rows) ->
        Alcotest.(check bool) (id ^ " csv header non-empty") true (header <> []);
        Alcotest.(check bool) (id ^ " csv has rows") true (rows <> []);
        List.iter
          (fun row ->
            Alcotest.(check int)
              (id ^ " csv row width")
              (List.length header) (List.length row))
          rows;
        let parsed = parse_csv (Vliw_util.Csv.to_string ~header rows) in
        Alcotest.(check bool)
          (id ^ " csv round-trips")
          true
          (parsed = header :: rows))
    E.Registry.all

let test_registry_fig10_shared () =
  (* fig6/fig11/fig12/claims must all reuse the ctx's lazy fig10 grid:
     forcing it once and running the dependents must not re-run it. We
     detect sharing via progress events, which only sweeps emit. *)
  let events = ref 0 in
  let ctx =
    E.Registry.make_ctx ~scale:E.Common.Quick ~jobs:1
      ~progress:(fun _ -> incr events)
      ()
  in
  let _ = E.Registry.run_entry ctx (E.Registry.find_exn "fig10") in
  let after_fig10 = !events in
  Alcotest.(check bool) "fig10 sweep emitted progress" true (after_fig10 > 0);
  let _ = E.Registry.run_entry ctx (E.Registry.find_exn "fig6") in
  let _ = E.Registry.run_entry ctx (E.Registry.find_exn "fig11") in
  let _ = E.Registry.run_entry ctx (E.Registry.find_exn "claims") in
  Alcotest.(check int) "no re-sweep for dependents" after_fig10 !events

let suite =
  ( "parallel-stack",
    [
      Alcotest.test_case "pool preserves ordering" `Quick test_pool_ordering;
      Alcotest.test_case "pool edge cases" `Quick test_pool_empty_and_single;
      Alcotest.test_case "pool propagates exceptions" `Quick test_pool_exception;
      Alcotest.test_case "pool on_result" `Quick test_pool_on_result_serialized;
      QCheck_alcotest.to_alcotest test_sweep_jobs_deterministic;
      QCheck_alcotest.to_alcotest test_sweep_lockstep_deterministic;
      Alcotest.test_case "prepared columns lockstep" `Quick
        test_prepared_columns_lockstep;
      Alcotest.test_case "sweep progress + timing" `Quick
        test_sweep_progress_and_timing;
      Alcotest.test_case "sweep row seeds" `Quick test_sweep_row_seed_stable;
      Alcotest.test_case "grid scheme index" `Quick test_grid_scheme_index;
      Alcotest.test_case "registry shape" `Quick test_registry_shape;
      Alcotest.test_case "registry runs + csv round-trip" `Slow
        test_registry_runs_and_csv_roundtrip;
      Alcotest.test_case "registry shares fig10 grid" `Quick
        test_registry_fig10_shared;
    ] )
