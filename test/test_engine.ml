(* The merge engine: selection semantics, equivalences, and the paper's
   Figure 1 merging example. *)
module Isa = Vliw_isa
module M = Vliw_merge
module Q = QCheck

let m = Isa.Machine.default

let ops klasses = List.mapi (fun i k -> Isa.Op.make k i) klasses

let instr_of klass_lists =
  Isa.Instr.of_cluster_ops ~addr:0 (Array.of_list (List.map ops klass_lists))

let avail_of instrs = Array.of_list (List.map Option.some instrs)

let scheme name = (M.Catalog.find_exn name).scheme

let issued scheme_ ?(rotation = 0) avail =
  (M.Engine.select m scheme_ ~rotation avail).issued

let select_instrs name instrs =
  M.Engine.select_instrs m (scheme name) (avail_of instrs)

(* --- basic semantics --- *)

let test_all_stalled () =
  let sel = M.Engine.select m (scheme "3SSS") (Array.make 4 None) in
  Alcotest.(check (list int)) "nothing issues" [] sel.issued;
  Alcotest.(check bool) "no packet" true (sel.packet = None)

let test_single_available () =
  let i = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let avail = [| None; Some (M.Packet.of_instr m ~thread:1 i); None; None |] in
  Alcotest.(check (list int)) "only thread 1" [ 1 ]
    (issued (scheme "3CCC") avail)

let test_cascade_skip () =
  (* T0 and T1 collide on cluster 0 at cluster level; T2 is disjoint:
     the CSMT cascade skips T1 and still merges T2. *)
  let t0 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let t1 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let t2 = instr_of [ []; [ Isa.Op.Alu ]; []; [] ] in
  let t3 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let sel = select_instrs "3CCC" [ t0; t1; t2; t3 ] in
  Alcotest.(check (list int)) "skip conflicting, keep later" [ 0; 2 ] sel.issued

let test_smt_merges_what_csmt_cannot () =
  (* Two single-ALU instructions on the same cluster: the 2-thread CSMT
     merge fails, the 2-thread SMT merge (1S) packs both. *)
  let t0 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let t1 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let csmt2 = M.Scheme.csmt (M.Scheme.thread 0) (M.Scheme.thread 1) in
  let sel_csmt = M.Engine.select_instrs m csmt2 (avail_of [ t0; t1 ]) in
  Alcotest.(check (list int)) "csmt: one" [ 0 ] sel_csmt.issued;
  let sel_smt = select_instrs "1S" [ t0; t1 ] in
  Alcotest.(check (list int)) "smt: both" [ 0; 1 ] sel_smt.issued

let test_empty_instr_merges_freely () =
  let nop = Isa.Instr.make ~clusters:4 ~addr:0 in
  let busy = instr_of [ [ Isa.Op.Alu; Isa.Op.Alu; Isa.Op.Alu; Isa.Op.Alu ]; []; []; [] ] in
  let sel = select_instrs "3CCC" [ busy; nop; busy; nop ] in
  (* NOP instructions conflict with nothing; the second busy thread
     collides with the first. *)
  Alcotest.(check (list int)) "nops merge" [ 0; 1; 3 ] sel.issued

let test_rotation_remaps_priority () =
  (* Two threads that conflict: with rotation 0, hardware thread 0 wins;
     with rotation 1, hardware thread 1 is wired to the priority port. *)
  let i = instr_of [ [ Isa.Op.Load ]; []; []; [] ] in
  let avail =
    [| Some (M.Packet.of_instr m ~thread:0 i); Some (M.Packet.of_instr m ~thread:1 i) |]
  in
  Alcotest.(check (list int)) "rot 0" [ 0 ] (issued (scheme "1S") ~rotation:0 avail);
  Alcotest.(check (list int)) "rot 1" [ 1 ] (issued (scheme "1S") ~rotation:1 avail)

let test_tree_indivisibility () =
  (* Pair (T2,T3) merges into a two-cluster packet that conflicts with
     (T0,T1)'s packet; a cascade would have squeezed T2 alone in. *)
  let t0 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let t1 = instr_of [ []; [ Isa.Op.Alu ]; []; [] ] in
  let t2 = instr_of [ []; []; [ Isa.Op.Alu ]; [] ] in
  let t3 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  (* 2CC: C(C(T0,T1), C(T2,T3)). C(T2,T3) = {T2,T3} using clusters 2 and
     0; the top merge fails against {T0,T1} on clusters 0,1. *)
  let tree = select_instrs "2CC" [ t0; t1; t2; t3 ] in
  Alcotest.(check (list int)) "tree drops both" [ 0; 1 ] tree.issued;
  (* The cascade 3CCC issues T2 as well. *)
  let cascade = select_instrs "3CCC" [ t0; t1; t2; t3 ] in
  Alcotest.(check (list int)) "cascade keeps T2" [ 0; 1; 2 ] cascade.issued

let test_packet_matches_issued () =
  let t0 = instr_of [ [ Isa.Op.Alu ]; []; []; [] ] in
  let t1 = instr_of [ []; [ Isa.Op.Mul ]; []; [] ] in
  let sel = select_instrs "3SSS" [ t0; t1; t0; t1 ] in
  match sel.packet with
  | None -> Alcotest.fail "expected packet"
  | Some p ->
    Alcotest.(check (list int)) "packet threads = issued" sel.issued
      (M.Packet.thread_list p)

(* --- Figure 1 (reconstruction): 4-cluster, 2-issue machine --- *)

let m8 = Isa.Machine.make ~clusters:4 ~issue_width:2 ~n_lsu:1 ~n_mul:1 ~n_branch:0 ()

let fig1_select name instrs =
  let avail =
    Array.of_list
      (List.mapi (fun t i -> Some (M.Packet.of_instr m ~thread:t i)) instrs)
  in
  (M.Engine.select m8 (M.Catalog.find_exn name).scheme avail).issued

let fig1_instr cl = Isa.Instr.of_cluster_ops ~addr:0 (Array.of_list (List.map ops cl))

let test_fig1_pair1_no_merge () =
  (* Conflicts at both granularities: two loads on cluster 0. *)
  let t0 = fig1_instr [ [ Isa.Op.Load; Isa.Op.Alu ]; [ Isa.Op.Alu ]; []; [ Isa.Op.Alu ] ] in
  let t1 = fig1_instr [ [ Isa.Op.Load ]; [ Isa.Op.Alu ]; []; [ Isa.Op.Alu ] ] in
  Alcotest.(check (list int)) "SMT cannot merge" [ 0 ] (fig1_select "1S" [ t0; t1 ]);
  let p0 = M.Packet.of_instr m ~thread:0 t0 and p1 = M.Packet.of_instr m ~thread:1 t1 in
  Alcotest.(check bool) "CSMT cannot merge" false (M.Conflict.csmt_compatible p0 p1)

let test_fig1_pair2_smt_only () =
  (* Same clusters used, but operations fit together at op level. *)
  let t0 = fig1_instr [ [ Isa.Op.Alu ]; [ Isa.Op.Load ]; [ Isa.Op.Alu ]; [ Isa.Op.Alu ] ] in
  let t1 = fig1_instr [ [ Isa.Op.Copy ]; [ Isa.Op.Mul ]; [ Isa.Op.Store ]; [ Isa.Op.Alu ] ] in
  Alcotest.(check (list int)) "SMT merges" [ 0; 1 ] (fig1_select "1S" [ t0; t1 ]);
  let p0 = M.Packet.of_instr m ~thread:0 t0 and p1 = M.Packet.of_instr m ~thread:1 t1 in
  Alcotest.(check bool) "CSMT conflicts at cluster level" false
    (M.Conflict.csmt_compatible p0 p1)

let test_fig1_pair3_both () =
  (* Disjoint clusters: both granularities merge. *)
  let t0 = fig1_instr [ []; [ Isa.Op.Load; Isa.Op.Alu ]; [ Isa.Op.Store ]; [] ] in
  let t1 = fig1_instr [ [ Isa.Op.Alu; Isa.Op.Copy ]; []; []; [ Isa.Op.Alu; Isa.Op.Mul ] ] in
  let p0 = M.Packet.of_instr m ~thread:0 t0 and p1 = M.Packet.of_instr m ~thread:1 t1 in
  Alcotest.(check bool) "CSMT merges" true (M.Conflict.csmt_compatible p0 p1);
  Alcotest.(check bool) "SMT merges" true (M.Conflict.smt_compatible m8 p0 p1);
  Alcotest.(check (list int)) "issued" [ 0; 1 ] (fig1_select "1S" [ t0; t1 ])

(* --- properties --- *)

let prop_equiv name_a name_b =
  Q.Test.make
    ~name:(Printf.sprintf "%s selects like %s" name_a name_b)
    ~count:400 (Tgen.avail_arb 4)
    (fun instrs ->
      let avail =
        Array.mapi
          (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i)
          instrs
      in
      issued (scheme name_a) avail = issued (scheme name_b) avail)

let prop_c4_equiv_3ccc = prop_equiv "C4" "3CCC"
let prop_2sc3_equiv_3scc = prop_equiv "2SC3" "3SCC"
let prop_2c3s_equiv_3ccs = prop_equiv "2C3S" "3CCS"

let prop_issued_subset_available =
  Q.Test.make ~name:"issued threads were available" ~count:300
    Q.(pair (Tgen.scheme_arb 4) (Tgen.avail_arb 4))
    (fun (s, instrs) ->
      Q.assume (M.Scheme.validate s = Ok ());
      let avail =
        Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs
      in
      List.for_all (fun t -> avail.(t) <> None) (issued s avail))

let prop_merged_packet_routable =
  Q.Test.make ~name:"merged packets always route" ~count:400
    Q.(pair (Tgen.scheme_arb 4) (Tgen.avail_arb 4))
    (fun (s, instrs) ->
      Q.assume (M.Scheme.validate s = Ok ());
      let avail =
        Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs
      in
      match (M.Engine.select m s avail).packet with
      | None -> true
      | Some p ->
        (match M.Routing.route m p with
        | None -> false
        | Some routed -> M.Routing.occupancy routed = M.Packet.op_count p))

let prop_csmt_one_thread_per_cluster =
  Q.Test.make ~name:"CSMT-only schemes: one thread per cluster" ~count:400
    (Tgen.avail_arb 4) (fun instrs ->
      let avail =
        Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs
      in
      match (M.Engine.select m (scheme "3CCC") avail).packet with
      | None -> true
      | Some p ->
        let ok = ref true in
        for c = 0 to 3 do
          if List.length (M.Packet.cluster_threads p c) > 1 then ok := false
        done;
        !ok)

let prop_smt_issues_at_least_priority =
  Q.Test.make ~name:"some thread always issues when available" ~count:300
    Q.(pair (Tgen.scheme_arb 4) (Tgen.avail_arb 4))
    (fun (s, instrs) ->
      Q.assume (M.Scheme.validate s = Ok ());
      Q.assume (Array.exists Option.is_some instrs);
      let avail =
        Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs
      in
      issued s avail <> [])

let suite =
  ( "engine",
    [
      Alcotest.test_case "all stalled" `Quick test_all_stalled;
      Alcotest.test_case "single available" `Quick test_single_available;
      Alcotest.test_case "cascade skip semantics" `Quick test_cascade_skip;
      Alcotest.test_case "smt merges what csmt cannot" `Quick
        test_smt_merges_what_csmt_cannot;
      Alcotest.test_case "empty instruction merges freely" `Quick
        test_empty_instr_merges_freely;
      Alcotest.test_case "rotation remaps priority" `Quick test_rotation_remaps_priority;
      Alcotest.test_case "tree packets are indivisible" `Quick test_tree_indivisibility;
      Alcotest.test_case "packet matches issued" `Quick test_packet_matches_issued;
      Alcotest.test_case "fig1 pair I: no merge" `Quick test_fig1_pair1_no_merge;
      Alcotest.test_case "fig1 pair II: SMT only" `Quick test_fig1_pair2_smt_only;
      Alcotest.test_case "fig1 pair III: both" `Quick test_fig1_pair3_both;
      Tgen.to_alcotest prop_c4_equiv_3ccc;
      Tgen.to_alcotest prop_2sc3_equiv_3scc;
      Tgen.to_alcotest prop_2c3s_equiv_3ccs;
      Tgen.to_alcotest prop_issued_subset_available;
      Tgen.to_alcotest prop_merged_packet_routable;
      Tgen.to_alcotest prop_csmt_one_thread_per_cluster;
      Tgen.to_alcotest prop_smt_issues_at_least_priority;
    ] )

(* --- specification-based check of the greedy selection ---

   Independent reformulation: the cascade's selection is the unique set
   built by considering inputs in priority order and accepting an input
   iff it is compatible with the union of everything accepted so far.
   Here we recompute that set by brute force over subsets for a single
   CSMT block (the hardware the parallel implementation enumerates) and
   check the engine agrees. *)

let spec_csmt_selection packets =
  (* packets: (input index, packet) list in priority order. *)
  let rec go acc acc_mask = function
    | [] -> List.rev acc
    | (i, p) :: rest ->
      if acc_mask land p.M.Packet.mask = 0 then
        go ((i, p) :: acc) (acc_mask lor p.M.Packet.mask) rest
      else go acc acc_mask rest
  in
  go [] 0 packets

let prop_parallel_csmt_matches_spec =
  Q.Test.make ~name:"parallel CSMT block matches subset specification" ~count:500
    (Tgen.avail_arb 4)
    (fun instrs ->
      let avail =
        Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs
      in
      let inputs =
        Array.to_list avail
        |> List.mapi (fun i p -> (i, p))
        |> List.filter_map (fun (i, p) -> Option.map (fun p -> (i, p)) p)
      in
      let expected = List.map fst (spec_csmt_selection inputs) |> List.sort compare in
      let sel = M.Engine.select m (M.Scheme.csmt_par 4) avail in
      List.sort compare sel.issued = expected)

(* The greedy set is maximal: no skipped input is compatible with the
   final selection (no thread was left out needlessly). *)
let prop_selection_maximal =
  Q.Test.make ~name:"CSMT cascade selection is maximal" ~count:500
    (Tgen.avail_arb 4)
    (fun instrs ->
      let avail =
        Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs
      in
      let sel = M.Engine.select m (scheme "3CCC") avail in
      match sel.packet with
      | None -> Array.for_all Option.is_none avail
      | Some merged ->
        Array.to_list avail
        |> List.mapi (fun i p -> (i, p))
        |> List.for_all (fun (i, p) ->
               match p with
               | None -> true
               | Some p ->
                 List.mem i sel.issued
                 || not (M.Conflict.csmt_compatible merged p)))

(* Engines generalise beyond 4 threads: a 6-thread cascade still obeys
   the core invariants. *)
let prop_six_thread_engine =
  Q.Test.make ~name:"6-thread schemes behave" ~count:200 (Tgen.avail_arb 6)
    (fun instrs ->
      let avail =
        Array.mapi (fun t i -> Option.map (M.Packet.of_instr m ~thread:t) i) instrs
      in
      let s = M.Scheme_name.parse_exn "2SC5" in
      let sel = M.Engine.select m s avail in
      List.for_all (fun t -> avail.(t) <> None) sel.issued
      &&
      match sel.packet with
      | None -> true
      | Some p -> M.Routing.route m p <> None)

let spec_suite =
  [
    Tgen.to_alcotest prop_parallel_csmt_matches_spec;
    Tgen.to_alcotest prop_selection_maximal;
    Tgen.to_alcotest prop_six_thread_engine;
  ]

let suite = (fst suite, snd suite @ spec_suite)
