module Rng = Vliw_util.Rng
module Q = QCheck

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different streams" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_copy_independent () =
  let a = Rng.create 7L in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b);
  (* Advancing one does not move the other. *)
  let _ = Rng.next_int64 a in
  let va = Rng.next_int64 a and vb = Rng.next_int64 b in
  Alcotest.(check bool) "diverged" false (va = vb)

let test_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_shuffle_permutation () =
  let rng = Rng.create 3L in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 20 Fun.id) sorted

let test_choose_weighted () =
  let rng = Rng.create 5L in
  (* Weight 0 entries must never be picked. *)
  for _ = 1 to 200 do
    let v = Rng.choose_weighted rng [| ("never", 0.0); ("always", 1.0) |] in
    Alcotest.(check string) "only positive weight" "always" v
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 11L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1" true (Rng.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0" false (Rng.bernoulli rng 0.0)
  done

let test_geometric_mean () =
  let rng = Rng.create 13L in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.5
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* Mean of Geom(0.5) failures-before-success is 1. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 1" mean)
    true
    (abs_float (mean -. 1.0) < 0.05)

let test_gaussian_moments () =
  let rng = Rng.create 17L in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  let mean = Vliw_util.Stats.mean xs in
  let sd = Vliw_util.Stats.stddev xs in
  Alcotest.(check bool) "mean ~3" true (abs_float (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "sd ~2" true (abs_float (sd -. 2.0) < 0.1)

(* The limb-based implementation against a straight Int64 SplitMix64:
   identical raw streams, and identical [int]/[float]/[bool] projections
   (the projections' limb arithmetic is the part most worth pinning). *)
module Ref64 = struct
  type t = { mutable state : int64 }

  let create seed = { state = seed }

  let next t =
    t.state <- Int64.add t.state 0x9E3779B97F4A7C15L;
    let z = t.state in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
    Int64.logxor z (Int64.shift_right_logical z 31)

  let int t bound =
    Int64.to_int
      (Int64.rem (Int64.shift_right_logical (next t) 1) (Int64.of_int bound))

  let float t bound =
    Int64.to_float (Int64.shift_right_logical (next t) 11)
    /. 9007199254740992.0 *. bound

  let bool t = Int64.logand (next t) 1L = 1L
end

let test_matches_int64_reference () =
  List.iter
    (fun seed ->
      let a = Rng.create seed and b = Ref64.create seed in
      for _ = 1 to 200 do
        Alcotest.(check int64) "raw stream" (Ref64.next b) (Rng.next_int64 a)
      done;
      (* Projections, including bounds around the 2^30 fast/slow split. *)
      List.iter
        (fun bound ->
          let a = Rng.create seed and b = Ref64.create seed in
          for _ = 1 to 100 do
            Alcotest.(check int) "int projection" (Ref64.int b bound)
              (Rng.int a bound)
          done)
        [ 2; 7; 4096; 0x40000000; 0x40000001; max_int ];
      let a = Rng.create seed and b = Ref64.create seed in
      for _ = 1 to 100 do
        Alcotest.(check (float 0.0)) "float projection" (Ref64.float b 1.0)
          (Rng.float a 1.0)
      done;
      let a = Rng.create seed and b = Ref64.create seed in
      for _ = 1 to 100 do
        Alcotest.(check bool) "bool projection" (Ref64.bool b) (Rng.bool a)
      done)
    [ 0L; 1L; 42L; -1L; 0x5EEDL; Int64.min_int; Int64.max_int; 0xDEADBEEFCAFEL ]

let prop_int_bound =
  Q.Test.make ~name:"int within bound" ~count:500
    Q.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_int_in =
  Q.Test.make ~name:"int_in inclusive range" ~count:500
    Q.(triple (int_range (-1000) 1000) (int_range 0 2000) small_int)
    (fun (lo, span, seed) ->
      let hi = lo + span in
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let prop_float_bound =
  Q.Test.make ~name:"float within bound" ~count:500
    Q.(pair (float_range 0.001 1e6) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "matches Int64 SplitMix64" `Quick
        test_matches_int64_reference;
      Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
      Alcotest.test_case "copy independent" `Quick test_copy_independent;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "choose_weighted respects zero" `Quick test_choose_weighted;
      Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
      Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      Tgen.to_alcotest prop_int_bound;
      Tgen.to_alcotest prop_int_in;
      Tgen.to_alcotest prop_float_bound;
    ] )
