(* Experiment harness: structure checks at Quick scale, plus renderer
   smoke tests. The paper-shape assertions live in test_repro. *)
module E = Vliw_experiments

let contains ~needle haystack =
  let nl = String.length needle and hl = String.length haystack in
  let rec go i = i + nl <= hl && (String.sub haystack i nl = needle || go (i + 1)) in
  go 0

let test_grid_shape () =
  let grid =
    E.Sweep.run ~scale:E.Common.Quick ~scheme_names:[ "1S"; "3SSS" ]
      ~mix_names:[ "LLLL"; "HHHH" ] ()
  in
  Alcotest.(check int) "mix rows" 2 (Array.length grid.ipc);
  Array.iter (fun row -> Alcotest.(check int) "scheme cols" 2 (Array.length row)) grid.ipc;
  Alcotest.(check int) "columns" 2 (Array.length (E.Common.grid_column grid "1S"))

let test_grid_deterministic () =
  let run () =
    E.Sweep.run ~scale:E.Common.Quick ~seed:5L ~scheme_names:[ "2SC3" ]
      ~mix_names:[ "MMMM" ] ()
  in
  let a = run () and b = run () in
  Alcotest.(check (float 0.0)) "same IPC" a.ipc.(0).(0) b.ipc.(0).(0)

let test_table2_render () =
  let out = E.Table2.render () in
  Alcotest.(check bool) "has LLHH" true (contains ~needle:"LLHH" out);
  Alcotest.(check bool) "has colorspace" true (contains ~needle:"colorspace" out)

let test_fig5_shape () =
  let points = E.Fig5.run () in
  Alcotest.(check int) "7 thread counts" 7 (List.length points);
  let out = E.Fig5.render points in
  Alcotest.(check bool) "mentions CSMT PL" true (contains ~needle:"CSMT PL" out)

let test_fig9_shape () =
  let rows = E.Fig9.run () in
  Alcotest.(check int) "16 schemes" 16 (List.length rows);
  let out = E.Fig9.render rows in
  Alcotest.(check bool) "mentions 2SC3" true (contains ~needle:"2SC3" out)

let test_fig4_quick () =
  let d = E.Fig4.run ~scale:E.Common.Quick () in
  Alcotest.(check bool) "4T > 2T" true (d.four_thread > d.two_thread);
  Alcotest.(check bool) "2T > 1T" true (d.two_thread > d.single);
  Alcotest.(check bool) "render" true
    (contains ~needle:"4-thread vs 2-thread" (E.Fig4.render d))

let test_fig6_quick () =
  let d = E.Fig6.run ~scale:E.Common.Quick () in
  Alcotest.(check int) "9 mixes" 9 (List.length d.per_mix);
  Alcotest.(check bool) "positive advantage" true (d.average > 0.0)

let fig10_quick =
  lazy
    (E.Fig10.run ~scale:E.Common.Quick ())

let test_fig10_structure () =
  let d = Lazy.force fig10_quick in
  Alcotest.(check int) "16 schemes in grid" 16 (List.length d.grid.scheme_names);
  Alcotest.(check int) "9 mixes" 9 (List.length d.grid.mix_names);
  Alcotest.(check int) "9 groups" 9 (List.length d.groups);
  List.iter
    (fun (g, _) ->
      Alcotest.(check bool) (g ^ " spread finite") true (E.Fig10.group_spread d g >= 0.0);
      Alcotest.(check bool) (g ^ " ipc positive") true (E.Fig10.group_average d g > 0.0))
    d.groups;
  Alcotest.(check bool) "render has Average" true
    (contains ~needle:"Average" (E.Fig10.render d))

let test_fig11_12_from_fig10 () =
  let d = Lazy.force fig10_quick in
  let p11 = E.Fig11.of_fig10 d in
  let p12 = E.Fig12.of_fig10 d in
  Alcotest.(check int) "fig11 points" 16 (List.length p11);
  Alcotest.(check int) "fig12 points" 16 (List.length p12);
  List.iter
    (fun (p : E.Fig11.point) ->
      Alcotest.(check bool) (p.name ^ " transistors > 0") true (p.transistors > 0.0))
    p11;
  Alcotest.(check bool) "fig11 render" true
    (contains ~needle:"transistors" (E.Fig11.render p11));
  Alcotest.(check bool) "fig12 render" true
    (contains ~needle:"gate delays" (E.Fig12.render p12))

let test_claims_from_fig10 () =
  let c = E.Claims.of_fig10 (Lazy.force fig10_quick) in
  Alcotest.(check bool) "4T SMT above 2T SMT" true (c.smt4_over_smt2_pct > 0.0);
  Alcotest.(check bool) "SMT above CSMT" true (c.smt_over_csmt_pct > 0.0);
  Alcotest.(check bool) "render" true
    (contains ~needle:"paper +61%" (E.Claims.render c))

let test_table1_quick () =
  (* Structure only at Quick scale (accuracy checked in test_repro). *)
  let rows = E.Table1.run ~scale:E.Common.Quick () in
  Alcotest.(check int) "12 rows" 12 (List.length rows);
  List.iter
    (fun (r : E.Table1.row) ->
      Alcotest.(check bool) (r.profile.name ^ " ipc > 0") true (r.ipc_real > 0.0))
    rows;
  Alcotest.(check bool) "render has mcf" true
    (contains ~needle:"mcf" (E.Table1.render rows))

let suite =
  ( "experiments",
    [
      Alcotest.test_case "grid shape" `Quick test_grid_shape;
      Alcotest.test_case "grid deterministic" `Quick test_grid_deterministic;
      Alcotest.test_case "table2 render" `Quick test_table2_render;
      Alcotest.test_case "fig5 shape" `Quick test_fig5_shape;
      Alcotest.test_case "fig9 shape" `Quick test_fig9_shape;
      Alcotest.test_case "fig4 quick" `Quick test_fig4_quick;
      Alcotest.test_case "fig6 quick" `Quick test_fig6_quick;
      Alcotest.test_case "fig10 structure" `Quick test_fig10_structure;
      Alcotest.test_case "fig11/12 from fig10" `Quick test_fig11_12_from_fig10;
      Alcotest.test_case "claims from fig10" `Quick test_claims_from_fig10;
      Alcotest.test_case "table1 quick" `Quick test_table1_quick;
    ] )
