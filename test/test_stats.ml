module Stats = Vliw_util.Stats
module Q = QCheck

let feq ?(eps = 1e-9) a b = abs_float (a -. b) < eps

let check_f name expected actual =
  Alcotest.(check bool)
    (Printf.sprintf "%s: %.6f = %.6f" name expected actual)
    true (feq expected actual)

let test_mean () =
  check_f "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_f "singleton" 7.25 (Stats.mean [| 7.25 |])

(* Every aggregate rejects the empty array loudly: the historical
   behaviours (mean returning 0.0, the order statistics asserting) let
   empty inputs corrupt averages silently or vanish under -noassert. *)
let test_empty_raises () =
  let expect name f =
    Alcotest.check_raises name
      (Invalid_argument (Printf.sprintf "Stats.%s: empty array" name))
      (fun () -> ignore (f ()))
  in
  expect "mean" (fun () -> Stats.mean [||]);
  expect "geomean" (fun () -> Stats.geomean [||]);
  expect "stddev" (fun () -> Stats.stddev [||]);
  expect "median" (fun () -> Stats.median [||]);
  expect "percentile" (fun () -> Stats.percentile [||] 50.0);
  expect "min_max" (fun () -> Stats.min_max [||]);
  expect "summarize" (fun () -> Stats.summarize [||]);
  (* sum is the one aggregate with a true identity element *)
  check_f "sum of empty is 0" 0.0 (Stats.sum [||])

let test_percentile_domain () =
  let xs = [| 1.0; 2.0; 3.0 |] in
  let expect_bad p =
    Alcotest.check_raises
      (Printf.sprintf "p = %g rejected" p)
      (Invalid_argument (Printf.sprintf "Stats.percentile: p = %g not in [0, 100]" p))
      (fun () -> ignore (Stats.percentile xs p))
  in
  expect_bad (-0.5);
  expect_bad 100.5;
  (* boundary values are legal and hit the extremes *)
  check_f "p0 = min" 1.0 (Stats.percentile xs 0.0);
  check_f "p100 = max" 3.0 (Stats.percentile xs 100.0);
  check_f "singleton any p" 9.0 (Stats.percentile [| 9.0 |] 73.0)

let test_geomean () =
  check_f "geomean" 4.0 (Stats.geomean [| 2.0; 8.0 |]);
  check_f "singleton" 5.0 (Stats.geomean [| 5.0 |])

let test_stddev () =
  check_f "constant" 0.0 (Stats.stddev [| 3.0; 3.0; 3.0 |]);
  check_f "known" 2.0 (Stats.stddev [| 2.0; 4.0; 4.0; 4.0; 5.0; 5.0; 7.0; 9.0 |])

let test_median () =
  check_f "odd" 3.0 (Stats.median [| 5.0; 3.0; 1.0 |]);
  check_f "even" 2.5 (Stats.median [| 4.0; 1.0; 2.0; 3.0 |])

let test_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_f "p0" 1.0 (Stats.percentile xs 0.0);
  check_f "p100" 5.0 (Stats.percentile xs 100.0);
  check_f "p50" 3.0 (Stats.percentile xs 50.0);
  check_f "p25" 2.0 (Stats.percentile xs 25.0)

(* The exact (nearest-rank) quantiles behind the latency summaries:
   never interpolated, so every answer is an element of the sample. *)
let test_quantile_exact () =
  Alcotest.check_raises "empty raises"
    (Invalid_argument "Stats.quantile_exact: empty array") (fun () ->
      ignore (Stats.p50 [||]));
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.quantile_exact: p = 101 not in [0, 100]")
    (fun () -> ignore (Stats.quantile_exact [| 1.0 |] 101.0));
  (* a single sample is every quantile of itself *)
  check_f "n=1 p50" 4.5 (Stats.p50 [| 4.5 |]);
  check_f "n=1 p99" 4.5 (Stats.p99 [| 4.5 |]);
  (* p = 100 lands on the largest element, never past it *)
  check_f "p100 = max" 9.0 (Stats.quantile_exact [| 9.0; 1.0; 3.0 |] 100.0);
  (* nearest-rank on 1..10: p50 -> 5th, p95 -> 10th, p99 -> 10th *)
  let xs = Array.init 10 (fun i -> float_of_int (i + 1)) in
  check_f "p50 of 1..10" 5.0 (Stats.p50 xs);
  check_f "p95 of 1..10" 10.0 (Stats.p95 xs);
  check_f "p99 of 1..10" 10.0 (Stats.p99 xs);
  check_f "p0 = min" 1.0 (Stats.quantile_exact xs 0.0)

let test_min_max () =
  let mn, mx = Stats.min_max [| 3.0; -1.0; 7.0 |] in
  check_f "min" (-1.0) mn;
  check_f "max" 7.0 mx

let test_pct_diff () =
  check_f "pct" 50.0 (Stats.pct_diff 3.0 2.0);
  check_f "pct negative" (-50.0) (Stats.pct_diff 1.0 2.0)

let test_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.n;
  check_f "mean" 2.0 s.mean;
  check_f "median" 2.0 s.median

let nonempty_floats =
  Q.(array_of_size Gen.(int_range 1 40) (float_range (-1e6) 1e6))

let prop_quantile_is_sample =
  Q.Test.make ~name:"exact quantile is a sample element" ~count:300
    Q.(pair nonempty_floats (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let q = Stats.quantile_exact xs p in
      Array.exists (fun x -> x = q) xs)

let prop_median_between =
  Q.Test.make ~name:"median within min/max" ~count:300 nonempty_floats (fun xs ->
      let mn, mx = Stats.min_max xs in
      let m = Stats.median xs in
      m >= mn && m <= mx)

let prop_percentile_monotone =
  Q.Test.make ~name:"percentile monotone in p" ~count:300
    Q.(pair nonempty_floats (pair (float_bound_inclusive 100.0) (float_bound_inclusive 100.0)))
    (fun (xs, (p1, p2)) ->
      let lo = min p1 p2 and hi = max p1 p2 in
      Stats.percentile xs lo <= Stats.percentile xs hi +. 1e-9)

let prop_geomean_le_mean =
  Q.Test.make ~name:"geomean <= mean for positives" ~count:300
    Q.(array_of_size Gen.(int_range 1 40) (float_range 0.001 1e4))
    (fun xs -> Stats.geomean xs <= Stats.mean xs +. 1e-6)

let suite =
  ( "stats",
    [
      Alcotest.test_case "mean" `Quick test_mean;
      Alcotest.test_case "empty arrays raise" `Quick test_empty_raises;
      Alcotest.test_case "percentile domain" `Quick test_percentile_domain;
      Alcotest.test_case "geomean" `Quick test_geomean;
      Alcotest.test_case "stddev" `Quick test_stddev;
      Alcotest.test_case "median" `Quick test_median;
      Alcotest.test_case "percentile" `Quick test_percentile;
      Alcotest.test_case "exact quantiles" `Quick test_quantile_exact;
      Alcotest.test_case "min_max" `Quick test_min_max;
      Alcotest.test_case "pct_diff" `Quick test_pct_diff;
      Alcotest.test_case "summary" `Quick test_summary;
      Tgen.to_alcotest prop_quantile_is_sample;
      Tgen.to_alcotest prop_median_between;
      Tgen.to_alcotest prop_percentile_monotone;
      Tgen.to_alcotest prop_geomean_le_mean;
    ] )
