(* The sweep service: NDJSON framing, the request codec, the
   backfilling batch planner, the content-addressed cell cache, ledger
   gc — and one in-process end-to-end daemon session proving the
   acceptance contract: a sweep submitted twice simulates zero cells
   the second time and both responses are bit-identical to a local run
   of the same configuration. *)

module J = Vliw_util.Json
module Ndjson = Vliw_util.Ndjson
module Request = Vliw_service.Request
module Scheduler = Vliw_service.Scheduler
module Cache = Vliw_service.Cache
module Server = Vliw_service.Server
module Ledger = Vliw_telemetry.Ledger
module E = Vliw_experiments

(* --- NDJSON framing ---------------------------------------------------- *)

let ok_doc = function
  | Ok d -> d
  | Error e -> Alcotest.failf "expected a document, got: %s" (Ndjson.error_message e)

let test_ndjson_reassembly () =
  let r = Ndjson.reader () in
  (* one line split across three feeds, then two lines in one feed *)
  Alcotest.(check int) "partial line yields nothing" 0
    (List.length (Ndjson.feed r {|{"op":|}));
  Alcotest.(check int) "still partial" 0
    (List.length (Ndjson.feed r {|"ping"|}));
  (match Ndjson.feed r "}\n" with
  | [ Ok d ] ->
    Alcotest.(check string) "reassembled doc" {|{"op":"ping"}|} (J.to_string d)
  | other -> Alcotest.failf "expected one doc, got %d results" (List.length other));
  (match Ndjson.feed r "{\"a\":1}\r\n\n{\"b\":2}\n" with
  | [ Ok a; Ok b ] ->
    (* CRLF tolerated, blank line skipped *)
    Alcotest.(check string) "first" {|{"a":1}|} (J.to_string a);
    Alcotest.(check string) "second" {|{"b":2}|} (J.to_string b)
  | rs -> Alcotest.failf "expected two docs, got %d results" (List.length rs));
  Alcotest.(check bool) "clean close" true (Ndjson.close r = None)

let test_ndjson_malformed () =
  let r = Ndjson.reader () in
  (match Ndjson.feed r "{not json}\n{\"ok\":true}\n" with
  | [ Error (Ndjson.Malformed _); Ok d ] ->
    (* a bad line is one error; the stream resyncs at the newline *)
    Alcotest.(check string) "survivor" {|{"ok":true}|} (J.to_string d)
  | rs -> Alcotest.failf "expected [malformed; ok], got %d results" (List.length rs));
  Alcotest.(check bool) "error is explained" true
    (String.length (Ndjson.error_message (Ndjson.Malformed { msg = "x" })) > 0)

let test_ndjson_oversized () =
  let r = Ndjson.reader ~max_line_bytes:8 () in
  let results = Ndjson.feed r (String.make 100 'x' ^ "\ntrue\n") in
  (match results with
  | [ Error (Ndjson.Oversized { limit }) ; Ok d ] ->
    (* exactly one Oversized per over-budget line, next line intact *)
    Alcotest.(check int) "reported limit" 8 limit;
    Alcotest.(check string) "next line parsed" "true" (J.to_string d)
  | rs -> Alcotest.failf "expected [oversized; ok], got %d results" (List.length rs));
  (* the overflow must not have been buffered *)
  let r2 = Ndjson.reader ~max_line_bytes:4 () in
  ignore (Ndjson.feed r2 (String.make 1_000_000 'y'));
  Alcotest.(check bool) "oversized close reports truncation" true
    (Ndjson.close r2 = Some (Error Ndjson.Truncated))

let test_ndjson_truncated () =
  let r = Ndjson.reader () in
  ignore (Ndjson.feed r {|{"op":"ping"|});
  Alcotest.(check bool) "EOF mid-line is Truncated" true
    (Ndjson.close r = Some (Error Ndjson.Truncated));
  Alcotest.(check bool) "close after close is clean" true (Ndjson.close r = None)

(* --- request codec ----------------------------------------------------- *)

let test_request_defaults () =
  let parse s = Request.of_line s in
  (match parse {|{"op":"submit"}|} with
  | Ok (Request.Submit s) ->
    Alcotest.(check string) "default scale" "default" s.scale;
    Alcotest.(check string) "default tag" "" s.tag;
    Alcotest.(check bool) "default seed" true
      (s.seed = E.Common.default_seed);
    Alcotest.(check int) "default priority" 0 s.priority;
    Alcotest.(check (list string)) "default mixes" [] s.mixes
  | _ -> Alcotest.fail "bare submit should parse with defaults");
  (match parse {|{"op":"submit","seed":"0x2a","priority":3}|} with
  | Ok (Request.Submit s) ->
    Alcotest.(check bool) "hex seed" true (s.seed = 42L);
    Alcotest.(check int) "priority" 3 s.priority
  | _ -> Alcotest.fail "hex seed should parse");
  List.iter
    (fun (line, what) ->
      match parse line with
      | Error _ -> ()
      | Ok _ -> Alcotest.failf "%s should be rejected" what)
    [
      ({|{"op":"nope"}|}, "unknown op");
      ({|{"noop":true}|}, "missing op");
      ({|{"op":42}|}, "non-string op");
      ({|{"op":"submit","seed":"zebra"}|}, "unparseable seed");
      ({|{"op":"submit","priority":"high"}|}, "non-integer priority");
      ({|{"op":"submit","mixes":"LLHH"}|}, "non-list mixes");
      ({|{"op":"submit","mixes":[1]}|}, "non-string mix entry");
    ]

(* Round-trip property: any request encodes to JSON and decodes back to
   itself. Strings are arbitrary bytes — the JSON layer owns escaping. *)
let test_request_roundtrip =
  let gen_submit =
    QCheck.Gen.(
      let* tag = string_size (int_bound 12) in
      let* scale = oneofl [ "quick"; "default"; "full"; "weird" ] in
      let* seed = ui64 in
      let* priority = int_range (-5) 100 in
      let* mixes = list_size (int_bound 3) (string_size (int_bound 6)) in
      let* schemes = list_size (int_bound 3) (string_size (int_bound 6)) in
      let* trace =
        option
          (map2
             (fun t p -> { Request.trace_id = t; parent_span = p })
             ui64 (option ui64))
      in
      return
        (Request.Submit { tag; scale; seed; priority; mixes; schemes; trace }))
  in
  let gen =
    QCheck.Gen.(
      frequency
        [
          (4, gen_submit);
          (1, oneofl [ Request.Ping; Request.Stats; Request.Metrics; Request.Shutdown ]);
        ])
  in
  let arb = QCheck.make ~print:(fun r -> J.to_string (Request.to_json r)) gen in
  QCheck.Test.make ~count:200 ~name:"service: request <-> JSON round-trip" arb
    (fun req ->
      match Request.of_line (J.to_string (Request.to_json req)) with
      | Ok req' -> req' = req
      | Error msg -> QCheck.Test.fail_reportf "decode failed: %s" msg)

(* --- scheduler --------------------------------------------------------- *)

let job jid ~priority ~arrival cells =
  { Scheduler.jid; priority; arrival; cells }

let test_scheduler_priority_fifo () =
  (* higher priority first; FIFO within a priority *)
  let q =
    [
      job "a" ~priority:0 ~arrival:1 [ 1; 2 ];
      job "b" ~priority:5 ~arrival:2 [ 3 ];
      job "c" ~priority:0 ~arrival:0 [ 4 ];
    ]
  in
  let batch, rest = Scheduler.plan ~capacity:10 q in
  Alcotest.(check (list (pair string int)))
    "dispatch order is rank order"
    [ ("b", 3); ("c", 4); ("a", 1); ("a", 2) ]
    batch;
  Alcotest.(check int) "queue drained" 0 (List.length rest)

let test_scheduler_backfill () =
  (* head job fills the batch; a small job backfills the idle slots
     while a bigger better-ranked one waits whole *)
  let q =
    [
      job "head" ~priority:9 ~arrival:0 [ 1; 2; 3 ];
      job "big" ~priority:5 ~arrival:1 [ 4; 5; 6; 7 ];
      job "small" ~priority:0 ~arrival:2 [ 8 ];
    ]
  in
  let batch, rest = Scheduler.plan ~capacity:4 q in
  Alcotest.(check (list (pair string int)))
    "small job backfills the idle slot"
    [ ("head", 1); ("head", 2); ("head", 3); ("small", 8) ]
    batch;
  (match rest with
  | [ j ] ->
    Alcotest.(check string) "big job waits intact" "big" j.Scheduler.jid;
    Alcotest.(check int) "with all its cells" 4 (List.length j.Scheduler.cells)
  | _ -> Alcotest.fail "exactly one job should remain");
  (* nothing fits whole: the best-ranked leftover fills partially so no
     slot idles *)
  let batch2, rest2 =
    Scheduler.plan ~capacity:2
      [
        job "x" ~priority:1 ~arrival:0 [ 1; 2; 3 ];
        job "y" ~priority:0 ~arrival:1 [ 4; 5; 6 ];
      ]
  in
  Alcotest.(check (list (pair string int)))
    "partial fill from the best-ranked job"
    [ ("x", 1); ("x", 2) ]
    batch2;
  Alcotest.(check int) "both jobs survive" 2 (List.length rest2)

let test_scheduler_edges () =
  Alcotest.(check bool) "zero capacity plans nothing" true
    (fst (Scheduler.plan ~capacity:0 [ job "a" ~priority:0 ~arrival:0 [ 1 ] ]) = []);
  Alcotest.(check bool) "empty queue plans nothing" true
    (Scheduler.plan ~capacity:8 ([] : int Scheduler.job list) = ([], []));
  (* a fully drained head cascades into the next job *)
  let batch, rest =
    Scheduler.plan ~capacity:5
      [
        job "a" ~priority:1 ~arrival:0 [ 1; 2 ];
        job "b" ~priority:0 ~arrival:1 [ 3; 4; 5 ];
      ]
  in
  Alcotest.(check int) "all five dispatched" 5 (List.length batch);
  Alcotest.(check int) "nothing left" 0 (List.length rest)

(* --- cache ------------------------------------------------------------- *)

let mk_run ?(cmd = "exp") ?(policy = "static") ?(label = "t") ~cells () =
  Ledger.make ~cells ~policy ~cmd ~label ~scale:"quick" ~seed:42L ~jobs:1
    ~scheme_names:[ "C4" ] ~mix_names:[ "LLHH" ] ~wall_s:0.1 ()

let mk_cell ?(ipc = 3.25) ?(degraded = false) mix scheme =
  {
    Ledger.mix;
    scheme;
    ipc = (if degraded then Float.nan else ipc);
    elapsed_s = 0.1;
    started_s = 0.0;
    worker = 0;
    attempts = 1;
    degraded;
  }

let temp_dir () =
  let dir = Filename.temp_file "vliwsvc" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  dir

let test_cache_keys () =
  let key = Cache.cell_key ~scale:"quick" ~seed:42L ~mix:"LLHH" ~scheme:"C4" in
  Alcotest.(check string) "key is stable" key
    (Cache.cell_key ~scale:"quick" ~seed:42L ~mix:"LLHH" ~scheme:"C4");
  let others =
    [
      Cache.cell_key ~scale:"default" ~seed:42L ~mix:"LLHH" ~scheme:"C4";
      Cache.cell_key ~scale:"quick" ~seed:43L ~mix:"LLHH" ~scheme:"C4";
      Cache.cell_key ~scale:"quick" ~seed:42L ~mix:"LLLL" ~scheme:"C4";
      Cache.cell_key ~scale:"quick" ~seed:42L ~mix:"LLHH" ~scheme:"1S";
    ]
  in
  List.iter
    (fun k -> Alcotest.(check bool) "every dimension changes the key" false (k = key))
    others

let test_cache_ingestion_policy () =
  Alcotest.(check bool) "exp/static is cacheable" true
    (Cache.cacheable_run (mk_run ~cells:[||] ()));
  Alcotest.(check bool) "serve/static is cacheable" true
    (Cache.cacheable_run (mk_run ~cmd:"serve" ~cells:[||] ()));
  (* `run` seeds the simulation differently; adaptive results depend on
     controller state — neither may feed the content-addressed cache *)
  Alcotest.(check bool) "run records are not cacheable" false
    (Cache.cacheable_run (mk_run ~cmd:"run" ~cells:[||] ()));
  Alcotest.(check bool) "adaptive records are not cacheable" false
    (Cache.cacheable_run (mk_run ~policy:"greedy" ~cells:[||] ()))

let test_cache_preload () =
  let dir = temp_dir () in
  ignore (Ledger.append ~dir (mk_run ~cells:[| mk_cell "LLHH" "C4" |] ()));
  ignore
    (Ledger.append ~dir
       (mk_run ~cmd:"run" ~cells:[| mk_cell "LLHH" "1S" |] ()));
  ignore
    (Ledger.append ~dir
       (mk_run ~cells:[| mk_cell ~degraded:true "LLLL" "C4" |] ()));
  let cache = Cache.create () in
  let n = Cache.preload cache ~dir in
  (* only the exp/static, non-degraded cell makes it in *)
  Alcotest.(check int) "one cell preloaded" 1 n;
  Alcotest.(check int) "cache size" 1 (Cache.size cache);
  Alcotest.(check bool) "the right cell" true
    (Cache.find cache
       ~key:(Cache.cell_key ~scale:"quick" ~seed:42L ~mix:"LLHH" ~scheme:"C4")
    = Some 3.25);
  Alcotest.(check bool) "degraded cell absent" true
    (Cache.find cache
       ~key:(Cache.cell_key ~scale:"quick" ~seed:42L ~mix:"LLLL" ~scheme:"C4")
    = None);
  (* nan never enters through add either *)
  Cache.add cache ~key:"k" ~ipc:Float.nan;
  Alcotest.(check int) "nan add is a no-op" 1 (Cache.size cache)

(* --- ledger gc and id assignment --------------------------------------- *)

let test_ledger_gc () =
  let dir = temp_dir () in
  let cells_a = [| mk_cell "LLHH" "C4" |] in
  let cells_b = [| mk_cell ~ipc:2.5 "LLHH" "C4" |] in
  ignore (Ledger.append ~dir (mk_run ~label:"old" ~cells:cells_a ()));
  ignore (Ledger.append ~dir (mk_run ~label:"new" ~cells:cells_a ()));
  ignore (Ledger.append ~dir (mk_run ~label:"drift" ~cells:cells_b ()));
  (* dry run touches nothing *)
  let dry = Ledger.gc ~dry_run:true ~dir () in
  Alcotest.(check int) "dry run finds the duplicate" 1
    (List.length dry.Ledger.dropped);
  Alcotest.(check int) "dry run leaves the file" 3
    (List.length (Ledger.load ~dir));
  let report = Ledger.gc ~dir () in
  Alcotest.(check (list string))
    "duplicate dropped (oldest)" [ "r1" ]
    (List.map (fun r -> r.Ledger.id) report.Ledger.dropped);
  Alcotest.(check (list string))
    "newest duplicate and the drift witness survive" [ "r2"; "r3" ]
    (List.map (fun r -> r.Ledger.id) (Ledger.load ~dir));
  (* idempotence *)
  let again = Ledger.gc ~dir () in
  Alcotest.(check int) "second gc drops nothing" 0
    (List.length again.Ledger.dropped);
  (* ids after gc never collide with survivors: max+1, not count+1 *)
  let fresh = Ledger.append ~dir (mk_run ~label:"post-gc" ~cells:cells_a ()) in
  Alcotest.(check string) "fresh id skips the gap" "r4" fresh.Ledger.id

(* --- prepared rows ----------------------------------------------------- *)

(* The service's execution path (prepare once, simulate per scheme) must
   be bit-identical to the sweep engine's own cells — this is what makes
   cache entries interchangeable with exp results. *)
let test_simulate_prepared_bit_identity () =
  let scale = E.Common.Quick and seed = 7L in
  let scheme_names = [ "C4"; "1S" ] and mix_names = [ "LLHH"; "MMMM" ] in
  let _, _, cells =
    E.Sweep.run_cells ~scale ~seed ~scheme_names ~mix_names ()
  in
  List.iter
    (fun mix ->
      let pr = E.Sweep.prepare_row ~scale ~seed mix in
      Alcotest.(check string) "prepared mix name" mix (E.Sweep.prepared_mix pr);
      List.iter
        (fun scheme ->
          let ipc =
            E.Sweep.simulate_prepared pr
              (E.Sweep.static_column (Vliw_merge.Catalog.find_exn scheme))
          in
          let reference =
            match
              Array.find_opt
                (fun (c : E.Sweep.cell) -> c.mix = mix && c.scheme = scheme)
                cells
            with
            | Some c -> c.ipc
            | None -> Alcotest.failf "no reference cell for %s/%s" mix scheme
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s bit-identical" mix scheme)
            true
            (Int64.bits_of_float ipc = Int64.bits_of_float reference))
        scheme_names)
    mix_names

(* --- end-to-end daemon ------------------------------------------------- *)

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  let rec retry n =
    match Unix.connect fd (Unix.ADDR_UNIX path) with
    | () -> fd
    | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
      when n > 0 ->
      Unix.sleepf 0.05;
      retry (n - 1)
  in
  retry 100

let send_line fd doc =
  let line = Ndjson.line doc in
  let rec push off =
    if off < String.length line then
      push (off + Unix.write_substring fd line off (String.length line - off))
  in
  push 0

(* Read reply lines until [stop] returns [Some _] for one of them. *)
let read_until fd stop =
  let reader = Ndjson.reader () in
  let buf = Bytes.create 4096 in
  let rec loop acc =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | 0 -> Alcotest.fail "server closed the connection unexpectedly"
    | n ->
      let docs =
        List.map ok_doc (Ndjson.feed reader ~len:n (Bytes.unsafe_to_string buf))
      in
      let acc = acc @ docs in
      (match List.find_map stop docs with
      | Some v -> (v, acc)
      | None -> loop acc)
  in
  loop []

let member_str key doc =
  match J.member key doc with Some (J.Str s) -> Some s | _ -> None

let member_num key doc =
  match J.member key doc with Some (J.Num v) -> Some v | _ -> None

let done_reply doc =
  if member_str "reply" doc = Some "done" then Some doc else None

let submit_req ~tag ~mixes ~schemes =
  Request.to_json
    (Request.Submit
       {
         tag;
         scale = "quick";
         seed = 42L;
         priority = 0;
         mixes;
         schemes;
         trace = None;
       })

let test_daemon_end_to_end () =
  let dir = temp_dir () in
  let socket = Filename.concat dir "svc.sock" in
  let runs_dir = Filename.concat dir "_runs" in
  let server =
    Domain.spawn (fun () ->
        Server.run
          {
            Server.default_config with
            socket_path = Some socket;
            runs_dir;
            jobs = 2;
          })
  in
  Fun.protect
    ~finally:(fun () -> Domain.join server)
    (fun () ->
      let mixes = [ "LLHH" ] and schemes = [ "C4"; "1S" ] in
      let fd = connect socket in
      (* ping first: the transport is alive *)
      send_line fd (Request.to_json Request.Ping);
      let pong, _ =
        read_until fd (fun d ->
            if member_str "reply" d = Some "pong" then Some d else None)
      in
      ignore pong;
      (* malformed and oversized lines get error replies, connection
         survives *)
      ignore (Unix.write_substring fd "{broken\n" 0 8);
      let err1, _ =
        read_until fd (fun d -> member_str "error" d)
      in
      Alcotest.(check bool) "malformed line rejected" true
        (String.length err1 > 0);
      send_line fd (J.Obj [ ("op", J.Str "submit"); ("scale", J.Str "saturn") ]);
      let err2, _ = read_until fd (fun d -> member_str "error" d) in
      Alcotest.(check bool) "unknown scale rejected" true
        (String.length err2 > 0);
      (* cold submit: everything simulates *)
      send_line fd (submit_req ~tag:"cold" ~mixes ~schemes);
      let done1, lines1 = read_until fd done_reply in
      Alcotest.(check (option (float 0.0))) "all cells simulated" (Some 2.0)
        (member_num "simulated" done1);
      Alcotest.(check (option (float 0.0))) "no cache hits yet" (Some 0.0)
        (member_num "cached" done1);
      let events =
        List.filter (fun d -> J.member "ev" d <> None) lines1
      in
      Alcotest.(check bool) "event stream present" true
        (List.length events >= 3 (* started + 2 cells + finished *));
      (* warm submit: zero simulations, bit-identical digest *)
      send_line fd (submit_req ~tag:"warm" ~mixes ~schemes);
      let done2, _ = read_until fd done_reply in
      Alcotest.(check (option (float 0.0))) "second submit simulates nothing"
        (Some 0.0)
        (member_num "simulated" done2);
      Alcotest.(check (option (float 0.0))) "second submit all cached" (Some 2.0)
        (member_num "cached" done2);
      Alcotest.(check (option string)) "digests bit-identical"
        (member_str "digest" done1)
        (member_str "digest" done2);
      (* stats reflect the session *)
      send_line fd (Request.to_json Request.Stats);
      let s, _ =
        read_until fd (fun d ->
            if member_str "reply" d = Some "stats" then Some d else None)
      in
      Alcotest.(check (option (float 0.0))) "stats cache size" (Some 2.0)
        (member_num "cache_cells" s);
      (* metrics op yields a lintable exposition *)
      send_line fd (Request.to_json Request.Metrics);
      let m, _ =
        read_until fd (fun d ->
            if member_str "reply" d = Some "metrics" then Some d else None)
      in
      (match member_str "exposition" m with
      | Some text ->
        Alcotest.(check (list string)) "exposition lints clean" []
          (Vliw_telemetry.Openmetrics.lint text)
      | None -> Alcotest.fail "metrics reply carries no exposition");
      (* graceful shutdown *)
      send_line fd (Request.to_json Request.Shutdown);
      let _, _ =
        read_until fd (fun d ->
            if member_str "reply" d = Some "shutting_down" then Some d
            else None)
      in
      Unix.close fd);
  (* both jobs are on the ledger and bit-identical — to each other and
     to a local run of the same configuration *)
  (match Ledger.load ~dir:runs_dir with
  | [ a; b ] ->
    Alcotest.(check string) "serve records" "serve" a.Ledger.cmd;
    Alcotest.(check bool) "served grids diff Identical" true
      (Ledger.diff a b = Ledger.Identical);
    Alcotest.(check int) "warm run took zero attempts" 0
      (Array.fold_left (fun acc c -> acc + c.Ledger.attempts) 0 b.Ledger.cells);
    let _, _, local =
      E.Sweep.run_cells ~scale:E.Common.Quick ~seed:42L
        ~scheme_names:[ "C4"; "1S" ] ~mix_names:[ "LLHH" ] ()
    in
    Array.iter
      (fun (c : Ledger.cell) ->
        let reference =
          match
            Array.find_opt
              (fun (l : E.Sweep.cell) ->
                l.mix = c.mix && l.scheme = c.scheme)
              local
          with
          | Some l -> l.ipc
          | None -> Alcotest.failf "no local cell for %s/%s" c.mix c.scheme
        in
        Alcotest.(check bool)
          (Printf.sprintf "served %s/%s == local run" c.mix c.scheme)
          true
          (Int64.bits_of_float c.ipc = Int64.bits_of_float reference))
      a.Ledger.cells;
    Alcotest.(check string) "fingerprint matches a local exp's" a.Ledger.fingerprint
      (Ledger.fingerprint_of ~scale:"quick" ~seed:42L
         ~scheme_names:[ "C4"; "1S" ] ~mix_names:[ "LLHH" ] ())
  | rs -> Alcotest.failf "expected 2 ledger records, found %d" (List.length rs));
  (* the socket file is gone after graceful shutdown *)
  Alcotest.(check bool) "socket unlinked" false (Sys.file_exists socket)

(* --- tracing ----------------------------------------------------------- *)

module Span = Vliw_telemetry.Span

let submit_json ?trace ?(mixes = [ "LLHH" ]) ?(schemes = [ "C4" ]) ~seed ~tag
    () =
  Request.to_json
    (Request.Submit
       { tag; scale = "quick"; seed; priority = 0; mixes; schemes; trace })

(* Spin a daemon, hand [f] a connected fd, shut down gracefully, join. *)
let with_daemon ?(jobs = 1) ?tracer ?max_line_bytes dir f =
  let socket = Filename.concat dir "svc.sock" in
  let runs_dir = Filename.concat dir "_runs" in
  let cfg =
    {
      Server.default_config with
      socket_path = Some socket;
      runs_dir;
      jobs;
      tracer;
      max_line_bytes =
        Option.value max_line_bytes
          ~default:Server.default_config.Server.max_line_bytes;
    }
  in
  let server = Domain.spawn (fun () -> Server.run cfg) in
  Fun.protect
    ~finally:(fun () -> Domain.join server)
    (fun () ->
      let fd = connect socket in
      let r = f fd in
      send_line fd (Request.to_json Request.Shutdown);
      let _ =
        read_until fd (fun d ->
            if member_str "reply" d = Some "shutting_down" then Some d
            else None)
      in
      Unix.close fd;
      r)

(* A traced submit gets its span tree back on the done reply, the
   lifecycle spans decompose the reported latency, and the forest is
   well-nested once the client adds its own root — the serve half of
   the tracing acceptance contract. *)
let test_daemon_traced_submit () =
  let dir = temp_dir () in
  let client = Span.collector ~seed:0xc0ffeeL () in
  let trace = Span.fresh_id client in
  let croot = Span.fresh_id client in
  with_daemon ~jobs:1 dir (fun fd ->
      let t_send = Unix.gettimeofday () in
      send_line fd
        (submit_json
           ~trace:{ Request.trace_id = trace; parent_span = Some croot }
           ~seed:42L ~tag:"traced" ());
      let done1, _ = read_until fd done_reply in
      let t_done = Unix.gettimeofday () in
      Alcotest.(check (option string))
        "trace id echoed"
        (Some (Span.id_to_hex trace))
        (member_str "trace" done1);
      let spans =
        match J.member "spans" done1 with
        | Some j -> (
          match Span.list_of_json j with
          | Ok ss -> ss
          | Error e -> Alcotest.fail ("reply spans undecodable: " ^ e))
        | None -> Alcotest.fail "done reply carries no spans"
      in
      Alcotest.(check bool) "all spans in the request's trace" true
        (List.for_all (fun s -> s.Span.trace = trace) spans);
      let root =
        match List.filter (fun s -> s.Span.kind = Span.Submit) spans with
        | [ r ] -> r
        | _ -> Alcotest.fail "expected exactly one submit root"
      in
      Alcotest.(check bool) "root parented to the client span" true
        (root.Span.parent = Some croot);
      Alcotest.(check bool) "children hang off the root" true
        (List.for_all
           (fun s -> s.Span.id = root.Span.id || s.Span.parent = Some root.Span.id)
           spans);
      let durs k =
        List.filter_map
          (fun s -> if s.Span.kind = k then Some s.Span.dur_s else None)
          spans
      in
      (match
         (durs Span.Queue_wait, durs Span.Schedule, durs Span.Simulate_cell,
          durs Span.Ledger_append)
       with
      | [ qw ], [ sched ], [ sim ], [ led ] ->
        let wall =
          match member_num "wall_s" done1 with
          | Some w -> w
          | None -> Alcotest.fail "done reply carries no wall_s"
        in
        let parts = qw +. sched +. sim +. led in
        Alcotest.(check bool)
          (Printf.sprintf
             "lifecycle spans (%.4fs) decompose the reported latency (%.4fs)"
             parts wall)
          true
          (parts <= wall +. 0.01 && wall -. parts <= 0.25)
      | _ -> Alcotest.fail "expected one span per lifecycle kind");
      (* the client's own root over the reply closes the forest *)
      let cspan =
        {
          Span.trace;
          id = croot;
          parent = None;
          kind = Span.Submit;
          name = "client";
          lane = "client";
          start_s = t_send;
          dur_s = t_done -. t_send;
        }
      in
      Alcotest.(check (list string)) "merged forest well-nested" []
        (Span.validate ~slack_s:0.05 (cspan :: spans));
      (* an untraced submit on the same connection gets no spans back *)
      send_line fd (submit_json ~seed:42L ~tag:"plain" ());
      let done2, _ = read_until fd done_reply in
      Alcotest.(check bool) "untraced reply has no spans" true
        (J.member "spans" done2 = None);
      Alcotest.(check bool) "untraced reply has no trace id" true
        (J.member "trace" done2 = None))

(* Tracing is observation-only: a daemon with a collector (and a traced
   request) produces the same grid bits as an untraced daemon serving an
   untraced request, at jobs 1 and 4. *)
let serve_once ~jobs ~seed ~traced =
  let dir = temp_dir () in
  let tracer = if traced then Some (Span.collector ~seed:99L ()) else None in
  let digest =
    with_daemon ~jobs ?tracer dir (fun fd ->
        let trace =
          if traced then
            Some { Request.trace_id = 0xabcL; parent_span = None }
          else None
        in
        send_line fd
          (submit_json ?trace ~schemes:[ "C4"; "1S" ] ~seed ~tag:"obs" ());
        let d, _ = read_until fd done_reply in
        match member_str "digest" d with
        | Some dg -> dg
        | None -> Alcotest.fail "done reply carries no digest")
  in
  match Ledger.load ~dir:(Filename.concat dir "_runs") with
  | [ r ] -> (digest, r)
  | rs -> Alcotest.failf "expected 1 ledger record, found %d" (List.length rs)

let test_tracing_observation_only =
  QCheck.Test.make ~count:2
    ~name:"serve: tracing is observation-only (jobs 1 and 4)"
    QCheck.(int_bound 1000)
    (fun seed_i ->
      let seed = Int64.of_int seed_i in
      List.for_all
        (fun jobs ->
          let d_plain, r_plain = serve_once ~jobs ~seed ~traced:false in
          let d_traced, r_traced = serve_once ~jobs ~seed ~traced:true in
          d_plain = d_traced && Ledger.diff r_plain r_traced = Ledger.Identical)
        [ 1; 4 ])

(* An oversized traced request is poisoned and discarded: error reply,
   connection alive, and the daemon's span buffer records only the jobs
   that actually ran. *)
let test_traced_oversized_request () =
  let dir = temp_dir () in
  let tracer = Span.collector ~seed:5L () in
  let trace = Span.fresh_id tracer in
  let croot = Span.fresh_id tracer in
  with_daemon ~jobs:1 ~tracer ~max_line_bytes:2048 dir (fun fd ->
      (* a traced submit inflated past the line budget *)
      let fat =
        submit_json
          ~trace:{ Request.trace_id = trace; parent_span = Some croot }
          ~mixes:(List.init 400 (fun i -> Printf.sprintf "M%04d" i))
          ~seed:42L ~tag:"fat" ()
      in
      Alcotest.(check bool) "request really over budget" true
        (String.length (J.to_string fat) > 2048);
      send_line fd fat;
      let err, _ = read_until fd (fun d -> member_str "error" d) in
      Alcotest.(check bool) "oversized line rejected" true
        (String.length err > 0);
      (* same connection, same trace ids: a well-sized retry succeeds *)
      send_line fd
        (submit_json
           ~trace:{ Request.trace_id = trace; parent_span = Some croot }
           ~seed:42L ~tag:"retry" ());
      let d, _ = read_until fd done_reply in
      Alcotest.(check (option string))
        "retry traced under the same trace"
        (Some (Span.id_to_hex trace))
        (member_str "trace" d));
  (* the daemon's buffer holds exactly the retry job's spans — nothing
     leaked in from the poisoned line *)
  let spans = Span.spans tracer in
  Alcotest.(check bool) "span buffer non-empty" true (List.length spans > 0);
  Alcotest.(check bool) "only the surviving trace recorded" true
    (List.for_all (fun s -> s.Span.trace = trace) spans);
  match List.filter (fun s -> s.Span.kind = Span.Submit) spans with
  | [ root ] ->
    Alcotest.(check bool) "single root, client-parented" true
      (root.Span.parent = Some croot)
  | rs -> Alcotest.failf "expected one submit root, found %d" (List.length rs)

let suite =
  ( "service",
    [
      Alcotest.test_case "ndjson: chunk reassembly" `Quick test_ndjson_reassembly;
      Alcotest.test_case "ndjson: malformed lines" `Quick test_ndjson_malformed;
      Alcotest.test_case "ndjson: oversized lines" `Quick test_ndjson_oversized;
      Alcotest.test_case "ndjson: truncated stream" `Quick test_ndjson_truncated;
      Alcotest.test_case "request: defaults and rejects" `Quick test_request_defaults;
      QCheck_alcotest.to_alcotest test_request_roundtrip;
      Alcotest.test_case "scheduler: priority + FIFO" `Quick test_scheduler_priority_fifo;
      Alcotest.test_case "scheduler: backfilling" `Quick test_scheduler_backfill;
      Alcotest.test_case "scheduler: edge cases" `Quick test_scheduler_edges;
      Alcotest.test_case "cache: key dimensions" `Quick test_cache_keys;
      Alcotest.test_case "cache: ingestion policy" `Quick test_cache_ingestion_policy;
      Alcotest.test_case "cache: ledger preload" `Quick test_cache_preload;
      Alcotest.test_case "ledger: gc + id assignment" `Quick test_ledger_gc;
      Alcotest.test_case "prepared rows bit-identical to sweep" `Quick
        test_simulate_prepared_bit_identity;
      Alcotest.test_case "daemon: cold/warm end-to-end" `Quick
        test_daemon_end_to_end;
      Alcotest.test_case "daemon: traced submit round-trip" `Quick
        test_daemon_traced_submit;
      QCheck_alcotest.to_alcotest test_tracing_observation_only;
      Alcotest.test_case "daemon: oversized traced request poisoned" `Quick
        test_traced_oversized_request;
    ] )
