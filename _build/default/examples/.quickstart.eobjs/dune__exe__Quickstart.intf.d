examples/quickstart.mli:
