examples/merge_visualizer.mli:
