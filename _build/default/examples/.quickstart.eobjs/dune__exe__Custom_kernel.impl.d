examples/custom_kernel.ml: Format Vliw_compiler Vliw_merge Vliw_sim Vliw_workloads
