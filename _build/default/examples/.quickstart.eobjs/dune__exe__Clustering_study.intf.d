examples/clustering_study.mli:
