examples/quickstart.ml: Array Format List String Vliw_compiler Vliw_cost Vliw_isa Vliw_merge Vliw_sim Vliw_workloads
