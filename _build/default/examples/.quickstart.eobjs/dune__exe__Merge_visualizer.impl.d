examples/merge_visualizer.ml: Array Format List String Vliw_isa Vliw_merge
