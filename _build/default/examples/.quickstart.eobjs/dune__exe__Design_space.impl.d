examples/design_space.ml: Format List Printf Vliw_compiler Vliw_cost Vliw_experiments Vliw_isa Vliw_merge Vliw_sim Vliw_util Vliw_workloads
