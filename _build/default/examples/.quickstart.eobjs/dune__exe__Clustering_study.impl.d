examples/clustering_study.ml: Format List Printf Vliw_compiler Vliw_isa Vliw_merge Vliw_sim Vliw_util Vliw_workloads
