(* Hand-written kernels through the textual program format: write two
   tiny VLIW programs by hand, co-schedule them on the 2-thread SMT (1S)
   and on a 2-thread CSMT merge network, and compare.

   Kernel A is a dense single-cluster loop; kernel B spreads across the
   other clusters — CSMT merges them perfectly. Then B is moved onto
   kernel A's cluster, and only SMT still manages to merge.

   Run with: dune exec examples/custom_kernel.exe *)

let profile name =
  {
    (Vliw_workloads.Benchmarks.find_exn "gsmencode") with
    Vliw_compiler.Profile.name;
    taken_prob = 0.5;
    working_set_kb = 8;
  }

let kernel_a =
  {|program kernel_a
region 0 fallthrough 0
  exit 2 -> 0
  0: ld#0 add#1 | - | - | -
  1: mpy#2 add#3 | - | - | -
  2: st#4 br#5 | - | - | -
|}

(* Same work, placed on clusters 1-3. *)
let kernel_b_disjoint =
  {|program kernel_b
region 0 fallthrough 0
  exit 2 -> 0
  0: - | ld#0 add#1 | - | -
  1: - | - | mpy#2 add#3 | -
  2: - | - | - | st#4 br#5
|}

(* Same work, colliding with kernel A on cluster 0. *)
let kernel_b_colliding =
  {|program kernel_b
region 0 fallthrough 0
  exit 2 -> 0
  0: ld#0 | add#1 | - | -
  1: mpy#2 | add#3 | - | -
  2: st#4 | br#5 | - | -
|}

let parse name text =
  match Vliw_compiler.Asm.parse ~profile:(profile name) text with
  | Ok p -> p
  | Error msg -> failwith (name ^ ": " ^ msg)

let () =
  let a = parse "kernel_a" kernel_a in
  Format.printf "Kernel A as parsed back:@.%s@." (Vliw_compiler.Asm.to_string a);
  let schedule =
    { Vliw_sim.Multitask.timeslice = 10_000; target_instrs = max_int; max_cycles = 30_000 }
  in
  let run scheme programs =
    let config = Vliw_sim.Config.make scheme in
    Vliw_sim.Metrics.ipc
      (Vliw_sim.Multitask.run_programs config ~perfect_mem:true ~seed:1L ~schedule
         programs)
  in
  let smt2 = (Vliw_merge.Catalog.find_exn "1S").scheme in
  let csmt2 = Vliw_merge.Scheme.(csmt (thread 0) (thread 1)) in
  let report label b =
    let programs = [ a; parse "kernel_b" b ] in
    Format.printf "%s:@." label;
    Format.printf "  2-thread CSMT IPC %.2f@." (run csmt2 programs);
    Format.printf "  2-thread SMT  IPC %.2f@." (run smt2 programs)
  in
  report "B on disjoint clusters (both merge)" kernel_b_disjoint;
  report "B colliding on cluster 0 (only SMT merges)" kernel_b_colliding
