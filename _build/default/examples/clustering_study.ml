(* How does the degree of clustering change the merging story?

   The paper fixes a 4x4 machine. This example keeps the total issue
   width at 16 and varies the cluster count (2x8, 4x4, 8x2), comparing
   4-thread CSMT, the mixed 2SC3 and 4-thread SMT on the same workload:
   more clusters means finer merge granularity, so cluster-level merging
   recovers more of SMT's advantage.

   Run with: dune exec examples/clustering_study.exe *)

let () =
  let mix = Vliw_workloads.Mixes.find_exn "LLMH" in
  let schedule =
    { Vliw_sim.Multitask.timeslice = 20_000; target_instrs = max_int; max_cycles = 150_000 }
  in
  let configs =
    [
      ( "1 cluster x 16-issue",
        Vliw_isa.Machine.make ~clusters:1 ~issue_width:16 ~n_lsu:4 ~n_mul:8 () );
      ( "2 clusters x 8-issue",
        Vliw_isa.Machine.make ~clusters:2 ~issue_width:8 ~n_lsu:2 ~n_mul:4 () );
      ("4 clusters x 4-issue", Vliw_isa.Machine.default);
    ]
  in
  let schemes = [ "3CCC"; "2SC3"; "3SSS" ] in
  let table =
    Vliw_util.Text_table.create
      ~header:("Machine" :: schemes @ [ "CSMT gap vs SMT" ])
  in
  List.iter
    (fun (label, machine) ->
      let rng = Vliw_util.Rng.create 5L in
      let programs =
        List.map
          (fun p ->
            Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng)
              machine p)
          mix.members
      in
      let ipc name =
        let config =
          Vliw_sim.Config.make ~machine (Vliw_merge.Catalog.find_exn name).scheme
        in
        Vliw_sim.Metrics.ipc
          (Vliw_sim.Multitask.run_programs config ~seed:3L ~schedule programs)
      in
      let values = List.map ipc schemes in
      let csmt = List.nth values 0 and smt = List.nth values 2 in
      Vliw_util.Text_table.add_row table
        (label
        :: List.map (Printf.sprintf "%.2f") values
        @ [ Printf.sprintf "%.0f%%" (Vliw_util.Stats.pct_diff smt csmt) ]))
    configs;
  Format.printf
    "Clustering degree vs merging benefit (mix %s, 16 issue slots total)@.%s"
    mix.name
    (Vliw_util.Text_table.render table)
