(* Design-space exploration beyond the paper's 15 hand-picked schemes:
   enumerate EVERY possible 4-thread merge network, evaluate its
   hardware cost analytically and its performance on a quick simulation,
   and report the Pareto front.

   Run with: dune exec examples/design_space.exe *)

module E = Vliw_experiments

let () =
  let machine = Vliw_isa.Machine.default in
  let schemes = Vliw_merge.Scheme_space.enumerate_named 4 in
  Format.printf "Enumerated %d four-thread merge networks (%d tree shapes).@."
    (List.length schemes)
    (Vliw_merge.Scheme_space.shapes 4);

  (* Quick performance estimate: one representative mixed workload. *)
  let mix = Vliw_workloads.Mixes.find_exn "LLMH" in
  let rng = Vliw_util.Rng.create 99L in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng) machine p)
      mix.members
  in
  let schedule =
    { Vliw_sim.Multitask.timeslice = 10_000; target_instrs = max_int; max_cycles = 60_000 }
  in
  let evaluate (name, scheme) =
    let config = Vliw_sim.Config.make ~machine scheme in
    let metrics = Vliw_sim.Multitask.run_programs config ~seed:7L ~schedule programs in
    ( name,
      Vliw_sim.Metrics.ipc metrics,
      Vliw_cost.Scheme_cost.transistors scheme,
      Vliw_cost.Scheme_cost.delay scheme )
  in
  let evaluated = List.map evaluate schemes in

  (* Pareto front on (transistors down, IPC up). *)
  let points = List.map (fun (n, ipc, trans, _) -> (n, trans, ipc)) evaluated in
  let front = Vliw_cost.Scheme_cost.pareto_front points in
  Format.printf "@.Pareto-optimal networks (transistors vs IPC on %s):@." mix.name;
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Structure"; "IPC"; "Transistors"; "Gate delays"; "Catalog name" ]
  in
  let catalog_name structure =
    match
      List.find_opt
        (fun (e : Vliw_merge.Catalog.entry) ->
          Vliw_merge.Scheme.to_string e.scheme = structure)
        Vliw_merge.Catalog.all
    with
    | Some e -> e.name
    | None -> "-"
  in
  List.iter
    (fun (name, ipc, trans, delay) ->
      if List.mem name front then
        Vliw_util.Text_table.add_row table
          [
            name;
            Printf.sprintf "%.2f" ipc;
            Printf.sprintf "%.0f" trans;
            Printf.sprintf "%.1f" delay;
            catalog_name name;
          ])
    (List.sort (fun (_, _, t1, _) (_, _, t2, _) -> compare t1 t2) evaluated);
  print_string (Vliw_util.Text_table.render table);

  (* How do the paper's picks fare? *)
  Format.printf "@.The paper's named schemes among %d evaluated networks:@."
    (List.length evaluated);
  List.iter
    (fun pick ->
      let e = Vliw_merge.Catalog.find_exn pick in
      let structure = Vliw_merge.Scheme.to_string e.scheme in
      let on_front = List.mem structure front in
      Format.printf "  %-5s %s -> %s@." pick structure
        (if on_front then "Pareto-optimal" else "dominated"))
    [ "C4"; "3CCC"; "2SC3"; "3SSS"; "2SC" ]
