(* Quickstart: simulate the paper's recommended scheme (2SC3) on one of
   its workload mixes and inspect the result.

   Run with: dune exec examples/quickstart.exe *)

let () =
  (* 1. The machine: the paper's 4-cluster, 4-issue-per-cluster VEX-like
     processor (64 KB caches, 20-cycle miss penalty). *)
  let machine = Vliw_isa.Machine.default in
  Format.printf "Machine: %a@." Vliw_isa.Machine.pp machine;

  (* 2. A merging scheme from the catalog. 2SC3 merges threads 0 and 1
     at operation level (SMT) and the result with threads 2 and 3 at
     cluster level (parallel CSMT). *)
  let entry = Vliw_merge.Catalog.find_exn "2SC3" in
  Format.printf "Scheme %s: %s@." entry.name
    (Vliw_merge.Scheme.to_string entry.scheme);
  Format.printf "  merge-control cost: %.0f transistors, %.1f gate delays@."
    (Vliw_cost.Scheme_cost.transistors entry.scheme)
    (Vliw_cost.Scheme_cost.delay entry.scheme);

  (* 3. A workload: Table 2's LLHH mix (two low-ILP threads, two
     high-ILP threads). *)
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  Format.printf "Workload %s: %s@." mix.name
    (String.concat ", "
       (List.map (fun (p : Vliw_compiler.Profile.t) -> p.name) mix.members));

  (* 4. Simulate. The multitasking environment compiles each profile to
     a clustered VLIW program, schedules the threads on the hardware
     contexts and runs the merge engine every cycle. *)
  let config = Vliw_sim.Config.make ~machine entry.scheme in
  let schedule =
    { Vliw_sim.Multitask.timeslice = 50_000; target_instrs = 1_000_000; max_cycles = 300_000 }
  in
  let metrics = Vliw_sim.Multitask.run config ~seed:42L ~schedule mix.members in

  (* 5. Inspect. *)
  Format.printf "@.%a@." Vliw_sim.Metrics.pp metrics;
  Format.printf "threads merged per issuing cycle: %.2f@."
    (Vliw_sim.Metrics.avg_threads_merged metrics);
  Array.iter
    (fun (pt : Vliw_sim.Metrics.per_thread) ->
      Format.printf "  %-14s %7d VLIW instructions, %8d operations@." pt.name
        pt.instrs pt.ops)
    metrics.per_thread;

  (* 6. Compare against the two extremes on the same workload. *)
  Format.printf "@.Against the extremes:@.";
  List.iter
    (fun name ->
      let e = Vliw_merge.Catalog.find_exn name in
      let config = Vliw_sim.Config.make ~machine e.scheme in
      let m = Vliw_sim.Multitask.run config ~seed:42L ~schedule mix.members in
      Format.printf "  %-5s IPC %.2f (%6.0f transistors)@." name
        (Vliw_sim.Metrics.ipc m)
        (Vliw_cost.Scheme_cost.transistors e.scheme))
    [ "3CCC"; "2SC3"; "3SSS" ]
