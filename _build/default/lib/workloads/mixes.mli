(** The 9 workload configurations of Table 2. *)

type t = {
  name : string;  (** ILP combination label, e.g. "LLHH". *)
  members : Vliw_compiler.Profile.t list;  (** Thread 0 .. Thread 3. *)
}

val all : t list
(** Table 2 order: LLLL, LMMH, MMMM, LLMM, LLMH, LLHH, LMHH, MMHH,
    HHHH. *)

val find : string -> t option

val find_exn : string -> t

val names : string list

val label_consistent : t -> bool
(** The mix name matches the sorted ILP letters of its members (a Table 2
    integrity check used by tests). *)
