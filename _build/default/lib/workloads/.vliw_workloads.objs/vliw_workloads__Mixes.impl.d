lib/workloads/mixes.ml: Benchmarks List Printf String Vliw_compiler
