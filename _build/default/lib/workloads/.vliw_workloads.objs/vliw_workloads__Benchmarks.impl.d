lib/workloads/benchmarks.ml: List Printf String Vliw_compiler
