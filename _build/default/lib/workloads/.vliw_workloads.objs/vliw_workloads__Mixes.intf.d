lib/workloads/mixes.mli: Vliw_compiler
