lib/workloads/benchmarks.mli: Vliw_compiler
