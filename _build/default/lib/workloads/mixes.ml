type t = { name : string; members : Vliw_compiler.Profile.t list }

open Benchmarks

let all =
  [
    { name = "LLLL"; members = [ mcf; bzip2; blowfish; gsmencode ] };
    { name = "LMMH"; members = [ bzip2; cjpeg; djpeg; imgpipe ] };
    { name = "MMMM"; members = [ g721encode; g721decode; cjpeg; djpeg ] };
    { name = "LLMM"; members = [ gsmencode; blowfish; g721encode; djpeg ] };
    { name = "LLMH"; members = [ mcf; blowfish; cjpeg; x264 ] };
    { name = "LLHH"; members = [ mcf; blowfish; x264; idct ] };
    { name = "LMHH"; members = [ gsmencode; g721encode; imgpipe; colorspace ] };
    { name = "MMHH"; members = [ djpeg; g721decode; idct; colorspace ] };
    { name = "HHHH"; members = [ x264; idct; imgpipe; colorspace ] };
  ]

let find name =
  let target = String.uppercase_ascii name in
  List.find_opt (fun m -> m.name = target) all

let find_exn name =
  match find name with
  | Some m -> m
  | None -> invalid_arg (Printf.sprintf "Mixes.find_exn: unknown mix %S" name)

let names = List.map (fun m -> m.name) all

let label_consistent m =
  let letters =
    List.map
      (fun (p : Vliw_compiler.Profile.t) -> Vliw_compiler.Profile.ilp_letter p.ilp)
      m.members
  in
  let name_letters =
    List.init (String.length m.name) (fun i -> String.make 1 m.name.[i])
  in
  List.sort compare letters = List.sort compare name_letters
