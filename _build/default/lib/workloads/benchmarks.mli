(** The 12 benchmarks of Table 1, as synthetic profiles.

    Parameters are calibrated so that single-thread simulation on the
    default machine reproduces the paper's IPCr (real memory) and IPCp
    (perfect memory) columns; the calibration is checked by tests with a
    tolerance and reported in EXPERIMENTS.md. *)

val mcf : Vliw_compiler.Profile.t
val bzip2 : Vliw_compiler.Profile.t
val blowfish : Vliw_compiler.Profile.t
val gsmencode : Vliw_compiler.Profile.t
val g721encode : Vliw_compiler.Profile.t
val g721decode : Vliw_compiler.Profile.t
val cjpeg : Vliw_compiler.Profile.t
val djpeg : Vliw_compiler.Profile.t
val imgpipe : Vliw_compiler.Profile.t
val x264 : Vliw_compiler.Profile.t
val idct : Vliw_compiler.Profile.t
val colorspace : Vliw_compiler.Profile.t

val all : Vliw_compiler.Profile.t list
(** Table 1 order. *)

val find : string -> Vliw_compiler.Profile.t option
(** Case-insensitive lookup by name. *)

val find_exn : string -> Vliw_compiler.Profile.t

val by_ilp : Vliw_compiler.Profile.ilp_degree -> Vliw_compiler.Profile.t list
