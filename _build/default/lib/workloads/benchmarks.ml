open Vliw_compiler.Profile

(* Calibration notes: [dag_parallelism] is the main IPCp knob (together
   with the mul/mem latency share and the taken-branch rate, which insert
   schedule bubbles); [working_set_kb] and [seq_frac] set the IPCr gap
   via the D-Cache miss rate (64 KB cache: working sets well under 64 KB
   barely miss, larger ones miss roughly in proportion to 1 - seq_frac);
   [static_blocks] sets the I-Cache footprint. *)

let profile ~name ~ilp ~description ~block_ops_mean ~dag_parallelism ~frac_mem
    ~frac_mul ~store_frac ~working_set_kb ~seq_frac ~taken_prob ~static_blocks
    ~hot_frac ~target_ipc_real ~target_ipc_perfect =
  let p =
    {
      name;
      ilp;
      description;
      block_ops_mean;
      dag_parallelism;
      frac_mem;
      frac_mul;
      store_frac;
      working_set_kb;
      seq_frac;
      taken_prob;
      static_blocks;
      hot_frac;
      target_ipc_real;
      target_ipc_perfect;
    }
  in
  match validate p with
  | Ok () -> p
  | Error msg -> invalid_arg (name ^ ": " ^ msg)

let mcf =
  profile ~name:"mcf" ~ilp:Low ~description:"Minimum Cost Flow"
    ~block_ops_mean:9 ~dag_parallelism:2.0 ~frac_mem:0.30 ~frac_mul:0.02
    ~store_frac:0.25 ~working_set_kb:4096 ~seq_frac:0.935 ~taken_prob:0.45
    ~static_blocks:60 ~hot_frac:0.80 ~target_ipc_real:0.96
    ~target_ipc_perfect:1.34

let bzip2 =
  profile ~name:"bzip2" ~ilp:Low ~description:"Bzip2 Compression"
    ~block_ops_mean:7 ~dag_parallelism:1.1 ~frac_mem:0.22 ~frac_mul:0.03
    ~store_frac:0.35 ~working_set_kb:96 ~seq_frac:0.99 ~taken_prob:0.50
    ~static_blocks:80 ~hot_frac:0.75 ~target_ipc_real:0.81
    ~target_ipc_perfect:0.83

let blowfish =
  profile ~name:"blowfish" ~ilp:Low ~description:"Encryption"
    ~block_ops_mean:12 ~dag_parallelism:2.25 ~frac_mem:0.20 ~frac_mul:0.04
    ~store_frac:0.30 ~working_set_kb:512 ~seq_frac:0.94 ~taken_prob:0.35
    ~static_blocks:40 ~hot_frac:0.85 ~target_ipc_real:1.11
    ~target_ipc_perfect:1.47

let gsmencode =
  profile ~name:"gsmencode" ~ilp:Low ~description:"GSM Encoder"
    ~block_ops_mean:10 ~dag_parallelism:1.55 ~frac_mem:0.12 ~frac_mul:0.10
    ~store_frac:0.25 ~working_set_kb:16 ~seq_frac:0.80 ~taken_prob:0.40
    ~static_blocks:50 ~hot_frac:0.85 ~target_ipc_real:1.07
    ~target_ipc_perfect:1.07

let g721encode =
  profile ~name:"g721encode" ~ilp:Medium ~description:"G721 Encoder"
    ~block_ops_mean:22 ~dag_parallelism:2.5 ~frac_mem:0.14 ~frac_mul:0.08
    ~store_frac:0.25 ~working_set_kb:24 ~seq_frac:0.75 ~taken_prob:0.35
    ~static_blocks:60 ~hot_frac:0.85 ~target_ipc_real:1.75
    ~target_ipc_perfect:1.76

let g721decode =
  profile ~name:"g721decode" ~ilp:Medium ~description:"G721 Decoder"
    ~block_ops_mean:22 ~dag_parallelism:2.55 ~frac_mem:0.14 ~frac_mul:0.08
    ~store_frac:0.30 ~working_set_kb:24 ~seq_frac:0.75 ~taken_prob:0.35
    ~static_blocks:55 ~hot_frac:0.85 ~target_ipc_real:1.75
    ~target_ipc_perfect:1.76

let cjpeg =
  profile ~name:"cjpeg" ~ilp:Medium ~description:"Jpeg Encoder"
    ~block_ops_mean:26 ~dag_parallelism:2.5 ~frac_mem:0.25 ~frac_mul:0.10
    ~store_frac:0.35 ~working_set_kb:1024 ~seq_frac:0.94 ~taken_prob:0.30
    ~static_blocks:70 ~hot_frac:0.80 ~target_ipc_real:1.12
    ~target_ipc_perfect:1.66

let djpeg =
  profile ~name:"djpeg" ~ilp:Medium ~description:"Jpeg Decoder"
    ~block_ops_mean:26 ~dag_parallelism:2.7 ~frac_mem:0.18 ~frac_mul:0.10
    ~store_frac:0.40 ~working_set_kb:48 ~seq_frac:0.85 ~taken_prob:0.30
    ~static_blocks:70 ~hot_frac:0.80 ~target_ipc_real:1.76
    ~target_ipc_perfect:1.77

let imgpipe =
  profile ~name:"imgpipe" ~ilp:High ~description:"Imaging pipeline"
    ~block_ops_mean:90 ~dag_parallelism:5.6 ~frac_mem:0.20 ~frac_mul:0.12
    ~store_frac:0.40 ~working_set_kb:384 ~seq_frac:0.995 ~taken_prob:0.20
    ~static_blocks:20 ~hot_frac:0.85 ~target_ipc_real:3.81
    ~target_ipc_perfect:4.05

let x264 =
  profile ~name:"x264" ~ilp:High ~description:"H.264 encoder"
    ~block_ops_mean:80 ~dag_parallelism:5.55 ~frac_mem:0.22 ~frac_mul:0.08
    ~store_frac:0.35 ~working_set_kb:80 ~seq_frac:0.997 ~taken_prob:0.25
    ~static_blocks:24 ~hot_frac:0.75 ~target_ipc_real:3.89
    ~target_ipc_perfect:4.04

let idct =
  profile ~name:"idct" ~ilp:High ~description:"Inverse Discrete Cosine Transform"
    ~block_ops_mean:110 ~dag_parallelism:7.6 ~frac_mem:0.18 ~frac_mul:0.16
    ~store_frac:0.40 ~working_set_kb:128 ~seq_frac:0.994 ~taken_prob:0.15
    ~static_blocks:25 ~hot_frac:0.90 ~target_ipc_real:4.79
    ~target_ipc_perfect:5.27

let colorspace =
  profile ~name:"colorspace" ~ilp:High ~description:"Colorspace Conversion"
    ~block_ops_mean:170 ~dag_parallelism:12.5 ~frac_mem:0.22 ~frac_mul:0.14
    ~store_frac:0.45 ~working_set_kb:2048 ~seq_frac:0.974 ~taken_prob:0.10
    ~static_blocks:15 ~hot_frac:0.90 ~target_ipc_real:5.47
    ~target_ipc_perfect:8.88

let all =
  [
    mcf;
    bzip2;
    blowfish;
    gsmencode;
    g721encode;
    g721decode;
    cjpeg;
    djpeg;
    imgpipe;
    x264;
    idct;
    colorspace;
  ]

let find name =
  let target = String.lowercase_ascii name in
  List.find_opt (fun p -> String.lowercase_ascii p.name = target) all

let find_exn name =
  match find name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "Benchmarks.find_exn: unknown benchmark %S" name)

let by_ilp degree = List.filter (fun p -> p.ilp = degree) all
