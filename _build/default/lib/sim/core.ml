module Isa = Vliw_isa
module Merge = Vliw_merge
module Mem = Vliw_mem

type t = {
  config : Config.t;
  mem : Mem.Mem_system.t;
  predictor : Predictor.t;
  n : int;
  mutable contexts : Thread_state.t option array;
  mutable cycle : int;
  mutable ops : int;
  mutable instrs : int;
  mutable vertical : int;
  issue_hist : int array;
  avail : Merge.Packet.t option array;  (* scratch, reused every cycle *)
  mutable bmt_current : int;  (* thread owning the pipeline under BMT *)
  mutable switch_stall_until : int;  (* BMT context-switch bubble *)
}

let create config mem =
  let n = Config.contexts config in
  {
    config;
    mem;
    predictor = Predictor.create config.Config.machine.predictor;
    n;
    contexts = Array.make n None;
    cycle = 0;
    ops = 0;
    instrs = 0;
    vertical = 0;
    issue_hist = Array.make (n + 1) 0;
    avail = Array.make n None;
    bmt_current = 0;
    switch_stall_until = 0;
  }

let install t contexts =
  if Array.length contexts <> t.n then
    invalid_arg "Core.install: context count mismatch";
  t.contexts <- contexts

(* Fetch the thread's next instruction if needed; an ICache miss stalls
   the thread and yields no candidate this cycle. *)
let candidate t (th : Thread_state.t) =
  if Thread_state.stalled th ~now:t.cycle then None
  else begin
    match th.pending with
    | Some instr -> Some instr
    | None ->
      let instr = Thread_state.current_instr th in
      th.pending <- Some instr;
      let stall = Mem.Mem_system.ifetch t.mem instr.addr in
      if stall > 0 then begin
        th.resume_at <- t.cycle + stall;
        None
      end
      else Some instr
  end

let retire t (th : Thread_state.t) (instr : Isa.Instr.t) =
  th.instrs_retired <- th.instrs_retired + 1;
  th.ops_retired <- th.ops_retired + Isa.Instr.op_count instr;
  let stall = ref 0 in
  List.iter
    (fun (_ : Isa.Op.t) ->
      let addr = Mem.Addr_stream.next th.addr_stream in
      let s = Mem.Mem_system.daccess t.mem addr in
      if t.config.stall_on_dmiss then stall := !stall + s)
    (Isa.Instr.mem_ops instr);
  if Isa.Instr.has_branch instr then begin
    let taken =
      Vliw_util.Rng.bernoulli th.ctrl_rng th.program.profile.taken_prob
    in
    let target =
      match
        Vliw_compiler.Program.exit_target th.program.blocks.(th.block) th.pc
      with
      | Some target -> target
      | None -> assert false (* every branch instruction is an exit *)
    in
    let correct =
      Predictor.predict_and_update t.predictor ~addr:instr.addr ~taken
    in
    if not correct then stall := !stall + t.config.machine.branch_penalty;
    if taken then Thread_state.jump_taken th ~target
    else Thread_state.advance_fall_through th
  end
  else Thread_state.advance_fall_through th;
  th.pending <- None;
  th.resume_at <- t.cycle + 1 + !stall

(* Round-robin search for the first thread with a candidate, starting
   at [start]. *)
let first_ready t start =
  let rec go i =
    if i >= t.n then None
    else begin
      let hw = (start + i) mod t.n in
      match t.avail.(hw) with Some p -> Some (hw, p) | None -> go (i + 1)
    end
  in
  go 0

let select_policy t ~rotation : Merge.Engine.selection =
  match t.config.policy with
  | Policy.Merged ->
    Merge.Engine.select t.config.machine ~routing:t.config.routing
      t.config.scheme ~rotation t.avail
  | Policy.Imt ->
    (* One thread per cycle, round-robin with stalled-thread skipping. *)
    (match first_ready t (t.cycle mod t.n) with
    | None -> { packet = None; issued = [] }
    | Some (hw, p) -> { packet = Some p; issued = [ hw ] })
  | Policy.Bmt { switch_penalty } ->
    if t.cycle < t.switch_stall_until then { packet = None; issued = [] }
    else begin
      match t.avail.(t.bmt_current) with
      | Some p -> { packet = Some p; issued = [ t.bmt_current ] }
      | None ->
        (* The running thread blocked: switch to the next ready one. *)
        (match first_ready t ((t.bmt_current + 1) mod t.n) with
        | Some (hw, p) when hw <> t.bmt_current ->
          t.bmt_current <- hw;
          if switch_penalty = 0 then { packet = Some p; issued = [ hw ] }
          else begin
            t.switch_stall_until <- t.cycle + switch_penalty;
            { packet = None; issued = [] }
          end
        | Some (hw, p) -> { packet = Some p; issued = [ hw ] }
        | None -> { packet = None; issued = [] })
    end

type cycle_record = {
  cycle : int;
  candidates : (int * Merge.Packet.t) list;
  issued : int list;
  packet : Merge.Packet.t option;
}

let step_record t =
  for i = 0 to t.n - 1 do
    t.avail.(i) <-
      (match t.contexts.(i) with
      | None -> None
      | Some th ->
        (match candidate t th with
        | None -> None
        | Some instr -> Some (Merge.Packet.of_instr ~thread:i instr)))
  done;
  let rotation = if t.config.rotate_priority then t.cycle mod t.n else 0 in
  let sel = select_policy t ~rotation in
  let issued_ops = ref 0 in
  List.iter
    (fun hw ->
      match t.contexts.(hw) with
      | None -> assert false
      | Some th ->
        let instr = Option.get th.pending in
        issued_ops := !issued_ops + Isa.Instr.op_count instr;
        retire t th instr)
    sel.issued;
  t.ops <- t.ops + !issued_ops;
  t.instrs <- t.instrs + List.length sel.issued;
  t.issue_hist.(List.length sel.issued) <-
    t.issue_hist.(List.length sel.issued) + 1;
  if !issued_ops = 0 then t.vertical <- t.vertical + 1;
  let record =
    {
      cycle = t.cycle;
      candidates =
        Array.to_list t.avail
        |> List.mapi (fun i p -> (i, p))
        |> List.filter_map (fun (i, p) -> Option.map (fun p -> (i, p)) p);
      issued = sel.issued;
      packet = sel.packet;
    }
  in
  t.cycle <- t.cycle + 1;
  record

let step t = ignore (step_record t)

let cycle (t : t) = t.cycle

let ops_issued t = t.ops

let instrs_issued t = t.instrs

let issue_hist t = Array.copy t.issue_hist

let vertical_waste_cycles t = t.vertical

let metrics t ~all_threads : Metrics.t =
  let ia, im = Mem.Mem_system.icache_stats t.mem in
  let da, dm = Mem.Mem_system.dcache_stats t.mem in
  {
    cycles = t.cycle;
    ops = t.ops;
    instrs = t.instrs;
    issue_hist = Array.copy t.issue_hist;
    vertical_waste_cycles = t.vertical;
    slots_offered = t.cycle * Isa.Machine.total_issue t.config.machine;
    icache_accesses = ia;
    icache_misses = im;
    dcache_accesses = da;
    dcache_misses = dm;
    per_thread =
      Array.map
        (fun (th : Thread_state.t) ->
          {
            Metrics.name = Thread_state.name th;
            ops = th.ops_retired;
            instrs = th.instrs_retired;
          })
        all_threads;
  }
