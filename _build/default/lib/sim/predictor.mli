(** Branch predictor models.

    The paper's machine predicts fall-through always (every taken branch
    pays the squash penalty). The bimodal extension keeps a table of
    2-bit saturating counters indexed by instruction address, shared by
    all hardware threads (aliasing included), and charges the penalty
    only on mispredictions — used by the sensitivity extension to ask
    how much of the multithreading benefit a predictor would erode. *)

type t

val create : Vliw_isa.Machine.predictor -> t

val predict_and_update : t -> addr:int -> taken:bool -> bool
(** [predict_and_update t ~addr ~taken] returns whether the prediction
    was correct, updating predictor state with the actual outcome. With
    [No_predictor], the prediction is always "not taken". *)

val accuracy : t -> float
(** Fraction of correct predictions so far (1.0 when never asked). *)
