lib/sim/trace.mli: Config Vliw_compiler
