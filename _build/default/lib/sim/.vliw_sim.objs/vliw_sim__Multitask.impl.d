lib/sim/multitask.ml: Array Config Core Fun Int64 List Thread_state Vliw_compiler Vliw_mem Vliw_util
