lib/sim/config.ml: Policy Vliw_isa Vliw_merge
