lib/sim/trace.ml: Array Buffer Config Core Format List Printf String Thread_state Vliw_compiler Vliw_isa Vliw_mem Vliw_merge Vliw_util
