lib/sim/policy.mli:
