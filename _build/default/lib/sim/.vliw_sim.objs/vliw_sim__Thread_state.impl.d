lib/sim/thread_state.ml: Array Printf Vliw_compiler Vliw_isa Vliw_mem Vliw_util
