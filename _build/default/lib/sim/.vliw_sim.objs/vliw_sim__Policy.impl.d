lib/sim/policy.ml: Printf
