lib/sim/thread_state.mli: Vliw_compiler Vliw_isa Vliw_mem Vliw_util
