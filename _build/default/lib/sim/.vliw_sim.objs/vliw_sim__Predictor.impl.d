lib/sim/predictor.ml: Array Vliw_isa
