lib/sim/core.ml: Array Config List Metrics Option Policy Predictor Thread_state Vliw_compiler Vliw_isa Vliw_mem Vliw_merge Vliw_util
