lib/sim/predictor.mli: Vliw_isa
