lib/sim/core.mli: Config Metrics Thread_state Vliw_mem Vliw_merge
