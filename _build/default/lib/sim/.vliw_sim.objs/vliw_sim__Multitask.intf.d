lib/sim/multitask.mli: Config Metrics Vliw_compiler
