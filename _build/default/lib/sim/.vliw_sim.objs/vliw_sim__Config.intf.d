lib/sim/config.mli: Policy Vliw_isa Vliw_merge
