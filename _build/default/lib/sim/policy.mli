(** Issue policies: the paper's merging schemes plus the classic
    multithreading baselines it positions itself against (§1).

    - [Merged]: the merge network selects and combines instructions from
      several threads each cycle (SMT/CSMT/mixed, §2).
    - [Imt]: interleaved multithreading — one thread issues per cycle,
      round-robin over ready threads (Tera/HEP style with stalled-thread
      skipping); converts vertical waste only.
    - [Bmt]: block multithreading — the current thread runs until it
      blocks on a long-latency event, then the core switches to the next
      ready thread, paying a switch penalty. *)

type t =
  | Merged
  | Imt
  | Bmt of { switch_penalty : int }

val default_bmt : t
(** 1-cycle switch penalty. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** "merged" | "imt" | "bmt" (default penalty). *)
