(** Simulation counters and derived figures of merit. *)

type per_thread = {
  name : string;
  ops : int;
  instrs : int;  (** VLIW instructions retired. *)
}

type t = {
  cycles : int;
  ops : int;  (** Operations issued (the paper's IPC counts these). *)
  instrs : int;  (** VLIW instructions issued across all threads. *)
  issue_hist : int array;
      (** [issue_hist.(k)] = cycles in which exactly [k] threads issued. *)
  vertical_waste_cycles : int;  (** Cycles with no operation issued. *)
  slots_offered : int;  (** cycles x total issue width. *)
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  per_thread : per_thread array;
}

val ipc : t -> float
(** Operations per cycle. *)

val instr_ipc : t -> float
(** VLIW instructions per cycle (merging degree). *)

val horizontal_waste : t -> float
(** Fraction of issue slots left empty in cycles that issued at least one
    operation. *)

val vertical_waste : t -> float
(** Fraction of cycles that issued nothing. *)

val dcache_miss_rate : t -> float

val icache_miss_rate : t -> float

val avg_threads_merged : t -> float
(** Mean number of threads issuing per non-empty cycle. *)

val pp : Format.formatter -> t -> unit
