type kind = Static | Table of int array  (* 2-bit saturating counters *)

type t = {
  kind : kind;
  mutable queries : int;
  mutable correct : int;
}

let create = function
  | Vliw_isa.Machine.No_predictor -> { kind = Static; queries = 0; correct = 0 }
  | Vliw_isa.Machine.Bimodal entries ->
    if entries <= 0 || entries land (entries - 1) <> 0 then
      invalid_arg "Predictor.create: entries must be a positive power of two";
    (* Counters start weakly not-taken, matching the static machine. *)
    { kind = Table (Array.make entries 1); queries = 0; correct = 0 }

let predict_and_update t ~addr ~taken =
  t.queries <- t.queries + 1;
  let prediction =
    match t.kind with
    | Static -> false
    | Table counters ->
      (* Instructions are 64 bytes apart; drop the offset bits. *)
      let idx = (addr lsr 6) land (Array.length counters - 1) in
      let c = counters.(idx) in
      counters.(idx) <- (if taken then min 3 (c + 1) else max 0 (c - 1));
      c >= 2
  in
  let correct = prediction = taken in
  if correct then t.correct <- t.correct + 1;
  correct

let accuracy t =
  if t.queries = 0 then 1.0 else float_of_int t.correct /. float_of_int t.queries
