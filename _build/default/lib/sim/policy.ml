type t = Merged | Imt | Bmt of { switch_penalty : int }

let default_bmt = Bmt { switch_penalty = 1 }

let to_string = function
  | Merged -> "merged"
  | Imt -> "imt"
  | Bmt { switch_penalty } -> Printf.sprintf "bmt(switch=%d)" switch_penalty

let of_string = function
  | "merged" -> Ok Merged
  | "imt" -> Ok Imt
  | "bmt" -> Ok default_bmt
  | s -> Error (Printf.sprintf "unknown policy %S (merged|imt|bmt)" s)
