(** Simulator configuration knobs (machine, scheme, ablation switches). *)

type t = {
  machine : Vliw_isa.Machine.t;
  scheme : Vliw_merge.Scheme.t;
  rotate_priority : bool;
      (** Round-robin remapping of hardware threads to scheme input ports
          (the fairness mechanism; [false] pins thread 0 to the highest
          priority port — an ablation). *)
  stall_on_dmiss : bool;
      (** Blocking data-cache misses (the paper's model). [false] models
          an ideal non-blocking memory pipeline — an ablation. *)
  routing : Vliw_merge.Conflict.routing_mode;
      (** SMT conflict-check variant; [Fixed_slots] removes the routing
          block — an ablation. *)
  policy : Policy.t;
      (** Issue policy; [Imt] and [Bmt] ignore the merge network and use
          the scheme only for its thread-context count. *)
}

val make :
  ?machine:Vliw_isa.Machine.t ->
  ?rotate_priority:bool ->
  ?stall_on_dmiss:bool ->
  ?routing:Vliw_merge.Conflict.routing_mode ->
  ?policy:Policy.t ->
  Vliw_merge.Scheme.t ->
  t

val contexts : t -> int
(** Hardware thread contexts = scheme input ports. *)
