type t = {
  machine : Vliw_isa.Machine.t;
  scheme : Vliw_merge.Scheme.t;
  rotate_priority : bool;
  stall_on_dmiss : bool;
  routing : Vliw_merge.Conflict.routing_mode;
  policy : Policy.t;
}

let make ?(machine = Vliw_isa.Machine.default) ?(rotate_priority = true)
    ?(stall_on_dmiss = true) ?(routing = Vliw_merge.Conflict.Flexible)
    ?(policy = Policy.Merged) scheme =
  (match Vliw_merge.Scheme.validate scheme with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Config.make: invalid scheme: " ^ msg));
  { machine; scheme; rotate_priority; stall_on_dmiss; routing; policy }

let contexts t = Vliw_merge.Scheme.n_threads t.scheme
