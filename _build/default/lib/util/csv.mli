(** Minimal CSV writer for exporting experiment data to plotting tools.

    Fields containing commas, quotes or newlines are quoted and escaped
    per RFC 4180. *)

val escape_field : string -> string

val to_string : header:string list -> string list list -> string

val write : path:string -> header:string list -> string list list -> unit
(** Writes the file, overwriting any existing content. *)
