let sum xs = Array.fold_left ( +. ) 0.0 xs

let mean xs =
  let n = Array.length xs in
  if n = 0 then 0.0 else sum xs /. float_of_int n

let geomean xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let acc = Array.fold_left (fun acc x -> acc +. log x) 0.0 xs in
    exp (acc /. float_of_int n)
  end

let stddev xs =
  let n = Array.length xs in
  if n = 0 then 0.0
  else begin
    let m = mean xs in
    let var = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 xs in
    sqrt (var /. float_of_int n)
  end

let sorted_copy xs =
  let ys = Array.copy xs in
  Array.sort compare ys;
  ys

let median xs =
  let ys = sorted_copy xs in
  let n = Array.length ys in
  assert (n > 0);
  if n mod 2 = 1 then ys.(n / 2) else (ys.((n / 2) - 1) +. ys.(n / 2)) /. 2.0

let percentile xs p =
  let ys = sorted_copy xs in
  let n = Array.length ys in
  assert (n > 0 && p >= 0.0 && p <= 100.0);
  if n = 1 then ys.(0)
  else begin
    let rank = p /. 100.0 *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor rank) in
    let hi = min (lo + 1) (n - 1) in
    let frac = rank -. float_of_int lo in
    ys.(lo) +. (frac *. (ys.(hi) -. ys.(lo)))
  end

let min_max xs =
  assert (Array.length xs > 0);
  Array.fold_left
    (fun (mn, mx) x -> (min mn x, max mx x))
    (xs.(0), xs.(0))
    xs

let pct_diff a b = (a -. b) /. b *. 100.0

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

let summarize xs =
  let mn, mx = min_max xs in
  {
    n = Array.length xs;
    mean = mean xs;
    stddev = stddev xs;
    min = mn;
    max = mx;
    median = median xs;
  }

let pp_summary ppf s =
  Format.fprintf ppf "n=%d mean=%.3f sd=%.3f min=%.3f med=%.3f max=%.3f" s.n
    s.mean s.stddev s.min s.median s.max
