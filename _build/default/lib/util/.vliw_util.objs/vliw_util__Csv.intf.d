lib/util/csv.mli:
