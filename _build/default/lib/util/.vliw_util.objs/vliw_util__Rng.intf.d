lib/util/rng.mli:
