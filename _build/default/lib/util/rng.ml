type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = seed }

let copy t = { state = t.state }

(* SplitMix64 step: advance by the golden gamma and scramble. *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = create (next_int64 t)

let int t bound =
  assert (bound > 0);
  let mask = Int64.shift_right_logical (next_int64 t) 1 in
  Int64.to_int (Int64.rem mask (Int64.of_int bound))

let int_in t lo hi =
  assert (hi >= lo);
  lo + int t (hi - lo + 1)

let float t bound =
  let mask = Int64.shift_right_logical (next_int64 t) 11 in
  Int64.to_float mask /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let bernoulli t p = float t 1.0 < p

let geometric t p =
  assert (p > 0.0 && p <= 1.0);
  if p >= 1.0 then 0
  else begin
    let u = float t 1.0 in
    let u = if u <= 0.0 then min_float else u in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))
  end

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then min_float else u in
  -.mean *. log u

let gaussian t ~mu ~sigma =
  let u1 = float t 1.0 and u2 = float t 1.0 in
  let u1 = if u1 <= 0.0 then min_float else u1 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let choose t arr =
  assert (Array.length arr > 0);
  arr.(int t (Array.length arr))

let choose_weighted t items =
  let total = Array.fold_left (fun acc (_, w) -> acc +. w) 0.0 items in
  assert (total > 0.0);
  let target = float t total in
  let rec pick i acc =
    if i = Array.length items - 1 then fst items.(i)
    else
      let acc = acc +. snd items.(i) in
      if target < acc then fst items.(i) else pick (i + 1) acc
  in
  pick 0 0.0

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
