(** Small statistics toolbox for experiment reporting. *)

val mean : float array -> float
(** Arithmetic mean; 0 for the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values; 0 for the empty array. *)

val stddev : float array -> float
(** Population standard deviation. *)

val median : float array -> float
(** Median (averages the two central elements for even lengths). *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation. *)

val min_max : float array -> float * float
(** Smallest and largest element of a non-empty array. *)

val sum : float array -> float

val pct_diff : float -> float -> float
(** [pct_diff a b] is [(a - b) / b * 100.], the percentage by which [a]
    exceeds [b]. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Full summary of a non-empty array. *)

val pp_summary : Format.formatter -> summary -> unit
