(** Deterministic pseudo-random number generator (SplitMix64).

    Every stochastic component of the simulator draws from an explicit
    [Rng.t] so that whole experiments are reproducible from a single seed
    and independent components can be given independent streams via
    {!split}. *)

type t

val create : int64 -> t
(** [create seed] returns a fresh generator. Distinct seeds give
    independent-looking streams. *)

val copy : t -> t
(** [copy t] duplicates the generator state; the copy evolves
    independently. *)

val split : t -> t
(** [split t] draws from [t] and returns a new generator whose stream is
    statistically independent of [t]'s subsequent output. *)

val next_int64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] (inclusive). *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val geometric : t -> float -> int
(** [geometric t p] counts Bernoulli([p]) failures before the first
    success; mean [(1-p)/p]. [p] must be in (0, 1]. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Normal variate via Box–Muller. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> ('a * float) array -> 'a
(** [choose_weighted t items] picks proportionally to the (non-negative,
    not all zero) weights. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
