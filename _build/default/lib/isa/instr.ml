type t = { ops : Op.t list array; addr : int }

let make ~clusters ~addr = { ops = Array.make clusters []; addr }

let of_cluster_ops ~addr ops = { ops; addr }

let cluster_mask t =
  let mask = ref 0 in
  Array.iteri (fun c ops -> if ops <> [] then mask := !mask lor (1 lsl c)) t.ops;
  !mask

let op_count t = Array.fold_left (fun acc ops -> acc + List.length ops) 0 t.ops

let ops_in t c = t.ops.(c)

let is_empty t = Array.for_all (fun ops -> ops = []) t.ops

let has_branch t =
  Array.exists (List.exists (fun (op : Op.t) -> op.klass = Op.Branch)) t.ops

let mem_ops t =
  Array.fold_left
    (fun acc ops -> acc @ List.filter Op.is_mem ops)
    [] t.ops

let class_counts ops ~mem ~mul ~branch ~alu =
  let count (op : Op.t) =
    match op.klass with
    | Op.Load | Op.Store -> incr mem
    | Op.Mul -> incr mul
    | Op.Branch -> incr branch
    | Op.Alu | Op.Copy -> incr alu
  in
  List.iter count ops

let fits_cluster (m : Machine.t) ops =
  let mem = ref 0 and mul = ref 0 and branch = ref 0 and alu = ref 0 in
  class_counts ops ~mem ~mul ~branch ~alu;
  !mem <= m.n_lsu && !mul <= m.n_mul && !branch <= m.n_branch
  && !mem + !mul + !branch + !alu <= m.issue_width

let well_formed (m : Machine.t) t =
  Array.length t.ops = m.clusters && Array.for_all (fits_cluster m) t.ops

(* Greedy slot assignment for display: fixed-slot classes claim their
   dedicated slots, ALU operations fill whatever is left. *)
let slot_layout (m : Machine.t) ops =
  let slots = Array.make m.issue_width None in
  let place pred op =
    let rec find s =
      if s >= m.issue_width then None
      else if slots.(s) = None && pred s then Some s
      else find (s + 1)
    in
    match find 0 with
    | Some s -> slots.(s) <- Some op
    | None -> ()
  in
  let flexible (op : Op.t) =
    match op.klass with Op.Alu | Op.Copy -> true | _ -> false
  in
  let fixed, alus = List.partition (fun op -> not (flexible op)) ops in
  List.iter
    (fun (op : Op.t) -> place (fun s -> Machine.slot_allows m ~slot:s op.klass) op)
    fixed;
  List.iter (fun op -> place (fun _ -> true) op) alus;
  slots

let pp m ppf t =
  Array.iteri
    (fun c ops ->
      if c > 0 then Format.fprintf ppf " |";
      let slots = slot_layout m ops in
      Array.iter
        (fun slot ->
          match slot with
          | None -> Format.fprintf ppf " %4s" "-"
          | Some (op : Op.t) -> Format.fprintf ppf " %4s" (Op.class_name op.klass))
        slots)
    t.ops
