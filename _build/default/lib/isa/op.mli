(** VLIW operations.

    The base architecture (VEX / HP-ST Lx family, §5.1 of the paper)
    distinguishes four operation classes. ALU operations may execute in
    any issue slot; memory, multiply and branch operations are restricted
    to fixed slots — this asymmetry is what makes operation-level (SMT)
    merging non-trivial. *)

type op_class =
  | Alu
  | Mul
  | Load
  | Store
  | Branch
  | Copy
      (** Inter-cluster move inserted by the cluster-assignment pass;
          executes in any slot of the source cluster, single-cycle. *)

type t = {
  klass : op_class;
  id : int;  (** Unique id within the enclosing program, for tracing. *)
}

val make : op_class -> int -> t

val is_mem : t -> bool
(** Loads and stores. *)

val class_name : op_class -> string
(** Short mnemonic used in trace dumps ("add", "mpy", "ld", "st", "br"). *)

val all_classes : op_class list

val equal_class : op_class -> op_class -> bool

val pp : Format.formatter -> t -> unit

val pp_class : Format.formatter -> op_class -> unit
