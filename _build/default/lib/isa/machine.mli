(** Clustered VLIW machine configuration.

    The default configuration mirrors the paper's experimental setup
    (§5.1): 4 clusters, 4-issue per cluster (16-issue total); per cluster
    as many ALUs as issue slots, 2 multipliers and 1 load/store unit; one
    branch slot per cluster; multiply and memory latency of 2 cycles,
    everything else single-cycle; no branch predictor, 2-cycle taken
    branch penalty; 64 KB 4-way ICache and DCache with a 20-cycle miss
    penalty. *)

type cache_geom = {
  size_bytes : int;
  ways : int;
  line_bytes : int;
}

type predictor =
  | No_predictor
      (** The paper's machine: fall-through is always predicted, every
          taken branch pays [branch_penalty]. *)
  | Bimodal of int
      (** Extension: a table of 2-bit saturating counters with the given
          number of entries (power of two); only mispredictions pay the
          penalty. *)

type t = {
  clusters : int;
  issue_width : int;  (** Issue slots per cluster. *)
  n_lsu : int;  (** Memory-capable slots per cluster. *)
  n_mul : int;  (** Multiply-capable slots per cluster. *)
  n_branch : int;  (** Branch-capable slots per cluster. *)
  alu_latency : int;
  mul_latency : int;
  mem_latency : int;
  branch_penalty : int;  (** Squash cycles after a mispredicted branch. *)
  predictor : predictor;
  icache : cache_geom;
  dcache : cache_geom;
  miss_penalty : int;  (** Cycles a thread stalls on a cache miss. *)
}

val default : t
(** The paper's 16-issue, 4-cluster machine. *)

val make :
  ?clusters:int ->
  ?issue_width:int ->
  ?n_lsu:int ->
  ?n_mul:int ->
  ?n_branch:int ->
  unit ->
  t
(** Variant of {!default} with selected structural parameters overridden;
    validates the slot layout. *)

val total_issue : t -> int
(** [clusters * issue_width]. *)

val slot_allows : t -> slot:int -> Op.op_class -> bool
(** Whether [slot] (0-based within a cluster) may hold an operation of the
    given class. Slot layout: memory slots first, then multiply slots,
    branch in the last slot, ALU anywhere. *)

val latency : t -> Op.op_class -> int

val validate : t -> (unit, string) result
(** Structural sanity: positive dimensions and fixed-slot ranges that fit
    in the issue width. *)

val pp : Format.formatter -> t -> unit
