lib/isa/machine.mli: Format Op
