lib/isa/instr.ml: Array Format List Machine Op
