lib/isa/instr.mli: Format Machine Op
