lib/isa/machine.ml: Format Op
