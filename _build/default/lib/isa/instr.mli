(** VLIW instructions.

    An instruction is one "very long word": for each cluster, the (possibly
    empty) list of operations the compiler scheduled there for the same
    cycle. Instructions are the unit of merging — the paper's VLIW
    semantics forbid issuing only part of an instruction. *)

type t = {
  ops : Op.t list array;  (** Per-cluster operations; length = clusters. *)
  addr : int;  (** Static byte address, used for ICache lookups. *)
}

val make : clusters:int -> addr:int -> t
(** Empty instruction (explicit NOP in every slot). *)

val of_cluster_ops : addr:int -> Op.t list array -> t

val cluster_mask : t -> int
(** Bitmask of clusters holding at least one operation. *)

val op_count : t -> int
(** Total operations (issue-slot demand). *)

val ops_in : t -> int -> Op.t list
(** Operations scheduled on the given cluster. *)

val is_empty : t -> bool

val has_branch : t -> bool

val mem_ops : t -> Op.t list
(** All loads and stores, in cluster order. *)

val class_counts : Op.t list -> mem:int ref -> mul:int ref -> branch:int ref -> alu:int ref -> unit
(** Accumulate per-class counts of an operation list. *)

val fits_cluster : Machine.t -> Op.t list -> bool
(** Whether an operation multiset satisfies one cluster's slot constraints:
    mem ops <= LSUs, muls <= multipliers, branches <= branch slots, total
    <= issue width. *)

val well_formed : Machine.t -> t -> bool
(** Every cluster of the instruction individually satisfies
    {!fits_cluster} and the cluster count matches the machine. *)

val pp : Machine.t -> Format.formatter -> t -> unit
(** Renders like the paper's Figure 1: one cell per issue slot, "-" for
    empty slots, clusters separated by "|". *)
