type cache_geom = { size_bytes : int; ways : int; line_bytes : int }

type predictor = No_predictor | Bimodal of int

type t = {
  clusters : int;
  issue_width : int;
  n_lsu : int;
  n_mul : int;
  n_branch : int;
  alu_latency : int;
  mul_latency : int;
  mem_latency : int;
  branch_penalty : int;
  predictor : predictor;
  icache : cache_geom;
  dcache : cache_geom;
  miss_penalty : int;
}

let default_cache = { size_bytes = 64 * 1024; ways = 4; line_bytes = 64 }

let default =
  {
    clusters = 4;
    issue_width = 4;
    n_lsu = 1;
    n_mul = 2;
    n_branch = 1;
    alu_latency = 1;
    mul_latency = 2;
    mem_latency = 2;
    branch_penalty = 2;
    predictor = No_predictor;
    icache = default_cache;
    dcache = default_cache;
    miss_penalty = 20;
  }

let validate m =
  if m.clusters <= 0 then Error "clusters must be positive"
  else if m.issue_width <= 0 then Error "issue_width must be positive"
  else if m.n_lsu < 0 || m.n_mul < 0 || m.n_branch < 0 then
    Error "unit counts must be non-negative"
  else if m.n_lsu + m.n_mul > m.issue_width then
    Error "memory and multiply slots do not fit in the issue width"
  else if m.n_branch > 1 then Error "at most one branch slot per cluster"
  else if m.n_branch = 1 && m.issue_width - 1 < m.n_lsu + m.n_mul && m.issue_width < m.n_lsu + m.n_mul + 1
  then Error "branch slot collides with fixed slots"
  else Ok ()

let make ?(clusters = default.clusters) ?(issue_width = default.issue_width)
    ?(n_lsu = default.n_lsu) ?(n_mul = default.n_mul)
    ?(n_branch = default.n_branch) () =
  let m = { default with clusters; issue_width; n_lsu; n_mul; n_branch } in
  match validate m with Ok () -> m | Error msg -> invalid_arg ("Machine.make: " ^ msg)

let total_issue m = m.clusters * m.issue_width

(* Slot layout within a cluster: [0, n_lsu) memory, [n_lsu, n_lsu + n_mul)
   multiply, the last slot branch, ALU anywhere. The branch slot may
   coincide with a multiply slot only on machines too narrow to separate
   them; [validate] rejects those. *)
let slot_allows m ~slot k =
  match (k : Op.op_class) with
  | Alu | Copy -> slot >= 0 && slot < m.issue_width
  | Load | Store -> slot >= 0 && slot < m.n_lsu
  | Mul -> slot >= m.n_lsu && slot < m.n_lsu + m.n_mul
  | Branch -> m.n_branch > 0 && slot = m.issue_width - 1

let latency m = function
  | Op.Alu | Op.Branch | Op.Copy -> m.alu_latency
  | Op.Mul -> m.mul_latency
  | Op.Load | Op.Store -> m.mem_latency

let pp ppf m =
  Format.fprintf ppf
    "%d-cluster x %d-issue (lsu=%d mul=%d br=%d; I$=%dKB/%dw D$=%dKB/%dw miss=%dcyc)"
    m.clusters m.issue_width m.n_lsu m.n_mul m.n_branch
    (m.icache.size_bytes / 1024) m.icache.ways (m.dcache.size_bytes / 1024)
    m.dcache.ways m.miss_penalty
