type op_class = Alu | Mul | Load | Store | Branch | Copy

type t = { klass : op_class; id : int }

let make klass id = { klass; id }

let is_mem op =
  match op.klass with Load | Store -> true | Alu | Mul | Branch | Copy -> false

let class_name = function
  | Alu -> "add"
  | Mul -> "mpy"
  | Load -> "ld"
  | Store -> "st"
  | Branch -> "br"
  | Copy -> "mov"

let all_classes = [ Alu; Mul; Load; Store; Branch; Copy ]

let equal_class (a : op_class) (b : op_class) = a = b

let pp_class ppf k = Format.pp_print_string ppf (class_name k)

let pp ppf op = Format.fprintf ppf "%s#%d" (class_name op.klass) op.id
