let insert (dag : Dag.t) assignment =
  let n = Dag.size dag in
  if n = 0 then (dag, assignment)
  else begin
    let first_id = dag.nodes.(0).id in
    let out_nodes = ref [] in
    let out_clusters = ref [] in
    let next = ref first_id in
    let emit klass preds cluster level =
      let id = !next in
      incr next;
      out_nodes := { Dag.id; klass; preds; level } :: !out_nodes;
      out_clusters := cluster :: !out_clusters;
      id
    in
    let new_id_of = Array.make n (-1) in
    let copy_memo = Hashtbl.create 16 in
    for i = 0 to n - 1 do
      let node = dag.nodes.(i) in
      let c = assignment.(i) in
      let new_preds =
        List.map
          (fun p ->
            let pi = p - first_id in
            if pi < 0 || pi >= n then
              (* Live-in values are assumed available on every cluster
                 (the register allocator of a real compiler broadcasts
                 long-lived values; we do not charge copies for them). *)
              p
            else begin
            let pc = assignment.(pi) in
            if pc = c then new_id_of.(pi)
            else begin
              match Hashtbl.find_opt copy_memo (pi, c) with
              | Some cid -> cid
              | None ->
                let cid =
                  emit Vliw_isa.Op.Copy [ new_id_of.(pi) ] pc node.level
                in
                Hashtbl.add copy_memo (pi, c) cid;
                cid
            end
            end)
          node.preds
      in
      new_id_of.(i) <- emit node.klass new_preds c node.level
    done;
    ( { Dag.nodes = Array.of_list (List.rev !out_nodes); live_in = dag.live_in },
      Array.of_list (List.rev !out_clusters) )
  end

let copy_count (dag : Dag.t) =
  Array.fold_left
    (fun acc (node : Dag.node) ->
      if node.klass = Vliw_isa.Op.Copy then acc + 1 else acc)
    0 dag.nodes
