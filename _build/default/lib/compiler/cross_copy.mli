(** Inter-cluster copy insertion.

    Clustered VLIWs have no shared register file: a value produced on one
    cluster and consumed on another needs an explicit copy operation
    (Bulldog/BUG inserts these; VEX code is full of them). For every
    dependence edge that crosses clusters, this pass inserts one
    single-cycle [Copy] operation on the source cluster per (producer,
    destination cluster) pair, shared by all consumers on that cluster.

    Copies consume issue slots and lengthen dependence chains — the real
    cost of spreading code, and the reason merged instructions of
    multi-cluster code occupy more clusters than their useful operations
    alone would. *)

val insert : Dag.t -> int array -> Dag.t * int array
(** [insert dag assignment] returns the augmented DAG (ids renumbered,
    still topologically ordered, branch still last) and the matching
    cluster assignment. *)

val copy_count : Dag.t -> int
(** Number of [Copy] nodes (diagnostics and tests). *)
