(** Benchmark profiles — the synthetic stand-in for compiled MediaBench /
    SPEC binaries.

    The paper characterises each benchmark by its ILP degree, its IPC with
    real and with perfect memory, and (implicitly) its code footprint and
    memory behaviour. A profile captures exactly those observable knobs;
    {!Program.generate} turns a profile into a concrete clustered-VLIW
    program whose single-thread behaviour matches the profile. *)

type ilp_degree = Low | Medium | High

type t = {
  name : string;
  ilp : ilp_degree;
  description : string;
  block_ops_mean : int;  (** Mean operations per basic block. *)
  dag_parallelism : float;
      (** Mean number of independent operations per dependence level;
          the main ILP knob. *)
  frac_mem : float;  (** Fraction of operations that are loads/stores. *)
  frac_mul : float;  (** Fraction of operations that are multiplies. *)
  store_frac : float;  (** Among memory operations, fraction of stores. *)
  working_set_kb : int;  (** Data working set; drives DCache misses. *)
  seq_frac : float;  (** Fraction of strided (cache-friendly) accesses. *)
  taken_prob : float;  (** Probability a block-ending branch is taken. *)
  static_blocks : int;  (** Distinct basic blocks (code footprint). *)
  hot_frac : float;  (** Probability a taken branch targets the hot set. *)
  target_ipc_real : float;  (** Table 1 IPCr, for validation reports. *)
  target_ipc_perfect : float;  (** Table 1 IPCp, for validation reports. *)
}

val ilp_letter : ilp_degree -> string
(** "L", "M" or "H" as in Tables 1–2. *)

val validate : t -> (unit, string) result
(** Fractions in range, positive sizes. *)

val pp : Format.formatter -> t -> unit
