(** Cycle-driven list scheduler.

    Packs a basic block's DAG into a sequence of VLIW instructions for a
    clustered machine, honouring the BUG cluster assignment, per-cluster
    slot constraints (1 LSU, 2 multipliers, 1 branch slot, issue width)
    and operation latencies. Priority is critical-path height. The
    block-ending branch, when present, is only issued once every other
    operation has been issued (VLIW blocks end with their branch).

    Cycles in which dependence latencies leave nothing ready become
    explicit all-NOP instructions: this is the vertical waste that
    multithreaded merging later fills. *)

val schedule :
  Vliw_isa.Machine.t ->
  Dag.t ->
  assignment:int array ->
  base_addr:int ->
  instr_bytes:int ->
  Vliw_isa.Instr.t array
(** Instruction [i] gets address [base_addr + i * instr_bytes]. *)

val schedule_length : Vliw_isa.Machine.t -> Dag.t -> int
(** Number of instructions the default assignment produces (convenience
    for calibration and tests). *)
