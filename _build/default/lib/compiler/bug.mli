(** Bottom-Up Greedy cluster assignment (after Ellis' Bulldog; the
    algorithm the VEX compiler uses, §5.1).

    A light-weight re-implementation: operations are visited in
    topological order and placed concentration-first — a cluster accepts
    operations (preferring the cluster of their predecessors) until its
    issue or fixed LSU/multiplier capacity would saturate over the
    estimated schedule length, and only then does the next cluster in
    [perm] order open. Narrow (low-ILP) blocks therefore occupy one
    dense cluster while wide blocks spread over all clusters, and the
    per-block permutation gives co-scheduled threads the cluster-usage
    diversity that cluster-level merging exploits. *)

val assign : ?perm:int array -> Vliw_isa.Machine.t -> Dag.t -> int array
(** [assign ?perm m dag] maps each node index (not id) to a cluster of
    [m]. [perm] is the cluster-opening order (default: identity); it
    must be a permutation of [0 .. clusters-1]. *)

val cluster_loads : Vliw_isa.Machine.t -> Dag.t -> int array -> int array
(** Ops per cluster under an assignment (for balance diagnostics). *)
