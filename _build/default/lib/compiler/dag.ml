type node = {
  id : int;
  klass : Vliw_isa.Op.op_class;
  preds : int list;
  level : int;
}

type t = { nodes : node array; live_in : int list }

let size t = Array.length t.nodes

let n_levels t =
  Array.fold_left (fun acc n -> max acc (n.level + 1)) 0 t.nodes

let op_of_node n = Vliw_isa.Op.make n.klass n.id

module Rng = Vliw_util.Rng

(* Draw an operation class from the profile mix. Branches are handled
   separately (exactly one per block, at the end). *)
let draw_class rng (p : Profile.t) =
  let r = Rng.float rng 1.0 in
  if r < p.frac_mem then
    if Rng.bernoulli rng p.store_frac then Vliw_isa.Op.Store else Vliw_isa.Op.Load
  else if r < p.frac_mem +. p.frac_mul then Vliw_isa.Op.Mul
  else Vliw_isa.Op.Alu

(* Narrow (serial) code carries its dependence chain across block
   boundaries almost surely; wide code starts mostly fresh work. *)
let live_in_consume_prob (p : Profile.t) =
  min 0.9 (0.4 +. (0.6 /. p.dag_parallelism))

let generate rng (p : Profile.t) ~with_branch ~first_id ?(live_in = []) () =
  let live_in_arr = Array.of_list live_in in
  let consume_prob = live_in_consume_prob p in
  let body_ops =
    let mean = float_of_int p.block_ops_mean in
    let n = int_of_float (Float.round (Rng.gaussian rng ~mu:mean ~sigma:(mean /. 4.0))) in
    max 1 n
  in
  let nodes = ref [] in
  let made = ref 0 in
  let level = ref 0 in
  let prev_level_ids = ref [] in
  while !made < body_ops do
    let width =
      let w =
        Rng.gaussian rng ~mu:p.dag_parallelism ~sigma:(p.dag_parallelism /. 3.0)
      in
      max 1 (int_of_float (Float.round w))
    in
    let width = min width (body_ops - !made) in
    let this_level = ref [] in
    for _ = 1 to width do
      let id = first_id + !made in
      let preds =
        if !level = 0 then begin
          (* Entry operations may consume live-in values from the
             predecessor block. *)
          if Array.length live_in_arr > 0 && Rng.bernoulli rng consume_prob
          then [ Rng.choose rng live_in_arr ]
          else []
        end
        else begin
          let pick () = Rng.choose rng (Array.of_list !prev_level_ids) in
          let p1 = pick () in
          if Rng.bernoulli rng 0.35 && List.length !prev_level_ids > 1 then begin
            let p2 = pick () in
            if p2 = p1 then [ p1 ] else [ p1; p2 ]
          end
          else [ p1 ]
        end
      in
      let klass = draw_class rng p in
      nodes := { id; klass; preds; level = !level } :: !nodes;
      this_level := id :: !this_level;
      incr made
    done;
    prev_level_ids := !this_level;
    incr level
  done;
  if with_branch then begin
    let id = first_id + !made in
    let preds =
      match !prev_level_ids with
      | [] -> []
      | ids -> [ List.hd ids ]
    in
    nodes := { id; klass = Vliw_isa.Op.Branch; preds; level = !level } :: !nodes
  end;
  { nodes = Array.of_list (List.rev !nodes); live_in }

let last_levels t =
  let depth = n_levels t in
  Array.to_list t.nodes
  |> List.filter_map (fun n ->
         if n.klass <> Vliw_isa.Op.Branch && n.level >= depth - 2 then Some n.id
         else None)

let live_out t = List.length (last_levels t)

let critical_height t =
  let n = Array.length t.nodes in
  let first_id = if n = 0 then 0 else t.nodes.(0).id in
  let height = Array.make n 1 in
  (* Nodes are topologically ordered, so a reverse sweep suffices.
     Live-in predecessors are outside the array and ignored. *)
  for i = n - 1 downto 0 do
    let node = t.nodes.(i) in
    List.iter
      (fun pred ->
        let pi = pred - first_id in
        if pi >= 0 then height.(pi) <- max height.(pi) (height.(i) + 1))
      node.preds
  done;
  height

let validate t =
  let n = Array.length t.nodes in
  let first_id = if n = 0 then 0 else t.nodes.(0).id in
  let rec check i =
    if i >= n then Ok ()
    else begin
      let node = t.nodes.(i) in
      let pred_ok p =
        (p >= first_id && p < node.id) || (p < first_id && List.mem p t.live_in)
      in
      if node.id <> first_id + i then Error "ids must be consecutive"
      else if not (List.for_all pred_ok node.preds) then
        Error "predecessors must precede their node or be declared live-in"
      else if node.klass = Vliw_isa.Op.Branch && i <> n - 1 then
        Error "branch must be the last node"
      else check (i + 1)
    end
  in
  check 0

let concat dags =
  match dags with
  | [] -> { nodes = [||]; live_in = [] }
  | first :: _ ->
    let nodes = Array.concat (List.map (fun d -> d.nodes) dags) in
    let first_id = if Array.length nodes = 0 then 0 else nodes.(0).id in
    let last_id = first_id + Array.length nodes - 1 in
    (* Edges into the merged region stay live-in; edges between the
       merged blocks become internal. *)
    let live_in =
      List.concat_map (fun d -> d.live_in) dags
      |> List.filter (fun id -> id < first_id || id > last_id)
      |> List.sort_uniq compare
    in
    ignore first;
    { nodes; live_in }
