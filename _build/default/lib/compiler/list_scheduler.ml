module Isa = Vliw_isa

type slot_budget = {
  mutable mem : int;
  mutable mul : int;
  mutable branch : int;
  mutable total : int;
}

let fresh_budget (m : Isa.Machine.t) =
  Array.init m.clusters (fun _ ->
      { mem = m.n_lsu; mul = m.n_mul; branch = m.n_branch; total = m.issue_width })

let take budget (klass : Isa.Op.op_class) =
  if budget.total = 0 then false
  else begin
    match klass with
    | Alu | Copy ->
      budget.total <- budget.total - 1;
      true
    | Load | Store ->
      if budget.mem = 0 then false
      else begin
        budget.mem <- budget.mem - 1;
        budget.total <- budget.total - 1;
        true
      end
    | Mul ->
      if budget.mul = 0 then false
      else begin
        budget.mul <- budget.mul - 1;
        budget.total <- budget.total - 1;
        true
      end
    | Branch ->
      if budget.branch = 0 then false
      else begin
        budget.branch <- budget.branch - 1;
        budget.total <- budget.total - 1;
        true
      end
  end

(* An operation class with no capable slot would never become
   schedulable and the cycle loop would not terminate. *)
let check_schedulable (m : Isa.Machine.t) (dag : Dag.t) =
  Array.iter
    (fun (node : Dag.node) ->
      let supported =
        match node.klass with
        | Isa.Op.Load | Isa.Op.Store -> m.n_lsu > 0
        | Isa.Op.Mul -> m.n_mul > 0
        | Isa.Op.Branch -> m.n_branch > 0
        | Isa.Op.Alu | Isa.Op.Copy -> m.issue_width > 0
      in
      if not supported then
        invalid_arg
          (Printf.sprintf
             "List_scheduler.schedule: machine has no slot for %s operations"
             (Isa.Op.class_name node.klass)))
    dag.nodes

(* Control-speculation rules for (possibly multi-branch) regions, in the
   spirit of Trace Scheduling without downward compensation code:

   - a branch may issue only once every non-branch operation with a
     smaller id (architecturally above the exit) has issued;
   - a store may issue only once every branch with a smaller id has
     issued (stores are never speculated above an exit);
   - ALU, multiply, load and copy operations move freely above later
     exits (upward speculation).

   Single-branch blocks degenerate to "the branch goes last". Both rules
   are tracked with ascending watermarks over the (topological) ids. *)
let schedule (m : Isa.Machine.t) (dag : Dag.t) ~assignment ~base_addr ~instr_bytes =
  let n = Dag.size dag in
  if n = 0 then [||]
  else begin
    check_schedulable m dag;
    let first_id = dag.nodes.(0).id in
    let height = Dag.critical_height dag in
    let issue_cycle = Array.make n (-1) in
    let ready_cycle = Array.make n 0 in
    let scheduled = ref 0 in
    (* Watermarks: index (not id) of the smallest unissued non-branch /
       branch node; everything below has issued. *)
    let nb_mark = ref 0 and br_mark = ref 0 in
    let advance_marks () =
      let is_branch i = dag.nodes.(i).klass = Isa.Op.Branch in
      while !nb_mark < n && (is_branch !nb_mark || issue_cycle.(!nb_mark) >= 0) do
        incr nb_mark
      done;
      while !br_mark < n && ((not (is_branch !br_mark)) || issue_cycle.(!br_mark) >= 0)
      do
        incr br_mark
      done
    in
    (* Priority order: critical height descending, id ascending. *)
    let order = Array.init n Fun.id in
    Array.sort
      (fun a b ->
        let c = compare height.(b) height.(a) in
        if c <> 0 then c else compare a b)
      order;
    let instrs = ref [] in
    let cycle = ref 0 in
    while !scheduled < n do
      let budget = fresh_budget m in
      let cluster_ops = Array.make m.clusters [] in
      (* One exit per instruction keeps region control flow unambiguous. *)
      let branch_this_cycle = ref false in
      let try_schedule i =
        let node = dag.nodes.(i) in
        if issue_cycle.(i) < 0 && ready_cycle.(i) <= !cycle then begin
          advance_marks ();
          let control_ok =
            match node.klass with
            | Isa.Op.Branch ->
              !nb_mark >= i && !br_mark >= i && not !branch_this_cycle
            | Isa.Op.Store -> !br_mark >= i
            | Isa.Op.Alu | Isa.Op.Copy | Isa.Op.Load | Isa.Op.Mul -> true
          in
          if control_ok then begin
            let c = assignment.(i) in
            if take budget.(c) node.klass then begin
              issue_cycle.(i) <- !cycle;
              cluster_ops.(c) <- Dag.op_of_node node :: cluster_ops.(c);
              if node.klass = Isa.Op.Branch then branch_this_cycle := true;
              incr scheduled
            end
          end
        end
      in
      (* Refresh ready times: an op is ready when every in-region
         predecessor has issued and its latency has elapsed; live-in
         predecessors are available from cycle 0. *)
      Array.iteri
        (fun i (node : Dag.node) ->
          if issue_cycle.(i) < 0 then begin
            let r =
              List.fold_left
                (fun acc p ->
                  let pi = p - first_id in
                  if pi < 0 || pi >= n then acc
                  else if issue_cycle.(pi) < 0 then max_int
                  else
                    max acc
                      (issue_cycle.(pi) + Isa.Machine.latency m dag.nodes.(pi).klass))
                0 node.preds
            in
            ready_cycle.(i) <- r
          end)
        dag.nodes;
      Array.iter try_schedule order;
      let ops = Array.map List.rev cluster_ops in
      let addr = base_addr + (List.length !instrs * instr_bytes) in
      instrs := Isa.Instr.of_cluster_ops ~addr ops :: !instrs;
      incr cycle
    done;
    Array.of_list (List.rev !instrs)
  end

let schedule_length m dag =
  let assignment = Bug.assign m dag in
  Array.length (schedule m dag ~assignment ~base_addr:0 ~instr_bytes:64)
