type ilp_degree = Low | Medium | High

type t = {
  name : string;
  ilp : ilp_degree;
  description : string;
  block_ops_mean : int;
  dag_parallelism : float;
  frac_mem : float;
  frac_mul : float;
  store_frac : float;
  working_set_kb : int;
  seq_frac : float;
  taken_prob : float;
  static_blocks : int;
  hot_frac : float;
  target_ipc_real : float;
  target_ipc_perfect : float;
}

let ilp_letter = function Low -> "L" | Medium -> "M" | High -> "H"

let in_unit x = x >= 0.0 && x <= 1.0

let validate p =
  if p.block_ops_mean < 1 then Error "block_ops_mean must be >= 1"
  else if p.dag_parallelism < 0.5 then Error "dag_parallelism must be >= 0.5"
  else if not (in_unit p.frac_mem && in_unit p.frac_mul) then
    Error "op-mix fractions must lie in [0, 1]"
  else if p.frac_mem +. p.frac_mul > 1.0 then Error "op mix exceeds 1"
  else if not (in_unit p.store_frac && in_unit p.seq_frac) then
    Error "memory fractions must lie in [0, 1]"
  else if not (in_unit p.taken_prob && in_unit p.hot_frac) then
    Error "control fractions must lie in [0, 1]"
  else if p.working_set_kb < 1 then Error "working_set_kb must be >= 1"
  else if p.static_blocks < 1 then Error "static_blocks must be >= 1"
  else Ok ()

let pp ppf p =
  Format.fprintf ppf "%s (%s, %s): blocks=%d ops/block=%d width=%.2f ws=%dKB"
    p.name (ilp_letter p.ilp) p.description p.static_blocks p.block_ops_mean
    p.dag_parallelism p.working_set_kb
