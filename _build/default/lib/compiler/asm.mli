(** Textual format for compiled programs.

    A human-readable dump/parse round-trip for {!Program.t}: useful for
    inspecting what the synthetic compiler produced, for diffing
    schedules across compiler modes, and for hand-writing small kernels
    to feed the simulator (see [examples/custom_kernel.ml]).

    Format (one region per [region] header, one instruction per line;
    clusters separated by [|]; operations as [class#id] with classes
    add/mpy/ld/st/br/mov; [-] for an empty cluster):

    {v
    program dotprod
    region 0 fallthrough 1
      exit 3 -> 2
      0: ld#0 add#1 | - | mpy#2 | -
      1: - | add#3 | - | -
      ...
    v} *)

val to_string : Program.t -> string

val parse :
  profile:Profile.t ->
  ?machine:Vliw_isa.Machine.t ->
  string ->
  (Program.t, string) result
(** Parses a dump back into a program. The [profile] supplies the
    dynamic parameters (branch probability, memory behaviour) that the
    text format does not carry; instructions are re-addressed
    sequentially. The result is validated against [machine] (default
    machine if omitted). *)

val roundtrip_equal : Program.t -> Program.t -> bool
(** Structural equality of the parts the format preserves (instructions,
    exits, fall-throughs, entry). *)
