(* Bottom-Up-Greedy-style cluster assignment, concentration-first.

   Real clustered compilers keep dependence chains on as few clusters as
   possible (inter-cluster moves are expensive) and only open another
   cluster when the current ones would lengthen the schedule. We model
   that with a capacity budget per cluster derived from the DAG's
   critical-path length: a cluster accepts operations until its issue
   slots (or its fixed LSU/multiplier slots) would saturate over the
   estimated schedule, then the next cluster in [perm] order opens.

   [perm] varies from block to block (different regions of a program get
   different allocations), which is what gives co-scheduled threads the
   cluster-usage diversity cluster-level merging exploits. Narrow blocks
   therefore occupy one dense cluster; wide blocks spread over all. *)

let fill_factor = 0.16

let assign ?perm (m : Vliw_isa.Machine.t) (dag : Dag.t) =
  let n = Dag.size dag in
  let perm =
    match perm with
    | Some p ->
      if Array.length p <> m.clusters then
        invalid_arg "Bug.assign: permutation arity mismatch";
      p
    | None -> Array.init m.clusters Fun.id
  in
  if n = 0 then [||]
  else begin
    let first_id = dag.nodes.(0).id in
    let height = Dag.critical_height dag in
    let sched_len = Array.fold_left max 1 height in
    let cap_of units =
      max 1 (int_of_float (ceil (fill_factor *. float_of_int (sched_len * units))))
    in
    let cap_total = cap_of m.issue_width in
    let cap_mem = cap_of (max 1 m.n_lsu) in
    let cap_mul = cap_of (max 1 m.n_mul) in
    let assignment = Array.make n 0 in
    let load = Array.make m.clusters 0 in
    let mem_load = Array.make m.clusters 0 in
    let mul_load = Array.make m.clusters 0 in
    let has_capacity klass c =
      load.(c) < cap_total
      &&
      match (klass : Vliw_isa.Op.op_class) with
      | Load | Store -> mem_load.(c) < cap_mem
      | Mul -> mul_load.(c) < cap_mul
      | Alu | Branch | Copy -> true
    in
    let affinity i c =
      List.fold_left
        (fun acc pred ->
          let pi = pred - first_id in
          (* Live-in predecessors (earlier blocks) carry no affinity. *)
          if pi >= 0 && pi < n && assignment.(pi) = c then acc + 1 else acc)
        0 dag.nodes.(i).preds
    in
    for i = 0 to n - 1 do
      let klass = dag.nodes.(i).klass in
      (* Candidates in perm order; prefer highest affinity among clusters
         with remaining capacity, then the earliest such cluster. *)
      let best = ref (-1) and best_aff = ref (-1) in
      Array.iter
        (fun c ->
          if has_capacity klass c then begin
            let a = affinity i c in
            if a > !best_aff then begin
              best := c;
              best_aff := a
            end
          end)
        perm;
      let c =
        if !best >= 0 then !best
        else begin
          (* All clusters over budget: fall back to the least loaded. *)
          let least = ref perm.(0) in
          Array.iter (fun c -> if load.(c) < load.(!least) then least := c) perm;
          !least
        end
      in
      assignment.(i) <- c;
      load.(c) <- load.(c) + 1;
      (match klass with
      | Load | Store -> mem_load.(c) <- mem_load.(c) + 1
      | Mul -> mul_load.(c) <- mul_load.(c) + 1
      | Alu | Branch | Copy -> ())
    done;
    assignment
  end

let cluster_loads (m : Vliw_isa.Machine.t) (dag : Dag.t) assignment =
  let load = Array.make m.clusters 0 in
  Array.iteri (fun i _ -> load.(assignment.(i)) <- load.(assignment.(i)) + 1) dag.nodes;
  load
