(** Dependence DAGs for basic blocks.

    A layered random DAG: operations at level 0 are independent (or
    consume live-in values produced by a predecessor block); an operation
    at level [l] depends on one or more operations at earlier levels.
    Level widths are drawn around the profile's [dag_parallelism], which
    is what ultimately controls the ILP the list scheduler can extract.
    A block optionally ends with a branch operation that depends on late
    operations, so it is scheduled last.

    Predecessor ids smaller than the block's [first_id] reference
    operations of earlier blocks ([live_in]); schedulers treat them as
    available unless blocks are merged into one region (trace
    scheduling), where they become ordinary edges. *)

type node = {
  id : int;
  klass : Vliw_isa.Op.op_class;
  preds : int list;  (** Ids of operations this one depends on. *)
  level : int;
}

type t = {
  nodes : node array;
  live_in : int list;  (** External ids the block may depend on. *)
}

val generate :
  Vliw_util.Rng.t ->
  Profile.t ->
  with_branch:bool ->
  first_id:int ->
  ?live_in:int list ->
  unit ->
  t
(** Random DAG for one basic block; node ids start at [first_id] and are
    topologically ordered (in-block predecessor ids are always smaller).
    Level-0 operations consume values from [live_in] with moderate
    probability, creating cross-block dependence chains. *)

val size : t -> int

val n_levels : t -> int

val live_out : t -> int
(** Number of candidate live-out values (operations of the last two
    levels) — what a successor block may consume. *)

val critical_height : t -> int array
(** For each node, the height of the longest dependence chain rooted at
    it (used as list-scheduling priority). Live-in edges contribute
    nothing. *)

val validate : t -> (unit, string) result
(** Topological id order, in-block predecessors smaller than their node,
    external predecessors declared in [live_in], at most one branch and
    only as the last node. *)

val op_of_node : node -> Vliw_isa.Op.t

val concat : t list -> t
(** Merge consecutive blocks' DAGs into one region (ids must be globally
    consecutive across the inputs, as {!Program} produces them);
    formerly-external edges between the inputs become internal. *)
