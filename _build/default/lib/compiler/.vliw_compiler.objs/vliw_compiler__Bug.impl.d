lib/compiler/bug.ml: Array Dag Fun List Vliw_isa
