lib/compiler/list_scheduler.mli: Dag Vliw_isa
