lib/compiler/dag.mli: Profile Vliw_isa Vliw_util
