lib/compiler/program.ml: Array Bug Cross_copy Dag Fun List List_scheduler Profile Vliw_isa Vliw_util
