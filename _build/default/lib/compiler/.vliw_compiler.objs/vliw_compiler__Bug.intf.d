lib/compiler/bug.mli: Dag Vliw_isa
