lib/compiler/cross_copy.mli: Dag
