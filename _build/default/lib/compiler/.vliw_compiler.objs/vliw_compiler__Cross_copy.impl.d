lib/compiler/cross_copy.ml: Array Dag Hashtbl List Vliw_isa
