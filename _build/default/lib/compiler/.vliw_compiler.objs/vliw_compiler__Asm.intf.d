lib/compiler/asm.mli: Profile Program Vliw_isa
