lib/compiler/dag.ml: Array Float List Profile Vliw_isa Vliw_util
