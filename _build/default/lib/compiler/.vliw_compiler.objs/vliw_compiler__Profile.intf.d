lib/compiler/profile.mli: Format
