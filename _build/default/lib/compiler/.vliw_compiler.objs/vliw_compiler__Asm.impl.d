lib/compiler/asm.ml: Array Buffer List Printf Program Result String Vliw_isa
