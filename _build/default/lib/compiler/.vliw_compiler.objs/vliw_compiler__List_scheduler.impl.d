lib/compiler/list_scheduler.ml: Array Bug Dag Fun List Printf Vliw_isa
