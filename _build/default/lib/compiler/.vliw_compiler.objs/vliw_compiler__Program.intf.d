lib/compiler/program.mli: Profile Vliw_isa
