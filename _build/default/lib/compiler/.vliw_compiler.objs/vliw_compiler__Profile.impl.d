lib/compiler/profile.ml: Format
