module Isa = Vliw_isa

let class_of_name = function
  | "add" -> Some Isa.Op.Alu
  | "mpy" -> Some Isa.Op.Mul
  | "ld" -> Some Isa.Op.Load
  | "st" -> Some Isa.Op.Store
  | "br" -> Some Isa.Op.Branch
  | "mov" -> Some Isa.Op.Copy
  | _ -> None

let op_to_string (op : Isa.Op.t) =
  Printf.sprintf "%s#%d" (Isa.Op.class_name op.klass) op.id

let to_string (p : Program.t) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "program %s\n" p.profile.name);
  Array.iteri
    (fun r (b : Program.block) ->
      Buffer.add_string buf
        (Printf.sprintf "region %d fallthrough %d\n" r b.fall_through);
      Array.iter
        (fun (idx, target) ->
          Buffer.add_string buf (Printf.sprintf "  exit %d -> %d\n" idx target))
        b.exits;
      Array.iteri
        (fun i (instr : Isa.Instr.t) ->
          let cluster ops =
            if ops = [] then "-" else String.concat " " (List.map op_to_string ops)
          in
          Buffer.add_string buf
            (Printf.sprintf "  %d: %s\n" i
               (String.concat " | " (Array.to_list (Array.map cluster instr.ops)))))
        b.instrs)
    p.blocks;
  Buffer.contents buf

(* --- parsing --- *)

type raw_region = {
  mutable raw_fall_through : int;
  mutable raw_exits : (int * int) list;  (* reversed *)
  mutable raw_instrs : Isa.Op.t list array list;  (* reversed *)
}

let parse_op token =
  match String.index_opt token '#' with
  | None -> Error (Printf.sprintf "malformed operation %S (expected class#id)" token)
  | Some i ->
    let name = String.sub token 0 i in
    let id_str = String.sub token (i + 1) (String.length token - i - 1) in
    (match (class_of_name name, int_of_string_opt id_str) with
    | Some klass, Some id -> Ok (Isa.Op.make klass id)
    | None, _ -> Error (Printf.sprintf "unknown operation class %S" name)
    | _, None -> Error (Printf.sprintf "bad operation id %S" id_str))

let parse_cluster text =
  let text = String.trim text in
  if text = "-" || text = "" then Ok []
  else begin
    let tokens = String.split_on_char ' ' text |> List.filter (fun s -> s <> "") in
    List.fold_left
      (fun acc token ->
        match acc with
        | Error _ as e -> e
        | Ok ops ->
          (match parse_op token with Ok op -> Ok (op :: ops) | Error _ as e -> e))
      (Ok []) tokens
    |> Result.map List.rev
  end

let split_on_string ~sep s =
  (* Split on a multi-char separator. *)
  let seplen = String.length sep in
  let rec go start acc =
    match
      let rec find i =
        if i + seplen > String.length s then None
        else if String.sub s i seplen = sep then Some i
        else find (i + 1)
      in
      find start
    with
    | None -> List.rev (String.sub s start (String.length s - start) :: acc)
    | Some i -> go (i + seplen) (String.sub s start (i - start) :: acc)
  in
  go 0 []

let parse_instr_line line =
  match String.index_opt line ':' with
  | None -> Error (Printf.sprintf "malformed instruction line %S" line)
  | Some colon ->
    let body = String.sub line (colon + 1) (String.length line - colon - 1) in
    let clusters = split_on_string ~sep:"|" body in
    List.fold_left
      (fun acc cluster ->
        match acc with
        | Error _ as e -> e
        | Ok cs ->
          (match parse_cluster cluster with
          | Ok ops -> Ok (ops :: cs)
          | Error _ as e -> e))
      (Ok []) clusters
    |> Result.map (fun cs -> Array.of_list (List.rev cs))

let parse ~profile ?(machine = Isa.Machine.default) text =
  let lines = String.split_on_char '\n' text in
  let regions = ref [] in
  let current = ref None in
  let error = ref None in
  let fail msg = if !error = None then error := Some msg in
  let flush_current () =
    match !current with Some r -> regions := r :: !regions | None -> ()
  in
  List.iteri
    (fun lineno line ->
      let line = String.trim line in
      let fail msg = fail (Printf.sprintf "line %d: %s" (lineno + 1) msg) in
      if !error <> None || line = "" || String.length line = 0 then ()
      else if String.length line >= 8 && String.sub line 0 8 = "program " then ()
      else if String.length line >= 7 && String.sub line 0 7 = "region " then begin
        flush_current ();
        match String.split_on_char ' ' line with
        | [ "region"; _; "fallthrough"; ft ] ->
          (match int_of_string_opt ft with
          | Some ft ->
            current :=
              Some { raw_fall_through = ft; raw_exits = []; raw_instrs = [] }
          | None -> fail "bad fall-through")
        | _ -> fail "malformed region header"
      end
      else begin
        match !current with
        | None -> fail "content before any region header"
        | Some r ->
          if String.length line >= 5 && String.sub line 0 5 = "exit " then begin
            match String.split_on_char ' ' line with
            | [ "exit"; idx; "->"; target ] ->
              (match (int_of_string_opt idx, int_of_string_opt target) with
              | Some idx, Some target -> r.raw_exits <- (idx, target) :: r.raw_exits
              | _ -> fail "bad exit")
            | _ -> fail "malformed exit line"
          end
          else begin
            match parse_instr_line line with
            | Ok clusters -> r.raw_instrs <- clusters :: r.raw_instrs
            | Error msg -> fail msg
          end
      end)
    lines;
  flush_current ();
  match !error with
  | Some msg -> Error msg
  | None ->
    let regions = List.rev !regions in
    if regions = [] then Error "no regions"
    else begin
      let instr_bytes = 4 * Isa.Machine.total_issue machine in
      let next_addr = ref 0 in
      let blocks =
        List.map
          (fun r ->
            let instrs =
              List.rev r.raw_instrs
              |> List.map (fun clusters ->
                     let addr = !next_addr in
                     next_addr := !next_addr + instr_bytes;
                     Isa.Instr.of_cluster_ops ~addr clusters)
              |> Array.of_list
            in
            {
              Program.instrs;
              exits = Array.of_list (List.rev r.raw_exits);
              fall_through = r.raw_fall_through;
            })
          regions
        |> Array.of_list
      in
      let total_ops =
        Array.fold_left
          (fun acc (b : Program.block) ->
            Array.fold_left (fun acc i -> acc + Isa.Instr.op_count i) acc b.instrs)
          0 blocks
      in
      let total_instrs =
        Array.fold_left
          (fun acc (b : Program.block) -> acc + Array.length b.instrs)
          0 blocks
      in
      let program =
        {
          Program.profile;
          blocks;
          entry = 0;
          instr_bytes;
          mode = `Block;
          total_ops;
          total_instrs;
        }
      in
      match Program.validate machine program with
      | Ok () -> Ok program
      | Error msg -> Error ("invalid program: " ^ msg)
    end

let roundtrip_equal (a : Program.t) (b : Program.t) =
  let block_equal (x : Program.block) (y : Program.block) =
    x.fall_through = y.fall_through
    && x.exits = y.exits
    && Array.length x.instrs = Array.length y.instrs
    && Array.for_all2
         (fun (i : Isa.Instr.t) (j : Isa.Instr.t) -> i.ops = j.ops)
         x.instrs y.instrs
  in
  a.entry = b.entry
  && Array.length a.blocks = Array.length b.blocks
  && Array.for_all2 block_equal a.blocks b.blocks
