type t = {
  icache : Cache.t;
  dcache : Cache.t;
  perfect : bool;
  miss_penalty : int;
}

let create ?(perfect = false) (m : Vliw_isa.Machine.t) =
  {
    icache = Cache.create m.icache;
    dcache = Cache.create m.dcache;
    perfect;
    miss_penalty = m.miss_penalty;
  }

let perfect t = t.perfect

let ifetch t addr =
  if t.perfect then 0
  else if Cache.access t.icache addr then 0
  else t.miss_penalty

let daccess t addr =
  if t.perfect then 0
  else if Cache.access t.dcache addr then 0
  else t.miss_penalty

let icache_stats t = (Cache.accesses t.icache, Cache.misses t.icache)

let dcache_stats t = (Cache.accesses t.dcache, Cache.misses t.dcache)

let reset_stats t =
  Cache.reset_stats t.icache;
  Cache.reset_stats t.dcache
