(** The processor's memory system: ICache + DCache + miss penalty.

    Matches §5.1: 64 KB, 4-way, 20-cycle miss penalty for both caches.
    Caches are shared by all hardware threads (tagged disjoint address
    regions create capacity interference). A [perfect] memory system
    never misses — used to measure the paper's IPCp column. *)

type t

val create : ?perfect:bool -> Vliw_isa.Machine.t -> t

val perfect : t -> bool

val ifetch : t -> int -> int
(** [ifetch t addr] returns the stall in cycles (0 on hit,
    [miss_penalty] on miss). *)

val daccess : t -> int -> int
(** Same for a data access. *)

val icache_stats : t -> int * int
(** accesses, misses. *)

val dcache_stats : t -> int * int

val reset_stats : t -> unit
