lib/mem/addr_stream.mli:
