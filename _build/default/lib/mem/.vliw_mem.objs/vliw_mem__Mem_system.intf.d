lib/mem/mem_system.mli: Vliw_isa
