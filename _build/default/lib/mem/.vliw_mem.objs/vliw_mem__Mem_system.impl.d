lib/mem/mem_system.ml: Cache Vliw_isa
