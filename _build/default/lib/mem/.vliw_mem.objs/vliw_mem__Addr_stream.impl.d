lib/mem/addr_stream.ml: Vliw_util
