lib/mem/cache.mli: Format Vliw_isa
