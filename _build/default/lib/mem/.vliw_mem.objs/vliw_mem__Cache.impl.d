lib/mem/cache.ml: Array Format Vliw_isa
