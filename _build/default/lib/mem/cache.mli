(** Set-associative cache with true-LRU replacement.

    Models the paper's 64 KB 4-way ICache/DCache (§5.1). The model tracks
    tags only — data is irrelevant to timing — and serves both
    instruction and data streams. *)

type t

val create : Vliw_isa.Machine.cache_geom -> t
(** Geometry must have power-of-two line size and a positive number of
    sets. *)

val access : t -> int -> bool
(** [access t addr] returns [true] on a hit; on a miss the line is filled
    (allocate-on-miss, for loads and stores alike). Statistics are
    updated. *)

val probe : t -> int -> bool
(** Hit test without state change or statistics. *)

val flush : t -> unit
(** Invalidate all lines (used at context switches if desired). *)

val accesses : t -> int

val misses : t -> int

val miss_rate : t -> float
(** Misses over accesses; 0 when never accessed. *)

val reset_stats : t -> unit

val n_sets : t -> int

val pp_stats : Format.formatter -> t -> unit
