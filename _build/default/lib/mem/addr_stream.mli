(** Synthetic per-thread data-address generators.

    Two-region locality model: with probability [seq_frac] the access
    walks a small hot region (cache-resident for a single thread), and
    otherwise it addresses the full working set uniformly at random, so
    the single-thread miss rate is approximately
    [(1 - seq_frac) * (1 - cache_bytes / working_set_bytes)]. Each
    thread's stream lives in a disjoint address region, so co-scheduled
    threads compete for cache capacity without aliasing, as distinct
    processes would. *)

type t

val create :
  seed:int64 ->
  working_set_bytes:int ->
  seq_frac:float ->
  region_base:int ->
  t

val next : t -> int
(** Next data address (4-byte aligned, within the region). *)

val region_base : t -> int
