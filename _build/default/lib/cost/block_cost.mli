(** Analytic cost model for individual merge-control blocks.

    The paper takes its numbers from gate-level designs in its reference
    [7] (Gupta et al., DSD'07), which are not reproducible from the text;
    this is a transparent re-derivation calibrated to the magnitudes and
    orderings of Figures 5 and 9. Two quantities per block: transistor
    count (area) and gate delay. SMT merge control has two delay
    components — conflict/select logic and routing-signal generation —
    because routing signals can be computed in parallel with downstream
    merge-select logic (the §4.2 overlap that makes 3SCC/2SC3 as fast as
    1S).

    [width] is the number of threads entering a block (accumulated packet
    width plus new input): wider packets mean wider comparators, so cost
    grows with cascade depth. *)

type params = {
  smt_select_base : float;
  smt_select_per_width : float;
  smt_routing_base : float;
  smt_routing_per_width : float;
  smt_trans_base : float;
  smt_trans_per_width : float;
  csmt_select_base : float;
  csmt_select_per_width : float;
  csmt_trans_base : float;
  csmt_trans_per_width : float;
  cpl_delay_base : float;
  cpl_delay_per_log : float;
  cpl_trans_per_subset : float;
  cpl_trans_per_width : float;
}

val default : params
(** Calibrated against the paper's Figure 5 (merge control cost vs thread
    count) and Figure 9 (per-scheme cost). *)

val smt_select_delay : params -> width:int -> float
(** Operation-level conflict check and thread selection. *)

val smt_routing_delay : params -> width:int -> float
(** Routing-signal generation, overlappable with downstream selects. *)

val smt_transistors : params -> width:int -> float

val csmt_select_delay : params -> width:int -> float
(** Serial cluster-level stage (mask AND + OR-reduce + update). *)

val csmt_transistors : params -> width:int -> float

val csmt_parallel_delay : params -> inputs:int -> float
(** Parallel CSMT block over [inputs] inputs: all subset selections
    checked at once, delay logarithmic in the input count. *)

val csmt_parallel_transistors : params -> inputs:int -> width:int -> float
(** Exponential in the input count (2^(k-1) candidate subsets). *)

val routing_block_transistors :
  threads:int -> clusters:int -> issue_width:int -> float
(** Area of the routing block / per-cluster muxes — the same for SMT and
    CSMT merging at equal thread count (2.2 of the paper, following the
    interconnect model of its reference [12]); excluded from the
    per-scheme comparisons because it cancels out. *)
