lib/cost/scheme_cost.ml: Block_cost List Vliw_isa Vliw_merge
