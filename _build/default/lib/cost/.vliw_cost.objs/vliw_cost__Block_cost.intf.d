lib/cost/block_cost.mli:
