lib/cost/block_cost.ml:
