lib/cost/scheme_cost.mli: Block_cost Vliw_isa Vliw_merge
