type params = {
  smt_select_base : float;
  smt_select_per_width : float;
  smt_routing_base : float;
  smt_routing_per_width : float;
  smt_trans_base : float;
  smt_trans_per_width : float;
  csmt_select_base : float;
  csmt_select_per_width : float;
  csmt_trans_base : float;
  csmt_trans_per_width : float;
  cpl_delay_base : float;
  cpl_delay_per_log : float;
  cpl_trans_per_subset : float;
  cpl_trans_per_width : float;
}

let default =
  {
    smt_select_base = 6.0;
    smt_select_per_width = 2.0;
    smt_routing_base = 10.0;
    smt_routing_per_width = 2.0;
    smt_trans_base = 4000.0;
    smt_trans_per_width = 600.0;
    csmt_select_base = 4.0;
    csmt_select_per_width = 0.5;
    csmt_trans_base = 220.0;
    csmt_trans_per_width = 40.0;
    cpl_delay_base = 3.0;
    cpl_delay_per_log = 2.0;
    cpl_trans_per_subset = 100.0;
    cpl_trans_per_width = 60.0;
  }

let extra width = float_of_int (max 0 (width - 2))

let smt_select_delay p ~width = p.smt_select_base +. (p.smt_select_per_width *. extra width)

let smt_routing_delay p ~width =
  p.smt_routing_base +. (p.smt_routing_per_width *. extra width)

let smt_transistors p ~width = p.smt_trans_base +. (p.smt_trans_per_width *. extra width)

let csmt_select_delay p ~width =
  p.csmt_select_base +. (p.csmt_select_per_width *. extra width)

let csmt_transistors p ~width = p.csmt_trans_base +. (p.csmt_trans_per_width *. extra width)

let ceil_log2 k =
  let rec go acc n = if n >= k then acc else go (acc + 1) (n * 2) in
  go 0 1

let csmt_parallel_delay p ~inputs =
  p.cpl_delay_base +. (p.cpl_delay_per_log *. float_of_int (ceil_log2 inputs))

let csmt_parallel_transistors p ~inputs ~width =
  let subsets = float_of_int ((1 lsl (inputs - 1)) - 1) in
  (p.cpl_trans_per_subset *. subsets) +. (p.cpl_trans_per_width *. float_of_int width)

(* The routing block / per-cluster N-to-1 muxes (Figures 2-3). The paper
   treats this as a fixed cost identical for SMT and CSMT (the wire and
   mux area depend only on thread count and datapath width, following the
   interconnect methodology of its reference [12]), so it cancels out of
   scheme comparisons; it is provided for completeness. *)
let routing_area_per_thread_slot = 90.0

let routing_block_transistors ~threads ~clusters ~issue_width =
  routing_area_per_thread_slot
  *. float_of_int (threads * clusters * issue_width)
