(** Figure 5: thread-merge-control cost versus thread count (2–8) for
    SMT, serial CSMT ("CSMT SL") and parallel CSMT ("CSMT PL"). *)

type point = {
  threads : int;
  smt : float * float;  (** (gate delays, transistors). *)
  csmt_serial : float * float;
  csmt_parallel : float * float;
}

val run : ?params:Vliw_cost.Block_cost.params -> unit -> point list
(** Thread counts 2 to 8 as in the paper. *)

val render : point list -> string

val csv_rows : point list -> string list * string list list
