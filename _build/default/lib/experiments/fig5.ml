type point = {
  threads : int;
  smt : float * float;
  csmt_serial : float * float;
  csmt_parallel : float * float;
}

let run ?params () =
  List.init 7 (fun i ->
      let n = i + 2 in
      {
        threads = n;
        smt = Vliw_cost.Scheme_cost.smt_cascade_cost ?params n;
        csmt_serial = Vliw_cost.Scheme_cost.csmt_serial_cost ?params n;
        csmt_parallel = Vliw_cost.Scheme_cost.csmt_parallel_cost ?params n;
      })

let render points =
  let table =
    Vliw_util.Text_table.create
      ~header:
        [
          "Threads";
          "SMT delay";
          "SMT trans";
          "CSMT SL delay";
          "CSMT SL trans";
          "CSMT PL delay";
          "CSMT PL trans";
        ]
  in
  List.iter
    (fun p ->
      let sd, st = p.smt and cd, ct = p.csmt_serial and pd, pt = p.csmt_parallel in
      Vliw_util.Text_table.add_row table
        [
          string_of_int p.threads;
          Printf.sprintf "%.0f" sd;
          Printf.sprintf "%.0f" st;
          Printf.sprintf "%.0f" cd;
          Printf.sprintf "%.0f" ct;
          Printf.sprintf "%.0f" pd;
          Printf.sprintf "%.0f" pt;
        ])
    points;
  "Figure 5: thread merge control cost vs number of threads\n"
  ^ Vliw_util.Text_table.render table

let csv_rows points =
  ( [ "threads"; "smt_delay"; "smt_transistors"; "csmt_sl_delay";
      "csmt_sl_transistors"; "csmt_pl_delay"; "csmt_pl_transistors" ],
    List.map
      (fun p ->
        let sd, st = p.smt and cd, ct = p.csmt_serial and pd, pt = p.csmt_parallel in
        string_of_int p.threads
        :: List.map (Printf.sprintf "%.2f") [ sd; st; cd; ct; pd; pt ])
      points )
