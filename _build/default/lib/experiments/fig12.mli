(** Figure 12: performance versus merge-network gate delay, one point per
    scheme. *)

type point = { name : string; ipc : float; delay : float }

val run : ?scale:Common.scale -> ?seed:int64 -> unit -> point list

val of_fig10 : Fig10.data -> point list

val render : point list -> string

val csv_rows : point list -> string list * string list list
