type point = { name : string; ipc : float; delay : float }

let of_fig10 (d : Fig10.data) =
  List.map
    (fun name ->
      {
        name;
        ipc = Fig10.scheme_average d name;
        delay =
          Vliw_cost.Scheme_cost.delay (Vliw_merge.Catalog.find_exn name).scheme;
      })
    d.grid.scheme_names

let run ?scale ?seed () = of_fig10 (Fig10.run ?scale ?seed ())

let render points =
  let scatter =
    Vliw_util.Ascii_chart.scatter ~x_label:"IPC" ~y_label:"gate delays"
      (List.map (fun p -> (p.name, p.ipc, p.delay)) points)
  in
  "Figure 12: performance vs gate delays\n" ^ scatter

let csv_rows points =
  ( [ "scheme"; "ipc"; "delay" ],
    List.map
      (fun p -> [ p.name; Printf.sprintf "%.4f" p.ipc; Printf.sprintf "%.2f" p.delay ])
      points )
