type row = {
  scheme : string;
  weighted_speedup : float;
  fairness : float;
  ipc : float;
}

let run ?(scale = Common.Default) ?(seed = Common.default_seed) ?(mix = "LLHH")
    ?(schemes = [ "1S"; "3CCC"; "2SC3"; "3SSS" ]) () =
  let schedule = Common.schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  let members = (Vliw_workloads.Mixes.find_exn mix).members in
  let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng) machine p)
      members
  in
  (* Solo baseline: each thread alone on the machine, same programs. *)
  let solo_ipc =
    List.map
      (fun program ->
        let config = Vliw_sim.Config.make ~machine (Vliw_merge.Scheme.thread 0) in
        let m = Vliw_sim.Multitask.run_programs config ~seed ~schedule [ program ] in
        (* One thread: per-thread ops over the run's cycles. *)
        float_of_int m.per_thread.(0).ops /. float_of_int (max 1 m.cycles))
      programs
  in
  List.map
    (fun name ->
      let config =
        Vliw_sim.Config.make ~machine (Vliw_merge.Scheme_name.parse_exn name)
      in
      let m = Vliw_sim.Multitask.run_programs config ~seed ~schedule programs in
      let mt_ipc =
        Array.to_list m.per_thread
        |> List.map (fun (pt : Vliw_sim.Metrics.per_thread) ->
               float_of_int pt.ops /. float_of_int (max 1 m.cycles))
      in
      let ratios = List.map2 (fun mt solo -> mt /. solo) mt_ipc solo_ipc in
      let weighted_speedup = List.fold_left ( +. ) 0.0 ratios in
      let fairness =
        let mn = List.fold_left min infinity ratios in
        let mx = List.fold_left max 0.0 ratios in
        if mx <= 0.0 then 0.0 else mn /. mx
      in
      { scheme = name; weighted_speedup; fairness; ipc = Vliw_sim.Metrics.ipc m })
    schemes

let render mix rows =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Scheme"; "IPC"; "Weighted speedup"; "Fairness" ]
  in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row table
        [
          r.scheme;
          Printf.sprintf "%.2f" r.ipc;
          Printf.sprintf "%.2f" r.weighted_speedup;
          Printf.sprintf "%.2f" r.fairness;
        ])
    rows;
  Printf.sprintf
    "Weighted speedup and fairness on %s (vs each thread running alone)\n%s"
    mix
    (Vliw_util.Text_table.render table)
