let render () =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "ILP Comb"; "Thread 0"; "Thread 1"; "Thread 2"; "Thread 3" ]
  in
  List.iter
    (fun (mix : Vliw_workloads.Mixes.t) ->
      Vliw_util.Text_table.add_row table
        (mix.name
        :: List.map (fun (p : Vliw_compiler.Profile.t) -> p.name) mix.members))
    Vliw_workloads.Mixes.all;
  "Table 2: workload configurations\n" ^ Vliw_util.Text_table.render table
