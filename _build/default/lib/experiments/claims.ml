type t = {
  smt4_over_smt2_pct : float;
  smt_over_csmt_pct : float;
  scheme_2sc3_over_csmt4_pct : float;
  scheme_2sc3_over_smt2_pct : float;
  scheme_2sc3_below_smt4_pct : float;
}

let of_fig10 (d : Fig10.data) =
  let avg name = Fig10.scheme_average d name in
  let pct = Vliw_util.Stats.pct_diff in
  let smt4 = avg "3SSS" and smt2 = avg "1S" and csmt4 = avg "3CCC" in
  let sc3 = avg "2SC3" in
  {
    smt4_over_smt2_pct = pct smt4 smt2;
    smt_over_csmt_pct = pct smt4 csmt4;
    scheme_2sc3_over_csmt4_pct = pct sc3 csmt4;
    scheme_2sc3_over_smt2_pct = pct sc3 smt2;
    scheme_2sc3_below_smt4_pct = pct sc3 smt4;
  }

let run ?scale ?seed () = of_fig10 (Fig10.run ?scale ?seed ())

let render c =
  String.concat "\n"
    [
      "Headline claims (simulated vs paper):";
      Printf.sprintf "  4T SMT vs 2T SMT:      %+6.1f%%  (paper +61%%)"
        c.smt4_over_smt2_pct;
      Printf.sprintf "  4T SMT vs 4T CSMT:     %+6.1f%%  (paper +27%%)"
        c.smt_over_csmt_pct;
      Printf.sprintf "  2SC3  vs 4T CSMT:      %+6.1f%%  (paper +14%%)"
        c.scheme_2sc3_over_csmt4_pct;
      Printf.sprintf "  2SC3  vs 2T SMT:       %+6.1f%%  (paper +45%%)"
        c.scheme_2sc3_over_smt2_pct;
      Printf.sprintf "  2SC3  vs 4T SMT:       %+6.1f%%  (paper -11%%)"
        c.scheme_2sc3_below_smt4_pct;
      "";
    ]
