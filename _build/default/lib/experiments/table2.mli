(** Table 2: the workload configurations (static data, rendered for
    completeness and checked for label consistency). *)

val render : unit -> string
