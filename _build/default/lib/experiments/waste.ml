type row = {
  scheme : string;
  ipc : float;
  vertical : float;
  horizontal : float;
  merge_degree : float;
}

let run ?(scale = Common.Default) ?(seed = Common.default_seed) ?(mix = "LLHH")
    ?(schemes = [ "ST"; "1S"; "3CCC"; "2SC3"; "3SSS" ]) () =
  let schedule = Common.schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  let members = (Vliw_workloads.Mixes.find_exn mix).members in
  let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng) machine p)
      members
  in
  List.map
    (fun name ->
      let config =
        Vliw_sim.Config.make ~machine (Vliw_merge.Scheme_name.parse_exn name)
      in
      let m = Vliw_sim.Multitask.run_programs config ~seed ~schedule programs in
      {
        scheme = name;
        ipc = Vliw_sim.Metrics.ipc m;
        vertical = Vliw_sim.Metrics.vertical_waste m;
        horizontal = Vliw_sim.Metrics.horizontal_waste m;
        merge_degree = Vliw_sim.Metrics.avg_threads_merged m;
      })
    schemes

let render mix rows =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Scheme"; "IPC"; "Vertical waste"; "Horizontal waste"; "Merge degree" ]
  in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row table
        [
          r.scheme;
          Printf.sprintf "%.2f" r.ipc;
          Printf.sprintf "%.1f%%" (100.0 *. r.vertical);
          Printf.sprintf "%.1f%%" (100.0 *. r.horizontal);
          Printf.sprintf "%.2f" r.merge_degree;
        ])
    rows;
  Printf.sprintf "Issue-waste decomposition on %s\n%s" mix
    (Vliw_util.Text_table.render table)
