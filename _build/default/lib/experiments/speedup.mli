(** Weighted speedup and fairness (Snavely & Tullsen's multithreading
    metrics), which the paper does not report but which sharpen its IPC
    comparison: raw IPC can be inflated by favouring high-ILP threads.

    For a mix under scheme S: each thread's multithreaded IPC is compared
    with its IPC running alone on the same machine.
    - weighted speedup = sum over threads of IPC_mt / IPC_alone
      (4.0 would mean four threads each running at full solo speed);
    - fairness = min over threads of relative progress divided by max
      (1.0 = perfectly fair). *)

type row = {
  scheme : string;
  weighted_speedup : float;
  fairness : float;
  ipc : float;
}

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?mix:string ->
  ?schemes:string list ->
  unit ->
  row list
(** Defaults: mix LLHH; schemes 1S, 3CCC, 2SC3, 3SSS. *)

val render : string -> row list -> string
