type row = { label : string; avg_ipc : float; avg_vertical_waste : float }

let configs () =
  let scheme name = (Vliw_merge.Catalog.find_exn name).scheme in
  let four_contexts = scheme "3SSS" in
  [
    ("single-thread", Vliw_sim.Config.make (scheme "ST"));
    ("IMT (4 ctx)", Vliw_sim.Config.make ~policy:Vliw_sim.Policy.Imt four_contexts);
    ( "BMT (4 ctx)",
      Vliw_sim.Config.make ~policy:Vliw_sim.Policy.default_bmt four_contexts );
    ("CSMT 3CCC", Vliw_sim.Config.make (scheme "3CCC"));
    ("mixed 2SC3", Vliw_sim.Config.make (scheme "2SC3"));
    ("SMT 3SSS", Vliw_sim.Config.make (scheme "3SSS"));
  ]

let run ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?(mixes = Vliw_workloads.Mixes.names) () =
  let schedule = Common.schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  let programs_of_mix =
    List.map
      (fun mix_name ->
        let mix = Vliw_workloads.Mixes.find_exn mix_name in
        let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
        List.map
          (fun p ->
            Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng)
              machine p)
          mix.members)
      mixes
  in
  List.map
    (fun (label, config) ->
      let metrics =
        List.map
          (fun programs ->
            Vliw_sim.Multitask.run_programs config ~seed ~schedule programs)
          programs_of_mix
      in
      {
        label;
        avg_ipc =
          Vliw_util.Stats.mean
            (Array.of_list (List.map Vliw_sim.Metrics.ipc metrics));
        avg_vertical_waste =
          Vliw_util.Stats.mean
            (Array.of_list (List.map Vliw_sim.Metrics.vertical_waste metrics));
      })
    (configs ())

let render rows =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Technique"; "Avg IPC"; "Vertical waste" ]
  in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row table
        [
          r.label;
          Printf.sprintf "%.2f" r.avg_ipc;
          Printf.sprintf "%.1f%%" (100.0 *. r.avg_vertical_waste);
        ])
    rows;
  "Baselines: multithreading techniques on the Table 2 mixes\n"
  ^ Vliw_util.Text_table.render table
