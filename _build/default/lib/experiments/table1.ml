type row = {
  profile : Vliw_compiler.Profile.t;
  ipc_real : float;
  ipc_perfect : float;
}

let run ?scale ?seed () =
  List.map
    (fun profile ->
      {
        profile;
        ipc_real = Common.single_thread_ipc ?scale ?seed ~perfect:false profile;
        ipc_perfect = Common.single_thread_ipc ?scale ?seed ~perfect:true profile;
      })
    Vliw_workloads.Benchmarks.all

let render rows =
  let table =
    Vliw_util.Text_table.create
      ~header:
        [ "Benchmark"; "ILP"; "Description"; "IPCr"; "paper"; "IPCp"; "paper" ]
  in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row table
        [
          r.profile.name;
          Vliw_compiler.Profile.ilp_letter r.profile.ilp;
          r.profile.description;
          Printf.sprintf "%.2f" r.ipc_real;
          Printf.sprintf "%.2f" r.profile.target_ipc_real;
          Printf.sprintf "%.2f" r.ipc_perfect;
          Printf.sprintf "%.2f" r.profile.target_ipc_perfect;
        ])
    rows;
  "Table 1: benchmarks, single-thread IPC with real and perfect memory\n"
  ^ Vliw_util.Text_table.render table

let max_rel_error rows =
  List.fold_left
    (fun acc r ->
      let e1 =
        abs_float (r.ipc_real -. r.profile.target_ipc_real)
        /. r.profile.target_ipc_real
      in
      let e2 =
        abs_float (r.ipc_perfect -. r.profile.target_ipc_perfect)
        /. r.profile.target_ipc_perfect
      in
      max acc (max e1 e2))
    0.0 rows

let csv_rows rows =
  ( [ "benchmark"; "ilp"; "ipc_real"; "paper_ipc_real"; "ipc_perfect"; "paper_ipc_perfect" ],
    List.map
      (fun r ->
        [
          r.profile.name;
          Vliw_compiler.Profile.ilp_letter r.profile.ilp;
          Printf.sprintf "%.4f" r.ipc_real;
          Printf.sprintf "%.2f" r.profile.target_ipc_real;
          Printf.sprintf "%.4f" r.ipc_perfect;
          Printf.sprintf "%.2f" r.profile.target_ipc_perfect;
        ])
      rows )
