(** The paper's headline quantitative claims, computed from one Figure 10
    grid so EXPERIMENTS.md and the tests check exactly what the harness
    prints. *)

type t = {
  smt4_over_smt2_pct : float;  (** Paper: +61% (Fig. 4). *)
  smt_over_csmt_pct : float;  (** Paper: +27% average (Fig. 6). *)
  scheme_2sc3_over_csmt4_pct : float;  (** Paper: +14%. *)
  scheme_2sc3_over_smt2_pct : float;  (** Paper: +45%. *)
  scheme_2sc3_below_smt4_pct : float;  (** Paper: -11%. *)
}

val of_fig10 : Fig10.data -> t

val run : ?scale:Common.scale -> ?seed:int64 -> unit -> t

val render : t -> string
