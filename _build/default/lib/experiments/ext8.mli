(** Extension beyond the paper: 8-thread merging schemes.

    The paper evaluates merging-scheme performance only for 4 threads
    ("for space reasons", §4) while its Figure 5 projects merge-control
    cost up to 8 threads. This experiment closes that gap: it evaluates
    representative 8-thread schemes — pure CSMT (serial and parallel),
    pure SMT, and mixed designs in the 2SC3 spirit — on doubled Table 2
    workloads, reporting cost next to performance. *)

type entry = { name : string; scheme : Vliw_merge.Scheme.t; description : string }

val schemes : entry list
(** C8, 8-thread serial CSMT, 2SC7 (one SMT pair + 7-input parallel
    CSMT), 4SC5 (4-thread SMT cascade + 5-input parallel CSMT), SP4C
    (four SMT pairs merged by a 4-input parallel CSMT), and the 8-thread
    SMT cascade. *)

type row = {
  name : string;
  delay : float;
  transistors : float;
  avg_ipc : float;
}

val run : ?scale:Common.scale -> ?seed:int64 -> unit -> row list
(** Average IPC over the nine doubled mixes (each Table 2 mix run with
    two instances of every member). *)

val render : row list -> string
