module S = Vliw_merge.Scheme

type entry = { name : string; scheme : S.t; description : string }

let t = S.thread

let schemes =
  [
    {
      name = "C8";
      scheme = S.csmt_par 8;
      description = "8-input parallel CSMT block";
    };
    {
      name = "CSMT8";
      scheme = S.csmt_cascade 8;
      description = "8-thread serial CSMT cascade";
    };
    {
      name = "2SC7";
      scheme =
        S.csmt_parallel (S.smt (t 0) (t 1) :: List.init 6 (fun i -> t (i + 2)));
      description = "one SMT pair, rest merged by parallel CSMT (2SC3 scaled)";
    };
    {
      name = "SP4C";
      scheme =
        S.csmt_parallel
          [ S.smt (t 0) (t 1); S.smt (t 2) (t 3); S.smt (t 4) (t 5); S.smt (t 6) (t 7) ];
      description = "four SMT pairs merged by a 4-input parallel CSMT";
    };
    {
      name = "4SC5";
      scheme =
        (let smt4 = S.smt (S.smt (S.smt (t 0) (t 1)) (t 2)) (t 3) in
         S.csmt_parallel (smt4 :: List.init 4 (fun i -> t (i + 4))));
      description = "4-thread SMT cascade, rest merged by parallel CSMT";
    };
    {
      name = "SMT8";
      scheme = S.smt_cascade 8;
      description = "8-thread serial SMT cascade";
    };
  ]

type row = { name : string; delay : float; transistors : float; avg_ipc : float }

let doubled_mixes () =
  List.map
    (fun (mix : Vliw_workloads.Mixes.t) ->
      (mix.name ^ "x2", mix.members @ mix.members))
    Vliw_workloads.Mixes.all

let run ?(scale = Common.Default) ?(seed = Common.default_seed) () =
  let schedule = Common.schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  let workloads =
    List.map
      (fun (name, members) ->
        let rng = Vliw_util.Rng.create (Int64.add seed 0x8E37L) in
        ( name,
          List.map
            (fun p ->
              Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng)
                machine p)
            members ))
      (doubled_mixes ())
  in
  List.map
    (fun e ->
      let config = Vliw_sim.Config.make ~machine e.scheme in
      let ipcs =
        List.map
          (fun (_, programs) ->
            Vliw_sim.Metrics.ipc
              (Vliw_sim.Multitask.run_programs config ~seed ~schedule programs))
          workloads
      in
      {
        name = e.name;
        delay = Vliw_cost.Scheme_cost.delay e.scheme;
        transistors = Vliw_cost.Scheme_cost.transistors e.scheme;
        avg_ipc = Vliw_util.Stats.mean (Array.of_list ipcs);
      })
    schemes

let render rows =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Scheme"; "Gate delays"; "Transistors"; "Avg IPC" ]
  in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row table
        [
          r.name;
          Printf.sprintf "%.1f" r.delay;
          Printf.sprintf "%.0f" r.transistors;
          Printf.sprintf "%.2f" r.avg_ipc;
        ])
    rows;
  "Extension: 8-thread merging schemes (cost model + doubled Table 2 mixes)\n"
  ^ Vliw_util.Text_table.render table
