(** Figure 9: merging-hardware cost (gate delays and transistors) for
    every scheme, in the paper's cost-ascending order. *)

type row = { name : string; delay : float; transistors : float }

val run : ?params:Vliw_cost.Block_cost.params -> unit -> row list

val render : row list -> string

val csv_rows : row list -> string list * string list list
