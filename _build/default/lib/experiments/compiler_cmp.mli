(** Compiler-mode comparison: block scheduling vs trace scheduling.

    The paper's toolchain uses Trace Scheduling; our default substrate
    schedules basic blocks. This experiment quantifies what the global
    scheduler changes: single-thread IPC rises (fewer bubbles, more ILP
    extracted across block boundaries), and in turn multithreaded
    merging finds fewer holes — the classic tension between static ILP
    extraction and multithreading.

    Two parts: per-benchmark single-thread IPC (perfect memory) under
    both modes, and the 3CCC / 2SC3 / 3SSS ladder on a mixed workload
    under both modes. *)

type bench_row = {
  name : string;
  block_ipc : float;
  trace_ipc : float;  (** Trace regions of {!trace_len} blocks. *)
}

type ladder_row = { scheme : string; block_ipc : float; trace_ipc : float }

type data = {
  trace_len : int;
  benches : bench_row list;
  ladder : ladder_row list;  (** On the LLHH mix. *)
}

val run : ?scale:Common.scale -> ?seed:int64 -> ?trace_len:int -> unit -> data
(** Default trace length: 4 blocks per region. *)

val render : data -> string
