type point = { param : string; csmt : float; mixed : float; smt : float }

type sweep = { title : string; points : point list }

let schemes = [ "3CCC"; "2SC3"; "3SSS" ]

let measure ~machine ~schedule ~seed mix_name =
  let mix = Vliw_workloads.Mixes.find_exn mix_name in
  let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng) machine p)
      mix.members
  in
  List.map
    (fun name ->
      let config =
        Vliw_sim.Config.make ~machine (Vliw_merge.Catalog.find_exn name).scheme
      in
      Vliw_sim.Metrics.ipc
        (Vliw_sim.Multitask.run_programs config ~seed ~schedule programs))
    schemes

let point ~machine ~schedule ~seed ~mix param =
  match measure ~machine ~schedule ~seed mix with
  | [ csmt; mixed; smt ] -> { param; csmt; mixed; smt }
  | _ -> assert false

let miss_penalty ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?(mix = "LLHH") () =
  let schedule = Common.schedule_of_scale scale in
  {
    title = "DCache/ICache miss penalty (paper: 20 cycles)";
    points =
      List.map
        (fun p ->
          let machine = { Vliw_isa.Machine.default with miss_penalty = p } in
          point ~machine ~schedule ~seed ~mix (Printf.sprintf "%d cycles" p))
        [ 10; 20; 40; 80 ];
  }

let dcache_size ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?(mix = "LLHH") () =
  let schedule = Common.schedule_of_scale scale in
  {
    title = "DCache size (paper: 64 KB)";
    points =
      List.map
        (fun kb ->
          let machine =
            {
              Vliw_isa.Machine.default with
              dcache = { Vliw_isa.Machine.default.dcache with size_bytes = kb * 1024 };
            }
          in
          point ~machine ~schedule ~seed ~mix (Printf.sprintf "%d KB" kb))
        [ 16; 32; 64; 128 ];
  }

let branch_penalty ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?(mix = "LLHH") () =
  let schedule = Common.schedule_of_scale scale in
  {
    title = "Taken-branch penalty (paper: 2 cycles)";
    points =
      List.map
        (fun p ->
          let machine = { Vliw_isa.Machine.default with branch_penalty = p } in
          point ~machine ~schedule ~seed ~mix (Printf.sprintf "%d cycles" p))
        [ 0; 2; 4; 8 ];
  }

let timeslice ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?(mix = "LLHH") () =
  let base = Common.schedule_of_scale scale in
  {
    title = "OS timeslice (paper: 1M cycles at full scale)";
    points =
      List.map
        (fun ts ->
          let schedule = { base with Vliw_sim.Multitask.timeslice = ts } in
          point ~machine:Vliw_isa.Machine.default ~schedule ~seed ~mix
            (Printf.sprintf "%dk cycles" (ts / 1000)))
        [ 10_000; 50_000; 200_000 ];
  }

let predictor ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?(mix = "LLHH") () =
  let schedule = Common.schedule_of_scale scale in
  {
    title = "Branch predictor (paper: none, fall-through predicted)";
    points =
      List.map
        (fun (label, p) ->
          let machine = { Vliw_isa.Machine.default with predictor = p } in
          point ~machine ~schedule ~seed ~mix label)
        [
          ("none", Vliw_isa.Machine.No_predictor);
          ("bimodal 512", Vliw_isa.Machine.Bimodal 512);
          ("bimodal 4096", Vliw_isa.Machine.Bimodal 4096);
        ];
  }

let all ?scale ?seed ?mix () =
  [
    miss_penalty ?scale ?seed ?mix ();
    dcache_size ?scale ?seed ?mix ();
    branch_penalty ?scale ?seed ?mix ();
    timeslice ?scale ?seed ?mix ();
    predictor ?scale ?seed ?mix ();
  ]

let render sweep =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Value"; "3CCC"; "2SC3"; "3SSS"; "2SC3 vs CSMT" ]
  in
  List.iter
    (fun p ->
      Vliw_util.Text_table.add_row table
        [
          p.param;
          Printf.sprintf "%.2f" p.csmt;
          Printf.sprintf "%.2f" p.mixed;
          Printf.sprintf "%.2f" p.smt;
          Printf.sprintf "%+.0f%%" (Vliw_util.Stats.pct_diff p.mixed p.csmt);
        ])
    sweep.points;
  sweep.title ^ "\n" ^ Vliw_util.Text_table.render table

let render_all sweeps =
  "Sensitivity sweeps (mix LLHH)\n\n"
  ^ String.concat "\n" (List.map render sweeps)
