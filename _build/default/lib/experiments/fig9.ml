type row = { name : string; delay : float; transistors : float }

let run ?params () =
  List.filter_map
    (fun (e : Vliw_merge.Catalog.entry) ->
      if e.name = "ST" then None
      else
        Some
          {
            name = e.name;
            delay = Vliw_cost.Scheme_cost.delay ?params e.scheme;
            transistors = Vliw_cost.Scheme_cost.transistors ?params e.scheme;
          })
    Vliw_merge.Catalog.all

let render rows =
  let table =
    Vliw_util.Text_table.create ~header:[ "Scheme"; "Gate delays"; "Transistors" ]
  in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row table
        [ r.name; Printf.sprintf "%.1f" r.delay; Printf.sprintf "%.0f" r.transistors ])
    rows;
  let chart =
    Vliw_util.Ascii_chart.bar_chart
      (List.map (fun r -> (r.name, r.delay)) rows)
  in
  "Figure 9: merging hardware cost per scheme\n"
  ^ Vliw_util.Text_table.render table
  ^ "\nGate delays:\n" ^ chart

let csv_rows rows =
  ( [ "scheme"; "gate_delays"; "transistors" ],
    List.map
      (fun r ->
        [ r.name; Printf.sprintf "%.2f" r.delay; Printf.sprintf "%.0f" r.transistors ])
      rows )
