(** Issue-waste decomposition (the paper's §1 framing).

    For each scheme: how much of the machine is lost to vertical waste
    (cycles issuing nothing), how much to horizontal waste (empty slots
    in issuing cycles), and how many threads the merge network combines
    per cycle. Shows *where* each merging granularity recovers
    throughput: cluster-level merging removes most vertical waste;
    operation-level merging additionally attacks horizontal waste. *)

type row = {
  scheme : string;
  ipc : float;
  vertical : float;  (** Fraction of cycles with no issue. *)
  horizontal : float;  (** Fraction of slots idle in issuing cycles. *)
  merge_degree : float;  (** Mean threads issuing per non-empty cycle. *)
}

val run :
  ?scale:Common.scale -> ?seed:int64 -> ?mix:string -> ?schemes:string list ->
  unit -> row list
(** Defaults: LLHH; ST, 1S, 3CCC, 2SC3, 3SSS. *)

val render : string -> row list -> string
(** [render mix rows]. *)
