lib/experiments/ablations.mli: Common Vliw_merge
