lib/experiments/waste.mli: Common
