lib/experiments/fig10.ml: Array Common List Printf Vliw_merge Vliw_util
