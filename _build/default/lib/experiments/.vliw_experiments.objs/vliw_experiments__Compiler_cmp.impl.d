lib/experiments/compiler_cmp.ml: Common List Printf Vliw_compiler Vliw_merge Vliw_sim Vliw_util Vliw_workloads
