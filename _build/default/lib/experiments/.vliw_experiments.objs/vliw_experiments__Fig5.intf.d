lib/experiments/fig5.mli: Vliw_cost
