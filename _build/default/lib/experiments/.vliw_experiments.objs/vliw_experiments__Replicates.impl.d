lib/experiments/replicates.ml: Array Claims Common Fig10 List Printf String Vliw_util
