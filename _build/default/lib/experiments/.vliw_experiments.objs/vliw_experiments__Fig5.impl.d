lib/experiments/fig5.ml: List Printf Vliw_cost Vliw_util
