lib/experiments/table2.ml: List Vliw_compiler Vliw_util Vliw_workloads
