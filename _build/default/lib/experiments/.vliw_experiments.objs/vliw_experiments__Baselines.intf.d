lib/experiments/baselines.mli: Common
