lib/experiments/speedup.mli: Common
