lib/experiments/table1.ml: Common List Printf Vliw_compiler Vliw_util Vliw_workloads
