lib/experiments/ext8.mli: Common Vliw_merge
