lib/experiments/ext8.ml: Array Common Int64 List Printf Vliw_compiler Vliw_cost Vliw_isa Vliw_merge Vliw_sim Vliw_util Vliw_workloads
