lib/experiments/claims.mli: Common Fig10
