lib/experiments/sensitivity.mli: Common
