lib/experiments/fig6.ml: Array Common List Printf Vliw_util
