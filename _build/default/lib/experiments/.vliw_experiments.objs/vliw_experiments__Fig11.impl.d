lib/experiments/fig11.ml: Fig10 List Printf Vliw_cost Vliw_merge Vliw_util
