lib/experiments/replicates.mli: Common
