lib/experiments/claims.ml: Fig10 Printf String Vliw_util
