lib/experiments/fig12.mli: Common Fig10
