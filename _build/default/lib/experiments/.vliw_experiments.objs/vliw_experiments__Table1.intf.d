lib/experiments/table1.mli: Common Vliw_compiler
