lib/experiments/common.ml: Array Int64 List Printf Vliw_compiler Vliw_isa Vliw_merge Vliw_sim Vliw_util Vliw_workloads
