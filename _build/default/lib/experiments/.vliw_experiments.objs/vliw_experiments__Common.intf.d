lib/experiments/common.mli: Vliw_compiler Vliw_sim
