lib/experiments/fig9.mli: Vliw_cost
