lib/experiments/compiler_cmp.mli: Common
