lib/experiments/fig4.ml: Common Printf Vliw_util
