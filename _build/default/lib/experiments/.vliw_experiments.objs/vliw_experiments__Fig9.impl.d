lib/experiments/fig9.ml: List Printf Vliw_cost Vliw_merge Vliw_util
