lib/experiments/fig12.ml: Fig10 List Printf Vliw_cost Vliw_merge Vliw_util
