lib/experiments/sensitivity.ml: Common Int64 List Printf String Vliw_compiler Vliw_isa Vliw_merge Vliw_sim Vliw_util Vliw_workloads
