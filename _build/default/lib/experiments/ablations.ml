type variant = {
  label : string;
  rotate_priority : bool;
  stall_on_dmiss : bool;
  routing : Vliw_merge.Conflict.routing_mode;
}

let baseline =
  {
    label = "baseline";
    rotate_priority = true;
    stall_on_dmiss = true;
    routing = Vliw_merge.Conflict.Flexible;
  }

let variants =
  [
    baseline;
    { baseline with label = "no-rotation"; rotate_priority = false };
    { baseline with label = "nonblocking-dmiss"; stall_on_dmiss = false };
    {
      baseline with
      label = "fixed-slot-smt";
      routing = Vliw_merge.Conflict.Fixed_slots;
    };
  ]

type row = { variant : string; ipc_by_scheme : (string * float) list }

let run ?(scale = Common.Default) ?(seed = Common.default_seed)
    ?(schemes = [ "3CCC"; "2SC3"; "3SSS" ]) ?(mixes = [ "LLLL"; "LLHH"; "HHHH" ]) () =
  let schedule = Common.schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  (* Compile each mix once; all variants and schemes share the code. *)
  let programs_of_mix =
    List.map
      (fun mix_name ->
        let mix = Vliw_workloads.Mixes.find_exn mix_name in
        let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
        List.map
          (fun p ->
            Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng)
              machine p)
          mix.members)
      mixes
  in
  List.map
    (fun v ->
      let ipc_by_scheme =
        List.map
          (fun scheme_name ->
            let entry = Vliw_merge.Catalog.find_exn scheme_name in
            let config =
              Vliw_sim.Config.make ~machine ~rotate_priority:v.rotate_priority
                ~stall_on_dmiss:v.stall_on_dmiss ~routing:v.routing entry.scheme
            in
            let ipcs =
              List.map
                (fun programs ->
                  Vliw_sim.Metrics.ipc
                    (Vliw_sim.Multitask.run_programs config ~seed ~schedule programs))
                programs_of_mix
            in
            (scheme_name, Vliw_util.Stats.mean (Array.of_list ipcs)))
          schemes
      in
      { variant = v.label; ipc_by_scheme })
    variants

let render rows =
  match rows with
  | [] -> "(no ablation rows)\n"
  | first :: _ ->
    let schemes = List.map fst first.ipc_by_scheme in
    let table = Vliw_util.Text_table.create ~header:("Variant" :: schemes) in
    List.iter
      (fun r ->
        Vliw_util.Text_table.add_row table
          (r.variant
          :: List.map (fun (_, ipc) -> Printf.sprintf "%.2f" ipc) r.ipc_by_scheme))
      rows;
    "Ablations: average IPC (LLLL, LLHH, HHHH) under design variants\n"
    ^ Vliw_util.Text_table.render table
