(** Ablation studies for the design choices called out in DESIGN.md §6.

    Variants, each against the paper-faithful baseline:
    - no-rotation: thread 0 permanently owns the highest-priority merge
      port (fairness off);
    - non-blocking D$: data-cache misses don't stall the thread (ideal
      memory-level parallelism);
    - fixed-slot SMT: the routing block is removed, so operation-level
      merging only succeeds when pinned slots don't collide. *)

type variant = {
  label : string;
  rotate_priority : bool;
  stall_on_dmiss : bool;
  routing : Vliw_merge.Conflict.routing_mode;
}

val variants : variant list
(** baseline, no-rotation, nonblocking-dmiss, fixed-slot-smt. *)

type row = {
  variant : string;
  ipc_by_scheme : (string * float) list;  (** Average IPC over the mixes. *)
}

val run :
  ?scale:Common.scale ->
  ?seed:int64 ->
  ?schemes:string list ->
  ?mixes:string list ->
  unit ->
  row list
(** Defaults: schemes 3CCC, 2SC3, 3SSS; mixes LLLL, LLHH, HHHH. *)

val render : row list -> string
