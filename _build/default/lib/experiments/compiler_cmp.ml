type bench_row = { name : string; block_ipc : float; trace_ipc : float }

type ladder_row = { scheme : string; block_ipc : float; trace_ipc : float }

type data = {
  trace_len : int;
  benches : bench_row list;
  ladder : ladder_row list;
}

let run ?(scale = Common.Default) ?(seed = Common.default_seed) ?(trace_len = 4)
    () =
  let schedule = Common.schedule_of_scale scale in
  let single mode profile =
    let config = Vliw_sim.Config.make (Vliw_merge.Scheme.thread 0) in
    Vliw_sim.Metrics.ipc
      (Vliw_sim.Multitask.run config ~perfect_mem:true ~seed ~schedule ~mode
         [ profile ])
  in
  let benches =
    List.map
      (fun (p : Vliw_compiler.Profile.t) ->
        {
          name = p.name;
          block_ipc = single `Block p;
          trace_ipc = single (`Trace trace_len) p;
        })
      Vliw_workloads.Benchmarks.all
  in
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  let ladder_entry scheme_name =
    let config =
      Vliw_sim.Config.make (Vliw_merge.Catalog.find_exn scheme_name).scheme
    in
    let ipc mode =
      Vliw_sim.Metrics.ipc
        (Vliw_sim.Multitask.run config ~seed ~schedule ~mode mix.members)
    in
    { scheme = scheme_name; block_ipc = ipc `Block; trace_ipc = ipc (`Trace trace_len) }
  in
  {
    trace_len;
    benches;
    ladder = List.map ladder_entry [ "3CCC"; "2SC3"; "3SSS" ];
  }

let render d =
  let b = Vliw_util.Text_table.create ~header:[ "Benchmark"; "Block"; "Trace"; "gain" ] in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row b
        [
          r.name;
          Printf.sprintf "%.2f" r.block_ipc;
          Printf.sprintf "%.2f" r.trace_ipc;
          Printf.sprintf "%+.0f%%" (Vliw_util.Stats.pct_diff r.trace_ipc r.block_ipc);
        ])
    d.benches;
  let l =
    Vliw_util.Text_table.create ~header:[ "Scheme (LLHH)"; "Block"; "Trace"; "gain" ]
  in
  List.iter
    (fun r ->
      Vliw_util.Text_table.add_row l
        [
          r.scheme;
          Printf.sprintf "%.2f" r.block_ipc;
          Printf.sprintf "%.2f" r.trace_ipc;
          Printf.sprintf "%+.0f%%" (Vliw_util.Stats.pct_diff r.trace_ipc r.block_ipc);
        ])
    d.ladder;
  Printf.sprintf
    "Compiler comparison: block scheduling vs trace scheduling (%d-block regions)\n\n\
     Single-thread IPC, perfect memory:\n%s\n\
     Merging-scheme ladder:\n%s"
    d.trace_len
    (Vliw_util.Text_table.render b)
    (Vliw_util.Text_table.render l)
