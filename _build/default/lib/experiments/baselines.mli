(** Multithreading-technique baselines (§1 of the paper).

    The paper motivates merging against the classic alternatives: block
    multithreading (BMT) and interleaved multithreading (IMT) remove only
    vertical waste; simultaneous merging also attacks horizontal waste.
    This experiment quantifies that ladder on the Table 2 mixes:
    single-thread, IMT, BMT, 4-thread CSMT, 2SC3 and 4-thread SMT on the
    same 4-context machine. *)

type row = {
  label : string;
  avg_ipc : float;
  avg_vertical_waste : float;  (** Fraction of cycles issuing nothing. *)
}

val run : ?scale:Common.scale -> ?seed:int64 -> ?mixes:string list -> unit -> row list

val render : row list -> string
