type scale = Quick | Default | Full

let schedule_of_scale = function
  | Quick ->
    { Vliw_sim.Multitask.timeslice = 5_000; target_instrs = 15_000; max_cycles = 40_000 }
  | Default ->
    (* Effectively a fixed 400k-cycle horizon: the instruction target is
       unreachable within it, so every scheme sees the same cycle budget
       and rates compare without truncation bias. *)
    { Vliw_sim.Multitask.timeslice = 50_000; target_instrs = 1_000_000; max_cycles = 400_000 }
  | Full ->
    {
      Vliw_sim.Multitask.timeslice = 1_000_000;
      target_instrs = 5_000_000;
      max_cycles = 20_000_000;
    }

let default_seed = 0xC5EEDL

let single_thread_ipc ?(scale = Default) ?(seed = default_seed) ~perfect profile =
  let config = Vliw_sim.Config.make (Vliw_merge.Scheme.thread 0) in
  let metrics =
    Vliw_sim.Multitask.run config ~perfect_mem:perfect ~seed
      ~schedule:(schedule_of_scale scale) [ profile ]
  in
  Vliw_sim.Metrics.ipc metrics

type grid = {
  scheme_names : string list;
  mix_names : string list;
  ipc : float array array;
}

let run_grid ?(scale = Default) ?(seed = default_seed) ?scheme_names ?mix_names () =
  let scheme_names =
    match scheme_names with
    | Some names -> names
    | None -> List.map (fun (e : Vliw_merge.Catalog.entry) -> e.name) Vliw_merge.Catalog.four_thread
  in
  let mix_names =
    match mix_names with Some names -> names | None -> Vliw_workloads.Mixes.names
  in
  let schedule = schedule_of_scale scale in
  let machine = Vliw_isa.Machine.default in
  let ipc =
    Array.of_list
      (List.map
         (fun mix_name ->
           let mix = Vliw_workloads.Mixes.find_exn mix_name in
           (* Compile once per mix; every scheme sees identical programs. *)
           let rng = Vliw_util.Rng.create (Int64.add seed 0x9E37L) in
           let programs =
             List.map
               (fun p ->
                 Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng)
                   machine p)
               mix.members
           in
           Array.of_list
             (List.map
                (fun scheme_name ->
                  let entry = Vliw_merge.Catalog.find_exn scheme_name in
                  let config = Vliw_sim.Config.make ~machine entry.scheme in
                  let metrics =
                    Vliw_sim.Multitask.run_programs config ~seed ~schedule programs
                  in
                  Vliw_sim.Metrics.ipc metrics)
                scheme_names))
         mix_names)
  in
  { scheme_names; mix_names; ipc }

let scheme_index grid name =
  let rec find i = function
    | [] -> invalid_arg ("grid: unknown scheme " ^ name)
    | x :: rest -> if x = name then i else find (i + 1) rest
  in
  find 0 grid.scheme_names

let grid_column grid name =
  let j = scheme_index grid name in
  Array.map (fun row -> row.(j)) grid.ipc

let grid_average grid name = Vliw_util.Stats.mean (grid_column grid name)

let grid_csv grid =
  let header = "mix" :: grid.scheme_names in
  let rows =
    List.mapi
      (fun i mix ->
        mix :: Array.to_list (Array.map (Printf.sprintf "%.4f") grid.ipc.(i)))
      grid.mix_names
  in
  (header, rows)
