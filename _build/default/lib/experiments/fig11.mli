(** Figure 11: performance versus transistor cost, one point per scheme
    (average IPC over the nine mixes against merge-control area). *)

type point = { name : string; ipc : float; transistors : float }

val run : ?scale:Common.scale -> ?seed:int64 -> unit -> point list

val of_fig10 : Fig10.data -> point list
(** Reuse an existing Figure 10 simulation grid. *)

val render : point list -> string

val csv_rows : point list -> string list * string list list
