type point = { name : string; ipc : float; transistors : float }

let of_fig10 (d : Fig10.data) =
  List.map
    (fun name ->
      {
        name;
        ipc = Fig10.scheme_average d name;
        transistors =
          Vliw_cost.Scheme_cost.transistors
            (Vliw_merge.Catalog.find_exn name).scheme;
      })
    d.grid.scheme_names

let run ?scale ?seed () = of_fig10 (Fig10.run ?scale ?seed ())

let render points =
  let scatter =
    Vliw_util.Ascii_chart.scatter ~x_label:"IPC" ~y_label:"transistors"
      (List.map (fun p -> (p.name, p.ipc, p.transistors)) points)
  in
  "Figure 11: performance vs transistors incurred\n" ^ scatter

let csv_rows points =
  ( [ "scheme"; "ipc"; "transistors" ],
    List.map
      (fun p -> [ p.name; Printf.sprintf "%.4f" p.ipc; Printf.sprintf "%.0f" p.transistors ])
      points )
