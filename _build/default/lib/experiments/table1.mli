(** Table 1: single-thread IPC of every benchmark, with real (IPCr) and
    perfect (IPCp) memory, against the paper's reported values. *)

type row = {
  profile : Vliw_compiler.Profile.t;
  ipc_real : float;
  ipc_perfect : float;
}

val run : ?scale:Common.scale -> ?seed:int64 -> unit -> row list

val render : row list -> string

val max_rel_error : row list -> float
(** Worst |simulated - paper| / paper over both columns (used by the
    calibration test). *)

val csv_rows : row list -> string list * string list list
(** CSV header and rows. *)
