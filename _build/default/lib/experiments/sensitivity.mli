(** Sensitivity sweeps: how robust are the paper's conclusions to the
    fixed parameters of its setup (§5.1)?

    Each sweep varies one machine or OS parameter and reports the IPC of
    the three pivotal schemes (4-thread CSMT, the mixed 2SC3, 4-thread
    SMT) plus the 2SC3-vs-CSMT advantage, on a representative mixed
    workload. *)

type point = {
  param : string;  (** Rendered parameter value, e.g. "40 cycles". *)
  csmt : float;
  mixed : float;
  smt : float;
}

type sweep = { title : string; points : point list }

val miss_penalty : ?scale:Common.scale -> ?seed:int64 -> ?mix:string -> unit -> sweep
(** Miss penalty 10 / 20 (paper) / 40 / 80 cycles. *)

val dcache_size : ?scale:Common.scale -> ?seed:int64 -> ?mix:string -> unit -> sweep
(** DCache 16 / 32 / 64 (paper) / 128 KB. *)

val branch_penalty : ?scale:Common.scale -> ?seed:int64 -> ?mix:string -> unit -> sweep
(** Taken-branch penalty 0 / 2 (paper) / 4 / 8 cycles. *)

val timeslice : ?scale:Common.scale -> ?seed:int64 -> ?mix:string -> unit -> sweep
(** OS timeslice 10k / 50k / 200k cycles (at Default scale). *)

val predictor : ?scale:Common.scale -> ?seed:int64 -> ?mix:string -> unit -> sweep
(** None (paper) / bimodal 512 / bimodal 4096 branch predictor — an
    extension: a predictor shrinks the branch bubbles multithreading
    would otherwise fill. *)

val all : ?scale:Common.scale -> ?seed:int64 -> ?mix:string -> unit -> sweep list

val render : sweep -> string

val render_all : sweep list -> string
