type selection = { packet : Packet.t option; issued : int list }

let rec eval m ~routing ~rotation ~n avail = function
  | Scheme.Thread i ->
    let hw = (i + rotation) mod n in
    avail.(hw)
  | Scheme.Merge { kind; impl = _; inputs } ->
    let packets = List.filter_map (eval m ~routing ~rotation ~n avail) inputs in
    (match packets with
    | [] -> None
    | first :: rest ->
      let merge acc p =
        if Conflict.compatible m ~routing kind acc p then Packet.union acc p
        else acc
      in
      Some (List.fold_left merge first rest))

let select m ?(routing = Conflict.Flexible) scheme ?(rotation = 0) avail =
  let n = Scheme.n_threads scheme in
  assert (Array.length avail >= n);
  let rotation = ((rotation mod n) + n) mod n in
  match eval m ~routing ~rotation ~n avail scheme with
  | None -> { packet = None; issued = [] }
  | Some p -> { packet = Some p; issued = Packet.thread_list p }

let select_instrs m ?routing scheme ?rotation instrs =
  let avail =
    Array.mapi
      (fun thread instr ->
        Option.map (fun i -> Packet.of_instr ~thread i) instr)
      instrs
  in
  select m ?routing scheme ?rotation avail
