(** Execution packets: thread-tagged merge candidates.

    A packet is either a single thread's VLIW instruction or the result of
    merging several; it remembers which thread contributed each operation
    so the routing stage can steer operations, and so tests can check the
    CSMT invariant (one thread per cluster). Packets are the atomic unit
    of merging: they combine in their entirety or not at all. *)

type entry = { thread : int; op : Vliw_isa.Op.t }

type t = {
  clusters : entry list array;  (** Per-cluster tagged operations. *)
  threads : int;  (** Bitmask of contributing hardware threads. *)
  mask : int;  (** Bitmask of occupied clusters. *)
}

val of_instr : thread:int -> Vliw_isa.Instr.t -> t
(** Wrap one thread's instruction. *)

val union : t -> t -> t
(** Structural union; callers must have established compatibility first. *)

val op_count : t -> int

val thread_list : t -> int list
(** Contributing threads, ascending. *)

val cluster_threads : t -> int -> int list
(** Distinct threads with operations on the given cluster, ascending. *)

val ops_in : t -> int -> Vliw_isa.Op.t list

val is_empty : t -> bool

val pp : Vliw_isa.Machine.t -> Format.formatter -> t -> unit
