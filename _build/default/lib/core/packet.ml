type entry = { thread : int; op : Vliw_isa.Op.t }

type t = { clusters : entry list array; threads : int; mask : int }

let of_instr ~thread (instr : Vliw_isa.Instr.t) =
  let clusters = Array.map (List.map (fun op -> { thread; op })) instr.ops in
  let mask = ref 0 in
  Array.iteri (fun c ops -> if ops <> [] then mask := !mask lor (1 lsl c)) clusters;
  { clusters; threads = 1 lsl thread; mask = !mask }

let union a b =
  assert (Array.length a.clusters = Array.length b.clusters);
  {
    clusters = Array.map2 (fun x y -> x @ y) a.clusters b.clusters;
    threads = a.threads lor b.threads;
    mask = a.mask lor b.mask;
  }

let op_count t =
  Array.fold_left (fun acc ops -> acc + List.length ops) 0 t.clusters

let bits_to_list bits =
  let rec go i acc =
    if 1 lsl i > bits then List.rev acc
    else go (i + 1) (if bits land (1 lsl i) <> 0 then i :: acc else acc)
  in
  go 0 []

let thread_list t = bits_to_list t.threads

let cluster_threads t c =
  let bits =
    List.fold_left (fun acc e -> acc lor (1 lsl e.thread)) 0 t.clusters.(c)
  in
  bits_to_list bits

let ops_in t c = List.map (fun e -> e.op) t.clusters.(c)

let is_empty t = t.mask = 0

let pp m ppf t =
  let instr =
    Vliw_isa.Instr.of_cluster_ops ~addr:0
      (Array.map (List.map (fun e -> e.op)) t.clusters)
  in
  Format.fprintf ppf "threads=%s: %a"
    (String.concat "," (List.map string_of_int (thread_list t)))
    (Vliw_isa.Instr.pp m) instr
