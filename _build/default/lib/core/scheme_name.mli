(** Parser for the paper's scheme-name notation, generalised to any
    thread count.

    Grammar (§4.1): the leading digit is the number of cascade levels;
    each following letter is the merge kind at that level ('S' = SMT,
    'C' = CSMT); a digit after a letter makes that level a parallel
    block absorbing that many inputs at once (so "2SC3" is an SMT pair
    whose result enters a 3-input parallel CSMT along with two more
    threads). "C<k>" alone is a single k-input parallel CSMT block;
    "1S"/"1C" are the two-thread baselines; "ST" is the single-threaded
    machine. The four balanced-tree names of Figure 8 (2CC, 2SS, 2CS,
    2SC) are recognised specially, since the flat notation cannot
    express trees — the catalog is consulted first, so every name the
    paper uses parses to exactly the catalog's structure.

    Examples beyond the catalog: "7SSSSSSS" (8-thread SMT cascade),
    "2SC7" (the 2SC3 recipe at 8 threads), "C6", "4SCCC". *)

val parse : string -> (Scheme.t, string) result

val parse_exn : string -> Scheme.t
