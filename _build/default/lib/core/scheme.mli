(** Merge-scheme descriptions (the paper's Figures 7 and 8).

    A scheme is a tree of merge-control blocks wired between the thread
    contexts and the issue stage. Leaves are thread input ports; internal
    nodes are merge control blocks, each either SMT (operation-level) or
    CSMT (cluster-level), implemented serially (a cascade that considers
    one extra input per stage) or in parallel (all input subsets checked
    at once — only sensible for CSMT; the paper rules out parallel SMT as
    prohibitively expensive).

    Cascades such as 3SCC are nested binary [Merge] nodes; balanced trees
    such as 2CS merge the two pairs independently before a top-level
    merge; parallel blocks such as the C3 in 2SC3 are a single n-ary
    [Merge] node with [impl = Parallel]. *)

type impl = Serial | Parallel

type t =
  | Thread of int  (** Input port for the given scheme-local thread id. *)
  | Merge of { kind : Scheme_kind.t; impl : impl; inputs : t list }

val smt : t -> t -> t
(** Binary serial SMT block. *)

val csmt : t -> t -> t
(** Binary serial CSMT block. *)

val csmt_parallel : t list -> t
(** n-ary parallel CSMT block (>= 2 inputs). *)

val thread : int -> t

val smt_cascade : int -> t
(** [smt_cascade n] merges threads 0..n-1 with a serial SMT cascade
    (the paper's N-thread SMT; [smt_cascade 2] is scheme 1S). *)

val csmt_cascade : int -> t
(** Serial CSMT cascade over n threads (CSMT SL). *)

val csmt_par : int -> t
(** Single parallel CSMT block over n threads (CSMT PL; [csmt_par 4] is
    scheme C4). *)

val n_threads : t -> int
(** Number of leaves. *)

val leaf_ids : t -> int list
(** Leaf thread ids in left-to-right wiring order. *)

val validate : t -> (unit, string) result
(** A well-formed scheme has each thread id 0..n-1 exactly once, merge
    nodes with at least two inputs, and parallel implementation only on
    CSMT nodes. *)

val levels : t -> int
(** Depth in merge blocks along the longest path (the leading digit of
    the paper's scheme names). *)

val block_count : Scheme_kind.t -> t -> int
(** Number of merge-control blocks of the given kind. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Structural rendering, e.g. [C(S(T0,T1),T2,T3)] for 2SC3. *)

val to_string : t -> string
