type t = Smt | Csmt

let to_char = function Smt -> 'S' | Csmt -> 'C'

let of_char = function 'S' -> Some Smt | 'C' -> Some Csmt | _ -> None

let pp ppf k = Format.pp_print_char ppf (to_char k)
