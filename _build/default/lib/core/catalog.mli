(** The named merging schemes evaluated in the paper.

    Naming convention (§4.1): the leading digit is the number of cascade
    levels; each following letter is the merge kind at that level ('S' =
    SMT, 'C' = CSMT); a trailing digit subscript (written inline here,
    e.g. "2SC3") marks a parallel CSMT block over that many inputs.
    Two-level names whose two letters describe a balanced tree (2CC, 2SS,
    2CS, 2SC) merge the pairs (T0,T1) and (T2,T3) at level one and the two
    results at level two. "1S" is the 2-thread SMT baseline; "C4" is the
    4-thread parallel CSMT; "ST" is the single-threaded machine. *)

type entry = {
  name : string;
  scheme : Scheme.t;
  perf_group : string;
      (** Paper grouping of schemes with indistinguishable performance
          (e.g. 3CCC and C4 select identically). *)
  description : string;
}

val all : entry list
(** Every scheme of Figures 8–12 plus the baselines ST and 1S, in the
    paper's Figure 9 (cost-ascending) order. *)

val four_thread : entry list
(** The fifteen 4-thread schemes (all entries except ST and 1S). *)

val find : string -> entry option
(** Case-insensitive lookup by name. *)

val find_exn : string -> entry

val names : string list

val perf_groups : (string * string list) list
(** Performance-equivalence groups as reported in §5.2: group label to
    member scheme names. *)
