(** Exhaustive merge-scheme design-space enumeration.

    The paper hand-picks 15 four-thread schemes (Figure 8); this module
    generates the complete space: every tree over the ordered thread
    ports whose internal nodes are serial SMT, serial CSMT or parallel
    CSMT blocks. Used by the design-space explorer example and by the
    8-thread extension experiment (the paper stops at 4 threads "for
    space reasons").

    Thread order is fixed (T0..Tn-1, left to right): the OS assigns
    software threads to hardware contexts arbitrarily and priority
    rotates, so schemes differing only by a permutation of thread ports
    are equivalent. *)

val shapes : int -> int
(** Number of distinct tree shapes over n ordered leaves
    (super-Catalan/Schröder numbers: 1, 1, 3, 11, 45, ...). *)

val enumerate : ?max_nodes:int -> int -> Scheme.t list
(** [enumerate n] lists every scheme over [n] threads; [max_nodes]
    bounds the number of merge blocks (default: unbounded). All results
    satisfy {!Scheme.validate}. Grows quickly: 4 threads yield a few
    hundred schemes, 5 threads a few thousand. *)

val enumerate_named : int -> (string * Scheme.t) list
(** {!enumerate} plus generated names in the paper's naming spirit
    (structure strings, since the paper's flat names cannot express every
    tree). *)
