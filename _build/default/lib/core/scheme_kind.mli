(** The two merge-control granularities. *)

type t = Smt | Csmt

val to_char : t -> char
(** ['S'] or ['C'], as in the paper's scheme names. *)

val of_char : char -> t option

val pp : Format.formatter -> t -> unit
