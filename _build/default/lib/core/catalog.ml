type entry = {
  name : string;
  scheme : Scheme.t;
  perf_group : string;
  description : string;
}

let t0 = Scheme.thread 0
let t1 = Scheme.thread 1
let t2 = Scheme.thread 2
let t3 = Scheme.thread 3

let s = Scheme.smt
let c = Scheme.csmt
let cp = Scheme.csmt_parallel

let entry name scheme perf_group description =
  { name; scheme; perf_group; description }

(* Figure 9 order: cost-ascending (schemes with fewer SMT blocks first). *)
let all =
  [
    entry "ST" t0 "ST" "single-threaded baseline (no merging)";
    entry "C4" (cp [ t0; t1; t2; t3 ]) "3CCC,C4"
      "4-thread parallel CSMT (one 4-input block)";
    entry "3CCC" (c (c (c t0 t1) t2) t3) "3CCC,C4" "4-thread serial CSMT cascade";
    entry "2CC"
      (c (c t0 t1) (c t2 t3))
      "2CC" "balanced tree, CSMT pairs then CSMT top";
    entry "1S" (s t0 t1) "1S" "2-thread SMT baseline";
    entry "2SC3"
      (cp [ s t0 t1; t2; t3 ])
      "3SCC,3CSC,3CCS,2SC3,2C3S"
      "SMT pair then 3-input parallel CSMT (the paper's pick)";
    entry "3CSC"
      (c (s (c t0 t1) t2) t3)
      "3SCC,3CSC,3CCS,2SC3,2C3S" "cascade CSMT, SMT, CSMT";
    entry "2C3S"
      (s (cp [ t0; t1; t2 ]) t3)
      "3SCC,3CSC,3CCS,2SC3,2C3S" "3-input parallel CSMT then SMT";
    entry "3CCS"
      (s (c (c t0 t1) t2) t3)
      "3SCC,3CSC,3CCS,2SC3,2C3S" "cascade CSMT, CSMT, SMT";
    entry "3SCC"
      (c (c (s t0 t1) t2) t3)
      "3SCC,3CSC,3CCS,2SC3,2C3S" "cascade SMT, CSMT, CSMT";
    entry "2CS"
      (s (c t0 t1) (c t2 t3))
      "2CS" "balanced tree, CSMT pairs then SMT top";
    entry "2SC"
      (c (s t0 t1) (s t2 t3))
      "2SC" "balanced tree, SMT pairs then CSMT top";
    entry "3SSC"
      (c (s (s t0 t1) t2) t3)
      "3CSS,3SCS,3SSC" "cascade SMT, SMT, CSMT";
    entry "3SCS"
      (s (c (s t0 t1) t2) t3)
      "3CSS,3SCS,3SSC" "cascade SMT, CSMT, SMT";
    entry "3CSS"
      (s (s (c t0 t1) t2) t3)
      "3CSS,3SCS,3SSC" "cascade CSMT, SMT, SMT";
    entry "2SS"
      (s (s t0 t1) (s t2 t3))
      "2SS" "balanced tree, SMT pairs then SMT top";
    entry "3SSS" (s (s (s t0 t1) t2) t3) "3SSS" "4-thread serial SMT cascade";
  ]

let four_thread =
  List.filter (fun e -> Scheme.n_threads e.scheme = 4) all

let find name =
  let target = String.uppercase_ascii name in
  List.find_opt (fun e -> String.uppercase_ascii e.name = target) all

let find_exn name =
  match find name with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Catalog.find_exn: unknown scheme %S" name)

let names = List.map (fun e -> e.name) all

let perf_groups =
  let tbl = Hashtbl.create 8 in
  let order = ref [] in
  let record e =
    match Hashtbl.find_opt tbl e.perf_group with
    | Some members -> Hashtbl.replace tbl e.perf_group (e.name :: members)
    | None ->
      Hashtbl.add tbl e.perf_group [ e.name ];
      order := e.perf_group :: !order
  in
  List.iter record all;
  List.rev_map (fun g -> (g, List.rev (Hashtbl.find tbl g))) !order
