let fail fmt = Printf.ksprintf (fun msg -> Error msg) fmt

(* Parse "<digits>" starting at [i]; returns (value, next index). *)
let read_int s i =
  let n = String.length s in
  let rec go j acc =
    if j < n && s.[j] >= '0' && s.[j] <= '9' then
      go (j + 1) ((acc * 10) + Char.code s.[j] - Char.code '0')
    else (acc, j)
  in
  if i < n && s.[i] >= '0' && s.[i] <= '9' then Some (go i 0) else None

let parse_cascade name =
  (* "<levels><letter[arity]>..." — build left to right, consuming fresh
     thread ids as inputs. *)
  match read_int name 0 with
  | None -> fail "expected a leading level count in %S" name
  | Some (levels, start) ->
    if levels < 1 then fail "level count must be positive in %S" name
    else begin
      let next_thread = ref 0 in
      let fresh () =
        let t = Scheme.thread !next_thread in
        incr next_thread;
        t
      in
      let rec go i level acc =
        if level > levels then
          if i = String.length name then Ok acc
          else fail "trailing characters in %S" name
        else if i >= String.length name then
          fail "%S declares %d levels but lists fewer" name levels
        else begin
          match Scheme_kind.of_char name.[i] with
          | None -> fail "unknown merge kind %C in %S" name.[i] name
          | Some kind ->
            let arity, next_i =
              match read_int name (i + 1) with
              | Some (k, j) -> (k, j)
              | None -> (2, i + 1)
            in
            if arity < 2 then fail "parallel arity must be >= 2 in %S" name
            else begin
              let acc' =
                match (kind, arity) with
                | _, 2 ->
                  (* Serial binary stage. *)
                  Ok
                    (match kind with
                    | Scheme_kind.Smt -> Scheme.smt acc (fresh ())
                    | Scheme_kind.Csmt -> Scheme.csmt acc (fresh ()))
                | Scheme_kind.Csmt, k ->
                  Ok
                    (Scheme.csmt_parallel
                       (acc :: List.init (k - 1) (fun _ -> fresh ())))
                | Scheme_kind.Smt, _ ->
                  fail "parallel SMT blocks are not implementable (%S)" name
              in
              match acc' with
              | Error _ as e -> e
              | Ok acc' -> go next_i (level + 1) acc'
            end
        end
      in
      go start 1 (fresh ())
    end

let parse name =
  let name = String.uppercase_ascii (String.trim name) in
  (* The catalog (which includes the tree schemes and the baselines)
     takes precedence, so paper names always mean the paper's networks. *)
  match Catalog.find name with
  | Some entry -> Ok entry.scheme
  | None ->
    if name = "" then Error "empty scheme name"
    else if name.[0] = 'C' then begin
      (* "C<k>": one parallel CSMT block. *)
      match read_int name 1 with
      | Some (k, j) when j = String.length name ->
        if k >= 2 then Ok (Scheme.csmt_par k)
        else Error "parallel arity must be >= 2"
      | _ -> fail "cannot parse scheme name %S" name
    end
    else begin
      match parse_cascade name with
      | Ok scheme ->
        (match Scheme.validate scheme with
        | Ok () -> Ok scheme
        | Error msg -> Error msg)
      | Error _ as e -> e
    end

let parse_exn name =
  match parse name with
  | Ok s -> s
  | Error msg -> invalid_arg ("Scheme_name.parse_exn: " ^ msg)
