lib/core/scheme_name.mli: Scheme
