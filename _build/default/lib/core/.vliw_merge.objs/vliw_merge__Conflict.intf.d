lib/core/conflict.mli: Packet Scheme_kind Vliw_isa
