lib/core/scheme_space.ml: List Scheme Scheme_kind
