lib/core/packet.mli: Format Vliw_isa
