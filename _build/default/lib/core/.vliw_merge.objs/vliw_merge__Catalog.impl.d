lib/core/catalog.ml: Hashtbl List Printf Scheme String
