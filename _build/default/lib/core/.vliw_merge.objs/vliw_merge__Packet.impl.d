lib/core/packet.ml: Array Format List String Vliw_isa
