lib/core/conflict.ml: Array List Packet Routing Scheme_kind Vliw_isa
