lib/core/engine.mli: Conflict Packet Scheme Vliw_isa
