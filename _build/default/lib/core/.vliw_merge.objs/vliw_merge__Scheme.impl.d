lib/core/scheme.ml: Format Fun List Scheme_kind
