lib/core/scheme_kind.ml: Format
