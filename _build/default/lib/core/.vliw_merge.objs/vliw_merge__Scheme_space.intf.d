lib/core/scheme_space.mli: Scheme
