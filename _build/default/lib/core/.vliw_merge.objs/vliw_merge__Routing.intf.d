lib/core/routing.mli: Format Packet Vliw_isa
