lib/core/scheme_name.ml: Catalog Char List Printf Scheme Scheme_kind String
