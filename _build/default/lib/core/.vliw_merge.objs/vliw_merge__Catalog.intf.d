lib/core/catalog.mli: Scheme
