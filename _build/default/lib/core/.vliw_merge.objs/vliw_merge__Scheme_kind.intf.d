lib/core/scheme_kind.mli: Format
