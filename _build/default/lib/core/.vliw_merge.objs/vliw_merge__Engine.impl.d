lib/core/engine.ml: Array Conflict List Option Packet Scheme
