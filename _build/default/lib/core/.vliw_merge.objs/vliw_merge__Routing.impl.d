lib/core/routing.ml: Array Format List Packet Printf Vliw_isa
