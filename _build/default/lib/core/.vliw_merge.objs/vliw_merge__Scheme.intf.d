lib/core/scheme.mli: Format Scheme_kind
