type impl = Serial | Parallel

type t =
  | Thread of int
  | Merge of { kind : Scheme_kind.t; impl : impl; inputs : t list }

let thread i = Thread i

let smt a b = Merge { kind = Scheme_kind.Smt; impl = Serial; inputs = [ a; b ] }

let csmt a b = Merge { kind = Scheme_kind.Csmt; impl = Serial; inputs = [ a; b ] }

let csmt_parallel inputs =
  assert (List.length inputs >= 2);
  Merge { kind = Scheme_kind.Csmt; impl = Parallel; inputs }

let cascade mk n =
  assert (n >= 1);
  let rec build acc i =
    if i >= n then acc else build (mk acc (Thread i)) (i + 1)
  in
  build (Thread 0) 1

let smt_cascade n = cascade smt n

let csmt_cascade n = cascade csmt n

let csmt_par n =
  assert (n >= 2);
  csmt_parallel (List.init n thread)

let rec leaf_ids = function
  | Thread i -> [ i ]
  | Merge { inputs; _ } -> List.concat_map leaf_ids inputs

let n_threads t = List.length (leaf_ids t)

let validate t =
  let ids = leaf_ids t in
  let n = List.length ids in
  let sorted = List.sort compare ids in
  let expected = List.init n Fun.id in
  let rec structure = function
    | Thread _ -> Ok ()
    | Merge { impl = Parallel; kind = Scheme_kind.Smt; _ } ->
      Error "parallel SMT merge control is not implementable"
    | Merge { inputs; _ } when List.length inputs < 2 ->
      Error "merge node needs at least two inputs"
    | Merge { inputs; _ } ->
      List.fold_left
        (fun acc input -> match acc with Error _ -> acc | Ok () -> structure input)
        (Ok ()) inputs
  in
  if sorted <> expected then Error "thread ids must be 0..n-1, each exactly once"
  else structure t

let rec levels = function
  | Thread _ -> 0
  | Merge { inputs; _ } ->
    1 + List.fold_left (fun acc i -> max acc (levels i)) 0 inputs

let rec block_count kind = function
  | Thread _ -> 0
  | Merge { kind = k; inputs; _ } ->
    let self = if k = kind then 1 else 0 in
    List.fold_left (fun acc i -> acc + block_count kind i) self inputs

let rec equal a b =
  match (a, b) with
  | Thread i, Thread j -> i = j
  | Merge ma, Merge mb ->
    ma.kind = mb.kind && ma.impl = mb.impl
    && List.length ma.inputs = List.length mb.inputs
    && List.for_all2 equal ma.inputs mb.inputs
  | Thread _, Merge _ | Merge _, Thread _ -> false

let rec pp ppf = function
  | Thread i -> Format.fprintf ppf "T%d" i
  | Merge { kind; impl; inputs } ->
    let tag =
      match (kind, impl) with
      | Scheme_kind.Smt, _ -> "S"
      | Scheme_kind.Csmt, Serial -> "C"
      | Scheme_kind.Csmt, Parallel -> "Cp"
    in
    Format.fprintf ppf "%s(%a)" tag
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         pp)
      inputs

let to_string t = Format.asprintf "%a" pp t
