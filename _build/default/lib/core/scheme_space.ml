(* Enumeration of all merge trees over ordered leaves.

   A "shape" is a tree with n ordered leaves where every internal node
   has at least two children (children partition the leaf sequence into
   contiguous runs). Each internal node is then decorated with a block
   kind. Serial nodes with more than two children are expressed as
   nested binary merges elsewhere in the library, so to avoid generating
   the same cascade twice we restrict serial nodes to exactly two
   children and allow n-ary nodes only for parallel CSMT. *)

let rec shapes n =
  (* Super-Catalan recurrence via compositions: number of trees with >=2
     children per internal node over n ordered leaves. *)
  if n <= 1 then 1
  else begin
    (* Sum over first-level compositions of n into k >= 2 parts. The
       first part is capped at n-1 so the recursion only sees strictly
       smaller arguments. *)
    let total = ref 0 in
    let rec compositions remaining parts acc =
      if remaining = 0 then begin
        if parts >= 2 then total := !total + acc
      end
      else begin
        let cap = if parts = 0 then remaining - 1 else remaining in
        for first = 1 to cap do
          compositions (remaining - first) (parts + 1) (acc * shapes first)
        done
      end
    in
    compositions n 0 1;
    !total
  end

let rec count_nodes = function
  | Scheme.Thread _ -> 0
  | Scheme.Merge { inputs; _ } ->
    List.fold_left (fun acc i -> acc + count_nodes i) 1 inputs

(* All ways to split the leaf interval [lo, hi) into k >= 2 contiguous
   non-empty parts, for every k. *)
let splits lo hi =
  (* Returns the list of partitions, each a list of (lo, hi) intervals
     with at least two intervals. *)
  let n = hi - lo in
  if n < 2 then []
  else begin
    let rec parts start =
      (* All decompositions of [start, hi) into >= 1 intervals. *)
      if start >= hi then [ [] ]
      else
        List.concat_map
          (fun mid ->
            List.map (fun rest -> (start, mid) :: rest) (parts mid))
          (List.init (hi - start) (fun i -> start + i + 1))
    in
    List.filter (fun p -> List.length p >= 2) (parts lo)
  end

let rec trees lo hi =
  if hi - lo = 1 then [ Scheme.Thread lo ]
  else
    List.concat_map
      (fun partition ->
        (* Cartesian product of child trees. *)
        let child_choices = List.map (fun (l, h) -> trees l h) partition in
        let rec product = function
          | [] -> [ [] ]
          | choices :: rest ->
            let tails = product rest in
            List.concat_map
              (fun c -> List.map (fun t -> c :: t) tails)
              choices
        in
        let combos = product child_choices in
        List.concat_map
          (fun children ->
            let k = List.length children in
            let serial_kinds =
              if k = 2 then
                [
                  Scheme.Merge
                    { kind = Scheme_kind.Smt; impl = Scheme.Serial; inputs = children };
                  Scheme.Merge
                    { kind = Scheme_kind.Csmt; impl = Scheme.Serial; inputs = children };
                ]
              else []
            in
            Scheme.Merge
              { kind = Scheme_kind.Csmt; impl = Scheme.Parallel; inputs = children }
            :: serial_kinds)
          combos)
      (splits lo hi)

let enumerate ?max_nodes n =
  assert (n >= 1);
  let all = trees 0 n in
  let all =
    match max_nodes with
    | None -> all
    | Some k -> List.filter (fun s -> count_nodes s <= k) all
  in
  List.iter
    (fun s ->
      match Scheme.validate s with
      | Ok () -> ()
      | Error msg -> invalid_arg ("Scheme_space: generated invalid scheme: " ^ msg))
    all;
  all

let enumerate_named n =
  List.map (fun s -> (Scheme.to_string s, s)) (enumerate n)
