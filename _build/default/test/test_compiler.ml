(* Dag, Bug, Cross_copy, List_scheduler, Program. *)
module C = Vliw_compiler
module Isa = Vliw_isa
module Rng = Vliw_util.Rng
module Q = QCheck

let m = Isa.Machine.default

let test_profile ?(name = "test") ?(width = 2.0) ?(ops = 12) ?(mem = 0.2)
    ?(mul = 0.1) ?(blocks = 10) () =
  {
    C.Profile.name;
    ilp = C.Profile.Medium;
    description = "synthetic test profile";
    block_ops_mean = ops;
    dag_parallelism = width;
    frac_mem = mem;
    frac_mul = mul;
    store_frac = 0.3;
    working_set_kb = 64;
    seq_frac = 0.8;
    taken_prob = 0.3;
    static_blocks = blocks;
    hot_frac = 0.8;
    target_ipc_real = 1.0;
    target_ipc_perfect = 1.0;
  }

let gen_dag ?(seed = 1L) ?(width = 2.0) ?(ops = 12) ?(branch = true) ?(first = 0)
    ?live_in () =
  C.Dag.generate (Rng.create seed)
    (test_profile ~width ~ops ())
    ~with_branch:branch ~first_id:first ?live_in ()

(* --- Dag --- *)

let test_dag_valid () =
  for seed = 1 to 20 do
    let dag = gen_dag ~seed:(Int64.of_int seed) () in
    match C.Dag.validate dag with
    | Ok () -> ()
    | Error msg -> Alcotest.failf "seed %d: %s" seed msg
  done

let test_dag_branch_last () =
  let dag = gen_dag () in
  let n = C.Dag.size dag in
  Alcotest.(check bool) "last is branch" true
    (dag.nodes.(n - 1).klass = Isa.Op.Branch);
  let branches =
    Array.fold_left
      (fun acc (node : C.Dag.node) ->
        if node.klass = Isa.Op.Branch then acc + 1 else acc)
      0 dag.nodes
  in
  Alcotest.(check int) "exactly one branch" 1 branches

let test_dag_no_branch () =
  let dag = gen_dag ~branch:false () in
  Alcotest.(check bool) "no branch" true
    (Array.for_all (fun (n : C.Dag.node) -> n.klass <> Isa.Op.Branch) dag.nodes)

let test_dag_first_id () =
  let dag = gen_dag ~first:100 () in
  Alcotest.(check int) "first id" 100 dag.nodes.(0).id;
  Alcotest.(check bool) "valid" true (C.Dag.validate dag = Ok ())

let test_dag_width_effect () =
  (* Wider profiles produce shallower DAGs for the same op count. *)
  let levels width =
    let total = ref 0 in
    for seed = 1 to 10 do
      total := !total + C.Dag.n_levels (gen_dag ~seed:(Int64.of_int seed) ~width ~ops:40 ())
    done;
    !total
  in
  Alcotest.(check bool) "wide is shallower" true (levels 8.0 < levels 1.0)

let test_critical_height () =
  let dag = gen_dag () in
  let h = C.Dag.critical_height dag in
  Array.iteri
    (fun i (node : C.Dag.node) ->
      Alcotest.(check bool) "height >= 1" true (h.(i) >= 1);
      List.iter
        (fun p ->
          Alcotest.(check bool) "pred higher than succ" true (h.(p) > h.(i)))
        node.preds)
    dag.nodes

let prop_dag_valid =
  Q.Test.make ~name:"generated DAGs validate" ~count:100
    Q.(pair small_int (int_range 1 60))
    (fun (seed, ops) ->
      let dag = gen_dag ~seed:(Int64.of_int seed) ~ops () in
      C.Dag.validate dag = Ok ())

(* --- Bug --- *)

let test_bug_in_range () =
  let dag = gen_dag ~ops:40 ~width:6.0 () in
  let a = C.Bug.assign m dag in
  Array.iter (fun c -> Alcotest.(check bool) "cluster range" true (c >= 0 && c < 4)) a

let chain_dag n =
  let nodes =
    Array.init n (fun i ->
        { C.Dag.id = i; klass = Isa.Op.Alu; preds = (if i = 0 then [] else [ i - 1 ]); level = i })
  in
  { C.Dag.nodes; live_in = [] }

let test_bug_concentrates_narrow () =
  (* A pure dependence chain stays on one cluster until the capacity
     budget forces a spill, and then moves monotonically through the
     cluster-opening order (it never bounces back and forth). *)
  let a = C.Bug.assign m (chain_dag 6) in
  Alcotest.(check int) "starts on cluster 0" 0 a.(0);
  Array.iteri
    (fun i c ->
      if i > 0 then
        Alcotest.(check bool) "monotone spill" true (c = a.(i - 1) || c = a.(i - 1) + 1))
    a;
  let distinct = Array.fold_left (fun acc c -> acc lor (1 lsl c)) 0 a in
  Alcotest.(check bool) "at most two clusters for a 6-chain" true
    (distinct = 0b1 || distinct = 0b11)

let test_bug_spreads_wide () =
  let dag = gen_dag ~ops:120 ~width:12.0 () in
  let a = C.Bug.assign m dag in
  let used = Array.fold_left (fun acc c -> acc lor (1 lsl c)) 0 a in
  Alcotest.(check int) "all clusters used" 0b1111 used

let test_bug_respects_perm () =
  let a = C.Bug.assign ~perm:[| 2; 0; 1; 3 |] m (chain_dag 3) in
  Alcotest.(check int) "starts at perm head" 2 a.(0);
  Array.iter
    (fun c -> Alcotest.(check bool) "within first two perm entries" true (c = 2 || c = 0))
    a

let test_bug_perm_arity () =
  Alcotest.check_raises "bad perm"
    (Invalid_argument "Bug.assign: permutation arity mismatch") (fun () ->
      ignore (C.Bug.assign ~perm:[| 0; 1 |] m (gen_dag ())))

let test_cluster_loads () =
  let dag = gen_dag ~ops:30 () in
  let a = C.Bug.assign m dag in
  let loads = C.Bug.cluster_loads m dag a in
  Alcotest.(check int) "loads sum to ops" (C.Dag.size dag)
    (Array.fold_left ( + ) 0 loads)

(* --- Cross_copy --- *)

let test_copy_none_same_cluster () =
  let dag = gen_dag () in
  let a = Array.make (C.Dag.size dag) 0 in
  let dag', a' = C.Cross_copy.insert dag a in
  Alcotest.(check int) "no copies" 0 (C.Cross_copy.copy_count dag');
  Alcotest.(check int) "same size" (C.Dag.size dag) (C.Dag.size dag');
  Alcotest.(check int) "assignment size" (C.Dag.size dag) (Array.length a')

let test_copy_cross_edge () =
  let nodes =
    [|
      { C.Dag.id = 0; klass = Isa.Op.Alu; preds = []; level = 0 };
      { C.Dag.id = 1; klass = Isa.Op.Alu; preds = [ 0 ]; level = 1 };
    |]
  in
  let dag', a' = C.Cross_copy.insert { nodes; live_in = [] } [| 0; 1 |] in
  Alcotest.(check int) "one copy" 1 (C.Cross_copy.copy_count dag');
  Alcotest.(check bool) "valid" true (C.Dag.validate dag' = Ok ());
  (* The copy executes on the source cluster. *)
  let copy_idx = ref (-1) in
  Array.iteri
    (fun i (n : C.Dag.node) -> if n.klass = Isa.Op.Copy then copy_idx := i)
    dag'.nodes;
  Alcotest.(check int) "copy on source cluster" 0 a'.(!copy_idx)

let test_copy_memoized () =
  (* Two consumers on the same destination cluster share one copy. *)
  let nodes =
    [|
      { C.Dag.id = 0; klass = Isa.Op.Alu; preds = []; level = 0 };
      { C.Dag.id = 1; klass = Isa.Op.Alu; preds = [ 0 ]; level = 1 };
      { C.Dag.id = 2; klass = Isa.Op.Alu; preds = [ 0 ]; level = 1 };
    |]
  in
  let dag', _ = C.Cross_copy.insert { nodes; live_in = [] } [| 0; 1; 1 |] in
  Alcotest.(check int) "one shared copy" 1 (C.Cross_copy.copy_count dag')

let test_copy_two_destinations () =
  let nodes =
    [|
      { C.Dag.id = 0; klass = Isa.Op.Alu; preds = []; level = 0 };
      { C.Dag.id = 1; klass = Isa.Op.Alu; preds = [ 0 ]; level = 1 };
      { C.Dag.id = 2; klass = Isa.Op.Alu; preds = [ 0 ]; level = 1 };
    |]
  in
  let dag', _ = C.Cross_copy.insert { nodes; live_in = [] } [| 0; 1; 2 |] in
  Alcotest.(check int) "one copy per destination" 2 (C.Cross_copy.copy_count dag')

let prop_copy_valid =
  Q.Test.make ~name:"copy insertion preserves validity" ~count:100
    Q.(pair small_int (int_range 2 50))
    (fun (seed, ops) ->
      let dag = gen_dag ~seed:(Int64.of_int seed) ~ops () in
      let a = C.Bug.assign m dag in
      let dag', a' = C.Cross_copy.insert dag a in
      C.Dag.validate dag' = Ok () && Array.length a' = C.Dag.size dag')

(* --- List_scheduler --- *)

let schedule_all ?(seed = 1L) ?(ops = 20) ?(width = 3.0) () =
  let dag = gen_dag ~seed ~ops ~width () in
  let a = C.Bug.assign m dag in
  let dag, a = C.Cross_copy.insert dag a in
  (dag, a, C.List_scheduler.schedule m dag ~assignment:a ~base_addr:0 ~instr_bytes:64)

let issue_cycles dag instrs =
  (* Map op id -> (cycle, cluster). *)
  let tbl = Hashtbl.create 64 in
  Array.iteri
    (fun cycle (instr : Isa.Instr.t) ->
      Array.iteri
        (fun cluster ops ->
          List.iter (fun (op : Isa.Op.t) -> Hashtbl.add tbl op.id (cycle, cluster)) ops)
        instr.ops)
    instrs;
  Alcotest.(check int) "all ops scheduled once" (C.Dag.size dag) (Hashtbl.length tbl);
  tbl

let test_scheduler_complete () =
  let dag, _, instrs = schedule_all () in
  ignore (issue_cycles dag instrs)

let test_scheduler_dependences () =
  let dag, _, instrs = schedule_all ~ops:40 () in
  let tbl = issue_cycles dag instrs in
  Array.iter
    (fun (node : C.Dag.node) ->
      let cycle, _ = Hashtbl.find tbl node.id in
      List.iter
        (fun p ->
          let pcycle, _ = Hashtbl.find tbl p in
          let latency = Isa.Machine.latency m dag.nodes.(p).klass in
          Alcotest.(check bool)
            (Printf.sprintf "op %d at %d after pred %d at %d (+%d)" node.id cycle p
               pcycle latency)
            true
            (cycle >= pcycle + latency))
        node.preds)
    dag.nodes

let test_scheduler_cluster_assignment () =
  let dag, a, instrs = schedule_all () in
  let tbl = issue_cycles dag instrs in
  Array.iteri
    (fun i (node : C.Dag.node) ->
      let _, cluster = Hashtbl.find tbl node.id in
      Alcotest.(check int) "on assigned cluster" a.(i) cluster)
    dag.nodes

let test_scheduler_well_formed () =
  let _, _, instrs = schedule_all ~ops:60 ~width:8.0 () in
  Array.iter
    (fun i -> Alcotest.(check bool) "instr well-formed" true (Isa.Instr.well_formed m i))
    instrs

let test_scheduler_branch_last () =
  let dag, _, instrs = schedule_all () in
  let tbl = issue_cycles dag instrs in
  let branch_cycle = ref (-1) in
  Array.iter
    (fun (node : C.Dag.node) ->
      if node.klass = Isa.Op.Branch then branch_cycle := fst (Hashtbl.find tbl node.id))
    dag.nodes;
  Alcotest.(check int) "branch in last instruction" (Array.length instrs - 1)
    !branch_cycle

let test_scheduler_addresses () =
  let _, _, instrs = schedule_all () in
  Array.iteri
    (fun i (instr : Isa.Instr.t) -> Alcotest.(check int) "addr" (i * 64) instr.addr)
    instrs

let prop_scheduler_sound =
  Q.Test.make ~name:"schedules are complete, ordered, well-formed" ~count:60
    Q.(triple small_int (int_range 2 50) (float_range 1.0 10.0))
    (fun (seed, ops, width) ->
      let dag, a, instrs = schedule_all ~seed:(Int64.of_int seed) ~ops ~width () in
      let tbl = Hashtbl.create 64 in
      Array.iteri
        (fun cycle (instr : Isa.Instr.t) ->
          Array.iter
            (List.iter (fun (op : Isa.Op.t) -> Hashtbl.add tbl op.id cycle))
            instr.ops)
        instrs;
      Hashtbl.length tbl = C.Dag.size dag
      && Array.for_all (Isa.Instr.well_formed m) instrs
      && Array.for_all
           (fun (node : C.Dag.node) ->
             List.for_all
               (fun p ->
                 Hashtbl.find tbl node.id
                 >= Hashtbl.find tbl p + Isa.Machine.latency m dag.nodes.(p).klass)
               node.preds)
           dag.nodes
      && a == a)

(* --- Program --- *)

let test_program_valid_all_benchmarks () =
  List.iter
    (fun profile ->
      let prog = C.Program.generate ~seed:11L m profile in
      match C.Program.validate m prog with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" profile.C.Profile.name msg)
    Vliw_workloads.Benchmarks.all

let test_program_deterministic () =
  let p = test_profile () in
  let a = C.Program.generate ~seed:5L m p in
  let b = C.Program.generate ~seed:5L m p in
  Alcotest.(check int) "same ops" a.total_ops b.total_ops;
  Alcotest.(check int) "same instrs" a.total_instrs b.total_instrs;
  let c = C.Program.generate ~seed:6L m p in
  Alcotest.(check bool) "different seed differs" true
    (a.total_ops <> c.total_ops || a.total_instrs <> c.total_instrs)

let test_program_static_ipc_ordering () =
  let ipc name =
    C.Program.static_ipc
      (C.Program.generate ~seed:3L m (Vliw_workloads.Benchmarks.find_exn name))
  in
  Alcotest.(check bool) "colorspace > g721encode" true
    (ipc "colorspace" > ipc "g721encode");
  Alcotest.(check bool) "g721encode > bzip2" true (ipc "g721encode" > ipc "bzip2")

let test_block_of_addr () =
  let prog = C.Program.generate ~seed:7L m (test_profile ~blocks:5 ()) in
  Array.iteri
    (fun i (b : C.Program.block) ->
      Alcotest.(check (option int)) "first instr" (Some i)
        (C.Program.block_of_addr prog b.instrs.(0).addr))
    prog.blocks;
  let last_block = prog.blocks.(4) in
  let end_addr =
    last_block.instrs.(Array.length last_block.instrs - 1).addr + prog.instr_bytes
  in
  Alcotest.(check (option int)) "past the end" None
    (C.Program.block_of_addr prog end_addr)

let suite =
  ( "compiler",
    [
      Alcotest.test_case "dag validates" `Quick test_dag_valid;
      Alcotest.test_case "dag branch last" `Quick test_dag_branch_last;
      Alcotest.test_case "dag without branch" `Quick test_dag_no_branch;
      Alcotest.test_case "dag first id" `Quick test_dag_first_id;
      Alcotest.test_case "dag width controls depth" `Quick test_dag_width_effect;
      Alcotest.test_case "critical height" `Quick test_critical_height;
      Tgen.to_alcotest prop_dag_valid;
      Alcotest.test_case "bug in range" `Quick test_bug_in_range;
      Alcotest.test_case "bug concentrates chains" `Quick test_bug_concentrates_narrow;
      Alcotest.test_case "bug spreads wide code" `Quick test_bug_spreads_wide;
      Alcotest.test_case "bug respects perm" `Quick test_bug_respects_perm;
      Alcotest.test_case "bug perm arity" `Quick test_bug_perm_arity;
      Alcotest.test_case "cluster loads" `Quick test_cluster_loads;
      Alcotest.test_case "no copies within cluster" `Quick test_copy_none_same_cluster;
      Alcotest.test_case "copy on cross edge" `Quick test_copy_cross_edge;
      Alcotest.test_case "copies memoized" `Quick test_copy_memoized;
      Alcotest.test_case "copy per destination" `Quick test_copy_two_destinations;
      Tgen.to_alcotest prop_copy_valid;
      Alcotest.test_case "scheduler complete" `Quick test_scheduler_complete;
      Alcotest.test_case "scheduler dependences" `Quick test_scheduler_dependences;
      Alcotest.test_case "scheduler cluster assignment" `Quick
        test_scheduler_cluster_assignment;
      Alcotest.test_case "scheduler well-formed" `Quick test_scheduler_well_formed;
      Alcotest.test_case "scheduler branch last" `Quick test_scheduler_branch_last;
      Alcotest.test_case "scheduler addresses" `Quick test_scheduler_addresses;
      Tgen.to_alcotest prop_scheduler_sound;
      Alcotest.test_case "programs validate (all benchmarks)" `Quick
        test_program_valid_all_benchmarks;
      Alcotest.test_case "program deterministic" `Quick test_program_deterministic;
      Alcotest.test_case "static IPC ordering" `Quick test_program_static_ipc_ordering;
      Alcotest.test_case "block_of_addr" `Quick test_block_of_addr;
    ] )

(* --- live-in / live-out chaining and region concatenation --- *)

let test_dag_live_in () =
  let dag = gen_dag ~first:100 ~live_in:[ 40; 40 + 1 ] () in
  Alcotest.(check bool) "validates with external preds" true
    (C.Dag.validate dag = Ok ());
  (* External predecessors, if consumed, reference declared live-ins. *)
  Array.iter
    (fun (node : C.Dag.node) ->
      List.iter
        (fun p ->
          if p < 100 then
            Alcotest.(check bool) "declared" true (List.mem p [ 40; 41 ]))
        node.preds)
    dag.nodes

let test_dag_undeclared_external_pred () =
  let nodes = [| { C.Dag.id = 10; klass = Isa.Op.Alu; preds = [ 3 ]; level = 0 } |] in
  Alcotest.(check bool) "rejected" true
    ({ C.Dag.nodes; live_in = [] } |> C.Dag.validate |> Result.is_error);
  Alcotest.(check bool) "accepted when declared" true
    ({ C.Dag.nodes; live_in = [ 3 ] } |> C.Dag.validate = Ok ())

let test_dag_live_out () =
  let dag = gen_dag ~ops:20 () in
  Alcotest.(check bool) "has live-out candidates" true (C.Dag.live_out dag > 0)

let test_dag_concat () =
  let a = gen_dag ~first:0 ~ops:8 () in
  let b = gen_dag ~seed:2L ~first:(C.Dag.size a) ~ops:8 ~live_in:[ 2 ] () in
  let merged = C.Dag.concat [ a; b ] in
  Alcotest.(check int) "sizes add" (C.Dag.size a + C.Dag.size b) (C.Dag.size merged);
  (* The live-in edge from b into a became internal. *)
  Alcotest.(check bool) "no residual live-in" true (merged.live_in = [])

let extra_suite =
  [
    Alcotest.test_case "dag live-in" `Quick test_dag_live_in;
    Alcotest.test_case "dag undeclared external pred" `Quick
      test_dag_undeclared_external_pred;
    Alcotest.test_case "dag live-out" `Quick test_dag_live_out;
    Alcotest.test_case "dag concat" `Quick test_dag_concat;
  ]

let suite = (fst suite, snd suite @ extra_suite)
