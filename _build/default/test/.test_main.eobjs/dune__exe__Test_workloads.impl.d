test/test_workloads.ml: Alcotest List Vliw_compiler Vliw_workloads
