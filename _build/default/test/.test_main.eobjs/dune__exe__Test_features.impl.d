test/test_features.ml: Alcotest Array Filename Int64 List Printf QCheck String Sys Test_compiler Tgen Vliw_compiler Vliw_cost Vliw_experiments Vliw_isa Vliw_merge Vliw_sim Vliw_util Vliw_workloads
