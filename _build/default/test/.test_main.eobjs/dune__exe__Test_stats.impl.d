test/test_stats.ml: Alcotest Gen Printf QCheck Tgen Vliw_util
