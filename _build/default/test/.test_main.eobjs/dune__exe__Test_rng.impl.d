test/test_rng.ml: Alcotest Array Fun Int64 List Printf QCheck Tgen Vliw_util
