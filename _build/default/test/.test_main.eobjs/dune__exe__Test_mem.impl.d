test/test_mem.ml: Alcotest Printf Vliw_isa Vliw_mem
