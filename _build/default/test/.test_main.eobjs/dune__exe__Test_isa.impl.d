test/test_isa.ml: Alcotest Array Fun List QCheck Tgen Vliw_isa
