test/test_extensions.ml: Alcotest Array Lazy List QCheck String Tgen Vliw_compiler Vliw_experiments Vliw_isa Vliw_merge
