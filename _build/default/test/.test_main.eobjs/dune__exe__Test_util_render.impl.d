test/test_util_render.ml: Alcotest List String Vliw_util
