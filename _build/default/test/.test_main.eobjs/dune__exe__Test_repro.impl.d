test/test_repro.ml: Alcotest Array Lazy Printf Vliw_experiments Vliw_util
