test/test_sim.ml: Alcotest Array Printf Test_compiler Vliw_compiler Vliw_isa Vliw_mem Vliw_merge Vliw_sim Vliw_util Vliw_workloads
