test/test_cache.ml: Alcotest Gen List QCheck Tgen Vliw_isa Vliw_mem
