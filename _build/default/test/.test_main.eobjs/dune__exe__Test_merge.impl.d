test/test_merge.ml: Alcotest Array Format List QCheck String Tgen Vliw_isa Vliw_merge
