test/tgen.ml: Array Format List Option QCheck QCheck_alcotest String Vliw_isa Vliw_merge
