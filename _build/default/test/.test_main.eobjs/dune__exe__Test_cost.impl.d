test/test_cost.ml: Alcotest List Printf QCheck Tgen Vliw_cost Vliw_merge
