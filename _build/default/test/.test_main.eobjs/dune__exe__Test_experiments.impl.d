test/test_experiments.ml: Alcotest Array Lazy List String Vliw_experiments
