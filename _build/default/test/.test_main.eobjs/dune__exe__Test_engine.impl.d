test/test_engine.ml: Alcotest Array List Option Printf QCheck Tgen Vliw_isa Vliw_merge
