test/test_compiler.ml: Alcotest Array Hashtbl Int64 List Printf QCheck Result Tgen Vliw_compiler Vliw_isa Vliw_util Vliw_workloads
