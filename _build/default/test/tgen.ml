(* Shared QCheck generators for randomized tests. *)

module Isa = Vliw_isa
module Q = QCheck

let machine = Isa.Machine.default

(* A well-formed per-cluster operation list: respects the slot limits of
   one cluster (<=1 mem, <=2 mul, <=1 branch, total <= issue width). *)
let cluster_ops_gen ?(allow_branch = false) () =
  let open Q.Gen in
  let* n_mem = int_bound machine.n_lsu in
  let* n_mul = int_bound machine.n_mul in
  let* n_br = if allow_branch then int_bound machine.n_branch else pure 0 in
  let remaining = machine.issue_width - n_mem - n_mul - n_br in
  let* n_alu = int_bound (max 0 remaining) in
  let make klass count start =
    List.init count (fun i -> Isa.Op.make klass (start + i))
  in
  pure
    (make Isa.Op.Load n_mem 0
    @ make Isa.Op.Mul n_mul 10
    @ make Isa.Op.Branch n_br 20
    @ make Isa.Op.Alu n_alu 30)

(* A sparser distribution closer to real schedules: most clusters hold
   few ops, many are empty. *)
let sparse_cluster_ops_gen () =
  let open Q.Gen in
  let* density = int_bound 3 in
  if density = 0 then pure []
  else
    let* ops = cluster_ops_gen () in
    let* keep = int_bound (List.length ops) in
    pure (List.filteri (fun i _ -> i < keep) ops)

let instr_gen ?(sparse = true) () =
  let open Q.Gen in
  let cluster = if sparse then sparse_cluster_ops_gen () else cluster_ops_gen () in
  let* clusters = array_repeat machine.clusters cluster in
  pure (Isa.Instr.of_cluster_ops ~addr:0 clusters)

let instr_arb ?sparse () =
  Q.make
    ~print:(fun i -> Format.asprintf "%a" (Isa.Instr.pp machine) i)
    (instr_gen ?sparse ())

(* Candidate instruction sets for an n-thread merge engine: each thread
   offers an instruction, a NOP-only instruction, or is stalled. *)
let avail_gen n =
  let open Q.Gen in
  let slot =
    frequency
      [
        (6, map Option.some (instr_gen ()));
        (1, pure (Some (Isa.Instr.make ~clusters:machine.clusters ~addr:0)));
        (2, pure None);
      ]
  in
  array_repeat n slot

let avail_arb n =
  Q.make
    ~print:(fun avail ->
      String.concat ";\n"
        (Array.to_list
           (Array.map
              (function
                | None -> "stalled"
                | Some i -> Format.asprintf "%a" (Isa.Instr.pp machine) i)
              avail)))
    (avail_gen n)

(* Random well-formed schemes over n threads, mixing kinds, shapes and
   parallel CSMT nodes. *)
let scheme_gen n =
  let open Q.Gen in
  let module S = Vliw_merge.Scheme in
  let rec build leaves =
    match leaves with
    | [] -> assert false
    | [ x ] -> pure x
    | _ ->
      let* split = int_range 1 (List.length leaves - 1) in
      let left = List.filteri (fun i _ -> i < split) leaves in
      let right = List.filteri (fun i _ -> i >= split) leaves in
      let* l = build left in
      let* r = build right in
      let* kind = oneofl [ `Smt; `Csmt; `Cpar ] in
      (match kind with
      | `Smt -> pure (S.smt l r)
      | `Csmt -> pure (S.csmt l r)
      | `Cpar -> pure (S.csmt_parallel [ l; r ]))
  in
  build (List.init n S.thread)

let scheme_arb n = Q.make ~print:Vliw_merge.Scheme.to_string (scheme_gen n)

let to_alcotest = QCheck_alcotest.to_alcotest
