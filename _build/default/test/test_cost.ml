(* Hardware cost model: block costs and scheme composition. *)
module Cost = Vliw_cost
module M = Vliw_merge
module Q = QCheck

let delay name = Cost.Scheme_cost.delay (M.Catalog.find_exn name).scheme
let trans name = Cost.Scheme_cost.transistors (M.Catalog.find_exn name).scheme

let check_lt what a b =
  Alcotest.(check bool) (Printf.sprintf "%s (%.1f < %.1f)" what a b) true (a < b)

let check_close what tol a b =
  Alcotest.(check bool)
    (Printf.sprintf "%s (%.1f ~ %.1f)" what a b)
    true
    (abs_float (a -. b) /. b <= tol)

let test_smt_blocks_dominate_transistors () =
  (* §4.2: transistor count is dominated by the number of SMT blocks. *)
  let smt_blocks name =
    M.Scheme.block_count M.Scheme_kind.Smt (M.Catalog.find_exn name).scheme
  in
  let names =
    [ "C4"; "3CCC"; "2CC"; "1S"; "2SC3"; "3SCC"; "2CS"; "2SC"; "3SSC"; "2SS"; "3SSS" ]
  in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if smt_blocks a < smt_blocks b then
            check_lt (Printf.sprintf "%s < %s" a b) (trans a) (trans b))
        names)
    names

let test_csmt_only_cheapest () =
  List.iter
    (fun cheap ->
      List.iter
        (fun expensive -> check_lt (cheap ^ " < " ^ expensive) (trans cheap) (trans expensive))
        [ "1S"; "2SC3"; "3SSS"; "2SS"; "2SC" ])
    [ "C4"; "3CCC"; "2CC" ]

let test_2sc3_cost_close_to_1s () =
  (* The paper's selling point: 2SC3 costs about as much as 1S. *)
  check_close "transistors" 0.15 (trans "2SC3") (trans "1S");
  check_close "delay" 0.05 (delay "2SC3") (delay "1S")

let test_delay_orderings () =
  (* §4.2 and Figure 9 qualitative statements. *)
  check_lt "C4 minimal vs 3CCC" (delay "C4") (delay "3CCC");
  check_lt "C4 minimal vs 1S" (delay "C4") (delay "1S");
  check_lt "tree 2CC below cascade 3CCC" (delay "2CC") (delay "3CCC");
  (* SMT-first schemes hide routing behind CSMT merging. *)
  check_lt "3SCC below 3CSC" (delay "3SCC") (delay "3CSC");
  check_lt "3SCC below 3CCS" (delay "3SCC") (delay "3CCS");
  (* 3SSC is the fastest of the two-SMT-block cascades. *)
  check_lt "3SSC below 3SCS" (delay "3SSC") (delay "3SCS");
  check_lt "3SSC below 3CSS" (delay "3SSC") (delay "3CSS");
  (* 3SSS is the most expensive overall. *)
  List.iter
    (fun other -> check_lt ("3SSS above " ^ other) (delay other) (delay "3SSS"))
    [ "C4"; "3CCC"; "2CC"; "1S"; "2SC3"; "3SCC"; "2CS"; "2SC"; "3SSC"; "2SS" ]

let test_fig5_series () =
  let prev = ref (0.0, 0.0, 0.0, 0.0, 0.0) in
  for n = 2 to 8 do
    let sd, st = Cost.Scheme_cost.smt_cascade_cost n in
    let cd, ct = Cost.Scheme_cost.csmt_serial_cost n in
    let _, pt = Cost.Scheme_cost.csmt_parallel_cost n in
    let psd, pst, pcd, pct, ppt = !prev in
    if n > 2 then begin
      check_lt "SMT delay grows" psd sd;
      check_lt "SMT transistors grow" pst st;
      check_lt "CSMT SL delay grows" pcd cd;
      check_lt "CSMT SL transistors grow" pct ct;
      check_lt "CSMT PL transistors grow" ppt pt
    end;
    (* SMT always costs more than CSMT SL at the same thread count. *)
    check_lt "SMT vs CSMT delay" cd sd;
    check_lt "SMT vs CSMT transistors" ct st;
    prev := (sd, st, cd, ct, pt)
  done

let test_parallel_exponential () =
  (* CSMT PL transistors overtake CSMT SL as threads grow (Fig. 5a). *)
  let _, sl4 = Cost.Scheme_cost.csmt_serial_cost 4 in
  let _, pl4 = Cost.Scheme_cost.csmt_parallel_cost 4 in
  let _, sl8 = Cost.Scheme_cost.csmt_serial_cost 8 in
  let _, pl8 = Cost.Scheme_cost.csmt_parallel_cost 8 in
  Alcotest.(check bool) "comparable at 4" true (pl4 < 3.0 *. sl4);
  Alcotest.(check bool) "exploded at 8" true (pl8 > 4.0 *. sl8)

let test_parallel_delay_flat () =
  let d4, _ = Cost.Scheme_cost.csmt_parallel_cost 4 in
  let d8, _ = Cost.Scheme_cost.csmt_parallel_cost 8 in
  let s8, _ = Cost.Scheme_cost.csmt_serial_cost 8 in
  check_lt "PL delay much lower than SL at 8" d8 s8;
  Alcotest.(check bool) "PL delay grows slowly" true (d8 -. d4 <= 4.0)

let test_eval_width () =
  let c = Cost.Scheme_cost.eval (M.Catalog.find_exn "3SSS").scheme in
  Alcotest.(check int) "width 4" 4 c.width;
  let c1 = Cost.Scheme_cost.eval (M.Scheme.thread 0) in
  Alcotest.(check int) "leaf width" 1 c1.width;
  Alcotest.(check bool) "leaf free" true (c1.transistors = 0.0)

let test_pareto_front () =
  let points =
    [ ("a", 1.0, 1.0); ("b", 2.0, 3.0); ("c", 3.0, 2.0); ("d", 1.0, 0.5) ]
  in
  let front = Cost.Scheme_cost.pareto_front points in
  Alcotest.(check bool) "a on front" true (List.mem "a" front);
  Alcotest.(check bool) "b on front" true (List.mem "b" front);
  Alcotest.(check bool) "c dominated by b" false (List.mem "c" front);
  Alcotest.(check bool) "d dominated by a" false (List.mem "d" front)

let test_2sc3_on_pareto () =
  (* 2SC3's selling point, as a Pareto statement over (transistors, IPC
     proxy): using delay as cost it must not be dominated by any
     same-cost scheme with more SMT blocks... checked directly via cost
     numbers: no scheme has both lower transistors and lower delay than
     2SC3 except the CSMT-only ones. *)
  let cheaper_both =
    List.filter
      (fun (e : M.Catalog.entry) ->
        e.name <> "ST" && e.name <> "2SC3"
        && trans e.name < trans "2SC3"
        && delay e.name < delay "2SC3")
      M.Catalog.all
  in
  List.iter
    (fun (e : M.Catalog.entry) ->
      Alcotest.(check int)
        (e.name ^ " is CSMT-only")
        0
        (M.Scheme.block_count M.Scheme_kind.Smt e.scheme))
    cheaper_both

let prop_transistors_positive =
  Q.Test.make ~name:"costs positive for valid schemes" ~count:200 (Tgen.scheme_arb 4)
    (fun s ->
      Q.assume (M.Scheme.validate s = Ok ());
      Cost.Scheme_cost.transistors s > 0.0 && Cost.Scheme_cost.delay s > 0.0)

let prop_subtree_cheaper =
  Q.Test.make ~name:"adding a merge level never reduces transistors" ~count:200
    (Tgen.scheme_arb 3) (fun s ->
      Q.assume (M.Scheme.validate s = Ok ());
      (* Wrap: merge the 3-thread scheme with a 4th thread. *)
      let wrapped = M.Scheme.csmt s (M.Scheme.thread 3) in
      Cost.Scheme_cost.transistors wrapped > Cost.Scheme_cost.transistors s)

let suite =
  ( "cost",
    [
      Alcotest.test_case "SMT blocks dominate transistors" `Quick
        test_smt_blocks_dominate_transistors;
      Alcotest.test_case "CSMT-only schemes cheapest" `Quick test_csmt_only_cheapest;
      Alcotest.test_case "2SC3 cost close to 1S" `Quick test_2sc3_cost_close_to_1s;
      Alcotest.test_case "delay orderings" `Quick test_delay_orderings;
      Alcotest.test_case "fig5 series monotone" `Quick test_fig5_series;
      Alcotest.test_case "parallel transistors exponential" `Quick
        test_parallel_exponential;
      Alcotest.test_case "parallel delay flat" `Quick test_parallel_delay_flat;
      Alcotest.test_case "eval width" `Quick test_eval_width;
      Alcotest.test_case "pareto front" `Quick test_pareto_front;
      Alcotest.test_case "2SC3 pareto" `Quick test_2sc3_on_pareto;
      Tgen.to_alcotest prop_transistors_positive;
      Tgen.to_alcotest prop_subtree_cheaper;
    ] )
