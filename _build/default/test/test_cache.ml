module Cache = Vliw_mem.Cache
module Q = QCheck

let geom ~size ~ways ~line =
  { Vliw_isa.Machine.size_bytes = size; ways; line_bytes = line }

let test_cold_miss_then_hit () =
  let c = Cache.create (geom ~size:1024 ~ways:2 ~line:64) in
  Alcotest.(check bool) "cold miss" false (Cache.access c 0);
  Alcotest.(check bool) "hit" true (Cache.access c 0);
  Alcotest.(check bool) "same line hit" true (Cache.access c 63);
  Alcotest.(check bool) "next line miss" false (Cache.access c 64);
  Alcotest.(check int) "accesses" 4 (Cache.accesses c);
  Alcotest.(check int) "misses" 2 (Cache.misses c)

let test_lru_eviction () =
  (* 2-way, 64B lines, 2 sets (256 B total). Addresses 0, 128, 256 map to
     set 0. The third distinct line evicts the least recently used. *)
  let c = Cache.create (geom ~size:256 ~ways:2 ~line:64) in
  ignore (Cache.access c 0);
  ignore (Cache.access c 256);
  Alcotest.(check bool) "0 still resident" true (Cache.probe c 0);
  ignore (Cache.access c 0);
  (* LRU is now 256. *)
  ignore (Cache.access c 512);
  Alcotest.(check bool) "0 kept (recently used)" true (Cache.probe c 0);
  Alcotest.(check bool) "256 evicted" false (Cache.probe c 256)

let test_capacity_full_residency () =
  let c = Cache.create (geom ~size:4096 ~ways:4 ~line:64) in
  for i = 0 to 63 do
    ignore (Cache.access c (i * 64))
  done;
  (* Footprint = capacity: everything resident afterwards. *)
  for i = 0 to 63 do
    Alcotest.(check bool) "resident" true (Cache.access c (i * 64))
  done

let test_thrashing () =
  let c = Cache.create (geom ~size:4096 ~ways:4 ~line:64) in
  (* 128 lines through a 64-line cache, cyclic: with LRU every access
     misses once warm. *)
  for round = 0 to 2 do
    for i = 0 to 127 do
      let hit = Cache.access c (i * 64) in
      if round > 0 then Alcotest.(check bool) "cyclic thrash always misses" false hit
    done
  done

let test_flush () =
  let c = Cache.create (geom ~size:1024 ~ways:2 ~line:64) in
  ignore (Cache.access c 0);
  Cache.flush c;
  Alcotest.(check bool) "gone after flush" false (Cache.probe c 0)

let test_probe_no_side_effect () =
  let c = Cache.create (geom ~size:1024 ~ways:2 ~line:64) in
  Alcotest.(check bool) "probe miss" false (Cache.probe c 0);
  Alcotest.(check int) "no accesses recorded" 0 (Cache.accesses c);
  Alcotest.(check bool) "still miss" false (Cache.probe c 0)

let test_reset_stats () =
  let c = Cache.create (geom ~size:1024 ~ways:2 ~line:64) in
  ignore (Cache.access c 0);
  Cache.reset_stats c;
  Alcotest.(check int) "accesses" 0 (Cache.accesses c);
  Alcotest.(check int) "misses" 0 (Cache.misses c);
  Alcotest.(check bool) "contents survive" true (Cache.probe c 0)

let test_geometry () =
  let c = Cache.create (geom ~size:(64 * 1024) ~ways:4 ~line:64) in
  Alcotest.(check int) "sets" 256 (Cache.n_sets c);
  Alcotest.check_raises "bad line size"
    (Invalid_argument "Cache.create: line size must be a power of two") (fun () ->
      ignore (Cache.create (geom ~size:1024 ~ways:2 ~line:48)))

let prop_miss_rate_bounded =
  Q.Test.make ~name:"miss rate within [0,1]" ~count:100
    Q.(list_of_size Gen.(int_range 1 200) (int_bound 100_000))
    (fun addrs ->
      let c = Cache.create (geom ~size:1024 ~ways:2 ~line:64) in
      List.iter (fun a -> ignore (Cache.access c a)) addrs;
      let r = Cache.miss_rate c in
      r >= 0.0 && r <= 1.0 && Cache.misses c <= Cache.accesses c)

let prop_access_then_probe =
  Q.Test.make ~name:"access makes line resident" ~count:200
    Q.(int_bound 1_000_000)
    (fun addr ->
      let c = Cache.create (geom ~size:4096 ~ways:4 ~line:64) in
      ignore (Cache.access c addr);
      Cache.probe c addr)

let suite =
  ( "cache",
    [
      Alcotest.test_case "cold miss then hit" `Quick test_cold_miss_then_hit;
      Alcotest.test_case "LRU eviction" `Quick test_lru_eviction;
      Alcotest.test_case "capacity residency" `Quick test_capacity_full_residency;
      Alcotest.test_case "cyclic thrashing" `Quick test_thrashing;
      Alcotest.test_case "flush" `Quick test_flush;
      Alcotest.test_case "probe has no side effects" `Quick test_probe_no_side_effect;
      Alcotest.test_case "reset stats" `Quick test_reset_stats;
      Alcotest.test_case "geometry" `Quick test_geometry;
      Tgen.to_alcotest prop_miss_rate_bounded;
      Tgen.to_alcotest prop_access_then_probe;
    ] )
