module W = Vliw_workloads
module P = Vliw_compiler.Profile

let test_twelve_benchmarks () =
  Alcotest.(check int) "12 benchmarks" 12 (List.length W.Benchmarks.all);
  List.iter
    (fun (p : P.t) ->
      match P.validate p with
      | Ok () -> ()
      | Error msg -> Alcotest.failf "%s: %s" p.name msg)
    W.Benchmarks.all

let test_ilp_classes () =
  Alcotest.(check int) "4 low" 4 (List.length (W.Benchmarks.by_ilp P.Low));
  Alcotest.(check int) "4 medium" 4 (List.length (W.Benchmarks.by_ilp P.Medium));
  Alcotest.(check int) "4 high" 4 (List.length (W.Benchmarks.by_ilp P.High))

let test_targets_match_table1 () =
  let check name r p =
    let b = W.Benchmarks.find_exn name in
    Alcotest.(check (float 0.001)) (name ^ " IPCr") r b.target_ipc_real;
    Alcotest.(check (float 0.001)) (name ^ " IPCp") p b.target_ipc_perfect
  in
  check "mcf" 0.96 1.34;
  check "bzip2" 0.81 0.83;
  check "blowfish" 1.11 1.47;
  check "gsmencode" 1.07 1.07;
  check "g721encode" 1.75 1.76;
  check "g721decode" 1.75 1.76;
  check "cjpeg" 1.12 1.66;
  check "djpeg" 1.76 1.77;
  check "imgpipe" 3.81 4.05;
  check "x264" 3.89 4.04;
  check "idct" 4.79 5.27;
  check "colorspace" 5.47 8.88

let test_ipcp_at_least_ipcr () =
  List.iter
    (fun (p : P.t) ->
      Alcotest.(check bool) (p.name ^ " IPCp >= IPCr") true
        (p.target_ipc_perfect >= p.target_ipc_real))
    W.Benchmarks.all

let test_find () =
  Alcotest.(check bool) "case-insensitive" true (W.Benchmarks.find "MCF" <> None);
  Alcotest.(check bool) "unknown" true (W.Benchmarks.find "doom" = None)

let test_nine_mixes () =
  Alcotest.(check int) "9 mixes" 9 (List.length W.Mixes.all);
  List.iter
    (fun (m : W.Mixes.t) ->
      Alcotest.(check int) (m.name ^ " has 4 threads") 4 (List.length m.members))
    W.Mixes.all

let test_mix_labels () =
  List.iter
    (fun (m : W.Mixes.t) ->
      Alcotest.(check bool) (m.name ^ " label consistent") true
        (W.Mixes.label_consistent m))
    W.Mixes.all

let test_table2_rows () =
  let expect name members =
    let m = W.Mixes.find_exn name in
    Alcotest.(check (list string)) name members
      (List.map (fun (p : P.t) -> p.name) m.members)
  in
  expect "LLLL" [ "mcf"; "bzip2"; "blowfish"; "gsmencode" ];
  expect "LLHH" [ "mcf"; "blowfish"; "x264"; "idct" ];
  expect "HHHH" [ "x264"; "idct"; "imgpipe"; "colorspace" ];
  expect "MMHH" [ "djpeg"; "g721decode"; "idct"; "colorspace" ]

let test_mix_find () =
  Alcotest.(check bool) "lowercase" true (W.Mixes.find "llhh" <> None);
  Alcotest.(check bool) "unknown" true (W.Mixes.find "XXXX" = None)

let suite =
  ( "workloads",
    [
      Alcotest.test_case "twelve benchmarks validate" `Quick test_twelve_benchmarks;
      Alcotest.test_case "ILP classes of four" `Quick test_ilp_classes;
      Alcotest.test_case "targets match Table 1" `Quick test_targets_match_table1;
      Alcotest.test_case "IPCp >= IPCr" `Quick test_ipcp_at_least_ipcr;
      Alcotest.test_case "benchmark find" `Quick test_find;
      Alcotest.test_case "nine mixes of four" `Quick test_nine_mixes;
      Alcotest.test_case "mix labels consistent" `Quick test_mix_labels;
      Alcotest.test_case "Table 2 rows" `Quick test_table2_rows;
      Alcotest.test_case "mix find" `Quick test_mix_find;
    ] )
