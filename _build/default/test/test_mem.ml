(* Addr_stream and Mem_system. *)
module Mem = Vliw_mem

let test_stream_bounds () =
  let s =
    Mem.Addr_stream.create ~seed:1L ~working_set_bytes:(64 * 1024) ~seq_frac:0.5
      ~region_base:(1 lsl 24)
  in
  for _ = 1 to 1000 do
    let a = Mem.Addr_stream.next s in
    Alcotest.(check bool) "above base" true (a >= 1 lsl 24);
    Alcotest.(check bool) "within working set" true (a < (1 lsl 24) + (64 * 1024));
    Alcotest.(check int) "aligned" 0 (a mod 4)
  done

let test_stream_determinism () =
  let make () =
    Mem.Addr_stream.create ~seed:9L ~working_set_bytes:4096 ~seq_frac:0.7
      ~region_base:0
  in
  let a = make () and b = make () in
  for _ = 1 to 200 do
    Alcotest.(check int) "same stream" (Mem.Addr_stream.next a)
      (Mem.Addr_stream.next b)
  done

let test_stream_locality_vs_misses () =
  (* A fully sequential stream in a small hot region should have a far
     lower miss rate than a fully random stream over a large set. *)
  let cache () =
    Mem.Cache.create
      { Vliw_isa.Machine.size_bytes = 64 * 1024; ways = 4; line_bytes = 64 }
  in
  let run seq ws =
    let s =
      Mem.Addr_stream.create ~seed:3L ~working_set_bytes:ws ~seq_frac:seq
        ~region_base:0
    in
    let c = cache () in
    for _ = 1 to 20_000 do
      ignore (Mem.Cache.access c (Mem.Addr_stream.next s))
    done;
    Mem.Cache.miss_rate c
  in
  let seq_rate = run 1.0 (4 * 1024 * 1024) in
  let rand_rate = run 0.0 (4 * 1024 * 1024) in
  Alcotest.(check bool)
    (Printf.sprintf "seq %.3f << random %.3f" seq_rate rand_rate)
    true
    (seq_rate < 0.05 && rand_rate > 0.8)

let test_mem_system_penalties () =
  let sys = Mem.Mem_system.create Vliw_isa.Machine.default in
  Alcotest.(check int) "ifetch cold miss" 20 (Mem.Mem_system.ifetch sys 0);
  Alcotest.(check int) "ifetch hit" 0 (Mem.Mem_system.ifetch sys 0);
  Alcotest.(check int) "dcache cold miss" 20 (Mem.Mem_system.daccess sys 4096);
  Alcotest.(check int) "dcache hit" 0 (Mem.Mem_system.daccess sys 4096);
  let ia, im = Mem.Mem_system.icache_stats sys in
  let da, dm = Mem.Mem_system.dcache_stats sys in
  Alcotest.(check (pair int int)) "icache stats" (2, 1) (ia, im);
  Alcotest.(check (pair int int)) "dcache stats" (2, 1) (da, dm)

let test_mem_system_split () =
  (* ICache and DCache are separate: same address misses in both. *)
  let sys = Mem.Mem_system.create Vliw_isa.Machine.default in
  Alcotest.(check int) "imiss" 20 (Mem.Mem_system.ifetch sys 0);
  Alcotest.(check int) "dmiss same addr" 20 (Mem.Mem_system.daccess sys 0)

let test_perfect_memory () =
  let sys = Mem.Mem_system.create ~perfect:true Vliw_isa.Machine.default in
  Alcotest.(check bool) "flag" true (Mem.Mem_system.perfect sys);
  for i = 0 to 100 do
    Alcotest.(check int) "no ifetch stall" 0 (Mem.Mem_system.ifetch sys (i * 64));
    Alcotest.(check int) "no data stall" 0 (Mem.Mem_system.daccess sys (i * 4096))
  done

let test_reset_stats () =
  let sys = Mem.Mem_system.create Vliw_isa.Machine.default in
  ignore (Mem.Mem_system.ifetch sys 0);
  ignore (Mem.Mem_system.daccess sys 0);
  Mem.Mem_system.reset_stats sys;
  Alcotest.(check (pair int int)) "icache zero" (0, 0) (Mem.Mem_system.icache_stats sys);
  Alcotest.(check (pair int int)) "dcache zero" (0, 0) (Mem.Mem_system.dcache_stats sys)

let suite =
  ( "mem",
    [
      Alcotest.test_case "stream bounds" `Quick test_stream_bounds;
      Alcotest.test_case "stream determinism" `Quick test_stream_determinism;
      Alcotest.test_case "locality vs misses" `Quick test_stream_locality_vs_misses;
      Alcotest.test_case "mem system penalties" `Quick test_mem_system_penalties;
      Alcotest.test_case "split caches" `Quick test_mem_system_split;
      Alcotest.test_case "perfect memory" `Quick test_perfect_memory;
      Alcotest.test_case "reset stats" `Quick test_reset_stats;
    ] )
