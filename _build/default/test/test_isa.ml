(* Op, Machine and Instr. *)
module Isa = Vliw_isa
module Q = QCheck

let m = Isa.Machine.default

let test_default_machine () =
  Alcotest.(check int) "clusters" 4 m.clusters;
  Alcotest.(check int) "issue width" 4 m.issue_width;
  Alcotest.(check int) "total issue" 16 (Isa.Machine.total_issue m);
  Alcotest.(check bool) "valid" true (Isa.Machine.validate m = Ok ())

let test_slot_layout () =
  (* Memory at slot 0 only; muls at 1-2; branch at 3; ALU anywhere. *)
  Alcotest.(check bool) "mem slot0" true (Isa.Machine.slot_allows m ~slot:0 Isa.Op.Load);
  Alcotest.(check bool) "mem not slot1" false (Isa.Machine.slot_allows m ~slot:1 Isa.Op.Store);
  Alcotest.(check bool) "mul slot1" true (Isa.Machine.slot_allows m ~slot:1 Isa.Op.Mul);
  Alcotest.(check bool) "mul slot2" true (Isa.Machine.slot_allows m ~slot:2 Isa.Op.Mul);
  Alcotest.(check bool) "mul not slot0" false (Isa.Machine.slot_allows m ~slot:0 Isa.Op.Mul);
  Alcotest.(check bool) "mul not slot3" false (Isa.Machine.slot_allows m ~slot:3 Isa.Op.Mul);
  Alcotest.(check bool) "branch slot3" true (Isa.Machine.slot_allows m ~slot:3 Isa.Op.Branch);
  Alcotest.(check bool) "branch not slot0" false (Isa.Machine.slot_allows m ~slot:0 Isa.Op.Branch);
  for s = 0 to 3 do
    Alcotest.(check bool) "alu anywhere" true (Isa.Machine.slot_allows m ~slot:s Isa.Op.Alu);
    Alcotest.(check bool) "copy anywhere" true (Isa.Machine.slot_allows m ~slot:s Isa.Op.Copy)
  done

let test_latencies () =
  Alcotest.(check int) "alu" 1 (Isa.Machine.latency m Isa.Op.Alu);
  Alcotest.(check int) "copy" 1 (Isa.Machine.latency m Isa.Op.Copy);
  Alcotest.(check int) "mul" 2 (Isa.Machine.latency m Isa.Op.Mul);
  Alcotest.(check int) "load" 2 (Isa.Machine.latency m Isa.Op.Load);
  Alcotest.(check int) "store" 2 (Isa.Machine.latency m Isa.Op.Store)

let test_machine_make_rejects () =
  Alcotest.check_raises "too many fixed slots"
    (Invalid_argument
       "Machine.make: memory and multiply slots do not fit in the issue width")
    (fun () -> ignore (Isa.Machine.make ~issue_width:2 ~n_lsu:1 ~n_mul:2 ()))

let test_machine_variants () =
  let m2 = Isa.Machine.make ~clusters:2 ~issue_width:8 ~n_mul:3 () in
  Alcotest.(check int) "total issue" 16 (Isa.Machine.total_issue m2);
  Alcotest.(check bool) "mul range" true (Isa.Machine.slot_allows m2 ~slot:3 Isa.Op.Mul);
  Alcotest.(check bool) "mul range end" false (Isa.Machine.slot_allows m2 ~slot:4 Isa.Op.Mul)

let ops klasses = List.mapi (fun i k -> Isa.Op.make k i) klasses

let test_fits_cluster () =
  let fits = Isa.Instr.fits_cluster m in
  Alcotest.(check bool) "empty" true (fits []);
  Alcotest.(check bool) "4 alus" true (fits (ops [ Alu; Alu; Alu; Alu ]));
  Alcotest.(check bool) "5 alus" false (fits (ops [ Alu; Alu; Alu; Alu; Alu ]));
  Alcotest.(check bool) "2 mem" false (fits (ops [ Load; Store ]));
  Alcotest.(check bool) "3 mul" false (fits (ops [ Mul; Mul; Mul ]));
  Alcotest.(check bool) "2 branch" false (fits (ops [ Branch; Branch ]));
  Alcotest.(check bool) "full mixed" true (fits (ops [ Load; Mul; Mul; Branch ]));
  Alcotest.(check bool) "mixed overflow" false
    (fits (ops [ Load; Mul; Mul; Branch; Alu ]))

let instr_of klass_lists =
  Isa.Instr.of_cluster_ops ~addr:0
    (Array.of_list (List.map ops klass_lists))

let test_cluster_mask () =
  let i = instr_of [ [ Isa.Op.Alu ]; []; [ Isa.Op.Mul ]; [] ] in
  Alcotest.(check int) "mask" 0b0101 (Isa.Instr.cluster_mask i);
  Alcotest.(check int) "count" 2 (Isa.Instr.op_count i);
  Alcotest.(check bool) "not empty" false (Isa.Instr.is_empty i)

let test_empty_instr () =
  let i = Isa.Instr.make ~clusters:4 ~addr:64 in
  Alcotest.(check int) "mask" 0 (Isa.Instr.cluster_mask i);
  Alcotest.(check bool) "empty" true (Isa.Instr.is_empty i);
  Alcotest.(check int) "addr" 64 i.addr

let test_mem_ops_and_branch () =
  let i = instr_of [ [ Isa.Op.Load ]; [ Isa.Op.Branch ]; [ Isa.Op.Store ]; [] ] in
  Alcotest.(check int) "mem ops" 2 (List.length (Isa.Instr.mem_ops i));
  Alcotest.(check bool) "has branch" true (Isa.Instr.has_branch i)

let test_well_formed () =
  Alcotest.(check bool) "good" true
    (Isa.Instr.well_formed m (instr_of [ [ Isa.Op.Alu ]; []; []; [] ]));
  Alcotest.(check bool) "bad cluster count" false
    (Isa.Instr.well_formed m (instr_of [ [ Isa.Op.Alu ] ]));
  Alcotest.(check bool) "bad ops" false
    (Isa.Instr.well_formed m (instr_of [ [ Isa.Op.Load; Isa.Op.Store ]; []; []; [] ]))

let prop_generated_well_formed =
  Q.Test.make ~name:"generated instructions well-formed" ~count:300
    (Tgen.instr_arb ()) (fun i -> Isa.Instr.well_formed m i)

let prop_mask_consistent =
  Q.Test.make ~name:"mask bit iff cluster non-empty" ~count:300 (Tgen.instr_arb ())
    (fun i ->
      let mask = Isa.Instr.cluster_mask i in
      Array.for_all Fun.id
        (Array.mapi
           (fun c ops -> (mask land (1 lsl c) <> 0) = (ops <> []))
           i.ops))

let suite =
  ( "isa",
    [
      Alcotest.test_case "default machine" `Quick test_default_machine;
      Alcotest.test_case "slot layout" `Quick test_slot_layout;
      Alcotest.test_case "latencies" `Quick test_latencies;
      Alcotest.test_case "make rejects bad layout" `Quick test_machine_make_rejects;
      Alcotest.test_case "machine variants" `Quick test_machine_variants;
      Alcotest.test_case "fits_cluster" `Quick test_fits_cluster;
      Alcotest.test_case "cluster mask" `Quick test_cluster_mask;
      Alcotest.test_case "empty instruction" `Quick test_empty_instr;
      Alcotest.test_case "mem ops and branch" `Quick test_mem_ops_and_branch;
      Alcotest.test_case "well_formed" `Quick test_well_formed;
      Tgen.to_alcotest prop_generated_well_formed;
      Tgen.to_alcotest prop_mask_consistent;
    ] )
