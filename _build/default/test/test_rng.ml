module Rng = Vliw_util.Rng
module Q = QCheck

let test_determinism () =
  let a = Rng.create 42L and b = Rng.create 42L in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_distinct_seeds () =
  let a = Rng.create 1L and b = Rng.create 2L in
  Alcotest.(check bool) "different streams" false
    (Rng.next_int64 a = Rng.next_int64 b)

let test_copy_independent () =
  let a = Rng.create 7L in
  let _ = Rng.next_int64 a in
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.next_int64 a)
    (Rng.next_int64 b);
  (* Advancing one does not move the other. *)
  let _ = Rng.next_int64 a in
  let va = Rng.next_int64 a and vb = Rng.next_int64 b in
  Alcotest.(check bool) "diverged" false (va = vb)

let test_split_independent () =
  let a = Rng.create 7L in
  let b = Rng.split a in
  let xs = List.init 50 (fun _ -> Rng.next_int64 a) in
  let ys = List.init 50 (fun _ -> Rng.next_int64 b) in
  Alcotest.(check bool) "streams differ" false (xs = ys)

let test_shuffle_permutation () =
  let rng = Rng.create 3L in
  let arr = Array.init 20 Fun.id in
  Rng.shuffle rng arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "still a permutation" (Array.init 20 Fun.id) sorted

let test_choose_weighted () =
  let rng = Rng.create 5L in
  (* Weight 0 entries must never be picked. *)
  for _ = 1 to 200 do
    let v = Rng.choose_weighted rng [| ("never", 0.0); ("always", 1.0) |] in
    Alcotest.(check string) "only positive weight" "always" v
  done

let test_bernoulli_extremes () =
  let rng = Rng.create 11L in
  for _ = 1 to 100 do
    Alcotest.(check bool) "p=1" true (Rng.bernoulli rng 1.0);
    Alcotest.(check bool) "p=0" false (Rng.bernoulli rng 0.0)
  done

let test_geometric_mean () =
  let rng = Rng.create 13L in
  let n = 20_000 in
  let sum = ref 0 in
  for _ = 1 to n do
    sum := !sum + Rng.geometric rng 0.5
  done;
  let mean = float_of_int !sum /. float_of_int n in
  (* Mean of Geom(0.5) failures-before-success is 1. *)
  Alcotest.(check bool)
    (Printf.sprintf "mean %.3f close to 1" mean)
    true
    (abs_float (mean -. 1.0) < 0.05)

let test_gaussian_moments () =
  let rng = Rng.create 17L in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:3.0 ~sigma:2.0) in
  let mean = Vliw_util.Stats.mean xs in
  let sd = Vliw_util.Stats.stddev xs in
  Alcotest.(check bool) "mean ~3" true (abs_float (mean -. 3.0) < 0.1);
  Alcotest.(check bool) "sd ~2" true (abs_float (sd -. 2.0) < 0.1)

let prop_int_bound =
  Q.Test.make ~name:"int within bound" ~count:500
    Q.(pair (int_range 1 1_000_000) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_int_in =
  Q.Test.make ~name:"int_in inclusive range" ~count:500
    Q.(triple (int_range (-1000) 1000) (int_range 0 2000) small_int)
    (fun (lo, span, seed) ->
      let hi = lo + span in
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.int_in rng lo hi in
      v >= lo && v <= hi)

let prop_float_bound =
  Q.Test.make ~name:"float within bound" ~count:500
    Q.(pair (float_range 0.001 1e6) small_int)
    (fun (bound, seed) ->
      let rng = Rng.create (Int64.of_int seed) in
      let v = Rng.float rng bound in
      v >= 0.0 && v < bound)

let suite =
  ( "rng",
    [
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "distinct seeds" `Quick test_distinct_seeds;
      Alcotest.test_case "copy independent" `Quick test_copy_independent;
      Alcotest.test_case "split independent" `Quick test_split_independent;
      Alcotest.test_case "shuffle is a permutation" `Quick test_shuffle_permutation;
      Alcotest.test_case "choose_weighted respects zero" `Quick test_choose_weighted;
      Alcotest.test_case "bernoulli extremes" `Quick test_bernoulli_extremes;
      Alcotest.test_case "geometric mean" `Quick test_geometric_mean;
      Alcotest.test_case "gaussian moments" `Quick test_gaussian_moments;
      Tgen.to_alcotest prop_int_bound;
      Tgen.to_alcotest prop_int_in;
      Tgen.to_alcotest prop_float_bound;
    ] )
