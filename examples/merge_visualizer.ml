(* A reconstruction of the paper's Figure 1: three pairs of VLIW
   instructions on a 4-cluster, 2-issue-per-cluster machine, showing
   which pairs SMT and CSMT can merge and the routed execution packet.

   Run with: dune exec examples/merge_visualizer.exe *)

module Isa = Vliw_isa
module M = Vliw_merge

(* Figure 1's machine: 8-issue, 4 clusters x 2 issue, one LSU and one
   multiplier per cluster, no branch slot (the example instructions have
   no branches). *)
let machine = Isa.Machine.make ~clusters:4 ~issue_width:2 ~n_lsu:1 ~n_mul:1 ~n_branch:0 ()

let ops klasses = List.mapi (fun i k -> Isa.Op.make k i) klasses

let instr klass_lists =
  Isa.Instr.of_cluster_ops ~addr:0 (Array.of_list (List.map ops klass_lists))

let show_pair title (t0, t1) =
  Format.printf "@.%s@." title;
  Format.printf "  Thread 0: %a@." (Isa.Instr.pp machine) t0;
  Format.printf "  Thread 1: %a@." (Isa.Instr.pp machine) t1;
  let p0 = M.Packet.of_instr machine ~thread:0 t0 in
  let p1 = M.Packet.of_instr machine ~thread:1 t1 in
  let csmt = M.Conflict.csmt_compatible p0 p1 in
  let smt = M.Conflict.smt_compatible machine p0 p1 in
  Format.printf "  CSMT (cluster-level): %s@."
    (if csmt then "merge" else "conflict");
  Format.printf "  SMT (operation-level): %s@."
    (if smt then "merge" else "conflict");
  if smt then begin
    match M.Routing.route machine (M.Packet.union p0 p1) with
    | Some routed ->
      Format.printf "  Execution packet (op[thread]):@.   %a@."
        (M.Routing.pp machine) routed
    | None -> assert false
  end

let () =
  Format.printf "Instruction merging at the two granularities (paper Fig. 1)@.";
  Format.printf "Machine: %a@." Isa.Machine.pp machine;

  (* Pair I: conflicts at both levels — the two instructions need the
     same fixed memory slot on cluster 0. *)
  show_pair "Pair I: merging not possible"
    ( instr [ [ Isa.Op.Load; Isa.Op.Alu ]; [ Isa.Op.Alu ]; []; [ Isa.Op.Alu ] ],
      instr [ [ Isa.Op.Load ]; [ Isa.Op.Alu ]; []; [ Isa.Op.Alu ] ] );

  (* Pair II: both threads use clusters 0-3 (cluster-level conflict),
     but the operations fit side by side, so only SMT merges. *)
  show_pair "Pair II: SMT merges, CSMT cannot"
    ( instr [ [ Isa.Op.Alu ]; [ Isa.Op.Load ]; [ Isa.Op.Alu ]; [ Isa.Op.Alu ] ],
      instr [ [ Isa.Op.Copy ]; [ Isa.Op.Mul ]; [ Isa.Op.Store ]; [ Isa.Op.Alu ] ] );

  (* Pair III: thread 0 uses clusters 1-2, thread 1 uses clusters 0 and
     3 — disjoint, so even cluster-level merging succeeds. *)
  show_pair "Pair III: both SMT and CSMT merge"
    ( instr [ []; [ Isa.Op.Load; Isa.Op.Alu ]; [ Isa.Op.Store ]; [] ],
      instr [ [ Isa.Op.Alu; Isa.Op.Copy ]; []; []; [ Isa.Op.Alu; Isa.Op.Mul ] ] );

  (* Bonus: the same three pairs through the 2-thread SMT merge engine,
     cycle by cycle, showing the skip semantics. *)
  Format.printf "@.Through the 1S merge engine (priority port = thread 0):@.";
  let pairs =
    [
      ( "Pair I",
        instr [ [ Isa.Op.Load; Isa.Op.Alu ]; [ Isa.Op.Alu ]; []; [ Isa.Op.Alu ] ],
        instr [ [ Isa.Op.Load ]; [ Isa.Op.Alu ]; []; [ Isa.Op.Alu ] ] );
      ( "Pair II",
        instr [ [ Isa.Op.Alu ]; [ Isa.Op.Load ]; [ Isa.Op.Alu ]; [ Isa.Op.Alu ] ],
        instr [ [ Isa.Op.Copy ]; [ Isa.Op.Mul ]; [ Isa.Op.Store ]; [ Isa.Op.Alu ] ] );
    ]
  in
  List.iter
    (fun (name, t0, t1) ->
      let sel =
        M.Engine.select_instrs machine (M.Catalog.find_exn "1S").scheme
          [| Some t0; Some t1 |]
      in
      Format.printf "  %s: issued threads %s@." name
        (String.concat "," (List.map string_of_int sel.issued)))
    pairs
