(* vliwsim: command-line driver for the thread-merging reproduction.

   Subcommands:
   - exp: regenerate a paper table/figure (or all of them)
   - run: one simulation of a scheme on a workload, with ablation flags
   - check: run the self-check battery (invariants + select oracle probe)
   - schemes: list the scheme catalog with hardware costs
   - benchmarks: list the benchmark profiles

   Exit codes (uniform across subcommands): 0 success, 1 runtime error
   (simulation/check/IO failure; diagnostic on stderr), 2 usage error
   (bad flags, unknown names; diagnostic on stderr). *)

open Cmdliner

module E = Vliw_experiments

exception Usage_error of string
(* Raised by command bodies on a bad invocation (unknown experiment /
   scheme / mix / benchmark, inconsistent flags); mapped to exit code 2
   alongside cmdliner's own parse errors. Runtime failures propagate as
   ordinary exceptions and exit 1. *)

let usage fmt = Printf.ksprintf (fun s -> raise (Usage_error s)) fmt

let scale_conv =
  let parse = function
    | "quick" -> Ok E.Common.Quick
    | "default" -> Ok E.Common.Default
    | "full" -> Ok E.Common.Full
    | s -> Error (`Msg (Printf.sprintf "unknown scale %S (quick|default|full)" s))
  in
  let print ppf s =
    Format.pp_print_string ppf
      (match s with
      | E.Common.Quick -> "quick"
      | E.Common.Default -> "default"
      | E.Common.Full -> "full")
  in
  Arg.conv (parse, print)

let scale_arg =
  Arg.(
    value
    & opt scale_conv E.Common.Default
    & info [ "scale" ] ~docv:"SCALE"
        ~doc:
          "Simulation length: $(b,quick) (unit-test sized), $(b,default) \
           (seconds per run), or $(b,full) (paper-scale, minutes per run).")

let seed_arg =
  Arg.(
    value
    & opt int64 E.Common.default_seed
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for all generators.")

(* --- exp ------------------------------------------------------------ *)

let jobs_arg =
  Arg.(
    value & opt int 1
    & info [ "j"; "jobs" ] ~docv:"N"
        ~doc:
          "Run sweep cells on $(docv) worker domains ($(b,0) = one per \
           core, $(b,1) = serial). Results are bit-identical for any N.")

let list_experiments () =
  let table =
    Vliw_util.Text_table.create ~header:[ "Id"; "Title"; "CSV"; "In 'all'" ]
  in
  List.iter
    (fun entry ->
      Vliw_util.Text_table.add_row table
        [
          E.Registry.id entry;
          E.Registry.title entry;
          (if E.Registry.has_csv entry then "yes" else "-");
          (if E.Registry.expensive entry then "-" else "yes");
        ])
    E.Registry.all;
  print_string (Vliw_util.Text_table.render table)

let progress_reporter ?(quiet = false) () =
  (* Sweep progress on stderr when it is a terminal; stdout stays clean
     and deterministic either way. CI logs (not a tty) and --quiet runs
     see nothing. *)
  if (not quiet) && Unix.isatty Unix.stderr then
    Some
      (fun (p : E.Sweep.progress) ->
        Printf.eprintf "\r[sweep %d/%d] %s/%s %.2fs%s%!" p.completed p.total
          p.last.mix p.last.scheme p.last.elapsed_s
          (if p.completed = p.total then "\n" else ""))
  else None

let quiet_arg =
  Arg.(
    value & flag
    & info [ "q"; "quiet" ]
        ~doc:"Suppress the sweep progress meter on stderr.")

let export_csv csv_dir filename (header, rows) =
  match csv_dir with
  | None -> ()
  | Some dir ->
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    let path = Filename.concat dir filename in
    Vliw_util.Csv.write ~path ~header rows;
    Printf.eprintf "wrote %s\n%!" path

(* The shared sweep's telemetry, aggregated — only meaningful when the
   experiment actually forced the fig10 grid. *)
let sweep_telemetry ctx =
  if Lazy.is_val ctx.E.Registry.fig10 then
    let cells = (Lazy.force ctx.E.Registry.fig10).E.Fig10.cells in
    if Array.exists (fun (c : E.Sweep.cell) -> c.telemetry <> None) cells then
      Some cells
    else None
  else None

(* --- run ledger / observability ------------------------------------- *)

module Ledger = Vliw_telemetry.Ledger
module Openmetrics = Vliw_telemetry.Openmetrics
module Span = Vliw_telemetry.Span
module Log = Vliw_util.Log

let log_level_arg =
  Arg.(
    value & opt string "info"
    & info [ "log-level" ] ~docv:"LEVEL"
        ~doc:
          "Structured-log threshold on stderr: $(b,debug), $(b,info), \
           $(b,warn) or $(b,error).")

let log_format_arg =
  Arg.(
    value & opt string "human"
    & info [ "log-format" ] ~docv:"FMT"
        ~doc:
          "Structured-log rendering: $(b,human) (aligned key=value \
           lines) or $(b,json) (NDJSON, one object per record, for \
           machine ingestion).")

let make_log ~component ~quiet level format =
  if quiet then Log.null
  else
    let level =
      match Log.level_of_string level with
      | Ok l -> l
      | Error e -> usage "%s" e
    in
    let format =
      match Log.format_of_string format with
      | Ok f -> f
      | Error e -> usage "%s" e
    in
    Log.make ~level ~format ~component (fun line ->
        Printf.eprintf "%s\n%!" line)

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ] ~docv:"FILE"
        ~doc:
          "Record a distributed trace (submit/queue/schedule/dispatch \
           spans across every process involved) and write the merged \
           Chrome trace-event JSON to $(docv) on completion — load it \
           in Perfetto or chrome://tracing. Observation only: results \
           are bit-identical with tracing on or off.")

let runs_dir_arg =
  Arg.(
    value
    & opt string Ledger.default_dir
    & info [ "runs-dir" ] ~docv:"DIR"
        ~doc:"Directory holding the run ledger (ledger.jsonl).")

let no_ledger_arg =
  Arg.(
    value & flag
    & info [ "no-ledger" ]
        ~doc:"Do not record this invocation in the run ledger.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ] ~docv:"FILE"
        ~doc:
          "Also write this run's counters and gauges as an \
           OpenMetrics/Prometheus textfile exposition to $(docv) \
           (atomic rewrite; point a node_exporter textfile collector \
           at it).")

let log_json_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "log-json" ] ~docv:"FILE"
        ~doc:
          "Stream sweep lifecycle events (cell started / finished / \
           retried / degraded, with ETA) as NDJSON to $(docv), flushed \
           per line so $(b,tail -f) follows a live sweep. $(b,-) \
           writes to stderr (suppressed by $(b,--quiet)).")

let ledger_cells cells =
  Array.map
    (fun (c : E.Sweep.cell) ->
      {
        Ledger.mix = c.mix;
        scheme = c.scheme;
        ipc = c.ipc;
        elapsed_s = c.elapsed_s;
        started_s = c.started_s;
        worker = c.worker;
        attempts = c.attempts;
        degraded = c.error <> None;
      })
    cells

(* Persist a ledger record (unless opted out) and/or export it as an
   OpenMetrics textfile. Both notes go to stderr: stdout carries only
   experiment data. A ledger failure (read-only checkout, full disk)
   must not fail the run that produced good results — warn and move on. *)
let record_run ~no_ledger ~runs_dir ~metrics_out run =
  let run =
    if no_ledger then run
    else
      match Ledger.append ~dir:runs_dir run with
      | run ->
        Printf.eprintf "recorded run %s in %s\n%!" run.Ledger.id
          (Ledger.ledger_path ~dir:runs_dir);
        run
      | exception e ->
        Printf.eprintf "warning: could not record run ledger entry: %s\n%!"
          (Printexc.to_string e);
        run
  in
  Option.iter
    (fun path ->
      Vliw_util.Atomic_io.write_file ~path (Openmetrics.of_run run);
      Printf.eprintf "wrote %s\n%!" path)
    metrics_out;
  run

(* The --log-json sink: a mutex-protected NDJSON logger (events fire
   from worker domains) plus a closer for the channel. "-" streams to
   stderr and is the one form --quiet suppresses; a file is an artifact
   the user asked for by path and is always written. *)
let event_logger ~quiet log_json =
  match log_json with
  | None -> (None, fun () -> ())
  | Some "-" ->
    if quiet then (None, fun () -> ())
    else (Some (E.Sweep.json_logger stderr), fun () -> ())
  | Some path ->
    let oc = open_out path in
    (Some (E.Sweep.json_logger oc), fun () -> close_out oc)

(* After any run that forced the shared sweep: surface degraded cells
   (retry budget exhausted, rendered "n/a") on stderr so a clean-looking
   table never hides them. *)
let warn_degraded ctx =
  if Lazy.is_val ctx.E.Registry.fig10 then begin
    let cells = (Lazy.force ctx.E.Registry.fig10).E.Fig10.cells in
    match E.Sweep.degraded cells with
    | [] -> ()
    | ds ->
      Printf.eprintf "warning: %d sweep cell(s) degraded to n/a:\n"
        (List.length ds);
      List.iter
        (fun (c : E.Sweep.cell) ->
          Printf.eprintf "  %s/%s after %d attempt(s): %s\n" c.mix c.scheme
            c.attempts
            (Option.value ~default:"unknown error" c.error))
        ds;
      prerr_string "%!"
  end

let run_experiment scale seed csv_dir jobs quiet telemetry max_retries
    checkpoint resume no_ledger runs_dir metrics_out log_json workers
    replicates name =
  if resume && checkpoint = None then
    usage "--resume requires --checkpoint FILE (no journal to resume from)";
  if max_retries < 0 then usage "--max-retries must be non-negative";
  if workers < 0 then usage "--workers must be non-negative";
  if replicates < 0 then usage "--replicates must be non-negative";
  let on_event, close_log = event_logger ~quiet log_json in
  let t0 = Unix.gettimeofday () in
  let note msg = Printf.eprintf "note: %s\n%!" msg in
  (* --workers N swaps the shared sweep's execution engine for the
     distributed coordinator (local worker processes re-running this
     executable as `vliwsim worker`). Cells are bit-identical either
     way; the coordinator's dist.* counters join the ledger record. *)
  let dist_counters = ref [] in
  let dist_config () =
    {
      Vliw_dist.Coordinator.default_config with
      workers;
      worker_argv = [| Sys.executable_name; "worker" |];
      max_retries;
      checkpoint;
      resume;
      log =
        (if quiet then Log.null
         else
           Log.make ~component:"dist" (fun l -> Printf.eprintf "%s\n%!" l));
      on_event;
    }
  in
  let grid_exec =
    if workers = 0 then None
    else
      Some
        (fun ~scheme_names ->
          let r =
            Vliw_dist.Coordinator.run ~scale ~seed ~scheme_names
              (dist_config ())
          in
          dist_counters := Vliw_dist.Coordinator.counters_list r.d_stats;
          let cells =
            match r.d_grids with
            | [ (_, cells) ] -> cells
            | _ -> failwith "dist: expected exactly one grid"
          in
          (r.d_scheme_names, r.d_mix_names, cells))
  in
  let replicate_exec =
    if workers = 0 then None
    else
      Some
        (fun ~seeds ->
          let r =
            Vliw_dist.Coordinator.run ~scale ~seed ~seeds (dist_config ())
          in
          dist_counters := Vliw_dist.Coordinator.counters_list r.d_stats;
          List.map
            (fun (s, cells) ->
              ( s,
                E.Fig10.of_cells ~scheme_names:r.d_scheme_names
                  ~mix_names:r.d_mix_names cells ))
            r.d_grids)
  in
  let replicate_seeds =
    if replicates = 0 then None
    else Some (E.Replicates.derive_seeds ~seed replicates)
  in
  let ctx =
    E.Registry.make_ctx ~scale ~seed ~jobs
      ?progress:(progress_reporter ~quiet ())
      ~telemetry ~max_retries ?checkpoint ~resume ~log:note ?on_event
      ?replicate_seeds ?replicate_exec ?grid_exec ()
  in
  (* Ledger export of the last experiment that defined one (e.g.
     "adaptive", whose grid is not the shared fig10 sweep). Under "all"
     only standard entries run, none of which exports info, so the
     fig10 fallback below still applies there. *)
  let last_info = ref None in
  let one entry =
    let text, csv, info = E.Registry.run_entry_full ctx entry in
    print_string text;
    Option.iter (export_csv csv_dir (E.Registry.id entry ^ ".csv")) csv;
    if info <> None then last_info := info
  in
  Fun.protect ~finally:close_log (fun () ->
      match name with
      | "list" -> list_experiments ()
      | "all" ->
        List.iter
          (fun entry ->
            one entry;
            print_newline ())
          E.Registry.standard
      | id -> (
        match E.Registry.find id with
        | Some entry -> one entry
        | None -> usage "unknown experiment: %s (see `vliwsim exp list`)" id));
  if telemetry then begin
    match sweep_telemetry ctx with
    | None ->
      prerr_endline
        "note: --telemetry had no effect (experiment does not run the \
         shared sweep)"
    | Some cells ->
      let snap = E.Sweep.merged_telemetry cells in
      print_newline ();
      print_string "Telemetry (aggregated over the shared sweep):\n";
      print_string (Vliw_telemetry.Report.render snap);
      export_csv csv_dir "telemetry.csv" (E.Sweep.telemetry_csv cells)
  end;
  warn_degraded ctx;
  if name <> "list" then begin
    let wall_s = Unix.gettimeofday () -. t0 in
    let cells, scheme_names, mix_names, gauges, policy, info_counters =
      match !last_info with
      | Some (i : E.Registry.ledger_info) ->
        ( ledger_cells i.li_cells,
          i.li_scheme_names,
          i.li_mix_names,
          i.li_gauges,
          i.li_policy,
          (E.Sweep.merged_telemetry i.li_cells).counters )
      | None ->
        if Lazy.is_val ctx.E.Registry.fig10 then begin
          let d = Lazy.force ctx.E.Registry.fig10 in
          ( ledger_cells d.E.Fig10.cells,
            d.E.Fig10.grid.scheme_names,
            d.E.Fig10.grid.mix_names,
            [ ("ipc.mean", E.Common.grid_mean d.E.Fig10.grid) ],
            "static",
            [] )
        end
        else ([||], [], [], [], "static", [])
    in
    let counters =
      (if info_counters <> [] then info_counters
       else
         match sweep_telemetry ctx with
         | Some cells -> (E.Sweep.merged_telemetry cells).counters
         | None -> [])
      @ !dist_counters
    in
    ignore
      (record_run ~no_ledger ~runs_dir ~metrics_out
         (Ledger.make ~counters ~gauges ~cells ~policy ~cmd:"exp" ~label:name
            ~scale:(E.Common.scale_name scale) ~seed ~jobs ~scheme_names
            ~mix_names ~wall_s ()))
  end;
  0

let exp_cmd =
  let name_arg =
    Arg.(
      required
      & pos 0 (some string) None
      & info [] ~docv:"EXPERIMENT"
          ~doc:
            ("An experiment id ("
            ^ String.concat ", " E.Registry.ids
            ^ "), $(b,all) for every standard experiment, or $(b,list) to \
               show the registry."))
  in
  let doc = "Regenerate a table or figure from the paper." in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Also export the experiment's data as CSV files into DIR.")
  in
  let telemetry_arg =
    Arg.(
      value & flag
      & info [ "telemetry" ]
          ~doc:
            "Collect per-cell counters during the shared sweep and print \
             the aggregated stall attribution (observation-only; results \
             are unchanged). With $(b,--csv), also writes telemetry.csv.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Retry a failing sweep cell up to $(docv) times before \
             recording it as degraded (n/a) instead of aborting the \
             sweep. Retries cannot change results: cells are pure \
             functions of their seeds.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Journal every completed cell of the shared (mix x scheme) \
             sweep to $(docv) (atomic rewrite per cell; kill-safe at any \
             point).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore cells already recorded in the $(b,--checkpoint) \
             journal instead of re-simulating them (bit-identical); only \
             missing cells run. A journal from a different configuration \
             is ignored.")
  in
  let workers_arg =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Run the shared sweep on $(docv) local worker processes via \
             the distributed coordinator instead of in-process domains \
             ($(b,0) = in-process). Results are bit-identical for any N; \
             the coordinator's dist.* counters join the ledger record.")
  in
  let replicates_arg =
    Arg.(
      value & opt int 0
      & info [ "replicates" ] ~docv:"R"
          ~doc:
            "For the $(b,replicates) experiment: run $(docv) seeds \
             derived deterministically from $(b,--seed) instead of the \
             built-in list (e.g. $(b,--replicates 100) for per-cell \
             confidence intervals at scale).")
  in
  Cmd.v (Cmd.info "exp" ~doc)
    Term.(
      const run_experiment $ scale_arg $ seed_arg $ csv_arg $ jobs_arg
      $ quiet_arg $ telemetry_arg $ retries_arg $ checkpoint_arg
      $ resume_arg $ no_ledger_arg $ runs_dir_arg $ metrics_out_arg
      $ log_json_arg $ workers_arg $ replicates_arg $ name_arg)

(* --- run ------------------------------------------------------------ *)

let resolve_scheme name =
  match Vliw_merge.Scheme_name.parse name with
  | Ok scheme -> scheme
  | Error msg -> usage "unknown scheme %s: %s" name msg

let run_sim scale seed scheme_name mix_name benchmarks perfect fixed_priority
    no_stall_dmiss fixed_slots trace_len no_ledger runs_dir metrics_out =
  let scheme = resolve_scheme scheme_name in
  let t0 = Unix.gettimeofday () in
  let mode = match trace_len with None -> `Block | Some n -> `Trace n in
  let profiles =
    match benchmarks with
    | [] ->
      (match Vliw_workloads.Mixes.find mix_name with
      | Some mix -> mix.members
      | None -> usage "unknown mix: %s" mix_name)
    | names ->
      List.map
        (fun n ->
          match Vliw_workloads.Benchmarks.find n with
          | Some p -> p
          | None -> usage "unknown benchmark: %s" n)
        names
  in
  let routing =
    if fixed_slots then Vliw_merge.Conflict.Fixed_slots
    else Vliw_merge.Conflict.Flexible
  in
  let config =
    Vliw_sim.Config.make ~rotate_priority:(not fixed_priority)
      ~stall_on_dmiss:(not no_stall_dmiss) ~routing scheme
  in
  let metrics =
    Vliw_sim.Multitask.run config ~perfect_mem:perfect ~seed
      ~schedule:(E.Common.schedule_of_scale scale) ~mode profiles
  in
  Format.printf "scheme %s = %s on [%s]@." scheme_name
    (Vliw_merge.Scheme.to_string scheme)
    (String.concat ", "
       (List.map (fun (p : Vliw_compiler.Profile.t) -> p.name) profiles));
  Format.printf "%a@." Vliw_sim.Metrics.pp metrics;
  Format.printf "avg threads merged per issuing cycle: %.2f@."
    (Vliw_sim.Metrics.avg_threads_merged metrics);
  Array.iter
    (fun (pt : Vliw_sim.Metrics.per_thread) ->
      Format.printf "  %-16s ops=%-9d instrs=%d@." pt.name pt.ops pt.instrs)
    metrics.per_thread;
  let workload =
    match benchmarks with
    | [] -> mix_name
    | names -> String.concat "," names
  in
  let label = Printf.sprintf "%s on %s" scheme_name workload in
  let wall_s = Unix.gettimeofday () -. t0 in
  (* A one-cell grid, so `runs diff` can bit-compare and attribute drift
     across single-simulation records just like sweep records. *)
  let cells =
    [|
      {
        Ledger.mix = workload;
        scheme = scheme_name;
        ipc = Vliw_sim.Metrics.ipc metrics;
        elapsed_s = wall_s;
        started_s = 0.0;
        worker = 0;
        attempts = 1;
        degraded = false;
      };
    |]
  in
  ignore
    (record_run ~no_ledger ~runs_dir ~metrics_out
       (Ledger.make ~cells
          ~gauges:
            [
              ("ipc", Vliw_sim.Metrics.ipc metrics);
              ( "threads_merged.avg",
                Vliw_sim.Metrics.avg_threads_merged metrics );
            ]
          ~cmd:"run" ~label ~scale:(E.Common.scale_name scale) ~seed ~jobs:1
          ~scheme_names:[ scheme_name ] ~mix_names:[ workload ] ~wall_s ()));
  0

let run_cmd =
  let scheme_arg =
    Arg.(
      value & opt string "2SC3"
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Merging scheme name (see $(b,schemes)).")
  in
  let mix_arg =
    Arg.(
      value & opt string "LLHH"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Table 2 workload mix name.")
  in
  let bench_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "benchmarks" ] ~docv:"NAMES"
          ~doc:"Comma-separated benchmark names (overrides $(b,--mix)).")
  in
  let perfect_arg =
    Arg.(value & flag & info [ "perfect" ] ~doc:"Perfect memory (no cache misses).")
  in
  let fixed_arg =
    Arg.(
      value & flag
      & info [ "fixed-priority" ]
          ~doc:"Disable round-robin priority rotation (ablation).")
  in
  let nostall_arg =
    Arg.(
      value & flag
      & info [ "no-stall-dmiss" ]
          ~doc:"Ideal non-blocking data cache (ablation).")
  in
  let fixedslots_arg =
    Arg.(
      value & flag
      & info [ "fixed-slots" ]
          ~doc:"Remove the SMT routing block: operations keep their \
                original issue slots (ablation).")
  in
  let tracelen_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "trace-len" ] ~docv:"N"
          ~doc:"Compile with N-block trace regions instead of per-block \
                scheduling.")
  in
  let doc = "Simulate one scheme on one workload." in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run_sim $ scale_arg $ seed_arg $ scheme_arg $ mix_arg $ bench_arg
      $ perfect_arg $ fixed_arg $ nostall_arg $ fixedslots_arg $ tracelen_arg
      $ no_ledger_arg $ runs_dir_arg $ metrics_out_arg)

(* --- schemes / benchmarks ------------------------------------------- *)

let list_schemes () =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Name"; "Structure"; "Delay"; "Transistors"; "Description" ]
  in
  List.iter
    (fun (e : Vliw_merge.Catalog.entry) ->
      Vliw_util.Text_table.add_row table
        [
          e.name;
          Vliw_merge.Scheme.to_string e.scheme;
          (if e.name = "ST" then "-"
           else Printf.sprintf "%.1f" (Vliw_cost.Scheme_cost.delay e.scheme));
          (if e.name = "ST" then "-"
           else Printf.sprintf "%.0f" (Vliw_cost.Scheme_cost.transistors e.scheme));
          e.description;
        ])
    Vliw_merge.Catalog.all;
  print_string (Vliw_util.Text_table.render table);
  0

let schemes_cmd =
  Cmd.v
    (Cmd.info "schemes" ~doc:"List the merging-scheme catalog with hardware costs.")
    Term.(const list_schemes $ const ())

let list_benchmarks () =
  let table =
    Vliw_util.Text_table.create
      ~header:[ "Name"; "ILP"; "IPCr"; "IPCp"; "WS(KB)"; "Description" ]
  in
  List.iter
    (fun (p : Vliw_compiler.Profile.t) ->
      Vliw_util.Text_table.add_row table
        [
          p.name;
          Vliw_compiler.Profile.ilp_letter p.ilp;
          Printf.sprintf "%.2f" p.target_ipc_real;
          Printf.sprintf "%.2f" p.target_ipc_perfect;
          string_of_int p.working_set_kb;
          p.description;
        ])
    Vliw_workloads.Benchmarks.all;
  print_string (Vliw_util.Text_table.render table);
  0

let write_or_print output text =
  match output with
  | None -> print_string text
  | Some path ->
    (* Atomic rewrite: a killed invocation never leaves a half-written
       artifact behind for downstream tooling to choke on. *)
    Vliw_util.Atomic_io.write_file ~path text;
    Printf.eprintf "wrote %s\n%!" path

let run_trace scheme_name mix_name cycles perfect format output =
  let scheme = resolve_scheme scheme_name in
  let mix =
    match Vliw_workloads.Mixes.find mix_name with
    | Some m -> m
    | None -> usage "unknown mix: %s" mix_name
  in
  let config = Vliw_sim.Config.make scheme in
  let n = Vliw_sim.Config.contexts config in
  let profiles =
    List.filteri (fun i _ -> i < n) mix.members
  in
  let options = { Vliw_sim.Trace.default_options with cycles; perfect_mem = perfect } in
  (match format with
  | `Ascii -> write_or_print output (Vliw_sim.Trace.run config ~options profiles)
  | `Chrome ->
    let lanes, recorder = Vliw_sim.Trace.record config ~options profiles in
    let process_name =
      Printf.sprintf "vliwsim %s on %s" scheme_name mix_name
    in
    write_or_print output
      (Vliw_telemetry.Chrome_trace.of_recorder ~process_name ~lanes recorder));
  0

let format_conv =
  let parse = function
    | "ascii" -> Ok `Ascii
    | "chrome" -> Ok `Chrome
    | s -> Error (`Msg (Printf.sprintf "unknown format %S (ascii|chrome)" s))
  in
  let print ppf f =
    Format.pp_print_string ppf
      (match f with `Ascii -> "ascii" | `Chrome -> "chrome")
  in
  Arg.conv (parse, print)

let output_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "o"; "output" ] ~docv:"FILE"
        ~doc:"Write to $(docv) instead of stdout.")

let trace_cmd =
  let scheme_arg =
    Arg.(
      value & opt string "2SC3"
      & info [ "scheme" ] ~docv:"SCHEME" ~doc:"Merging scheme name.")
  in
  let mix_arg =
    Arg.(
      value & opt string "LLHH"
      & info [ "mix" ] ~docv:"MIX" ~doc:"Table 2 workload mix name.")
  in
  let cycles_arg =
    Arg.(
      value & opt int 20
      & info [ "cycles" ] ~docv:"N" ~doc:"Cycles to display.")
  in
  let perfect_arg =
    Arg.(value & flag & info [ "perfect" ] ~doc:"Perfect memory.")
  in
  let format_arg =
    Arg.(
      value & opt format_conv `Ascii
      & info [ "format" ] ~docv:"FMT"
          ~doc:
            "$(b,ascii) renders the per-cycle table; $(b,chrome) emits \
             Chrome trace-event JSON (one lane per hardware thread — load \
             in Perfetto or chrome://tracing).")
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Show a cycle-by-cycle merge trace (a dynamic Figure 1).")
    Term.(
      const run_trace $ scheme_arg $ mix_arg $ cycles_arg $ perfect_arg
      $ format_arg $ output_arg)

(* --- profile -------------------------------------------------------- *)

let run_profile scale seed jobs quiet trace_out csv_dir name =
  let ctx =
    E.Registry.make_ctx ~scale ~seed ~jobs
      ?progress:(progress_reporter ~quiet ())
      ~telemetry:true ()
  in
  let entry =
    match E.Registry.find name with
    | Some entry -> entry
    | None -> usage "unknown experiment: %s (see `vliwsim exp list`)" name
  in
  let _, _, info = E.Registry.run_entry_full ctx entry in
  let cells =
    match info with
    | Some i
      when Array.exists
             (fun (c : E.Sweep.cell) -> c.telemetry <> None)
             i.E.Registry.li_cells ->
      Some i.E.Registry.li_cells
    | _ -> sweep_telemetry ctx
  in
  match cells with
  | None ->
    prerr_endline
      ("experiment " ^ name
     ^ " does not run the shared (mix x scheme) sweep; nothing to profile");
    1
  | Some cells ->
    let snap = E.Sweep.merged_telemetry cells in
    Printf.printf "Profile of %s: %d sweep cells, %.1f CPU-seconds simulated\n\n"
      name (Array.length cells)
      (E.Sweep.total_elapsed_s cells);
    print_string (Vliw_telemetry.Report.render snap);
    let events =
      List.filter
        (fun (k, _) -> String.length k > 7 && String.sub k 0 7 = "events.")
        (Vliw_telemetry.Counters.flat snap)
    in
    if events <> [] then begin
      let table = Vliw_util.Text_table.create ~header:[ "Event"; "Count" ] in
      List.iter
        (fun (k, v) -> Vliw_util.Text_table.add_row table [ k; v ])
        events;
      print_newline ();
      print_string (Vliw_util.Text_table.render table)
    end;
    Option.iter
      (fun path -> write_or_print (Some path) (E.Sweep.chrome_trace cells))
      trace_out;
    export_csv csv_dir (name ^ ".telemetry.csv") (E.Sweep.telemetry_csv cells);
    0

let profile_cmd =
  let name_arg =
    Arg.(
      value
      & pos 0 string "fig10"
      & info [] ~docv:"EXPERIMENT"
          ~doc:"Experiment to profile (must run a (mix x scheme) sweep: \
                fig6, fig10, fig11, fig12, claims or adaptive).")
  in
  let trace_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "o"; "trace" ] ~docv:"FILE"
          ~doc:
            "Also write the sweep's execution timeline (one lane per pool \
             worker) as Chrome trace-event JSON to $(docv).")
  in
  let csv_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "csv" ] ~docv:"DIR"
          ~doc:"Export per-cell counters as CSV into DIR.")
  in
  Cmd.v
    (Cmd.info "profile"
       ~doc:
         "Run an experiment with telemetry and print where the issue \
          slots went (stall attribution plus event counts).")
    Term.(
      const run_profile $ scale_arg $ seed_arg $ jobs_arg $ quiet_arg
      $ trace_arg $ csv_arg $ name_arg)

let run_compile bench_name mode_str trace_len dump seed =
  let profile =
    match Vliw_workloads.Benchmarks.find bench_name with
    | Some p -> p
    | None -> usage "unknown benchmark: %s" bench_name
  in
  let mode =
    match mode_str with
    | "block" -> `Block
    | "trace" -> `Trace trace_len
    | other -> usage "unknown mode %s (block|trace)" other
  in
  let machine = Vliw_isa.Machine.default in
  let program = Vliw_compiler.Program.generate ~seed ~mode machine profile in
  (match Vliw_compiler.Program.validate machine program with
  | Ok () -> ()
  | Error msg -> failwith ("generated program failed validation: " ^ msg));
  Format.printf "benchmark %s, %s scheduling@." profile.name
    (match mode with `Block -> "block" | `Trace n -> Printf.sprintf "%d-block trace" n);
  Format.printf "  regions: %d, instructions: %d, operations: %d@."
    (Array.length program.blocks) program.total_instrs program.total_ops;
  Format.printf "  static ops/instruction: %.2f@."
    (Vliw_compiler.Program.static_ipc program);
  Format.printf "  code footprint: %d KB@."
    (program.total_instrs * program.instr_bytes / 1024);
  if dump then print_string (Vliw_compiler.Asm.to_string program);
  0

let compile_cmd =
  let bench_arg =
    Arg.(
      value & opt string "g721encode"
      & info [ "benchmark" ] ~docv:"NAME" ~doc:"Benchmark profile to compile.")
  in
  let mode_arg =
    Arg.(
      value & opt string "block"
      & info [ "mode" ] ~docv:"MODE" ~doc:"Scheduling mode: block or trace.")
  in
  let len_arg =
    Arg.(
      value & opt int 4
      & info [ "trace-len" ] ~docv:"N" ~doc:"Blocks per trace region.")
  in
  let dump_arg =
    Arg.(value & flag & info [ "dump" ] ~doc:"Print the full program text.")
  in
  Cmd.v
    (Cmd.info "compile"
       ~doc:"Run the synthetic compiler on a benchmark and show the result.")
    Term.(const run_compile $ bench_arg $ mode_arg $ len_arg $ dump_arg $ seed_arg)

let benchmarks_cmd =
  Cmd.v
    (Cmd.info "benchmarks" ~doc:"List the Table 1 benchmark profiles.")
    Term.(const list_benchmarks $ const ())

(* --- runs / report --------------------------------------------------- *)

let find_run ~runs_dir wanted =
  match Ledger.find ~dir:runs_dir wanted with
  | Some r -> r
  | None ->
    if Ledger.load ~dir:runs_dir = [] then
      usage "run ledger %s is empty (run `vliwsim exp ...` first)"
        (Ledger.ledger_path ~dir:runs_dir)
    else usage "unknown run id %s (see `vliwsim runs list`)" wanted

let runs_list runs_dir =
  match Ledger.load ~dir:runs_dir with
  | [] ->
    Printf.eprintf "no runs recorded in %s yet\n"
      (Ledger.ledger_path ~dir:runs_dir);
    0
  | runs ->
    let table =
      Vliw_util.Text_table.create
        ~header:
          [ "Id"; "When"; "Cmd"; "Label"; "Scale"; "Jobs"; "Cells";
            "Mean IPC"; "Wall(s)"; "Git" ]
    in
    List.iter
      (fun (r : Ledger.run) ->
        let tm = Unix.gmtime r.time_s in
        Vliw_util.Text_table.add_row table
          [
            r.id;
            Printf.sprintf "%04d-%02d-%02d %02d:%02d" (tm.Unix.tm_year + 1900)
              (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour
              tm.Unix.tm_min;
            r.cmd;
            r.label;
            r.scale;
            string_of_int r.jobs;
            string_of_int (Array.length r.cells);
            E.Common.ipc_string ~decimals:2 (Ledger.mean_ipc r);
            Printf.sprintf "%.2f" r.wall_s;
            r.git_rev;
          ])
      runs;
    print_string (Vliw_util.Text_table.render table);
    0

let runs_show runs_dir wanted =
  let r = find_run ~runs_dir wanted in
  Printf.printf "run %s: %s %s\n" r.Ledger.id r.cmd r.label;
  Printf.printf "  recorded:    %s\n"
    (let tm = Unix.gmtime r.time_s in
     Printf.sprintf "%04d-%02d-%02d %02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
       (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
       tm.Unix.tm_sec);
  Printf.printf "  git:         %s\n" r.git_rev;
  Printf.printf "  fingerprint: %s\n" r.fingerprint;
  if r.policy <> "static" then Printf.printf "  policy:      %s\n" r.policy;
  Printf.printf "  scale/seed:  %s / 0x%Lx, %d job(s), %.2fs wall\n" r.scale
    r.seed r.jobs r.wall_s;
  Printf.printf "  fault stats: %d retries, %d degraded, %d timeouts, %d resumed\n"
    r.retries r.degraded r.timeouts r.resumed;
  if Array.length r.cells > 0 then begin
    Printf.printf "  grid digest: %s\n\n" (Ledger.grid_digest r.cells);
    let table =
      Vliw_util.Text_table.create ~header:("Mix" :: r.scheme_names)
    in
    let lookup = Hashtbl.create 64 in
    Array.iter
      (fun (c : Ledger.cell) -> Hashtbl.replace lookup (c.mix, c.scheme) c.ipc)
      r.cells;
    List.iter
      (fun mix ->
        Vliw_util.Text_table.add_row table
          (mix
          :: List.map
               (fun scheme ->
                 match Hashtbl.find_opt lookup (mix, scheme) with
                 | Some ipc -> E.Common.ipc_string ~decimals:2 ipc
                 | None -> "-")
               r.scheme_names))
      r.mix_names;
    print_string (Vliw_util.Text_table.render table)
  end;
  if r.gauges <> [] then begin
    print_newline ();
    List.iter
      (fun (k, v) -> Printf.printf "  %-24s %.4f\n" k v)
      r.gauges
  end;
  if r.counters <> [] then
    Printf.printf "\n  %d telemetry counter(s) recorded (export with `vliwsim \
                   runs export-metrics %s`)\n"
      (List.length r.counters) r.id;
  0

let runs_diff runs_dir a b =
  let ra = find_run ~runs_dir a and rb = find_run ~runs_dir b in
  if ra.Ledger.fingerprint <> rb.Ledger.fingerprint then begin
    Printf.eprintf
      "note: configuration fingerprints differ (%s vs %s) — comparing anyway\n%!"
      ra.fingerprint rb.fingerprint;
    if ra.policy <> rb.policy then
      Printf.eprintf "note: controller policies differ (%s: %s vs %s: %s)\n%!"
        ra.id ra.policy rb.id rb.policy
  end;
  match Ledger.diff ra rb with
  | Ledger.Identical ->
    Printf.printf "runs %s and %s: IPC grids bit-identical (%d cells, digest %s)\n"
      ra.id rb.id (Array.length ra.cells)
      (Ledger.grid_digest ra.cells);
    0
  | Ledger.Shape_mismatch msg ->
    Printf.printf "runs %s and %s: grids not comparable: %s\n" ra.id rb.id msg;
    1
  | Ledger.Drift { mix; scheme; ipc_a; ipc_b; differing } ->
    Printf.printf
      "runs %s and %s: %d of %d cells differ; first drift at (%s, %s): %s vs %s\n"
      ra.id rb.id differing (Array.length ra.cells) mix scheme
      (E.Common.ipc_string ~decimals:6 ipc_a)
      (E.Common.ipc_string ~decimals:6 ipc_b);
    Printf.printf "  %s: git %s, recorded %s\n" ra.id ra.git_rev
      (Printf.sprintf "%.0f" ra.time_s);
    Printf.printf "  %s: git %s, recorded %s\n" rb.id rb.git_rev
      (Printf.sprintf "%.0f" rb.time_s);
    1

let runs_export_metrics runs_dir wanted output =
  write_or_print output (Openmetrics.of_run (find_run ~runs_dir wanted));
  0

let runs_lint file =
  if not (Sys.file_exists file) then usage "no such file: %s" file;
  let text = In_channel.with_open_bin file In_channel.input_all in
  match Openmetrics.lint text with
  | [] ->
    Printf.printf "%s: OpenMetrics exposition OK\n" file;
    0
  | errors ->
    List.iter (fun e -> Printf.eprintf "%s: %s\n" file e) errors;
    Printf.eprintf "%s: %d violation(s)\n%!" file (List.length errors);
    1

(* Re-derive the span forest from a --trace-out Chrome file (ids travel
   in each event's args) and run the structural validator over it: every
   parent present, every child nested inside its parent. This is what
   the CI trace-smoke job runs against a merged 2-worker trace. *)
let runs_lint_trace slack file =
  if not (Sys.file_exists file) then usage "no such file: %s" file;
  let text = In_channel.with_open_bin file In_channel.input_all in
  let module J = Vliw_util.Json in
  match J.parse text with
  | Error e ->
    Printf.eprintf "%s: not valid JSON: %s\n%!" file e;
    1
  | Ok doc ->
    let events =
      match J.member "traceEvents" doc with Some (J.List es) -> es | _ -> []
    in
    let errors = ref [] and spans = ref [] in
    List.iter
      (fun ev ->
        match J.member "ph" ev with
        | Some (J.Str "X") -> (
          let sarg k =
            match J.member "args" ev with
            | Some args -> (
              match J.member k args with Some (J.Str s) -> Some s | _ -> None)
            | None -> None
          in
          let numf k =
            match J.member k ev with Some (J.Num v) -> Some v | _ -> None
          in
          match (sarg "trace", sarg "span", sarg "kind", numf "ts", numf "dur")
          with
          | Some tr, Some sp, Some kd, Some ts, Some dur -> (
            let parent =
              match sarg "parent" with
              | None -> Ok None
              | Some p -> Result.map Option.some (Span.id_of_hex p)
            in
            match (Span.id_of_hex tr, Span.id_of_hex sp, parent,
                   Span.kind_of_name kd)
            with
            | Ok trace, Ok id, Ok parent, Some kind ->
              let lane =
                match J.member "tid" ev with
                | Some (J.Num t) -> Printf.sprintf "lane %d" (int_of_float t)
                | _ -> "?"
              in
              let name =
                match J.member "name" ev with Some (J.Str n) -> n | _ -> ""
              in
              spans :=
                {
                  Span.trace;
                  id;
                  parent;
                  kind;
                  name;
                  lane;
                  start_s = ts /. 1e6;
                  dur_s = dur /. 1e6;
                }
                :: !spans
            | Error e, _, _, _ | _, Error e, _, _ | _, _, Error e, _ ->
              errors := ("bad span id: " ^ e) :: !errors
            | _, _, _, None -> errors := ("unknown span kind " ^ kd) :: !errors
            )
          | _ ->
            errors :=
              "X event missing trace/span/kind args or ts/dur" :: !errors)
        | _ -> ())
      events;
    let spans = List.rev !spans in
    let problems = List.rev !errors @ Span.validate ~slack_s:slack spans in
    if spans = [] then begin
      Printf.eprintf "%s: no spans found in the trace\n%!" file;
      1
    end
    else begin
      match problems with
      | [] ->
        Printf.printf "%s: %d span(s), every parent present, well-nested\n"
          file (List.length spans);
        0
      | ps ->
        List.iter (fun e -> Printf.eprintf "%s: %s\n" file e) ps;
        Printf.eprintf "%s: %d violation(s)\n%!" file (List.length ps);
        1
    end

let runs_gc runs_dir dry_run =
  let report = Ledger.gc ~dry_run ~dir:runs_dir () in
  List.iter
    (fun (r : Ledger.run) ->
      Printf.printf "%s %s: %s %s (%s, fingerprint %s)\n"
        (if dry_run then "would drop" else "dropped")
        r.id r.cmd r.label r.scale r.fingerprint)
    report.Ledger.dropped;
  Printf.printf "%s: %d record(s) kept, %d superseded duplicate(s) %s\n"
    (Ledger.ledger_path ~dir:runs_dir)
    (List.length report.Ledger.kept)
    (List.length report.Ledger.dropped)
    (if dry_run then "found (dry run; ledger untouched)" else "removed");
  0

let runs_merge runs_dir dry_run sources =
  if sources = [] then
    usage "merge: pass at least one source ledger directory";
  List.iter
    (fun src ->
      if not (Sys.file_exists (Ledger.ledger_path ~dir:src)) then
        usage "merge: no ledger in %s" src)
    sources;
  let report = Ledger.merge ~dry_run ~dir:runs_dir ~from:sources () in
  List.iter
    (fun (r : Ledger.run) ->
      Printf.printf "%s %s: %s %s (%s, fingerprint %s)\n"
        (if dry_run then "would add" else "added")
        r.id r.cmd r.label r.scale r.fingerprint)
    report.Ledger.added;
  Printf.printf "%s: %d record(s) %s, %d identical duplicate(s) skipped\n"
    (Ledger.ledger_path ~dir:runs_dir)
    (List.length report.Ledger.added)
    (if dry_run then "would be merged (dry run; ledger untouched)"
     else "merged")
    (List.length report.Ledger.skipped);
  0

let run_id_pos n doc = Arg.(required & pos n (some string) None & info [] ~docv:"RUN" ~doc)

let runs_cmd =
  let list_cmd =
    Cmd.v
      (Cmd.info "list" ~doc:"List every recorded run (newest last).")
      Term.(const runs_list $ runs_dir_arg)
  in
  let show_cmd =
    Cmd.v
      (Cmd.info "show"
         ~doc:
           "Show one run in full: configuration, fault stats, the IPC \
            grid and gauges. $(b,latest) resolves to the newest run.")
      Term.(
        const runs_show $ runs_dir_arg
        $ run_id_pos 0 "Run id (or $(b,latest)).")
  in
  let diff_cmd =
    Cmd.v
      (Cmd.info "diff"
         ~doc:
           "Bit-compare two runs' IPC grids. Exits 0 when every cell is \
            bit-identical; exits 1 and names the first differing (mix, \
            scheme) cell otherwise.")
      Term.(
        const runs_diff $ runs_dir_arg
        $ run_id_pos 0 "First run id (or $(b,latest))."
        $ run_id_pos 1 "Second run id (or $(b,latest)).")
  in
  let export_cmd =
    let id_arg =
      Arg.(
        value & pos 0 string "latest"
        & info [] ~docv:"RUN" ~doc:"Run id (default $(b,latest)).")
    in
    Cmd.v
      (Cmd.info "export-metrics"
         ~doc:
           "Render a recorded run as an OpenMetrics/Prometheus textfile \
            exposition (counters, histograms, gauges).")
      Term.(const runs_export_metrics $ runs_dir_arg $ id_arg $ output_arg)
  in
  let lint_cmd =
    let file_arg =
      Arg.(
        required & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"Exposition file to validate.")
    in
    Cmd.v
      (Cmd.info "lint"
         ~doc:
           "Validate an OpenMetrics exposition file (HELP/TYPE \
            discipline, counter _total suffixes, label escaping, # EOF \
            terminator). Exits 1 on violations.")
      Term.(const runs_lint $ file_arg)
  in
  let lint_trace_cmd =
    let file_arg =
      Arg.(
        required & pos 0 (some string) None
        & info [] ~docv:"FILE" ~doc:"Chrome trace file to validate.")
    in
    let slack_arg =
      Arg.(
        value & opt float 0.05
        & info [ "slack" ] ~docv:"SECONDS"
            ~doc:
              "Nesting tolerance: a child may escape its parent's \
               interval by up to $(docv) (absorbs cross-process clock \
               reads).")
    in
    Cmd.v
      (Cmd.info "lint-trace"
         ~doc:
           "Validate a merged Chrome trace written by $(b,--trace-out): \
            valid JSON, every span's parent present in the trace, every \
            child span nested inside its parent (worker spans inside \
            their dispatch spans, and so on). Exits 1 on violations.")
      Term.(const runs_lint_trace $ slack_arg $ file_arg)
  in
  let gc_cmd =
    let dry_run_arg =
      Arg.(
        value & flag
        & info [ "dry-run" ]
            ~doc:"Report what would be dropped without touching the ledger.")
    in
    Cmd.v
      (Cmd.info "gc"
         ~doc:
           "Compact the run ledger: of the records sharing a configuration \
            fingerprint AND a grid digest, keep only the newest. Records \
            with the same fingerprint but different grid bits are drift \
            evidence and are never collapsed.")
      Term.(const runs_gc $ runs_dir_arg $ dry_run_arg)
  in
  let merge_cmd =
    let dry_run_arg =
      Arg.(
        value & flag
        & info [ "dry-run" ]
            ~doc:"Report what would be merged without touching the ledger.")
    in
    let sources_arg =
      Arg.(
        value & pos_all string []
        & info [] ~docv:"SRC"
            ~doc:"Source ledger directory to merge records from.")
    in
    Cmd.v
      (Cmd.info "merge"
         ~doc:
           "Merge other ledgers (e.g. per-worker $(b,_runs) directories \
            from a distributed sweep) into $(b,--runs-dir), skipping \
            source records whose (fingerprint, grid digest) pair the \
            target already holds — the same dedup rule as $(b,gc). \
            Same-fingerprint records with different grid bits always \
            merge: they are drift evidence.")
      Term.(const runs_merge $ runs_dir_arg $ dry_run_arg $ sources_arg)
  in
  Cmd.group
    (Cmd.info "runs"
       ~doc:
         "Inspect the run ledger: list, show, diff, export metrics, gc, \
          merge.")
    [
      list_cmd; show_cmd; diff_cmd; export_cmd; lint_cmd; lint_trace_cmd;
      gc_cmd; merge_cmd;
    ]

let run_report runs_dir wanted output =
  let r = find_run ~runs_dir wanted in
  let runs = Ledger.load ~dir:runs_dir in
  write_or_print output (Vliw_telemetry.Html_report.render ~runs r);
  0

let report_cmd =
  let run_arg =
    Arg.(
      value & opt string "latest"
      & info [ "run" ] ~docv:"RUN"
          ~doc:"Ledger run to report on (default $(b,latest)).")
  in
  Cmd.v
    (Cmd.info "report"
       ~doc:
         "Generate a self-contained HTML dashboard for a recorded run: \
          IPC grid, waste breakdown, stall attribution, sweep timeline \
          and the cross-run trajectory. One file, inline SVG, no \
          scripts, no external resources.")
    Term.(const run_report $ runs_dir_arg $ run_arg $ output_arg)

(* --- serve / submit -------------------------------------------------- *)

module Service = Vliw_service

let socket_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH"
        ~doc:"Unix-domain socket to listen on (serve) or connect to (submit).")

let tcp_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "tcp" ] ~docv:"PORT"
        ~doc:"Loopback TCP port to listen on (serve) or connect to (submit).")

let run_serve socket tcp runs_dir jobs no_ledger metrics_out max_inflight
    max_jobs quiet log_level log_format trace_out =
  if socket = None && tcp = None then
    usage "serve: pass --socket PATH and/or --tcp PORT";
  Service.Server.run
    {
      Service.Server.default_config with
      socket_path = socket;
      tcp_port = tcp;
      runs_dir;
      jobs;
      no_ledger;
      metrics_out;
      max_inflight;
      max_jobs;
      handle_signals = true;
      log = make_log ~component:"serve" ~quiet log_level log_format;
      trace_out;
    };
  0

let serve_cmd =
  let max_inflight_arg =
    Arg.(
      value
      & opt int Service.Server.default_config.Service.Server.max_inflight
      & info [ "max-inflight" ] ~docv:"N"
          ~doc:"Queued/running jobs allowed per client connection.")
  in
  let max_jobs_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "max-jobs" ] ~docv:"N"
          ~doc:
            "Drain and exit after completing $(docv) jobs (for smoke \
             tests and bounded CI sessions).")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the sweep service: a daemon that accepts NDJSON sweep \
          submissions, serves cells already recorded in the run ledger \
          from a content-addressed cache without re-simulating, runs \
          cold cells on a worker pool with priority + backfilling \
          scheduling, and appends every completed job back to the \
          ledger (bit-identical to a local $(b,vliwsim exp) of the same \
          configuration). Shutdown is graceful: SIGINT/SIGTERM or a \
          $(b,shutdown) request drains the queue first.")
    Term.(
      const run_serve $ socket_arg $ tcp_arg $ runs_dir_arg $ jobs_arg
      $ no_ledger_arg $ metrics_out_arg $ max_inflight_arg $ max_jobs_arg
      $ quiet_arg $ log_level_arg $ log_format_arg $ trace_out_arg)

(* The submit client: one request per invocation, replies streamed to
   stdout as they arrive. Exit codes keep the CLI contract: 0 when the
   request succeeds, 1 on an error reply / lost connection (runtime),
   2 on bad flags (usage). *)
let run_submit socket tcp op tag scale seed priority mixes schemes quiet
    trace_out =
  (* Client-side trace context: ids travel with the request, the
     server's spans come back on the done reply, and the merged tree
     (rooted at this client's span) is written as a Chrome trace. *)
  let tracer =
    match trace_out with
    | None -> None
    | Some path ->
      let c = Span.collector ~seed:0xc11e47c0deL () in
      let trace = Span.fresh_id c in
      let root = Span.fresh_id c in
      Some (c, trace, root, path)
  in
  let req =
    match op with
    | "submit" ->
      Service.Request.Submit
        {
          tag;
          scale = E.Common.scale_name scale;
          seed;
          priority;
          mixes;
          schemes;
          trace =
            Option.map
              (fun (_, trace, root, _) ->
                { Service.Request.trace_id = trace; parent_span = Some root })
              tracer;
        }
    | "ping" -> Service.Request.Ping
    | "stats" -> Service.Request.Stats
    | "metrics" -> Service.Request.Metrics
    | "shutdown" -> Service.Request.Shutdown
    | s -> usage "unknown op %S (submit|ping|stats|metrics|shutdown)" s
  in
  let fd =
    match (socket, tcp) with
    | Some path, _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         Printf.eprintf "submit: cannot connect to %s: %s\n%!" path
           (Printexc.to_string e);
         exit 1);
      fd
    | None, Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with e ->
         Unix.close fd;
         Printf.eprintf "submit: cannot connect to 127.0.0.1:%d: %s\n%!" port
           (Printexc.to_string e);
         exit 1);
      fd
    | None, None -> usage "submit: pass --socket PATH or --tcp PORT"
  in
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      let t_send =
        match tracer with Some (c, _, _, _) -> Span.now c | None -> 0.0
      in
      let line =
        Vliw_util.Ndjson.line (Service.Request.to_json req)
      in
      let rec push off =
        if off < String.length line then
          push (off + Unix.write_substring fd line off (String.length line - off))
      in
      push 0;
      (* [submit] streams until its job's done/error reply; every other
         op completes on the first reply line. *)
      let reader = Vliw_util.Ndjson.reader () in
      let module J = Vliw_util.Json in
      let reply_kind doc =
        match J.member "reply" doc with
        | Some (J.Str kind) -> Some kind
        | _ -> None
      in
      let handle doc =
        match reply_kind doc with
        | Some "error" ->
          Printf.eprintf "submit: %s\n%!"
            (match J.member "error" doc with
            | Some (J.Str msg) -> msg
            | _ -> J.to_string doc);
          Some 1
        | Some "metrics" ->
          (* unwrap the exposition so stdout pipes straight into
             `vliwsim runs lint` *)
          (match J.member "exposition" doc with
          | Some (J.Str text) -> print_string text
          | _ -> print_string (Vliw_util.Ndjson.line doc));
          Some 0
        | Some "done" ->
          print_string (Vliw_util.Ndjson.line doc);
          (match tracer with
          | None -> ()
          | Some (c, trace, root, path) ->
            (match J.member "spans" doc with
            | Some spans_json -> (
              match Span.list_of_json spans_json with
              | Ok sps -> List.iter (Span.add c) sps
              | Error e ->
                Printf.eprintf "submit: bad spans in reply: %s\n%!" e)
            | None -> ());
            Span.add c
              {
                Span.trace;
                id = root;
                parent = None;
                kind = Span.Submit;
                name = "client";
                lane = "client";
                start_s = t_send;
                dur_s = Span.now c -. t_send;
              };
            Vliw_util.Atomic_io.write_file ~path
              (Span.to_chrome ~process_name:"vliwsim submit" (Span.spans c));
            Printf.eprintf "wrote %s\n%!" path);
          Some 0
        | Some ("pong" | "stats" | "shutting_down") ->
          print_string (Vliw_util.Ndjson.line doc);
          Some 0
        | _ ->
          (* accepted and event lines: progress, not completion *)
          if not quiet then print_string (Vliw_util.Ndjson.line doc);
          if op = "submit" then None else Some 0
      in
      let buf = Bytes.create 4096 in
      let rec read_loop () =
        match Unix.read fd buf 0 (Bytes.length buf) with
        | 0 ->
          Printf.eprintf "submit: connection closed before the reply\n%!";
          1
        | n ->
          let rec consume = function
            | [] -> read_loop ()
            | Ok doc :: rest -> (
              match handle doc with Some code -> code | None -> consume rest)
            | Error e :: _ ->
              Printf.eprintf "submit: bad reply line: %s\n%!"
                (Vliw_util.Ndjson.error_message e);
              1
          in
          consume
            (Vliw_util.Ndjson.feed reader ~len:n (Bytes.unsafe_to_string buf))
      in
      read_loop ())

let submit_cmd =
  let op_arg =
    Arg.(
      value & opt string "submit"
      & info [ "op" ] ~docv:"OP"
          ~doc:
            "Request to send: $(b,submit) (default), $(b,ping), \
             $(b,stats), $(b,metrics) (prints the OpenMetrics exposition \
             raw) or $(b,shutdown) (graceful drain).")
  in
  let tag_arg =
    Arg.(
      value & opt string ""
      & info [ "tag" ] ~docv:"TAG"
          ~doc:"Label for the job (becomes the ledger record's label).")
  in
  let priority_arg =
    Arg.(
      value & opt int 0
      & info [ "priority" ] ~docv:"N"
          ~doc:
            "Scheduling priority (higher preempts at the next batch \
             boundary; FIFO within a priority).")
  in
  let mixes_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "mixes" ] ~docv:"MIXES"
          ~doc:"Comma-separated mix names (default: all Table 2 mixes).")
  in
  let schemes_arg =
    Arg.(
      value
      & opt (list string) []
      & info [ "schemes" ] ~docv:"SCHEMES"
          ~doc:
            "Comma-separated scheme names (default: every catalog scheme \
             except ST — the fig10 grid).")
  in
  Cmd.v
    (Cmd.info "submit"
       ~doc:
         "Submit a sweep to a running $(b,vliwsim serve) daemon and \
          stream its NDJSON replies to stdout until the job completes. \
          Cells the service has already computed (this session or any \
          recorded run) come back as cache hits without re-simulation.")
    Term.(
      const run_submit $ socket_arg $ tcp_arg $ op_arg $ tag_arg $ scale_arg
      $ seed_arg $ priority_arg $ mixes_arg $ schemes_arg $ quiet_arg
      $ trace_out_arg)

(* --- worker / dist --------------------------------------------------- *)

module Dist = Vliw_dist

(* The worker endpoint of a distributed sweep. Spawned by the
   coordinator over a pipe pair (stdio transport, the default) or
   started by hand with --connect/--connect-tcp against a coordinator
   listener. Protocol lines are the only bytes on stdout; diagnostics
   go to stderr. *)
let run_worker connect connect_tcp die_after_cells quiet log_level log_format
    =
  let log =
    make_log
      ~component:(Printf.sprintf "worker[%d]" (Unix.getpid ()))
      ~quiet log_level log_format
  in
  let input, output =
    match (connect, connect_tcp) with
    | Some _, Some _ -> usage "worker: --connect and --connect-tcp conflict"
    | Some path, None ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_UNIX path)
       with e ->
         Unix.close fd;
         Printf.eprintf "worker: cannot connect to %s: %s\n%!" path
           (Printexc.to_string e);
         exit 1);
      (fd, fd)
    | None, Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port))
       with e ->
         Unix.close fd;
         Printf.eprintf "worker: cannot connect to 127.0.0.1:%d: %s\n%!" port
           (Printexc.to_string e);
         exit 1);
      (fd, fd)
    | None, None -> (Unix.stdin, Unix.stdout)
  in
  match Dist.Worker.serve ?die_after_cells ~log ~input ~output () with
  | () -> 0
  | exception Dist.Worker.Killed ->
    Log.warn log "fault injection: dying mid-shard" [];
    1

let worker_cmd =
  let connect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "connect" ] ~docv:"PATH"
          ~doc:"Connect to a coordinator's Unix-domain listener at $(docv).")
  in
  let connect_tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "connect-tcp" ] ~docv:"PORT"
          ~doc:"Connect to a coordinator's loopback TCP listener on $(docv).")
  in
  let die_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "die-after-cells" ] ~docv:"N"
          ~doc:
            "Fault injection: exit abruptly (mid-shard, no shard-done \
             message) right after the $(docv)-th cell result. The \
             coordinator must recover by re-queuing the stranded cells.")
  in
  Cmd.v
    (Cmd.info "worker"
       ~doc:
         "Run a distributed-sweep worker. Without flags it speaks the \
          NDJSON shard protocol on stdin/stdout (how the coordinator \
          spawns it); with $(b,--connect)/$(b,--connect-tcp) it dials a \
          $(b,vliwsim dist) listener, adding this process to the fleet. \
          Cells are simulated exactly as in-process sweeps — bit-identical \
          by construction.")
    Term.(
      const run_worker $ connect_arg $ connect_tcp_arg $ die_arg $ quiet_arg
      $ log_level_arg $ log_format_arg)

let run_dist scale seed workers replicates shard_size max_retries shard_timeout
    checkpoint resume listen_socket listen_tcp chaos_kill no_ledger runs_dir
    metrics_out log_json quiet log_level log_format trace_out =
  if workers < 0 then usage "--workers must be non-negative";
  if replicates < 0 then usage "--replicates must be non-negative";
  if max_retries < 0 then usage "--max-retries must be non-negative";
  if resume && checkpoint = None then
    usage "--resume requires --checkpoint FILE (no journal to resume from)";
  if workers = 0 && listen_socket = None && listen_tcp = None then
    usage
      "dist: no worker transport (pass --workers N and/or \
       --listen-socket/--listen-tcp)";
  let seeds =
    if replicates = 0 then [ seed ]
    else E.Replicates.derive_seeds ~seed replicates
  in
  let on_event, close_log = event_logger ~quiet log_json in
  let tracer =
    match trace_out with
    | None -> None
    | Some _ -> Some (Span.collector ~seed:0xd157c0deL ())
  in
  let config =
    {
      Dist.Coordinator.default_config with
      workers;
      worker_argv =
        (if workers > 0 then [| Sys.executable_name; "worker" |] else [||]);
      listen_socket;
      listen_tcp;
      shard_size;
      max_retries;
      shard_timeout_s = shard_timeout;
      checkpoint;
      resume;
      die_first_worker_after = chaos_kill;
      log = make_log ~component:"dist" ~quiet log_level log_format;
      on_event;
      tracer;
    }
  in
  let result =
    Fun.protect ~finally:close_log (fun () ->
        Dist.Coordinator.run ~scale ~seed ~seeds config)
  in
  let counters =
    (* the conventional sweep.* names feed the record's fault stats
       (runs show / the trajectory plot), same as in-process sweeps *)
    let s = result.Dist.Coordinator.d_stats in
    Dist.Coordinator.counters_list s
    @ (if s.cells_restored > 0 then
         [ ("sweep.resumed_cells", s.cells_restored) ]
       else [])
    @ if s.workers_timeouts > 0 then [ ("sweep.timeouts", s.workers_timeouts) ]
      else []
  in
  let datas =
    List.map
      (fun (s, cells) ->
        ( s,
          E.Fig10.of_cells ~scheme_names:result.d_scheme_names
            ~mix_names:result.d_mix_names cells ))
      result.d_grids
  in
  (* Surface degraded cells exactly like `exp` does. *)
  List.iter
    (fun (s, cells) ->
      match E.Sweep.degraded cells with
      | [] -> ()
      | ds ->
        Printf.eprintf "warning: seed 0x%Lx: %d cell(s) degraded to n/a:\n%!" s
          (List.length ds);
        List.iter
          (fun (c : E.Sweep.cell) ->
            Printf.eprintf "  %s/%s after %d attempt(s): %s\n%!" c.mix c.scheme
              c.attempts
              (Option.value ~default:"unknown error" c.error))
          ds)
    result.d_grids;
  (* One ledger record per seed — fingerprint-compatible with `exp`
     records of the same configuration, so `runs diff` proves the
     distributed grid bit-identical to a single-process one. The dist.*
     counters ride on every record; the replicate summary (if any)
     carries the per-cell confidence intervals as gauges. *)
  let n_seeds = List.length datas in
  let wall_per_seed = result.d_wall_s /. float_of_int (max 1 n_seeds) in
  (* Fleet-wide latency quantiles (per span kind) ride every record's
     gauges, so the HTML report's latency panel works on dist runs. *)
  let span_gauges =
    match tracer with
    | None -> []
    | Some c -> Span.latency_gauges (Span.spans c)
  in
  let t_ledger0 =
    match tracer with Some c -> Span.now c | None -> 0.0
  in
  List.iteri
    (fun i (s, (d : E.Fig10.data)) ->
      let is_last = i = n_seeds - 1 && replicates = 0 in
      ignore
        (record_run ~no_ledger ~runs_dir
           ~metrics_out:(if is_last then metrics_out else None)
           (Ledger.make ~counters
              ~gauges:
                (("ipc.mean", E.Common.grid_mean d.grid) :: span_gauges)
              ~cells:(ledger_cells d.cells) ~cmd:"dist" ~label:"fig10"
              ~scale:(E.Common.scale_name scale) ~seed:s
              ~jobs:(max 1 workers) ~scheme_names:d.grid.scheme_names
              ~mix_names:d.grid.mix_names ~wall_s:wall_per_seed ())))
    datas;
  (match (tracer, trace_out) with
  | Some c, Some path ->
    ignore
      (Span.record c
         ~trace:(Span.fresh_id c)
         ~kind:Span.Ledger_append ~name:"dist" ~lane:"coordinator"
         ~start_s:t_ledger0
         ~dur_s:(Span.now c -. t_ledger0)
         ());
    Vliw_util.Atomic_io.write_file ~path (Span.to_chrome (Span.spans c));
    Printf.eprintf "wrote %s\n%!" path
  | _ -> ());
  if replicates = 0 then begin
    match datas with
    | [ (_, d) ] -> print_string (E.Fig10.render d)
    | _ -> ()
  end
  else begin
    let t = E.Replicates.of_grids datas in
    print_string (E.Replicates.render t);
    ignore
      (record_run ~no_ledger ~runs_dir ~metrics_out
         (Ledger.make ~counters
            ~gauges:
              (("replicates.n", float_of_int t.n)
              :: E.Replicates.cell_gauges t.cells)
              (* non-static policy: the summary must never share a
                 fingerprint with a plain fig10 record of the master
                 seed (it summarizes the replicate seeds instead) *)
            ~policy:"replicates" ~cmd:"dist" ~label:"replicates"
            ~scale:(E.Common.scale_name scale) ~seed ~jobs:(max 1 workers)
            ~scheme_names:result.d_scheme_names
            ~mix_names:result.d_mix_names ~wall_s:result.d_wall_s ()))
  end;
  0

let dist_cmd =
  let workers_arg =
    Arg.(
      value & opt int 2
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Local worker processes to keep alive ($(b,0) = none; then a \
             listener must supply the fleet). Workers that die are \
             respawned and their shards re-queued.")
  in
  let replicates_arg =
    Arg.(
      value & opt int 0
      & info [ "replicates" ] ~docv:"R"
          ~doc:
            "Sweep $(docv) replicate seeds (derived deterministically \
             from $(b,--seed)) instead of the single seed, and append a \
             summary record with per-cell 95% confidence intervals to \
             the ledger.")
  in
  let shard_size_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "shard-size" ] ~docv:"CELLS"
          ~doc:
            "Cells per work unit (default: grid size / 4x the fleet). \
             Any value yields bit-identical results.")
  in
  let retries_arg =
    Arg.(
      value & opt int 0
      & info [ "max-retries" ] ~docv:"N"
          ~doc:
            "Per-cell retry budget before a failing cell degrades to \
             n/a, exactly as in $(b,vliwsim exp).")
  in
  let timeout_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "shard-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Declare a worker dead after $(docv) of silence on an \
             assigned shard and re-queue its unreported cells.")
  in
  let checkpoint_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "checkpoint" ] ~docv:"FILE"
          ~doc:
            "Journal completed cells to $(docv) (same format as \
             $(b,vliwsim exp --checkpoint); multi-replicate runs suffix \
             it per seed).")
  in
  let resume_arg =
    Arg.(
      value & flag
      & info [ "resume" ]
          ~doc:
            "Restore cells already in the $(b,--checkpoint) journal \
             instead of re-simulating them.")
  in
  let listen_socket_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "listen-socket" ] ~docv:"PATH"
          ~doc:
            "Also accept $(b,vliwsim worker --connect) peers on a \
             Unix-domain listener at $(docv).")
  in
  let listen_tcp_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen-tcp" ] ~docv:"PORT"
          ~doc:
            "Also accept $(b,vliwsim worker --connect-tcp) peers on \
             loopback port $(docv).")
  in
  let chaos_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "chaos-kill-after" ] ~docv:"CELLS"
          ~doc:
            "Fault injection: the first spawned worker exits abruptly \
             after $(docv) cells, exercising the re-queue path (the \
             merged grid must still be bit-identical).")
  in
  Cmd.v
    (Cmd.info "dist"
       ~doc:
         "Run the shared (mix x scheme) sweep as a distributed sharded \
          sweep: a coordinator dispatches shards to worker processes \
          (spawned locally and/or connected via listeners), survives \
          worker deaths by re-queuing, and merges one grid per replicate \
          that is bit-identical to a single-process $(b,vliwsim exp) run \
          — verify with $(b,vliwsim runs diff).")
    Term.(
      const run_dist $ scale_arg $ seed_arg $ workers_arg $ replicates_arg
      $ shard_size_arg $ retries_arg $ timeout_arg $ checkpoint_arg
      $ resume_arg $ listen_socket_arg $ listen_tcp_arg $ chaos_arg
      $ no_ledger_arg $ runs_dir_arg $ metrics_out_arg $ log_json_arg
      $ quiet_arg $ log_level_arg $ log_format_arg $ trace_out_arg)

(* --- top -------------------------------------------------------------- *)

(* One poll = one short-lived connection carrying a single {"op":"stats"}
   line. The serve daemon keeps the connection open but a fresh one per
   frame costs nothing; the dist coordinator answers a stats query and
   then drops the peer — so reconnecting each frame is the one shape
   that monitors both daemons. *)
let poll_stats socket tcp =
  let module J = Vliw_util.Json in
  let connected =
    match (socket, tcp) with
    | Some path, _ ->
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_UNIX path);
         Ok fd
       with e ->
         Unix.close fd;
         Error (Printexc.to_string e))
    | None, Some port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Ok fd
       with e ->
         Unix.close fd;
         Error (Printexc.to_string e))
    | None, None -> usage "top: pass --socket PATH or --tcp PORT"
  in
  match connected with
  | Error e -> Error e
  | Ok fd ->
    Fun.protect
      ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
      (fun () ->
        let line = Vliw_util.Ndjson.line (J.Obj [ ("op", J.Str "stats") ]) in
        let rec push off =
          if off < String.length line then
            push
              (off + Unix.write_substring fd line off (String.length line - off))
        in
        match push 0 with
        | () -> (
          let reader = Vliw_util.Ndjson.reader () in
          let buf = Bytes.create 4096 in
          let rec read_reply () =
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 -> Error "connection closed before the stats reply"
            | n -> (
              match
                Vliw_util.Ndjson.feed reader ~len:n (Bytes.unsafe_to_string buf)
              with
              | [] -> read_reply ()
              | Ok doc :: _ -> Ok doc
              | Error e :: _ -> Error (Vliw_util.Ndjson.error_message e))
            | exception
                Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
              Error "connection reset"
          in
          read_reply ())
        | exception Unix.Unix_error (e, _, _) ->
          Error ("write failed: " ^ Unix.error_message e))

let render_top ~target ~history doc =
  let module J = Vliw_util.Json in
  let b = Buffer.create 1024 in
  let line fmt =
    Printf.ksprintf
      (fun s ->
        Buffer.add_string b s;
        Buffer.add_char b '\n')
      fmt
  in
  let num key = match J.member key doc with Some (J.Num v) -> Some v | _ -> None in
  let inum key = Option.map int_of_float (num key) in
  let counters =
    match J.member "counters" doc with
    | Some (J.Obj kvs) ->
      List.filter_map
        (fun (k, v) -> match v with J.Num n -> Some (k, n) | _ -> None)
        kvs
    | _ -> []
  in
  let counter k = Option.value ~default:0.0 (List.assoc_opt k counters) in
  let kind =
    match J.member "kind" doc with Some (J.Str s) -> s | _ -> "service"
  in
  let draining =
    match J.member "draining" doc with Some (J.Bool d) -> d | _ -> false
  in
  line "vliwsim top — %s @ %s%s" kind target
    (if draining then "  [draining]" else "");
  (match kind with
  | "dist" ->
    let completed = Option.value ~default:0 (inum "completed") in
    let total = Option.value ~default:0 (inum "total") in
    line "progress      %d/%d cells (%.1f%%)  wall %.1fs" completed total
      (if total = 0 then 0.0
       else 100.0 *. float_of_int completed /. float_of_int total)
      (Option.value ~default:0.0 (num "wall_s"));
    line "queue         %d shard(s)"
      (Option.value ~default:0 (inum "queue_depth"));
    line "retried       %.0f  degraded %.0f  deaths %.0f"
      (counter "dist.cells.retried")
      (counter "dist.cells.degraded")
      (counter "dist.workers.died");
    let workers =
      match J.member "workers" doc with Some (J.List ws) -> ws | _ -> []
    in
    line "workers       %d attached" (List.length workers);
    List.iter
      (fun w ->
        let wnum key =
          match J.member key w with
          | Some (J.Num v) -> int_of_float v
          | _ -> 0
        in
        let ready =
          match J.member "ready" w with Some (J.Bool r) -> r | _ -> false
        in
        line "  worker %-4d %s  cells=%d" (wnum "worker")
          (if ready then "idle" else "busy")
          (wnum "cells"))
      workers
  | _ ->
    line "queue depth   %d" (Option.value ~default:0 (inum "queue_depth"));
    let inflight =
      match J.member "inflight" doc with Some (J.List l) -> l | _ -> []
    in
    let inflight_jobs =
      List.fold_left
        (fun acc c ->
          match J.member "jobs" c with
          | Some (J.Num n) -> acc + int_of_float n
          | _ -> acc)
        0 inflight
    in
    line "clients       %d (%d in-flight job(s))"
      (Option.value ~default:0 (inum "clients"))
      inflight_jobs;
    let cached = counter "service.cells.cached" in
    let simulated = counter "service.cells.simulated" in
    line "cache         %d cell(s), hit rate %s"
      (Option.value ~default:0 (inum "cache_cells"))
      (if cached +. simulated <= 0.0 then "-"
       else Printf.sprintf "%.1f%%" (100.0 *. cached /. (cached +. simulated)));
    line "jobs done     %.0f" (counter "service.jobs.completed"));
  (match history with
  | [] -> ()
  | rates ->
    let last = List.nth rates (List.length rates - 1) in
    line "cells/s       %.1f  %s" last
      (Vliw_util.Ascii_chart.sparkline ~width:30 rates));
  (match J.member "latency" doc with
  | Some (J.Obj kvs) ->
    let get k =
      match List.assoc_opt k kvs with Some (J.Num v) -> Some v | _ -> None
    in
    line "latency (s)   p50 / p95 / p99";
    List.iter
      (fun kind ->
        let k = Span.kind_name kind in
        match
          (get ("span." ^ k ^ ".p50"), get ("span." ^ k ^ ".p95"),
           get ("span." ^ k ^ ".p99"), get ("span." ^ k ^ ".count"))
        with
        | Some p50, Some p95, Some p99, Some n ->
          line "  %-12s %.4f / %.4f / %.4f  (n=%.0f)" k p50 p95 p99 n
        | _ -> ())
      Span.all_kinds
  | _ -> ());
  Buffer.contents b

let run_top socket tcp interval once =
  if interval <= 0.0 then usage "top: --interval must be positive";
  let target =
    match (socket, tcp) with
    | Some path, _ -> path
    | None, Some port -> Printf.sprintf "127.0.0.1:%d" port
    | None, None -> usage "top: pass --socket PATH or --tcp PORT"
  in
  let cells_done counters_doc =
    let module J = Vliw_util.Json in
    match J.member "counters" counters_doc with
    | Some (J.Obj kvs) ->
      List.fold_left
        (fun acc (k, v) ->
          match (k, v) with
          | ( ( "service.cells.cached" | "service.cells.simulated"
              | "dist.cells.simulated" | "dist.cells.restored" ),
              J.Num n ) ->
            acc +. n
          | _ -> acc)
        0.0 kvs
    | _ -> 0.0
  in
  let history = ref [] in
  let prev = ref None in
  let rec loop () =
    match poll_stats socket tcp with
    | Error e ->
      if once then begin
        Printf.eprintf "top: %s\n%!" e;
        1
      end
      else begin
        Printf.printf "\027[H\027[2Jvliwsim top — %s\nunreachable: %s \
                       (retrying every %.1fs)\n%!"
          target e interval;
        Unix.sleepf interval;
        loop ()
      end
    | Ok doc ->
      let now = Unix.gettimeofday () in
      let total = cells_done doc in
      (match !prev with
      | Some (t0, c0) when now > t0 ->
        history := !history @ [ (total -. c0) /. (now -. t0) ]
      | _ -> ());
      prev := Some (now, total);
      let frame = render_top ~target ~history:!history doc in
      if once then begin
        print_string frame;
        0
      end
      else begin
        print_string ("\027[H\027[2J" ^ frame);
        flush stdout;
        Unix.sleepf interval;
        loop ()
      end
  in
  loop ()

let top_cmd =
  let interval_arg =
    Arg.(
      value & opt float 2.0
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between polls (each poll is one connection).")
  in
  let once_arg =
    Arg.(
      value & flag
      & info [ "once" ]
          ~doc:
            "Render a single frame without terminal escape codes and \
             exit (0 on a valid stats reply) — for scripts and CI.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live fleet monitor: poll a running $(b,serve) daemon or \
          $(b,dist) coordinator over its socket and render queue depth, \
          in-flight work per client/worker, cache hit rate, per-kind \
          latency quantiles and a cells/s sparkline, refreshing in \
          place.")
    Term.(const run_top $ socket_arg $ tcp_arg $ interval_arg $ once_arg)

(* --- check ---------------------------------------------------------- *)

let run_check scale seed jobs quiet =
  Vliw_sim.Invariants.set_enforced true;
  let failures = ref 0 in
  let report name = function
    | Ok () -> Printf.printf "ok   %s\n%!" name
    | Error msg ->
      incr failures;
      Printf.printf "FAIL %s: %s\n%!" name msg
  in
  let catching f =
    match f () with
    | () -> Ok ()
    | exception Vliw_sim.Invariants.Violation msg -> Error msg
  in
  (* Fast path vs oracle on every catalog scheme. *)
  List.iter
    (fun (e : Vliw_merge.Catalog.entry) ->
      report
        ("select = select_reference: " ^ e.name)
        (catching (fun () -> Vliw_sim.Invariants.check_select ~seed e.scheme)))
    Vliw_merge.Catalog.all;
  (* Every registered experiment with enforcement on: each simulation's
     metrics record passes through [Invariants.check_metrics] (Multitask
     hook) and each telemetry cell through [check_attribution]. One ctx:
     the shared fig10 grid is forced once and reused. *)
  let ctx =
    E.Registry.make_ctx ~scale ~seed ~jobs
      ?progress:(progress_reporter ~quiet ())
      ~telemetry:true ()
  in
  List.iter
    (fun entry ->
      report
        ("experiment: " ^ E.Registry.id entry)
        (catching (fun () -> ignore (E.Registry.run_entry ctx entry))))
    E.Registry.standard;
  (match sweep_telemetry ctx with
  | None -> ()
  | Some cells ->
    report "sweep: no degraded cells"
      (match E.Sweep.degraded cells with
      | [] -> Ok ()
      | ds ->
        Error
          (String.concat "; "
             (List.map
                (fun (c : E.Sweep.cell) ->
                  Printf.sprintf "%s/%s: %s" c.mix c.scheme
                    (Option.value ~default:"unknown error" c.error))
                ds)));
    report "sweep: exact stall attribution"
      (catching (fun () ->
           Vliw_sim.Invariants.check_attribution (E.Sweep.merged_telemetry cells))));
  if !failures = 0 then begin
    print_endline "all checks passed";
    0
  end
  else begin
    Printf.eprintf "%d check(s) failed\n" !failures;
    1
  end

let check_cmd =
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Run the self-check battery: conservation invariants on every \
          registered experiment (telemetry on, enforcement on) and the \
          sampled select-vs-oracle probe on every catalog scheme. Exits 1 \
          if any check fails.")
    Term.(const run_check $ scale_arg $ seed_arg $ jobs_arg $ quiet_arg)

let () =
  let doc = "Thread merging schemes for multithreaded clustered VLIW processors" in
  let info = Cmd.info "vliwsim" ~version:"1.0.0" ~doc in
  let group =
    Cmd.group info
      [
        exp_cmd; run_cmd; trace_cmd; profile_cmd; compile_cmd; check_cmd;
        serve_cmd; submit_cmd; dist_cmd; worker_cmd; top_cmd; runs_cmd;
        report_cmd; schemes_cmd; benchmarks_cmd;
      ]
  in
  (* Uniform exit-code policy. [~catch:false] lets command-body
     exceptions reach us instead of cmdliner's backtrace dump (which
     exits 124): usage problems (ours or cmdliner's) are 2, runtime
     failures are 1, and both diagnose on stderr. *)
  match Cmd.eval_value ~catch:false group with
  | Ok (`Ok code) -> exit code
  | Ok (`Help | `Version) -> exit 0
  | Error (`Parse | `Term) -> exit 2
  | Error `Exn -> exit 1 (* unreachable with ~catch:false *)
  | exception Usage_error msg ->
    Printf.eprintf "vliwsim: %s\n" msg;
    exit 2
  | exception e ->
    Printf.eprintf "vliwsim: error: %s\n" (Printexc.to_string e);
    exit 1
