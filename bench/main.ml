(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (the rows and
   series the paper reports, at the default scaled-down simulation
   length) — this is the reproduction artifact.

   Part 2 runs Bechamel micro-benchmarks of the simulator's hot
   primitives (merge selection per scheme, routing, cache access,
   compilation, simulation cycles), one Test per experiment family. *)

module E = Vliw_experiments

let heading title =
  Printf.printf "\n================ %s ================\n%!" title

let regenerate_all ~jobs () =
  (* One fold over the experiment registry; the lazy fig10 grid inside
     the ctx is shared by fig6/fig10/fig11/fig12/claims exactly as the
     old hand-written sequence did. *)
  let ctx = E.Registry.make_ctx ~scale:E.Common.Default ~jobs () in
  List.iter
    (fun entry ->
      heading (E.Registry.title entry);
      let text, _csv = E.Registry.run_entry ctx entry in
      print_string text)
    E.Registry.standard

(* --- Bechamel micro-benchmarks --- *)

open Bechamel
open Toolkit

let machine = Vliw_isa.Machine.default

let bench_experiments =
  (* One Test per paper artifact, at Quick scale so the timing loop
     stays tractable. *)
  let quick = E.Common.Quick in
  [
    Test.make ~name:"table1" (Staged.stage (fun () -> E.Table1.run ~scale:quick ()));
    Test.make ~name:"fig4" (Staged.stage (fun () -> E.Fig4.run ~scale:quick ()));
    Test.make ~name:"fig5" (Staged.stage (fun () -> E.Fig5.run ()));
    Test.make ~name:"fig6" (Staged.stage (fun () -> E.Fig6.run ~scale:quick ()));
    Test.make ~name:"fig9" (Staged.stage (fun () -> E.Fig9.run ()));
    Test.make ~name:"ablations"
      (Staged.stage (fun () -> E.Ablations.run ~scale:quick ~mixes:[ "LLHH" ] ()));
    Test.make ~name:"fig10-row"
      (Staged.stage (fun () ->
           E.Sweep.run ~scale:quick
             ~scheme_names:[ "1S"; "3CCC"; "2SC3"; "3SSS" ]
             ~mix_names:[ "LLHH" ] ()));
  ]

let bench_primitives =
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  let programs =
    List.map (Vliw_compiler.Program.generate ~seed:1L machine) mix.members
  in
  let instrs =
    Array.of_list
      (List.map
         (fun (p : Vliw_compiler.Program.t) -> Some p.blocks.(0).instrs.(0))
         programs)
  in
  let schemes =
    List.map
      (fun n -> (n, (Vliw_merge.Catalog.find_exn n).scheme))
      [ "3CCC"; "C4"; "2SC3"; "3SSS" ]
  in
  let select_benches =
    List.map
      (fun (name, scheme) ->
        Test.make ~name:("select-" ^ name)
          (Staged.stage (fun () ->
               ignore (Vliw_merge.Engine.select_instrs machine scheme instrs))))
      schemes
  in
  let cache = Vliw_mem.Cache.create machine.dcache in
  let counter = ref 0 in
  select_benches
  @ [
      Test.make ~name:"cache-access"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Vliw_mem.Cache.access cache (!counter * 64))));
      Test.make ~name:"compile-program"
        (Staged.stage (fun () ->
             ignore
               (Vliw_compiler.Program.generate ~seed:7L machine
                  (Vliw_workloads.Benchmarks.find_exn "g721encode"))));
      Test.make ~name:"simulate-10k-cycles"
        (Staged.stage (fun () ->
             let config =
               Vliw_sim.Config.make (Vliw_merge.Catalog.find_exn "2SC3").scheme
             in
             ignore
               (Vliw_sim.Multitask.run_programs config ~seed:3L
                  ~schedule:
                    {
                      Vliw_sim.Multitask.timeslice = 10_000;
                      target_instrs = max_int;
                      max_cycles = 10_000;
                    }
                  programs)));
    ]

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]

let run_bechamel ~name tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let grouped = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let print_bechamel merged =
  let open Notty_unix in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock);
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run merged
  in
  eol img |> output_image

let () =
  let argv = Array.to_list Sys.argv in
  let bench_only = List.mem "--timing-only" argv in
  let jobs =
    (* `--jobs N` parallelizes the sweep-backed regenerations. *)
    let rec find = function
      | "--jobs" :: n :: _ -> (try int_of_string n with _ -> 1)
      | _ :: rest -> find rest
      | [] -> 1
    in
    find argv
  in
  if not bench_only then regenerate_all ~jobs ();
  heading "Micro-benchmarks (Bechamel, monotonic clock)";
  let groups =
    [ ("experiments", bench_experiments); ("primitives", bench_primitives) ]
  in
  List.iter
    (fun (name, tests) ->
      Printf.printf "\n-- %s --\n%!" name;
      print_bechamel (run_bechamel ~name tests))
    groups
