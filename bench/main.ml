(* Benchmark harness.

   Part 1 regenerates every table and figure of the paper (the rows and
   series the paper reports, at the default scaled-down simulation
   length) — this is the reproduction artifact.

   Part 2 runs Bechamel micro-benchmarks of the simulator's hot
   primitives (merge selection per scheme, routing, cache access,
   compilation, simulation cycles), one Test per experiment family. *)

module E = Vliw_experiments

let heading title =
  Printf.printf "\n================ %s ================\n%!" title

let regenerate_all ~jobs () =
  (* One fold over the experiment registry; the lazy fig10 grid inside
     the ctx is shared by fig6/fig10/fig11/fig12/claims exactly as the
     old hand-written sequence did. *)
  let ctx = E.Registry.make_ctx ~scale:E.Common.Default ~jobs () in
  List.iter
    (fun entry ->
      heading (E.Registry.title entry);
      let text, _csv = E.Registry.run_entry ctx entry in
      print_string text)
    E.Registry.standard

(* --- machine-readable benchmark (bench --json) ----------------------

   Writes BENCH_sim.json: stepping throughput and decision-cache hit
   rates per scheme family, the wall clock of regenerating every
   standard experiment, and a fixed CPU calibration loop. The
   calibration lets a CI gate compare `exp_all_calibrated` (wall clock
   in calibration units) across machines of different speeds. *)

let calibrate () =
  (* Fixed allocation-free integer workload: ~10^8 RNG draws. *)
  let rng = Vliw_util.Rng.create 0x5CA1AB1EL in
  let acc = ref 0 in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to 25_000_000 do
    acc := !acc lxor Vliw_util.Rng.int rng 1024
  done;
  ignore (Sys.opaque_identity !acc);
  Unix.gettimeofday () -. t0

let json_scheme_names = [ "1S"; "C4"; "3CCC"; "3SSS"; "2SC3" ]

type scheme_bench = {
  sb_name : string;
  sb_threads : int;
  sb_cycles_per_sec : float;
  sb_words_per_cycle : float;
  sb_hit_rate : float;
  sb_flushes : int;
}

let bench_scheme name =
  let entry = Vliw_merge.Catalog.find_exn name in
  let config = Vliw_sim.Config.make entry.scheme in
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  let rng = Vliw_util.Rng.create 7L in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate ~seed:(Vliw_util.Rng.next_int64 rng)
          config.Vliw_sim.Config.machine p)
      mix.members
  in
  let threads =
    Array.of_list
      (List.mapi
         (fun id program ->
           Vliw_sim.Thread_state.create ~id
             ~seed:(Vliw_util.Rng.next_int64 rng)
             program)
         programs)
  in
  let mem = Vliw_mem.Mem_system.create config.Vliw_sim.Config.machine in
  let core = Vliw_sim.Core.create config mem in
  let n = Vliw_sim.Config.contexts config in
  Vliw_sim.Core.install core
    (Array.init n (fun i ->
         if i < Array.length threads then Some threads.(i) else None));
  for _ = 1 to 50_000 do
    Vliw_sim.Core.step core
  done;
  let n_steps = 1_000_000 in
  let a0 = Gc.allocated_bytes () in
  let t0 = Unix.gettimeofday () in
  for _ = 1 to n_steps do
    Vliw_sim.Core.step core
  done;
  let dt = Unix.gettimeofday () -. t0 in
  let words = (Gc.allocated_bytes () -. a0) /. 8.0 in
  let hit_rate, flushes =
    match Vliw_sim.Core.memo_stats core with
    | None -> (0.0, 0)
    | Some s ->
      let total = s.hits + s.misses in
      ((if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total),
       s.flushes)
  in
  {
    sb_name = name;
    sb_threads = n;
    sb_cycles_per_sec = float_of_int n_steps /. dt;
    sb_words_per_cycle = words /. float_of_int n_steps;
    sb_hit_rate = hit_rate;
    sb_flushes = flushes;
  }

let time_exp_all ~scale ~jobs () =
  let ctx = E.Registry.make_ctx ~scale ~jobs () in
  let t0 = Unix.gettimeofday () in
  List.iter
    (fun entry -> ignore (E.Registry.run_entry ctx entry : string * _))
    E.Registry.standard;
  Unix.gettimeofday () -. t0

let write_json ~path ~scale_name ~calib ~exp_all_s schemes =
  let buf = Buffer.create 1024 in
  let fmt = Printf.bprintf in
  fmt buf "{\n";
  fmt buf "  \"schema\": 1,\n";
  fmt buf "  \"scale\": \"%s\",\n" scale_name;
  fmt buf "  \"calibration_s\": %.4f,\n" calib;
  fmt buf "  \"exp_all_wall_s\": %.3f,\n" exp_all_s;
  fmt buf "  \"exp_all_calibrated\": %.3f,\n" (exp_all_s /. calib);
  fmt buf "  \"schemes\": [\n";
  List.iteri
    (fun i sb ->
      fmt buf
        "    { \"name\": \"%s\", \"threads\": %d, \"cycles_per_sec\": %.0f, \
         \"words_per_cycle\": %.1f, \"memo_hit_rate\": %.4f, \
         \"memo_flushes\": %d }%s\n"
        sb.sb_name sb.sb_threads sb.sb_cycles_per_sec sb.sb_words_per_cycle
        sb.sb_hit_rate sb.sb_flushes
        (if i = List.length schemes - 1 then "" else ","))
    schemes;
  fmt buf "  ]\n}\n";
  (* Atomic rewrite: the CI perf gate parses this file, so a killed
     bench run must not leave a truncated JSON behind. *)
  Vliw_util.Atomic_io.write_file ~path (Buffer.contents buf)

(* Bench runs join the same ledger as exp/run: the calibrated exp-all
   wall clock and per-scheme stepping throughput become gauges, so
   `vliwsim runs list` shows perf trends next to result drift. A ledger
   failure never fails the benchmark that produced good numbers. *)
let record_ledger ~scale_name ~jobs ~calib ~exp_all_s ~wall_s schemes =
  let module Ledger = Vliw_telemetry.Ledger in
  let gauges =
    [
      ("calibration_s", calib);
      ("exp_all_wall_s", exp_all_s);
      ("exp_all_calibrated", exp_all_s /. calib);
    ]
    @ List.concat_map
        (fun sb ->
          [
            ("cycles_per_sec." ^ sb.sb_name, sb.sb_cycles_per_sec);
            ("Mcycles_per_sec." ^ sb.sb_name, sb.sb_cycles_per_sec /. 1e6);
            ("words_per_cycle." ^ sb.sb_name, sb.sb_words_per_cycle);
            ("memo_hit_rate." ^ sb.sb_name, sb.sb_hit_rate);
          ])
        schemes
  in
  match
    Ledger.append ~dir:Ledger.default_dir
      (Ledger.make ~gauges ~cmd:"bench" ~label:"json" ~scale:scale_name
         ~seed:E.Common.default_seed ~jobs
         ~scheme_names:(List.map (fun sb -> sb.sb_name) schemes)
         ~mix_names:[] ~wall_s ())
  with
  | run ->
    Printf.printf "recorded run %s in %s\n%!" run.Ledger.id
      (Ledger.ledger_path ~dir:Ledger.default_dir)
  | exception e ->
    Printf.eprintf "warning: could not record bench ledger entry: %s\n%!"
      (Printexc.to_string e)

let run_json ~scale_name ~jobs ~path ~ledger () =
  let scale =
    match scale_name with
    | "quick" -> E.Common.Quick
    | "full" -> E.Common.Full
    | _ -> E.Common.Default
  in
  let t0 = Unix.gettimeofday () in
  Printf.printf "calibrating...\n%!";
  let calib = calibrate () in
  Printf.printf "stepping throughput per scheme...\n%!";
  let schemes = List.map bench_scheme json_scheme_names in
  Printf.printf "regenerating all standard experiments (%s)...\n%!" scale_name;
  let exp_all_s = time_exp_all ~scale ~jobs () in
  write_json ~path ~scale_name ~calib ~exp_all_s schemes;
  if ledger then
    record_ledger ~scale_name ~jobs ~calib ~exp_all_s
      ~wall_s:(Unix.gettimeofday () -. t0)
      schemes;
  Printf.printf "wrote %s (exp-all %.1fs, %.1f calibration units)\n%!" path
    exp_all_s (exp_all_s /. calib)

(* --- Bechamel micro-benchmarks --- *)

open Bechamel
open Toolkit

let machine = Vliw_isa.Machine.default

let bench_experiments =
  (* One Test per paper artifact, at Quick scale so the timing loop
     stays tractable. *)
  let quick = E.Common.Quick in
  [
    Test.make ~name:"table1" (Staged.stage (fun () -> E.Table1.run ~scale:quick ()));
    Test.make ~name:"fig4" (Staged.stage (fun () -> E.Fig4.run ~scale:quick ()));
    Test.make ~name:"fig5" (Staged.stage (fun () -> E.Fig5.run ()));
    Test.make ~name:"fig6" (Staged.stage (fun () -> E.Fig6.run ~scale:quick ()));
    Test.make ~name:"fig9" (Staged.stage (fun () -> E.Fig9.run ()));
    Test.make ~name:"ablations"
      (Staged.stage (fun () -> E.Ablations.run ~scale:quick ~mixes:[ "LLHH" ] ()));
    Test.make ~name:"fig10-row"
      (Staged.stage (fun () ->
           E.Sweep.run ~scale:quick
             ~scheme_names:[ "1S"; "3CCC"; "2SC3"; "3SSS" ]
             ~mix_names:[ "LLHH" ] ()));
  ]

let bench_primitives =
  let mix = Vliw_workloads.Mixes.find_exn "LLHH" in
  let programs =
    List.map (Vliw_compiler.Program.generate ~seed:1L machine) mix.members
  in
  let instrs =
    Array.of_list
      (List.map
         (fun (p : Vliw_compiler.Program.t) -> Some p.blocks.(0).instrs.(0))
         programs)
  in
  let schemes =
    List.map
      (fun n -> (n, (Vliw_merge.Catalog.find_exn n).scheme))
      [ "3CCC"; "C4"; "2SC3"; "3SSS" ]
  in
  let select_benches =
    List.map
      (fun (name, scheme) ->
        Test.make ~name:("select-" ^ name)
          (Staged.stage (fun () ->
               ignore (Vliw_merge.Engine.select_instrs machine scheme instrs))))
      schemes
  in
  let cache = Vliw_mem.Cache.create machine.dcache in
  let counter = ref 0 in
  select_benches
  @ [
      Test.make ~name:"cache-access"
        (Staged.stage (fun () ->
             incr counter;
             ignore (Vliw_mem.Cache.access cache (!counter * 64))));
      Test.make ~name:"compile-program"
        (Staged.stage (fun () ->
             ignore
               (Vliw_compiler.Program.generate ~seed:7L machine
                  (Vliw_workloads.Benchmarks.find_exn "g721encode"))));
      Test.make ~name:"simulate-10k-cycles"
        (Staged.stage (fun () ->
             let config =
               Vliw_sim.Config.make (Vliw_merge.Catalog.find_exn "2SC3").scheme
             in
             ignore
               (Vliw_sim.Multitask.run_programs config ~seed:3L
                  ~schedule:
                    {
                      Vliw_sim.Multitask.timeslice = 10_000;
                      target_instrs = max_int;
                      max_cycles = 10_000;
                    }
                  programs)));
    ]

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]

let run_bechamel ~name tests =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~kde:(Some 100) () in
  let grouped = Test.make_grouped ~name ~fmt:"%s %s" tests in
  let raw = Benchmark.all cfg instances grouped in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw) instances
  in
  Analyze.merge ols instances results

let print_bechamel merged =
  let open Notty_unix in
  let window =
    match winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 100; h = 1 }
  in
  Bechamel_notty.Unit.add Instance.monotonic_clock
    (Measure.unit Instance.monotonic_clock);
  let img =
    Bechamel_notty.Multiple.image_of_ols_results ~rect:window
      ~predictor:Measure.run merged
  in
  eol img |> output_image

let () =
  let argv = Array.to_list Sys.argv in
  let bench_only = List.mem "--timing-only" argv in
  let find_val flag default =
    let rec find = function
      | f :: v :: _ when f = flag -> v
      | _ :: rest -> find rest
      | [] -> default
    in
    find argv
  in
  let jobs =
    (* `--jobs N` parallelizes the sweep-backed regenerations. *)
    try int_of_string (find_val "--jobs" "1") with _ -> 1
  in
  if List.mem "--json" argv then begin
    let scale_name = find_val "--scale" "quick" in
    let path = find_val "--out" "BENCH_sim.json" in
    let ledger = not (List.mem "--no-ledger" argv) in
    run_json ~scale_name ~jobs ~path ~ledger ();
    exit 0
  end;
  if not bench_only then regenerate_all ~jobs ();
  heading "Micro-benchmarks (Bechamel, monotonic clock)";
  let groups =
    [ ("experiments", bench_experiments); ("primitives", bench_primitives) ]
  in
  List.iter
    (fun (name, tests) ->
      Printf.printf "\n-- %s --\n%!" name;
      print_bechamel (run_bechamel ~name tests))
    groups
