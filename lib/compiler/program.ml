module Isa = Vliw_isa
module Rng = Vliw_util.Rng

type mode = [ `Block | `Trace of int ]

type block = {
  instrs : Isa.Instr.t array;
  exits : (int * int) array;
  fall_through : int;
}

type t = {
  profile : Profile.t;
  blocks : block array;
  entry : int;
  instr_bytes : int;
  mode : mode;
  total_ops : int;
  total_instrs : int;
}

(* One VLIW instruction occupies 4 bytes per issue slot, like VEX's
   32-bit syllables. *)
let instr_bytes_of (m : Isa.Machine.t) = 4 * Isa.Machine.total_issue m

(* Values a successor block may consume: the last few non-branch
   operations of the region. *)
let live_out_ids (dag : Dag.t) =
  let ids = ref [] in
  let n = Dag.size dag in
  let taken = ref 0 in
  let i = ref (n - 1) in
  while !taken < 6 && !i >= 0 do
    let node = dag.nodes.(!i) in
    if node.klass <> Isa.Op.Branch then begin
      ids := node.id :: !ids;
      incr taken
    end;
    decr i
  done;
  !ids

let generate ~seed ?(mode = `Block) (m : Isa.Machine.t) (p : Profile.t) =
  (match Profile.validate p with
  | Ok () -> ()
  | Error msg -> invalid_arg ("Program.generate: " ^ p.name ^ ": " ^ msg));
  let blocks_per_region =
    match mode with
    | `Block -> 1
    | `Trace n ->
      if n < 1 then invalid_arg "Program.generate: trace length must be >= 1";
      n
  in
  let rng = Rng.create seed in
  let dag_rng = Rng.split rng in
  let cfg_rng = Rng.split rng in
  let instr_bytes = instr_bytes_of m in
  let n_regions = max 1 (p.static_blocks / blocks_per_region) in
  let hot_count = max 1 (n_regions / 5) in
  let next_id = ref 0 in
  let next_addr = ref 0 in
  let live = ref [] in
  let build_region () =
    (* Generate the region's basic blocks, chained by live values. *)
    let sub_dags =
      List.init blocks_per_region (fun _ ->
          let dag =
            Dag.generate dag_rng p ~with_branch:true ~first_id:!next_id
              ~live_in:!live ()
          in
          next_id := !next_id + Dag.size dag;
          live := live_out_ids dag;
          dag)
    in
    let region = Dag.concat sub_dags in
    (* Each region gets its own cluster-opening order: different regions
       of a real program get different allocations, so a thread's
       cluster usage varies over time — the decorrelation that lets
       cluster-level merging recover from collisions. *)
    let perm = Array.init m.clusters Fun.id in
    Rng.shuffle cfg_rng perm;
    let assignment = Bug.assign ~perm m region in
    let region, assignment = Cross_copy.insert region assignment in
    next_id := region.nodes.(Dag.size region - 1).id + 1;
    live := live_out_ids region;
    let instrs =
      List_scheduler.schedule m region ~assignment ~base_addr:!next_addr
        ~instr_bytes
    in
    next_addr := !next_addr + (Array.length instrs * instr_bytes);
    instrs
  in
  let pick_target () =
    if Rng.bernoulli cfg_rng p.hot_frac then Rng.int cfg_rng hot_count
    else Rng.int cfg_rng n_regions
  in
  let blocks =
    Array.init n_regions (fun r ->
        let instrs = build_region () in
        let exits = ref [] in
        Array.iteri
          (fun idx instr ->
            if Isa.Instr.has_branch instr then
              exits := (idx, pick_target ()) :: !exits)
          instrs;
        {
          instrs;
          exits = Array.of_list (List.rev !exits);
          fall_through = (r + 1) mod n_regions;
        })
  in
  (* Precompute every instruction's merge signature here, in the
     compiling domain: a sweep shares compiled programs across worker
     domains, and eager precomputation means workers only ever read the
     per-instruction cache. *)
  Array.iter
    (fun b ->
      Array.iter (fun i -> ignore (Isa.Instr.signature m i)) b.instrs)
    blocks;
  let total_ops =
    Array.fold_left
      (fun acc b ->
        Array.fold_left (fun acc i -> acc + Isa.Instr.op_count i) acc b.instrs)
      0 blocks
  in
  let total_instrs =
    Array.fold_left (fun acc b -> acc + Array.length b.instrs) 0 blocks
  in
  { profile = p; blocks; entry = 0; instr_bytes; mode; total_ops; total_instrs }

(* Top-level downward scan, equivalent to the fold it replaces (the
   last matching exit wins) but closure-free on the retire path; -1
   encodes "no exit here" so the scan also stays option-free. *)
let rec exit_scan exits pc i =
  if i < 0 then -1
  else begin
    let idx, target = exits.(i) in
    if idx = pc then target else exit_scan exits pc (i - 1)
  end

let exit_target_idx b pc = exit_scan b.exits pc (Array.length b.exits - 1)

let exit_target b pc =
  match exit_target_idx b pc with -1 -> None | target -> Some target

let block_of_addr t addr =
  let n = Array.length t.blocks in
  let rec go i =
    if i >= n then None
    else begin
      let b = t.blocks.(i) in
      let lo = b.instrs.(0).addr in
      let hi = lo + (Array.length b.instrs * t.instr_bytes) in
      if addr >= lo && addr < hi then Some i else go (i + 1)
    end
  in
  go 0

let static_ipc t = float_of_int t.total_ops /. float_of_int (max 1 t.total_instrs)

let validate m t =
  let n = Array.length t.blocks in
  if n = 0 then Error "no blocks"
  else begin
    let expected_addr = ref t.blocks.(0).instrs.(0).addr in
    let check_block b =
      let n_instrs = Array.length b.instrs in
      if n_instrs = 0 then Error "empty region"
      else if Array.length b.exits = 0 then Error "region without exits"
      else if b.fall_through < 0 || b.fall_through >= n then Error "bad fall-through"
      else begin
        let branch_instrs =
          Array.to_list b.instrs
          |> List.mapi (fun i instr -> (i, Isa.Instr.has_branch instr))
          |> List.filter_map (fun (i, has) -> if has then Some i else None)
        in
        let exit_indices = Array.to_list (Array.map fst b.exits) in
        if exit_indices <> branch_instrs then
          Error "exits and branch instructions must coincide"
        else if List.exists (fun (_, tgt) -> tgt < 0 || tgt >= n) (Array.to_list b.exits)
        then Error "bad exit target"
        else if fst b.exits.(Array.length b.exits - 1) <> n_instrs - 1 then
          Error "final exit must be in the last instruction"
        else if not (Array.for_all (Isa.Instr.well_formed m) b.instrs) then
          Error "ill-formed instruction"
        else begin
          let addr_ok =
            Array.for_all
              (fun (instr : Isa.Instr.t) ->
                let ok = instr.addr = !expected_addr in
                expected_addr := !expected_addr + t.instr_bytes;
                ok)
              b.instrs
          in
          if addr_ok then Ok () else Error "non-consecutive addresses"
        end
      end
    in
    let rec go i =
      if i >= n then Ok ()
      else match check_block t.blocks.(i) with Ok () -> go (i + 1) | Error _ as e -> e
    in
    go 0
  end
