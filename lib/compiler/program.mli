(** Whole synthetic programs: scheduled code regions plus control flow.

    A program is the static artifact the "compiler" hands to the
    simulator. Each region is an array of VLIW instructions laid out at
    consecutive addresses with one or more branch exits; successive
    blocks are chained by live-in/live-out dataflow. A small "hot set"
    of regions receives most taken branches, giving the looping
    behaviour (and ICache locality) of real media kernels.

    Two scheduling modes:
    - [`Block]: every basic block is scheduled alone (one exit per
      region, in its last instruction);
    - [`Trace n]: runs of [n] consecutive blocks are merged and
      scheduled as one region (Trace-Scheduling-style: operations may be
      speculated above earlier exits, stores and branches may not), so a
      region carries [n] exits. Better single-thread schedules, at the
      price of wasted speculated work on side exits. *)

type mode = [ `Block | `Trace of int ]

type block = {
  instrs : Vliw_isa.Instr.t array;
  exits : (int * int) array;
      (** (instruction index, target region), ascending by index; each
          such instruction contains exactly one branch operation. The
          last instruction always holds the final exit. *)
  fall_through : int;  (** Region executed after the final exit falls through. *)
}

type t = {
  profile : Profile.t;
  blocks : block array;
  entry : int;
  instr_bytes : int;
  mode : mode;
  total_ops : int;  (** Static operation count over all regions. *)
  total_instrs : int;  (** Static instruction count over all regions. *)
}

val generate : seed:int64 -> ?mode:mode -> Vliw_isa.Machine.t -> Profile.t -> t
(** Deterministic program for a profile: [static_blocks] basic-block
    DAGs chained by live values, BUG cluster assignment, inter-cluster
    copy insertion, list scheduling per region, sequential address
    layout and hot-set-biased branch targets. Default mode [`Block]. *)

val exit_target : block -> int -> int option
(** [exit_target b pc] is the taken target of the exit at instruction
    [pc], if that instruction is an exit. *)

val exit_target_idx : block -> int -> int
(** {!exit_target} without the option: the taken target, or [-1] when
    the instruction is not an exit — the simulator's allocation-free
    retire path. *)

val block_of_addr : t -> int -> int option
(** Reverse address lookup (diagnostics). *)

val static_ipc : t -> float
(** Static operations per instruction — the schedule density, an upper
    bound on achievable single-thread IPC with perfect memory and
    never-taken branches. *)

val validate : Vliw_isa.Machine.t -> t -> (unit, string) result
(** Every instruction well-formed; every exit points at a
    branch-carrying instruction and a valid region; branch-carrying
    instructions and exits are in bijection; the last instruction holds
    an exit; addresses are consecutive. *)
