type per_thread = { name : string; ops : int; instrs : int }

type t = {
  cycles : int;
  ops : int;
  instrs : int;
  issue_hist : int array;
  vertical_waste_cycles : int;
  slots_offered : int;
  icache_accesses : int;
  icache_misses : int;
  dcache_accesses : int;
  dcache_misses : int;
  per_thread : per_thread array;
}

let ipc t = if t.cycles = 0 then 0.0 else float_of_int t.ops /. float_of_int t.cycles

let instr_ipc t =
  if t.cycles = 0 then 0.0 else float_of_int t.instrs /. float_of_int t.cycles

let vertical_waste t =
  if t.cycles = 0 then 0.0
  else float_of_int t.vertical_waste_cycles /. float_of_int t.cycles

let horizontal_waste t =
  let busy_cycles = t.cycles - t.vertical_waste_cycles in
  if busy_cycles <= 0 || t.slots_offered = 0 then 0.0
  else begin
    (* [slots_offered / cycles] need not be integral (aggregated or
       hand-built records): keep the per-cycle width in float so it
       doesn't truncate before scaling by busy cycles. *)
    let busy_slots =
      float_of_int busy_cycles
      *. (float_of_int t.slots_offered /. float_of_int (max 1 t.cycles))
    in
    if busy_slots <= 0.0 then 0.0
    else 1.0 -. (float_of_int t.ops /. busy_slots)
  end

let rate misses accesses =
  if accesses = 0 then 0.0 else float_of_int misses /. float_of_int accesses

let dcache_miss_rate t = rate t.dcache_misses t.dcache_accesses

let icache_miss_rate t = rate t.icache_misses t.icache_accesses

let avg_threads_merged t =
  let issuing = ref 0 and weighted = ref 0 in
  Array.iteri
    (fun k cycles ->
      if k > 0 then begin
        issuing := !issuing + cycles;
        weighted := !weighted + (k * cycles)
      end)
    t.issue_hist;
  if !issuing = 0 then 0.0 else float_of_int !weighted /. float_of_int !issuing

let pp ppf t =
  Format.fprintf ppf
    "cycles=%d ops=%d instrs=%d IPC=%.3f vwaste=%.1f%% D$miss=%.2f%% I$miss=%.2f%%"
    t.cycles t.ops t.instrs (ipc t)
    (100.0 *. vertical_waste t)
    (100.0 *. dcache_miss_rate t)
    (100.0 *. icache_miss_rate t)
