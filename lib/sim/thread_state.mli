(** A software thread: a program instance with its dynamic state.

    Thread state persists across OS context switches; the multitasking
    scheduler moves threads on and off hardware contexts without losing
    their position or counters. *)

type stall_src = Ready | Fetch_stall | Mem_stall | Branch_stall
(** Why the thread is (or last was) blocked — telemetry reads this to
    attribute vertical waste. [Mem_stall] wins when a D$ miss and a
    branch misprediction both contribute and the miss penalty dominates. *)

type t = {
  id : int;
  program : Vliw_compiler.Program.t;
  addr_stream : Vliw_mem.Addr_stream.t;
  ctrl_rng : Vliw_util.Rng.t;  (** Branch-outcome draws. *)
  mutable block : int;
  mutable pc : int;  (** Instruction index within the block. *)
  mutable resume_at : int;  (** First cycle the thread may issue again. *)
  mutable pending : Vliw_isa.Instr.t option;
      (** Fetched instruction waiting to issue. *)
  mutable pending_packet : Vliw_merge.Packet.t option;
      (** [pending] wrapped as a merge candidate, built once per fetched
          instruction instead of once per cycle; cleared with
          [pending]. *)
  mutable instrs_retired : int;
  mutable ops_retired : int;
  mutable stall_src : stall_src;
      (** Meaningful while [stalled]; observation-only. *)
}

val create : id:int -> seed:int64 -> Vliw_compiler.Program.t -> t
(** Fresh thread at the program entry; the address stream gets a region
    disjoint from every other thread id. *)

val current_instr : t -> Vliw_isa.Instr.t

val stalled : t -> now:int -> bool

val advance_fall_through : t -> unit
(** Move to the next instruction (or the fall-through block after the
    last one). *)

val jump_taken : t -> target:int -> unit
(** Move to the head of the given region (a taken exit). *)

val name : t -> string
