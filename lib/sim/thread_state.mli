(** A software thread: a program instance with its dynamic state.

    Thread state persists across OS context switches; the multitasking
    scheduler moves threads on and off hardware contexts without losing
    their position or counters. *)

type stall_src = Ready | Fetch_stall | Mem_stall | Branch_stall
(** Why the thread is (or last was) blocked — telemetry reads this to
    attribute vertical waste. [Mem_stall] wins when a D$ miss and a
    branch misprediction both contribute and the miss penalty dominates. *)

type t = {
  id : int;
  program : Vliw_compiler.Program.t;
  addr_stream : Vliw_mem.Addr_stream.t;
  ctrl_rng : Vliw_util.Rng.t;  (** Branch-outcome draws. *)
  mutable block : int;
  mutable pc : int;  (** Instruction index within the block. *)
  mutable resume_at : int;  (** First cycle the thread may issue again. *)
  mutable pending : Vliw_isa.Instr.t;
      (** Fetched instruction waiting to issue; physically equal to
          {!no_instr} when nothing is fetched. A sentinel instead of an
          option so the steady-state fetch/retire path never
          allocates. *)
  mutable pending_packet : Vliw_merge.Packet.t option;
      (** [pending] wrapped as a merge candidate, built once per fetched
          instruction instead of once per cycle; cleared with
          [pending]. Only the observing (packet-building) step path
          fills it. *)
  mutable tape : Tape.t option;
      (** Draw tape shared with lockstep siblings; [None] runs the
          generators directly (see {!Tape}). *)
  mutable addr_k : int;  (** Tape cursor: address draws consumed. *)
  mutable taken_k : int;  (** Tape cursor: branch-outcome draws consumed. *)
  mutable instrs_retired : int;
  mutable ops_retired : int;
  mutable stall_src : stall_src;
      (** Meaningful while [stalled]; observation-only. *)
}

val no_instr : Vliw_isa.Instr.t
(** The "nothing fetched" sentinel for {!t.pending}; compare with [==]. *)

val create : id:int -> seed:int64 -> Vliw_compiler.Program.t -> t
(** Fresh thread at the program entry; the address stream gets a region
    disjoint from every other thread id. *)

val attach_tape : Tape.set -> t -> unit
(** Route this thread's stochastic draws through the set's tape for its
    id (adopting the thread's own generators if the tape is new). Call
    before the first simulated cycle. *)

val next_addr : t -> int
(** The next data address: the tape's next recorded draw when one is
    attached, else straight from the address stream. *)

val next_taken : t -> bool
(** The next branch outcome at the program's taken probability; tape
    replay as for {!next_addr}. *)

val current_instr : t -> Vliw_isa.Instr.t

val stalled : t -> now:int -> bool

val advance_fall_through : t -> unit
(** Move to the next instruction (or the fall-through block after the
    last one). *)

val jump_taken : t -> target:int -> unit
(** Move to the head of the given region (a taken exit). *)

val name : t -> string
