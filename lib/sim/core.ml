module Isa = Vliw_isa
module Merge = Vliw_merge
module Mem = Vliw_mem
module Tel = Vliw_telemetry

type t = {
  config : Config.t;
  mem : Mem.Mem_system.t;
  predictor : Predictor.t;
  n : int;
  width : int;  (* total issue slots per cycle *)
  mutable contexts : Thread_state.t option array;
  mutable cycle : int;
  mutable ops : int;
  mutable instrs : int;
  mutable vertical : int;
  issue_hist : int array;
  avail : Merge.Packet.t option array;  (* scratch, reused every cycle *)
  mutable bmt_current : int;  (* thread owning the pipeline under BMT *)
  mutable switch_stall_until : int;  (* BMT context-switch bubble *)
  mutable telemetry : Tel.Sink.t;
  attribution : Tel.Report.handles option;
  counters : Tel.Counters.t option;
  network : Merge.Merge_network.t option;
      (* the swappable merge network (scheme + routing + pooled decision
         caches); Some iff the policy is Merged *)
  mutable scheme_switches : int;  (* effective mid-run reconfigurations *)
  mutable switch_stall_cycles : int;
      (* cycles spent inside an issue-stall window (BMT context-switch
         bubbles and scheme-switch penalties) *)
  mutable rejects_conflict : int;  (* merge rejects by cause, always on: *)
  mutable rejects_capacity : int;  (* cheap controller observations *)
  mutable memo_flushed : (string, int * int * int) Hashtbl.t;
      (* per-scheme (hits, misses, flushes) already booked into
         [counters], so repeated [metrics] calls stay idempotent *)
  mutable switch_flushed : int * int;
      (* (scheme_switches, switch_stall_cycles) already booked *)
}

let create ?(telemetry = Tel.Sink.null) ?counters config mem =
  let n = Config.contexts config in
  let telemetry, attribution =
    match counters with
    | None -> (telemetry, None)
    | Some c ->
      (Tel.Sink.both telemetry (Tel.Counters.sink c), Some (Tel.Report.attach c))
  in
  let network =
    match config.Config.policy with
    | Policy.Merged ->
      Some
        (Merge.Merge_network.create config.Config.machine
           ~routing:config.Config.routing config.Config.scheme)
    | Policy.Imt | Policy.Bmt _ -> None
  in
  {
    config;
    mem;
    predictor = Predictor.create config.Config.machine.predictor;
    n;
    width = Isa.Machine.total_issue config.Config.machine;
    contexts = Array.make n None;
    cycle = 0;
    ops = 0;
    instrs = 0;
    vertical = 0;
    issue_hist = Array.make (n + 1) 0;
    avail = Array.make n None;
    bmt_current = 0;
    switch_stall_until = 0;
    telemetry;
    attribution;
    counters;
    network;
    scheme_switches = 0;
    switch_stall_cycles = 0;
    rejects_conflict = 0;
    rejects_capacity = 0;
    memo_flushed = Hashtbl.create 4;
    switch_flushed = (0, 0);
  }

let set_sink t sink = t.telemetry <- sink

let install t contexts =
  if Array.length contexts <> t.n then
    invalid_arg "Core.install: context count mismatch";
  t.contexts <- contexts

(* Fetch the thread's next instruction if needed; an ICache miss stalls
   the thread and yields no candidate this cycle. *)
let candidate t ~hw (th : Thread_state.t) =
  if Thread_state.stalled th ~now:t.cycle then None
  else if th.pending != Thread_state.no_instr then Some th.pending
  else begin
    let instr = Thread_state.current_instr th in
    th.pending <- instr;
    let stall = Mem.Mem_system.ifetch t.mem instr.addr in
    if stall > 0 then begin
      th.resume_at <- t.cycle + stall;
      th.stall_src <- Thread_state.Fetch_stall;
      if Tel.Sink.enabled t.telemetry then begin
        Tel.Sink.emit t.telemetry ~cycle:t.cycle
          (Tel.Event.Cache_miss { thread = hw; level = Tel.Event.L1i });
        Tel.Sink.emit t.telemetry ~cycle:t.cycle
          (Tel.Event.Fetch_stall { thread = hw; penalty = stall })
      end;
      None
    end
    else Some instr
  end

(* Sum of D-miss stall penalties over the instruction's memory
   operations. The per-operation work depends only on the operation
   count; top-level recursion with int accumulators keeps the retire
   path free of refs and closures (a [ref] is a minor-heap block, and
   retirement runs inside the zero-allocation steady-state loop). *)
let rec dstall_of t ~hw (th : Thread_state.t) remaining acc =
  if remaining = 0 then acc
  else begin
    let addr = Thread_state.next_addr th in
    let s = Mem.Mem_system.daccess t.mem addr in
    if s > 0 && Tel.Sink.enabled t.telemetry then
      Tel.Sink.emit t.telemetry ~cycle:t.cycle
        (Tel.Event.Cache_miss { thread = hw; level = Tel.Event.L1d });
    dstall_of t ~hw th (remaining - 1)
      (if t.config.stall_on_dmiss then acc + s else acc)
  end

let retire t ~hw (th : Thread_state.t) (instr : Isa.Instr.t) =
  th.instrs_retired <- th.instrs_retired + 1;
  th.ops_retired <- th.ops_retired + Isa.Instr.op_count instr;
  let dstall = dstall_of t ~hw th (Isa.Instr.mem_op_count instr) 0 in
  let bstall =
    if Isa.Instr.has_branch instr then begin
      let taken = Thread_state.next_taken th in
      let target =
        Vliw_compiler.Program.exit_target_idx th.program.blocks.(th.block) th.pc
      in
      assert (target >= 0) (* every branch instruction is an exit *);
      let correct =
        Predictor.predict_and_update t.predictor ~addr:instr.addr ~taken
      in
      if taken then Thread_state.jump_taken th ~target
      else Thread_state.advance_fall_through th;
      if correct then 0 else t.config.machine.branch_penalty
    end
    else begin
      Thread_state.advance_fall_through th;
      0
    end
  in
  th.pending <- Thread_state.no_instr;
  th.pending_packet <- None;
  th.resume_at <- t.cycle + 1 + dstall + bstall;
  th.stall_src <-
    (if dstall >= bstall && dstall > 0 then Thread_state.Mem_stall
     else if bstall > 0 then Thread_state.Branch_stall
     else Thread_state.Ready)

(* Round-robin search for the first thread with a candidate, starting
   at [start]. *)
let first_ready t start =
  let rec go i =
    if i >= t.n then None
    else begin
      let hw = (start + i) mod t.n in
      match t.avail.(hw) with Some p -> Some (hw, p) | None -> go (i + 1)
    end
  in
  go 0

let select_policy t ~want_packet ~rotation : Merge.Engine.selection =
  match t.config.policy with
  | Policy.Merged ->
    (* A reconfiguration bubble stalls issue exactly like a BMT
       context-switch bubble; [switch_stall_until] stays 0 unless
       [switch_scheme] charged a penalty. *)
    if t.cycle < t.switch_stall_until then
      { packet = None; issued = []; rejected = [] }
    else (
      match t.network with
      | Some net ->
        if want_packet then Merge.Merge_network.select net ~rotation t.avail
        else Merge.Merge_network.select_issue net ~rotation t.avail
      | None ->
        Merge.Engine.select t.config.machine ~routing:t.config.routing
          t.config.scheme ~rotation t.avail)
  | Policy.Imt ->
    (* One thread per cycle, round-robin with stalled-thread skipping. *)
    (match first_ready t (t.cycle mod t.n) with
    | None -> { packet = None; issued = []; rejected = [] }
    | Some (hw, p) -> { packet = Some p; issued = [ hw ]; rejected = [] })
  | Policy.Bmt { switch_penalty } ->
    if t.cycle < t.switch_stall_until then
      { packet = None; issued = []; rejected = [] }
    else begin
      match t.avail.(t.bmt_current) with
      | Some p -> { packet = Some p; issued = [ t.bmt_current ]; rejected = [] }
      | None ->
        (* The running thread blocked: switch to the next ready one. *)
        (match first_ready t ((t.bmt_current + 1) mod t.n) with
        | Some (hw, p) when hw <> t.bmt_current ->
          if Tel.Sink.enabled t.telemetry then
            Tel.Sink.emit t.telemetry ~cycle:t.cycle
              (Tel.Event.Bmt_switch
                 { from_thread = t.bmt_current; to_thread = hw });
          t.bmt_current <- hw;
          if switch_penalty = 0 then
            { packet = Some p; issued = [ hw ]; rejected = [] }
          else begin
            t.switch_stall_until <- t.cycle + switch_penalty;
            { packet = None; issued = []; rejected = [] }
          end
        | Some (hw, p) -> { packet = Some p; issued = [ hw ]; rejected = [] }
        | None -> { packet = None; issued = []; rejected = [] })
    end

type cycle_record = {
  cycle : int;
  candidates : (int * Merge.Packet.t) list;
  issued : int list;
  packet : Merge.Packet.t option;
}

let reason_of_cause = function
  | Merge.Conflict.Cluster_conflict -> Tel.Event.Conflict
  | Merge.Conflict.Slot_capacity -> Tel.Event.Capacity

let engine_rejected (sel : Merge.Engine.selection) hw =
  List.exists (fun (r : Merge.Engine.reject) -> r.thread = hw) sel.rejected

(* Candidates the policy passed over without a resource reason: ready
   threads IMT/BMT simply did not select this cycle. *)
let priority_rejects t (sel : Merge.Engine.selection) =
  let acc = ref [] in
  for hw = t.n - 1 downto 0 do
    if
      t.avail.(hw) <> None
      && (not (List.mem hw sel.issued))
      && not (engine_rejected sel hw)
    then acc := hw :: !acc
  done;
  !acc

let candidate_ops t hw =
  match t.avail.(hw) with Some p -> Merge.Packet.op_count p | None -> 0

(* Exact slot attribution for one cycle; see Vliw_telemetry.Report. *)
let attribute t (h : Tel.Report.handles) (sel : Merge.Engine.selection)
    ~issued_ops ~priority =
  let w = t.width in
  Tel.Counters.incr h.cycles;
  Tel.Counters.add h.slots_offered w;
  Tel.Counters.add h.slots_filled issued_ops;
  if sel.issued = [] then begin
    (* No thread selected (note: a selected nop-only instruction still
       counts as horizontal waste below). The whole width goes to
       exactly one cause: candidates present but nothing issued only
       happens in a BMT switch bubble; otherwise classify by the
       majority stall source among resident threads (ties break
       fetch > mem > branch). *)
    let any_candidate = Array.exists Option.is_some t.avail in
    if any_candidate then begin
      (* Candidates present but nothing issued only happens inside a
         switch bubble (BMT context switch or merge-network
         reconfiguration): every other policy issues whenever any
         candidate is live. The bubble-cycle counter makes the
         conservation law "v_switch = width x bubbles" checkable. *)
      Tel.Counters.add h.v_switch w;
      Tel.Counters.incr h.switch_bubbles
    end
    else begin
      let fetch = ref 0 and mem = ref 0 and br = ref 0 and resident = ref 0 in
      Array.iter
        (function
          | None -> ()
          | Some (th : Thread_state.t) ->
            incr resident;
            (match th.stall_src with
            | Thread_state.Fetch_stall -> incr fetch
            | Thread_state.Mem_stall -> incr mem
            | Thread_state.Branch_stall -> incr br
            | Thread_state.Ready -> ()))
        t.contexts;
      let cause =
        if !resident = 0 then h.v_idle
        else if !fetch > 0 && !fetch >= !mem && !fetch >= !br then h.v_fetch
        else if !mem > 0 && !mem >= !br then h.v_mem
        else if !br > 0 then h.v_branch
        else h.v_idle
      in
      Tel.Counters.add cause w
    end
  end
  else begin
    (* Horizontal: rejected candidates could have filled slots (capped
       at the actual waste, in cause order); the rest is ILP shortfall. *)
    let rem = ref (w - issued_ops) in
    let take counter ops =
      if !rem > 0 && ops > 0 then begin
        let x = min !rem ops in
        Tel.Counters.add counter x;
        rem := !rem - x
      end
    in
    let conflict_ops = ref 0 and capacity_ops = ref 0 in
    List.iter
      (fun (r : Merge.Engine.reject) ->
        match r.cause with
        | Merge.Conflict.Cluster_conflict ->
          conflict_ops := !conflict_ops + candidate_ops t r.thread
        | Merge.Conflict.Slot_capacity ->
          capacity_ops := !capacity_ops + candidate_ops t r.thread)
      sel.rejected;
    let priority_ops =
      List.fold_left (fun acc hw -> acc + candidate_ops t hw) 0 priority
    in
    take h.h_conflict !conflict_ops;
    take h.h_capacity !capacity_ops;
    take h.h_priority priority_ops;
    if !rem > 0 then Tel.Counters.add h.h_ilp !rem
  end

let step_common t ~want_packet =
  for i = 0 to t.n - 1 do
    t.avail.(i) <-
      (match t.contexts.(i) with
      | None -> None
      | Some th ->
        (match candidate t ~hw:i th with
        | None -> None
        | Some instr ->
          (* Wrap once per fetched instruction, not once per cycle; the
             cache dies with [pending] at retirement. A context switch
             can land the thread on a different hardware slot, so reuse
             only a packet tagged with this slot. *)
          (match th.pending_packet with
          | Some (p : Merge.Packet.t) as r when p.threads = 1 lsl i -> r
          | _ ->
            let p =
              Merge.Packet.of_instr t.config.Config.machine ~thread:i instr
            in
            let r = Some p in
            th.pending_packet <- r;
            r)))
  done;
  let rotation =
    match t.network with
    | Some net ->
      Merge.Merge_network.rotation net ~rotate:t.config.rotate_priority
        ~cycle:t.cycle
    | None -> if t.config.rotate_priority then t.cycle mod t.n else 0
  in
  let sel = select_policy t ~want_packet ~rotation in
  if t.cycle < t.switch_stall_until then
    t.switch_stall_cycles <- t.switch_stall_cycles + 1;
  (* Reject causes are tallied unconditionally (not just under
     telemetry): they are the adaptive controller's cheapest signal. *)
  List.iter
    (fun (r : Merge.Engine.reject) ->
      match r.cause with
      | Merge.Conflict.Cluster_conflict ->
        t.rejects_conflict <- t.rejects_conflict + 1
      | Merge.Conflict.Slot_capacity ->
        t.rejects_capacity <- t.rejects_capacity + 1)
    sel.rejected;
  let issued_ops = ref 0 in
  List.iter
    (fun hw ->
      match t.contexts.(hw) with
      | None -> assert false
      | Some th ->
        let instr = th.pending in
        issued_ops := !issued_ops + Isa.Instr.op_count instr;
        retire t ~hw th instr)
    sel.issued;
  t.ops <- t.ops + !issued_ops;
  t.instrs <- t.instrs + List.length sel.issued;
  t.issue_hist.(List.length sel.issued) <-
    t.issue_hist.(List.length sel.issued) + 1;
  if !issued_ops = 0 then t.vertical <- t.vertical + 1;
  (* Observation only: events and counters must not touch simulator
     state (the telemetry-on/off bit-equality property relies on it). *)
  let observing =
    Tel.Sink.enabled t.telemetry || Option.is_some t.attribution
  in
  if observing then begin
    let priority = priority_rejects t sel in
    if Tel.Sink.enabled t.telemetry then begin
      List.iter
        (fun (r : Merge.Engine.reject) ->
          Tel.Sink.emit t.telemetry ~cycle:t.cycle
            (Tel.Event.Merge_reject
               { thread = r.thread; reason = reason_of_cause r.cause }))
        sel.rejected;
      List.iter
        (fun hw ->
          Tel.Sink.emit t.telemetry ~cycle:t.cycle
            (Tel.Event.Merge_reject { thread = hw; reason = Tel.Event.Priority }))
        priority;
      if sel.issued <> [] then
        Tel.Sink.emit t.telemetry ~cycle:t.cycle
          (Tel.Event.Issue
             {
               threads = sel.issued;
               threads_merged = List.length sel.issued;
               slots_filled = !issued_ops;
             })
    end;
    match t.attribution with
    | Some h -> attribute t h sel ~issued_ops:!issued_ops ~priority
    | None -> ()
  end;
  sel

let rec popcount acc m =
  if m = 0 then acc else popcount (acc + 1) (m land (m - 1))

(* Retire every thread of the issued mask in ascending hardware order —
   the order of the observing path's fold over [sel.issued], so the
   shared D-cache and predictor see the same access interleaving — then
   book the cycle's issue statistics. Top-level recursion with int
   accumulators instead of refs: refs are minor-heap blocks. *)
let rec retire_issued t issued hw issued_ops n_issued =
  if hw >= t.n then begin
    t.ops <- t.ops + issued_ops;
    t.instrs <- t.instrs + n_issued;
    t.issue_hist.(n_issued) <- t.issue_hist.(n_issued) + 1;
    if issued_ops = 0 then t.vertical <- t.vertical + 1
  end
  else if issued land (1 lsl hw) = 0 then
    retire_issued t issued (hw + 1) issued_ops n_issued
  else begin
    match t.contexts.(hw) with
    | None -> assert false
    | Some th ->
      let instr = th.pending in
      retire t ~hw th instr;
      retire_issued t issued (hw + 1)
        (issued_ops + Isa.Instr.op_count instr)
        (n_issued + 1)
  end

(* Allocation-free steady state: merged policy with telemetry off and no
   counter attribution. Candidates go straight into the scheme's batched
   evaluator as interned signatures — no packets, no selection record,
   no per-cycle closures — and every decision agrees bit-for-bit with
   the observing path. Retirement walks the issued mask in ascending
   hardware-thread order, exactly the order of the observing path's fold
   over [sel.issued], so the shared D-cache and predictor see the same
   access interleaving and the telemetry-on/off bit-equality property
   holds end-to-end. *)
let step_fast t net =
  let batch = Merge.Merge_network.batch net in
  let machine = t.config.Config.machine in
  for i = 0 to t.n - 1 do
    match t.contexts.(i) with
    | None -> Merge.Engine.Batch.clear_port batch i
    | Some th ->
      if Thread_state.stalled th ~now:t.cycle then
        Merge.Engine.Batch.clear_port batch i
      else begin
        if th.pending == Thread_state.no_instr then begin
          let instr = Thread_state.current_instr th in
          th.pending <- instr;
          let stall = Mem.Mem_system.ifetch t.mem instr.Isa.Instr.addr in
          if stall > 0 then begin
            th.resume_at <- t.cycle + stall;
            th.stall_src <- Thread_state.Fetch_stall
          end
        end;
        (* [stalled] again: the fetch just above may have missed. *)
        if Thread_state.stalled th ~now:t.cycle then
          Merge.Engine.Batch.clear_port batch i
        else
          Merge.Engine.Batch.set_port batch i
            (Isa.Instr.signature machine th.pending)
      end
  done;
  if t.cycle < t.switch_stall_until then begin
    (* Scheme-switch bubble: candidates were fetched (the I-cache sees
       them, as in the observing path) but nothing issues. *)
    t.switch_stall_cycles <- t.switch_stall_cycles + 1;
    t.issue_hist.(0) <- t.issue_hist.(0) + 1;
    t.vertical <- t.vertical + 1
  end
  else begin
    let rotation =
      Merge.Merge_network.rotation net ~rotate:t.config.rotate_priority
        ~cycle:t.cycle
    in
    Merge.Engine.Batch.eval batch ~rotation;
    t.rejects_conflict <-
      t.rejects_conflict
      + popcount 0 (Merge.Engine.Batch.rejected_conflict batch);
    t.rejects_capacity <-
      t.rejects_capacity
      + popcount 0 (Merge.Engine.Batch.rejected_capacity batch);
    retire_issued t (Merge.Engine.Batch.issued batch) 0 0 0
  end;
  t.cycle <- t.cycle + 1

let step t =
  match t.network with
  | Some net
    when (not (Tel.Sink.enabled t.telemetry)) && Option.is_none t.attribution ->
    step_fast t net
  | _ ->
    ignore (step_common t ~want_packet:false : Merge.Engine.selection);
    t.cycle <- t.cycle + 1

let step_record t =
  let sel = step_common t ~want_packet:true in
  let record =
    {
      cycle = t.cycle;
      candidates =
        Array.to_list t.avail
        |> List.mapi (fun i p -> (i, p))
        |> List.filter_map (fun (i, p) -> Option.map (fun p -> (i, p)) p);
      issued = sel.issued;
      packet = sel.packet;
    }
  in
  t.cycle <- t.cycle + 1;
  record

let cycle (t : t) = t.cycle

let ops_issued t = t.ops

let instrs_issued t = t.instrs

let issue_hist t = Array.copy t.issue_hist

let vertical_waste_cycles t = t.vertical

let memo_stats t = Option.map Merge.Merge_network.memo_stats t.network

let network t = t.network

let scheme_name t = Option.map Merge.Merge_network.scheme_name t.network

let pool_stats t =
  match t.network with
  | Some net -> Merge.Merge_network.pool_stats net
  | None -> []

let scheme_switches t = t.scheme_switches

let switch_stall_cycles t = t.switch_stall_cycles

let reject_counts t = (t.rejects_conflict, t.rejects_capacity)

(* Swap the merge network to a different scheme. Meant to be called at
   a timeslice boundary: nothing is in flight across cycles (candidate
   packets are re-offered after the bubble; [pending_packet] caches are
   slot-tagged and scheme-independent), so the switch point is exact.
   [penalty] cycles of issue stall are charged through the same bubble
   mechanism as BMT context switches. *)
let switch_scheme t ?name ~penalty scheme =
  match t.network with
  | None -> invalid_arg "Core.switch_scheme: policy is not Merged"
  | Some net ->
    if not (Merge.Merge_network.same_scheme net scheme) then begin
      let from_scheme = Merge.Merge_network.scheme_name net in
      Merge.Merge_network.reconfigure net ?name scheme;
      t.scheme_switches <- t.scheme_switches + 1;
      if penalty < 0 then invalid_arg "Core.switch_scheme: negative penalty";
      if penalty > 0 then
        t.switch_stall_until <- max t.switch_stall_until (t.cycle + penalty);
      if Tel.Sink.enabled t.telemetry then
        Tel.Sink.emit t.telemetry ~cycle:t.cycle
          (Tel.Event.Scheme_switch
             {
               from_scheme;
               to_scheme = Merge.Merge_network.scheme_name net;
               penalty;
             })
    end

(* Book the decision-cache counters for everything not yet flushed, so
   [metrics] may be called repeatedly without double counting. The
   aggregate [merge.memo.*] triple keeps its historical meaning; the
   per-scheme [merge.memo.scheme.<name>.*] triples expose the pooled
   tables individually. *)
let flush_memo_counters t =
  match (t.network, t.counters) with
  | Some net, Some c ->
    List.iter
      (fun (name, (s : Merge.Engine.Memo.stats)) ->
        let fh, fm, fe =
          match Hashtbl.find_opt t.memo_flushed name with
          | Some f -> f
          | None -> (0, 0, 0)
        in
        let book counter_name v =
          if v <> 0 then
            Tel.Counters.add (Tel.Counters.counter c counter_name) v
        in
        book Tel.Report.n_memo_hits (s.hits - fh);
        book Tel.Report.n_memo_misses (s.misses - fm);
        book Tel.Report.n_memo_flushes (s.flushes - fe);
        book (Tel.Report.n_memo_scheme name "hits") (s.hits - fh);
        book (Tel.Report.n_memo_scheme name "misses") (s.misses - fm);
        book (Tel.Report.n_memo_scheme name "flushes") (s.flushes - fe);
        Hashtbl.replace t.memo_flushed name (s.hits, s.misses, s.flushes))
      (Merge.Merge_network.pool_stats net)
  | _ -> ()

(* Likewise for the reconfiguration counters; flushed for every policy
   (BMT context-switch bubbles also accumulate stall cycles). *)
let flush_switch_counters t =
  match t.counters with
  | Some c ->
    let fs, fw = t.switch_flushed in
    if t.scheme_switches <> fs || t.switch_stall_cycles <> fw then begin
      Tel.Counters.add
        (Tel.Counters.counter c Tel.Report.n_scheme_switches)
        (t.scheme_switches - fs);
      Tel.Counters.add
        (Tel.Counters.counter c Tel.Report.n_switch_stall)
        (t.switch_stall_cycles - fw);
      t.switch_flushed <- (t.scheme_switches, t.switch_stall_cycles)
    end
  | None -> ()

let metrics t ~all_threads : Metrics.t =
  flush_memo_counters t;
  flush_switch_counters t;
  let ia, im = Mem.Mem_system.icache_stats t.mem in
  let da, dm = Mem.Mem_system.dcache_stats t.mem in
  {
    cycles = t.cycle;
    ops = t.ops;
    instrs = t.instrs;
    issue_hist = Array.copy t.issue_hist;
    vertical_waste_cycles = t.vertical;
    slots_offered = t.cycle * t.width;
    icache_accesses = ia;
    icache_misses = im;
    dcache_accesses = da;
    dcache_misses = dm;
    per_thread =
      Array.map
        (fun (th : Thread_state.t) ->
          {
            Metrics.name = Thread_state.name th;
            ops = th.ops_retired;
            instrs = th.instrs_retired;
          })
        all_threads;
  }
