(** The multithreaded clustered-VLIW core: the per-cycle pipeline loop.

    Each cycle: every resident, non-stalled thread offers its next VLIW
    instruction (fetching through the ICache the first time); the merge
    engine evaluates the scheme and selects the packet to issue; issued
    threads retire their instruction — data accesses go through the
    DCache (a miss blocks the thread for the miss penalty), a taken
    block-ending branch redirects the thread and pays the squash penalty.
    Thread-to-port priority rotates round-robin when configured. *)

type t

val create :
  ?telemetry:Vliw_telemetry.Sink.t ->
  ?counters:Vliw_telemetry.Counters.t ->
  Config.t ->
  Vliw_mem.Mem_system.t ->
  t
(** [telemetry] (default {!Vliw_telemetry.Sink.null}) receives typed
    pipeline events. When [counters] is given, a counting sink and an
    exact-sum stall-attribution pass ({!Vliw_telemetry.Report}) are
    attached on top of it. Telemetry is observation-only: simulation
    results are bit-identical with any sink. *)

val set_sink : t -> Vliw_telemetry.Sink.t -> unit
(** Replace the event sink installed at creation (including the
    counting sink composed in by [create ~counters]); the attribution
    pass, if any, is unaffected. Lets a caller warm up silently and
    record afterwards. *)

val install : t -> Thread_state.t option array -> unit
(** Set the threads resident on the hardware contexts; the array length
    must equal {!Config.contexts}. *)

val step : t -> unit
(** Advance one cycle. *)

type cycle_record = {
  cycle : int;
  candidates : (int * Vliw_merge.Packet.t) list;
      (** Threads that offered an instruction this cycle. *)
  issued : int list;
  packet : Vliw_merge.Packet.t option;  (** The merged execution packet. *)
}

val step_record : t -> cycle_record
(** Like {!step} but reports what happened — used by the trace
    inspector. *)

val cycle : t -> int

val ops_issued : t -> int

val instrs_issued : t -> int

val issue_hist : t -> int array

val vertical_waste_cycles : t -> int

val memo_stats : t -> Vliw_merge.Engine.Memo.stats option
(** Decision-cache statistics of the currently installed scheme; [None]
    unless the policy is {!Policy.Merged} (IMT/BMT never consult the
    merge engine). *)

val network : t -> Vliw_merge.Merge_network.t option
(** The swappable merge network; [Some] iff the policy is
    {!Policy.Merged}. *)

val scheme_name : t -> string option
(** Display name of the currently installed scheme ([None] for
    IMT/BMT). *)

val pool_stats : t -> (string * Vliw_merge.Engine.Memo.stats) list
(** Per-scheme decision-cache statistics of every pooled Memo table the
    network has used (see {!Vliw_merge.Merge_network.pool_stats});
    empty for IMT/BMT. *)

val switch_scheme : t -> ?name:string -> penalty:int -> Vliw_merge.Scheme.t -> unit
(** Reconfigure the merge network to a different scheme, charging
    [penalty] cycles of issue stall (the same bubble mechanism as BMT
    context switches; see {!Vliw_cost.Scheme_cost.switch_penalty} for
    the pricing). Designed to be called at a timeslice boundary: no
    state is in flight across cycles, candidate packets are simply
    re-offered once the bubble drains, and priority rotation re-seeds
    deterministically from the cycle counter. A structurally equal
    scheme is a no-op (no penalty, no switch counted).
    @raise Invalid_argument if the policy is not {!Policy.Merged}, the
    scheme's thread count differs, or [penalty < 0]. *)

val scheme_switches : t -> int
(** Effective (non-no-op) {!switch_scheme} calls so far. *)

val switch_stall_cycles : t -> int
(** Cycles spent stalled inside switch bubbles so far (scheme-switch
    penalties, and BMT context-switch bubbles under {!Policy.Bmt}). *)

val reject_counts : t -> int * int
(** Cumulative merge rejects by cause, [(conflict, capacity)]. Counted
    unconditionally (no telemetry needed): the adaptive controller's
    cheapest observation signal. *)

val metrics :
  t -> all_threads:Thread_state.t array -> Metrics.t
(** Snapshot including memory-system statistics and per-thread
    counters. Also flushes decision-cache statistics into the [counters]
    registry given at {!create} (idempotently), under
    [merge.memo.*]. *)
