(** The multithreaded clustered-VLIW core: the per-cycle pipeline loop.

    Each cycle: every resident, non-stalled thread offers its next VLIW
    instruction (fetching through the ICache the first time); the merge
    engine evaluates the scheme and selects the packet to issue; issued
    threads retire their instruction — data accesses go through the
    DCache (a miss blocks the thread for the miss penalty), a taken
    block-ending branch redirects the thread and pays the squash penalty.
    Thread-to-port priority rotates round-robin when configured. *)

type t

val create :
  ?telemetry:Vliw_telemetry.Sink.t ->
  ?counters:Vliw_telemetry.Counters.t ->
  Config.t ->
  Vliw_mem.Mem_system.t ->
  t
(** [telemetry] (default {!Vliw_telemetry.Sink.null}) receives typed
    pipeline events. When [counters] is given, a counting sink and an
    exact-sum stall-attribution pass ({!Vliw_telemetry.Report}) are
    attached on top of it. Telemetry is observation-only: simulation
    results are bit-identical with any sink. *)

val set_sink : t -> Vliw_telemetry.Sink.t -> unit
(** Replace the event sink installed at creation (including the
    counting sink composed in by [create ~counters]); the attribution
    pass, if any, is unaffected. Lets a caller warm up silently and
    record afterwards. *)

val install : t -> Thread_state.t option array -> unit
(** Set the threads resident on the hardware contexts; the array length
    must equal {!Config.contexts}. *)

val step : t -> unit
(** Advance one cycle. *)

type cycle_record = {
  cycle : int;
  candidates : (int * Vliw_merge.Packet.t) list;
      (** Threads that offered an instruction this cycle. *)
  issued : int list;
  packet : Vliw_merge.Packet.t option;  (** The merged execution packet. *)
}

val step_record : t -> cycle_record
(** Like {!step} but reports what happened — used by the trace
    inspector. *)

val cycle : t -> int

val ops_issued : t -> int

val instrs_issued : t -> int

val issue_hist : t -> int array

val vertical_waste_cycles : t -> int

val memo_stats : t -> Vliw_merge.Engine.Memo.stats option
(** Decision-cache statistics; [None] unless the policy is
    {!Policy.Merged} (IMT/BMT never consult the merge engine). *)

val metrics :
  t -> all_threads:Thread_state.t array -> Metrics.t
(** Snapshot including memory-system statistics and per-thread
    counters. Also flushes decision-cache statistics into the [counters]
    registry given at {!create} (idempotently), under
    [merge.memo.*]. *)
