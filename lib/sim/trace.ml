module Rng = Vliw_util.Rng

type options = {
  cycles : int;
  warmup : int;
  perfect_mem : bool;
  seed : int64;
}

let default_options =
  { cycles = 20; warmup = 1_000; perfect_mem = false; seed = 0x7ACEL }

let mask_to_string clusters mask =
  String.init clusters (fun c -> if mask land (1 lsl c) <> 0 then 'X' else '.')

(* Shared setup: compile the profiles, seat them on the contexts and run
   the warmup. Returns the seated threads with the warmed-up core. *)
let prepare config options profiles =
  let machine = config.Config.machine in
  let n = Config.contexts config in
  if List.length profiles > n then
    invalid_arg "Trace.run: more threads than hardware contexts";
  let rng = Rng.create options.seed in
  let threads =
    List.mapi
      (fun id profile ->
        let program =
          Vliw_compiler.Program.generate ~seed:(Rng.next_int64 rng) machine profile
        in
        Thread_state.create ~id ~seed:(Rng.next_int64 rng) program)
      profiles
  in
  let contexts = Array.init n (fun i -> List.nth_opt threads i) in
  let mem = Vliw_mem.Mem_system.create ~perfect:options.perfect_mem machine in
  let core = Core.create config mem in
  Core.install core contexts;
  for _ = 1 to options.warmup do
    Core.step core
  done;
  (threads, core)

let lane_name i (th : Thread_state.t) =
  Printf.sprintf "T%d:%s" i th.program.profile.name

let record config ?(options = default_options) profiles =
  let threads, core = prepare config options profiles in
  let recorder =
    Vliw_telemetry.Recorder.create ~capacity:(max 1024 (options.cycles * 16)) ()
  in
  (* Warmup ran silently; only the traced window is recorded. *)
  Core.set_sink core (Vliw_telemetry.Recorder.sink recorder);
  for _ = 1 to options.cycles do
    Core.step core
  done;
  (List.mapi lane_name threads, recorder)

let run config ?(options = default_options) profiles =
  let machine = config.Config.machine in
  let n = Config.contexts config in
  let threads, core = prepare config options profiles in
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    (Format.asprintf "Trace: %s on %a (cycles %d-%d)\n"
       (Vliw_merge.Scheme.to_string config.scheme)
       Vliw_isa.Machine.pp machine options.warmup
       (options.warmup + options.cycles - 1));
  Buffer.add_string buf
    "Per thread: cluster usage of the offered instruction (X = used), or\n\
     '----' if stalled; '*' marks threads the merge network issued.\n\
     'rot' is the priority rotation: scheme port i reads hardware\n\
     thread (i + rot) mod n, so the SMT pair of a mixed scheme serves\n\
     different thread pairs on different cycles.\n\n";
  Buffer.add_string buf (Printf.sprintf "%8s %4s" "cycle" "rot");
  List.iteri
    (fun i th -> Buffer.add_string buf (Printf.sprintf " %12s" (lane_name i th)))
    threads;
  Buffer.add_string buf (Printf.sprintf "  %s\n" "issued packet");
  for _ = 1 to options.cycles do
    let r = Core.step_record core in
    let rotation = if config.rotate_priority then r.cycle mod n else 0 in
    Buffer.add_string buf (Printf.sprintf "%8d %4d" r.cycle rotation);
    for hw = 0 to n - 1 do
      if hw < List.length threads then begin
        let cell =
          match List.assoc_opt hw r.candidates with
          | None -> String.make machine.clusters '-'
          | Some p -> mask_to_string machine.clusters p.Vliw_merge.Packet.mask
        in
        let marker = if List.mem hw r.issued then "*" else " " in
        Buffer.add_string buf (Printf.sprintf " %12s" (cell ^ marker))
      end
    done;
    (match r.packet with
    | None -> Buffer.add_string buf "  (nothing issued)"
    | Some p ->
      (match Vliw_merge.Routing.route machine p with
      | Some routed ->
        Buffer.add_string buf
          (Format.asprintf "  %a" (Vliw_merge.Routing.pp machine) routed)
      | None -> Buffer.add_string buf "  (unroutable?)"));
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf
