(** Shared per-thread draw tape for lockstep scheme columns.

    A thread's stochastic inputs (data addresses, branch outcomes)
    depend only on the draw index, never on issue timing — so scheme
    columns of one sweep row, which already share their row seed, can
    share the generation work too. The first simulation to reach draw
    [k] generates and records it; later simulations replay it,
    bit-identical by construction. Single-domain: one {!set} per
    lockstep row task. *)

type t

type set
(** Tapes of one row's threads, keyed by thread id. *)

val create_set : unit -> set

val adopt :
  set ->
  id:int ->
  addr_stream:Vliw_mem.Addr_stream.t ->
  ctrl_rng:Vliw_util.Rng.t ->
  t
(** The tape for thread [id]: created from the given (freshly derived)
    generators on first adoption, returned as-is — the new generators
    unused — on every later one. Sound because all adopters derive
    their generators from the same seed. *)

val addr : t -> int -> int
(** The thread's k-th data address, generating up to [k] on first
    demand. *)

val taken : t -> int -> float -> bool
(** The thread's k-th branch outcome at taken-probability [p] ([p] must
    be the same on every call — it is a program-profile constant). *)
