(** The multitasking environment of §5.1.

    The processor exposes its hardware thread contexts as virtual CPUs;
    the OS schedules as many software threads as there are virtual CPUs
    for a fixed timeslice, then context-switches, picking replacement
    threads at random from the workload. Runs end when one thread
    retires the target instruction count or the cycle budget expires. *)

type schedule = {
  timeslice : int;  (** Cycles between context switches (paper: 1M). *)
  target_instrs : int;
      (** Stop once any thread retires this many VLIW instructions
          (paper: 100M). *)
  max_cycles : int;  (** Hard cycle budget (safety stop). *)
}

val paper_schedule : schedule
(** The paper's parameters (1M-cycle timeslice, 100M instructions) —
    expensive; provided for completeness. *)

val default_schedule : schedule
(** Scaled-down parameters used by the experiment harness. *)

val quick_schedule : schedule
(** Very small runs for unit tests and smoke benches. *)

val run :
  Config.t ->
  ?perfect_mem:bool ->
  ?seed:int64 ->
  ?schedule:schedule ->
  ?mode:Vliw_compiler.Program.mode ->
  ?telemetry:Vliw_telemetry.Sink.t ->
  ?counters:Vliw_telemetry.Counters.t ->
  ?controller:Controller.t ->
  ?tapes:Tape.set ->
  Vliw_compiler.Profile.t list ->
  Metrics.t
(** [run config profiles] builds one program and one thread per profile
    (deterministically from [seed]) and simulates the multitasking
    environment. Fewer profiles than contexts leaves contexts idle;
    more profiles multitask over the timeslices. [mode] selects the
    compiler's scheduling mode (default block scheduling). [telemetry]
    and [counters] are passed to {!Core.create}; both are
    observation-only and do not perturb results.

    [controller] enables adaptive scheme selection: at every timeslice
    boundary it is consulted ({!Controller.decide}) with the finished
    slice's observation deltas, and the core's merge network is
    switched — {!Core.switch_scheme}, penalty charged — whenever it
    answers with a different scheme. Controllers are stateful: pass a
    fresh one per simulation. A {!Controller.Static} controller never
    switches, so results are bit-identical to omitting [controller]
    (property-tested).

    [tapes] routes every thread's stochastic draws through a shared
    {!Tape.set} (attached after thread creation, so seed derivation is
    unchanged): runs that differ only in scheme replay identical
    workload draws and share the generation work. A taped run is
    bit-identical to an untaped one (property-tested). *)

val run_programs :
  Config.t ->
  ?perfect_mem:bool ->
  ?seed:int64 ->
  ?schedule:schedule ->
  ?telemetry:Vliw_telemetry.Sink.t ->
  ?counters:Vliw_telemetry.Counters.t ->
  ?controller:Controller.t ->
  ?tapes:Tape.set ->
  Vliw_compiler.Program.t list ->
  Metrics.t
(** Like {!run} but with pre-generated programs, so the (deterministic but
    not free) compilation step can be shared across scheme runs. *)
