(* Post-run self-checks.

   Every metrics record the simulator hands out satisfies a set of
   conservation laws by construction: operations and instructions are
   only booked at retire, one entry per thread, so the totals must equal
   the per-thread sums; the issue histogram partitions the cycle count;
   waste fractions are proper fractions; caches cannot miss more often
   than they are accessed. [check_metrics] re-derives each law from the
   record itself and raises [Violation] if any fails — a tripped check
   means the simulator's bookkeeping (not the workload) is broken.

   The checks are cheap (a few integer folds over a record that took
   millions of simulated cycles to produce), so test builds enforce them
   on every simulation ([set_enforced true] / VLIWSIM_INVARIANTS=1) and
   `vliwsim check` runs them across the whole experiment registry.

   [check_select] is the third leg: a sampled probe that the
   signature-based fast path [Engine.select] agrees bit-for-bit with the
   list-walking oracle [Engine.select_reference] on random instruction
   shapes — the full property lives in the QCheck suite; the probe
   catches a skew in production configurations. *)

module Machine = Vliw_isa.Machine
module Op = Vliw_isa.Op
module Instr = Vliw_isa.Instr
module Engine = Vliw_merge.Engine
module Rng = Vliw_util.Rng

exception Violation of string

let () =
  Printexc.register_printer (function
    | Violation msg -> Some ("Vliw_sim.Invariants.Violation: " ^ msg)
    | _ -> None)

(* --- enforcement switch ---------------------------------------------- *)

let enforced_flag =
  Atomic.make
    (match Sys.getenv_opt "VLIWSIM_INVARIANTS" with
    | Some ("1" | "true" | "yes" | "on") -> true
    | Some _ | None -> false)

let enforced () = Atomic.get enforced_flag
let set_enforced b = Atomic.set enforced_flag b

(* --- metrics conservation -------------------------------------------- *)

let violations (m : Metrics.t) =
  let faults = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> faults := s :: !faults) fmt in
  let sum f = Array.fold_left (fun acc pt -> acc + f pt) 0 m.per_thread in
  let thread_ops = sum (fun (pt : Metrics.per_thread) -> pt.ops) in
  let thread_instrs = sum (fun (pt : Metrics.per_thread) -> pt.instrs) in
  if m.ops <> thread_ops then
    fail "ops conservation: total %d <> sum of per-thread ops %d" m.ops
      thread_ops;
  if m.instrs <> thread_instrs then
    fail "instr conservation: total %d <> sum of per-thread instrs %d" m.instrs
      thread_instrs;
  Array.iter
    (fun (pt : Metrics.per_thread) ->
      if pt.ops < 0 || pt.instrs < 0 then
        fail "thread %s: negative retire counts (ops %d, instrs %d)" pt.name
          pt.ops pt.instrs)
    m.per_thread;
  let hist_cycles = Array.fold_left ( + ) 0 m.issue_hist in
  if hist_cycles <> m.cycles then
    fail "issue histogram: buckets sum to %d cycles, simulated %d" hist_cycles
      m.cycles;
  let hist_instrs =
    let acc = ref 0 in
    Array.iteri (fun k c -> acc := !acc + (k * c)) m.issue_hist;
    !acc
  in
  if hist_instrs <> m.instrs then
    fail "issue histogram: weighted sum %d <> instrs issued %d" hist_instrs
      m.instrs;
  Array.iteri
    (fun k c -> if c < 0 then fail "issue histogram: bucket %d is negative" k)
    m.issue_hist;
  (* A cycle can issue instructions yet zero operations (nop-only
     packets), so vertical waste dominates the zero-thread bucket but
     never the cycle count. *)
  if Array.length m.issue_hist > 0 && m.vertical_waste_cycles < m.issue_hist.(0)
  then
    fail "vertical waste %d < zero-issue cycles %d" m.vertical_waste_cycles
      m.issue_hist.(0);
  if m.vertical_waste_cycles > m.cycles then
    fail "vertical waste %d > cycles %d" m.vertical_waste_cycles m.cycles;
  if m.ops > m.slots_offered then
    fail "issued %d ops into %d offered slots" m.ops m.slots_offered;
  if m.cycles > 0 && m.slots_offered mod m.cycles <> 0 then
    fail "slots offered %d is not a multiple of cycles %d" m.slots_offered
      m.cycles;
  List.iter
    (fun (what, f) ->
      let v = f m in
      if not (v >= 0.0 && v <= 1.0) then
        (* Also catches nan: nan fails both comparisons. *)
        fail "%s waste %g outside [0, 1]" what v)
    (if m.cycles = 0 then []
     else
       [ ("horizontal", Metrics.horizontal_waste); ("vertical", Metrics.vertical_waste) ]);
  List.iter
    (fun (what, accesses, misses) ->
      if misses < 0 || accesses < 0 || misses > accesses then
        fail "%s: %d misses of %d accesses" what misses accesses)
    [
      ("icache", m.icache_accesses, m.icache_misses);
      ("dcache", m.dcache_accesses, m.dcache_misses);
    ];
  List.rev !faults

let check_metrics m =
  match violations m with
  | [] -> ()
  | faults -> raise (Violation (String.concat "; " faults))

(* --- stall attribution ------------------------------------------------ *)

let check_attribution (snap : Vliw_telemetry.Counters.snapshot) =
  (* Only meaningful when the attribution counters were attached: a
     registry without "slots.offered" never saw the per-cycle hooks. *)
  if Vliw_telemetry.Counters.count snap "slots.offered" > 0 then begin
    let wasted = Vliw_telemetry.Report.wasted snap in
    let attributed = Vliw_telemetry.Report.attributed snap in
    if wasted < 0 then
      raise
        (Violation (Printf.sprintf "negative waste: %d slots" wasted));
    if wasted <> attributed then
      raise
        (Violation
           (Printf.sprintf
              "stall attribution: %d wasted slots, %d attributed" wasted
              attributed));
    (* Switch-penalty conservation: a whole-width cycle is booked to
       [waste.vertical.bmt_switch] exactly when the bubble-cycle counter
       ticks, and every bubble cycle lies inside an issue-stall window
       (BMT context switch or merge-network reconfiguration). *)
    let count = Vliw_telemetry.Counters.count snap in
    let cycles = count Vliw_telemetry.Report.n_cycles in
    let offered = count "slots.offered" in
    let bubbles = count Vliw_telemetry.Report.n_switch_bubbles in
    let v_switch = count Vliw_telemetry.Report.n_v_switch in
    if cycles > 0 && offered mod cycles = 0 then begin
      let width = offered / cycles in
      if v_switch <> width * bubbles then
        raise
          (Violation
             (Printf.sprintf
                "switch-penalty conservation: %d bmt_switch slots <> width %d \
                 x %d bubble cycles"
                v_switch width bubbles))
    end;
    let stall = count Vliw_telemetry.Report.n_switch_stall in
    if bubbles > stall then
      raise
        (Violation
           (Printf.sprintf
              "switch-penalty conservation: %d bubble cycles exceed %d \
               stall-window cycles"
              bubbles stall))
  end

(* --- select = select_reference probe ---------------------------------- *)

let random_instr rng machine =
  let classes = [| Op.Alu; Op.Alu; Op.Mul; Op.Load; Op.Store; Op.Branch |] in
  let id = ref 0 in
  let cluster () =
    List.init
      (Rng.int rng (machine.Machine.issue_width + 1))
      (fun _ ->
        incr id;
        Op.make (Rng.choose rng classes) !id)
  in
  Instr.of_cluster_ops ~addr:0
    (Array.init machine.Machine.clusters (fun _ -> cluster ()))

let random_avail rng machine n_threads =
  Array.init n_threads (fun thread ->
      if Rng.int rng 4 = 0 then None
      else
        Some (Vliw_merge.Packet.of_instr machine ~thread (random_instr rng machine)))

let selection_repr (s : Engine.selection) =
  Printf.sprintf "issued=[%s] rejected=[%s] packet=%s"
    (String.concat ";" (List.map string_of_int s.issued))
    (String.concat ";"
       (List.map (fun (r : Engine.reject) -> string_of_int r.thread) s.rejected))
    (match s.packet with
    | None -> "none"
    | Some p -> Printf.sprintf "threads=%x mask=%x" p.threads p.mask)

let check_select ?(machine = Machine.default)
    ?(routing = Vliw_merge.Conflict.Flexible) ?(seed = 0xC0FFEEL)
    ?(samples = 64) scheme =
  let rng = Rng.create seed in
  let n = Vliw_merge.Scheme.n_threads scheme in
  for _ = 1 to samples do
    let avail = random_avail rng machine n in
    let rotation = Rng.int rng (max 1 n) in
    let fast = Engine.select machine ~routing scheme ~rotation avail in
    let batched = Engine.select_batched machine ~routing scheme ~rotation avail in
    let reference =
      Engine.select_reference machine ~routing scheme ~rotation avail
    in
    let agree (a : Engine.selection) (b : Engine.selection) =
      a.issued = b.issued && a.rejected = b.rejected && a.packet = b.packet
    in
    if not (agree fast reference) then
      raise
        (Violation
           (Printf.sprintf
              "select <> select_reference on %s (rotation %d):\n\
               fast %s\nref  %s"
              (Vliw_merge.Scheme.to_string scheme)
              rotation (selection_repr fast)
              (selection_repr reference)));
    if not (agree batched reference) then
      raise
        (Violation
           (Printf.sprintf
              "select_batched <> select_reference on %s (rotation %d):\n\
               batched %s\nref     %s"
              (Vliw_merge.Scheme.to_string scheme)
              rotation (selection_repr batched)
              (selection_repr reference)))
  done
