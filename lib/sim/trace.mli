(** Cycle-by-cycle trace inspector.

    Runs a short simulation and renders, per cycle, the candidate
    instructions each hardware thread offered (as cluster-usage
    patterns), the threads the merge network selected, and the routed
    execution packet — a dynamic version of the paper's Figure 1,
    useful for understanding why a scheme merges or refuses. *)

type options = {
  cycles : int;  (** Cycles to trace (after warmup). *)
  warmup : int;  (** Cycles simulated before recording starts. *)
  perfect_mem : bool;
  seed : int64;
}

val default_options : options

val run : Config.t -> ?options:options -> Vliw_compiler.Profile.t list -> string
(** Renders the trace. The workload must fit the configured contexts
    (no multitasking during a trace). *)

val record :
  Config.t ->
  ?options:options ->
  Vliw_compiler.Profile.t list ->
  string list * Vliw_telemetry.Recorder.t
(** Same simulation as {!run}, but instead of rendering ASCII it
    captures the traced window's pipeline events in a recorder (warmup
    is silent). Returns the per-context lane names ("T0:mcf", ...) in
    hardware-thread order, for {!Vliw_telemetry.Chrome_trace.of_recorder}. *)
