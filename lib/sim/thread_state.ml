module Program = Vliw_compiler.Program

type stall_src = Ready | Fetch_stall | Mem_stall | Branch_stall

type t = {
  id : int;
  program : Program.t;
  addr_stream : Vliw_mem.Addr_stream.t;
  ctrl_rng : Vliw_util.Rng.t;
  mutable block : int;
  mutable pc : int;
  mutable resume_at : int;
  mutable pending : Vliw_isa.Instr.t;
      (* physically [no_instr] when nothing is fetched; a sentinel
         instead of an option so fetch/retire never allocate *)
  mutable pending_packet : Vliw_merge.Packet.t option;
      (* [pending] wrapped as a merge candidate, built once per fetched
         instruction instead of once per cycle; cleared with [pending].
         Only the observing (packet-building) step path fills it. *)
  mutable tape : Tape.t option;
  mutable addr_k : int;  (* draws consumed from the tape, by kind *)
  mutable taken_k : int;
  mutable instrs_retired : int;
  mutable ops_retired : int;
  mutable stall_src : stall_src;
}

let no_instr = Vliw_isa.Instr.make ~clusters:1 ~addr:(-1)

(* 16 MB address region per thread: same cache sets, distinct tags. *)
let region_bytes = 16 * 1024 * 1024

let create ~id ~seed (program : Program.t) =
  let rng = Vliw_util.Rng.create seed in
  let addr_seed = Vliw_util.Rng.next_int64 rng in
  let ctrl_rng = Vliw_util.Rng.split rng in
  {
    id;
    program;
    addr_stream =
      Vliw_mem.Addr_stream.create ~seed:addr_seed
        ~working_set_bytes:(program.profile.working_set_kb * 1024)
        ~seq_frac:program.profile.seq_frac
        ~region_base:((id + 1) * region_bytes);
    ctrl_rng;
    block = program.entry;
    pc = 0;
    resume_at = 0;
    pending = no_instr;
    pending_packet = None;
    tape = None;
    addr_k = 0;
    taken_k = 0;
    instrs_retired = 0;
    ops_retired = 0;
    stall_src = Ready;
  }

let attach_tape set t =
  t.tape <-
    Some
      (Tape.adopt set ~id:t.id ~addr_stream:t.addr_stream ~ctrl_rng:t.ctrl_rng)

let next_addr t =
  match t.tape with
  | None -> Vliw_mem.Addr_stream.next t.addr_stream
  | Some tape ->
    let k = t.addr_k in
    t.addr_k <- k + 1;
    Tape.addr tape k

let next_taken t =
  match t.tape with
  | None -> Vliw_util.Rng.bernoulli t.ctrl_rng t.program.profile.taken_prob
  | Some tape ->
    let k = t.taken_k in
    t.taken_k <- k + 1;
    Tape.taken tape k t.program.profile.taken_prob

let current_instr t = t.program.blocks.(t.block).instrs.(t.pc)

let stalled t ~now = now < t.resume_at

let advance_fall_through t =
  let block = t.program.blocks.(t.block) in
  if t.pc + 1 >= Array.length block.instrs then begin
    t.block <- block.fall_through;
    t.pc <- 0
  end
  else t.pc <- t.pc + 1

let jump_taken t ~target =
  t.block <- target;
  t.pc <- 0

let name t = Printf.sprintf "%s#%d" t.program.profile.name t.id
