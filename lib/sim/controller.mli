(** Per-timeslice adaptive merge-scheme controller.

    The multitasking harness consults the controller at every timeslice
    boundary ({!decide}) with an observation of the slice that just
    ended; the answer is the candidate scheme the next slice should run.
    Candidates are restricted to one {!Vliw_merge.Catalog} hardware-cost
    group (checked with {!Vliw_cost.Scheme_cost.comparable} at
    {!create}), so the controller reconfigures comparable hardware
    rather than upgrading the machine.

    Decisions are deterministic — no RNG, no wall clock — so an
    adaptive sweep cell remains a pure function of its seed (retry- and
    resume-safe, bit-identical at any jobs count). *)

type candidate = { name : string; scheme : Vliw_merge.Scheme.t }

type obs = {
  slice : int;  (** 0-based index of the timeslice that just ended. *)
  cycles : int;  (** Cycles the slice actually ran. *)
  ops : int;  (** Operations issued during the slice. *)
  instrs : int;  (** Instructions issued during the slice. *)
  per_thread_ops : int array;
      (** Per-thread retired-operation deltas over the slice (the
          per-thread ILP signal). *)
  rejects_conflict : int;  (** Merge rejects in the slice, by cause. *)
  rejects_capacity : int;
  icache_misses : int;  (** Cache-miss deltas over the slice. *)
  dcache_misses : int;
}

type policy =
  | Static  (** Never switches (the bit-equality oracle). *)
  | Oracle_sample of { probe_slices : int }
      (** Sample every candidate for [probe_slices] slices, then commit
          to the best observed IPC for the rest of the run. *)
  | Hill_climb of { explore_period : int; hysteresis : float; ewma : float }
      (** Every [explore_period] slices, probe one neighbour along the
          SMT-block-count axis (direction chosen from reject causes and
          per-thread ILP imbalance; memory-bound slices skip probing)
          and adopt it only if its observed IPC beats the incumbent's
          EWMA estimate by [hysteresis]. *)

val default_hill : policy
(** [Hill_climb { explore_period = 2; hysteresis = 0.02; ewma = 0.5 }]. *)

val default_oracle : policy
(** [Oracle_sample { probe_slices = 1 }]. *)

val policy_to_string : policy -> string
(** Stable descriptor, e.g. ["hill(period=2,hysteresis=0.02,ewma=0.5)"]
    — what the run ledger fingerprints. *)

type t

val group_candidates : string -> candidate list
(** The catalog performance group containing the named scheme, in
    catalog (cost-ascending) order.
    @raise Invalid_argument on an unknown scheme name. *)

val create :
  ?switch_penalty:(from_:Vliw_merge.Scheme.t -> to_:Vliw_merge.Scheme.t -> int) ->
  policy ->
  candidates:candidate list ->
  initial:string ->
  t
(** A fresh controller starting at [initial] (which must be a
    candidate). [switch_penalty] prices a reconfiguration in stall
    cycles; defaults to {!Vliw_cost.Scheme_cost.switch_penalty}.
    Controllers are stateful and single-use: create one per simulation
    attempt.
    @raise Invalid_argument if candidates are empty, mix thread counts,
    or are not hardware-cost comparable to [initial]. *)

val decide : t -> obs -> candidate
(** The scheme for the next slice, given the finished slice's
    observation. The caller switches the core iff the answer differs
    from the installed scheme. *)

val current : t -> candidate
(** The candidate scheduled for the currently running slice. *)

val candidates : t -> candidate list

val switches : t -> int
(** Owner changes decided so far (including probe moves and
    retreats). *)

val decisions : t -> (int * string) list
(** Per-slice scheme trail, oldest first: [(slice, scheme name)] for
    slice 0 and every boundary where the policy took a decision. *)

val switch_penalty :
  t -> from_:Vliw_merge.Scheme.t -> to_:Vliw_merge.Scheme.t -> int
(** The controller's penalty pricing (for the harness to charge). *)

val policy : t -> policy
