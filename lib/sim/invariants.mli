(** Post-run self-checks: conservation laws every simulation result must
    satisfy, plus a sampled fast-path-vs-oracle probe.

    The laws re-derived by {!check_metrics} from a {!Metrics.t} record:

    - total ops = Σ per-thread ops retired; same for instructions;
    - the issue histogram partitions the cycle count, and its weighted
      sum equals the instructions issued;
    - zero-issue cycles ≤ vertical waste cycles ≤ cycles (nop-only
      packets issue an instruction but no operation);
    - horizontal and vertical waste fractions lie in [0, 1];
    - ops issued ≤ slots offered, and slots offered is a whole number of
      issue widths;
    - cache misses never exceed accesses.

    A tripped check means the simulator's bookkeeping is broken — these
    cannot fail for any workload if the core is correct.

    Enforcement: with {!set_enforced}[ true] (the test suite does this;
    the env var [VLIWSIM_INVARIANTS=1] sets the initial state),
    {!Multitask.run_programs} checks every metrics record it returns.
    `vliwsim check` runs the full battery over the experiment
    registry. *)

exception Violation of string
(** Raised by every check on failure; the message lists each violated
    law. *)

val enforced : unit -> bool
val set_enforced : bool -> unit
(** Global switch read by {!Multitask.run_programs}. Initial value comes
    from [VLIWSIM_INVARIANTS] ("1"/"true"/"yes"/"on" enable). Stored in
    an [Atomic]: sweeps check from worker domains. *)

val violations : Metrics.t -> string list
(** All violated laws of a record, empty when consistent. *)

val check_metrics : Metrics.t -> unit
(** @raise Violation when {!violations} is non-empty. *)

val check_attribution : Vliw_telemetry.Counters.snapshot -> unit
(** Exact-sum stall attribution: wasted slots
    ([slots.offered - slots.filled]) must equal the sum of the
    [waste.*] categories. No-op on snapshots without attribution
    counters (no ["slots.offered"]).
    @raise Violation on a broken sum. *)

val check_select :
  ?machine:Vliw_isa.Machine.t ->
  ?routing:Vliw_merge.Conflict.routing_mode ->
  ?seed:int64 ->
  ?samples:int ->
  Vliw_merge.Scheme.t ->
  unit
(** Sampled probe that {!Vliw_merge.Engine.select} and
    {!Vliw_merge.Engine.select_batched} both agree bit-for-bit with
    {!Vliw_merge.Engine.select_reference} on random availability vectors
    for [scheme] (default: 64 samples on the default machine, flexible
    routing). The exhaustive property lives in the QCheck suite; this
    probe is cheap enough for `vliwsim check` and CI smoke runs.
    @raise Violation on the first disagreement, with both selections. *)
