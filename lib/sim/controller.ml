(* Per-timeslice merge-scheme controller.

   The multitasking harness consults the controller at every timeslice
   boundary with an observation of the slice that just ended; the
   controller answers with the scheme the next slice should run. The
   harness performs the actual [Core.switch_scheme] (charging the
   penalty) whenever the answer differs from the installed scheme.

   Candidates are restricted to one hardware-cost envelope — a
   {!Vliw_merge.Catalog} performance group — so the controller never
   "upgrades" the machine, it only reconfigures comparable hardware
   (enforced with {!Vliw_cost.Scheme_cost.comparable}).

   Policies:
   - [Static]: never switches. Exists so the whole adaptive plumbing can
     be engaged and property-tested as bit-identical to the plain
     engine.
   - [Oracle_sample]: samples every candidate for a fixed number of
     slices, then commits to the best observed IPC for the rest of the
     run — an upper-ish baseline the hill-climber is judged against.
   - [Hill_climb]: every [explore_period] slices, probes one neighbour
     along the SMT-block-count axis for a slice and adopts it only if
     its observed IPC beats the incumbent's estimate by [hysteresis].
     The probe direction is telemetry-driven: conflict-dominated
     rejects or a heavily imbalanced thread mix push toward more SMT
     (operation-level sharing), capacity-dominated rejects push toward
     more CSMT; a slice dominated by D$ misses skips probing entirely
     (memory-bound slices make every scheme look alike, so a probe only
     pays switch penalties).

   Every decision is deterministic: no RNG, no wall clock — the same
   observation stream always yields the same switch schedule, which is
   what keeps adaptive sweep cells retry- and resume-safe. *)

module Scheme = Vliw_merge.Scheme
module Catalog = Vliw_merge.Catalog

type candidate = { name : string; scheme : Scheme.t }

type obs = {
  slice : int;  (* 0-based index of the timeslice that just ended *)
  cycles : int;  (* cycles the slice actually ran *)
  ops : int;  (* operations issued during the slice *)
  instrs : int;  (* instructions issued during the slice *)
  per_thread_ops : int array;  (* per-thread retired-ops delta *)
  rejects_conflict : int;  (* merge rejects in the slice, by cause *)
  rejects_capacity : int;
  icache_misses : int;  (* cache-miss deltas over the slice *)
  dcache_misses : int;
}

type policy =
  | Static
  | Oracle_sample of { probe_slices : int }
  | Hill_climb of { explore_period : int; hysteresis : float; ewma : float }

let default_hill =
  Hill_climb { explore_period = 2; hysteresis = 0.02; ewma = 0.5 }

let default_oracle = Oracle_sample { probe_slices = 1 }

let policy_to_string = function
  | Static -> "static"
  | Oracle_sample { probe_slices } ->
    Printf.sprintf "oracle(probe=%d)" probe_slices
  | Hill_climb { explore_period; hysteresis; ewma } ->
    Printf.sprintf "hill(period=%d,hysteresis=%g,ewma=%g)" explore_period
      hysteresis ewma

type t = {
  policy : policy;
  candidates : candidate array;
  penalty : from_:Scheme.t -> to_:Scheme.t -> int;
  estimates : float array;  (* EWMA IPC per candidate; nan = unseen *)
  smt_order : int array;  (* candidate indices sorted by SMT block count *)
  mutable owner : int;  (* candidate scheduled for the running slice *)
  mutable anchor : int;  (* hill-climb: the committed incumbent *)
  mutable probing : bool;  (* hill-climb: the owner is a probe *)
  mutable locked : bool;  (* oracle: sampling phase finished *)
  mutable switches : int;  (* owner changes decided so far *)
  mutable decisions : (int * string) list;  (* (slice, scheme), newest first *)
}

let group_candidates name =
  let entry = Catalog.find_exn name in
  List.filter_map
    (fun (e : Catalog.entry) ->
      if e.perf_group = entry.perf_group then
        Some { name = e.name; scheme = e.scheme }
      else None)
    Catalog.all

let create ?switch_penalty policy ~candidates ~initial =
  if candidates = [] then invalid_arg "Controller.create: no candidates";
  let candidates = Array.of_list candidates in
  let initial_idx =
    match
      Array.to_list candidates
      |> List.mapi (fun i c -> (i, c))
      |> List.find_opt (fun (_, c) -> c.name = initial)
    with
    | Some (i, _) -> i
    | None ->
      invalid_arg
        (Printf.sprintf "Controller.create: initial scheme %S not a candidate"
           initial)
  in
  let reference = candidates.(initial_idx).scheme in
  Array.iter
    (fun c ->
      if Scheme.n_threads c.scheme <> Scheme.n_threads reference then
        invalid_arg
          (Printf.sprintf "Controller.create: %s has a different thread count"
             c.name);
      if not (Vliw_cost.Scheme_cost.comparable reference c.scheme) then
        invalid_arg
          (Printf.sprintf
             "Controller.create: %s is not hardware-cost comparable to %s"
             c.name initial))
    candidates;
  let penalty =
    match switch_penalty with
    | Some f -> f
    | None -> fun ~from_ ~to_ -> Vliw_cost.Scheme_cost.switch_penalty from_ to_
  in
  let smt_order =
    let smt i = Scheme.block_count Vliw_merge.Scheme_kind.Smt candidates.(i).scheme in
    let order = Array.init (Array.length candidates) Fun.id in
    Array.sort
      (fun a b ->
        match compare (smt a) (smt b) with 0 -> compare a b | c -> c)
      order;
    order
  in
  {
    policy;
    candidates;
    penalty;
    estimates = Array.make (Array.length candidates) Float.nan;
    smt_order;
    owner = initial_idx;
    anchor = initial_idx;
    probing = false;
    locked = false;
    switches = 0;
    decisions = [ (0, candidates.(initial_idx).name) ];
  }

let current t = t.candidates.(t.owner)

let candidates t = Array.to_list t.candidates

let switches t = t.switches

let decisions t = List.rev t.decisions

let switch_penalty t ~from_ ~to_ = t.penalty ~from_ ~to_

let policy t = t.policy

(* EWMA update of the owner's IPC estimate from the finished slice. *)
let observe t (obs : obs) ~alpha =
  if obs.cycles > 0 then begin
    let ipc = float_of_int obs.ops /. float_of_int obs.cycles in
    let old = t.estimates.(t.owner) in
    t.estimates.(t.owner) <-
      (if Float.is_nan old then ipc else (alpha *. ipc) +. ((1.0 -. alpha) *. old))
  end

let argmax_estimate t =
  let best = ref t.owner and best_v = ref neg_infinity in
  Array.iteri
    (fun i v ->
      if (not (Float.is_nan v)) && v > !best_v then begin
        best := i;
        best_v := v
      end)
    t.estimates;
  !best

(* Neighbour of the anchor along the SMT-block-count order, in the
   telemetry-suggested direction; reverses at the ends. *)
let neighbour t ~dir =
  let n = Array.length t.smt_order in
  let pos = ref 0 in
  Array.iteri (fun p i -> if i = t.anchor then pos := p) t.smt_order;
  let target = !pos + dir in
  let target = if target < 0 || target >= n then !pos - dir else target in
  if target < 0 || target >= n then t.anchor else t.smt_order.(target)

let set_owner t ~slice idx =
  if idx <> t.owner then begin
    t.owner <- idx;
    t.switches <- t.switches + 1
  end;
  (* One decision record per boundary, switch or not: the per-slice
     scheme trail the adaptive experiment reports. *)
  t.decisions <- (slice, t.candidates.(idx).name) :: t.decisions

let decide t (obs : obs) =
  let next_slice = obs.slice + 1 in
  (match t.policy with
  | Static -> observe t obs ~alpha:0.5
  | Oracle_sample { probe_slices } ->
    observe t obs ~alpha:0.5;
    let n = Array.length t.candidates in
    let probe_slices = max 1 probe_slices in
    let phase = probe_slices * n in
    if t.locked then ()
    else if next_slice < phase then
      set_owner t ~slice:next_slice
        ((t.anchor + (next_slice / probe_slices)) mod n)
    else begin
      t.locked <- true;
      set_owner t ~slice:next_slice (argmax_estimate t)
    end
  | Hill_climb { explore_period; hysteresis; ewma } ->
    observe t obs ~alpha:ewma;
    if t.probing then begin
      (* The probe slice just ran: adopt on a clear win, retreat
         otherwise. The probe's estimate already paid the switch
         penalty (the bubble cycles count against its slice). *)
      t.probing <- false;
      let probe_v = t.estimates.(t.owner)
      and anchor_v = t.estimates.(t.anchor) in
      if
        (not (Float.is_nan probe_v))
        && (Float.is_nan anchor_v || probe_v > anchor_v *. (1.0 +. hysteresis))
      then begin
        t.anchor <- t.owner;
        set_owner t ~slice:next_slice t.owner
      end
      else set_owner t ~slice:next_slice t.anchor
    end
    else begin
      let memory_bound =
        obs.instrs > 0
        && float_of_int obs.dcache_misses /. float_of_int obs.instrs > 0.25
      in
      let due = next_slice mod max 1 explore_period = 0 in
      if due && (not memory_bound) && Array.length t.candidates > 1 then begin
        let total_ops = Array.fold_left ( + ) 0 obs.per_thread_ops in
        let max_ops = Array.fold_left max 0 obs.per_thread_ops in
        let imbalanced =
          total_ops > 0 && float_of_int max_ops /. float_of_int total_ops > 0.7
        in
        let dir =
          if obs.rejects_conflict >= obs.rejects_capacity || imbalanced then 1
          else -1
        in
        let target = neighbour t ~dir in
        if target <> t.anchor then begin
          t.probing <- true;
          set_owner t ~slice:next_slice target
        end
      end
    end);
  t.candidates.(t.owner)
