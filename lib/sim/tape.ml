(* Shared per-thread draw tape for lockstep scheme columns.

   A thread's stochastic inputs — data addresses from its
   [Addr_stream], branch outcomes from its control RNG — depend only on
   the draw index, never on when the draw happens: the k-th call
   returns the same value under any merge scheme, any interleaving, any
   stall pattern. Scheme columns of one sweep row already share their
   row seed so they compare schemes on identical workloads; a tape
   makes them share the generation work too. The first column to reach
   draw k generates and records it; every later column replays the
   recorded value, bit-identical by construction (the generators were
   derived from the same seed, so the value replayed is exactly the
   value the column's own generator would have produced).

   A tape owns the generators of the first thread that adopted it;
   later adopters' freshly-created generators are simply never drawn
   from. Buffers grow geometrically; tapes are single-domain, like the
   simulator cores that read them — one [set] per lockstep row task. *)

type t = {
  addr_stream : Vliw_mem.Addr_stream.t;
  ctrl_rng : Vliw_util.Rng.t;
  mutable addrs : int array;
  mutable n_addrs : int;
  mutable taken : Bytes.t;
  mutable n_taken : int;
}

(* Tapes of one row's threads, keyed by thread id. *)
type set = (int, t) Hashtbl.t

let create_set () : set = Hashtbl.create 8

let adopt (set : set) ~id ~addr_stream ~ctrl_rng =
  match Hashtbl.find_opt set id with
  | Some t -> t
  | None ->
    let t =
      {
        addr_stream;
        ctrl_rng;
        addrs = Array.make 1024 0;
        n_addrs = 0;
        taken = Bytes.make 1024 '\000';
        n_taken = 0;
      }
    in
    Hashtbl.add set id t;
    t

let addr t k =
  while k >= t.n_addrs do
    if t.n_addrs = Array.length t.addrs then begin
      let bigger = Array.make (2 * Array.length t.addrs) 0 in
      Array.blit t.addrs 0 bigger 0 t.n_addrs;
      t.addrs <- bigger
    end;
    t.addrs.(t.n_addrs) <- Vliw_mem.Addr_stream.next t.addr_stream;
    t.n_addrs <- t.n_addrs + 1
  done;
  t.addrs.(k)

(* [p] is the thread's (constant) taken probability: every column passes
   the same profile value, so generation and replay agree. *)
let taken t k p =
  while k >= t.n_taken do
    if t.n_taken = Bytes.length t.taken then begin
      let bigger = Bytes.make (2 * Bytes.length t.taken) '\000' in
      Bytes.blit t.taken 0 bigger 0 t.n_taken;
      t.taken <- bigger
    end;
    Bytes.set t.taken t.n_taken
      (if Vliw_util.Rng.bernoulli t.ctrl_rng p then '\001' else '\000');
    t.n_taken <- t.n_taken + 1
  done;
  Bytes.get t.taken k <> '\000'
