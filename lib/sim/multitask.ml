module Rng = Vliw_util.Rng

type schedule = { timeslice : int; target_instrs : int; max_cycles : int }

let paper_schedule =
  { timeslice = 1_000_000; target_instrs = 100_000_000; max_cycles = max_int }

let default_schedule =
  { timeslice = 50_000; target_instrs = 400_000; max_cycles = 1_500_000 }

let quick_schedule =
  { timeslice = 5_000; target_instrs = 20_000; max_cycles = 60_000 }

let resident_set rng n_contexts threads =
  let n_threads = Array.length threads in
  if n_threads <= n_contexts then
    Array.init n_contexts (fun i -> if i < n_threads then Some threads.(i) else None)
  else begin
    (* Random sample without replacement (paper: replacement threads are
       picked at random after the context switch). *)
    let order = Array.init n_threads Fun.id in
    Rng.shuffle rng order;
    Array.init n_contexts (fun i -> Some threads.(order.(i)))
  end

let run_programs config ?(perfect_mem = false) ?(seed = 0x5EEDL)
    ?(schedule = default_schedule) ?telemetry ?counters ?controller ?tapes
    programs =
  let rng = Rng.create seed in
  let os_rng = Rng.split rng in
  let threads =
    Array.of_list
      (List.mapi
         (fun id program ->
           Thread_state.create ~id ~seed:(Rng.next_int64 rng) program)
         programs)
  in
  (* Tapes are attached after creation, so the seed-derivation chain
     above is untouched: a taped run replays exactly the draws an
     untaped run would make (bit-equality is property-tested). *)
  (match tapes with
  | None -> ()
  | Some set -> Array.iter (Thread_state.attach_tape set) threads);
  let mem = Vliw_mem.Mem_system.create ~perfect:perfect_mem config.Config.machine in
  let core = Core.create ?telemetry ?counters config mem in
  let n_contexts = Config.contexts config in
  let done_ () =
    Array.exists (fun th -> th.Thread_state.instrs_retired >= schedule.target_instrs) threads
  in
  let finished = ref false in
  (* Adaptive scheme selection: the controller is consulted at every
     timeslice boundary with the finished slice's observation deltas,
     and the merge network switched (penalty charged) when it answers
     with a different scheme. The observation marks are pure reads of
     simulator state, and with a [Static] controller no switch ever
     happens — so results are bit-identical to a controller-less run
     (property-tested). *)
  let slice_idx = ref 0 in
  let consult =
    match controller with
    | None -> fun () -> ()
    | Some c ->
      let mark_cycle = ref 0 and mark_ops = ref 0 and mark_instrs = ref 0 in
      let mark_im = ref 0 and mark_dm = ref 0 in
      let mark_conflict = ref 0 and mark_capacity = ref 0 in
      let mark_thread_ops =
        Array.map (fun th -> th.Thread_state.ops_retired) threads
      in
      fun () ->
        let _, im = Vliw_mem.Mem_system.icache_stats mem in
        let _, dm = Vliw_mem.Mem_system.dcache_stats mem in
        let conflict, capacity = Core.reject_counts core in
        let obs =
          {
            Controller.slice = !slice_idx;
            cycles = Core.cycle core - !mark_cycle;
            ops = Core.ops_issued core - !mark_ops;
            instrs = Core.instrs_issued core - !mark_instrs;
            per_thread_ops =
              Array.mapi
                (fun i th -> th.Thread_state.ops_retired - mark_thread_ops.(i))
                threads;
            rejects_conflict = conflict - !mark_conflict;
            rejects_capacity = capacity - !mark_capacity;
            icache_misses = im - !mark_im;
            dcache_misses = dm - !mark_dm;
          }
        in
        mark_cycle := Core.cycle core;
        mark_ops := Core.ops_issued core;
        mark_instrs := Core.instrs_issued core;
        mark_im := im;
        mark_dm := dm;
        mark_conflict := conflict;
        mark_capacity := capacity;
        Array.iteri
          (fun i th -> mark_thread_ops.(i) <- th.Thread_state.ops_retired)
          threads;
        let prev = Controller.current c in
        let next = Controller.decide c obs in
        if next.Controller.name <> prev.Controller.name then begin
          let penalty =
            Controller.switch_penalty c ~from_:prev.Controller.scheme
              ~to_:next.Controller.scheme
          in
          Core.switch_scheme core ~name:next.Controller.name ~penalty
            next.Controller.scheme
        end
  in
  while (not !finished) && Core.cycle core < schedule.max_cycles do
    Core.install core (resident_set os_rng n_contexts threads);
    let slice_end = min schedule.max_cycles (Core.cycle core + schedule.timeslice) in
    while (not !finished) && Core.cycle core < slice_end do
      Core.step core;
      (* Check the termination condition sparsely; it scans all threads. *)
      if Core.cycle core land 0xFFF = 0 && done_ () then finished := true
    done;
    if done_ () then finished := true;
    if (not !finished) && Core.cycle core < schedule.max_cycles then consult ();
    incr slice_idx
  done;
  (* Report the controller's per-timeslice scheme choices in telemetry:
     one counter per candidate counting the boundary decisions that
     picked it, plus the owner-change total. Observation-only. *)
  (match (controller, counters) with
  | Some c, Some k ->
    let module Tel = Vliw_telemetry in
    List.iter
      (fun (_, name) ->
        Tel.Counters.incr
          (Tel.Counters.counter k (Tel.Report.n_controller_decisions name)))
      (Controller.decisions c);
    let switches = Controller.switches c in
    if switches > 0 then
      Tel.Counters.add
        (Tel.Counters.counter k Tel.Report.n_controller_switches)
        switches
  | _ -> ());
  let metrics = Core.metrics core ~all_threads:threads in
  (* Self-check every result in enforcing builds (test suite, CI,
     VLIWSIM_INVARIANTS=1): the conservation laws hold for any workload
     unless the core's bookkeeping broke. *)
  if Invariants.enforced () then Invariants.check_metrics metrics;
  metrics

let run config ?perfect_mem ?(seed = 0x5EEDL) ?schedule ?mode ?telemetry
    ?counters ?controller ?tapes profiles =
  let rng = Rng.create (Int64.add seed 0x9E37L) in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate ~seed:(Rng.next_int64 rng) ?mode
          config.Config.machine p)
      profiles
  in
  run_programs config ?perfect_mem ~seed ?schedule ?telemetry ?counters
    ?controller ?tapes programs
