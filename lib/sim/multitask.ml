module Rng = Vliw_util.Rng

type schedule = { timeslice : int; target_instrs : int; max_cycles : int }

let paper_schedule =
  { timeslice = 1_000_000; target_instrs = 100_000_000; max_cycles = max_int }

let default_schedule =
  { timeslice = 50_000; target_instrs = 400_000; max_cycles = 1_500_000 }

let quick_schedule =
  { timeslice = 5_000; target_instrs = 20_000; max_cycles = 60_000 }

let resident_set rng n_contexts threads =
  let n_threads = Array.length threads in
  if n_threads <= n_contexts then
    Array.init n_contexts (fun i -> if i < n_threads then Some threads.(i) else None)
  else begin
    (* Random sample without replacement (paper: replacement threads are
       picked at random after the context switch). *)
    let order = Array.init n_threads Fun.id in
    Rng.shuffle rng order;
    Array.init n_contexts (fun i -> Some threads.(order.(i)))
  end

let run_programs config ?(perfect_mem = false) ?(seed = 0x5EEDL)
    ?(schedule = default_schedule) ?telemetry ?counters programs =
  let rng = Rng.create seed in
  let os_rng = Rng.split rng in
  let threads =
    Array.of_list
      (List.mapi
         (fun id program ->
           Thread_state.create ~id ~seed:(Rng.next_int64 rng) program)
         programs)
  in
  let mem = Vliw_mem.Mem_system.create ~perfect:perfect_mem config.Config.machine in
  let core = Core.create ?telemetry ?counters config mem in
  let n_contexts = Config.contexts config in
  let done_ () =
    Array.exists (fun th -> th.Thread_state.instrs_retired >= schedule.target_instrs) threads
  in
  let finished = ref false in
  while (not !finished) && Core.cycle core < schedule.max_cycles do
    Core.install core (resident_set os_rng n_contexts threads);
    let slice_end = min schedule.max_cycles (Core.cycle core + schedule.timeslice) in
    while (not !finished) && Core.cycle core < slice_end do
      Core.step core;
      (* Check the termination condition sparsely; it scans all threads. *)
      if Core.cycle core land 0xFFF = 0 && done_ () then finished := true
    done;
    if done_ () then finished := true
  done;
  let metrics = Core.metrics core ~all_threads:threads in
  (* Self-check every result in enforcing builds (test suite, CI,
     VLIWSIM_INVARIANTS=1): the conservation laws hold for any workload
     unless the core's bookkeeping broke. *)
  if Invariants.enforced () then Invariants.check_metrics metrics;
  metrics

let run config ?perfect_mem ?(seed = 0x5EEDL) ?schedule ?mode ?telemetry
    ?counters profiles =
  let rng = Rng.create (Int64.add seed 0x9E37L) in
  let programs =
    List.map
      (fun p ->
        Vliw_compiler.Program.generate ~seed:(Rng.next_int64 rng) ?mode
          config.Config.machine p)
      profiles
  in
  run_programs config ?perfect_mem ~seed ?schedule ?telemetry ?counters
    programs
