module J = Vliw_util.Json
module Span = Vliw_telemetry.Span

(* Trace context piggybacked on an assign: the coordinator's trace id
   and the dispatch span the worker's child spans should hang under.
   Optional on the wire (absent = no-trace) so old peers keep parsing. *)
type trace = { t_trace : int64; t_parent : int64 option }

type assign = {
  a_shard : int;
  a_scale : string;
  a_seed : int64;
  a_cells : Plan.cell_spec list;
  a_trace : trace option;
}

type to_worker = Assign of assign | Quit

type cell_result = {
  r_mix : string;
  r_scheme : string;
  r_ipc : float;
  r_elapsed_s : float;
  r_error : string option;
}

type from_worker =
  | Ready of { pid : int }
  | Cell of { c_shard : int; c_result : cell_result }
  | Shard_done of { d_shard : int; d_spans : Span.t list }
  | Query_stats

let hex64 v = Printf.sprintf "0x%Lx" v

let trace_fields = function
  | None -> []
  | Some { t_trace; t_parent } -> (
    (("trace", J.Str (hex64 t_trace)) :: [])
    @
    match t_parent with
    | None -> []
    | Some p -> [ ("parent", J.Str (hex64 p)) ])

let to_worker_to_json = function
  | Assign a ->
    J.Obj
      ([
         ("op", J.Str "assign");
         ("shard", J.Num (float_of_int a.a_shard));
         ("scale", J.Str a.a_scale);
         ("seed", J.Str (hex64 a.a_seed));
         ( "cells",
           J.List
             (List.map
                (fun (c : Plan.cell_spec) ->
                  J.Obj [ ("mix", J.Str c.mix); ("scheme", J.Str c.scheme) ])
                a.a_cells) );
       ]
      @ trace_fields a.a_trace)
  | Quit -> J.Obj [ ("op", J.Str "quit") ]

let from_worker_to_json = function
  | Ready { pid } ->
    J.Obj [ ("ev", J.Str "ready"); ("pid", J.Num (float_of_int pid)) ]
  | Cell { c_shard; c_result = r } ->
    J.Obj
      ([
         ("ev", J.Str "cell");
         ("shard", J.Num (float_of_int c_shard));
         ("mix", J.Str r.r_mix);
         ("scheme", J.Str r.r_scheme);
         (* [bits] is authoritative; the decimal ipc is for humans
            reading a captured stream. *)
         ("bits", J.Str (hex64 (Int64.bits_of_float r.r_ipc)));
         ( "ipc",
           if Float.is_finite r.r_ipc then J.Num r.r_ipc else J.Null );
         ("t", J.Num r.r_elapsed_s);
       ]
      @ match r.r_error with None -> [] | Some e -> [ ("err", J.Str e) ])
  | Shard_done { d_shard; d_spans } ->
    J.Obj
      ([ ("ev", J.Str "shard_done"); ("shard", J.Num (float_of_int d_shard)) ]
      @
      match d_spans with
      | [] -> []
      | spans -> [ ("spans", Span.list_to_json spans) ])
  | Query_stats -> J.Obj [ ("ev", J.Str "stats") ]

(* --- decoding --------------------------------------------------------- *)

let ( let* ) = Result.bind

let field_string j key =
  match J.member key j with
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "%S must be a string" key)
  | None -> Error (Printf.sprintf "missing %S field" key)

let field_int j key =
  match Option.bind (J.member key j) J.to_int with
  | Some n -> Ok n
  | None -> Error (Printf.sprintf "%S must be an integer" key)

let field_seed j key =
  let* s = field_string j key in
  match Int64.of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%S is not a valid 64-bit value" key)

let field_id_opt j key =
  match J.member key j with
  | None -> Ok None
  | Some (J.Str s) -> (
    match Int64.of_string_opt s with
    | Some v -> Ok (Some v)
    | None -> Error (Printf.sprintf "%S is not a valid 64-bit value" key))
  | Some _ -> Error (Printf.sprintf "%S must be a hex id string" key)

let field_trace j =
  let* trace_id = field_id_opt j "trace" in
  let* t_parent = field_id_opt j "parent" in
  match trace_id with
  | None -> Ok None
  | Some t_trace -> Ok (Some { t_trace; t_parent })

let cell_spec_of_json j =
  let* mix = field_string j "mix" in
  let* scheme = field_string j "scheme" in
  Ok { Plan.mix; scheme }

let to_worker_of_json j =
  match J.member "op" j with
  | Some (J.Str "quit") -> Ok Quit
  | Some (J.Str "assign") ->
    let* a_shard = field_int j "shard" in
    let* a_scale = field_string j "scale" in
    let* a_seed = field_seed j "seed" in
    let* a_cells =
      match J.member "cells" j with
      | Some (J.List items) ->
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest ->
            let* c = cell_spec_of_json item in
            go (c :: acc) rest
        in
        go [] items
      | _ -> Error "\"cells\" must be a list"
    in
    let* a_trace = field_trace j in
    Ok (Assign { a_shard; a_scale; a_seed; a_cells; a_trace })
  | Some (J.Str op) -> Error (Printf.sprintf "unknown op %S" op)
  | _ -> Error "missing \"op\" field"

let from_worker_of_json j =
  match J.member "ev" j with
  | Some (J.Str "ready") ->
    let* pid = field_int j "pid" in
    Ok (Ready { pid })
  | Some (J.Str "stats") -> Ok Query_stats
  | Some (J.Str "shard_done") ->
    let* d_shard = field_int j "shard" in
    let* d_spans =
      match J.member "spans" j with
      | None -> Ok []
      | Some spans -> Span.list_of_json spans
    in
    Ok (Shard_done { d_shard; d_spans })
  | Some (J.Str "cell") ->
    let* c_shard = field_int j "shard" in
    let* r_mix = field_string j "mix" in
    let* r_scheme = field_string j "scheme" in
    let* bits = field_seed j "bits" in
    let r_elapsed_s =
      match Option.bind (J.member "t" j) J.to_float with
      | Some t -> t
      | None -> 0.0
    in
    let r_error =
      match J.member "err" j with Some (J.Str e) -> Some e | _ -> None
    in
    Ok
      (Cell
         {
           c_shard;
           c_result =
             {
               r_mix;
               r_scheme;
               r_ipc = Int64.float_of_bits bits;
               r_elapsed_s;
               r_error;
             };
         })
  | Some (J.Str ev) -> Error (Printf.sprintf "unknown event %S" ev)
  | _ -> (
    (* A monitor ([vliwsim top]) speaks the service's stats shape; the
       coordinator answers it on the same listener workers use. *)
    match J.member "op" j with
    | Some (J.Str "stats") -> Ok Query_stats
    | _ -> Error "missing \"ev\" field")
