(* The coordinator event loop.

   Single domain, select-driven, mirroring the service daemon's shape:
   parallelism lives in the worker processes, so the loop only shuffles
   NDJSON lines and never blocks on simulation. Dispatch is pull-based:
   an idle ready worker claims the head of the shard queue. All
   determinism rests on cells being pure functions of (scale, master
   seed, mix, scheme) — which worker computes a cell, in what order,
   after how many deaths, cannot change its bits.

   Fault handling has two distinct layers, deliberately matching the
   in-process sweep's semantics:
   - a *simulation* failure consumes the cell's retry budget
     ([max_retries], then degrade to nan);
   - a *worker* death (EOF, broken pipe, shard timeout) is free for the
     cells it strands — they re-queue with budget intact — except that
     a cell observed on [max_retries + 3] dying workers degrades too,
     so a poison cell that crashes its host cannot re-queue forever. *)

module E = Vliw_experiments
module Ndjson = Vliw_util.Ndjson

type stats = {
  mutable cells_simulated : int;
  mutable cells_restored : int;
  mutable cells_retried : int;
  mutable cells_degraded : int;
  mutable shards_dispatched : int;
  mutable shards_completed : int;
  mutable shards_requeued : int;
  mutable workers_spawned : int;
  mutable workers_attached : int;
  mutable workers_died : int;
  mutable workers_timeouts : int;
}

let make_stats () =
  {
    cells_simulated = 0;
    cells_restored = 0;
    cells_retried = 0;
    cells_degraded = 0;
    shards_dispatched = 0;
    shards_completed = 0;
    shards_requeued = 0;
    workers_spawned = 0;
    workers_attached = 0;
    workers_died = 0;
    workers_timeouts = 0;
  }

let counters_list s =
  [
    ("dist.cells.degraded", s.cells_degraded);
    ("dist.cells.restored", s.cells_restored);
    ("dist.cells.retried", s.cells_retried);
    ("dist.cells.simulated", s.cells_simulated);
    ("dist.shards.completed", s.shards_completed);
    ("dist.shards.dispatched", s.shards_dispatched);
    ("dist.shards.requeued", s.shards_requeued);
    ("dist.workers.attached", s.workers_attached);
    ("dist.workers.died", s.workers_died);
    ("dist.workers.spawned", s.workers_spawned);
    ("dist.workers.timeouts", s.workers_timeouts);
  ]

type config = {
  workers : int;
  worker_argv : string array;
  attached : Unix.file_descr list;
  listen_socket : string option;
  listen_tcp : int option;
  shard_size : int option;
  max_retries : int;
  shard_timeout_s : float option;
  checkpoint : string option;
  resume : bool;
  die_first_worker_after : int option;
  log : string -> unit;
  on_event : (E.Sweep.event -> unit) option;
}

let default_config =
  {
    workers = 0;
    worker_argv = [||];
    attached = [];
    listen_socket = None;
    listen_tcp = None;
    shard_size = None;
    max_retries = 0;
    shard_timeout_s = None;
    checkpoint = None;
    resume = false;
    die_first_worker_after = None;
    log = (fun _ -> ());
    on_event = None;
  }

type result = {
  d_scheme_names : string list;
  d_mix_names : string list;
  d_grids : (int64 * E.Sweep.cell array) list;
  d_wall_s : float;
  d_stats : stats;
}

(* --- internal state ---------------------------------------------------- *)

(* A queued shard: grid index + spec per cell, so results route without
   re-hashing. Plan's ids restart per seed; the coordinator assigns its
   own dense ids (re-queued fragments get fresh ones too). *)
type ishard = {
  is_id : int;
  is_seed_idx : int;
  mutable is_cells : (int * Plan.cell_spec) list;
}

type wrk = {
  w_id : int;
  w_pid : int option;  (* None for attached transports *)
  w_in : Unix.file_descr;
  w_out : Unix.file_descr;  (* = w_in for socket transports *)
  w_reader : Ndjson.reader;
  mutable w_ready : bool;
  mutable w_shard : ishard option;
  mutable w_deadline : float;  (* infinity when idle or no timeout *)
  mutable w_closed : bool;
}

type seed_state = {
  ss_seed : int64;
  ss_results : E.Sweep.cell option array;  (* mix-major *)
  ss_attempts : int array;  (* failed simulation attempts per cell *)
  ss_deaths : int array;  (* dying workers observed per cell *)
  ss_index : (string * string, int) Hashtbl.t;
  ss_journal : (string * E.Checkpoint.t ref) option;
}

let fig10_scheme_names () =
  List.filter_map
    (fun (e : Vliw_merge.Catalog.entry) ->
      if e.name = "ST" then None else Some e.name)
    Vliw_merge.Catalog.all

let run ?(scale = E.Common.Default) ?(seed = E.Common.default_seed) ?seeds
    ?scheme_names ?mix_names cfg =
  let seeds = match seeds with Some (_ :: _ as s) -> s | _ -> [ seed ] in
  let scheme_names =
    match scheme_names with Some s -> s | None -> fig10_scheme_names ()
  in
  let mix_names =
    match mix_names with Some m -> m | None -> Vliw_workloads.Mixes.names
  in
  List.iter
    (fun m ->
      if Vliw_workloads.Mixes.find m = None then
        invalid_arg ("dist: unknown mix " ^ m))
    mix_names;
  List.iter
    (fun s ->
      if Vliw_merge.Catalog.find s = None then
        invalid_arg ("dist: unknown scheme " ^ s))
    scheme_names;
  if
    (cfg.workers <= 0 || Array.length cfg.worker_argv = 0)
    && cfg.attached = []
    && cfg.listen_socket = None
    && cfg.listen_tcp = None
  then failwith "dist: no worker transport configured";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let stats = make_stats () in
  let scale_str = E.Common.scale_name scale in
  let grid_cells = Plan.cells_of_grid ~mix_names ~scheme_names in
  let n_cells = List.length grid_cells in
  let total = n_cells * List.length seeds in
  let t0 = Unix.gettimeofday () in
  let completed = ref 0 in
  let degraded_total = ref 0 in
  let elapsed_sum = ref 0.0 and elapsed_n = ref 0 in
  let emit ev = Option.iter (fun f -> f ev) cfg.on_event in
  (* --- per-seed grids, restored from checkpoint journals --------------- *)
  let multi = List.length seeds > 1 in
  let states =
    Array.of_list
      (List.map
         (fun sd ->
           let index = Hashtbl.create (max 1 n_cells) in
           List.iteri
             (fun i (c : Plan.cell_spec) ->
               Hashtbl.replace index (c.mix, c.scheme) i)
             grid_cells;
           let results = Array.make (max 1 n_cells) None in
           let meta =
             {
               E.Checkpoint.scale = scale_str;
               seed = sd;
               scheme_names;
               mix_names;
               telemetry = false;
             }
           in
           let journal =
             Option.map
               (fun path ->
                 (* Replicated runs keep one journal per seed: a journal
                    header pins exactly one (scale, seed, grid). *)
                 let path =
                   if multi then Printf.sprintf "%s.s%Lx" path sd else path
                 in
                 let t =
                   if cfg.resume then
                     match E.Checkpoint.load ~path with
                     | Ok t when E.Checkpoint.meta_equal t.meta meta -> t
                     | Ok _ ->
                       cfg.log
                         (Printf.sprintf
                            "warning: checkpoint %s ignored (configuration \
                             mismatch); starting fresh"
                            path);
                       E.Checkpoint.create meta
                     | Error _ -> E.Checkpoint.create meta
                   else E.Checkpoint.create meta
                 in
                 List.iter
                   (fun (r : E.Checkpoint.record) ->
                     match Hashtbl.find_opt index (r.mix, r.scheme) with
                     | Some i when results.(i) = None ->
                       results.(i) <-
                         Some
                           {
                             E.Sweep.mix = r.mix;
                             scheme = r.scheme;
                             ipc = r.ipc;
                             elapsed_s = 0.0;
                             started_s = 0.0;
                             worker = 0;
                             telemetry = None;
                             attempts = 0;
                             error = None;
                           };
                       incr completed;
                       stats.cells_restored <- stats.cells_restored + 1
                     | _ -> ())
                   t.records;
                 (* a valid journal exists from the moment the sweep
                    starts, like Sweep.run_cells *)
                 E.Checkpoint.save ~path t;
                 (path, ref t))
               cfg.checkpoint
           in
           {
             ss_seed = sd;
             ss_results = results;
             ss_attempts = Array.make (max 1 n_cells) 0;
             ss_deaths = Array.make (max 1 n_cells) 0;
             ss_index = index;
             ss_journal = journal;
           })
         seeds)
  in
  (* --- shard queue ------------------------------------------------------ *)
  let next_shard = ref 0 in
  let shard_seed : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let queue : ishard Queue.t = Queue.create () in
  let new_shard seed_idx cells =
    let s = { is_id = !next_shard; is_seed_idx = seed_idx; is_cells = cells } in
    incr next_shard;
    Hashtbl.replace shard_seed s.is_id seed_idx;
    s
  in
  let planned_workers = max 1 (cfg.workers + List.length cfg.attached) in
  Array.iteri
    (fun idx st ->
      List.iter
        (fun (p : Plan.shard) ->
          let cells =
            List.filter_map
              (fun (c : Plan.cell_spec) ->
                let i = Hashtbl.find st.ss_index (c.mix, c.scheme) in
                if st.ss_results.(i) = None then Some (i, c) else None)
              p.cells
          in
          if cells <> [] then Queue.push (new_shard idx cells) queue)
        (Plan.make ?shard_size:cfg.shard_size ~workers:planned_workers
           ~seeds:[ st.ss_seed ] ~mix_names ~scheme_names ()))
    states;
  emit
    (E.Sweep.Sweep_started
       { total; jobs = planned_workers; scale = scale_str; seed = List.hd seeds });
  (* --- cell accounting -------------------------------------------------- *)
  let alive_workers = ref 0 in
  let eta () =
    if !elapsed_n = 0 then Float.nan
    else
      !elapsed_sum /. float_of_int !elapsed_n
      *. float_of_int (total - !completed)
      /. float_of_int (max 1 !alive_workers)
  in
  let finish_cell st i (cell : E.Sweep.cell) =
    if st.ss_results.(i) = None then begin
      st.ss_results.(i) <- Some cell;
      incr completed;
      if cell.error <> None then begin
        stats.cells_degraded <- stats.cells_degraded + 1;
        incr degraded_total
      end
      else begin
        stats.cells_simulated <- stats.cells_simulated + 1;
        elapsed_sum := !elapsed_sum +. cell.elapsed_s;
        incr elapsed_n;
        match st.ss_journal with
        | Some (path, jref) ->
          jref :=
            E.Checkpoint.add !jref
              {
                mix = cell.mix;
                scheme = cell.scheme;
                row_seed = E.Sweep.row_seed ~seed:st.ss_seed cell.mix;
                ipc = cell.ipc;
                attempts = cell.attempts;
                counters = None;
              };
          E.Checkpoint.save ~path !jref
        | None -> ()
      end;
      emit
        (E.Sweep.Cell_finished { cell; completed = !completed; total; eta_s = eta () })
    end
  in
  (* --- workers ---------------------------------------------------------- *)
  let workers : (int, wrk) Hashtbl.t = Hashtbl.create 8 in
  let snapshot () = Hashtbl.fold (fun _ w acc -> w :: acc) workers [] in
  let next_worker = ref 0 in
  let spawned_total = ref 0 in
  let respawn_budget = cfg.workers + 8 in
  let add_worker ~pid ~fd_in ~fd_out =
    let w =
      {
        w_id = !next_worker;
        w_pid = pid;
        w_in = fd_in;
        w_out = fd_out;
        w_reader = Ndjson.reader ();
        w_ready = false;
        w_shard = None;
        w_deadline = infinity;
        w_closed = false;
      }
    in
    incr next_worker;
    Hashtbl.replace workers w.w_id w;
    alive_workers := Hashtbl.length workers;
    w
  in
  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> () in
  let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> () in
  let spawn_worker () =
    if Array.length cfg.worker_argv = 0 || !spawned_total >= respawn_budget then
      false
    else begin
      let argv =
        match cfg.die_first_worker_after with
        | Some n when !spawned_total = 0 ->
          Array.append cfg.worker_argv
            [| "--die-after-cells"; string_of_int n |]
        | _ -> cfg.worker_argv
      in
      let stdin_r, stdin_w = Unix.pipe () in
      let stdout_r, stdout_w = Unix.pipe () in
      match Unix.create_process argv.(0) argv stdin_r stdout_w Unix.stderr with
      | pid ->
        Unix.close stdin_r;
        Unix.close stdout_w;
        (* parent-side ends must not leak into later-spawned siblings,
           or one worker's EOF waits on another's exit *)
        Unix.set_close_on_exec stdin_w;
        Unix.set_close_on_exec stdout_r;
        incr spawned_total;
        stats.workers_spawned <- stats.workers_spawned + 1;
        let w = add_worker ~pid:(Some pid) ~fd_in:stdin_w ~fd_out:stdout_r in
        cfg.log (Printf.sprintf "worker %d spawned (pid %d)" w.w_id pid);
        true
      | exception e ->
        List.iter close_fd [ stdin_r; stdin_w; stdout_r; stdout_w ];
        cfg.log ("warning: worker spawn failed: " ^ Printexc.to_string e);
        false
    end
  in
  let worker_died ?(timeout = false) reason (w : wrk) =
    if not w.w_closed then begin
      w.w_closed <- true;
      Hashtbl.remove workers w.w_id;
      alive_workers := Hashtbl.length workers;
      close_fd w.w_in;
      if w.w_out <> w.w_in then close_fd w.w_out;
      (match w.w_pid with
      | Some pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap pid
      | None -> ());
      stats.workers_died <- stats.workers_died + 1;
      if timeout then stats.workers_timeouts <- stats.workers_timeouts + 1;
      cfg.log (Printf.sprintf "worker %d died: %s" w.w_id reason);
      match w.w_shard with
      | None -> ()
      | Some s ->
        w.w_shard <- None;
        let st = states.(s.is_seed_idx) in
        let live =
          List.filter_map
            (fun (i, (c : Plan.cell_spec)) ->
              if st.ss_results.(i) <> None then None
              else begin
                st.ss_deaths.(i) <- st.ss_deaths.(i) + 1;
                if st.ss_deaths.(i) > cfg.max_retries + 3 then begin
                  let err =
                    "worker died repeatedly while simulating this cell"
                  in
                  emit
                    (E.Sweep.Cell_degraded
                       {
                         mix = c.mix;
                         scheme = c.scheme;
                         attempts = st.ss_attempts.(i);
                         error = err;
                       });
                  finish_cell st i
                    {
                      E.Sweep.mix = c.mix;
                      scheme = c.scheme;
                      ipc = Float.nan;
                      elapsed_s = 0.0;
                      started_s = Unix.gettimeofday () -. t0;
                      worker = w.w_id;
                      telemetry = None;
                      attempts = st.ss_attempts.(i);
                      error = Some err;
                    };
                  None
                end
                else Some (i, c)
              end)
            s.is_cells
        in
        if live <> [] then begin
          stats.shards_requeued <- stats.shards_requeued + 1;
          Queue.push (new_shard s.is_seed_idx live) queue
        end
    end
  in
  let send (w : wrk) msg =
    if w.w_closed then false
    else begin
      let line = Ndjson.line (Protocol.to_worker_to_json msg) in
      let len = String.length line in
      let rec push off =
        if off < len then
          push (off + Unix.write_substring w.w_in line off (len - off))
      in
      match push 0 with
      | () -> true
      | exception Unix.Unix_error _ ->
        worker_died "write failed" w;
        false
    end
  in
  (* --- inbound messages ------------------------------------------------- *)
  let handle_cell_result (w : wrk) c_shard (r : Protocol.cell_result) =
    match Hashtbl.find_opt shard_seed c_shard with
    | None -> cfg.log (Printf.sprintf "stale result for shard %d" c_shard)
    | Some seed_idx -> (
      let st = states.(seed_idx) in
      (match w.w_shard with
      | Some s when s.is_id = c_shard ->
        s.is_cells <-
          List.filter
            (fun (_, (c : Plan.cell_spec)) ->
              not (c.mix = r.r_mix && c.scheme = r.r_scheme))
            s.is_cells;
        (* progress resets the silence budget *)
        Option.iter
          (fun t -> w.w_deadline <- Unix.gettimeofday () +. t)
          cfg.shard_timeout_s
      | _ -> ());
      match Hashtbl.find_opt st.ss_index (r.r_mix, r.r_scheme) with
      | None ->
        cfg.log
          (Printf.sprintf "result for unknown cell %s/%s" r.r_mix r.r_scheme)
      | Some i ->
        if st.ss_results.(i) <> None then
          (* duplicate delivery after a timeout/requeue race: cells are
             pure functions of their key, so first-wins is exact *)
          ()
        else (
          match r.r_error with
          | None ->
            finish_cell st i
              {
                E.Sweep.mix = r.r_mix;
                scheme = r.r_scheme;
                ipc = r.r_ipc;
                elapsed_s = r.r_elapsed_s;
                started_s = Unix.gettimeofday () -. t0;
                worker = w.w_id;
                telemetry = None;
                attempts = st.ss_attempts.(i) + 1;
                error = None;
              }
          | Some err ->
            st.ss_attempts.(i) <- st.ss_attempts.(i) + 1;
            if st.ss_attempts.(i) <= cfg.max_retries then begin
              stats.cells_retried <- stats.cells_retried + 1;
              emit
                (E.Sweep.Cell_retried
                   {
                     mix = r.r_mix;
                     scheme = r.r_scheme;
                     attempt = st.ss_attempts.(i);
                     error = err;
                   });
              Queue.push
                (new_shard seed_idx
                   [ (i, { Plan.mix = r.r_mix; scheme = r.r_scheme }) ])
                queue
            end
            else begin
              emit
                (E.Sweep.Cell_degraded
                   {
                     mix = r.r_mix;
                     scheme = r.r_scheme;
                     attempts = st.ss_attempts.(i);
                     error = err;
                   });
              finish_cell st i
                {
                  E.Sweep.mix = r.r_mix;
                  scheme = r.r_scheme;
                  ipc = Float.nan;
                  elapsed_s = r.r_elapsed_s;
                  started_s = Unix.gettimeofday () -. t0;
                  worker = w.w_id;
                  telemetry = None;
                  attempts = st.ss_attempts.(i);
                  error = Some err;
                }
            end))
  in
  let handle_msg (w : wrk) = function
    | Protocol.Ready _ -> w.w_ready <- true
    | Protocol.Cell { c_shard; c_result } -> handle_cell_result w c_shard c_result
    | Protocol.Shard_done { d_shard } -> (
      match w.w_shard with
      | Some s when s.is_id = d_shard ->
        w.w_shard <- None;
        w.w_deadline <- infinity;
        stats.shards_completed <- stats.shards_completed + 1;
        let st = states.(s.is_seed_idx) in
        let leftover =
          List.filter (fun (i, _) -> st.ss_results.(i) = None) s.is_cells
        in
        if leftover <> [] then begin
          (* a healthy worker skipped cells: re-queue, no death charged *)
          stats.shards_requeued <- stats.shards_requeued + 1;
          Queue.push (new_shard s.is_seed_idx leftover) queue
        end
      | _ -> ())
  in
  let read_worker (w : wrk) =
    let buf = Bytes.create 65536 in
    match Unix.read w.w_out buf 0 (Bytes.length buf) with
    | 0 ->
      ignore (Ndjson.close w.w_reader);
      worker_died "eof" w
    | n ->
      List.iter
        (fun line ->
          if not w.w_closed then
            match line with
            | Ok doc -> (
              match Protocol.from_worker_of_json doc with
              | Ok msg -> handle_msg w msg
              | Error e -> worker_died ("protocol error: " ^ e) w)
            | Error framing ->
              worker_died ("framing error: " ^ Ndjson.error_message framing) w)
        (Ndjson.feed w.w_reader ~len:n (Bytes.unsafe_to_string buf))
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      worker_died "read failed" w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* --- listeners -------------------------------------------------------- *)
  let listeners = ref [] in
  Option.iter
    (fun path ->
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let dir = Filename.dirname path in
      if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 16
       with e ->
         Unix.close fd;
         raise e);
      listeners := fd :: !listeners;
      cfg.log ("listening on " ^ path))
    cfg.listen_socket;
  Option.iter
    (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 16
       with e ->
         Unix.close fd;
         raise e);
      listeners := fd :: !listeners;
      cfg.log (Printf.sprintf "listening on 127.0.0.1:%d" port))
    cfg.listen_tcp;
  let accept fd =
    match Unix.accept fd with
    | cfd, _addr ->
      stats.workers_attached <- stats.workers_attached + 1;
      let w = add_worker ~pid:None ~fd_in:cfd ~fd_out:cfd in
      cfg.log (Printf.sprintf "worker %d attached" w.w_id)
    | exception Unix.Unix_error _ -> ()
  in
  (* pre-connected transports join the fleet before the loop starts *)
  List.iter
    (fun fd ->
      stats.workers_attached <- stats.workers_attached + 1;
      let w = add_worker ~pid:None ~fd_in:fd ~fd_out:fd in
      cfg.log (Printf.sprintf "worker %d attached (preconnected)" w.w_id))
    cfg.attached;
  (* --- scheduling ------------------------------------------------------- *)
  let dispatch () =
    List.iter
      (fun w ->
        if
          (not w.w_closed) && w.w_ready && w.w_shard = None
          && not (Queue.is_empty queue)
        then begin
          let s = Queue.pop queue in
          let assign =
            {
              Protocol.a_shard = s.is_id;
              a_scale = scale_str;
              a_seed = states.(s.is_seed_idx).ss_seed;
              a_cells = List.map snd s.is_cells;
            }
          in
          if send w (Protocol.Assign assign) then begin
            w.w_shard <- Some s;
            w.w_deadline <-
              (match cfg.shard_timeout_s with
              | Some t -> Unix.gettimeofday () +. t
              | None -> infinity);
            stats.shards_dispatched <- stats.shards_dispatched + 1
          end
          else Queue.push s queue (* send marked the worker dead *)
        end)
      (snapshot ())
  in
  let maintain () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun w ->
        if (not w.w_closed) && w.w_deadline < now then
          worker_died ~timeout:true "shard timeout" w)
      (snapshot ());
    let keep_spawning = ref true in
    while
      !keep_spawning
      && Hashtbl.length workers < cfg.workers
      && not (Queue.is_empty queue)
    do
      keep_spawning := spawn_worker ()
    done
  in
  let stuck () =
    !completed < total && Hashtbl.length workers = 0 && !listeners = []
  in
  (* --- main loop -------------------------------------------------------- *)
  let cleanup () =
    List.iter close_fd !listeners;
    listeners := [];
    Option.iter
      (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
      cfg.listen_socket;
    List.iter
      (fun w ->
        if not w.w_closed then begin
          w.w_closed <- true;
          close_fd w.w_in;
          if w.w_out <> w.w_in then close_fd w.w_out;
          match w.w_pid with
          | Some pid ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            reap pid
          | None -> ()
        end)
      (snapshot ());
    Hashtbl.reset workers
  in
  Fun.protect ~finally:cleanup (fun () ->
      if !completed < total then
        for _ = 1 to cfg.workers do
          ignore (spawn_worker ())
        done;
      while !completed < total do
        maintain ();
        if stuck () then
          failwith "dist: no workers available and none can be spawned";
        dispatch ();
        let wfds = Hashtbl.fold (fun _ w acc -> w.w_out :: acc) workers [] in
        (match Unix.select (!listeners @ wfds) [] [] 0.2 with
        | ready, _, _ ->
          List.iter
            (fun fd ->
              if List.mem fd !listeners then accept fd
              else
                match
                  Hashtbl.fold
                    (fun _ w acc -> if w.w_out = fd then Some w else acc)
                    workers None
                with
                | Some w -> read_worker w
                | None -> ())
            ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done;
      (* orderly shutdown: Quit, close (EOF doubles as quit), reap *)
      List.iter
        (fun w ->
          if send w Protocol.Quit then begin
            w.w_closed <- true;
            Hashtbl.remove workers w.w_id;
            close_fd w.w_in;
            if w.w_out <> w.w_in then close_fd w.w_out;
            Option.iter reap w.w_pid
          end)
        (snapshot ()));
  let wall_s = Unix.gettimeofday () -. t0 in
  emit (E.Sweep.Sweep_finished { total; degraded = !degraded_total; wall_s });
  {
    d_scheme_names = scheme_names;
    d_mix_names = mix_names;
    d_grids =
      Array.to_list
        (Array.map
           (fun st ->
             ( st.ss_seed,
               Array.map
                 (function
                   | Some c -> c
                   | None -> assert false (* loop exits at completed = total *))
                 (if n_cells = 0 then [||] else st.ss_results) ))
           states);
    d_wall_s = wall_s;
    d_stats = stats;
  }
