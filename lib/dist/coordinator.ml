(* The coordinator event loop.

   Single domain, select-driven, mirroring the service daemon's shape:
   parallelism lives in the worker processes, so the loop only shuffles
   NDJSON lines and never blocks on simulation. Dispatch is pull-based:
   an idle ready worker claims the head of the shard queue. All
   determinism rests on cells being pure functions of (scale, master
   seed, mix, scheme) — which worker computes a cell, in what order,
   after how many deaths, cannot change its bits.

   Fault handling has two distinct layers, deliberately matching the
   in-process sweep's semantics:
   - a *simulation* failure consumes the cell's retry budget
     ([max_retries], then degrade to nan);
   - a *worker* death (EOF, broken pipe, shard timeout) is free for the
     cells it strands — they re-queue with budget intact — except that
     a cell observed on [max_retries + 3] dying workers degrades too,
     so a poison cell that crashes its host cannot re-queue forever. *)

module E = Vliw_experiments
module Ndjson = Vliw_util.Ndjson
module J = Vliw_util.Json
module Log = Vliw_util.Log
module Span = Vliw_telemetry.Span

type stats = {
  mutable cells_simulated : int;
  mutable cells_restored : int;
  mutable cells_retried : int;
  mutable cells_degraded : int;
  mutable shards_dispatched : int;
  mutable shards_completed : int;
  mutable shards_requeued : int;
  mutable workers_spawned : int;
  mutable workers_attached : int;
  mutable workers_died : int;
  mutable workers_timeouts : int;
}

let make_stats () =
  {
    cells_simulated = 0;
    cells_restored = 0;
    cells_retried = 0;
    cells_degraded = 0;
    shards_dispatched = 0;
    shards_completed = 0;
    shards_requeued = 0;
    workers_spawned = 0;
    workers_attached = 0;
    workers_died = 0;
    workers_timeouts = 0;
  }

let counters_list s =
  [
    ("dist.cells.degraded", s.cells_degraded);
    ("dist.cells.restored", s.cells_restored);
    ("dist.cells.retried", s.cells_retried);
    ("dist.cells.simulated", s.cells_simulated);
    ("dist.shards.completed", s.shards_completed);
    ("dist.shards.dispatched", s.shards_dispatched);
    ("dist.shards.requeued", s.shards_requeued);
    ("dist.workers.attached", s.workers_attached);
    ("dist.workers.died", s.workers_died);
    ("dist.workers.spawned", s.workers_spawned);
    ("dist.workers.timeouts", s.workers_timeouts);
  ]

type config = {
  workers : int;
  worker_argv : string array;
  attached : Unix.file_descr list;
  listen_socket : string option;
  listen_tcp : int option;
  shard_size : int option;
  max_retries : int;
  shard_timeout_s : float option;
  checkpoint : string option;
  resume : bool;
  die_first_worker_after : int option;
  log : Log.t;
  on_event : (E.Sweep.event -> unit) option;
  tracer : Span.collector option;
}

let default_config =
  {
    workers = 0;
    worker_argv = [||];
    attached = [];
    listen_socket = None;
    listen_tcp = None;
    shard_size = None;
    max_retries = 0;
    shard_timeout_s = None;
    checkpoint = None;
    resume = false;
    die_first_worker_after = None;
    log = Log.null;
    on_event = None;
    tracer = None;
  }

type result = {
  d_scheme_names : string list;
  d_mix_names : string list;
  d_grids : (int64 * E.Sweep.cell array) list;
  d_wall_s : float;
  d_stats : stats;
}

(* --- internal state ---------------------------------------------------- *)

(* A queued shard: grid index + spec per cell, so results route without
   re-hashing. Plan's ids restart per seed; the coordinator assigns its
   own dense ids (re-queued fragments get fresh ones too). *)
type ishard = {
  is_id : int;
  is_seed_idx : int;
  mutable is_cells : (int * Plan.cell_spec) list;
  is_born : float;  (* tracer clock at queueing; 0 when untraced *)
}

type wrk = {
  w_id : int;
  w_pid : int option;  (* None for attached transports *)
  w_in : Unix.file_descr;
  w_out : Unix.file_descr;  (* = w_in for socket transports *)
  w_reader : Ndjson.reader;
  mutable w_ready : bool;
  mutable w_shard : ishard option;
  mutable w_deadline : float;  (* infinity when idle or no timeout *)
  mutable w_closed : bool;
  (* open dispatch span: (shard span id, dispatch span id, start) *)
  mutable w_trace : (int64 * int64 * float) option;
}

type seed_state = {
  ss_seed : int64;
  ss_results : E.Sweep.cell option array;  (* mix-major *)
  ss_attempts : int array;  (* failed simulation attempts per cell *)
  ss_deaths : int array;  (* dying workers observed per cell *)
  ss_index : (string * string, int) Hashtbl.t;
  ss_journal : (string * E.Checkpoint.t ref) option;
}

let fig10_scheme_names () =
  List.filter_map
    (fun (e : Vliw_merge.Catalog.entry) ->
      if e.name = "ST" then None else Some e.name)
    Vliw_merge.Catalog.all

let run ?(scale = E.Common.Default) ?(seed = E.Common.default_seed) ?seeds
    ?scheme_names ?mix_names cfg =
  let seeds = match seeds with Some (_ :: _ as s) -> s | _ -> [ seed ] in
  let scheme_names =
    match scheme_names with Some s -> s | None -> fig10_scheme_names ()
  in
  let mix_names =
    match mix_names with Some m -> m | None -> Vliw_workloads.Mixes.names
  in
  List.iter
    (fun m ->
      if Vliw_workloads.Mixes.find m = None then
        invalid_arg ("dist: unknown mix " ^ m))
    mix_names;
  List.iter
    (fun s ->
      if Vliw_merge.Catalog.find s = None then
        invalid_arg ("dist: unknown scheme " ^ s))
    scheme_names;
  if
    (cfg.workers <= 0 || Array.length cfg.worker_argv = 0)
    && cfg.attached = []
    && cfg.listen_socket = None
    && cfg.listen_tcp = None
  then failwith "dist: no worker transport configured";
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  let stats = make_stats () in
  let scale_str = E.Common.scale_name scale in
  let grid_cells = Plan.cells_of_grid ~mix_names ~scheme_names in
  let n_cells = List.length grid_cells in
  let total = n_cells * List.length seeds in
  let t0 = Unix.gettimeofday () in
  let completed = ref 0 in
  let degraded_total = ref 0 in
  let elapsed_sum = ref 0.0 and elapsed_n = ref 0 in
  let emit ev = Option.iter (fun f -> f ev) cfg.on_event in
  (* Trace context: one trace per run, a root span the per-shard trees
     hang under. The root id is allocated now (children reference it)
     but its span is recorded at the end, once its duration is known. *)
  let trace_ctx =
    Option.map
      (fun c ->
        let trace = Span.fresh_id c in
        let root = Span.fresh_id c in
        (c, trace, root, Span.now c))
      cfg.tracer
  in
  let tnow () =
    match trace_ctx with Some (c, _, _, _) -> Span.now c | None -> 0.0
  in
  (* --- per-seed grids, restored from checkpoint journals --------------- *)
  let multi = List.length seeds > 1 in
  let states =
    Array.of_list
      (List.map
         (fun sd ->
           let index = Hashtbl.create (max 1 n_cells) in
           List.iteri
             (fun i (c : Plan.cell_spec) ->
               Hashtbl.replace index (c.mix, c.scheme) i)
             grid_cells;
           let results = Array.make (max 1 n_cells) None in
           let meta =
             {
               E.Checkpoint.scale = scale_str;
               seed = sd;
               scheme_names;
               mix_names;
               telemetry = false;
             }
           in
           let journal =
             Option.map
               (fun path ->
                 (* Replicated runs keep one journal per seed: a journal
                    header pins exactly one (scale, seed, grid). *)
                 let path =
                   if multi then Printf.sprintf "%s.s%Lx" path sd else path
                 in
                 let t =
                   if cfg.resume then
                     match E.Checkpoint.load ~path with
                     | Ok t when E.Checkpoint.meta_equal t.meta meta -> t
                     | Ok _ ->
                       Log.warn cfg.log
                         "checkpoint ignored (configuration mismatch); \
                          starting fresh"
                         [ ("path", Log.S path) ];
                       E.Checkpoint.create meta
                     | Error _ -> E.Checkpoint.create meta
                   else E.Checkpoint.create meta
                 in
                 List.iter
                   (fun (r : E.Checkpoint.record) ->
                     match Hashtbl.find_opt index (r.mix, r.scheme) with
                     | Some i when results.(i) = None ->
                       results.(i) <-
                         Some
                           {
                             E.Sweep.mix = r.mix;
                             scheme = r.scheme;
                             ipc = r.ipc;
                             elapsed_s = 0.0;
                             started_s = 0.0;
                             worker = 0;
                             telemetry = None;
                             attempts = 0;
                             error = None;
                           };
                       incr completed;
                       stats.cells_restored <- stats.cells_restored + 1
                     | _ -> ())
                   t.records;
                 (* a valid journal exists from the moment the sweep
                    starts, like Sweep.run_cells *)
                 E.Checkpoint.save ~path t;
                 (path, ref t))
               cfg.checkpoint
           in
           {
             ss_seed = sd;
             ss_results = results;
             ss_attempts = Array.make (max 1 n_cells) 0;
             ss_deaths = Array.make (max 1 n_cells) 0;
             ss_index = index;
             ss_journal = journal;
           })
         seeds)
  in
  (* --- shard queue ------------------------------------------------------ *)
  let next_shard = ref 0 in
  let shard_seed : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let queue : ishard Queue.t = Queue.create () in
  let new_shard seed_idx cells =
    let s =
      {
        is_id = !next_shard;
        is_seed_idx = seed_idx;
        is_cells = cells;
        is_born = tnow ();
      }
    in
    incr next_shard;
    Hashtbl.replace shard_seed s.is_id seed_idx;
    s
  in
  let planned_workers = max 1 (cfg.workers + List.length cfg.attached) in
  Array.iteri
    (fun idx st ->
      List.iter
        (fun (p : Plan.shard) ->
          let cells =
            List.filter_map
              (fun (c : Plan.cell_spec) ->
                let i = Hashtbl.find st.ss_index (c.mix, c.scheme) in
                if st.ss_results.(i) = None then Some (i, c) else None)
              p.cells
          in
          if cells <> [] then Queue.push (new_shard idx cells) queue)
        (Plan.make ?shard_size:cfg.shard_size ~workers:planned_workers
           ~seeds:[ st.ss_seed ] ~mix_names ~scheme_names ()))
    states;
  emit
    (E.Sweep.Sweep_started
       { total; jobs = planned_workers; scale = scale_str; seed = List.hd seeds });
  (* --- cell accounting -------------------------------------------------- *)
  let alive_workers = ref 0 in
  let eta () =
    if !elapsed_n = 0 then Float.nan
    else
      !elapsed_sum /. float_of_int !elapsed_n
      *. float_of_int (total - !completed)
      /. float_of_int (max 1 !alive_workers)
  in
  let finish_cell st i (cell : E.Sweep.cell) =
    if st.ss_results.(i) = None then begin
      st.ss_results.(i) <- Some cell;
      incr completed;
      if cell.error <> None then begin
        stats.cells_degraded <- stats.cells_degraded + 1;
        incr degraded_total
      end
      else begin
        stats.cells_simulated <- stats.cells_simulated + 1;
        elapsed_sum := !elapsed_sum +. cell.elapsed_s;
        incr elapsed_n;
        match st.ss_journal with
        | Some (path, jref) ->
          jref :=
            E.Checkpoint.add !jref
              {
                mix = cell.mix;
                scheme = cell.scheme;
                row_seed = E.Sweep.row_seed ~seed:st.ss_seed cell.mix;
                ipc = cell.ipc;
                attempts = cell.attempts;
                counters = None;
              };
          E.Checkpoint.save ~path !jref
        | None -> ()
      end;
      emit
        (E.Sweep.Cell_finished { cell; completed = !completed; total; eta_s = eta () })
    end
  in
  (* --- workers ---------------------------------------------------------- *)
  let workers : (int, wrk) Hashtbl.t = Hashtbl.create 8 in
  let snapshot () = Hashtbl.fold (fun _ w acc -> w :: acc) workers [] in
  let next_worker = ref 0 in
  let spawned_total = ref 0 in
  let respawn_budget = cfg.workers + 8 in
  let add_worker ~pid ~fd_in ~fd_out =
    let w =
      {
        w_id = !next_worker;
        w_pid = pid;
        w_in = fd_in;
        w_out = fd_out;
        w_reader = Ndjson.reader ();
        w_ready = false;
        w_shard = None;
        w_deadline = infinity;
        w_closed = false;
        w_trace = None;
      }
    in
    incr next_worker;
    Hashtbl.replace workers w.w_id w;
    alive_workers := Hashtbl.length workers;
    w
  in
  let close_fd fd = try Unix.close fd with Unix.Unix_error _ -> () in
  (* Quiet removal for peers that were never workers (stats monitors):
     no death is charged and nothing re-queues. *)
  let drop_peer (w : wrk) =
    if not w.w_closed then begin
      w.w_closed <- true;
      Hashtbl.remove workers w.w_id;
      alive_workers := Hashtbl.length workers;
      close_fd w.w_in;
      if w.w_out <> w.w_in then close_fd w.w_out
    end
  in
  (* Close the open shard/dispatch spans of [w]'s current shard, whether
     it completed or died: the dispatch span ends now either way. *)
  let close_dispatch (w : wrk) =
    (match (trace_ctx, w.w_trace, w.w_shard) with
    | Some (c, trace, root, _), Some (shard_span, disp_span, t_disp), Some s ->
      let now = Span.now c in
      let name = Printf.sprintf "shard %d" s.is_id in
      Span.add c
        {
          Span.trace;
          id = disp_span;
          parent = Some shard_span;
          kind = Span.Dispatch;
          name = Printf.sprintf "%s worker %d" name w.w_id;
          lane = "coordinator";
          start_s = t_disp;
          dur_s = now -. t_disp;
        };
      Span.add c
        {
          Span.trace;
          id = shard_span;
          parent = Some root;
          kind = Span.Shard;
          name;
          lane = "coordinator";
          start_s = s.is_born;
          dur_s = now -. s.is_born;
        }
    | _ -> ());
    w.w_trace <- None
  in
  let reap pid = try ignore (Unix.waitpid [] pid) with Unix.Unix_error _ -> () in
  let spawn_worker () =
    if Array.length cfg.worker_argv = 0 || !spawned_total >= respawn_budget then
      false
    else begin
      let argv =
        match cfg.die_first_worker_after with
        | Some n when !spawned_total = 0 ->
          Array.append cfg.worker_argv
            [| "--die-after-cells"; string_of_int n |]
        | _ -> cfg.worker_argv
      in
      let stdin_r, stdin_w = Unix.pipe () in
      let stdout_r, stdout_w = Unix.pipe () in
      match Unix.create_process argv.(0) argv stdin_r stdout_w Unix.stderr with
      | pid ->
        Unix.close stdin_r;
        Unix.close stdout_w;
        (* parent-side ends must not leak into later-spawned siblings,
           or one worker's EOF waits on another's exit *)
        Unix.set_close_on_exec stdin_w;
        Unix.set_close_on_exec stdout_r;
        incr spawned_total;
        stats.workers_spawned <- stats.workers_spawned + 1;
        let w = add_worker ~pid:(Some pid) ~fd_in:stdin_w ~fd_out:stdout_r in
        Log.info cfg.log "worker spawned"
          [ ("worker", Log.I w.w_id); ("pid", Log.I pid) ];
        true
      | exception e ->
        List.iter close_fd [ stdin_r; stdin_w; stdout_r; stdout_w ];
        Log.warn cfg.log "worker spawn failed"
          [ ("err", Log.S (Printexc.to_string e)) ];
        false
    end
  in
  let worker_died ?(timeout = false) reason (w : wrk) =
    if not w.w_closed then begin
      w.w_closed <- true;
      Hashtbl.remove workers w.w_id;
      alive_workers := Hashtbl.length workers;
      close_fd w.w_in;
      if w.w_out <> w.w_in then close_fd w.w_out;
      (match w.w_pid with
      | Some pid ->
        (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
        reap pid
      | None -> ());
      stats.workers_died <- stats.workers_died + 1;
      if timeout then stats.workers_timeouts <- stats.workers_timeouts + 1;
      Log.warn cfg.log "worker died"
        [ ("worker", Log.I w.w_id); ("reason", Log.S reason) ];
      close_dispatch w;
      match w.w_shard with
      | None -> ()
      | Some s ->
        w.w_shard <- None;
        let st = states.(s.is_seed_idx) in
        let live =
          List.filter_map
            (fun (i, (c : Plan.cell_spec)) ->
              if st.ss_results.(i) <> None then None
              else begin
                st.ss_deaths.(i) <- st.ss_deaths.(i) + 1;
                if st.ss_deaths.(i) > cfg.max_retries + 3 then begin
                  let err =
                    "worker died repeatedly while simulating this cell"
                  in
                  emit
                    (E.Sweep.Cell_degraded
                       {
                         mix = c.mix;
                         scheme = c.scheme;
                         attempts = st.ss_attempts.(i);
                         error = err;
                       });
                  finish_cell st i
                    {
                      E.Sweep.mix = c.mix;
                      scheme = c.scheme;
                      ipc = Float.nan;
                      elapsed_s = 0.0;
                      started_s = Unix.gettimeofday () -. t0;
                      worker = w.w_id;
                      telemetry = None;
                      attempts = st.ss_attempts.(i);
                      error = Some err;
                    };
                  None
                end
                else Some (i, c)
              end)
            s.is_cells
        in
        if live <> [] then begin
          stats.shards_requeued <- stats.shards_requeued + 1;
          Queue.push (new_shard s.is_seed_idx live) queue
        end
    end
  in
  let send (w : wrk) msg =
    if w.w_closed then false
    else begin
      let line = Ndjson.line (Protocol.to_worker_to_json msg) in
      let len = String.length line in
      let rec push off =
        if off < len then
          push (off + Unix.write_substring w.w_in line off (len - off))
      in
      match push 0 with
      | () -> true
      | exception Unix.Unix_error _ ->
        worker_died "write failed" w;
        false
    end
  in
  (* --- inbound messages ------------------------------------------------- *)
  let handle_cell_result (w : wrk) c_shard (r : Protocol.cell_result) =
    match Hashtbl.find_opt shard_seed c_shard with
    | None -> Log.warn cfg.log "stale result" [ ("shard", Log.I c_shard) ]
    | Some seed_idx -> (
      let st = states.(seed_idx) in
      (match w.w_shard with
      | Some s when s.is_id = c_shard ->
        s.is_cells <-
          List.filter
            (fun (_, (c : Plan.cell_spec)) ->
              not (c.mix = r.r_mix && c.scheme = r.r_scheme))
            s.is_cells;
        (* progress resets the silence budget *)
        Option.iter
          (fun t -> w.w_deadline <- Unix.gettimeofday () +. t)
          cfg.shard_timeout_s
      | _ -> ());
      match Hashtbl.find_opt st.ss_index (r.r_mix, r.r_scheme) with
      | None ->
        Log.warn cfg.log "result for unknown cell"
          [ ("mix", Log.S r.r_mix); ("scheme", Log.S r.r_scheme) ]
      | Some i ->
        if st.ss_results.(i) <> None then
          (* duplicate delivery after a timeout/requeue race: cells are
             pure functions of their key, so first-wins is exact *)
          ()
        else (
          match r.r_error with
          | None ->
            finish_cell st i
              {
                E.Sweep.mix = r.r_mix;
                scheme = r.r_scheme;
                ipc = r.r_ipc;
                elapsed_s = r.r_elapsed_s;
                started_s = Unix.gettimeofday () -. t0;
                worker = w.w_id;
                telemetry = None;
                attempts = st.ss_attempts.(i) + 1;
                error = None;
              }
          | Some err ->
            st.ss_attempts.(i) <- st.ss_attempts.(i) + 1;
            if st.ss_attempts.(i) <= cfg.max_retries then begin
              stats.cells_retried <- stats.cells_retried + 1;
              (match trace_ctx with
              | Some (c, trace, root, _) ->
                ignore
                  (Span.record c ~trace ~parent:root ~kind:Span.Retry
                     ~name:(r.r_mix ^ "/" ^ r.r_scheme)
                     ~lane:"coordinator" ~start_s:(Span.now c) ~dur_s:0.0 ())
              | None -> ());
              emit
                (E.Sweep.Cell_retried
                   {
                     mix = r.r_mix;
                     scheme = r.r_scheme;
                     attempt = st.ss_attempts.(i);
                     error = err;
                   });
              Queue.push
                (new_shard seed_idx
                   [ (i, { Plan.mix = r.r_mix; scheme = r.r_scheme }) ])
                queue
            end
            else begin
              emit
                (E.Sweep.Cell_degraded
                   {
                     mix = r.r_mix;
                     scheme = r.r_scheme;
                     attempts = st.ss_attempts.(i);
                     error = err;
                   });
              finish_cell st i
                {
                  E.Sweep.mix = r.r_mix;
                  scheme = r.r_scheme;
                  ipc = Float.nan;
                  elapsed_s = r.r_elapsed_s;
                  started_s = Unix.gettimeofday () -. t0;
                  worker = w.w_id;
                  telemetry = None;
                  attempts = st.ss_attempts.(i);
                  error = Some err;
                }
            end))
  in
  (* The live-stats reply for [vliwsim top]: same ["reply":"stats"]
     shape as the service daemon's, tagged ["kind":"dist"]. *)
  let stats_json () =
    let num n = J.Num (float_of_int n) in
    let worker_rows =
      Hashtbl.fold
        (fun _ w acc ->
          if w.w_pid = None && not w.w_ready then acc (* stats monitors *)
          else
            J.Obj
              [
                ("worker", num w.w_id);
                ("ready", J.Bool w.w_ready);
                ( "cells",
                  num
                    (match w.w_shard with
                    | Some s -> List.length s.is_cells
                    | None -> 0) );
              ]
            :: acc)
        workers []
    in
    let latency =
      match cfg.tracer with
      | None -> []
      | Some c ->
        [
          ( "latency",
            J.Obj
              (List.map
                 (fun (k, v) -> (k, J.Num v))
                 (Span.latency_gauges (Span.spans c))) );
        ]
    in
    J.Obj
      ([
         ("reply", J.Str "stats");
         ("kind", J.Str "dist");
         ("completed", num !completed);
         ("total", num total);
         ("queue_depth", num (Queue.length queue));
         ("wall_s", J.Num (Unix.gettimeofday () -. t0));
         ("workers", J.List worker_rows);
         ( "counters",
           J.Obj (List.map (fun (k, v) -> (k, num v)) (counters_list stats)) );
       ]
      @ latency)
  in
  let reply_line (w : wrk) doc =
    let line = Ndjson.line doc in
    let len = String.length line in
    try
      let rec push off =
        if off < len then
          push (off + Unix.write_substring w.w_in line off (len - off))
      in
      push 0
    with Unix.Unix_error _ -> ()
  in
  let handle_msg (w : wrk) = function
    | Protocol.Ready _ ->
      if (not w.w_ready) && w.w_pid = None then
        stats.workers_attached <- stats.workers_attached + 1;
      w.w_ready <- true
    | Protocol.Query_stats ->
      (* a monitor, not a worker: answer and drop the connection *)
      reply_line w (stats_json ());
      drop_peer w
    | Protocol.Cell { c_shard; c_result } -> handle_cell_result w c_shard c_result
    | Protocol.Shard_done { d_shard; d_spans } -> (
      match w.w_shard with
      | Some s when s.is_id = d_shard ->
        (match trace_ctx with
        | Some (c, _, _, _) ->
          (* worker child spans merge under this worker's lane *)
          let lane = Printf.sprintf "worker %d" w.w_id in
          List.iter (fun sp -> Span.add c { sp with Span.lane }) d_spans
        | None -> ());
        close_dispatch w;
        w.w_shard <- None;
        w.w_deadline <- infinity;
        stats.shards_completed <- stats.shards_completed + 1;
        let st = states.(s.is_seed_idx) in
        let leftover =
          List.filter (fun (i, _) -> st.ss_results.(i) = None) s.is_cells
        in
        if leftover <> [] then begin
          (* a healthy worker skipped cells: re-queue, no death charged *)
          stats.shards_requeued <- stats.shards_requeued + 1;
          Queue.push (new_shard s.is_seed_idx leftover) queue
        end
      | _ -> ())
  in
  let read_worker (w : wrk) =
    let buf = Bytes.create 65536 in
    match Unix.read w.w_out buf 0 (Bytes.length buf) with
    | 0 ->
      ignore (Ndjson.close w.w_reader);
      worker_died "eof" w
    | n ->
      List.iter
        (fun line ->
          if not w.w_closed then
            match line with
            | Ok doc -> (
              match Protocol.from_worker_of_json doc with
              | Ok msg -> handle_msg w msg
              | Error e -> worker_died ("protocol error: " ^ e) w)
            | Error framing ->
              worker_died ("framing error: " ^ Ndjson.error_message framing) w)
        (Ndjson.feed w.w_reader ~len:n (Bytes.unsafe_to_string buf))
    | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
      worker_died "read failed" w
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  in
  (* --- listeners -------------------------------------------------------- *)
  let listeners = ref [] in
  Option.iter
    (fun path ->
      (match Unix.stat path with
      | { Unix.st_kind = Unix.S_SOCK; _ } -> Unix.unlink path
      | _ -> ()
      | exception Unix.Unix_error (Unix.ENOENT, _, _) -> ());
      let dir = Filename.dirname path in
      if dir <> "." && not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      (try
         Unix.bind fd (Unix.ADDR_UNIX path);
         Unix.listen fd 16
       with e ->
         Unix.close fd;
         raise e);
      listeners := fd :: !listeners;
      Log.info cfg.log "listening" [ ("socket", Log.S path) ])
    cfg.listen_socket;
  Option.iter
    (fun port ->
      let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
      (try
         Unix.setsockopt fd Unix.SO_REUSEADDR true;
         Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
         Unix.listen fd 16
       with e ->
         Unix.close fd;
         raise e);
      listeners := fd :: !listeners;
      Log.info cfg.log "listening"
        [ ("tcp", Log.S (Printf.sprintf "127.0.0.1:%d" port)) ])
    cfg.listen_tcp;
  (* An accepted peer may be a worker or a [vliwsim top] monitor; it is
     only counted as attached once it greets with Ready. *)
  let accept fd =
    match Unix.accept fd with
    | cfd, _addr ->
      let w = add_worker ~pid:None ~fd_in:cfd ~fd_out:cfd in
      Log.info cfg.log "peer attached" [ ("worker", Log.I w.w_id) ]
    | exception Unix.Unix_error _ -> ()
  in
  (* pre-connected transports join the fleet before the loop starts *)
  List.iter
    (fun fd ->
      let w = add_worker ~pid:None ~fd_in:fd ~fd_out:fd in
      Log.info cfg.log "peer attached"
        [ ("worker", Log.I w.w_id); ("preconnected", Log.B true) ])
    cfg.attached;
  (* --- scheduling ------------------------------------------------------- *)
  let dispatch () =
    List.iter
      (fun w ->
        if
          (not w.w_closed) && w.w_ready && w.w_shard = None
          && not (Queue.is_empty queue)
        then begin
          let s = Queue.pop queue in
          (* Allocate the shard + dispatch span ids up front: the
             worker's child spans reference the dispatch id, so it must
             cross the wire with the assign. The spans themselves are
             recorded when the dispatch closes. *)
          let a_trace, w_trace =
            match trace_ctx with
            | None -> (None, None)
            | Some (c, trace, _root, _) ->
              let shard_span = Span.fresh_id c in
              let disp_span = Span.fresh_id c in
              ( Some { Protocol.t_trace = trace; t_parent = Some disp_span },
                Some (shard_span, disp_span, Span.now c) )
          in
          let assign =
            {
              Protocol.a_shard = s.is_id;
              a_scale = scale_str;
              a_seed = states.(s.is_seed_idx).ss_seed;
              a_cells = List.map snd s.is_cells;
              a_trace;
            }
          in
          if send w (Protocol.Assign assign) then begin
            w.w_shard <- Some s;
            (match (trace_ctx, w_trace) with
            | Some (c, trace, _, _), Some (shard_span, _, t_disp) ->
              ignore
                (Span.record c ~trace ~parent:shard_span ~kind:Span.Queue_wait
                   ~name:(Printf.sprintf "shard %d" s.is_id)
                   ~lane:"coordinator" ~start_s:s.is_born
                   ~dur_s:(t_disp -. s.is_born) ())
            | _ -> ());
            w.w_trace <- w_trace;
            w.w_deadline <-
              (match cfg.shard_timeout_s with
              | Some t -> Unix.gettimeofday () +. t
              | None -> infinity);
            stats.shards_dispatched <- stats.shards_dispatched + 1
          end
          else Queue.push s queue (* send marked the worker dead *)
        end)
      (snapshot ())
  in
  let maintain () =
    let now = Unix.gettimeofday () in
    List.iter
      (fun w ->
        if (not w.w_closed) && w.w_deadline < now then
          worker_died ~timeout:true "shard timeout" w)
      (snapshot ());
    let keep_spawning = ref true in
    while
      !keep_spawning
      && Hashtbl.length workers < cfg.workers
      && not (Queue.is_empty queue)
    do
      keep_spawning := spawn_worker ()
    done
  in
  let stuck () =
    !completed < total && Hashtbl.length workers = 0 && !listeners = []
  in
  (* --- main loop -------------------------------------------------------- *)
  let cleanup () =
    List.iter close_fd !listeners;
    listeners := [];
    Option.iter
      (fun path -> try Unix.unlink path with Unix.Unix_error _ -> ())
      cfg.listen_socket;
    List.iter
      (fun w ->
        if not w.w_closed then begin
          w.w_closed <- true;
          close_fd w.w_in;
          if w.w_out <> w.w_in then close_fd w.w_out;
          match w.w_pid with
          | Some pid ->
            (try Unix.kill pid Sys.sigkill with Unix.Unix_error _ -> ());
            reap pid
          | None -> ()
        end)
      (snapshot ());
    Hashtbl.reset workers
  in
  Fun.protect ~finally:cleanup (fun () ->
      if !completed < total then
        for _ = 1 to cfg.workers do
          ignore (spawn_worker ())
        done;
      while !completed < total do
        maintain ();
        if stuck () then
          failwith "dist: no workers available and none can be spawned";
        dispatch ();
        let wfds = Hashtbl.fold (fun _ w acc -> w.w_out :: acc) workers [] in
        (match Unix.select (!listeners @ wfds) [] [] 0.2 with
        | ready, _, _ ->
          List.iter
            (fun fd ->
              if List.mem fd !listeners then accept fd
              else
                match
                  Hashtbl.fold
                    (fun _ w acc -> if w.w_out = fd then Some w else acc)
                    workers None
                with
                | Some w -> read_worker w
                | None -> ())
            ready
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ())
      done;
      (* orderly shutdown: Quit, close (EOF doubles as quit), reap *)
      List.iter
        (fun w ->
          (* a rival worker may have finished this worker's cells via a
             requeue race; its dispatch span still has to close *)
          close_dispatch w;
          if send w Protocol.Quit then begin
            w.w_closed <- true;
            Hashtbl.remove workers w.w_id;
            close_fd w.w_in;
            if w.w_out <> w.w_in then close_fd w.w_out;
            Option.iter reap w.w_pid
          end)
        (snapshot ()));
  let wall_s = Unix.gettimeofday () -. t0 in
  (match trace_ctx with
  | Some (c, trace, root, t_start) ->
    Span.add c
      {
        Span.trace;
        id = root;
        parent = None;
        kind = Span.Submit;
        name = "dist sweep";
        lane = "coordinator";
        start_s = t_start;
        dur_s = Span.now c -. t_start;
      }
  | None -> ());
  emit (E.Sweep.Sweep_finished { total; degraded = !degraded_total; wall_s });
  {
    d_scheme_names = scheme_names;
    d_mix_names = mix_names;
    d_grids =
      Array.to_list
        (Array.map
           (fun st ->
             ( st.ss_seed,
               Array.map
                 (function
                   | Some c -> c
                   | None -> assert false (* loop exits at completed = total *))
                 (if n_cells = 0 then [||] else st.ss_results) ))
           states);
    d_wall_s = wall_s;
    d_stats = stats;
  }
