(** Pure shard planner for distributed sweeps.

    A shard is the coordinator's dispatch unit: a contiguous run of
    mix-major (mix, scheme) cells of one replicate's grid. Cells of the
    same mix stay adjacent, so a worker holding a whole shard compiles
    each mix at most once ({!Vliw_experiments.Sweep.prepare_row} is the
    expensive step it amortizes).

    The planner is pure and total: the multiset union of every shard's
    cells equals seeds x mixes x schemes exactly — no cell is dropped,
    none duplicated, for any grid shape, worker count and shard size
    (property-tested). All scheduling policy (who runs which shard,
    re-queuing on worker death) lives in {!Coordinator}; re-planning a
    partial grid is just [make] over the remaining cells' names. *)

type cell_spec = { mix : string; scheme : string }

type shard = {
  shard_id : int;  (** dense, 0-based, in plan order *)
  seed : int64;  (** master seed of the replicate the cells belong to *)
  cells : cell_spec list;  (** non-empty; mix-major order *)
}

val default_shard_size : workers:int -> cells_per_seed:int -> int
(** Aim for ~4 shards per worker per replicate, clamped to [1 ..
    cells_per_seed] — enough slack for work stealing when one shard
    runs long, without drowning the wire in one-cell messages. *)

val make :
  ?shard_size:int ->
  workers:int ->
  seeds:int64 list ->
  mix_names:string list ->
  scheme_names:string list ->
  unit ->
  shard list
(** Chunk every seed's mix-major cell list into shards of [shard_size]
    (default {!default_shard_size}; the last shard of a seed may be
    shorter). Shard ids are dense across seeds in plan order. Raises
    [Invalid_argument] when [shard_size < 1] or [workers < 1]. An empty
    grid (no seeds, mixes or schemes) plans as []. *)

val total_cells : shard list -> int

val cells_of_grid :
  mix_names:string list -> scheme_names:string list -> cell_spec list
(** The mix-major cell list of one replicate's grid — what each seed's
    shards are chunked from. *)
