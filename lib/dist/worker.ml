module E = Vliw_experiments
module Ndjson = Vliw_util.Ndjson
module Log = Vliw_util.Log
module Span = Vliw_telemetry.Span

exception Killed

(* The coordinator may close the transport the instant the last cell
   result lands — before reading a trailing Shard_done. A write into a
   closed transport is an orderly end of service, not a fault. *)
exception Hangup

let write_line fd doc =
  let line = Ndjson.line doc in
  let len = String.length line in
  let rec push off =
    if off < len then push (off + Unix.write_substring fd line off (len - off))
  in
  try push 0
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    raise Hangup

(* Span ids must be deterministic per (seed, shard) so a traced rerun
   produces the same tree; only the timestamps come from [clock]. *)
let tracer_seed ~seed ~shard =
  Int64.logxor seed (Int64.mul 0x9e3779b97f4a7c15L (Int64.of_int (shard + 1)))

let serve ?die_after_cells ?(log = Log.null) ?(clock = Unix.gettimeofday)
    ~input ~output () =
  (* Prepared rows are the expensive step (program generation +
     compile); cache them like the service daemon does — bounded by
     wholesale flush, no eviction order needed. Per-invocation, so
     in-process test workers running as sibling domains never share
     mutable state. *)
  let prepared_cache : (string * int64 * string, E.Sweep.prepared_row) Hashtbl.t
      =
    Hashtbl.create 64
  in
  (* Trace context of the assign being served: collector, trace id, and
     the coordinator's dispatch span its children hang under. *)
  let tracer : (Span.collector * int64 * int64 option) option ref = ref None in
  let lane = Printf.sprintf "pid %d" (Unix.getpid ()) in
  let traced kind name f =
    match !tracer with
    | None -> f ()
    | Some (c, trace, parent) ->
      let t0 = clock () in
      let finish () =
        ignore
          (Span.record c ~trace ?parent ~kind ~name ~lane ~start_s:t0
             ~dur_s:(clock () -. t0) ())
      in
      let v =
        try f ()
        with e ->
          finish ();
          raise e
      in
      finish ();
      v
  in
  let prepared_row ~scale ~seed mix =
    let key = (E.Common.scale_name scale, seed, mix) in
    match Hashtbl.find_opt prepared_cache key with
    | Some pr -> pr
    | None ->
      if Hashtbl.length prepared_cache >= 64 then Hashtbl.reset prepared_cache;
      let pr =
        traced Span.Prepare_row mix (fun () -> E.Sweep.prepare_row ~scale ~seed mix)
      in
      Hashtbl.add prepared_cache key pr;
      pr
  in
  let simulate ~scale ~seed (c : Plan.cell_spec) =
    let pr = prepared_row ~scale ~seed c.mix in
    let column = E.Sweep.static_column (Vliw_merge.Catalog.find_exn c.scheme) in
    E.Sweep.simulate_prepared pr column
  in
  let completed = ref 0 in
  let emit msg = write_line output (Protocol.from_worker_to_json msg) in
  let run_cell ~shard ~scale ~seed (c : Plan.cell_spec) =
    let t0 = Unix.gettimeofday () in
    let result =
      match scale with
      | None ->
        {
          Protocol.r_mix = c.mix;
          r_scheme = c.scheme;
          r_ipc = Float.nan;
          r_elapsed_s = 0.0;
          r_error = Some "unknown scale in shard assignment";
        }
      | Some scale -> (
        match
          traced Span.Simulate_cell
            (c.mix ^ "/" ^ c.scheme)
            (fun () -> simulate ~scale ~seed c)
        with
        | ipc ->
          {
            Protocol.r_mix = c.mix;
            r_scheme = c.scheme;
            r_ipc = ipc;
            r_elapsed_s = Unix.gettimeofday () -. t0;
            r_error = None;
          }
        | exception e ->
          {
            Protocol.r_mix = c.mix;
            r_scheme = c.scheme;
            r_ipc = Float.nan;
            r_elapsed_s = Unix.gettimeofday () -. t0;
            r_error = Some (Printexc.to_string e);
          })
    in
    emit (Protocol.Cell { c_shard = shard; c_result = result });
    incr completed;
    match die_after_cells with
    | Some n when !completed >= n ->
      Log.warn log "fault injection: dying" [ ("cells", Log.I !completed) ];
      raise Killed
    | _ -> ()
  in
  let handle = function
    | Protocol.Quit -> false
    | Protocol.Assign a ->
      let scale = E.Common.scale_of_name a.a_scale in
      tracer :=
        (match a.a_trace with
        | None -> None
        | Some { t_trace; t_parent } ->
          let seed = tracer_seed ~seed:a.a_seed ~shard:a.a_shard in
          Some (Span.collector ~clock ~seed (), t_trace, t_parent));
      List.iter (run_cell ~shard:a.a_shard ~scale ~seed:a.a_seed) a.a_cells;
      let d_spans =
        match !tracer with None -> [] | Some (c, _, _) -> Span.spans c
      in
      tracer := None;
      emit (Protocol.Shard_done { d_shard = a.a_shard; d_spans });
      true
  in
  try
    emit (Protocol.Ready { pid = Unix.getpid () });
    let reader = Ndjson.reader () in
    let buf = Bytes.create 65536 in
    let running = ref true in
    while !running do
      match Unix.read input buf 0 (Bytes.length buf) with
      | 0 -> running := false (* coordinator gone: orderly exit *)
      | n ->
        List.iter
          (fun line ->
            match line with
            | Ok doc -> (
              match Protocol.to_worker_of_json doc with
              | Ok msg -> if not (handle msg) then running := false
              | Error e ->
                Log.error log "protocol error" [ ("err", Log.S e) ];
                running := false)
            | Error framing ->
              Log.error log "framing error"
                [ ("err", Log.S (Ndjson.error_message framing)) ];
              running := false)
          (Ndjson.feed reader ~len:n (Bytes.unsafe_to_string buf))
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        running := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  with Hangup -> Log.info log "coordinator closed the transport: orderly exit" []
