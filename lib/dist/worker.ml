module E = Vliw_experiments
module Ndjson = Vliw_util.Ndjson

exception Killed

(* The coordinator may close the transport the instant the last cell
   result lands — before reading a trailing Shard_done. A write into a
   closed transport is an orderly end of service, not a fault. *)
exception Hangup

let write_line fd doc =
  let line = Ndjson.line doc in
  let len = String.length line in
  let rec push off =
    if off < len then push (off + Unix.write_substring fd line off (len - off))
  in
  try push 0
  with Unix.Unix_error ((Unix.EPIPE | Unix.ECONNRESET | Unix.EBADF), _, _) ->
    raise Hangup

let serve ?die_after_cells ?(log = fun (_ : string) -> ()) ~input ~output () =
  (* Prepared rows are the expensive step (program generation +
     compile); cache them like the service daemon does — bounded by
     wholesale flush, no eviction order needed. Per-invocation, so
     in-process test workers running as sibling domains never share
     mutable state. *)
  let prepared_cache : (string * int64 * string, E.Sweep.prepared_row) Hashtbl.t
      =
    Hashtbl.create 64
  in
  let prepared_row ~scale ~seed mix =
    let key = (E.Common.scale_name scale, seed, mix) in
    match Hashtbl.find_opt prepared_cache key with
    | Some pr -> pr
    | None ->
      if Hashtbl.length prepared_cache >= 64 then Hashtbl.reset prepared_cache;
      let pr = E.Sweep.prepare_row ~scale ~seed mix in
      Hashtbl.add prepared_cache key pr;
      pr
  in
  let simulate ~scale ~seed (c : Plan.cell_spec) =
    let pr = prepared_row ~scale ~seed c.mix in
    let column = E.Sweep.static_column (Vliw_merge.Catalog.find_exn c.scheme) in
    E.Sweep.simulate_prepared pr column
  in
  let completed = ref 0 in
  let emit msg = write_line output (Protocol.from_worker_to_json msg) in
  let run_cell ~shard ~scale ~seed (c : Plan.cell_spec) =
    let t0 = Unix.gettimeofday () in
    let result =
      match scale with
      | None ->
        {
          Protocol.r_mix = c.mix;
          r_scheme = c.scheme;
          r_ipc = Float.nan;
          r_elapsed_s = 0.0;
          r_error = Some "unknown scale in shard assignment";
        }
      | Some scale -> (
        match simulate ~scale ~seed c with
        | ipc ->
          {
            Protocol.r_mix = c.mix;
            r_scheme = c.scheme;
            r_ipc = ipc;
            r_elapsed_s = Unix.gettimeofday () -. t0;
            r_error = None;
          }
        | exception e ->
          {
            Protocol.r_mix = c.mix;
            r_scheme = c.scheme;
            r_ipc = Float.nan;
            r_elapsed_s = Unix.gettimeofday () -. t0;
            r_error = Some (Printexc.to_string e);
          })
    in
    emit (Protocol.Cell { c_shard = shard; c_result = result });
    incr completed;
    match die_after_cells with
    | Some n when !completed >= n ->
      log (Printf.sprintf "fault injection: dying after %d cell(s)" !completed);
      raise Killed
    | _ -> ()
  in
  let handle = function
    | Protocol.Quit -> false
    | Protocol.Assign a ->
      let scale = E.Common.scale_of_name a.a_scale in
      List.iter (run_cell ~shard:a.a_shard ~scale ~seed:a.a_seed) a.a_cells;
      emit (Protocol.Shard_done { d_shard = a.a_shard });
      true
  in
  try
    emit (Protocol.Ready { pid = Unix.getpid () });
    let reader = Ndjson.reader () in
    let buf = Bytes.create 65536 in
    let running = ref true in
    while !running do
      match Unix.read input buf 0 (Bytes.length buf) with
      | 0 -> running := false (* coordinator gone: orderly exit *)
      | n ->
        List.iter
          (fun line ->
            match line with
            | Ok doc -> (
              match Protocol.to_worker_of_json doc with
              | Ok msg -> if not (handle msg) then running := false
              | Error e ->
                log ("protocol error: " ^ e);
                running := false)
            | Error framing ->
              log ("framing error: " ^ Ndjson.error_message framing);
              running := false)
          (Ndjson.feed reader ~len:n (Bytes.unsafe_to_string buf))
      | exception Unix.Unix_error ((Unix.ECONNRESET | Unix.EPIPE), _, _) ->
        running := false
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    done
  with Hangup -> log "coordinator closed the transport: orderly exit"
