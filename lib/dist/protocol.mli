(** Coordinator/worker wire protocol: NDJSON, one message per line.

    The codec follows the {!Vliw_service.Request} conventions — an op
    tag, seeds as hex strings (JSON numbers are floats and cannot carry
    64 bits) — and, like the ledger and the checkpoint journal, every
    IPC crosses the wire as the hex image of its IEEE-754 bits. That is
    what makes the merged grid bit-identical to a single-process run:
    no float ever round-trips through decimal.

    Decoding is strict: a malformed or unknown message is an [Error]
    the receiving side surfaces (the coordinator degrades the worker,
    the worker exits). There is no version negotiation — both ends are
    the same binary; the optional trace fields below default to
    no-trace, so a pre-tracing peer still parses every message. *)

(** Trace context piggybacked on an assign: the coordinator's trace id
    and the dispatch span worker child spans hang under. On the wire as
    optional ["trace"]/["parent"] hex fields. *)
type trace = { t_trace : int64; t_parent : int64 option }

type assign = {
  a_shard : int;  (** shard id, echoed in every result *)
  a_scale : string;  (** {!Vliw_experiments.Common.scale_name} *)
  a_seed : int64;  (** master seed; workers derive row seeds from it *)
  a_cells : Plan.cell_spec list;
  a_trace : trace option;  (** [None] = untraced (the wire default) *)
}

type to_worker =
  | Assign of assign
  | Quit  (** orderly shutdown; the worker exits 0 *)

type cell_result = {
  r_mix : string;
  r_scheme : string;
  r_ipc : float;  (** [nan] when [r_error <> None]; wired as raw bits *)
  r_elapsed_s : float;  (** worker-side simulation wall clock *)
  r_error : string option;  (** a failed attempt, for the retry machinery *)
}

type from_worker =
  | Ready of { pid : int }  (** greeting; dispatch may start *)
  | Cell of { c_shard : int; c_result : cell_result }
  | Shard_done of { d_shard : int; d_spans : Vliw_telemetry.Span.t list }
      (** [d_spans] carries the worker's child spans for a traced
          assign (wired only when non-empty, as a ["spans"] list). *)
  | Query_stats
      (** A live-stats probe from [vliwsim top], not a worker: the
          coordinator replies with one stats JSON line and drops the
          connection. Decoded from [{"ev":"stats"}] and, for monitor
          compatibility with the service protocol, [{"op":"stats"}]. *)

val to_worker_to_json : to_worker -> Vliw_util.Json.t
val to_worker_of_json : Vliw_util.Json.t -> (to_worker, string) result
val from_worker_to_json : from_worker -> Vliw_util.Json.t
val from_worker_of_json : Vliw_util.Json.t -> (from_worker, string) result
