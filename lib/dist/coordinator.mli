(** The coordinator: shard the (mix x scheme x replicate) grid, drive a
    fleet of workers, survive their deaths, and merge one grid per
    replicate that is bit-identical to a single-process
    {!Vliw_experiments.Sweep.run_cells} run.

    Workers come from two transports, freely mixed: processes spawned
    locally over pipe pairs ([worker_argv], normally
    [vliwsim worker]), and pre-connected descriptors ([attached], plus
    Unix/TCP listeners that accept [vliwsim worker --connect] peers).
    Dispatch is pull-based — an idle ready worker claims the next
    queued shard — so a slow host simply takes fewer shards.

    Fault model: a worker that dies or goes silent past
    [shard_timeout_s] forfeits its in-flight shard; the unreported
    cells are re-queued (and the fleet topped back up to [workers] by
    respawning, budget permitting). A cell whose {e simulation} fails
    is retried up to [max_retries] times, then degraded to [nan] —
    the same per-cell machinery as the in-process sweep. Because every
    cell is a pure function of (scale, master seed, mix, scheme),
    neither retries nor re-queuing can change results. *)

type stats = {
  mutable cells_simulated : int;
  mutable cells_restored : int;  (** resumed from a checkpoint journal *)
  mutable cells_retried : int;  (** failed simulation attempts re-queued *)
  mutable cells_degraded : int;
  mutable shards_dispatched : int;
  mutable shards_completed : int;
  mutable shards_requeued : int;  (** partial shards re-queued after a death *)
  mutable workers_spawned : int;
  mutable workers_attached : int;
  mutable workers_died : int;
  mutable workers_timeouts : int;  (** deaths declared by [shard_timeout_s] *)
}

val counters_list : stats -> (string * int) list
(** The [dist.*] counter snapshot (sorted), ledger/OpenMetrics-ready. *)

type config = {
  workers : int;  (** local worker processes to keep alive *)
  worker_argv : string array;
      (** argv for spawned workers ([[| exe; "worker" |]]); [[||]]
          disables spawning (attached/listener transports only) *)
  attached : Unix.file_descr list;
      (** pre-connected worker transports (same fd both directions) *)
  listen_socket : string option;  (** accept [vliwsim worker --connect] *)
  listen_tcp : int option;  (** loopback TCP listener, same role *)
  shard_size : int option;  (** cells per shard; [None] = planner default *)
  max_retries : int;  (** per-cell budget before degrading, as in Sweep *)
  shard_timeout_s : float option;
      (** silence budget per assigned shard before the worker is
          declared dead; [None] = wait forever *)
  checkpoint : string option;
      (** journal path ({!Vliw_experiments.Checkpoint} format, so exp
          and dist journals interchange); multi-replicate runs suffix
          it per seed *)
  resume : bool;
  die_first_worker_after : int option;
      (** fault injection: the first spawned worker gets
          [--die-after-cells N] appended to its argv *)
  log : Vliw_util.Log.t;
      (** structured diagnostics (worker ids, shard ids, reasons as
          fields); default {!Vliw_util.Log.null} *)
  on_event : (Vliw_experiments.Sweep.event -> unit) option;
      (** the coordinator synthesizes the same event stream as
          {!Vliw_experiments.Sweep.run_cells} (minus [Cell_started],
          which only the worker could observe) *)
  tracer : Vliw_telemetry.Span.collector option;
      (** when set, the run records a span tree — a [submit] root, per
          shard a [shard] span wrapping [queue_wait] + [dispatch], the
          workers' [prepare_row]/[simulate_cell] children merged back
          under their dispatch span, and [retry] markers — and answers
          stats queries with per-kind latency quantiles. Observation
          only: grids are bit-identical with tracing on or off. *)
}

val default_config : config
(** No transports, [workers = 0], no retries/timeout/checkpoint,
    silent. At least one transport (workers + argv, attached, or a
    listener) must be configured or {!run} raises [Failure]. *)

type result = {
  d_scheme_names : string list;
  d_mix_names : string list;
  d_grids : (int64 * Vliw_experiments.Sweep.cell array) list;
      (** one mix-major grid per seed, in input order — each
          bit-identical to the equivalent [Sweep.run_cells] *)
  d_wall_s : float;
  d_stats : stats;
}

val run :
  ?scale:Vliw_experiments.Common.scale ->
  ?seed:int64 ->
  ?seeds:int64 list ->
  ?scheme_names:string list ->
  ?mix_names:string list ->
  config ->
  result
(** Defaults: the fig10 scheme set (every catalog scheme except "ST"),
    all Table 2 mixes, [seeds = [seed]], [seed = Common.default_seed].
    Raises [Invalid_argument] on unknown mix/scheme names and [Failure]
    when no transport can make progress. *)
