(* Shard planning is deliberately dumb: deterministic mix-major
   chunking, no load model. Balance comes from granularity (several
   shards per worker) plus the coordinator's pull-based dispatch —
   a slow worker simply claims fewer shards. *)

type cell_spec = { mix : string; scheme : string }

type shard = {
  shard_id : int;
  seed : int64;
  cells : cell_spec list;
}

let default_shard_size ~workers ~cells_per_seed =
  if cells_per_seed <= 0 then 1
  else max 1 (min cells_per_seed (cells_per_seed / (max 1 workers * 4)))

let cells_of_grid ~mix_names ~scheme_names =
  List.concat_map
    (fun mix -> List.map (fun scheme -> { mix; scheme }) scheme_names)
    mix_names

let chunk size xs =
  let rec go acc cur n = function
    | [] -> List.rev (if cur = [] then acc else List.rev cur :: acc)
    | x :: rest ->
      if n = size then go (List.rev cur :: acc) [ x ] 1 rest
      else go acc (x :: cur) (n + 1) rest
  in
  go [] [] 0 xs

let make ?shard_size ~workers ~seeds ~mix_names ~scheme_names () =
  if workers < 1 then invalid_arg "Plan.make: workers < 1";
  let cells = cells_of_grid ~mix_names ~scheme_names in
  let size =
    match shard_size with
    | Some s when s < 1 -> invalid_arg "Plan.make: shard_size < 1"
    | Some s -> s
    | None -> default_shard_size ~workers ~cells_per_seed:(List.length cells)
  in
  let next = ref 0 in
  List.concat_map
    (fun seed ->
      List.map
        (fun cs ->
          let shard_id = !next in
          incr next;
          { shard_id; seed; cells = cs })
        (chunk size cells))
    seeds

let total_cells shards =
  List.fold_left (fun acc s -> acc + List.length s.cells) 0 shards
