(** The worker side of a distributed sweep: a single-domain loop that
    reads {!Protocol.to_worker} messages from a transport, simulates
    each assigned cell with {!Vliw_experiments.Sweep.simulate_prepared}
    (bit-identical to the in-process sweep by construction) and streams
    one {!Protocol.from_worker} line per cell back, so the coordinator
    gets live progress rather than a per-shard lump.

    A worker is deliberately serial: the coordinator owns parallelism
    (many workers), which keeps worker memory bounded and makes a
    worker death lose at most one shard. Cell failures never kill the
    worker — each simulation attempt is trapped and reported as an
    error result for the coordinator's retry/degrade machinery. *)

exception Killed
(** Raised by {!serve} when the [die_after_cells] fault-injection
    budget is exhausted: the worker stops abruptly mid-shard, without a
    [Shard_done], exactly like a crash. The CLI maps it to a non-zero
    exit; in-process test workers catch it and close their transport. *)

val serve :
  ?die_after_cells:int ->
  ?log:(string -> unit) ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  unit
(** Run the worker loop until [Quit], EOF or a broken transport.
    [input] and [output] may be the same descriptor (socket transport)
    or a pipe pair (spawned via [vliwsim worker]). [die_after_cells n]
    raises {!Killed} immediately after the [n]-th cell result is
    written (n >= 1). [log] (default silent) receives diagnostics;
    protocol lines are the only bytes ever written to [output]. *)
