(** The worker side of a distributed sweep: a single-domain loop that
    reads {!Protocol.to_worker} messages from a transport, simulates
    each assigned cell with {!Vliw_experiments.Sweep.simulate_prepared}
    (bit-identical to the in-process sweep by construction) and streams
    one {!Protocol.from_worker} line per cell back, so the coordinator
    gets live progress rather than a per-shard lump.

    A worker is deliberately serial: the coordinator owns parallelism
    (many workers), which keeps worker memory bounded and makes a
    worker death lose at most one shard. Cell failures never kill the
    worker — each simulation attempt is trapped and reported as an
    error result for the coordinator's retry/degrade machinery. *)

exception Killed
(** Raised by {!serve} when the [die_after_cells] fault-injection
    budget is exhausted: the worker stops abruptly mid-shard, without a
    [Shard_done], exactly like a crash. The CLI maps it to a non-zero
    exit; in-process test workers catch it and close their transport. *)

val serve :
  ?die_after_cells:int ->
  ?log:Vliw_util.Log.t ->
  ?clock:(unit -> float) ->
  input:Unix.file_descr ->
  output:Unix.file_descr ->
  unit ->
  unit
(** Run the worker loop until [Quit], EOF or a broken transport.
    [input] and [output] may be the same descriptor (socket transport)
    or a pipe pair (spawned via [vliwsim worker]). [die_after_cells n]
    raises {!Killed} immediately after the [n]-th cell result is
    written (n >= 1). [log] (default {!Vliw_util.Log.null}) receives
    structured diagnostics; protocol lines are the only bytes ever
    written to [output].

    When an assign carries trace context, the worker records
    [prepare_row] (cache misses only) and [simulate_cell] child spans
    under the coordinator's dispatch span and ships them back on
    [Shard_done]. Span ids derive from the assign's (seed, shard), so a
    traced rerun rebuilds the same tree; [clock] (default
    [Unix.gettimeofday]) stamps them and is injectable for tests.
    Tracing never touches simulation inputs — grids stay bit-identical
    with it on or off. *)
