type entry = { cycle : int; event : Event.t }

type t = {
  buf : entry array;
  mutable next : int;  (* write position *)
  mutable len : int;  (* live entries, <= capacity *)
  mutable dropped : int;
}

let dummy =
  { cycle = -1; event = Event.Issue { threads = []; threads_merged = 0; slots_filled = 0 } }

let create ?(capacity = 65_536) () =
  if capacity <= 0 then invalid_arg "Recorder.create: capacity must be positive";
  { buf = Array.make capacity dummy; next = 0; len = 0; dropped = 0 }

let capacity t = Array.length t.buf

let length t = t.len

let dropped t = t.dropped

let record t ~cycle event =
  let cap = Array.length t.buf in
  if t.len = cap then t.dropped <- t.dropped + 1 else t.len <- t.len + 1;
  t.buf.(t.next) <- { cycle; event };
  t.next <- (t.next + 1) mod cap

let iter t f =
  let cap = Array.length t.buf in
  let first = (t.next - t.len + cap) mod cap in
  for i = 0 to t.len - 1 do
    f t.buf.((first + i) mod cap)
  done

let to_list t =
  let acc = ref [] in
  iter t (fun e -> acc := e :: !acc);
  List.rev !acc

let sink t = Sink.fn (fun ~cycle event -> record t ~cycle event)
