type reject_reason = Conflict | Capacity | Priority

type cache_level = L1i | L1d

type t =
  | Fetch_stall of { thread : int; penalty : int }
  | Merge_reject of { thread : int; reason : reject_reason }
  | Issue of { threads : int list; threads_merged : int; slots_filled : int }
  | Cache_miss of { thread : int; level : cache_level }
  | Bmt_switch of { from_thread : int; to_thread : int }
  | Scheme_switch of { from_scheme : string; to_scheme : string; penalty : int }

let reason_to_string = function
  | Conflict -> "conflict"
  | Capacity -> "capacity"
  | Priority -> "priority"

let level_to_string = function L1i -> "l1i" | L1d -> "l1d"

let name = function
  | Fetch_stall _ -> "fetch_stall"
  | Merge_reject _ -> "merge_reject"
  | Issue _ -> "issue"
  | Cache_miss _ -> "cache_miss"
  | Bmt_switch _ -> "bmt_switch"
  | Scheme_switch _ -> "scheme_switch"

(* Counter key of an event: the event name refined by its discriminating
   payload, so a counting sink needs no per-event special cases. *)
let counter_key = function
  | Fetch_stall _ -> "events.fetch_stall"
  | Merge_reject { reason; _ } -> "events.merge_reject." ^ reason_to_string reason
  | Issue _ -> "events.issue"
  | Cache_miss { level; _ } -> "events.cache_miss." ^ level_to_string level
  | Bmt_switch _ -> "events.bmt_switch"
  | Scheme_switch _ -> "events.scheme_switch"

let args = function
  | Fetch_stall { thread; penalty } ->
    [ ("thread", string_of_int thread); ("penalty", string_of_int penalty) ]
  | Merge_reject { thread; reason } ->
    [ ("thread", string_of_int thread); ("reason", reason_to_string reason) ]
  | Issue { threads; threads_merged; slots_filled } ->
    [
      ("threads", String.concat "+" (List.map string_of_int threads));
      ("threads_merged", string_of_int threads_merged);
      ("slots_filled", string_of_int slots_filled);
    ]
  | Cache_miss { thread; level } ->
    [ ("thread", string_of_int thread); ("level", level_to_string level) ]
  | Bmt_switch { from_thread; to_thread } ->
    [
      ("from", string_of_int from_thread); ("to", string_of_int to_thread);
    ]
  | Scheme_switch { from_scheme; to_scheme; penalty } ->
    [
      ("from", from_scheme);
      ("to", to_scheme);
      ("penalty", string_of_int penalty);
    ]

let pp ppf t =
  Format.fprintf ppf "%s{%s}" (name t)
    (String.concat "; " (List.map (fun (k, v) -> k ^ "=" ^ v) (args t)))
