(** Self-contained HTML dashboard for a ledger run.

    {!render} produces one complete HTML document with zero JavaScript
    and zero external references — all styling inline, every chart
    inline SVG with [<title>] hover tooltips — so the file opens from
    [file://] on an air-gapped machine. Sections: run summary, the
    fig10-style IPC grid as grouped bars (with a data-table fallback),
    horizontal/vertical waste breakdown, stall-attribution tables,
    per-worker sweep timeline, and a cross-run mean-IPC trajectory over
    same-fingerprint ledger records. Light and dark palettes are both
    explicit and swapped by [prefers-color-scheme]. *)

val render : ?runs:Ledger.run list -> Ledger.run -> string
(** [render ~runs r] is the document for run [r]; [runs] (normally the
    whole ledger) feeds the trajectory section, which keeps only records
    sharing [r]'s configuration fingerprint. Sections with no data for
    [r] are omitted. *)
