(** Durable run history: one JSONL record per simulation run.

    Every [vliwsim exp|run|bench] invocation appends a record to
    [_runs/ledger.jsonl] capturing the configuration (scale, seed, jobs,
    git revision, a fingerprint of the sweep shape), the outcome (the
    per-cell IPC grid with IEEE-754 bit images, merged telemetry
    counters, scalar gauges) and the sweep's fault-tolerance stats.
    [vliwsim runs diff] bit-compares two records' grids; the HTML report
    plots the cross-run trajectory from the same store.

    The store is single-writer: appends rewrite the whole file through
    {!Vliw_util.Atomic_io}, so readers never see a torn line, but two
    concurrent appenders can lose one record. Malformed lines are
    skipped on load rather than fatal. *)

type cell = {
  mix : string;
  scheme : string;
  ipc : float;  (** nan for a degraded cell; diffed via its bit image *)
  elapsed_s : float;
  started_s : float;
  worker : int;
  attempts : int;
  degraded : bool;
}

type run = {
  id : string;  (** assigned by {!append} as "r1", "r2", ... *)
  time_s : float;  (** unix epoch seconds when the record was made *)
  cmd : string;  (** "exp", "run" or "bench" *)
  label : string;
  git_rev : string;
  fingerprint : string;
  scale : string;
  seed : int64;
  jobs : int;
  scheme_names : string list;
  mix_names : string list;
  policy : string;
      (** Controller policy of adaptive runs; ["static"] for plain
          sweeps (and for every record written before the field
          existed). Part of the fingerprint when non-static. *)
  wall_s : float;
  cells : cell array;  (** mix-major; may be empty (bench runs) *)
  counters : (string * int) list;
  gauges : (string * float) list;
  retries : int;
  degraded : int;
  timeouts : int;
  resumed : int;
}

val default_dir : string
(** ["_runs"], relative to the working directory. *)

val ledger_path : dir:string -> string

val make :
  ?counters:(string * int) list ->
  ?gauges:(string * float) list ->
  ?cells:cell array ->
  ?policy:string ->
  cmd:string ->
  label:string ->
  scale:string ->
  seed:int64 ->
  jobs:int ->
  scheme_names:string list ->
  mix_names:string list ->
  wall_s:float ->
  unit ->
  run
(** Build a record for the current moment: stamps the time, resolves the
    git revision (["unknown"] outside a work tree), fingerprints the
    configuration and derives retry/degraded stats from [cells] and the
    counter snapshot. The id is empty until {!append} assigns one. *)

val fingerprint_of :
  ?policy:string ->
  scale:string ->
  seed:int64 ->
  scheme_names:string list ->
  mix_names:string list ->
  unit ->
  string
(** FNV-1a hash of the sweep shape; equal fingerprints mean two runs are
    meaningfully diffable. [policy] (default ["static"]) joins the hash
    only when non-static, so fingerprints recorded before adaptive runs
    existed are preserved verbatim, while an adaptive run can never
    collide with a static run over the same grid. *)

val grid_digest : cell array -> string
(** FNV-1a over every cell's (mix, scheme) key and IPC bit image; equal
    digests mean bit-identical grids. *)

val mean_ipc : run -> float
(** Mean over non-nan cells; nan if there are none. *)

val append : dir:string -> run -> run
(** Assign the next id (one past the highest numeric id on file, so ids
    stay unique across {!gc} gaps), persist atomically (creating [dir]
    if needed), and return the record with its id filled in. *)

type gc_report = { kept : run list; dropped : run list }
(** Both in file order; surviving records keep their original ids. *)

val gc : ?dry_run:bool -> dir:string -> unit -> gc_report
(** Compact the ledger: of the records sharing a (configuration
    fingerprint, grid digest) pair, keep only the newest. Records with
    equal fingerprints but {e different} grid bits are never collapsed —
    they are drift evidence. With [dry_run] (default false) the file is
    left untouched; otherwise the survivors are rewritten atomically
    (a no-op when nothing was dropped). *)

type merge_report = { added : run list; skipped : run list }
(** [added] carry their newly assigned target ids; [skipped] are source
    records whose results the target already holds. *)

val merge :
  ?dry_run:bool -> dir:string -> from:string list -> unit -> merge_report
(** Merge other ledgers (e.g. per-worker [_runs] directories from a
    distributed sweep) into [dir], applying {!gc}'s deduplication on
    the way in: a source record whose (fingerprint, grid digest) pair
    is already represented — in the target, or by an earlier source
    record of this merge — is skipped as an identical duplicate, while
    same-fingerprint records with different grid bits always merge
    (drift evidence). Added records keep their content verbatim but
    get fresh target ids. With [dry_run] nothing is written. *)

val load : dir:string -> run list
(** All parseable records in file (= chronological) order; [] if the
    ledger does not exist yet. *)

val find : dir:string -> string -> run option
(** Look up by id; the alias ["latest"] resolves to the newest record. *)

val latest : dir:string -> run option

type drift =
  | Identical  (** every cell bit-identical *)
  | Shape_mismatch of string  (** different cell count or (mix, scheme) layout *)
  | Drift of {
      mix : string;  (** first differing cell, in grid order *)
      scheme : string;
      ipc_a : float;
      ipc_b : float;
      differing : int;  (** total number of differing cells *)
    }

val diff : run -> run -> drift
(** Bit-compare two runs' grids. Attribution is deterministic: the named
    cell is the first differing one in mix-major grid order. *)

val to_json : run -> Vliw_util.Json.t

val of_json : Vliw_util.Json.t -> run option
(** [None] if required fields are missing; unknown fields are ignored
    (forward compatibility with later schema additions). *)
