(** Event sinks: where instrumented code sends its events.

    The disabled path must cost nothing: {!null} is an immediate
    constructor, so both {!enabled} and {!emit} reduce to a single tag
    check and no allocation. Emit sites guard event construction with
    [if Sink.enabled sink then Sink.emit sink ...] so a disabled run
    never even builds the event value — this is what the telemetry
    determinism property relies on being free. *)

type t

val null : t
(** The no-op sink; {!emit} on it is one tag check. *)

val enabled : t -> bool
(** [false] exactly for {!null}. Check this before constructing an
    event to keep the disabled path allocation-free. *)

val emit : t -> cycle:int -> Event.t -> unit

val fn : (cycle:int -> Event.t -> unit) -> t

val both : t -> t -> t
(** Fan out to two sinks (in order); {!null} is the identity. *)
