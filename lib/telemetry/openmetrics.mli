(** OpenMetrics / Prometheus textfile exposition.

    Renders telemetry snapshots and run-level gauges in the text format
    consumed by the node_exporter textfile collector: one HELP + TYPE
    line per family, counters with the [_total] suffix, histograms as
    cumulative [_bucket{le="..."}] / [_sum] / [_count] series, escaped
    label values, and a trailing [# EOF]. {!lint} re-parses an
    exposition so CI can validate output without a prometheus binary. *)

val sanitize : string -> string
(** Map a telemetry dot-name to a legal metric name under the
    ["vliwsim_"] prefix: ["waste.vertical.empty"] becomes
    ["vliwsim_waste_vertical_empty"]. *)

val escape_label_value : string -> string
(** Escape backslash, double-quote and newline for use inside a label
    value literal. *)

val render :
  ?labels:(string * string) list ->
  snapshot:Counters.snapshot ->
  gauges:(string * float) list ->
  unit ->
  string
(** Full exposition: every counter in [snapshot] as a [_total] counter,
    every histogram as bucket/sum/count series, every [gauges] entry as
    a gauge. [labels] are attached to all samples. *)

val of_run : Ledger.run -> string
(** {!render} for a ledger record: its counters and gauges plus derived
    [run_wall_seconds] / [run_jobs] / [run_cells] / [run_ipc_mean]
    gauges, labelled with the run id, command, scale and git rev. *)

val lint : string -> string list
(** Structural validation of an exposition; returns human-readable
    violations (empty = clean). Checks metric-name syntax, one HELP and
    one TYPE per family emitted before its samples, counter [_total]
    suffixes, parseable sample values, label-block termination, and the
    [# EOF] terminator. *)
