(** Named monotonic counters and fixed-bucket histograms.

    Handles are resolved by name once ({!counter}/{!histogram}) and then
    updated without lookup. Snapshots are immutable, name-sorted, and
    mergeable: every sweep cell snapshots its own registry and the
    aggregation sums them, so telemetry needs no cross-domain sharing.
    Histogram quantiles (p50/p95/p99) interpolate linearly inside the
    bucket the rank lands in — the bucketed analogue of
    {!Vliw_util.Stats.percentile}. *)

type t
(** A registry. Not domain-safe: use one per simulation. *)

type counter

type histogram

val create : unit -> t

val counter : t -> string -> counter
(** Get or create the named counter. *)

val add : counter -> int -> unit

val incr : counter -> unit

val value : counter -> int

val histogram : t -> string -> bounds:float array -> histogram
(** Get or create; [bounds] are ascending bucket upper bounds, with an
    implicit overflow bucket above the last. On an existing name the
    original bounds win. *)

val observe : histogram -> float -> unit

(** {1 Snapshots} *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;  (** One per bound plus the overflow bucket. *)
  total : int;
  sum : float;
  vmin : float;
  vmax : float;
}

type snapshot = {
  counters : (string * int) list;  (** Name-sorted. *)
  histograms : (string * hist_snapshot) list;  (** Name-sorted. *)
}

val snapshot : t -> snapshot

val empty : snapshot

val count : snapshot -> string -> int
(** 0 when the counter is absent. *)

val merge : snapshot -> snapshot -> snapshot
(** Pointwise sum; histogram bounds must match.
    @raise Invalid_argument when they don't. *)

val hist_mean : hist_snapshot -> float

val quantile : hist_snapshot -> float -> float
(** [quantile h p] for [p] in [0..100], clamped to the observed range. *)

val flat : snapshot -> (string * string) list
(** Counters plus per-histogram count/mean/p50/p95/p99, as strings. *)

val to_csv : snapshot -> string list * string list list
(** {!flat} as a CSV header and rows ([counter,value]). *)

(** {1 Event counting} *)

val sink : t -> Sink.t
(** A sink that counts every event under its {!Event.counter_key} and
    feeds the [issue.slots_filled] / [issue.threads_merged]
    histograms. *)
