(* OpenMetrics / Prometheus textfile exporter.

   Renders a telemetry snapshot (plus run-level gauges) in the
   text-based exposition format understood both by the Prometheus
   node_exporter textfile collector and by OpenMetrics scrapers:

     # HELP vliwsim_slots_filled_total Telemetry counter slots.filled
     # TYPE vliwsim_slots_filled_total counter
     vliwsim_slots_filled_total{scale="default"} 1264
     ...
     # EOF

   Conventions honoured (and enforced by [lint]):
   - metric names are [a-zA-Z_:][a-zA-Z0-9_:]*; telemetry dot-names are
     mapped through [sanitize] ("waste.vertical.empty" ->
     "vliwsim_waste_vertical_empty_total");
   - counters carry the [_total] suffix; histograms expand to
     cumulative [_bucket{le="..."}] series ending in le="+Inf", plus
     [_sum] and [_count];
   - label values are escaped (backslash, double-quote, newline);
   - each metric family has exactly one HELP and one TYPE line, emitted
     before its samples;
   - the exposition ends with "# EOF".

   The in-repo [lint] keeps CI honest without a prometheus binary: it
   re-parses an exposition and reports structural violations. *)

type family = {
  name : string;  (* family name, without _total/_bucket suffixes *)
  kind : [ `Counter | `Gauge | `Histogram ];
  help : string;
  labels : (string * string) list;  (* applied to every sample *)
}

let prefix = "vliwsim_"

let sanitize name =
  let mapped =
    String.map
      (fun c ->
        match c with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | ':' -> c
        | _ -> '_')
      name
  in
  let mapped =
    if mapped = "" then "_"
    else
      match mapped.[0] with
      | '0' .. '9' -> "_" ^ mapped
      | _ -> mapped
  in
  prefix ^ mapped

let escape_label_value v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '"' -> Buffer.add_string buf "\\\""
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let escape_help v =
  let buf = Buffer.create (String.length v) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    v;
  Buffer.contents buf

let label_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat ","
        (List.map
           (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label_value v))
           labels)
    ^ "}"

(* Prometheus prints integers bare and floats in shortest-round-trip
   form; reuse Json's number rendering for the latter. *)
let number v =
  if Float.is_nan v then "NaN"
  else if v = infinity then "+Inf"
  else if v = neg_infinity then "-Inf"
  else Vliw_util.Json.number_string v

let kind_string = function
  | `Counter -> "counter"
  | `Gauge -> "gauge"
  | `Histogram -> "histogram"

let emit_header buf fam =
  Buffer.add_string buf
    (Printf.sprintf "# HELP %s %s\n" fam.name (escape_help fam.help));
  Buffer.add_string buf
    (Printf.sprintf "# TYPE %s %s\n" fam.name (kind_string fam.kind))

let emit_sample buf ~name ?(extra = []) ~labels v =
  Buffer.add_string buf
    (Printf.sprintf "%s%s %s\n" name (label_string (labels @ extra)) (number v))

let render ?(labels = []) ~snapshot ~gauges () =
  let buf = Buffer.create 4096 in
  List.iter
    (fun (raw, v) ->
      let fam =
        {
          name = sanitize raw ^ "_total";
          kind = `Counter;
          help = "Telemetry counter " ^ raw;
          labels;
        }
      in
      emit_header buf fam;
      emit_sample buf ~name:fam.name ~labels (float_of_int v))
    snapshot.Counters.counters;
  List.iter
    (fun (raw, (h : Counters.hist_snapshot)) ->
      let base = sanitize raw in
      let fam =
        { name = base; kind = `Histogram; help = "Telemetry histogram " ^ raw; labels }
      in
      emit_header buf fam;
      let cumulative = ref 0 in
      Array.iteri
        (fun i bound ->
          cumulative := !cumulative + h.counts.(i);
          emit_sample buf ~name:(base ^ "_bucket")
            ~extra:[ ("le", number bound) ]
            ~labels (float_of_int !cumulative))
        h.bounds;
      emit_sample buf ~name:(base ^ "_bucket")
        ~extra:[ ("le", "+Inf") ]
        ~labels (float_of_int h.total);
      emit_sample buf ~name:(base ^ "_sum") ~labels h.sum;
      emit_sample buf ~name:(base ^ "_count") ~labels (float_of_int h.total))
    snapshot.Counters.histograms;
  List.iter
    (fun (raw, v) ->
      let fam =
        {
          name = sanitize raw;
          kind = `Gauge;
          help = "Run gauge " ^ raw;
          labels;
        }
      in
      emit_header buf fam;
      emit_sample buf ~name:fam.name ~labels v)
    gauges;
  Buffer.add_string buf "# EOF\n";
  Buffer.contents buf

let of_run (r : Ledger.run) =
  let snapshot =
    { Counters.empty with Counters.counters = List.sort compare r.counters }
  in
  let gauges =
    List.sort compare
      (r.gauges
      @ [
          ("run_wall_seconds", r.wall_s);
          ("run_jobs", float_of_int r.jobs);
          ("run_cells", float_of_int (Array.length r.cells));
          ("run_ipc_mean", Ledger.mean_ipc r);
        ])
  in
  render
    ~labels:
      [ ("run", r.id); ("cmd", r.cmd); ("scale", r.scale); ("git", r.git_rev) ]
    ~snapshot ~gauges ()

(* --- lint ------------------------------------------------------------- *)

let is_name_start c =
  (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_' || c = ':'

let is_name_char c = is_name_start c || (c >= '0' && c <= '9')

let valid_name s =
  s <> ""
  && is_name_start s.[0]
  && String.for_all is_name_char s

(* Family name of a sample: strip histogram sample suffixes so
   my_hist_bucket / _sum / _count all attribute to my_hist. The _total
   counter suffix is part of the family name per convention. *)
let family_of_sample ~histogram_families name =
  let strip suffix =
    if
      String.length name > String.length suffix
      && String.sub name
           (String.length name - String.length suffix)
           (String.length suffix)
         = suffix
    then
      Some (String.sub name 0 (String.length name - String.length suffix))
    else None
  in
  let candidates = List.filter_map strip [ "_bucket"; "_sum"; "_count" ] in
  match List.find_opt (fun c -> List.mem c histogram_families) candidates with
  | Some fam -> fam
  | None -> name

let lint text =
  let errors = ref [] in
  let err line msg = errors := Printf.sprintf "line %d: %s" line msg :: !errors in
  let lines = String.split_on_char '\n' text in
  let helped = Hashtbl.create 16 and typed = Hashtbl.create 16 in
  let histogram_families = ref [] in
  let sampled = Hashtbl.create 16 in
  let saw_eof = ref false in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      if !saw_eof && String.trim line <> "" then
        err lineno "content after # EOF"
      else if line = "# EOF" then saw_eof := true
      else if line = "" then ()
      else if String.length line > 1 && line.[0] = '#' then begin
        match String.split_on_char ' ' line with
        | "#" :: "HELP" :: name :: _rest ->
          if not (valid_name name) then
            err lineno ("invalid metric name in HELP: " ^ name);
          if Hashtbl.mem helped name then
            err lineno ("duplicate HELP for " ^ name);
          Hashtbl.replace helped name ();
          if Hashtbl.mem sampled name then
            err lineno ("HELP for " ^ name ^ " after its samples")
        | "#" :: "TYPE" :: name :: [ kind ] ->
          if not (valid_name name) then
            err lineno ("invalid metric name in TYPE: " ^ name);
          if Hashtbl.mem typed name then
            err lineno ("duplicate TYPE for " ^ name);
          Hashtbl.replace typed name kind;
          if kind = "histogram" then
            histogram_families := name :: !histogram_families;
          if
            not
              (List.mem kind
                 [ "counter"; "gauge"; "histogram"; "summary"; "untyped" ])
          then err lineno ("unknown metric type: " ^ kind);
          if Hashtbl.mem sampled name then
            err lineno ("TYPE for " ^ name ^ " after its samples")
        | _ -> err lineno "malformed comment line (expected # HELP / # TYPE)"
      end
      else begin
        (* sample line: NAME[{labels}] VALUE *)
        let name_end =
          let n = String.length line in
          let rec go i = if i < n && is_name_char line.[i] then go (i + 1) else i in
          go 0
        in
        let name = String.sub line 0 name_end in
        if not (valid_name name) then
          err lineno ("invalid sample metric name: " ^ String.trim line)
        else begin
          let fam =
            family_of_sample ~histogram_families:!histogram_families name
          in
          Hashtbl.replace sampled fam ();
          if not (Hashtbl.mem typed fam) then
            err lineno ("sample for " ^ fam ^ " has no TYPE line");
          (match Hashtbl.find_opt typed fam with
          | Some "counter"
            when not
                   (String.length name >= 6
                   && String.sub name (String.length name - 6) 6 = "_total")
            ->
            err lineno ("counter sample " ^ name ^ " lacks _total suffix")
          | _ -> ());
          let rest = String.sub line name_end (String.length line - name_end) in
          let value_part =
            if String.length rest > 0 && rest.[0] = '{' then begin
              (* scan the label block respecting escapes inside quotes *)
              let n = String.length rest in
              let rec scan i in_quote =
                if i >= n then None
                else if in_quote then
                  if rest.[i] = '\\' then scan (i + 2) true
                  else if rest.[i] = '"' then scan (i + 1) false
                  else scan (i + 1) true
                else if rest.[i] = '"' then scan (i + 1) true
                else if rest.[i] = '}' then Some (i + 1)
                else scan (i + 1) false
              in
              match scan 1 false with
              | None ->
                err lineno "unterminated label block";
                None
              | Some close ->
                Some (String.sub rest close (n - close))
            end
            else Some rest
          in
          match value_part with
          | None -> ()
          | Some v -> (
            let v = String.trim v in
            if v = "" then err lineno "sample has no value"
            else
              match v with
              | "+Inf" | "-Inf" | "NaN" -> ()
              | _ -> (
                match float_of_string_opt (List.hd (String.split_on_char ' ' v)) with
                | Some _ -> ()
                | None -> err lineno ("unparseable sample value: " ^ v)))
        end
      end)
    lines;
  if not !saw_eof then errors := "missing # EOF terminator" :: !errors;
  List.rev !errors
