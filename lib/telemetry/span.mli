(** Cross-process tracing spans for the sweep service and the
    distributed fleet.

    A span is one timed slice of a request's life — queueing, planning,
    dispatch, a worker compiling a row or simulating a cell — linked to
    its parent by id inside a trace. Ids are drawn from a SplitMix64
    stream owned by the {!collector} (never from [Random] or the
    clock), and wall timestamps come from an injectable clock function,
    so span trees are deterministic under test. On the wire a span is
    an NDJSON object whose float fields are IEEE-754 bit images, the
    repo-wide exactness convention: worker child spans survive the
    coordinator merge bit-identical. *)

type kind =
  | Submit
  | Queue_wait
  | Schedule
  | Dispatch
  | Shard
  | Prepare_row
  | Simulate_cell
  | Retry
  | Ledger_append

val all_kinds : kind list

val kind_name : kind -> string

val kind_of_name : string -> kind option

type t = {
  trace : int64;  (** Trace id: one per traced request or sweep. *)
  id : int64;
  parent : int64 option;
  kind : kind;
  name : string;  (** Human payload, e.g. ["LLHH/C4"]. *)
  lane : string;  (** Display lane: ["server"], ["worker 0"], ... *)
  start_s : float;  (** Wall seconds from the collector's clock. *)
  dur_s : float;
}

val id_to_hex : int64 -> string
val id_of_hex : string -> (int64, string) result

(** {1 Collector} *)

type collector
(** A mutex-guarded span buffer plus the id stream and clock. One per
    daemon (or per traced client call). *)

val collector : ?clock:(unit -> float) -> seed:int64 -> unit -> collector
(** [clock] defaults to [Unix.gettimeofday]; tests inject a fake. *)

val now : collector -> float
(** The collector's clock, for bracketing work. *)

val fresh_id : collector -> int64
(** Next id from the SplitMix64 stream (also used for trace ids). *)

val add : collector -> t -> unit
(** Record a span built elsewhere (e.g. decoded off the wire). *)

val record :
  collector ->
  trace:int64 ->
  ?parent:int64 ->
  kind:kind ->
  name:string ->
  lane:string ->
  start_s:float ->
  dur_s:float ->
  unit ->
  t
(** Allocate an id, record, and return the finished span. *)

val spans : collector -> t list
(** Recorded spans in insertion order. *)

val count : collector -> int
val clear : collector -> unit

(** {1 Wire codec} *)

val to_json : t -> Vliw_util.Json.t

val of_json : Vliw_util.Json.t -> (t, string) result
(** Strict about field types, lenient only about [parent] (absent means
    a root span). *)

val list_to_json : t list -> Vliw_util.Json.t
val list_of_json : Vliw_util.Json.t -> (t list, string) result

(** {1 Analysis} *)

val durations_by_kind : t list -> (kind * float array) list
(** Kinds with at least one span, in {!all_kinds} order. *)

val latency_gauges : t list -> (string * float) list
(** Per-kind ["span.<kind>.count"/".p50"/".p95"/".p99"] gauges in
    seconds, via {!Vliw_util.Stats.quantile_exact} — the ledger/report
    form of the latency summary. *)

val hist_bounds : float array
(** Latency bucket bounds in seconds for OpenMetrics histograms. *)

val observe_histograms : Counters.t -> t list -> unit
(** Feed each span's duration into the registry histogram
    ["span.<kind>.seconds"] (bounds {!hist_bounds}) so the exposition
    carries real [_bucket] series. *)

val validate : ?slack_s:float -> t list -> string list
(** Structural problems: non-finite/negative times, a parent id missing
    from its trace, or a child interval escaping its parent's by more
    than [slack_s] (default 10 ms, absorbing cross-process clock
    reads). Empty means the span forest is well-nested. *)

(** {1 Chrome export} *)

val to_chrome : ?process_name:string -> t list -> string
(** The merged fleet trace as Chrome trace-event JSON ({!Chrome_trace}):
    one lane per distinct [lane] string in first-appearance order,
    timestamps rebased to the earliest span, ids carried in [args] so
    tooling (and the CI nesting check) can rebuild the tree. *)
