(** Typed simulator events.

    The taxonomy follows the paper's accounting of why issue slots were
    or weren't filled: fetch stalls and cache misses explain vertical
    waste, merge rejects explain horizontal waste, and the issue event
    records what the merge network achieved each cycle. [thread] fields
    are hardware-context indices (the lane identity in trace exports),
    not software-thread ids. *)

type reject_reason =
  | Conflict  (** Cluster (CSMT) or pinned-slot (fixed-slot SMT) collision. *)
  | Capacity  (** Combined operations exceed the cluster issue width (SMT). *)
  | Priority
      (** Ready but not selected by the issue policy (IMT/BMT round-robin). *)

type cache_level = L1i | L1d

type t =
  | Fetch_stall of { thread : int; penalty : int }
      (** ICache miss while fetching; the thread blocks for [penalty]. *)
  | Merge_reject of { thread : int; reason : reject_reason }
      (** The thread offered an instruction and was denied issue. *)
  | Issue of { threads : int list; threads_merged : int; slots_filled : int }
      (** A packet issued: which hardware threads, how many, how many
          operation slots it filled. *)
  | Cache_miss of { thread : int; level : cache_level }
  | Bmt_switch of { from_thread : int; to_thread : int }
      (** Blocked-multithreading context switch. *)
  | Scheme_switch of { from_scheme : string; to_scheme : string; penalty : int }
      (** Mid-run merge-network reconfiguration (adaptive controller);
          [penalty] is the issue-stall bubble charged, in cycles. *)

val name : t -> string

val reason_to_string : reject_reason -> string

val level_to_string : cache_level -> string

val counter_key : t -> string
(** Stable counter name of the event refined by its discriminating
    payload (e.g. ["events.merge_reject.conflict"]). *)

val args : t -> (string * string) list
(** Payload as ordered key/value strings (trace-export annotations). *)

val pp : Format.formatter -> t -> unit
