(* Chrome trace-event JSON (the format Perfetto and chrome://tracing
   load). Timestamps are microseconds; simulator exports map one cycle
   to 1 us so the viewer's time axis reads directly in cycles.

   Reference: "Trace Event Format" (Google), JSON-object variant with a
   "traceEvents" array. Only "M" (metadata), "X" (complete/duration) and
   "i" (instant) phases are emitted. *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let json_args args =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (escape k) (escape v)) args)
  ^ "}"

let obj fields = "{" ^ String.concat "," fields ^ "}"

let str k v = Printf.sprintf "\"%s\":\"%s\"" k (escape v)

let num k v = Printf.sprintf "\"%s\":%s" k v

let metadata ~pid ~tid ~name_field ~value =
  obj
    [
      str "name" name_field;
      str "ph" "M";
      num "pid" (string_of_int pid);
      num "tid" (string_of_int tid);
      num "args" (json_args [ ("name", value) ]);
    ]

let complete ~pid ~tid ~name ~ts_us ~dur_us ~args =
  obj
    [
      str "name" name;
      str "ph" "X";
      num "pid" (string_of_int pid);
      num "tid" (string_of_int tid);
      num "ts" (Printf.sprintf "%.3f" ts_us);
      num "dur" (Printf.sprintf "%.3f" dur_us);
      num "args" (json_args args);
    ]

let instant ~pid ~tid ~name ~ts_us ~args =
  obj
    [
      str "name" name;
      str "ph" "i";
      str "s" "t";
      num "pid" (string_of_int pid);
      num "tid" (string_of_int tid);
      num "ts" (Printf.sprintf "%.3f" ts_us);
      num "args" (json_args args);
    ]

let document ~process_name events =
  let header =
    metadata ~pid:0 ~tid:0 ~name_field:"process_name" ~value:process_name
  in
  "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n"
  ^ String.concat ",\n" (header :: events)
  ^ "\n]}\n"

(* --- simulator runs: one lane per hardware thread -------------------- *)

let events_of_entry (e : Recorder.entry) =
  let ts_us = float_of_int e.cycle in
  match e.event with
  | Event.Issue { threads; threads_merged; slots_filled } ->
    List.map
      (fun tid ->
        complete ~pid:0 ~tid ~name:"issue" ~ts_us ~dur_us:1.0
          ~args:
            [
              ("threads_merged", string_of_int threads_merged);
              ("slots_filled", string_of_int slots_filled);
            ])
      threads
  | Event.Fetch_stall { thread; penalty } ->
    [
      complete ~pid:0 ~tid:thread ~name:"fetch-stall" ~ts_us
        ~dur_us:(float_of_int penalty)
        ~args:[ ("penalty", string_of_int penalty) ];
    ]
  | Event.Merge_reject { thread; reason } ->
    [
      instant ~pid:0 ~tid:thread ~name:"merge-reject" ~ts_us
        ~args:[ ("reason", Event.reason_to_string reason) ];
    ]
  | Event.Cache_miss { thread; level } ->
    [
      instant ~pid:0 ~tid:thread ~name:"cache-miss" ~ts_us
        ~args:[ ("level", Event.level_to_string level) ];
    ]
  | Event.Bmt_switch { from_thread; to_thread } ->
    [
      instant ~pid:0 ~tid:to_thread ~name:"bmt-switch" ~ts_us
        ~args:
          [
            ("from", string_of_int from_thread);
            ("to", string_of_int to_thread);
          ];
    ]
  | Event.Scheme_switch { from_scheme; to_scheme; penalty } ->
    [
      instant ~pid:0 ~tid:0 ~name:"scheme-switch" ~ts_us
        ~args:
          [
            ("from", from_scheme);
            ("to", to_scheme);
            ("penalty", string_of_int penalty);
          ];
    ]

let of_recorder ?(process_name = "vliwsim") ~lanes recorder =
  let lane_meta =
    List.mapi
      (fun tid label ->
        metadata ~pid:0 ~tid ~name_field:"thread_name" ~value:label)
      lanes
  in
  let events = ref [] in
  Recorder.iter recorder (fun entry ->
      List.iter (fun ev -> events := ev :: !events) (events_of_entry entry));
  document ~process_name (lane_meta @ List.rev !events)

(* --- sweeps: one lane per pool worker -------------------------------- *)

type span = {
  lane : int;
  name : string;
  start_us : float;
  dur_us : float;
  args : (string * string) list;
}

let of_spans ?(process_name = "vliwsim sweep") ~lane_names spans =
  let lane_meta =
    List.map
      (fun (tid, label) ->
        metadata ~pid:0 ~tid ~name_field:"thread_name" ~value:label)
      lane_names
  in
  let events =
    List.map
      (fun s ->
        complete ~pid:0 ~tid:s.lane ~name:s.name ~ts_us:s.start_us
          ~dur_us:s.dur_us ~args:s.args)
      spans
  in
  document ~process_name (lane_meta @ events)
