(* Self-contained HTML dashboard for a simulation run.

   One file, zero JavaScript, zero external references: all styling is
   an inline <style> block and every chart is inline SVG, so the report
   opens from a file:// URL on an air-gapped machine and survives being
   mailed around. Rendered sections:

   - run summary (config, git rev, fingerprint, fault-tolerance stats);
   - the fig10-style IPC grid as grouped bars (series = schemes,
     groups = mixes), with a data-table fallback under <details>;
   - horizontal/vertical waste breakdown bars from telemetry counters;
   - stall-attribution tables grouped by counter prefix, with inline
     share bars;
   - per-worker sweep cell timeline (gantt), degraded cells flagged;
   - cross-run mean-IPC trajectory over same-fingerprint ledger runs.

   Colour discipline (see the dataviz palette notes): categorical hues
   are assigned in fixed slot order and never cycled — more than 8
   schemes switches the grid to a single-hue ordinal blue ramp with
   per-bar tooltips; single-series charts use slot 1 only; the status
   red is reserved for degraded cells and always paired with a text
   label. Light and dark palettes are both explicit (CSS custom
   properties swapped by prefers-color-scheme), values carry text
   tokens rather than series colours, and every mark has an SVG <title>
   so hover identification needs no JS. *)

let pf = Printf.sprintf

(* --- palette (validated slot order; light/dark pairs) ---------------- *)

let categorical =
  [|
    ("#2a78d6", "#3987e5");
    ("#eb6834", "#d95926");
    ("#1baf7a", "#199e70");
    ("#eda100", "#c98500");
    ("#e87ba4", "#d55181");
    ("#008300", "#008300");
    ("#4a3aa7", "#9085e9");
    ("#e34948", "#e66767");
  |]

(* Ordinal blue ramp: on light surfaces start no lighter than step 250,
   on dark go no darker than step 600 (contrast floors). *)
let seq_light =
  [| "#86b6ef"; "#6da7ec"; "#5598e7"; "#3987e5"; "#2a78d6"; "#256abf";
     "#1c5cab"; "#184f95"; "#104281" |]

let seq_dark =
  [| "#cde2fb"; "#b7d3f6"; "#9ec5f4"; "#86b6ef"; "#6da7ec"; "#5598e7";
     "#3987e5"; "#2a78d6"; "#256abf" |]

(* Colour for series [i] of [k]: categorical slots when they fit, an
   evenly-sampled ordinal ramp otherwise. Returns (light, dark). *)
let series_color ~k i =
  if k <= Array.length categorical then categorical.(i)
  else begin
    let sample (ramp : string array) =
      let n = Array.length ramp in
      if k = 1 then ramp.(n / 2)
      else ramp.(i * (n - 1) / (k - 1))
    in
    (sample seq_light, sample seq_dark)
  end

(* Series CSS variables: the chart body references var(--c0..--cN) so
   the light/dark swap happens in one place. *)
let series_vars k =
  let buf_light = Buffer.create 256 and buf_dark = Buffer.create 256 in
  for i = 0 to k - 1 do
    let light, dark = series_color ~k i in
    Buffer.add_string buf_light (pf "--c%d:%s;" i light);
    Buffer.add_string buf_dark (pf "--c%d:%s;" i dark)
  done;
  (Buffer.contents buf_light, Buffer.contents buf_dark)

(* --- text helpers ----------------------------------------------------- *)

let esc s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '&' -> Buffer.add_string buf "&amp;"
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let fmt_num v =
  if Float.is_nan v then "n/a"
  else if Float.abs v >= 1000.0 then pf "%.0f" v
  else pf "%.2f" v

let fmt_time epoch =
  if epoch <= 0.0 then "-"
  else begin
    let tm = Unix.gmtime epoch in
    pf "%04d-%02d-%02d %02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
      (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
      tm.Unix.tm_sec
  end

(* Round a chart maximum up to 1/2/2.5/5 x 10^k so axis ticks land on
   readable values. *)
let nice_max v =
  if v <= 0.0 || Float.is_nan v then 1.0
  else begin
    let mag = Float.pow 10.0 (Float.floor (Float.log10 v)) in
    let frac = v /. mag in
    let nice =
      if frac <= 1.0 then 1.0
      else if frac <= 2.0 then 2.0
      else if frac <= 2.5 then 2.5
      else if frac <= 5.0 then 5.0
      else 10.0
    in
    nice *. mag
  end

(* Bar with a 4px-rounded data end, anchored flat to the baseline. *)
let bar_path ~x ~y ~w ~h =
  let r = Float.min 4.0 (Float.min (w /. 2.0) h) in
  pf "M%.1f %.1fL%.1f %.1fQ%.1f %.1f %.1f %.1fL%.1f %.1fQ%.1f %.1f %.1f %.1fL%.1f %.1fZ"
    x (y +. h) x (y +. r) x y (x +. r) y
    (x +. w -. r) y (x +. w) y (x +. w) (y +. r)
    (x +. w) (y +. h)

(* Left-anchored bar (horizontal), rounded at the value end. *)
let hbar_path ~x ~y ~w ~h =
  let r = Float.min 4.0 (Float.min (h /. 2.0) w) in
  pf "M%.1f %.1fL%.1f %.1fQ%.1f %.1f %.1f %.1fL%.1f %.1fQ%.1f %.1f %.1f %.1fL%.1f %.1fZ"
    x y (x +. w -. r) y (x +. w) y (x +. w) (y +. r)
    (x +. w) (y +. h -. r) (x +. w) (y +. h) (x +. w -. r) (y +. h)
    x (y +. h)

let y_axis buf ~left ~top ~plot_w ~plot_h ~vmax ~ticks =
  for t = 0 to ticks do
    let v = vmax *. float_of_int t /. float_of_int ticks in
    let y = top +. plot_h -. (plot_h *. float_of_int t /. float_of_int ticks) in
    Buffer.add_string buf
      (pf "<line class=\"grid\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>"
         left y (left +. plot_w) y);
    Buffer.add_string buf
      (pf "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>"
         (left -. 6.0) (y +. 3.5) (fmt_num v))
  done

(* --- sections --------------------------------------------------------- *)

let section_summary (r : Ledger.run) =
  let row k v = pf "<tr><th>%s</th><td>%s</td></tr>" (esc k) (esc v) in
  let fault =
    pf "%d retries, %d degraded, %d timeouts, %d resumed" r.retries r.degraded
      r.timeouts r.resumed
  in
  let gauges =
    match r.gauges with
    | [] -> ""
    | gs ->
      String.concat ""
        (List.map (fun (k, v) -> row k (fmt_num v)) gs)
  in
  pf
    {|<section><h2>Run %s</h2><table class="kv">%s%s%s%s%s%s%s%s%s%s%s</table></section>|}
    (esc r.id)
    (row "command" (r.cmd ^ " " ^ r.label))
    (row "recorded" (fmt_time r.time_s))
    (row "git revision" r.git_rev)
    (row "config fingerprint" r.fingerprint)
    (if r.policy = "static" then "" else row "controller policy" r.policy)
    (row "scale / seed" (pf "%s / 0x%Lx" r.scale r.seed))
    (row "jobs" (string_of_int r.jobs))
    (row "wall clock" (pf "%.2f s" r.wall_s))
    (row "grid" (pf "%d cells (%s)" (Array.length r.cells)
                   (Ledger.grid_digest r.cells)))
    (row "fault tolerance" fault)
    gauges

let grid_lookup (r : Ledger.run) =
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun (c : Ledger.cell) -> Hashtbl.replace tbl (c.mix, c.scheme) c)
    r.cells;
  fun mix scheme -> Hashtbl.find_opt tbl (mix, scheme)

let section_ipc_grid (r : Ledger.run) =
  if Array.length r.cells = 0 then ""
  else begin
    let schemes = r.scheme_names and mixes = r.mix_names in
    let k = List.length schemes and n = List.length mixes in
    if k = 0 || n = 0 then ""
    else begin
      let lookup = grid_lookup r in
      let vmax =
        Array.fold_left
          (fun acc (c : Ledger.cell) ->
            if Float.is_nan c.ipc then acc else Float.max acc c.ipc)
          0.0 r.cells
      in
      let vmax = nice_max vmax in
      let left = 46.0 and top = 10.0 and bottom = 34.0 and right = 8.0 in
      let plot_w = 820.0 and plot_h = 240.0 in
      let w = left +. plot_w +. right and h = top +. plot_h +. bottom in
      let buf = Buffer.create 8192 in
      Buffer.add_string buf
        (pf "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"IPC by mix and scheme\">"
           w h);
      y_axis buf ~left ~top ~plot_w ~plot_h ~vmax ~ticks:4;
      let gw = plot_w /. float_of_int n in
      let band = gw *. 0.82 in
      let bw =
        Float.max 2.0 ((band -. (2.0 *. float_of_int (k - 1))) /. float_of_int k)
      in
      List.iteri
        (fun gi mix ->
          let gx = left +. (gw *. float_of_int gi) +. ((gw -. band) /. 2.0) in
          Buffer.add_string buf
            (pf "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%s</text>"
               (left +. (gw *. (float_of_int gi +. 0.5)))
               (top +. plot_h +. 16.0) (esc mix));
          List.iteri
            (fun si scheme ->
              match lookup mix scheme with
              | None -> ()
              | Some c ->
                let v = if Float.is_nan c.ipc then 0.0 else c.ipc in
                let bh = plot_h *. v /. vmax in
                let x = gx +. (float_of_int si *. (bw +. 2.0)) in
                let y = top +. plot_h -. bh in
                let tip =
                  pf "%s / %s: IPC %s%s" mix scheme
                    (if Float.is_nan c.ipc then "n/a" else pf "%.4f" c.ipc)
                    (if c.degraded then " (degraded)" else "")
                in
                if Float.is_nan c.ipc || c.degraded then
                  (* Status colour + text marker: degraded is a state,
                     never just another hue. *)
                  Buffer.add_string buf
                    (pf "<g><path d=\"%s\" class=\"deg\"/><title>%s</title></g>"
                       (bar_path ~x ~y:(top +. plot_h -. 4.0) ~w:bw ~h:4.0)
                       (esc tip))
                else
                  Buffer.add_string buf
                    (pf "<g><path d=\"%s\" fill=\"var(--c%d)\"/><title>%s</title></g>"
                       (bar_path ~x ~y ~w:bw ~h:bh) si (esc tip)))
            schemes)
        mixes;
      Buffer.add_string buf
        (pf "<line class=\"axis\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>"
           left (top +. plot_h) (left +. plot_w) (top +. plot_h));
      Buffer.add_string buf "</svg>";
      let legend =
        if k <= Array.length categorical then
          "<div class=\"legend\">"
          ^ String.concat ""
              (List.mapi
                 (fun si scheme ->
                   pf "<span><i style=\"background:var(--c%d)\"></i>%s</span>" si
                     (esc scheme))
                 schemes)
          ^ "</div>"
        else
          pf
            "<p class=\"note\">%d schemes exceed the 8-slot categorical palette; bars use a single-hue ramp in scheme order — hover a bar or open the data table below.</p>"
            k
      in
      let table =
        let buf = Buffer.create 2048 in
        Buffer.add_string buf
          "<details><summary>Data table</summary><table class=\"data\"><tr><th>mix</th>";
        List.iter
          (fun s -> Buffer.add_string buf (pf "<th>%s</th>" (esc s)))
          schemes;
        Buffer.add_string buf "</tr>";
        List.iter
          (fun mix ->
            Buffer.add_string buf (pf "<tr><th>%s</th>" (esc mix));
            List.iter
              (fun scheme ->
                let txt =
                  match lookup mix scheme with
                  | Some c when not (Float.is_nan c.ipc) -> pf "%.4f" c.ipc
                  | Some _ -> "n/a"
                  | None -> "-"
                in
                Buffer.add_string buf (pf "<td>%s</td>" txt))
              schemes;
            Buffer.add_string buf "</tr>")
          mixes;
        Buffer.add_string buf "</table></details>";
        Buffer.contents buf
      in
      pf
        "<section><h2>IPC by workload mix and merge scheme</h2>%s%s%s%s</section>"
        (Buffer.contents buf) legend
        (if r.degraded > 0 then
           "<p class=\"note\"><i class=\"degswatch\"></i>degraded cell (simulation fell back after repeated failures)</p>"
         else "")
        table
    end
  end

(* Single-series horizontal bars for a counter family; slot-1 blue only
   (one series needs no legend and never a second hue). *)
let hbar_chart ~title rows =
  match rows with
  | [] -> ""
  | _ ->
    let vmax =
      nice_max (List.fold_left (fun acc (_, v) -> Float.max acc v) 0.0 rows)
    in
    let label_w = 190.0 and bar_w = 480.0 and value_w = 110.0 in
    let row_h = 22.0 and top = 6.0 in
    let h = top +. (row_h *. float_of_int (List.length rows)) +. 6.0 in
    let w = label_w +. bar_w +. value_w in
    let buf = Buffer.create 2048 in
    Buffer.add_string buf
      (pf "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"%s\">" w h
         (esc title));
    List.iteri
      (fun i (name, v) ->
        let y = top +. (row_h *. float_of_int i) in
        let bw = bar_w *. v /. vmax in
        Buffer.add_string buf
          (pf "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%s</text>"
             (label_w -. 8.0) (y +. 14.0) (esc name));
        Buffer.add_string buf
          (pf "<g><path d=\"%s\" fill=\"var(--c0)\"/><title>%s: %s</title></g>"
             (hbar_path ~x:label_w ~y:(y +. 3.0) ~w:(Float.max 1.0 bw) ~h:14.0)
             (esc name) (fmt_num v));
        Buffer.add_string buf
          (pf "<text class=\"val\" x=\"%.1f\" y=\"%.1f\">%s</text>"
             (label_w +. Float.max 1.0 bw +. 8.0)
             (y +. 14.0) (fmt_num v)))
      rows;
    Buffer.add_string buf "</svg>";
    pf "<h3>%s</h3>%s" (esc title) (Buffer.contents buf)

let counters_with_prefix counters prefix =
  List.filter_map
    (fun (name, v) ->
      if
        String.length name > String.length prefix
        && String.sub name 0 (String.length prefix) = prefix
      then
        Some
          ( String.sub name (String.length prefix)
              (String.length name - String.length prefix),
            float_of_int v )
      else None)
    counters

(* Adaptive-controller panel: only renders when the run engaged a
   non-static policy or actually reconfigured the merge network.
   Decision counts come from the controller.decisions.* counters the
   sweep books per column, so the chart shows how often each candidate
   scheme won a timeslice. *)
let section_adaptive (r : Ledger.run) =
  let count name =
    match List.assoc_opt name r.counters with Some v -> v | None -> 0
  in
  let decisions = counters_with_prefix r.counters "controller.decisions." in
  let switches = count "sim.scheme_switches" in
  if r.policy = "static" && decisions = [] && switches = 0 then ""
  else begin
    let row k v = pf "<tr><th>%s</th><td>%s</td></tr>" (esc k) (esc v) in
    pf
      "<section><h2>Adaptive controller</h2><table class=\"kv\">%s%s%s%s%s</table>%s</section>"
      (row "policy" r.policy)
      (row "scheme switches" (string_of_int switches))
      (row "controller switches" (string_of_int (count "controller.switches")))
      (row "switch stall cycles"
         (string_of_int (count "sim.switch_stall_cycles")))
      (row "switch bubble cycles"
         (string_of_int (count "core.switch_bubble_cycles")))
      (hbar_chart ~title:"Per-timeslice scheme decisions" decisions)
  end

(* Sweep-service panel: only renders for [serve] records (or any run
   booking service.* counters). The headline number is the cache-hit
   rate — the whole point of content-addressed serving. *)
let section_service (r : Ledger.run) =
  let cells = counters_with_prefix r.counters "service.cells." in
  if r.cmd <> "serve" && cells = [] then ""
  else begin
    let count name =
      match List.assoc_opt name cells with Some v -> v | None -> 0.0
    in
    let cached = count "cached" and simulated = count "simulated" in
    let total = cached +. simulated +. count "degraded" in
    let hit_rate =
      if total = 0.0 then "n/a"
      else pf "%.1f%%" (100.0 *. cached /. total)
    in
    let row k v = pf "<tr><th>%s</th><td>%s</td></tr>" (esc k) (esc v) in
    pf
      "<section><h2>Sweep service</h2><table class=\"kv\">%s%s%s</table>%s</section>"
      (row "cache-hit rate" hit_rate)
      (row "cells served from cache" (fmt_num cached))
      (row "cells simulated" (fmt_num simulated))
      (hbar_chart ~title:"Cell provenance" cells)
  end

(* Distributed-sweep panel: only renders for [dist] records (or any run
   booking dist.* counters). Headline numbers are the worker fleet and
   the fault-tolerance work: deaths, requeues, retries, degrades. *)
let section_dist (r : Ledger.run) =
  let cells = counters_with_prefix r.counters "dist.cells." in
  let shards = counters_with_prefix r.counters "dist.shards." in
  let workers = counters_with_prefix r.counters "dist.workers." in
  if r.cmd <> "dist" && cells = [] && shards = [] && workers = [] then ""
  else begin
    let count group name =
      match List.assoc_opt name group with Some v -> v | None -> 0.0
    in
    let row k v = pf "<tr><th>%s</th><td>%s</td></tr>" (esc k) (esc v) in
    pf
      "<section><h2>Distributed sweep</h2><table class=\"kv\">%s%s%s%s</table>%s%s</section>"
      (row "workers"
         (fmt_num (count workers "spawned" +. count workers "attached")))
      (row "worker deaths" (fmt_num (count workers "died")))
      (row "shards requeued" (fmt_num (count shards "requeued")))
      (row "cells degraded" (fmt_num (count cells "degraded")))
      (hbar_chart ~title:"Cell provenance" cells)
      (hbar_chart ~title:"Shard lifecycle" shards)
  end

(* Request-latency panel: renders when the record carries span.* gauges
   (a traced serve job or a traced dist sweep). Quantiles are exact
   (nearest-rank) and plotted in milliseconds; per-kind span counts ride
   in the kv table. *)
let section_latency (r : Ledger.run) =
  let kinds =
    List.filter_map
      (fun (name, v) ->
        match String.split_on_char '.' name with
        | [ "span"; kind; "count" ] -> Some (kind, int_of_float v)
        | _ -> None)
      r.gauges
  in
  if kinds = [] then ""
  else begin
    let rows =
      List.concat_map
        (fun (kind, _) ->
          List.filter_map
            (fun q ->
              match List.assoc_opt (pf "span.%s.%s" kind q) r.gauges with
              | Some v -> Some (pf "%s %s" kind q, v *. 1000.0)
              | None -> None)
            [ "p50"; "p95"; "p99" ])
        kinds
    in
    let row k v = pf "<tr><th>%s</th><td>%s</td></tr>" (esc k) (esc v) in
    pf
      "<section><h2>Request latency</h2><table class=\"kv\">%s</table>%s<p class=\"note\">Exact (nearest-rank) quantiles over this run's trace spans, one family per span kind.</p></section>"
      (String.concat ""
         (List.map
            (fun (kind, n) -> row (kind ^ " spans") (string_of_int n))
            kinds))
      (hbar_chart ~title:"Span latency quantiles (ms)" rows)
  end

let section_waste (r : Ledger.run) =
  let vertical = counters_with_prefix r.counters "waste.vertical." in
  let horizontal = counters_with_prefix r.counters "waste.horizontal." in
  if vertical = [] && horizontal = [] then ""
  else
    pf "<section><h2>Issue-slot waste breakdown</h2>%s%s</section>"
      (hbar_chart ~title:"Vertical waste (whole empty cycles)" vertical)
      (hbar_chart ~title:"Horizontal waste (unfilled slots in issuing cycles)"
         horizontal)

(* Stall attribution as nested tables: counters grouped by their first
   dot segment, each row carrying an inline share bar. Values stay in
   text ink; only the share bar wears the series colour. *)
let section_stalls (r : Ledger.run) =
  if r.counters = [] then ""
  else begin
    let groups = Hashtbl.create 8 in
    let order = ref [] in
    List.iter
      (fun (name, v) ->
        let cat, rest =
          match String.index_opt name '.' with
          | Some i ->
            ( String.sub name 0 i,
              String.sub name (i + 1) (String.length name - i - 1) )
          | None -> (name, name)
        in
        if not (Hashtbl.mem groups cat) then begin
          Hashtbl.add groups cat (ref []);
          order := cat :: !order
        end;
        let cell = Hashtbl.find groups cat in
        cell := (rest, v) :: !cell)
      r.counters;
    let buf = Buffer.create 4096 in
    List.iter
      (fun cat ->
        let rows = List.rev !(Hashtbl.find groups cat) in
        let total = List.fold_left (fun acc (_, v) -> acc + v) 0 rows in
        Buffer.add_string buf
          (pf "<table class=\"data stall\"><tr><th colspan=\"4\">%s (total %d)</th></tr>"
             (esc cat) total);
        List.iter
          (fun (name, v) ->
            let share =
              if total = 0 then 0.0
              else 100.0 *. float_of_int v /. float_of_int total
            in
            Buffer.add_string buf
              (pf
                 "<tr><td>%s</td><td class=\"num\">%d</td><td class=\"num\">%.1f%%</td><td class=\"sharecell\"><div class=\"share\" style=\"width:%.1f%%\"></div></td></tr>"
                 (esc name) v share share))
          rows;
        Buffer.add_string buf "</table>")
      (List.rev !order);
    pf "<section><h2>Stall &amp; event attribution</h2>%s</section>"
      (Buffer.contents buf)
  end

let section_timeline (r : Ledger.run) =
  if Array.length r.cells = 0 then ""
  else begin
    let t0 =
      Array.fold_left
        (fun acc (c : Ledger.cell) -> Float.min acc c.started_s)
        infinity r.cells
    in
    let t1 =
      Array.fold_left
        (fun acc (c : Ledger.cell) -> Float.max acc (c.started_s +. c.elapsed_s))
        0.0 r.cells
    in
    let span = Float.max 1e-9 (t1 -. t0) in
    let workers =
      1
      + Array.fold_left
          (fun acc (c : Ledger.cell) -> max acc c.worker)
          0 r.cells
    in
    let left = 70.0 and top = 6.0 and right = 8.0 and bottom = 24.0 in
    let plot_w = 770.0 in
    let lane_h = 22.0 in
    let plot_h = lane_h *. float_of_int workers in
    let w = left +. plot_w +. right and h = top +. plot_h +. bottom in
    let buf = Buffer.create 4096 in
    Buffer.add_string buf
      (pf "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"Sweep cell timeline\">"
         w h);
    for lane = 0 to workers - 1 do
      let y = top +. (lane_h *. float_of_int lane) in
      Buffer.add_string buf
        (pf "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">worker %d</text>"
           (left -. 8.0) (y +. 15.0) lane);
      Buffer.add_string buf
        (pf "<line class=\"grid\" x1=\"%.1f\" y1=\"%.1f\" x2=\"%.1f\" y2=\"%.1f\"/>"
           left (y +. lane_h) (left +. plot_w) (y +. lane_h))
    done;
    Array.iter
      (fun (c : Ledger.cell) ->
        let x = left +. (plot_w *. (c.started_s -. t0) /. span) in
        let bw = Float.max 1.5 (plot_w *. c.elapsed_s /. span) in
        let y = top +. (lane_h *. float_of_int c.worker) +. 3.0 in
        let cls = if c.degraded then "class=\"deg\"" else "fill=\"var(--c0)\"" in
        let tip =
          pf "%s / %s: %.3fs at +%.3fs, %d attempt%s%s" c.mix c.scheme
            c.elapsed_s (c.started_s -. t0) c.attempts
            (if c.attempts = 1 then "" else "s")
            (if c.degraded then ", degraded" else "")
        in
        Buffer.add_string buf
          (pf "<g><rect x=\"%.1f\" y=\"%.1f\" width=\"%.1f\" height=\"%.1f\" rx=\"2\" %s stroke=\"var(--surface)\" stroke-width=\"1\"/><title>%s</title></g>"
             x y bw (lane_h -. 6.0) cls (esc tip)))
      r.cells;
    Buffer.add_string buf
      (pf "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\">0s</text>" left
         (top +. plot_h +. 16.0));
    Buffer.add_string buf
      (pf "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"end\">%.2fs</text>"
         (left +. plot_w) (top +. plot_h +. 16.0) span);
    Buffer.add_string buf "</svg>";
    pf
      "<section><h2>Sweep cell timeline</h2>%s<p class=\"note\">One lane per worker domain; hover a bar for the (mix, scheme) cell and its timing.</p></section>"
      (Buffer.contents buf)
  end

let section_trajectory ~(runs : Ledger.run list) (current : Ledger.run) =
  (* Grid runs chart mean IPC; gauge-only records (e.g. bench --json)
     chart their headline gauge, so perf trends plot the same way
     result drift does. *)
  let metric_label, metric =
    if Array.length current.cells > 0 then
      ( "mean IPC",
        fun (r : Ledger.run) ->
          if Array.length r.cells = 0 then Float.nan else Ledger.mean_ipc r )
    else begin
      let key =
        if List.mem_assoc "exp_all_calibrated" current.gauges then
          "exp_all_calibrated"
        else match current.gauges with (k, _) :: _ -> k | [] -> ""
      in
      ( key,
        fun (r : Ledger.run) ->
          match List.assoc_opt key r.gauges with
          | Some v -> v
          | None -> Float.nan )
    end
  in
  if metric_label = "" then ""
  else begin
  let comparable =
    List.filter
      (fun (r : Ledger.run) ->
        r.fingerprint = current.fingerprint
        && not (Float.is_nan (metric r)))
      runs
  in
  match comparable with
  | [] | [ _ ] ->
    if Float.is_nan (metric current) then ""
    else
      pf
        "<section><h2>Cross-run trajectory</h2><p class=\"hero\">%s</p><p class=\"note\">%s this run — the trajectory chart appears once the ledger holds a second run with this configuration fingerprint.</p></section>"
        (fmt_num (metric current))
        (esc metric_label)
  | _ ->
    let pts = List.map (fun r -> (r, metric r)) comparable in
    let n = List.length pts in
    if n < 2 then ""
    else begin
      let vmax = nice_max (List.fold_left (fun a (_, v) -> Float.max a v) 0.0 pts) in
      let left = 46.0 and top = 10.0 and bottom = 30.0 and right = 16.0 in
      let plot_w = 812.0 and plot_h = 180.0 in
      let w = left +. plot_w +. right and h = top +. plot_h +. bottom in
      let px i = left +. (plot_w *. float_of_int i /. float_of_int (n - 1)) in
      let py v = top +. plot_h -. (plot_h *. v /. vmax) in
      let buf = Buffer.create 4096 in
      Buffer.add_string buf
        (pf "<svg viewBox=\"0 0 %.0f %.0f\" role=\"img\" aria-label=\"%s across runs\">"
           w h (esc metric_label));
      y_axis buf ~left ~top ~plot_w ~plot_h ~vmax ~ticks:4;
      let path =
        String.concat " "
          (List.mapi
             (fun i (_, v) -> pf "%s%.1f %.1f" (if i = 0 then "M" else "L") (px i) (py v))
             pts)
      in
      Buffer.add_string buf
        (pf "<path d=\"%s\" fill=\"none\" stroke=\"var(--c0)\" stroke-width=\"2\"/>"
           path);
      let label_every = max 1 (n / 10) in
      List.iteri
        (fun i ((r : Ledger.run), v) ->
          let cur = r.id = current.id in
          Buffer.add_string buf
            (pf
               "<g><circle cx=\"%.1f\" cy=\"%.1f\" r=\"%s\" fill=\"var(--c0)\" stroke=\"var(--surface)\" stroke-width=\"2\"/><title>%s (%s, git %s): %s %.4f, wall %.2fs</title></g>"
               (px i) (py v)
               (if cur then "6" else "4")
               (esc r.id) (fmt_time r.time_s) (esc r.git_rev)
               (esc metric_label) v r.wall_s);
          if i mod label_every = 0 || cur then
            Buffer.add_string buf
              (pf "<text class=\"tick\" x=\"%.1f\" y=\"%.1f\" text-anchor=\"middle\">%s</text>"
                 (px i) (top +. plot_h +. 16.0) (esc r.id)))
        pts;
      Buffer.add_string buf "</svg>";
      pf
        "<section><h2>Cross-run trajectory</h2>%s<p class=\"note\">%s across the %d ledger runs sharing configuration fingerprint %s; the large marker is this run.</p></section>"
        (Buffer.contents buf) (esc metric_label) n (esc current.fingerprint)
    end
  end

(* --- document --------------------------------------------------------- *)

let style ~k =
  let light_vars, dark_vars = series_vars (max 1 k) in
  pf
    {|:root{color-scheme:light dark}
body{margin:0;padding:24px;background:var(--surface);color:var(--ink);
  font:14px/1.5 system-ui,sans-serif;
  --surface:#fcfcfb;--ink:#0b0b0b;--ink2:#52514e;--grid:#e7e6e2;--deg:#d03b3b;%s}
@media (prefers-color-scheme:dark){body{
  --surface:#1a1a19;--ink:#ffffff;--ink2:#c3c2b7;--grid:#33322f;--deg:#e66767;%s}}
main{max-width:900px;margin:0 auto}
h1{font-size:20px}h2{font-size:16px;margin:28px 0 8px}h3{font-size:13px;color:var(--ink2);margin:14px 0 4px}
section{margin-bottom:8px}
svg{display:block;width:100%%;height:auto}
svg text{font:11px system-ui,sans-serif;fill:var(--ink2)}
svg text.val{fill:var(--ink)}
.grid{stroke:var(--grid);stroke-width:1}
.axis{stroke:var(--ink2);stroke-width:1}
.deg,path.deg,rect.deg{fill:var(--deg)}
.degswatch{display:inline-block;width:10px;height:10px;border-radius:2px;background:var(--deg);margin-right:6px}
.legend{display:flex;flex-wrap:wrap;gap:4px 16px;margin:6px 0;color:var(--ink2)}
.legend i{display:inline-block;width:10px;height:10px;border-radius:2px;margin-right:6px}
.note{color:var(--ink2);font-size:12px}
.hero{font-size:40px;font-weight:600;margin:6px 0}
table{border-collapse:collapse;margin:6px 0}
th,td{text-align:left;padding:3px 12px 3px 0;border-bottom:1px solid var(--grid)}
td.num{text-align:right;font-variant-numeric:tabular-nums}
table.kv th{color:var(--ink2);font-weight:500;padding-right:20px}
table.data{font-variant-numeric:tabular-nums;font-size:13px}
table.stall{width:100%%;margin-bottom:16px}
td.sharecell{width:40%%}
.share{height:8px;border-radius:2px;background:var(--c0);min-width:1px}
details summary{cursor:pointer;color:var(--ink2);font-size:13px;margin:6px 0}|}
    light_vars dark_vars

let render ?(runs = []) (r : Ledger.run) =
  let k = max 1 (List.length r.scheme_names) in
  pf
    {|<!doctype html>
<html lang="en"><head><meta charset="utf-8">
<meta name="viewport" content="width=device-width,initial-scale=1">
<title>vliwsim run %s</title>
<style>%s</style></head>
<body><main>
<h1>vliwsim run report</h1>
%s%s%s%s%s%s%s%s%s%s
<p class="note">Generated by vliwsim; self-contained file (no scripts, no external resources).</p>
</main></body></html>
|}
    (esc r.id) (style ~k) (section_summary r) (section_ipc_grid r)
    (section_adaptive r) (section_service r) (section_dist r)
    (section_latency r) (section_waste r) (section_stalls r)
    (section_timeline r) (section_trajectory ~runs r)
