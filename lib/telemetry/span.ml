(* Cross-process tracing spans.

   Ids come from a SplitMix64 stream owned by the collector — never
   from [Random] or the clock — and wall timestamps come from an
   injectable clock function, so span trees are deterministic under
   test. Spans cross the wire as NDJSON objects whose float fields are
   IEEE-754 bit images (the repo-wide exactness convention): a worker's
   child spans survive the coordinator merge bit-identical. *)

module J = Vliw_util.Json
module Stats = Vliw_util.Stats
module Rng = Vliw_util.Rng

type kind =
  | Submit
  | Queue_wait
  | Schedule
  | Dispatch
  | Shard
  | Prepare_row
  | Simulate_cell
  | Retry
  | Ledger_append

let all_kinds =
  [
    Submit;
    Queue_wait;
    Schedule;
    Dispatch;
    Shard;
    Prepare_row;
    Simulate_cell;
    Retry;
    Ledger_append;
  ]

let kind_name = function
  | Submit -> "submit"
  | Queue_wait -> "queue_wait"
  | Schedule -> "schedule"
  | Dispatch -> "dispatch"
  | Shard -> "shard"
  | Prepare_row -> "prepare_row"
  | Simulate_cell -> "simulate_cell"
  | Retry -> "retry"
  | Ledger_append -> "ledger_append"

let kind_of_name s =
  List.find_opt (fun k -> kind_name k = s) all_kinds

type t = {
  trace : int64;
  id : int64;
  parent : int64 option;
  kind : kind;
  name : string;
  lane : string;
  start_s : float;
  dur_s : float;
}

let id_to_hex id = Printf.sprintf "0x%Lx" id

let id_of_hex s =
  match Int64.of_string_opt s with
  | Some id -> Ok id
  | None -> Error (Printf.sprintf "span: bad id %S" s)

(* {1 Collector} *)

type collector = {
  mutable recorded : t list;  (* reverse insertion order *)
  ids : Rng.t;
  clock : unit -> float;
  mutex : Mutex.t;
}

let collector ?(clock = Unix.gettimeofday) ~seed () =
  { recorded = []; ids = Rng.create seed; clock; mutex = Mutex.create () }

let now c = c.clock ()

let locked c f =
  Mutex.lock c.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock c.mutex) f

let fresh_id c = locked c (fun () -> Rng.next_int64 c.ids)

let add c span = locked c (fun () -> c.recorded <- span :: c.recorded)

let record c ~trace ?parent ~kind ~name ~lane ~start_s ~dur_s () =
  let span =
    {
      trace;
      id = fresh_id c;
      parent;
      kind;
      name;
      lane;
      start_s;
      dur_s;
    }
  in
  add c span;
  span

let spans c = locked c (fun () -> List.rev c.recorded)
let count c = locked c (fun () -> List.length c.recorded)
let clear c = locked c (fun () -> c.recorded <- [])

(* {1 Wire codec} *)

let bits_to_hex f = Printf.sprintf "0x%Lx" (Int64.bits_of_float f)

let to_json s =
  let base =
    [
      ("trace", J.Str (id_to_hex s.trace));
      ("span", J.Str (id_to_hex s.id));
    ]
  in
  let parent =
    match s.parent with
    | None -> []
    | Some p -> [ ("parent", J.Str (id_to_hex p)) ]
  in
  J.Obj
    (base @ parent
    @ [
        ("kind", J.Str (kind_name s.kind));
        ("name", J.Str s.name);
        ("lane", J.Str s.lane);
        ("t0", J.Str (bits_to_hex s.start_s));
        ("dur", J.Str (bits_to_hex s.dur_s));
      ])

let ( let* ) = Result.bind

let field_id j key =
  match J.member key j with
  | Some (J.Str s) -> Result.map Option.some (id_of_hex s)
  | Some _ -> Error (Printf.sprintf "span: %s must be a hex string" key)
  | None -> Ok None

let require key = function
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "span: missing %s" key)

let field_bits j key =
  let* id = field_id j key in
  let* id = require key id in
  Ok (Int64.float_of_bits id)

let field_str j key =
  match J.member key j with
  | Some (J.Str s) -> Ok s
  | Some _ -> Error (Printf.sprintf "span: %s must be a string" key)
  | None -> Error (Printf.sprintf "span: missing %s" key)

let of_json j =
  let* trace = field_id j "trace" in
  let* trace = require "trace" trace in
  let* id = field_id j "span" in
  let* id = require "span" id in
  let* parent = field_id j "parent" in
  let* kind_s = field_str j "kind" in
  let* kind =
    match kind_of_name kind_s with
    | Some k -> Ok k
    | None -> Error (Printf.sprintf "span: unknown kind %S" kind_s)
  in
  let* name = field_str j "name" in
  let* lane = field_str j "lane" in
  let* start_s = field_bits j "t0" in
  let* dur_s = field_bits j "dur" in
  Ok { trace; id; parent; kind; name; lane; start_s; dur_s }

let list_to_json spans = J.List (List.map to_json spans)

let list_of_json j =
  match j with
  | J.List items ->
    List.fold_left
      (fun acc item ->
        let* acc = acc in
        let* s = of_json item in
        Ok (s :: acc))
      (Ok []) items
    |> Result.map List.rev
  | _ -> Error "span: spans must be a list"

(* {1 Analysis} *)

let durations_by_kind spans =
  List.filter_map
    (fun kind ->
      match List.filter (fun s -> s.kind = kind) spans with
      | [] -> None
      | matching ->
        Some (kind, Array.of_list (List.map (fun s -> s.dur_s) matching)))
    all_kinds

let latency_gauges spans =
  List.concat_map
    (fun (kind, durs) ->
      let prefix = "span." ^ kind_name kind in
      [
        (prefix ^ ".count", float_of_int (Array.length durs));
        (prefix ^ ".p50", Stats.p50 durs);
        (prefix ^ ".p95", Stats.p95 durs);
        (prefix ^ ".p99", Stats.p99 durs);
      ])
    (durations_by_kind spans)

(* Latency bounds in seconds: sub-millisecond scheduling up through
   multi-minute sweeps, roughly geometric. *)
let hist_bounds =
  [| 1e-4; 1e-3; 5e-3; 0.025; 0.1; 0.5; 2.0; 10.0; 60.0; 300.0 |]

let observe_histograms registry spans =
  List.iter
    (fun (kind, durs) ->
      let h =
        Counters.histogram registry
          ("span." ^ kind_name kind ^ ".seconds")
          ~bounds:hist_bounds
      in
      Array.iter (Counters.observe h) durs)
    (durations_by_kind spans)

let validate ?(slack_s = 0.01) spans =
  let tbl = Hashtbl.create (List.length spans * 2) in
  List.iter (fun s -> Hashtbl.replace tbl (s.trace, s.id) s) spans;
  let problems = ref [] in
  let problem fmt = Printf.ksprintf (fun m -> problems := m :: !problems) fmt in
  List.iter
    (fun s ->
      if not (Float.is_finite s.start_s) then
        problem "span %s: non-finite start" (id_to_hex s.id);
      if not (s.dur_s >= 0.0) then
        problem "span %s: negative duration %g" (id_to_hex s.id) s.dur_s;
      match s.parent with
      | None -> ()
      | Some p -> (
        match Hashtbl.find_opt tbl (s.trace, p) with
        | None ->
          problem "span %s: parent %s not in trace %s" (id_to_hex s.id)
            (id_to_hex p) (id_to_hex s.trace)
        | Some parent ->
          if
            s.start_s < parent.start_s -. slack_s
            || s.start_s +. s.dur_s
               > parent.start_s +. parent.dur_s +. slack_s
          then
            problem "span %s (%s) escapes parent %s (%s)" (id_to_hex s.id)
              (kind_name s.kind) (id_to_hex p) (kind_name parent.kind)))
    spans;
  List.rev !problems

(* {1 Chrome export} *)

let to_chrome ?(process_name = "vliwsim fleet") spans =
  match spans with
  | [] -> Chrome_trace.of_spans ~process_name ~lane_names:[] []
  | _ ->
    let lanes = Hashtbl.create 8 in
    let lane_names = ref [] in
    let lane_of s =
      match Hashtbl.find_opt lanes s.lane with
      | Some i -> i
      | None ->
        let i = Hashtbl.length lanes in
        Hashtbl.add lanes s.lane i;
        lane_names := (i, s.lane) :: !lane_names;
        i
    in
    let t_min =
      List.fold_left (fun acc s -> min acc s.start_s) infinity spans
    in
    let chrome_spans =
      List.map
        (fun s ->
          let args =
            [
              ("trace", id_to_hex s.trace);
              ("span", id_to_hex s.id);
              ("kind", kind_name s.kind);
            ]
            @
            match s.parent with
            | None -> []
            | Some p -> [ ("parent", id_to_hex p) ]
          in
          {
            Chrome_trace.lane = lane_of s;
            name =
              (if s.name = "" then kind_name s.kind
               else kind_name s.kind ^ " " ^ s.name);
            start_us = (s.start_s -. t_min) *. 1e6;
            dur_us = s.dur_s *. 1e6;
            args;
          })
        spans
    in
    Chrome_trace.of_spans ~process_name ~lane_names:(List.rev !lane_names)
      chrome_spans
