(** Pre-allocated ring buffer of timestamped events.

    The buffer is allocated once at creation; recording never allocates
    beyond the entry record itself. When full, the oldest entry is
    overwritten and {!dropped} counts the loss, so long runs keep the
    most recent window — the part a trace viewer wants. *)

type entry = { cycle : int; event : Event.t }

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 65536 entries. *)

val capacity : t -> int

val length : t -> int
(** Live entries currently held. *)

val dropped : t -> int
(** Entries overwritten because the buffer was full. *)

val record : t -> cycle:int -> Event.t -> unit

val iter : t -> (entry -> unit) -> unit
(** Oldest to newest. *)

val to_list : t -> entry list
(** Oldest first. *)

val sink : t -> Sink.t
