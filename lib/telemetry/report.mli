(** Stall attribution: an exact decomposition of wasted issue slots.

    The simulator core bumps these counters once per cycle when
    profiling is attached. The invariant — property-tested — is

    {v slots.offered - slots.filled = sum of all waste.* counters v}

    so the rendered table always sums to the total wasted slots. *)

type handles = {
  cycles : Counters.counter;
  slots_offered : Counters.counter;
  slots_filled : Counters.counter;
  v_fetch : Counters.counter;  (** Vertical: all threads in I$ fetch stall. *)
  v_mem : Counters.counter;  (** Vertical: D$ miss stalls dominate. *)
  v_branch : Counters.counter;  (** Vertical: branch-mispredict stalls. *)
  v_switch : Counters.counter;  (** Vertical: BMT context-switch bubble. *)
  v_idle : Counters.counter;  (** Vertical: no resident thread. *)
  h_conflict : Counters.counter;  (** Horizontal: cluster/slot conflicts. *)
  h_capacity : Counters.counter;  (** Horizontal: issue-width capacity. *)
  h_priority : Counters.counter;  (** Horizontal: policy denied a ready thread. *)
  h_ilp : Counters.counter;  (** Horizontal: not enough candidate ops. *)
  switch_bubbles : Counters.counter;
      (** Cycles whose whole width was booked to the switch-bubble
          category ([waste.vertical.bmt_switch]): BMT context-switch
          bubbles and adaptive merge-network reconfiguration stalls.
          Lets the conservation law "v_switch slots = width x bubble
          cycles" be checked after the fact. *)
}

val attach : Counters.t -> handles
(** Resolve (creating as needed) every attribution counter in the
    registry. *)

val categories : (string * string) list
(** Waste counter names with display labels, in render order. *)

val n_cycles : string
(** Counter name for simulated cycles ([core.cycles]). *)

val n_v_switch : string
(** Counter name of the switch-bubble waste category
    ([waste.vertical.bmt_switch]): whole-width cycles lost to BMT
    context-switch bubbles and merge-network reconfigurations. *)

val n_memo_hits : string
(** Counter name for merge decision-cache hits
    ([merge.memo.hits]). Flushed by the simulator core at metrics time;
    describes simulator throughput, not machine behaviour. *)

val n_memo_misses : string

val n_memo_flushes : string
(** Whole-table flushes on reaching the capacity bound
    ([merge.memo.flushes]). Hit/miss tallies are cumulative across
    flushes: a flush drops cached entries, never counters. *)

val n_memo_scheme_prefix : string
(** Prefix of the per-scheme decision-cache counters
    ([merge.memo.scheme.<name>.hits|misses|flushes]); one triple per
    scheme the core's merge network has run. *)

val n_memo_scheme : string -> string -> string
(** [n_memo_scheme name suffix] is the per-scheme counter name, e.g.
    [n_memo_scheme "2SC3" "hits" = "merge.memo.scheme.2SC3.hits"]. *)

val memo_scheme_stats : Counters.snapshot -> (string * int * int * int) list
(** Per-scheme decision-cache statistics recovered from a snapshot:
    [(scheme, hits, misses, flushes)], name-sorted. *)

val n_switch_bubbles : string
(** Counter name behind [handles.switch_bubbles]
    ([core.switch_bubble_cycles]). *)

val n_scheme_switches : string
(** Merge-network reconfigurations performed ([sim.scheme_switches]);
    flushed by the core at metrics time. *)

val n_switch_stall : string
(** Total issue-stall cycles scheduled by reconfigurations and BMT
    context switches ([sim.switch_stall_cycles]); flushed by the core
    at metrics time. Attribution books a switch bubble only when a
    candidate was actually denied, so
    [core.switch_bubble_cycles <= sim.switch_stall_cycles]. *)

val n_controller_prefix : string
(** Prefix of the adaptive controller's per-scheme decision counters
    ([controller.decisions.<name>]): how many boundary decisions picked
    each candidate scheme. Booked by the multitasking harness when both
    a controller and a counter registry are attached. *)

val n_controller_decisions : string -> string
(** [n_controller_decisions name = "controller.decisions." ^ name]. *)

val n_controller_switches : string
(** Owner changes the controller decided ([controller.switches]) —
    an upper bound on [sim.scheme_switches] (a decided switch may find
    the core already running the target scheme). *)

val n_sweep_retries : string
(** Counter name for sweep cell attempts that failed and were retried
    ([sweep.retries]). Bumped by [Vliw_experiments.Sweep]; harness
    fault-tolerance accounting, outside the waste sum. *)

val n_sweep_degraded : string
(** Cells that exhausted their retry budget and were recorded as
    degraded ([sweep.degraded]). *)

val n_sweep_timeouts : string
(** Cell attempts whose wall-clock exceeded the per-cell timeout
    ([sweep.timeouts]); each timed-out attempt also counts as a retry
    or a degradation. *)

val n_sweep_resumed : string
(** Cells restored from a checkpoint journal instead of being simulated
    ([sweep.resumed_cells]). *)

val wasted : Counters.snapshot -> int
(** [slots.offered - slots.filled]. *)

val attributed : Counters.snapshot -> int
(** Sum of every waste category (equals {!wasted} by the invariant). *)

val render : Counters.snapshot -> string
(** Human-readable attribution table. *)
