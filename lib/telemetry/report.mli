(** Stall attribution: an exact decomposition of wasted issue slots.

    The simulator core bumps these counters once per cycle when
    profiling is attached. The invariant — property-tested — is

    {v slots.offered - slots.filled = sum of all waste.* counters v}

    so the rendered table always sums to the total wasted slots. *)

type handles = {
  cycles : Counters.counter;
  slots_offered : Counters.counter;
  slots_filled : Counters.counter;
  v_fetch : Counters.counter;  (** Vertical: all threads in I$ fetch stall. *)
  v_mem : Counters.counter;  (** Vertical: D$ miss stalls dominate. *)
  v_branch : Counters.counter;  (** Vertical: branch-mispredict stalls. *)
  v_switch : Counters.counter;  (** Vertical: BMT context-switch bubble. *)
  v_idle : Counters.counter;  (** Vertical: no resident thread. *)
  h_conflict : Counters.counter;  (** Horizontal: cluster/slot conflicts. *)
  h_capacity : Counters.counter;  (** Horizontal: issue-width capacity. *)
  h_priority : Counters.counter;  (** Horizontal: policy denied a ready thread. *)
  h_ilp : Counters.counter;  (** Horizontal: not enough candidate ops. *)
}

val attach : Counters.t -> handles
(** Resolve (creating as needed) every attribution counter in the
    registry. *)

val categories : (string * string) list
(** Waste counter names with display labels, in render order. *)

val n_memo_hits : string
(** Counter name for merge decision-cache hits
    ([merge.memo.hits]). Flushed by the simulator core at metrics time;
    describes simulator throughput, not machine behaviour. *)

val n_memo_misses : string

val n_memo_evictions : string
(** Whole-table flushes on reaching the capacity bound. *)

val n_sweep_retries : string
(** Counter name for sweep cell attempts that failed and were retried
    ([sweep.retries]). Bumped by [Vliw_experiments.Sweep]; harness
    fault-tolerance accounting, outside the waste sum. *)

val n_sweep_degraded : string
(** Cells that exhausted their retry budget and were recorded as
    degraded ([sweep.degraded]). *)

val n_sweep_timeouts : string
(** Cell attempts whose wall-clock exceeded the per-cell timeout
    ([sweep.timeouts]); each timed-out attempt also counts as a retry
    or a degradation. *)

val n_sweep_resumed : string
(** Cells restored from a checkpoint journal instead of being simulated
    ([sweep.resumed_cells]). *)

val wasted : Counters.snapshot -> int
(** [slots.offered - slots.filled]. *)

val attributed : Counters.snapshot -> int
(** Sum of every waste category (equals {!wasted} by the invariant). *)

val render : Counters.snapshot -> string
(** Human-readable attribution table. *)
