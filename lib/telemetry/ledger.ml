(* The run ledger: a durable, append-only history of simulation runs.

   Every `vliwsim exp|run|bench` invocation appends one JSONL line to
   [_runs/ledger.jsonl] recording what ran (command, label, git
   revision, configuration fingerprint), how (scale, seed, jobs,
   wall-clock), and what came out: the per-cell IPC grid with each
   cell's IEEE-754 bit image, the merged telemetry counter snapshot,
   and the sweep's fault-tolerance stats (retries / degraded cells /
   timeouts / resumed cells). That makes cross-revision drift a
   first-class query — `vliwsim runs diff A B` bit-compares two grids
   and names the first differing (mix, scheme) cell — and feeds the
   HTML report's cross-run trajectory chart.

   Storage discipline:
   - IPC values are stored twice: a decimal [ipc] for human readers and
     grep, and the hex bit image [bits] which is authoritative. A run
     round-tripped through the ledger diffs as Identical against the
     original, including nan (degraded) cells.
   - Appends rewrite the file through [Vliw_util.Atomic_io], so a kill
     mid-append never leaves a torn line; a malformed line (manual
     edit, disk corruption) is skipped by [load] rather than fatal.
   - Ids are assigned at append time as "r1", "r2", ... in file order,
     so CLI invocations can name runs cheaply. The ledger is a
     single-user, single-writer store by design. *)

type cell = {
  mix : string;
  scheme : string;
  ipc : float;  (* nan for a degraded cell; compared via its bits *)
  elapsed_s : float;
  started_s : float;
  worker : int;
  attempts : int;
  degraded : bool;
}

type run = {
  id : string;  (* "" until [append] assigns one *)
  time_s : float;  (* unix epoch seconds when the record was made *)
  cmd : string;  (* exp | run | bench *)
  label : string;  (* experiment id, "SCHEME on MIX", bench mode... *)
  git_rev : string;
  fingerprint : string;  (* hash of (scale, seed, schemes, mixes) *)
  scale : string;
  seed : int64;
  jobs : int;
  scheme_names : string list;
  mix_names : string list;
  policy : string;
      (* controller policy of adaptive runs ("static" for plain sweeps);
         part of the fingerprint, so adaptive never collides with static *)
  wall_s : float;
  cells : cell array;  (* mix-major, possibly empty for bench runs *)
  counters : (string * int) list;  (* merged telemetry snapshot *)
  gauges : (string * float) list;  (* scalar results (ipc.mean, ...) *)
  retries : int;
  degraded : int;
  timeouts : int;
  resumed : int;
}

let default_dir = "_runs"

let ledger_path ~dir = Filename.concat dir "ledger.jsonl"

(* --- hashing ---------------------------------------------------------- *)

let fnv1a64 init s =
  String.fold_left
    (fun acc c ->
      Int64.mul (Int64.logxor acc (Int64.of_int (Char.code c))) 0x100000001B3L)
    init s

let fnv_offset = 0xCBF29CE484222325L

(* The policy joins the key only when non-static, so every fingerprint
   recorded before adaptive runs existed is preserved verbatim. *)
let fingerprint_of ?(policy = "static") ~scale ~seed ~scheme_names ~mix_names ()
    =
  let key =
    String.concat "\x00"
      ((scale :: Printf.sprintf "0x%Lx" seed :: scheme_names)
      @ ("|" :: mix_names)
      @ (if policy = "static" then [] else [ "policy:" ^ policy ]))
  in
  Printf.sprintf "%016Lx" (fnv1a64 fnv_offset key)

let grid_digest cells =
  let h = ref fnv_offset in
  Array.iter
    (fun c ->
      h := fnv1a64 !h (c.mix ^ "/" ^ c.scheme);
      h := fnv1a64 !h (Printf.sprintf "%Lx" (Int64.bits_of_float c.ipc)))
    cells;
  Printf.sprintf "%016Lx" !h

(* --- environment ------------------------------------------------------ *)

let git_rev () =
  match Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" with
  | exception _ -> "unknown"
  | ic ->
    let line = try input_line ic with End_of_file -> "" in
    (match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> line
    | _ -> "unknown"
    | exception _ -> "unknown")

let make ?(counters = []) ?(gauges = []) ?(cells = [||]) ?(policy = "static")
    ~cmd ~label ~scale ~seed ~jobs ~scheme_names ~mix_names ~wall_s () =
  let count name = try List.assoc name counters with Not_found -> 0 in
  {
    id = "";
    time_s = Unix.gettimeofday ();
    cmd;
    label;
    git_rev = git_rev ();
    fingerprint = fingerprint_of ~policy ~scale ~seed ~scheme_names ~mix_names ();
    scale;
    seed;
    jobs;
    scheme_names;
    mix_names;
    policy;
    wall_s;
    cells;
    counters;
    gauges;
    retries =
      Array.fold_left (fun acc c -> acc + max 0 (c.attempts - 1)) 0 cells;
    degraded =
      Array.fold_left
        (fun acc (c : cell) -> acc + (if c.degraded then 1 else 0))
        0 cells;
    timeouts = count "sweep.timeouts";
    resumed = count "sweep.resumed_cells";
  }

let mean_ipc run =
  let sum = ref 0.0 and n = ref 0 in
  Array.iter
    (fun c ->
      if not (Float.is_nan c.ipc) then begin
        sum := !sum +. c.ipc;
        incr n
      end)
    run.cells;
  if !n = 0 then Float.nan else !sum /. float_of_int !n

(* --- JSON (de)serialization ------------------------------------------ *)

module J = Vliw_util.Json

let hex64 v = Printf.sprintf "0x%Lx" v

let cell_to_json c =
  J.Obj
    ([
       ("mix", J.Str c.mix);
       ("scheme", J.Str c.scheme);
       ("ipc", J.Num c.ipc);
       ("bits", J.Str (hex64 (Int64.bits_of_float c.ipc)));
       ("t", J.Num c.elapsed_s);
       ("at", J.Num c.started_s);
       ("w", J.Num (float_of_int c.worker));
       ("n", J.Num (float_of_int c.attempts));
     ]
    @ if c.degraded then [ ("deg", J.Bool true) ] else [])

let to_json r =
  J.Obj
    ([
      ("schema", J.Num 1.0);
      ("id", J.Str r.id);
      ("time_s", J.Num r.time_s);
      ("cmd", J.Str r.cmd);
      ("label", J.Str r.label);
      ("git", J.Str r.git_rev);
      ("fp", J.Str r.fingerprint);
      ("scale", J.Str r.scale);
      ("seed", J.Str (hex64 r.seed));
      ("jobs", J.Num (float_of_int r.jobs));
      ("schemes", J.List (List.map (fun s -> J.Str s) r.scheme_names));
      ("mixes", J.List (List.map (fun s -> J.Str s) r.mix_names));
    ]
    @ (* serialized only when non-static: records written before the
         field existed load back identically *)
    (if r.policy = "static" then [] else [ ("policy", J.Str r.policy) ])
    @ [
      ("wall_s", J.Num r.wall_s);
      ("digest", J.Str (grid_digest r.cells));
      ("cells", J.List (Array.to_list (Array.map cell_to_json r.cells)));
      ( "counters",
        J.Obj (List.map (fun (k, v) -> (k, J.Num (float_of_int v))) r.counters)
      );
      ("gauges", J.Obj (List.map (fun (k, v) -> (k, J.Num v)) r.gauges));
      ("retries", J.Num (float_of_int r.retries));
      ("degraded", J.Num (float_of_int r.degraded));
      ("timeouts", J.Num (float_of_int r.timeouts));
      ("resumed", J.Num (float_of_int r.resumed));
    ])

let str_field j key = Option.bind (J.member key j) J.to_string_opt

let num_field j key = Option.bind (J.member key j) J.to_float

let int_field j key default =
  match Option.bind (J.member key j) J.to_int with Some v -> v | None -> default

let names_field j key =
  match Option.bind (J.member key j) J.to_list with
  | Some items -> List.filter_map J.to_string_opt items
  | None -> []

let cell_of_json j =
  match (str_field j "mix", str_field j "scheme") with
  | Some mix, Some scheme ->
    (* [bits] is authoritative when present (exact, nan-safe); the
       decimal [ipc] is the fallback for hand-written records. *)
    let ipc =
      match Option.bind (str_field j "bits") Int64.of_string_opt with
      | Some bits -> Int64.float_of_bits bits
      | None -> (
        match num_field j "ipc" with Some v -> v | None -> Float.nan)
    in
    Some
      {
        mix;
        scheme;
        ipc;
        elapsed_s = Option.value ~default:0.0 (num_field j "t");
        started_s = Option.value ~default:0.0 (num_field j "at");
        worker = int_field j "w" 0;
        attempts = int_field j "n" 1;
        degraded =
          (match Option.bind (J.member "deg" j) J.to_bool with
          | Some b -> b
          | None -> false);
      }
  | _ -> None

let assoc_of_obj j key of_num =
  match J.member key j with
  | Some (J.Obj fields) ->
    List.filter_map
      (fun (k, v) -> Option.map (fun n -> (k, of_num n)) (J.to_float v))
      fields
  | _ -> []

let of_json j =
  match (str_field j "cmd", str_field j "label") with
  | Some cmd, Some label ->
    let cells =
      match Option.bind (J.member "cells" j) J.to_list with
      | Some items -> Array.of_list (List.filter_map cell_of_json items)
      | None -> [||]
    in
    Some
      {
        id = Option.value ~default:"" (str_field j "id");
        time_s = Option.value ~default:0.0 (num_field j "time_s");
        cmd;
        label;
        git_rev = Option.value ~default:"unknown" (str_field j "git");
        fingerprint = Option.value ~default:"" (str_field j "fp");
        scale = Option.value ~default:"default" (str_field j "scale");
        seed =
          Option.value ~default:0L
            (Option.bind (str_field j "seed") Int64.of_string_opt);
        jobs = int_field j "jobs" 1;
        scheme_names = names_field j "schemes";
        mix_names = names_field j "mixes";
        policy = Option.value ~default:"static" (str_field j "policy");
        wall_s = Option.value ~default:0.0 (num_field j "wall_s");
        cells;
        counters = assoc_of_obj j "counters" int_of_float;
        gauges = assoc_of_obj j "gauges" Fun.id;
        retries = int_field j "retries" 0;
        degraded = int_field j "degraded" 0;
        timeouts = int_field j "timeouts" 0;
        resumed = int_field j "resumed" 0;
      }
  | _ -> None

(* --- persistence ------------------------------------------------------ *)

let load ~dir =
  let path = ledger_path ~dir in
  if not (Sys.file_exists path) then []
  else begin
    let text = In_channel.with_open_bin path In_channel.input_all in
    String.split_on_char '\n' text
    |> List.filter_map (fun line ->
           if String.trim line = "" then None
           else
             match J.parse line with
             | Ok j -> of_json j
             | Error _ -> None (* torn/corrupt line: skip, don't abort *))
  end

(* Ids are max+1, not count+1: [gc] leaves gaps in the sequence, and a
   fresh id must never collide with a surviving record's. *)
let numeric_id r =
  if String.length r.id > 1 && r.id.[0] = 'r' then
    int_of_string_opt (String.sub r.id 1 (String.length r.id - 1))
  else None

let append ~dir run =
  if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
  let existing = load ~dir in
  let next =
    1
    + List.fold_left
        (fun acc r ->
          match numeric_id r with Some n -> max acc n | None -> acc)
        0 existing
  in
  let run = { run with id = Printf.sprintf "r%d" next } in
  Vliw_util.Atomic_io.append_line ~path:(ledger_path ~dir)
    (J.to_string (to_json run));
  run

type gc_report = { kept : run list; dropped : run list }

(* Deduplication key: configuration fingerprint AND grid digest. Two
   records with the same fingerprint but different bits are drift
   evidence (same config, different code revisions) — gc must never
   collapse them, or [runs diff] loses its witnesses. *)
let gc ?(dry_run = false) ~dir () =
  let runs = load ~dir in
  let key r = r.fingerprint ^ "\x00" ^ grid_digest r.cells in
  let newest = Hashtbl.create 16 in
  List.iteri (fun i r -> Hashtbl.replace newest (key r) i) runs;
  let kept = ref [] and dropped = ref [] in
  List.iteri
    (fun i r ->
      if Hashtbl.find newest (key r) = i then kept := r :: !kept
      else dropped := r :: !dropped)
    runs;
  let report = { kept = List.rev !kept; dropped = List.rev !dropped } in
  if (not dry_run) && report.dropped <> [] then
    Vliw_util.Atomic_io.write_file ~path:(ledger_path ~dir)
      (String.concat ""
         (List.map (fun r -> J.to_string (to_json r) ^ "\n") report.kept));
  report

type merge_report = { added : run list; skipped : run list }

(* Merging worker ledgers reuses [gc]'s deduplication key: a record
   whose (fingerprint, grid digest) pair is already represented in the
   target — or by an earlier source record this merge added — is an
   identical result computed twice and is skipped. Same-fingerprint
   records with different bits are drift evidence and always merge.
   Added records get fresh target ids; their content (including the
   original timestamp and git revision) is preserved verbatim. *)
let merge ?(dry_run = false) ~dir ~from () =
  let target = load ~dir in
  let key r = r.fingerprint ^ "\x00" ^ grid_digest r.cells in
  let seen = Hashtbl.create 64 in
  List.iter (fun r -> Hashtbl.replace seen (key r) ()) target;
  let next =
    ref
      (1
      + List.fold_left
          (fun acc r ->
            match numeric_id r with Some n -> max acc n | None -> acc)
          0 target)
  in
  let added = ref [] and skipped = ref [] in
  List.iter
    (fun src ->
      List.iter
        (fun r ->
          if Hashtbl.mem seen (key r) then skipped := r :: !skipped
          else begin
            Hashtbl.replace seen (key r) ();
            added := { r with id = Printf.sprintf "r%d" !next } :: !added;
            incr next
          end)
        (load ~dir:src))
    from;
  let report = { added = List.rev !added; skipped = List.rev !skipped } in
  if (not dry_run) && report.added <> [] then begin
    if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
    List.iter
      (fun r ->
        Vliw_util.Atomic_io.append_line ~path:(ledger_path ~dir)
          (J.to_string (to_json r)))
      report.added
  end;
  report

let find ~dir wanted =
  let runs = load ~dir in
  match List.find_opt (fun r -> r.id = wanted) runs with
  | Some r -> Some r
  | None ->
    (* "latest" convenience alias, so scripts need no id bookkeeping. *)
    if wanted = "latest" then
      match List.rev runs with last :: _ -> Some last | [] -> None
    else None

let latest ~dir =
  match List.rev (load ~dir) with last :: _ -> Some last | [] -> None

(* --- drift ------------------------------------------------------------ *)

type drift =
  | Identical
  | Shape_mismatch of string
  | Drift of {
      mix : string;
      scheme : string;
      ipc_a : float;
      ipc_b : float;
      differing : int;
    }

let diff a b =
  let keys r =
    Array.to_list (Array.map (fun c -> (c.mix, c.scheme)) r.cells)
  in
  if Array.length a.cells <> Array.length b.cells then
    Shape_mismatch
      (Printf.sprintf "%d cells vs %d cells" (Array.length a.cells)
         (Array.length b.cells))
  else if keys a <> keys b then
    Shape_mismatch "cell (mix, scheme) layouts differ"
  else begin
    let first = ref None and differing = ref 0 in
    Array.iteri
      (fun i ca ->
        let cb = b.cells.(i) in
        if Int64.bits_of_float ca.ipc <> Int64.bits_of_float cb.ipc then begin
          incr differing;
          if !first = None then first := Some (ca, cb)
        end)
      a.cells;
    match !first with
    | None -> Identical
    | Some (ca, cb) ->
      Drift
        {
          mix = ca.mix;
          scheme = ca.scheme;
          ipc_a = ca.ipc;
          ipc_b = cb.ipc;
          differing = !differing;
        }
  end
