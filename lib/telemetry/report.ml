(* Stall attribution: an exact decomposition of wasted issue slots.

   The core bumps these counters once per cycle (only when profiling is
   attached). The accounting is exact by construction:

     slots.offered - slots.filled
       = sum over waste.vertical.* + sum over waste.horizontal.*

   A cycle that issues nothing contributes its full machine width to
   exactly one vertical cause; a cycle that issues k < W operations
   contributes W - k slots split across horizontal causes, with the
   remainder after merge-reject attribution booked to insufficient ILP. *)

type handles = {
  cycles : Counters.counter;
  slots_offered : Counters.counter;
  slots_filled : Counters.counter;
  v_fetch : Counters.counter;
  v_mem : Counters.counter;
  v_branch : Counters.counter;
  v_switch : Counters.counter;
  v_idle : Counters.counter;
  h_conflict : Counters.counter;
  h_capacity : Counters.counter;
  h_priority : Counters.counter;
  h_ilp : Counters.counter;
  switch_bubbles : Counters.counter;
}

let n_cycles = "core.cycles"
let n_offered = "slots.offered"
let n_filled = "slots.filled"
let n_v_fetch = "waste.vertical.fetch_stall"
let n_v_mem = "waste.vertical.mem_stall"
let n_v_branch = "waste.vertical.branch_stall"
let n_v_switch = "waste.vertical.bmt_switch"
let n_v_idle = "waste.vertical.idle"
let n_h_conflict = "waste.horizontal.merge_conflict"
let n_h_capacity = "waste.horizontal.merge_capacity"
let n_h_priority = "waste.horizontal.merge_priority"
let n_h_ilp = "waste.horizontal.ilp"

(* Merge-engine decision cache (Vliw_merge.Engine.Memo), flushed by the
   core at metrics time. Not waste categories: they describe simulator
   throughput, not machine behaviour. *)
let n_memo_hits = "merge.memo.hits"
let n_memo_misses = "merge.memo.misses"
let n_memo_flushes = "merge.memo.flushes"

(* Per-scheme decision-cache statistics, one counter triple per scheme
   the core's merge network has run (pooled tables survive scheme
   switches). Suffix-parsed by [render] into the per-scheme table. *)
let n_memo_scheme_prefix = "merge.memo.scheme."
let n_memo_scheme name suffix = n_memo_scheme_prefix ^ name ^ "." ^ suffix

(* Adaptive merge-network reconfiguration. [core.switch_bubble_cycles]
   is bumped by the attribution pass exactly when a whole-width cycle is
   booked to [waste.vertical.bmt_switch], so the conservation law
   "v_switch slots = width x bubble cycles" is checkable after the fact;
   the [sim.*] pair is flushed from the core's own counters at metrics
   time (switches performed, total issue-stall cycles scheduled). *)
let n_switch_bubbles = "core.switch_bubble_cycles"
let n_scheme_switches = "sim.scheme_switches"
let n_switch_stall = "sim.switch_stall_cycles"

(* Adaptive controller decision trail, booked by the multitasking
   harness: one counter per candidate scheme counting boundary decisions
   that picked it, plus the controller's own owner-change count. *)
let n_controller_prefix = "controller.decisions."
let n_controller_decisions name = n_controller_prefix ^ name
let n_controller_switches = "controller.switches"

(* Sweep fault tolerance (Vliw_experiments.Sweep), bumped once per cell
   attempt outcome. Like the memo counters these describe harness
   behaviour, not machine behaviour, and stay out of the waste sum. *)
let n_sweep_retries = "sweep.retries"
let n_sweep_degraded = "sweep.degraded"
let n_sweep_timeouts = "sweep.timeouts"
let n_sweep_resumed = "sweep.resumed_cells"

let attach c =
  {
    cycles = Counters.counter c n_cycles;
    slots_offered = Counters.counter c n_offered;
    slots_filled = Counters.counter c n_filled;
    v_fetch = Counters.counter c n_v_fetch;
    v_mem = Counters.counter c n_v_mem;
    v_branch = Counters.counter c n_v_branch;
    v_switch = Counters.counter c n_v_switch;
    v_idle = Counters.counter c n_v_idle;
    h_conflict = Counters.counter c n_h_conflict;
    h_capacity = Counters.counter c n_h_capacity;
    h_priority = Counters.counter c n_h_priority;
    h_ilp = Counters.counter c n_h_ilp;
    switch_bubbles = Counters.counter c n_switch_bubbles;
  }

(* Display order with human labels. *)
let categories =
  [
    (n_v_fetch, "vertical: I$ fetch stall");
    (n_v_mem, "vertical: D$ miss stall");
    (n_v_branch, "vertical: branch misprediction");
    (n_v_switch, "vertical: BMT switch bubble");
    (n_v_idle, "vertical: no resident thread");
    (n_h_conflict, "horizontal: merge reject (conflict)");
    (n_h_capacity, "horizontal: merge reject (capacity)");
    (n_h_priority, "horizontal: merge reject (priority)");
    (n_h_ilp, "horizontal: insufficient ILP");
  ]

(* Recover the per-scheme decision-cache triples from a snapshot.
   Parsed back-to-front (strip the known suffix, then the prefix) so
   scheme names containing dots — structural renderings of anonymous
   schemes — survive the round-trip. *)
let memo_scheme_stats (s : Counters.snapshot) =
  let strip_suffix name suffix =
    let nl = String.length name and sl = String.length suffix in
    if nl > sl && String.sub name (nl - sl) sl = suffix then
      Some (String.sub name 0 (nl - sl))
    else None
  in
  let pl = String.length n_memo_scheme_prefix in
  let tbl = Hashtbl.create 8 in
  List.iter
    (fun (name, v) ->
      if
        String.length name > pl
        && String.sub name 0 pl = n_memo_scheme_prefix
      then begin
        let rest = String.sub name pl (String.length name - pl) in
        let record scheme field =
          let h, m, e =
            match Hashtbl.find_opt tbl scheme with
            | Some t -> t
            | None -> (0, 0, 0)
          in
          let t =
            match field with
            | `Hits -> (h + v, m, e)
            | `Misses -> (h, m + v, e)
            | `Flushes -> (h, m, e + v)
          in
          Hashtbl.replace tbl scheme t
        in
        match strip_suffix rest ".hits" with
        | Some scheme -> record scheme `Hits
        | None -> (
          match strip_suffix rest ".misses" with
          | Some scheme -> record scheme `Misses
          | None -> (
            match strip_suffix rest ".flushes" with
            | Some scheme -> record scheme `Flushes
            | None -> ()))
      end)
    s.Counters.counters;
  Hashtbl.fold (fun scheme (h, m, e) acc -> (scheme, h, m, e) :: acc) tbl []
  |> List.sort compare

let wasted s = Counters.count s n_offered - Counters.count s n_filled

let attributed s =
  List.fold_left (fun acc (name, _) -> acc + Counters.count s name) 0 categories

let render s =
  let offered = Counters.count s n_offered in
  let filled = Counters.count s n_filled in
  let waste = wasted s in
  let pct_of total v =
    if total = 0 then "-"
    else Printf.sprintf "%.1f%%" (100.0 *. float_of_int v /. float_of_int total)
  in
  let table =
    Vliw_util.Text_table.create ~header:[ "Cause"; "Slots"; "Of wasted"; "Of offered" ]
  in
  List.iter
    (fun (name, label) ->
      let v = Counters.count s name in
      Vliw_util.Text_table.add_row table
        [ label; string_of_int v; pct_of waste v; pct_of offered v ])
    categories;
  Vliw_util.Text_table.add_sep table;
  Vliw_util.Text_table.add_row table
    [
      "total wasted"; string_of_int (attributed s); pct_of waste (attributed s);
      pct_of offered waste;
    ];
  let drift = waste - attributed s in
  let memo =
    let hits = Counters.count s n_memo_hits in
    let lookups = hits + Counters.count s n_memo_misses in
    if lookups = 0 then ""
    else
      Printf.sprintf
        "Merge decision cache: %d/%d lookups hit (%s), %d flushes\n" hits
        lookups
        (pct_of lookups hits)
        (Counters.count s n_memo_flushes)
  in
  let memo_by_scheme =
    match memo_scheme_stats s with
    | [] | [ _ ] -> "" (* the aggregate line already covers one scheme *)
    | per_scheme ->
      let t =
        Vliw_util.Text_table.create
          ~header:[ "Scheme"; "Hits"; "Misses"; "Flushes" ]
      in
      List.iter
        (fun (scheme, h, m, e) ->
          Vliw_util.Text_table.add_row t
            [ scheme; string_of_int h; string_of_int m; string_of_int e ])
        per_scheme;
      "Decision cache by scheme:\n" ^ Vliw_util.Text_table.render t
  in
  let switches =
    let n = Counters.count s n_scheme_switches in
    if n = 0 then ""
    else
      Printf.sprintf
        "Merge-network reconfigurations: %d (%d issue-stall cycles charged)\n"
        n
        (Counters.count s n_switch_stall)
  in
  Printf.sprintf
    "Stall attribution over %d cycles: %d slots offered, %d filled (%s), %d \
     wasted\n"
    (Counters.count s n_cycles) offered filled (pct_of offered filled) waste
  ^ Vliw_util.Text_table.render table
  ^ (if drift = 0 then ""
     else Printf.sprintf "WARNING: %d wasted slots unattributed\n" drift)
  ^ memo ^ memo_by_scheme ^ switches
