(* Stall attribution: an exact decomposition of wasted issue slots.

   The core bumps these counters once per cycle (only when profiling is
   attached). The accounting is exact by construction:

     slots.offered - slots.filled
       = sum over waste.vertical.* + sum over waste.horizontal.*

   A cycle that issues nothing contributes its full machine width to
   exactly one vertical cause; a cycle that issues k < W operations
   contributes W - k slots split across horizontal causes, with the
   remainder after merge-reject attribution booked to insufficient ILP. *)

type handles = {
  cycles : Counters.counter;
  slots_offered : Counters.counter;
  slots_filled : Counters.counter;
  v_fetch : Counters.counter;
  v_mem : Counters.counter;
  v_branch : Counters.counter;
  v_switch : Counters.counter;
  v_idle : Counters.counter;
  h_conflict : Counters.counter;
  h_capacity : Counters.counter;
  h_priority : Counters.counter;
  h_ilp : Counters.counter;
}

let n_cycles = "core.cycles"
let n_offered = "slots.offered"
let n_filled = "slots.filled"
let n_v_fetch = "waste.vertical.fetch_stall"
let n_v_mem = "waste.vertical.mem_stall"
let n_v_branch = "waste.vertical.branch_stall"
let n_v_switch = "waste.vertical.bmt_switch"
let n_v_idle = "waste.vertical.idle"
let n_h_conflict = "waste.horizontal.merge_conflict"
let n_h_capacity = "waste.horizontal.merge_capacity"
let n_h_priority = "waste.horizontal.merge_priority"
let n_h_ilp = "waste.horizontal.ilp"

(* Merge-engine decision cache (Vliw_merge.Engine.Memo), flushed by the
   core at metrics time. Not waste categories: they describe simulator
   throughput, not machine behaviour. *)
let n_memo_hits = "merge.memo.hits"
let n_memo_misses = "merge.memo.misses"
let n_memo_evictions = "merge.memo.evictions"

(* Sweep fault tolerance (Vliw_experiments.Sweep), bumped once per cell
   attempt outcome. Like the memo counters these describe harness
   behaviour, not machine behaviour, and stay out of the waste sum. *)
let n_sweep_retries = "sweep.retries"
let n_sweep_degraded = "sweep.degraded"
let n_sweep_timeouts = "sweep.timeouts"
let n_sweep_resumed = "sweep.resumed_cells"

let attach c =
  {
    cycles = Counters.counter c n_cycles;
    slots_offered = Counters.counter c n_offered;
    slots_filled = Counters.counter c n_filled;
    v_fetch = Counters.counter c n_v_fetch;
    v_mem = Counters.counter c n_v_mem;
    v_branch = Counters.counter c n_v_branch;
    v_switch = Counters.counter c n_v_switch;
    v_idle = Counters.counter c n_v_idle;
    h_conflict = Counters.counter c n_h_conflict;
    h_capacity = Counters.counter c n_h_capacity;
    h_priority = Counters.counter c n_h_priority;
    h_ilp = Counters.counter c n_h_ilp;
  }

(* Display order with human labels. *)
let categories =
  [
    (n_v_fetch, "vertical: I$ fetch stall");
    (n_v_mem, "vertical: D$ miss stall");
    (n_v_branch, "vertical: branch misprediction");
    (n_v_switch, "vertical: BMT switch bubble");
    (n_v_idle, "vertical: no resident thread");
    (n_h_conflict, "horizontal: merge reject (conflict)");
    (n_h_capacity, "horizontal: merge reject (capacity)");
    (n_h_priority, "horizontal: merge reject (priority)");
    (n_h_ilp, "horizontal: insufficient ILP");
  ]

let wasted s = Counters.count s n_offered - Counters.count s n_filled

let attributed s =
  List.fold_left (fun acc (name, _) -> acc + Counters.count s name) 0 categories

let render s =
  let offered = Counters.count s n_offered in
  let filled = Counters.count s n_filled in
  let waste = wasted s in
  let pct_of total v =
    if total = 0 then "-"
    else Printf.sprintf "%.1f%%" (100.0 *. float_of_int v /. float_of_int total)
  in
  let table =
    Vliw_util.Text_table.create ~header:[ "Cause"; "Slots"; "Of wasted"; "Of offered" ]
  in
  List.iter
    (fun (name, label) ->
      let v = Counters.count s name in
      Vliw_util.Text_table.add_row table
        [ label; string_of_int v; pct_of waste v; pct_of offered v ])
    categories;
  Vliw_util.Text_table.add_sep table;
  Vliw_util.Text_table.add_row table
    [
      "total wasted"; string_of_int (attributed s); pct_of waste (attributed s);
      pct_of offered waste;
    ];
  let drift = waste - attributed s in
  let memo =
    let hits = Counters.count s n_memo_hits in
    let lookups = hits + Counters.count s n_memo_misses in
    if lookups = 0 then ""
    else
      Printf.sprintf
        "Merge decision cache: %d/%d lookups hit (%s), %d flushes\n" hits
        lookups
        (pct_of lookups hits)
        (Counters.count s n_memo_evictions)
  in
  Printf.sprintf
    "Stall attribution over %d cycles: %d slots offered, %d filled (%s), %d \
     wasted\n"
    (Counters.count s n_cycles) offered filled (pct_of offered filled) waste
  ^ Vliw_util.Text_table.render table
  ^ (if drift = 0 then ""
     else Printf.sprintf "WARNING: %d wasted slots unattributed\n" drift)
  ^ memo
