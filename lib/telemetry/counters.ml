(* Named monotonic counters and fixed-bucket histograms.

   Handles ([counter]/[histogram]) are resolved once by name and then
   bumped without any lookup, so per-cycle instrumentation costs a few
   integer stores. Snapshots are immutable, name-sorted, and mergeable
   (sweep cells each snapshot their own registry; aggregation sums
   them), which is what lets per-cell telemetry ride through a
   multicore sweep without any cross-domain sharing. *)

type counter = { c_name : string; mutable value : int }

type histogram = {
  h_name : string;
  bounds : float array;  (* ascending bucket upper bounds *)
  counts : int array;  (* length = Array.length bounds + 1 (overflow) *)
  mutable total : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

type t = {
  counters : (string, counter) Hashtbl.t;
  histograms : (string, histogram) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 32; histograms = Hashtbl.create 8 }

let counter t name =
  match Hashtbl.find_opt t.counters name with
  | Some c -> c
  | None ->
    let c = { c_name = name; value = 0 } in
    Hashtbl.add t.counters name c;
    c

let add c by = c.value <- c.value + by

let incr c = add c 1

let value c = c.value

let histogram t name ~bounds =
  match Hashtbl.find_opt t.histograms name with
  | Some h -> h
  | None ->
    let sorted = Array.copy bounds in
    Array.sort compare sorted;
    let h =
      {
        h_name = name;
        bounds = sorted;
        counts = Array.make (Array.length sorted + 1) 0;
        total = 0;
        sum = 0.0;
        vmin = infinity;
        vmax = neg_infinity;
      }
    in
    Hashtbl.add t.histograms name h;
    h

let bucket_of bounds v =
  let n = Array.length bounds in
  let rec go i = if i >= n || v <= bounds.(i) then i else go (i + 1) in
  go 0

let observe h v =
  let b = bucket_of h.bounds v in
  h.counts.(b) <- h.counts.(b) + 1;
  h.total <- h.total + 1;
  h.sum <- h.sum +. v;
  if v < h.vmin then h.vmin <- v;
  if v > h.vmax then h.vmax <- v

(* --- snapshots ------------------------------------------------------- *)

type hist_snapshot = {
  bounds : float array;
  counts : int array;
  total : int;
  sum : float;
  vmin : float;
  vmax : float;
}

type snapshot = {
  counters : (string * int) list;  (* name-sorted *)
  histograms : (string * hist_snapshot) list;  (* name-sorted *)
}

let snapshot (t : t) =
  let counters =
    Hashtbl.fold (fun name c acc -> (name, c.value) :: acc) t.counters []
    |> List.sort compare
  in
  let histograms =
    Hashtbl.fold
      (fun name (h : histogram) acc ->
        ( name,
          {
            bounds = Array.copy h.bounds;
            counts = Array.copy h.counts;
            total = h.total;
            sum = h.sum;
            vmin = h.vmin;
            vmax = h.vmax;
          } )
        :: acc)
      t.histograms []
    |> List.sort compare
  in
  { counters; histograms }

let empty = { counters = []; histograms = [] }

let count s name =
  match List.assoc_opt name s.counters with Some v -> v | None -> 0

(* Merge two name-sorted assoc lists, combining values on equal keys. *)
let rec merge_assoc combine a b =
  match (a, b) with
  | [], rest | rest, [] -> rest
  | (ka, va) :: ta, (kb, vb) :: tb ->
    if ka = kb then (ka, combine ka va vb) :: merge_assoc combine ta tb
    else if ka < kb then (ka, va) :: merge_assoc combine ta b
    else (kb, vb) :: merge_assoc combine a tb

let merge_hist name (a : hist_snapshot) (b : hist_snapshot) =
  if a.bounds <> b.bounds then
    invalid_arg ("Counters.merge: bucket bounds differ for histogram " ^ name);
  {
    bounds = a.bounds;
    counts = Array.mapi (fun i c -> c + b.counts.(i)) a.counts;
    total = a.total + b.total;
    sum = a.sum +. b.sum;
    vmin = min a.vmin b.vmin;
    vmax = max a.vmax b.vmax;
  }

let merge a b =
  {
    counters = merge_assoc (fun _ x y -> x + y) a.counters b.counters;
    histograms = merge_assoc merge_hist a.histograms b.histograms;
  }

let hist_mean (h : hist_snapshot) =
  if h.total = 0 then 0.0 else h.sum /. float_of_int h.total

(* Bucket-interpolated quantile: find the bucket the rank falls in and
   interpolate linearly inside it — the bucketed analogue of
   [Vliw_util.Stats.percentile]'s rule (which tests cross-check this
   against on degenerate single-value buckets). *)
let quantile (h : hist_snapshot) p =
  if h.total = 0 then 0.0
  else begin
    let target = p /. 100.0 *. float_of_int h.total in
    let n_buckets = Array.length h.counts in
    let rec go i cum =
      if i >= n_buckets then h.vmax
      else begin
        let cum' = cum +. float_of_int h.counts.(i) in
        if cum' >= target && h.counts.(i) > 0 then begin
          let lo = if i = 0 then min h.vmin h.bounds.(0) else h.bounds.(i - 1) in
          let hi = if i < Array.length h.bounds then h.bounds.(i) else h.vmax in
          let frac = (target -. cum) /. float_of_int h.counts.(i) in
          lo +. (frac *. (hi -. lo))
        end
        else go (i + 1) cum'
      end
    in
    let v = go 0 0.0 in
    Float.min h.vmax (Float.max h.vmin v)
  end

(* --- rendering ------------------------------------------------------- *)

let flat s =
  List.map (fun (name, v) -> (name, string_of_int v)) s.counters
  @ List.concat_map
      (fun (name, h) ->
        [
          (name ^ ".count", string_of_int h.total);
          (name ^ ".mean", Printf.sprintf "%.4f" (hist_mean h));
          (name ^ ".p50", Printf.sprintf "%.4f" (quantile h 50.0));
          (name ^ ".p95", Printf.sprintf "%.4f" (quantile h 95.0));
          (name ^ ".p99", Printf.sprintf "%.4f" (quantile h 99.0));
        ])
      s.histograms

let to_csv s =
  ([ "counter"; "value" ], List.map (fun (k, v) -> [ k; v ]) (flat s))

(* --- event-counting sink --------------------------------------------- *)

let issue_width_bounds = [| 1.0; 2.0; 4.0; 6.0; 8.0; 12.0; 16.0 |]

let threads_merged_bounds = [| 1.0; 2.0; 3.0; 4.0; 6.0; 8.0 |]

let sink t =
  let slots_hist = histogram t "issue.slots_filled" ~bounds:issue_width_bounds in
  let merged_hist =
    histogram t "issue.threads_merged" ~bounds:threads_merged_bounds
  in
  Sink.fn (fun ~cycle:_ event ->
      incr (counter t (Event.counter_key event));
      match event with
      | Event.Issue { threads_merged; slots_filled; _ } ->
        observe slots_hist (float_of_int slots_filled);
        observe merged_hist (float_of_int threads_merged)
      | _ -> ())
