(** Chrome trace-event JSON export (loadable in Perfetto and
    chrome://tracing).

    Simulator runs map one cycle to one microsecond of trace time and
    give every hardware thread its own lane; sweeps give every pool
    worker a lane and lay each (mix, scheme) cell out with its measured
    wall-clock span. *)

val of_recorder : ?process_name:string -> lanes:string list -> Recorder.t -> string
(** [of_recorder ~lanes r] renders the recorded events; [lanes] labels
    hardware-thread lane [i] with its [i]-th element. Issue events
    become 1-cycle duration slices on each issuing thread's lane; merge
    rejects, cache misses and BMT switches become annotated instants;
    fetch stalls become slices spanning the miss penalty. *)

type span = {
  lane : int;
  name : string;
  start_us : float;
  dur_us : float;
  args : (string * string) list;
}

val of_spans :
  ?process_name:string -> lane_names:(int * string) list -> span list -> string
(** Duration-slice trace for coarse work items (sweep cells on pool
    workers). *)
