type t = Null | Fn of (cycle:int -> Event.t -> unit)

let null = Null

let enabled = function Null -> false | Fn _ -> true

let emit t ~cycle event =
  match t with Null -> () | Fn f -> f ~cycle event

let fn f = Fn f

let both a b =
  match (a, b) with
  | Null, s | s, Null -> s
  | Fn f, Fn g ->
    Fn
      (fun ~cycle event ->
        f ~cycle event;
        g ~cycle event)
