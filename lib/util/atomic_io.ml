(* Crash-safe file writes: the temp-file + rename primitive that used to
   live inside [Csv.atomically], promoted to a first-class utility so
   every writer of load-bearing files (CSV exports, checkpoint journals,
   Chrome traces, the run ledger, OpenMetrics textfiles, HTML reports)
   shares one torn-file-safety story.

   A reader of [path] observes either the previous content or the
   complete new content, never a truncated file: the content is written
   to [path ^ ".tmp"] and renamed over the destination, and rename is
   atomic on POSIX filesystems. If the writer raises (or the process is
   killed mid-write), the destination is untouched and at worst a stale
   .tmp is left behind. *)

let with_file ~path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match f oc with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let write_file ~path content =
  with_file ~path (fun oc -> output_string oc content)

let append_line ~path line =
  let existing =
    if Sys.file_exists path then
      In_channel.with_open_bin path In_channel.input_all
    else ""
  in
  let existing =
    if existing = "" || String.ends_with ~suffix:"\n" existing then existing
    else existing ^ "\n"
  in
  write_file ~path (existing ^ line ^ "\n")
