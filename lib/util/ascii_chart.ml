(* Pad to a display-cell width (UTF-8 aware): Printf's %-*s pads by
   bytes, which misaligns any label containing a multi-byte character. *)
let pad_label width s =
  s ^ String.make (max 0 (width - Text_table.display_width s)) ' '

let bar_chart ?(width = 50) ?(unit_label = "") series =
  let buf = Buffer.create 256 in
  let label_width =
    List.fold_left
      (fun acc (l, _) -> max acc (Text_table.display_width l))
      0 series
  in
  let vmax = List.fold_left (fun acc (_, v) -> max acc v) 0.0 series in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  let emit (label, v) =
    let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
    let n = max 0 (min width n) in
    Buffer.add_string buf
      (Printf.sprintf "%s | %s %.2f%s\n" (pad_label label_width label)
         (String.make n '#') v unit_label)
  in
  List.iter emit series;
  Buffer.contents buf

let grouped_bar_chart ?(width = 40) ~group_labels ~series () =
  let buf = Buffer.create 1024 in
  let name_width =
    List.fold_left
      (fun acc (l, _) -> max acc (Text_table.display_width l))
      0 series
  in
  let vmax =
    List.fold_left
      (fun acc (_, vs) -> Array.fold_left max acc vs)
      0.0 series
  in
  let vmax = if vmax <= 0.0 then 1.0 else vmax in
  List.iteri
    (fun gi group ->
      Buffer.add_string buf (Printf.sprintf "%s:\n" group);
      let emit (name, vs) =
        let v = vs.(gi) in
        let n = int_of_float (Float.round (v /. vmax *. float_of_int width)) in
        let n = max 0 (min width n) in
        Buffer.add_string buf
          (Printf.sprintf "  %s | %s %.2f\n" (pad_label name_width name)
             (String.make n '#') v)
      in
      List.iter emit series)
    group_labels;
  Buffer.contents buf

(* Eight block glyphs from U+2581 to U+2588; the empty series renders as
   an empty string rather than inventing a baseline. Values are scaled
   against the series maximum (minimum pinned at 0 for rates) so a flat
   non-zero series shows full blocks, not noise. *)
let spark_glyphs = [| "▁"; "▂"; "▃"; "▄"; "▅"; "▆"; "▇"; "█" |]

let sparkline ?width values =
  let values =
    match width with
    | None -> values
    | Some w ->
      let n = List.length values in
      if n <= w then values
      else
        (* Keep the most recent [w] samples: a monitor cares about now. *)
        List.filteri (fun i _ -> i >= n - w) values
  in
  match values with
  | [] -> ""
  | _ ->
    let vmax = List.fold_left max 0.0 values in
    let vmax = if vmax <= 0.0 then 1.0 else vmax in
    let glyph v =
      let v = max 0.0 v in
      let i =
        int_of_float
          (Float.round (v /. vmax *. float_of_int (Array.length spark_glyphs - 1)))
      in
      spark_glyphs.(max 0 (min (Array.length spark_glyphs - 1) i))
    in
    String.concat "" (List.map glyph values)

let scatter ?(rows = 18) ?(cols = 64) ~x_label ~y_label points =
  let buf = Buffer.create 2048 in
  match points with
  | [] -> "(no points)\n"
  | _ ->
    let xs = List.map (fun (_, x, _) -> x) points in
    let ys = List.map (fun (_, _, y) -> y) points in
    let fmin = List.fold_left min infinity and fmax = List.fold_left max neg_infinity in
    let pad lo hi =
      let span = hi -. lo in
      let span = if span <= 0.0 then max (abs_float hi) 1.0 else span in
      (lo -. (0.05 *. span), hi +. (0.05 *. span))
    in
    let xmin, xmax = pad (fmin xs) (fmax xs) in
    let ymin, ymax = pad (fmin ys) (fmax ys) in
    let grid = Array.make_matrix rows cols ' ' in
    let markers = "abcdefghijklmnopqrstuvwxyz0123456789" in
    let place i (_, x, y) =
      let cx =
        int_of_float ((x -. xmin) /. (xmax -. xmin) *. float_of_int (cols - 1))
      in
      let cy =
        int_of_float ((y -. ymin) /. (ymax -. ymin) *. float_of_int (rows - 1))
      in
      let cy = rows - 1 - cy in
      let m = markers.[i mod String.length markers] in
      if grid.(cy).(cx) = ' ' then grid.(cy).(cx) <- m else grid.(cy).(cx) <- '*'
    in
    List.iteri place points;
    Buffer.add_string buf (Printf.sprintf "%s (y) vs %s (x)\n" y_label x_label);
    Array.iteri
      (fun r line ->
        let y = ymax -. (float_of_int r /. float_of_int (rows - 1) *. (ymax -. ymin)) in
        Buffer.add_string buf (Printf.sprintf "%8.1f |" y);
        Array.iter (Buffer.add_char buf) line;
        Buffer.add_char buf '\n')
      grid;
    Buffer.add_string buf (String.make 10 ' ');
    Buffer.add_string buf (String.make cols '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf
      (Printf.sprintf "%10s%-*.1f%*.1f\n" "" (cols / 2) xmin (cols - (cols / 2))
         xmax);
    List.iteri
      (fun i (name, x, y) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %-24s (%.1f, %.2f)\n"
             markers.[i mod String.length markers]
             name x y))
      points;
    Buffer.contents buf
