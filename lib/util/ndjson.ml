(* NDJSON framing: incremental line assembly plus per-line parsing.

   The reader is a plain byte accumulator with two twists:

   - The byte budget is enforced while buffering, not after: an
     attacker-sized line costs at most [max_line_bytes] of memory, the
     overflow is discarded as it streams past, and exactly one
     [Oversized] error is reported when the terminator finally shows up
     (so the reply stream stays one-reply-per-line).

   - Errors are values, not exceptions: the transport loop forwards
     them to the peer as error replies and keeps the connection. *)

type error =
  | Oversized of { limit : int }
  | Malformed of { msg : string }
  | Truncated

let error_message = function
  | Oversized { limit } ->
    Printf.sprintf "line exceeds the %d-byte limit" limit
  | Malformed { msg } -> "malformed JSON line: " ^ msg
  | Truncated -> "truncated line (stream ended before the newline)"

type reader = {
  buf : Buffer.t;
  max_line_bytes : int;
  mutable poisoned : bool;  (* current line already over budget *)
}

let reader ?(max_line_bytes = 1 lsl 20) () =
  if max_line_bytes <= 0 then invalid_arg "Ndjson.reader: max_line_bytes <= 0";
  { buf = Buffer.create 256; max_line_bytes; poisoned = false }

(* One completed line: classify and reset for the next one. A carriage
   return before the terminator is tolerated (telnet-style peers). *)
let complete r =
  let raw = Buffer.contents r.buf in
  Buffer.clear r.buf;
  let poisoned = r.poisoned in
  r.poisoned <- false;
  if poisoned then Some (Error (Oversized { limit = r.max_line_bytes }))
  else begin
    let line =
      if String.length raw > 0 && raw.[String.length raw - 1] = '\r' then
        String.sub raw 0 (String.length raw - 1)
      else raw
    in
    if String.trim line = "" then None
    else
      match Json.parse line with
      | Ok doc -> Some (Ok doc)
      | Error msg -> Some (Error (Malformed { msg }))
  end

let feed r ?(off = 0) ?len chunk =
  let len = match len with Some n -> n | None -> String.length chunk - off in
  if off < 0 || len < 0 || off + len > String.length chunk then
    invalid_arg "Ndjson.feed: bad substring";
  let out = ref [] in
  for i = off to off + len - 1 do
    match chunk.[i] with
    | '\n' -> (
      match complete r with Some res -> out := res :: !out | None -> ())
    | c ->
      if Buffer.length r.buf >= r.max_line_bytes then r.poisoned <- true
      else Buffer.add_char r.buf c
  done;
  List.rev !out

let close r =
  if Buffer.length r.buf = 0 && not r.poisoned then None
  else begin
    Buffer.clear r.buf;
    r.poisoned <- false;
    Some (Error Truncated)
  end

let line doc = Json.to_string doc ^ "\n"
