type align = Left | Right | Center

(* Column width in terminal cells, approximated as the number of UTF-8
   scalar values (continuation bytes 0b10xxxxxx don't count). Byte
   length over-pads any label containing a multi-byte character ("µs",
   "×", box-drawing), which skews every column after it. Combining
   marks and double-width CJK are not special-cased — the tables this
   renders never contain them. Equals [String.length] on pure ASCII. *)
let display_width s =
  String.fold_left
    (fun acc c -> if Char.code c land 0xC0 = 0x80 then acc else acc + 1)
    0 s

type row = Cells of string list | Sep

type t = {
  header : string list;
  ncols : int;
  mutable aligns : align list;
  mutable rows : row list; (* reversed *)
}

let default_aligns n = List.init n (fun i -> if i = 0 then Left else Right)

let create ~header =
  let ncols = List.length header in
  { header; ncols; aligns = default_aligns ncols; rows = [] }

let set_aligns t aligns =
  if List.length aligns <> t.ncols then
    invalid_arg "Text_table.set_aligns: arity mismatch";
  t.aligns <- aligns

let add_row t cells =
  if List.length cells <> t.ncols then
    invalid_arg "Text_table.add_row: arity mismatch";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let add_float_row t label xs =
  add_row t (label :: List.map (Printf.sprintf "%.2f") xs)

let pad align width s =
  let n = display_width s in
  if n >= width then s
  else begin
    let fill = width - n in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let left = fill / 2 in
      String.make left ' ' ^ s ^ String.make (fill - left) ' '
  end

let render t =
  let rows = List.rev t.rows in
  let widths = Array.of_list (List.map display_width t.header) in
  let update cells =
    List.iteri (fun i c -> widths.(i) <- max widths.(i) (display_width c)) cells
  in
  List.iter (function Cells c -> update c | Sep -> ()) rows;
  let buf = Buffer.create 256 in
  let emit_cells cells =
    Buffer.add_string buf "| ";
    List.iteri
      (fun i c ->
        let align = List.nth t.aligns i in
        if i > 0 then Buffer.add_string buf " | ";
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_string buf " |\n"
  in
  let emit_sep () =
    Buffer.add_char buf '|';
    Array.iter
      (fun w ->
        Buffer.add_string buf (String.make (w + 2) '-');
        Buffer.add_char buf '|')
      widths;
    Buffer.add_char buf '\n'
  in
  emit_cells t.header;
  emit_sep ();
  List.iter (function Cells c -> emit_cells c | Sep -> emit_sep ()) rows;
  Buffer.contents buf

let pp ppf t = Format.pp_print_string ppf (render t)
