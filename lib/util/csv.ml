let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape_field cells)

let to_string ~header rows =
  String.concat "\n" (row_to_string header :: List.map row_to_string rows) ^ "\n"

(* Crash-safe file replacement: write the full content to [path ^ ".tmp"]
   and rename it over [path]. A reader never observes a torn file — it
   sees either the old content or the new one — and an exception or kill
   mid-write leaves the destination untouched (plus, at worst, a stale
   .tmp). This is the primitive Vliw_experiments.Checkpoint journals are
   built on. *)
let atomically ~path f =
  let tmp = path ^ ".tmp" in
  let oc = open_out tmp in
  (match f oc with
  | () -> close_out oc
  | exception e ->
    close_out_noerr oc;
    (try Sys.remove tmp with Sys_error _ -> ());
    raise e);
  Sys.rename tmp path

let write ~path ~header rows =
  atomically ~path (fun oc -> output_string oc (to_string ~header rows))
