let needs_quoting s =
  String.exists (function ',' | '"' | '\n' | '\r' -> true | _ -> false) s

let escape_field s =
  if needs_quoting s then begin
    let buf = Buffer.create (String.length s + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      s;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end
  else s

let row_to_string cells = String.concat "," (List.map escape_field cells)

let to_string ~header rows =
  String.concat "\n" (row_to_string header :: List.map row_to_string rows) ^ "\n"

(* The temp-file + rename primitive now lives in [Atomic_io]; this alias
   is kept so existing callers (and their crash-safety story) read the
   same. *)
let atomically = Atomic_io.with_file

let write ~path ~header rows =
  atomically ~path (fun oc -> output_string oc (to_string ~header rows))
