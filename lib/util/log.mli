(** Leveled, structured logging for the long-running daemons.

    A record is a level, a component tag, a human message, and typed
    [key=value] fields, stamped with a monotonic timestamp (seconds
    since the logger was created, so two daemons' logs don't depend on
    wall-clock agreement to be readable). Two renderings share one call
    site: [Human] for terminals, [Json] (NDJSON, via {!Json}) for
    machine ingestion — the [--log-format json] mode of [vliwsim
    serve]/[dist]/[worker].

    Loggers are immutable values; the sink is any [string -> unit]
    (lines arrive without a trailing newline). The clock is injectable
    so tests can pin timestamps. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string

val level_of_string : string -> (level, string) result
(** Case-insensitive; accepts ["warning"] for [Warn]. *)

type format = Human | Json

val format_of_string : string -> (format, string) result

(** One field value: string, int, float, or bool. 64-bit ids should be
    passed as hex strings ([S]) per the repo-wide wire convention. *)
type value = S of string | I of int | F of float | B of bool

type field = string * value

type t

val make :
  ?level:level ->
  ?format:format ->
  ?clock:(unit -> float) ->
  component:string ->
  (string -> unit) ->
  t
(** [make ~component emit] builds a logger whose records at or above
    [level] (default [Info]) are rendered in [format] (default [Human])
    and handed to [emit] one line at a time. [clock] (default
    [Unix.gettimeofday]) is sampled once at creation to anchor the
    monotonic timestamp. *)

val null : t
(** Discards everything. The default for library [config] records. *)

val with_component : t -> string -> t
(** Same sink, level, and time origin under a different component tag. *)

val enabled : t -> level -> bool

val msg : t -> level -> string -> field list -> unit

val debug : t -> string -> field list -> unit
val info : t -> string -> field list -> unit
val warn : t -> string -> field list -> unit
val error : t -> string -> field list -> unit

val render : t -> ts:float -> level -> string -> field list -> string
(** The line [msg] would emit at timestamp [ts], exposed for tests. *)
