(** ASCII renderings of the paper's figures: horizontal bar charts for the
    IPC/cost bars and scatter plots for the performance-vs-cost figures. *)

val bar_chart :
  ?width:int -> ?unit_label:string -> (string * float) list -> string
(** [bar_chart series] renders one labelled horizontal bar per entry,
    scaled so the longest bar spans [width] (default 50) characters. *)

val grouped_bar_chart :
  ?width:int ->
  group_labels:string list ->
  series:(string * float array) list ->
  unit ->
  string
(** Grouped bars, one group per [group_labels] entry; each series
    contributes one bar per group (like the paper's Figure 10). *)

val sparkline : ?width:int -> float list -> string
(** [sparkline values] renders the series as one line of Unicode block
    glyphs (▁▂▃▄▅▆▇█), scaled against the series maximum with the
    baseline pinned at 0 — the compact rate display of [vliwsim top].
    [width] keeps only the most recent samples; the empty series is the
    empty string. *)

val scatter :
  ?rows:int ->
  ?cols:int ->
  x_label:string ->
  y_label:string ->
  (string * float * float) list ->
  string
(** [scatter points] plots labelled [(name, x, y)] points on a
    character grid with axis ranges derived from the data (like the
    paper's Figures 11 and 12), followed by a legend mapping point
    markers to names and coordinates. *)
