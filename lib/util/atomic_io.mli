(** Crash-safe (temp-file + rename) file writes.

    The primitive behind {!Csv.write}, the checkpoint journal, the run
    ledger, and every other load-bearing file the tooling produces: a
    reader observes either the old content or the complete new content,
    never a torn file. A raising writer (or a kill mid-write) leaves the
    destination untouched, with at worst a stale [.tmp] beside it. *)

val with_file : path:string -> (out_channel -> unit) -> unit
(** [with_file ~path f] runs [f] on a channel to [path ^ ".tmp"], then
    renames the temp file over [path]. If [f] raises, the temp file is
    removed and the exception re-raised. *)

val write_file : path:string -> string -> unit
(** [write_file ~path content] replaces [path] with [content]
    atomically. *)

val append_line : path:string -> string -> unit
(** Append one line (terminator added) with whole-file atomicity: the
    existing content is re-read and the file rewritten via
    {!write_file}, so a crash never leaves a half-appended line.
    Intended for small append-only stores (the run ledger); the
    O(file-size) rewrite is noise next to the runs it records. Not
    safe against two processes appending concurrently. *)
