(* Fixed-size Domain-based worker pool.

   [run ~jobs tasks] evaluates every thunk in [tasks] and returns their
   results in task order, regardless of which worker ran which task or
   in what order they finished. [jobs = 1] (the default) degrades to
   plain in-process iteration — no domains are spawned, so callers can
   unconditionally route work through the pool. [jobs <= 0] means
   "auto": one worker per hardware thread as reported by the runtime.

   Tasks are claimed from a shared atomic counter, so an uneven mix of
   cheap and expensive tasks still load-balances. The first exception
   raised by any task aborts the remaining unclaimed tasks and is
   re-raised in the caller once every worker has stopped; callers that
   need fault isolation instead (one bad task must not sink the batch)
   use [run_results], which captures each task's exception as an
   [Error] and keeps going. *)

let auto_jobs () = max 1 (Domain.recommended_domain_count ())

let effective_jobs ~jobs n =
  let jobs = if jobs <= 0 then auto_jobs () else jobs in
  max 1 (min jobs n)

let run_with_worker ?(jobs = 1) ?on_result (tasks : (worker:int -> 'a) array) :
    'a array =
  let n = Array.length tasks in
  let notify =
    match on_result with
    | None -> fun _ _ -> ()
    | Some f ->
      let m = Mutex.create () in
      fun i v ->
        Mutex.lock m;
        Fun.protect ~finally:(fun () -> Mutex.unlock m) (fun () -> f i v)
  in
  match effective_jobs ~jobs n with
  | 1 ->
    Array.mapi
      (fun i task ->
        let v = task ~worker:0 in
        notify i v;
        v)
      tasks
  | jobs ->
    let results : 'a option array = Array.make n None in
    let failure : exn option Atomic.t = Atomic.make None in
    let next = Atomic.make 0 in
    let worker ~worker:w () =
      let continue = ref true in
      while !continue do
        let i = Atomic.fetch_and_add next 1 in
        if i >= n || Atomic.get failure <> None then continue := false
        else
          match tasks.(i) ~worker:w with
          | v ->
            results.(i) <- Some v;
            notify i v
          | exception e ->
            ignore (Atomic.compare_and_set failure None (Some e));
            continue := false
      done
    in
    (* The calling domain is worker 0; helpers take 1 .. jobs-1. If a
       later [Domain.spawn] itself raises (e.g. the runtime's domain
       limit), the already-spawned helpers must still be joined — set
       [failure] first so they stop claiming tasks, join, then re-raise
       the spawn error instead of leaking live domains. *)
    let helpers : unit Domain.t option array = Array.make (jobs - 1) None in
    (try
       for k = 0 to jobs - 2 do
         helpers.(k) <- Some (Domain.spawn (worker ~worker:(k + 1)))
       done;
       worker ~worker:0 ()
     with e -> ignore (Atomic.compare_and_set failure None (Some e)));
    Array.iter (function Some d -> Domain.join d | None -> ()) helpers;
    (match Atomic.get failure with Some e -> raise e | None -> ());
    Array.map (function Some v -> v | None -> assert false) results

let run ?jobs ?on_result (tasks : (unit -> 'a) array) : 'a array =
  run_with_worker ?jobs ?on_result
    (Array.map (fun task ~worker:_ -> task ()) tasks)

(* Fault isolation: wrapping every task so it cannot raise means the
   abort path above is never taken — each failure is contained in its
   own [Error] slot and every other task still runs. *)
let run_results ?jobs ?on_result (tasks : (worker:int -> 'a) array) :
    ('a, exn) result array =
  run_with_worker ?jobs ?on_result
    (Array.map
       (fun task ~worker ->
         match task ~worker with v -> Ok v | exception e -> Error e)
       tasks)
