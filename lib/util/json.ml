(* Minimal JSON: a value type, a compact serializer, and a recursive-
   descent parser. No external dependencies by design — the toolchain
   image carries no JSON library, and the consumers (the run ledger's
   JSONL lines, the sweep's NDJSON heartbeat) need only the data model,
   not streaming or schema support.

   Numbers are [float]s. Values that must survive bit-exactly (64-bit
   seeds, IEEE-754 IPC images) are therefore stored by their producers
   as hex strings, not numbers; the serializer's job is merely to emit
   the shortest decimal that round-trips. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* --- serialization --------------------------------------------------- *)

let escape_string s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* Shortest decimal image that parses back to the same bits; JSON has
   no NaN/Infinity literals, so those serialize as null (the ledger
   never stores them as numbers — degraded cells carry their IPC as hex
   bits plus a flag). *)
let number_string v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else begin
    let short = Printf.sprintf "%.12g" v in
    if float_of_string short = v then short else Printf.sprintf "%.17g" v
  end

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Num v ->
    if Float.is_nan v || Float.abs v = infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (number_string v)
  | Str s -> Buffer.add_string buf (escape_string s)
  | List items ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char buf ',';
        write buf item)
      items;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        Buffer.add_string buf (escape_string k);
        Buffer.add_char buf ':';
        write buf v)
      fields;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing ---------------------------------------------------------- *)

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

type cursor = { text : string; mutable pos : int }

let peek c = if c.pos < String.length c.text then Some c.text.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | _ -> ()

let expect c ch =
  match peek c with
  | Some got when got = ch -> advance c
  | Some got -> fail "expected %C at offset %d, got %C" ch c.pos got
  | None -> fail "expected %C at offset %d, got end of input" ch c.pos

(* Encode a Unicode scalar value as UTF-8 bytes (for \uXXXX escapes;
   surrogate pairs outside the BMP are not combined — the serializer
   never emits them). *)
let add_utf8 buf code =
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> fail "unterminated string at offset %d" c.pos
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | Some '"' -> Buffer.add_char buf '"'; advance c
      | Some '\\' -> Buffer.add_char buf '\\'; advance c
      | Some '/' -> Buffer.add_char buf '/'; advance c
      | Some 'n' -> Buffer.add_char buf '\n'; advance c
      | Some 'r' -> Buffer.add_char buf '\r'; advance c
      | Some 't' -> Buffer.add_char buf '\t'; advance c
      | Some 'b' -> Buffer.add_char buf '\b'; advance c
      | Some 'f' -> Buffer.add_char buf '\012'; advance c
      | Some 'u' ->
        advance c;
        if c.pos + 4 > String.length c.text then
          fail "truncated \\u escape at offset %d" c.pos;
        let hex = String.sub c.text c.pos 4 in
        (match int_of_string_opt ("0x" ^ hex) with
        | Some code ->
          add_utf8 buf code;
          c.pos <- c.pos + 4
        | None -> fail "bad \\u escape %S at offset %d" hex c.pos)
      | Some other -> fail "bad escape \\%C at offset %d" other c.pos
      | None -> fail "truncated escape at offset %d" c.pos);
      go ()
    | Some ch ->
      Buffer.add_char buf ch;
      advance c;
      go ()
  in
  go ();
  Buffer.contents buf

let parse_literal c lit value =
  let n = String.length lit in
  if c.pos + n <= String.length c.text && String.sub c.text c.pos n = lit then begin
    c.pos <- c.pos + n;
    value
  end
  else fail "bad literal at offset %d" c.pos

let number_char = function
  | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
  | _ -> false

let parse_number c =
  let start = c.pos in
  while (match peek c with Some ch -> number_char ch | None -> false) do
    advance c
  done;
  let image = String.sub c.text start (c.pos - start) in
  match float_of_string_opt image with
  | Some v -> Num v
  | None -> fail "bad number %S at offset %d" image start

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail "unexpected end of input at offset %d" c.pos
  | Some '"' -> Str (parse_string c)
  | Some '{' -> parse_obj c
  | Some '[' -> parse_list c
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some ch when number_char ch -> parse_number c
  | Some ch -> fail "unexpected %C at offset %d" ch c.pos

and parse_obj c =
  expect c '{';
  skip_ws c;
  if peek c = Some '}' then begin
    advance c;
    Obj []
  end
  else begin
    let fields = ref [] in
    let rec go () =
      skip_ws c;
      let key = parse_string c in
      skip_ws c;
      expect c ':';
      let v = parse_value c in
      fields := (key, v) :: !fields;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        go ()
      | _ -> expect c '}'
    in
    go ();
    Obj (List.rev !fields)
  end

and parse_list c =
  expect c '[';
  skip_ws c;
  if peek c = Some ']' then begin
    advance c;
    List []
  end
  else begin
    let items = ref [] in
    let rec go () =
      let v = parse_value c in
      items := v :: !items;
      skip_ws c;
      match peek c with
      | Some ',' ->
        advance c;
        go ()
      | _ -> expect c ']'
    in
    go ();
    List (List.rev !items)
  end

let parse text =
  let c = { text; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length text then
      Error (Printf.sprintf "trailing garbage at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* --- accessors -------------------------------------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_float = function Num v -> Some v | _ -> None

let to_int = function
  | Num v when Float.is_integer v -> Some (int_of_float v)
  | _ -> None

let to_string_opt = function Str s -> Some s | _ -> None

let to_bool = function Bool b -> Some b | _ -> None

let to_list = function List items -> Some items | _ -> None
