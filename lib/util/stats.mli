(** Small statistics toolbox for experiment reporting.

    Every aggregate raises [Invalid_argument] on the empty array — there
    is no meaningful mean/median/extremum of nothing, and a silent [0.0]
    (the historical behaviour of {!mean}) or an [assert] that disappears
    under [-noassert] (the historical guard of the order statistics) both
    let empty inputs corrupt downstream aggregation unnoticed. *)

val mean : float array -> float
(** Arithmetic mean. @raise Invalid_argument on the empty array. *)

val geomean : float array -> float
(** Geometric mean of positive values.
    @raise Invalid_argument on the empty array. *)

val stddev : float array -> float
(** Population standard deviation.
    @raise Invalid_argument on the empty array. *)

val median : float array -> float
(** Median (averages the two central elements for even lengths).
    @raise Invalid_argument on the empty array. *)

val percentile : float array -> float -> float
(** [percentile xs p] with [p] in [\[0, 100\]], linear interpolation.
    @raise Invalid_argument on the empty array or [p] outside
    [\[0, 100\]]. *)

val quantile_exact : float array -> float -> float
(** [quantile_exact xs p] is the nearest-rank (type-1) quantile: the
    smallest sample such that at least [p]% of the data is [<=] it.
    Unlike {!percentile} it never interpolates, so the result is always
    an element of [xs] — the right notion for latency summaries, where
    an invented value between two observations is a lie. [p = 100]
    lands on the largest element; a single sample is every quantile of
    itself.
    @raise Invalid_argument on the empty array or [p] outside
    [\[0, 100\]]. *)

val p50 : float array -> float
(** [quantile_exact xs 50.] @raise Invalid_argument on the empty array. *)

val p95 : float array -> float
(** [quantile_exact xs 95.] @raise Invalid_argument on the empty array. *)

val p99 : float array -> float
(** [quantile_exact xs 99.] @raise Invalid_argument on the empty array. *)

val min_max : float array -> float * float
(** Smallest and largest element.
    @raise Invalid_argument on the empty array. *)

val sum : float array -> float
(** Sum; [0.0] for the empty array (the one aggregate with a true
    identity element). *)

val pct_diff : float -> float -> float
(** [pct_diff a b] is [(a - b) / b * 100.], the percentage by which [a]
    exceeds [b]. *)

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  median : float;
}

val summarize : float array -> summary
(** Full summary. @raise Invalid_argument on the empty array. *)

val pp_summary : Format.formatter -> summary -> unit
