(** Fixed-size Domain-based worker pool. *)

val auto_jobs : unit -> int
(** One worker per hardware thread ([Domain.recommended_domain_count]). *)

val run : ?jobs:int -> ?on_result:(int -> 'a -> unit) -> (unit -> 'a) array -> 'a array
(** [run ~jobs tasks] evaluates every thunk and returns the results in
    task order, independent of completion order. [jobs = 1] (default)
    runs in-process without spawning domains; [jobs <= 0] means
    {!auto_jobs}; [jobs] is capped at the task count. [on_result i v]
    is invoked once per completed task, serialized across workers. The
    first exception raised by a task aborts unclaimed tasks and is
    re-raised in the caller — only after every spawned helper domain has
    been joined (including when [Domain.spawn] itself fails mid-way
    through pool creation, so partially-created pools never leak
    domains). Tasks must not share mutable state. *)

val run_with_worker :
  ?jobs:int ->
  ?on_result:(int -> 'a -> unit) ->
  (worker:int -> 'a) array ->
  'a array
(** Like {!run} but each task learns which worker runs it: the calling
    domain is worker [0], spawned helpers are [1 .. jobs-1]. Which task
    lands on which worker depends on timing — only results (task-order)
    are deterministic. Useful for per-worker lanes in timelines. *)

val run_results :
  ?jobs:int ->
  ?on_result:(int -> ('a, exn) result -> unit) ->
  (worker:int -> 'a) array ->
  ('a, exn) result array
(** Fault-isolating variant: a task that raises yields [Error exn] in
    its slot and does not abort the batch — every other task still
    runs. [on_result] observes successes and failures alike (serialized
    across workers). This is the primitive the sweep engine's degraded
    cells are built on. *)
