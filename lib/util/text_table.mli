(** Plain-text table rendering for experiment reports.

    Produces aligned, pipe-separated tables similar to the rows the paper
    prints, suitable for terminals and for pasting into EXPERIMENTS.md. *)

type align = Left | Right | Center

val display_width : string -> int
(** Width of a string in terminal cells, approximated as its number of
    UTF-8 scalar values (so "µs" measures 2, not 3). Combining marks
    and double-width CJK are not special-cased. Equals [String.length]
    on pure ASCII. Column sizing and padding both use this, so cells
    containing multi-byte labels stay aligned. *)

type t

val create : header:string list -> t
(** New table with the given column headers. Column count is fixed by the
    header; rows with a different arity raise [Invalid_argument]. *)

val set_aligns : t -> align list -> unit
(** Per-column alignment (default: first column left, rest right). *)

val add_row : t -> string list -> unit

val add_sep : t -> unit
(** Horizontal separator row. *)

val add_float_row : t -> string -> float list -> unit
(** [add_float_row t label xs] adds [label] followed by [xs] printed with
    two decimals. *)

val render : t -> string

val pp : Format.formatter -> t -> unit
