(** Newline-delimited JSON framing over {!Json}.

    The wire discipline of the sweep service (and of [--log-json]
    streams): one complete JSON document per ['\n']-terminated line.
    {!feed} is incremental — bytes arrive in whatever chunks the
    transport delivers, and a line is surfaced only once its terminator
    has been seen — so a socket reader never blocks on a partial line
    and never sees a torn document.

    Rejection is per-line, not per-connection: a malformed or oversized
    line yields one {!error} and the reader resynchronizes at the next
    newline, so one bad request cannot poison the stream after it. *)

type error =
  | Oversized of { limit : int }
      (** The line exceeded the reader's byte budget; the rest of the
          line was discarded up to its terminator. *)
  | Malformed of { msg : string }
      (** The line was not a complete JSON document. *)
  | Truncated
      (** End of stream arrived mid-line (no trailing newline): the
          peer died while writing. Reported by {!close} only. *)

val error_message : error -> string
(** Human-readable rendering, suitable for an error reply. *)

type reader

val reader : ?max_line_bytes:int -> unit -> reader
(** A fresh incremental reader. [max_line_bytes] (default 1 MiB) bounds
    a single line; a line that grows past it is rejected as
    {!Oversized} without buffering the excess. *)

val feed : reader -> ?off:int -> ?len:int -> string -> (Json.t, error) result list
(** Consume the next transport chunk ([len] bytes of [chunk] starting
    at [off], default the whole string) and return the completed lines
    it finished, in arrival order. Blank lines are skipped (they are
    legal NDJSON keep-alive padding). *)

val close : reader -> (Json.t, error) result option
(** Signal end of stream. [Some (Error Truncated)] when bytes of an
    unterminated line were pending, [None] otherwise. The reader must
    not be fed afterwards. *)

val line : Json.t -> string
(** The document serialized compactly with its ['\n'] terminator —
    the exact bytes {!feed} reverses. *)
